// The serving story: a TrustService fronting several live trust-estimation
// sessions at once, the way KBT would sit behind a search-quality signal.
//
// Three tenants ("news", "forums", "retail") each own a cube. Clients
// submit runs and streaming observation deltas without blocking; requests
// to one session execute FIFO (a run submitted after an append always sees
// it), different sessions share one executor, and appends queued back to
// back are coalesced into a single incremental matrix patch.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "kbt/kbt.h"

int main() {
  using namespace kbt;

  // One executor carries everything: the request lanes AND each request's
  // parallel inference stages (its joins donate the waiting thread, so the
  // two layers compose on a fixed thread budget).
  dataflow::Executor executor;
  api::TrustService::ServiceOptions service_options;
  service_options.executor = &executor;
  api::TrustService service(service_options);

  api::Options options;
  options.granularity = api::Granularity::kFinest;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;

  // ---- Register a session per tenant (each wraps one Pipeline) ----
  const char* tenants[] = {"news", "forums", "retail"};
  std::vector<extract::RawDataset> deltas;  // Held back, streamed later.
  for (size_t t = 0; t < 3; ++t) {
    exp::SyntheticConfig config;
    config.num_sources = 40 + 10 * static_cast<int>(t);
    config.num_extractors = 5;
    config.seed = 100 + t;
    extract::RawDataset cube = exp::GenerateSynthetic(config).data;
    // Keep the last 50 events as this tenant's live stream.
    extract::RawDataset delta;
    delta.observations.assign(cube.observations.end() - 50,
                              cube.observations.end());
    cube.observations.resize(cube.size() - 50);
    deltas.push_back(std::move(delta));

    api::PipelineBuilder builder;
    builder.FromDataset(std::move(cube)).WithOptions(options);
    const Status created =
        service.CreateSession(tenants[t], std::move(builder));
    if (!created.ok()) {
      std::fprintf(stderr, "create %s: %s\n", tenants[t],
                   created.ToString().c_str());
      return 1;
    }
  }
  std::printf("serving %zu sessions on %d threads\n",
              service.SessionNames().size(), executor.num_threads());

  // ---- Fire concurrent traffic: a run per tenant, all in flight ----
  std::vector<std::future<StatusOr<api::TrustReport>>> first_runs;
  first_runs.reserve(3);
  for (const char* tenant : tenants) {
    first_runs.push_back(service.SubmitRun(tenant));
  }

  // ---- Stream deltas while the runs execute: per-session FIFO puts each
  // append after its tenant's run; back-to-back appends coalesce into one
  // incremental patch. ----
  std::vector<std::future<Status>> appends;
  for (size_t t = 0; t < 3; ++t) {
    const auto& events = deltas[t].observations;
    // Two half-batches submitted back to back - the service merges them.
    const size_t half = events.size() / 2;
    appends.push_back(service.SubmitAppend(
        tenants[t], {events.begin(), events.begin() + half}));
    appends.push_back(service.SubmitAppend(
        tenants[t], {events.begin() + half, events.end()}));
  }
  std::vector<std::future<StatusOr<api::TrustReport>>> second_runs;
  second_runs.reserve(3);
  for (const char* tenant : tenants) {
    second_runs.push_back(service.SubmitRun(tenant));
  }

  // ---- Await the futures ----
  for (size_t t = 0; t < 3; ++t) {
    const auto before = first_runs[t].get();
    if (!before.ok()) {
      std::fprintf(stderr, "%s run: %s\n", tenants[t],
                   before.status().ToString().c_str());
      return 1;
    }
    const Status a1 = appends[2 * t].get();
    const Status a2 = appends[2 * t + 1].get();
    if (!a1.ok() || !a2.ok()) {
      std::fprintf(stderr, "%s append failed\n", tenants[t]);
      return 1;
    }
    const auto after = second_runs[t].get();
    if (!after.ok()) {
      std::fprintf(stderr, "%s re-run: %s\n", tenants[t],
                   after.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-7s %6zu -> %6zu observations, %3u sites, "
        "top KBT %.3f -> %.3f (%d EM iterations)\n",
        tenants[t], before->counts.num_observations,
        after->counts.num_observations, after->counts.num_websites,
        before->website_kbt.empty() ? 0.0 : before->website_kbt[0].kbt,
        after->website_kbt.empty() ? 0.0 : after->website_kbt[0].kbt,
        after->iterations());
  }

  const api::TrustService::Stats stats = service.stats();
  std::printf(
      "\nstats: %zu runs, %zu appends submitted, %zu coalesced away "
      "(%zu AppendObservations calls actually ran)\n",
      stats.runs_submitted, stats.appends_submitted, stats.appends_coalesced,
      stats.append_batches_executed);
  return 0;
}
