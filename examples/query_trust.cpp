// The read path: serving trust scores to many consumers while the compute
// path keeps working — the shape the paper implies when KBT becomes a
// search-quality signal queried per source and per triple at web scale.
//
// One session computes; a completed run auto-publishes an immutable,
// index-backed snapshot; readers query it lock-free (point lookups, top-k
// rankings, per-item candidate values) while appends and re-runs queue
// behind the service's write lane. A second run publishes a second
// snapshot, and a cross-snapshot diff shows which sources moved most.
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "kbt/kbt.h"

int main() {
  using namespace kbt;

  api::TrustService service;

  api::Options options;
  options.granularity = api::Granularity::kWebsiteSource;  // site-level KBT
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;

  // ---- One tenant: a synthetic web cube with a live tail ----
  exp::SyntheticConfig config;
  config.num_sources = 60;
  config.num_extractors = 5;
  config.num_subjects = 40;
  config.seed = 7;
  extract::RawDataset cube = exp::GenerateSynthetic(config).data;
  std::vector<extract::RawObservation> delta(
      cube.observations.end() - 200, cube.observations.end());
  cube.observations.resize(cube.size() - 200);

  api::PipelineBuilder builder;
  builder.FromDataset(std::move(cube)).WithOptions(options);
  if (!service.CreateSession("web", std::move(builder)).ok()) return 1;

  // ---- First run completes -> a snapshot is published automatically ----
  auto first = service.SubmitRun("web").get();
  if (!first.ok()) {
    std::fprintf(stderr, "run: %s\n", first.status().ToString().c_str());
    return 1;
  }

  // A reader is a cheap per-thread handle; its view() is lock-free and the
  // returned pointer stays pinned until the next call, so queries never
  // block on — or wait for — the session's queued writes.
  auto reader = service.Query("web");
  if (!reader.ok()) return 1;
  const query::Snapshot* snap = reader->view();
  std::printf("snapshot #%llu: %zu sources, %zu triples indexed\n",
              static_cast<unsigned long long>(snap->info().sequence),
              snap->num_sources(), snap->num_triples());

  // ---- Rank queries: the most trustworthy sources (paper Section 5.4:
  // only sources with >= 5 expected correct triples get a score) ----
  std::printf("\ntop 5 most trustworthy source groups:\n");
  for (const query::SourceTrust& s : snap->TopKSources(5)) {
    std::printf("  source %3u  kbt=%.3f  evidence=%.1f\n", s.id, s.kbt,
                s.evidence);
  }

  // Filters compose: the most trustworthy of the *well-covered* sources.
  query::SourceFilter heavy;
  heavy.min_evidence = 20.0;
  std::printf("with >= 20 expected correct triples: %zu qualify\n",
              snap->TopKSources(3, heavy).size());

  // ---- Point + item lookups around the most-believed triple ----
  const auto best = snap->TopKTriples(1);
  if (!best.empty()) {
    const auto values = snap->ItemValues(best[0].item);
    std::printf("\nmost-believed triple's item has %zu candidate values:\n",
                values.size());
    for (const query::TripleTruth& v : values) {
      std::printf("  value %4u  p=%.3f%s\n", v.value, v.probability,
                  v.covered ? "" : "  (uncovered)");
    }
  }

  // ---- Writes queue; reads keep serving the published snapshot ----
  // Pin snapshot #1 (shared ownership survives any number of publishes),
  // then stream the delta and recompute.
  const auto pinned = reader->Acquire();
  auto appended = service.SubmitAppend("web", delta);
  auto second = service.SubmitRun("web");
  // This query runs concurrently with the append+run above and still
  // serves snapshot #1 — reads are decoupled from queued writes.
  (void)snap->TopKWebsites(3);
  appended.get();
  if (!second.get().ok()) return 1;

  // ---- The new run auto-published snapshot #2: diff old vs new ----
  const query::Snapshot* after = reader->view();
  std::printf("\nafter append+rerun: snapshot #%llu (%zu triples)\n",
              static_cast<unsigned long long>(after->info().sequence),
              after->num_triples());

  const query::SnapshotDiff diff = DiffSnapshots(*pinned, *after, 3);
  std::printf("sources added: %zu, triples added: %zu\n",
              diff.sources_added, diff.triples_added);
  std::printf("sources that moved most between the runs:\n");
  for (const query::SourceMove& move : diff.top_source_moves) {
    std::printf("  source %3u  %.3f -> %.3f  (delta %+.3f)\n", move.id,
                move.before_kbt, move.after_kbt, move.delta);
  }

  std::printf("\nsnapshots published by the service: %zu\n",
              service.stats().snapshots_published);
  return 0;
}
