// Continuous trust over a live feed: the kbt::stream subsystem end to end.
//
// The paper scores one frozen extraction cube. Here the same machinery
// runs continuously: a synthetic web (src/corpus) is crawled by a
// simulated extractor fleet, the first crawl seeds a pipeline, and later
// crawls arrive as timestamped batches on a feed. Each tick incrementally
// appends the batch, warm-starts inference from the previous generation,
// publishes an immutable snapshot (readers never block), diffs it against
// the last one, and evaluates trust-drop alert rules. The snapshot history
// ring then lets us time-travel: "what did we believe about this site at
// t=150?"
//
// (To serve this behind the async API instead, TrustService::AttachStream
// attaches the same engine to a session and SubmitTick/a background ticker
// drive it on the session strand — see tests/stream/service_stream_test.)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "kbt/kbt.h"

int main() {
  using namespace kbt;

  // ---- A synthetic web + one extraction crawl over it ----
  exp::KvSimConfig config = exp::KvSimConfig::Small();
  config.seed = 7;
  config.corpus.seed = 7;
  config.corpus.num_subjects = 120;
  config.corpus.num_websites = 30;
  config.num_extractors = 5;
  auto world = exp::BuildKvSim(config);
  if (!world.ok()) {
    std::fprintf(stderr, "kv-sim: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }

  // The first 40% of the crawl seeds the pipeline; the rest arrives live,
  // as three timestamped batches.
  std::vector<api::RawObservation> all =
      std::move(world->data.observations);
  const size_t seed_size = all.size() * 2 / 5;
  api::RawDataset seed = std::move(world->data);
  seed.observations.assign(all.begin(), all.begin() + seed_size);
  std::printf("crawl: %zu observations over %u sites; seeding with %zu, "
              "streaming %zu\n",
              all.size(), seed.num_websites, seed_size,
              all.size() - seed_size);

  // ---- Pipeline + stream engine with history and alert rules ----
  api::Options options;
  options.granularity = api::Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  auto pipeline =
      api::PipelineBuilder().FromDataset(seed).WithOptions(options).Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  auto feed = std::make_shared<stream::QueueFeed>();
  stream::StreamOptions stream_options;
  stream_options.history_capacity = 4;  // Keep 4 generations for AsOf.
  stream_options.alert_rules.push_back(stream::AlertRule{
      "site-trust-slipped", stream::AlertTarget::kWebsites,
      /*min_drop=*/0.02, /*min_drop_fraction=*/0.0, /*id=*/std::nullopt});
  auto engine =
      stream::StreamEngine::Create(&*pipeline, feed, stream_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // ---- Replay the rest of the crawl as live ticks ----
  const size_t batch = (all.size() - seed_size + 2) / 3;
  size_t begin = seed_size;
  for (int generation = 1; generation <= 3; ++generation) {
    const double now = 100.0 * generation;
    const size_t end = std::min(all.size(), begin + batch);
    std::vector<stream::TimedObservation> timed;
    for (size_t i = begin; i < end; ++i) {
      timed.push_back(stream::TimedObservation{all[i], now});
    }
    begin = end;
    feed->PushBatch(std::move(timed));

    const auto tick = (*engine)->Tick(now);
    if (!tick.ok()) {
      std::fprintf(stderr, "tick: %s\n", tick.status().ToString().c_str());
      return 1;
    }
    std::printf("\n[t=%5.0f] generation %llu: +%zu observations\n", now,
                static_cast<unsigned long long>(tick->sequence),
                tick->observations_ingested);
    if (tick->diff) {
      std::printf("  churn: +%zu/-%zu triples; biggest website moves:\n",
                  tick->diff->triples_added, tick->diff->triples_removed);
      const size_t shown =
          std::min<size_t>(3, tick->diff->top_website_moves.size());
      for (size_t m = 0; m < shown; ++m) {
        const query::SourceMove& move = tick->diff->top_website_moves[m];
        std::printf("    site %u: %.3f -> %.3f (%+.3f)\n", move.id,
                    move.before_kbt, move.after_kbt, move.delta);
      }
    }
    for (const stream::Alert& alert : tick->alerts) {
      std::printf("  ALERT %s: site %u dropped %.3f -> %.3f\n",
                  alert.rule.c_str(), alert.id, alert.before_kbt,
                  alert.after_kbt);
    }
  }

  // ---- Time travel through the snapshot history ring ----
  const auto registry = (*engine)->snapshot_registry();
  std::printf("\nretained generations:");
  for (const query::SnapshotInfo& info : registry->History()) {
    std::printf(" #%llu@t=%.0f",
                static_cast<unsigned long long>(info.sequence),
                info.publish_time);
  }
  std::printf("\n");
  const auto then = registry->AsOf(150.0);   // Between ticks 1 and 2.
  const auto now_view = registry->Current();
  if (then != nullptr && now_view != nullptr) {
    const auto site0_then = then->WebsiteTrust(0);
    const auto site0_now = now_view->WebsiteTrust(0);
    if (site0_then && site0_now) {
      std::printf("site 0 trust: %.3f as of t=150 (generation %llu) vs "
                  "%.3f now (generation %llu)\n",
                  site0_then->kbt,
                  static_cast<unsigned long long>(then->info().sequence),
                  site0_now->kbt,
                  static_cast<unsigned long long>(
                      now_view->info().sequence));
    }
  }

  const stream::StreamStats stats = (*engine)->stats();
  std::printf("streamed %llu observations over %llu ticks, %llu "
              "generations, %llu alerts\n",
              static_cast<unsigned long long>(stats.observations_ingested),
              static_cast<unsigned long long>(stats.ticks),
              static_cast<unsigned long long>(stats.generations_published),
              static_cast<unsigned long long>(stats.alerts_fired));
  return 0;
}
