// Quickstart: estimate Knowledge-Based Trust for three tiny "websites"
// observed through two extractors, using only the public kbt/* API:
//
//   1. describe extraction events in a RawDataset (the sparse X_ewdv cube);
//   2. assemble a Pipeline (granularity: one source per page, one group per
//      extractor);
//   3. Run() — compile the cube, run the multi-layer model, score KBT;
//   4. read source accuracies (KBT), extractor quality and triple
//      probabilities off the TrustReport.
//
// Build & run:  cmake -B build -S . && cmake --build build -j &&
//               ./build/examples/quickstart
#include <cstdio>

#include "kbt/kbt.h"

int main() {
  using namespace kbt;

  // ---- 1. The observation cube ----------------------------------------
  // Entities: 0 = "Marie Curie"; values: 1 = "Warsaw", 2 = "Paris".
  // Data item d = (Curie, born_in). Truth: Warsaw.
  const kb::DataItemId born_in = kb::MakeDataItem(0, 0);

  api::RawDataset data;
  data.num_false_by_predicate = {10};  // n = 10 false values in the domain.
  data.num_websites = 3;
  data.num_pages = 3;
  data.num_extractors = 2;
  data.num_patterns = 2;

  // site 0 and site 1 state "Warsaw"; site 2 states "Paris".
  // Extractor 0 reads all three pages correctly. Extractor 1 is sloppy: it
  // reads site 0 correctly but hallucinates "Paris" on site 1.
  struct Event {
    uint32_t extractor, page;
    kb::ValueId value;
    float confidence;
  };
  const Event events[] = {
      {0, 0, 1, 1.0f}, {0, 1, 1, 1.0f}, {0, 2, 2, 1.0f},
      {1, 0, 1, 0.9f}, {1, 1, 2, 0.4f},  // The hallucination, low confidence.
  };
  for (const Event& e : events) {
    api::RawObservation obs;
    obs.extractor = e.extractor;
    obs.pattern = e.extractor;  // One pattern per extractor here.
    obs.website = e.page;       // One page per site.
    obs.page = e.page;
    obs.item = born_in;
    obs.value = e.value;
    obs.confidence = e.confidence;
    data.observations.push_back(obs);
  }

  // ---- 2. Assemble the pipeline ----------------------------------------
  api::Options options;
  options.granularity = api::Granularity::kPageSource;
  options.multilayer.min_source_support = 1;  // Tiny demo: keep everything.
  options.multilayer.min_extractor_support = 1;
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(std::move(data))
                      .WithOptions(options)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  // ---- 3. Run: compile + infer + score ----------------------------------
  const auto report = pipeline->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // ---- 4. Read the results ----------------------------------------------
  const auto* matrix = pipeline->compiled_matrix();
  std::printf("triple probabilities p(V_d = v | X):\n");
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    std::printf("  site %u claims value %u: p(provided)=%.3f  p(true)=%.3f\n",
                matrix->slot_source(s), matrix->slot_value(s),
                report->inference.slot_correct_prob[s],
                report->inference.slot_value_prob[s]);
  }

  std::printf("\nKnowledge-Based Trust per site:\n");
  for (uint32_t w = 0; w < report->counts.num_websites; ++w) {
    std::printf("  site %u: KBT=%.3f (evidence %.2f triples)\n", w,
                report->website_kbt[w].kbt, report->website_kbt[w].evidence);
  }

  std::printf("\nextractor quality estimates:\n");
  for (uint32_t g = 0; g < report->counts.num_extractor_groups; ++g) {
    std::printf("  extractor %u: precision=%.3f recall=%.3f Q=%.4f\n", g,
                report->inference.extractor_precision[g],
                report->inference.extractor_recall[g],
                report->inference.extractor_q[g]);
  }
  std::printf("\nSites agreeing with the crowd (Warsaw) earn higher KBT;\n"
              "the model explains site 1's 'Paris' as extractor noise.\n");
  return 0;
}
