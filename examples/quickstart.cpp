// Quickstart: estimate Knowledge-Based Trust for three tiny "websites"
// observed through two extractors, using the public API end to end:
//
//   1. describe extraction events in a RawDataset (the sparse X_ewdv cube);
//   2. pick a granularity (here: one source per page, one group per
//      extractor);
//   3. compile the cube and run the multi-layer model;
//   4. read back source accuracies (KBT), extractor quality and triple
//      probabilities.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "extract/observation_matrix.h"
#include "extract/raw_dataset.h"
#include "granularity/assignments.h"
#include "core/kbt_score.h"
#include "core/multilayer_model.h"

int main() {
  using namespace kbt;

  // ---- 1. The observation cube ----------------------------------------
  // Entities: 0 = "Marie Curie"; values: 1 = "Warsaw", 2 = "Paris".
  // Data item d = (Curie, born_in). Truth: Warsaw.
  const kb::DataItemId born_in = kb::MakeDataItem(0, 0);

  extract::RawDataset data;
  data.num_false_by_predicate = {10};  // n = 10 false values in the domain.
  data.num_websites = 3;
  data.num_pages = 3;
  data.num_extractors = 2;
  data.num_patterns = 2;

  // site 0 and site 1 state "Warsaw"; site 2 states "Paris".
  // Extractor 0 reads all three pages correctly. Extractor 1 is sloppy: it
  // reads site 0 correctly but hallucinates "Paris" on site 1.
  struct Event {
    uint32_t extractor, page;
    kb::ValueId value;
    float confidence;
  };
  const Event events[] = {
      {0, 0, 1, 1.0f}, {0, 1, 1, 1.0f}, {0, 2, 2, 1.0f},
      {1, 0, 1, 0.9f}, {1, 1, 2, 0.4f},  // The hallucination, low confidence.
  };
  for (const Event& e : events) {
    extract::RawObservation obs;
    obs.extractor = e.extractor;
    obs.pattern = e.extractor;  // One pattern per extractor here.
    obs.website = e.page;       // One page per site.
    obs.page = e.page;
    obs.item = born_in;
    obs.value = e.value;
    obs.confidence = e.confidence;
    data.observations.push_back(obs);
  }

  // ---- 2. Granularity ---------------------------------------------------
  const extract::GroupAssignment assignment =
      granularity::PageSourcePlainExtractor(data);

  // ---- 3. Compile + infer ------------------------------------------------
  const auto matrix = extract::CompiledMatrix::Build(data, assignment);
  if (!matrix.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 matrix.status().ToString().c_str());
    return 1;
  }
  core::MultiLayerConfig config;
  config.min_source_support = 1;   // Tiny demo: keep every source.
  config.min_extractor_support = 1;
  const auto result = core::MultiLayerModel::Run(*matrix, config);
  if (!result.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // ---- 4. Read the results ------------------------------------------------
  std::printf("triple probabilities p(V_d = v | X):\n");
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    std::printf("  site %u claims value %u: p(provided)=%.3f  p(true)=%.3f\n",
                matrix->slot_source(s), matrix->slot_value(s),
                result->slot_correct_prob[s], result->slot_value_prob[s]);
  }

  const auto kbt = core::ComputeWebsiteKbt(*matrix, *result, 3);
  std::printf("\nKnowledge-Based Trust per site:\n");
  for (uint32_t w = 0; w < 3; ++w) {
    std::printf("  site %u: KBT=%.3f (evidence %.2f triples)\n", w,
                kbt[w].kbt, kbt[w].evidence);
  }

  std::printf("\nextractor quality estimates:\n");
  for (uint32_t g = 0; g < matrix->num_extractor_groups(); ++g) {
    std::printf("  extractor %u: precision=%.3f recall=%.3f Q=%.4f\n", g,
                result->extractor_precision[g], result->extractor_recall[g],
                result->extractor_q[g]);
  }
  std::printf("\nSites agreeing with the crowd (Warsaw) earn higher KBT;\n"
              "the model explains site 1's 'Paris' as extractor noise.\n");
  return 0;
}
