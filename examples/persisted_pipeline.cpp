// Demonstrates the persistence layer through the facade: generate an
// observation cube once, save it to disk, reload it in a fresh pipeline
// (as a separate tool would), run inference, and export the results
// (triple probabilities + per-site KBT) as TSV for external tooling.
#include <cstdio>
#include <string>

#include "kbt/kbt.h"

int main() {
  using namespace kbt;
  const std::string dir = "/tmp";
  const std::string cube_path = dir + "/kbt_example_cube.tsv";
  const std::string preds_path = dir + "/kbt_example_predictions.tsv";
  const std::string scores_path = dir + "/kbt_example_scores.tsv";

  // ---- Produce a cube and persist it ----
  {
    exp::SyntheticConfig config;
    config.num_sources = 20;
    config.num_extractors = 6;
    config.seed = 99;
    auto generator = api::PipelineBuilder().FromSynthetic(config).Build();
    if (!generator.ok()) return 1;
    const Status st = io::WriteRawDataset(cube_path, generator->dataset());
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu observations to %s\n", generator->dataset().size(),
                cube_path.c_str());
  }

  // ---- Reload and analyze (as a separate tool would) ----
  api::Options options;
  options.granularity = api::Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  options.multilayer.num_false_override = 10;
  auto pipeline = api::PipelineBuilder()
                      .FromTsv(cube_path)
                      .WithOptions(options)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded %zu observations (%u sites, %u extractors)\n",
              pipeline->dataset().size(), pipeline->dataset().num_websites,
              pipeline->dataset().num_extractors);

  const auto report = pipeline->Run();
  if (!report.ok()) return 1;

  // ---- Export results ----
  if (!io::WriteTriplePredictions(preds_path, report->predictions).ok()) {
    return 1;
  }
  if (!io::WriteKbtScores(scores_path, report->website_kbt).ok()) return 1;

  std::printf("wrote %zu triple predictions to %s\n",
              report->predictions.size(), preds_path.c_str());
  std::printf("wrote %zu KBT scores to %s\n", report->website_kbt.size(),
              scores_path.c_str());

  // Round-trip check: the scores we read back match what we computed.
  const auto reloaded = io::ReadKbtScores(scores_path);
  if (!reloaded.ok() || reloaded->size() != report->website_kbt.size()) {
    std::fprintf(stderr, "round-trip failed\n");
    return 1;
  }
  std::printf("round-trip verified; first sites: ");
  for (size_t w = 0; w < 5 && w < reloaded->size(); ++w) {
    std::printf("%.3f ", (*reloaded)[w].kbt);
  }
  std::printf("\n");
  return 0;
}
