// Demonstrates the persistence layer through the facade: generate an
// observation cube once, save it to disk, reload it in a fresh pipeline
// (as a separate tool would), run inference, and export the results
// (triple probabilities + per-site KBT) as TSV for external tooling.
// The last act shows the compiled-artifact disk cache: a second "process"
// over the same cube loads the compiled matrix instead of rebuilding it.
#include <cstdio>
#include <string>

#include "kbt/kbt.h"

int main() {
  using namespace kbt;
  const std::string dir = "/tmp";
  const std::string cube_path = dir + "/kbt_example_cube.tsv";
  const std::string preds_path = dir + "/kbt_example_predictions.tsv";
  const std::string scores_path = dir + "/kbt_example_scores.tsv";

  // ---- Produce a cube and persist it ----
  {
    exp::SyntheticConfig config;
    config.num_sources = 20;
    config.num_extractors = 6;
    config.seed = 99;
    auto generator = api::PipelineBuilder().FromSynthetic(config).Build();
    if (!generator.ok()) return 1;
    const Status st = io::WriteRawDataset(cube_path, generator->dataset());
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu observations to %s\n", generator->dataset().size(),
                cube_path.c_str());
  }

  // ---- Reload and analyze (as a separate tool would) ----
  api::Options options;
  options.granularity = api::Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  options.multilayer.num_false_override = 10;
  auto pipeline = api::PipelineBuilder()
                      .FromTsv(cube_path)
                      .WithOptions(options)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded %zu observations (%u sites, %u extractors)\n",
              pipeline->dataset().size(), pipeline->dataset().num_websites,
              pipeline->dataset().num_extractors);

  const auto report = pipeline->Run();
  if (!report.ok()) return 1;

  // ---- Export results ----
  if (!io::WriteTriplePredictions(preds_path, report->predictions).ok()) {
    return 1;
  }
  if (!io::WriteKbtScores(scores_path, report->website_kbt).ok()) return 1;

  std::printf("wrote %zu triple predictions to %s\n",
              report->predictions.size(), preds_path.c_str());
  std::printf("wrote %zu KBT scores to %s\n", report->website_kbt.size(),
              scores_path.c_str());

  // Round-trip check: the scores we read back match what we computed.
  const auto reloaded = io::ReadKbtScores(scores_path);
  if (!reloaded.ok() || reloaded->size() != report->website_kbt.size()) {
    std::fprintf(stderr, "round-trip failed\n");
    return 1;
  }
  std::printf("round-trip verified; first sites: ");
  for (size_t w = 0; w < 5 && w < reloaded->size(); ++w) {
    std::printf("%.3f ", (*reloaded)[w].kbt);
  }
  std::printf("\n");

  // ---- Persist the COMPILED artifacts too (the disk cache) ----
  // TSV persists the raw cube; the artifact cache persists what the
  // pipeline computed from it. A later session over the same content
  // loads the compiled matrix (keyed by content fingerprint x compile
  // options) instead of re-running granularity + compilation.
  const std::string cache_dir = dir + "/kbt_example_cache";
  if (!pipeline->EnableDiskCache(cache_dir).ok()) return 1;
  if (!pipeline->SaveCompiledArtifacts().ok()) return 1;

  auto restarted = api::PipelineBuilder()
                       .FromTsv(cube_path)
                       .WithOptions(options)
                       .Build();
  if (!restarted.ok()) return 1;
  if (!restarted->EnableDiskCache(cache_dir).ok()) return 1;
  const Status warm = restarted->LoadCompiledArtifacts();
  if (!warm.ok()) {
    std::fprintf(stderr, "artifact load failed: %s\n",
                 warm.ToString().c_str());
    return 1;
  }
  const auto warm_report = restarted->Run();  // skips compilation
  if (!warm_report.ok()) return 1;
  const bool identical =
      warm_report->inference.slot_value_prob ==
      report->inference.slot_value_prob;
  std::printf("warm restart from %s: %zu slots served %s recompilation\n",
              cache_dir.c_str(), warm_report->counts.num_slots,
              identical ? "bit-for-bit without" : "DIFFERENTLY from (BUG)");
  return identical ? 0 : 1;
}
