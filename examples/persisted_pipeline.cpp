// Demonstrates the persistence layer: generate an observation cube once,
// save it to disk, reload it in a fresh process step, run inference, and
// export the results (triple probabilities + per-site KBT) as TSV that
// external tooling can consume.
#include <cstdio>
#include <string>

#include "eval/gold_standard.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "io/dataset_io.h"
#include "core/kbt_score.h"
#include "core/multilayer_model.h"

int main() {
  using namespace kbt;
  const std::string dir = "/tmp";
  const std::string cube_path = dir + "/kbt_example_cube.tsv";
  const std::string preds_path = dir + "/kbt_example_predictions.tsv";
  const std::string scores_path = dir + "/kbt_example_scores.tsv";

  // ---- Produce a cube and persist it ----
  {
    exp::SyntheticConfig config;
    config.num_sources = 20;
    config.num_extractors = 6;
    config.seed = 99;
    const auto synthetic = exp::GenerateSynthetic(config);
    const Status st = io::WriteRawDataset(cube_path, synthetic.data);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu observations to %s\n", synthetic.data.size(),
                cube_path.c_str());
  }

  // ---- Reload and analyze (as a separate tool would) ----
  const auto data = io::ReadRawDataset(cube_path);
  if (!data.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded %zu observations (%u sites, %u extractors)\n",
              data->size(), data->num_websites, data->num_extractors);

  const auto assignment = granularity::PageSourcePlainExtractor(*data);
  const auto matrix = extract::CompiledMatrix::Build(*data, assignment);
  if (!matrix.ok()) return 1;
  core::MultiLayerConfig config;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(*matrix, config);
  if (!result.ok()) return 1;

  // ---- Export results ----
  const auto predictions = eval::TriplePredictions(
      *matrix, result->slot_value_prob, result->slot_covered);
  if (!io::WriteTriplePredictions(preds_path, predictions).ok()) return 1;
  const auto kbt =
      core::ComputeWebsiteKbt(*matrix, *result, data->num_websites);
  if (!io::WriteKbtScores(scores_path, kbt).ok()) return 1;

  std::printf("wrote %zu triple predictions to %s\n", predictions.size(),
              preds_path.c_str());
  std::printf("wrote %zu KBT scores to %s\n", kbt.size(),
              scores_path.c_str());

  // Round-trip check: the scores we read back match what we computed.
  const auto reloaded = io::ReadKbtScores(scores_path);
  if (!reloaded.ok() || reloaded->size() != kbt.size()) {
    std::fprintf(stderr, "round-trip failed\n");
    return 1;
  }
  std::printf("round-trip verified; first sites: ");
  for (size_t w = 0; w < 5 && w < reloaded->size(); ++w) {
    std::printf("%.3f ", (*reloaded)[w].kbt);
  }
  std::printf("\n");
  return 0;
}
