// Demonstrates Section 4's SPLITANDMERGE: how the choice of source
// granularity trades statistical strength against computational balance.
// Runs the same skewed dataset at several (m, M) settings and reports group
// structure, coverage and wall-clock.
#include <algorithm>
#include <cstdio>

#include "common/stopwatch.h"
#include "dataflow/parallel.h"
#include "exp/kv_sim.h"
#include "exp/table_printer.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "granularity/split_merge.h"
#include "core/multilayer_model.h"

namespace {

using namespace kbt;

struct Outcome {
  size_t sources = 0;
  size_t extractor_groups = 0;
  size_t biggest_source = 0;
  double covered_fraction = 0.0;
  double seconds = 0.0;
};

Outcome RunWith(const exp::KvSimData& kv,
                const extract::GroupAssignment& assignment) {
  Outcome out;
  Stopwatch watch;
  const auto matrix = extract::CompiledMatrix::Build(kv.data, assignment);
  if (!matrix.ok()) {
    std::fprintf(stderr, "compile failed\n");
    std::exit(1);
  }
  out.sources = matrix->num_sources();
  out.extractor_groups = matrix->num_extractor_groups();
  for (uint32_t w = 0; w < matrix->num_sources(); ++w) {
    const auto [b, e] = matrix->SourceSlots(w);
    out.biggest_source = std::max<size_t>(out.biggest_source, e - b);
  }
  core::MultiLayerConfig config;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(
      *matrix, config, {}, &dataflow::DefaultExecutor());
  if (!result.ok()) std::exit(1);
  size_t covered = 0;
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    covered += result->slot_covered[s];
  }
  out.covered_fraction =
      static_cast<double>(covered) /
      static_cast<double>(std::max<size_t>(1, matrix->num_slots()));
  out.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace

int main() {
  auto config = exp::KvSimConfig::Default();
  const auto kv = exp::BuildKvSim(config);
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }

  exp::PrintBanner("Granularity tuning on the same observation cube");
  exp::TablePrinter table({"Strategy", "sources", "ext groups",
                           "biggest source", "coverage", "seconds"});

  const auto add_row = [&table](const char* name, const Outcome& o) {
    table.AddRow({name, exp::TablePrinter::FmtCount(o.sources),
                  exp::TablePrinter::FmtCount(o.extractor_groups),
                  exp::TablePrinter::FmtCount(o.biggest_source),
                  exp::TablePrinter::Fmt(o.covered_fraction, 3),
                  exp::TablePrinter::Fmt(o.seconds, 2)});
  };

  add_row("finest <site,pred,page>",
          RunWith(*kv, granularity::FinestAssignment(kv->data)));
  add_row("page-level", RunWith(*kv, granularity::PageSourcePlainExtractor(
                                    kv->data)));
  add_row("website-level",
          RunWith(*kv, granularity::WebsiteSourceAssignment(kv->data)));

  for (const auto& [label, m, M] :
       {std::tuple<const char*, size_t, size_t>{"split&merge m=5  M=10K", 5,
                                                10000},
        std::tuple<const char*, size_t, size_t>{"split&merge m=2  M=10K", 2,
                                                10000},
        std::tuple<const char*, size_t, size_t>{"split&merge m=20 M=1K", 20,
                                                1000}}) {
    granularity::SplitMergeOptions source_options;
    source_options.min_size = m;
    source_options.max_size = M;
    granularity::SplitMergeOptions extractor_options = source_options;
    const auto assignment = granularity::SplitMergeAssignment(
        kv->data, source_options, extractor_options);
    if (!assignment.ok()) return 1;
    add_row(label, RunWith(*kv, *assignment));
  }
  table.Print();

  std::printf(
      "\nReading the table: finer sources are more faithful but leave many\n"
      "of them below the support threshold (lower coverage); merging small\n"
      "sources recovers coverage, splitting bounds the biggest group (and\n"
      "with it the slowest reducer). The paper settles on m=5, M=10K.\n");
  return 0;
}
