// Demonstrates Section 4's SPLITANDMERGE through the facade: how the choice
// of source granularity trades statistical strength against computational
// balance. Runs the same skewed dataset at several (m, M) settings and
// reports group structure, coverage and wall-clock.
#include <algorithm>
#include <cstdio>

#include "kbt/kbt.h"

namespace {

using namespace kbt;

struct Outcome {
  size_t sources = 0;
  size_t extractor_groups = 0;
  size_t biggest_source = 0;
  double covered_fraction = 0.0;
  double seconds = 0.0;
};

Outcome RunWith(const exp::KvSimData& kv, const api::Options& options) {
  Outcome out;
  Stopwatch watch;
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(&kv.data)
                      .WithOptions(options)
                      .WithExecutor(&dataflow::DefaultExecutor())
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  const auto report = pipeline->Run();
  if (!report.ok()) std::exit(1);
  out.sources = report->counts.num_sources;
  out.extractor_groups = report->counts.num_extractor_groups;
  const auto* matrix = pipeline->compiled_matrix();
  for (uint32_t w = 0; w < matrix->num_sources(); ++w) {
    const auto [b, e] = matrix->SourceSlots(w);
    out.biggest_source = std::max<size_t>(out.biggest_source, e - b);
  }
  out.covered_fraction = report->CoveredFraction();
  out.seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace

int main() {
  auto config = exp::KvSimConfig::Default();
  const auto kv = exp::BuildKvSim(config);
  if (!kv.ok()) {
    std::fprintf(stderr, "kv-sim failed\n");
    return 1;
  }

  exp::PrintBanner("Granularity tuning on the same observation cube");
  exp::TablePrinter table({"Strategy", "sources", "ext groups",
                           "biggest source", "coverage", "seconds"});

  const auto add_row = [&table](const char* name, const Outcome& o) {
    table.AddRow({name, exp::TablePrinter::FmtCount(o.sources),
                  exp::TablePrinter::FmtCount(o.extractor_groups),
                  exp::TablePrinter::FmtCount(o.biggest_source),
                  exp::TablePrinter::Fmt(o.covered_fraction, 3),
                  exp::TablePrinter::Fmt(o.seconds, 2)});
  };

  api::Options base;
  base.multilayer.num_false_override = 10;

  api::Options finest = base;
  finest.granularity = api::Granularity::kFinest;
  add_row("finest <site,pred,page>", RunWith(*kv, finest));

  api::Options page = base;
  page.granularity = api::Granularity::kPageSource;
  add_row("page-level", RunWith(*kv, page));

  api::Options website = base;
  website.granularity = api::Granularity::kWebsiteSource;
  add_row("website-level", RunWith(*kv, website));

  for (const auto& [label, m, M] :
       {std::tuple<const char*, size_t, size_t>{"split&merge m=5  M=10K", 5,
                                                10000},
        std::tuple<const char*, size_t, size_t>{"split&merge m=2  M=10K", 2,
                                                10000},
        std::tuple<const char*, size_t, size_t>{"split&merge m=20 M=1K", 20,
                                                1000}}) {
    api::Options sm = base;
    sm.granularity = api::Granularity::kSplitMerge;
    sm.sm_source.min_size = m;
    sm.sm_source.max_size = M;
    sm.sm_extractor = sm.sm_source;
    add_row(label, RunWith(*kv, sm));
  }
  table.Print();

  std::printf(
      "\nReading the table: finer sources are more faithful but leave many\n"
      "of them below the support threshold (lower coverage); merging small\n"
      "sources recovers coverage, splitting bounds the biggest group (and\n"
      "with it the slowest reducer). The paper settles on m=5, M=10K.\n");
  return 0;
}
