// End-to-end trust audit of a synthetic web (the Section 5.4 scenario),
// driven entirely through the facade: FromKvSim generates a world with
// reference/news/specialist/gossip/forum/scraper sites and wires its gold
// standard; Run() estimates KBT with the multi-layer model; PageRank over
// the hyperlink graph provides the popularity signal; the report compares
// where the two disagree — including a programmatic version of the paper's
// manual evaluation of 100 high-KBT sites.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "kbt/kbt.h"

int main() {
  using namespace kbt;

  // ---- Build the world + pipeline ----
  auto config = exp::KvSimConfig::Default();
  config.seed = 4242;
  config.corpus.seed = 4242;
  api::Options options;
  options.multilayer.num_false_override = 10;
  auto pipeline = api::PipelineBuilder()
                      .FromKvSim(config)
                      .WithOptions(options)
                      .WithExecutor(&dataflow::DefaultExecutor())
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "kv-sim failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  const corpus::WebCorpus& web = *pipeline->corpus();
  std::printf("world: %zu sites, %zu pages, %zu extraction events\n",
              web.num_websites(), web.num_pages(), pipeline->dataset().size());

  // ---- KBT via the multi-layer model ----
  const auto report = pipeline->Run();
  if (!report.ok()) return 1;
  const auto& kbt = report->website_kbt;

  // ---- PageRank over the link graph ----
  Rng rng(4242);
  const auto graph = corpus::LinkGraph::Generate(web.websites(), 8.0, rng);
  const auto pagerank_scores = pagerank::ComputePageRank(graph);
  if (!pagerank_scores.ok()) return 1;
  const auto pr = pagerank::NormalizeToUnitInterval(*pagerank_scores);

  // ---- Per-category summary ----
  exp::PrintBanner("Trust signals by site category");
  exp::TablePrinter table({"Category", "#sites", "true accuracy",
                           "mean KBT", "mean PageRank"});
  for (int c = 0; c < corpus::kNumSourceCategories; ++c) {
    const auto category = static_cast<corpus::SourceCategory>(c);
    double acc = 0.0;
    double mean_kbt = 0.0;
    double mean_pr = 0.0;
    int count = 0;
    for (const auto& site : web.websites()) {
      if (site.category != category || !kbt[site.id].HasScore(5.0)) continue;
      acc += web.EmpiricalSiteAccuracy(site.id);
      mean_kbt += kbt[site.id].kbt;
      mean_pr += pr[site.id];
      ++count;
    }
    if (count == 0) continue;
    table.AddRow({std::string(corpus::SourceCategoryName(category)),
                  std::to_string(count),
                  exp::TablePrinter::Fmt(acc / count, 2),
                  exp::TablePrinter::Fmt(mean_kbt / count, 2),
                  exp::TablePrinter::Fmt(mean_pr / count, 2)});
  }
  table.Print();

  // ---- The paper's manual evaluation, automated ----
  // Sample the sites with KBT > 0.9 and audit them against the ground
  // truth: are their stated triples actually correct?
  std::vector<uint32_t> high_kbt_sites;
  for (uint32_t w = 0; w < web.num_websites(); ++w) {
    if (kbt[w].HasScore(5.0) && kbt[w].kbt > 0.9) high_kbt_sites.push_back(w);
  }
  size_t trustworthy = 0;
  size_t popular = 0;
  for (uint32_t w : high_kbt_sites) {
    if (web.EmpiricalSiteAccuracy(w) >= 0.9) ++trustworthy;
    if (pr[w] > 0.5) ++popular;
  }
  exp::PrintBanner("Audit of high-KBT sites (KBT > 0.9)");
  std::printf(
      "%zu sites have KBT > 0.9; %zu of them (%.0f%%) truly have accuracy\n"
      ">= 0.9 (the paper's raters confirmed 85 of 100 sampled sites), and\n"
      "only %zu are popular (PageRank > 0.5) — KBT finds trustworthy tail\n"
      "sites PageRank overlooks.\n",
      high_kbt_sites.size(), trustworthy,
      high_kbt_sites.empty()
          ? 0.0
          : 100.0 * static_cast<double>(trustworthy) /
                static_cast<double>(high_kbt_sites.size()),
      popular);

  // ---- The other corner: popular but untrustworthy ----
  const auto pr_ranks = pagerank::DescendingRanks(pr);
  exp::PrintBanner("Popular sites with low KBT (the gossip corner)");
  exp::TablePrinter gossip_table(
      {"Site", "category", "PageRank rank", "KBT", "true accuracy"});
  int shown = 0;
  for (uint32_t w = 0; w < web.num_websites() && shown < 8; ++w) {
    if (pr_ranks[w] >= web.num_websites() * 15 / 100) continue;
    if (!kbt[w].HasScore(5.0) || kbt[w].kbt > 0.6) continue;
    const auto& site = web.website(w);
    gossip_table.AddRow(
        {site.domain, std::string(corpus::SourceCategoryName(site.category)),
         std::to_string(pr_ranks[w] + 1), exp::TablePrinter::Fmt(kbt[w].kbt, 2),
         exp::TablePrinter::Fmt(web.EmpiricalSiteAccuracy(w), 2)});
    ++shown;
  }
  gossip_table.Print();
  std::printf("\nThese are the paper's '15 gossip sites': top-15%% PageRank, "
              "bottom-half KBT.\n");
  return 0;
}
