// The paper's running example (Section 2, Tables 2-4) as a narrated walk
// through the model: 8 webpages state (or don't state) Barack Obama's
// nationality, 5 extractors of varying quality read them, and the
// multi-layer model separates extraction errors from source errors.
//
// The single-layer baseline sees 12 (page, extractor) sources for "USA" and
// 12 for "Kenya" and cannot tell them apart; the multi-layer model explains
// the Kenya votes of the bad extractors away. Everything runs through the
// public kbt::api facade — each scenario is one Pipeline.
#include <cstdio>

#include "kbt/kbt.h"

namespace {

using namespace kbt;
using exp::MotivatingExample;

/// Builds a pipeline over the Tables 2-4 cube with the given options.
api::Pipeline MustBuild(const api::Options& options) {
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(MotivatingExample::Dataset())
                      .WithOptions(options)
                      .Build();
  if (!pipeline.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 pipeline.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*pipeline);
}

/// p(V_d = v | X) for one value, read off a report through the matrix.
double ValueProb(const api::Pipeline& pipeline, const api::TrustReport& report,
                 kb::ValueId value) {
  const auto* matrix = pipeline.compiled_matrix();
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_value(s) == value) return report.inference.slot_value_prob[s];
  }
  return 0.0;
}

}  // namespace

int main() {
  const auto data = MotivatingExample::Dataset();

  std::printf("The evidence (Table 2): who extracted what\n");
  const char* names[] = {"?", "USA", "Kenya", "N.Amer."};
  for (const auto& obs : data.observations) {
    std::printf("  E%u read '%s' on W%u%s\n", obs.extractor + 1,
                names[obs.value], obs.page + 1,
                obs.provided ? "" : "   <- the page never says that");
  }

  // ---- Single-layer baseline: a dead heat ----
  {
    api::Options options;
    options.model = api::Model::kSingleLayer;
    options.granularity = api::Granularity::kProvenance;
    options.single_layer.min_source_support = 1;
    options.single_layer.num_false_override = 10;
    options.single_layer.max_iterations = 1;
    api::Pipeline pipeline = MustBuild(options);
    const auto report = pipeline.Run();
    if (!report.ok()) return 1;
    std::printf(
        "\nSingle-layer baseline (12 provenances each):\n"
        "  p(USA)=%.3f vs p(Kenya)=%.3f  -> cannot break the tie\n",
        ValueProb(pipeline, *report, MotivatingExample::kUsa),
        ValueProb(pipeline, *report, MotivatingExample::kKenya));
  }

  // ---- Multi-layer model with Table 3's extractor quality ----
  api::Options frozen;
  frozen.granularity = api::Granularity::kPageSource;
  frozen.multilayer.min_source_support = 1;
  frozen.multilayer.min_extractor_support = 1;
  frozen.multilayer.num_false_override = 10;
  frozen.multilayer.initial_alpha = 0.5;
  frozen.multilayer.calibrate_correctness = false;
  frozen.multilayer.update_source_accuracy = false;
  frozen.multilayer.update_extractor_quality = false;
  frozen.multilayer.update_alpha = false;
  frozen.multilayer.max_iterations = 1;
  api::Pipeline pipeline = MustBuild(frozen);
  const auto result = pipeline.Run(MotivatingExample::Table3Quality());
  if (!result.ok()) return 1;

  const auto* matrix = pipeline.compiled_matrix();
  std::printf("\nMulti-layer model, extraction layer (Table 4):\n");
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    std::printf("  does W%u really state '%s'?  p(C=1|X) = %.2f\n",
                matrix->slot_source(s) + 1, names[matrix->slot_value(s)],
                result->inference.slot_correct_prob[s]);
  }

  std::printf(
      "\nValue layer: p(USA)=%.3f, p(Kenya)=%.3f  -> USA wins decisively\n",
      ValueProb(pipeline, *result, MotivatingExample::kUsa),
      ValueProb(pipeline, *result, MotivatingExample::kKenya));

  // ---- Full run: KBT per page ----
  api::Options full;
  full.granularity = api::Granularity::kPageSource;
  full.multilayer.min_source_support = 1;
  full.multilayer.min_extractor_support = 1;
  full.multilayer.num_false_override = 10;
  api::Pipeline full_pipeline = MustBuild(full);
  const auto trained = full_pipeline.Run(MotivatingExample::Table3Quality());
  if (!trained.ok()) return 1;
  std::printf("\nEstimated source accuracy A_w after 5 iterations:\n");
  for (uint32_t w = 0; w < trained->counts.num_sources; ++w) {
    std::printf("  W%u: %.2f%s\n", w + 1,
                trained->inference.source_accuracy[w],
                w < 4 ? "  (states USA: trustworthy)"
                      : (w < 6 ? "  (states Kenya: not trustworthy)"
                               : "  (states nothing)"));
  }
  return 0;
}
