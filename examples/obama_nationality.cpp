// The paper's running example (Section 2, Tables 2-4) as a narrated walk
// through the model: 8 webpages state (or don't state) Barack Obama's
// nationality, 5 extractors of varying quality read them, and the
// multi-layer model separates extraction errors from source errors.
//
// The single-layer baseline sees 12 (page, extractor) sources for "USA" and
// 12 for "Kenya" and cannot tell them apart; the multi-layer model explains
// the Kenya votes of the bad extractors away.
#include <cstdio>

#include "common/math.h"
#include "exp/motivating_example.h"
#include "extract/observation_matrix.h"
#include "fusion/single_layer.h"
#include "granularity/assignments.h"
#include "core/multilayer_model.h"

int main() {
  using namespace kbt;
  using exp::MotivatingExample;

  const auto data = MotivatingExample::Dataset();

  std::printf("The evidence (Table 2): who extracted what\n");
  const char* names[] = {"?", "USA", "Kenya", "N.Amer."};
  for (const auto& obs : data.observations) {
    std::printf("  E%u read '%s' on W%u%s\n", obs.extractor + 1,
                names[obs.value], obs.page + 1,
                obs.provided ? "" : "   <- the page never says that");
  }

  // ---- Single-layer baseline: a dead heat ----
  {
    const auto assignment = granularity::ProvenanceAssignment(data);
    const auto matrix = extract::CompiledMatrix::Build(data, assignment);
    if (!matrix.ok()) return 1;
    fusion::SingleLayerConfig config;
    config.min_source_support = 1;
    config.num_false_override = 10;
    config.max_iterations = 1;
    const auto result = fusion::SingleLayerModel::Run(*matrix, config);
    if (!result.ok()) return 1;
    double usa = 0.0;
    double kenya = 0.0;
    for (size_t s = 0; s < matrix->num_slots(); ++s) {
      if (matrix->slot_value(s) == MotivatingExample::kUsa) {
        usa = result->slot_value_prob[s];
      } else if (matrix->slot_value(s) == MotivatingExample::kKenya) {
        kenya = result->slot_value_prob[s];
      }
    }
    std::printf(
        "\nSingle-layer baseline (12 provenances each):\n"
        "  p(USA)=%.3f vs p(Kenya)=%.3f  -> cannot break the tie\n",
        usa, kenya);
  }

  // ---- Multi-layer model with Table 3's extractor quality ----
  const auto assignment = granularity::PageSourcePlainExtractor(data);
  const auto matrix = extract::CompiledMatrix::Build(data, assignment);
  if (!matrix.ok()) return 1;
  core::MultiLayerConfig config;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  config.initial_alpha = 0.5;
  config.calibrate_correctness = false;
  config.update_source_accuracy = false;
  config.update_extractor_quality = false;
  config.update_alpha = false;
  config.max_iterations = 1;
  const auto result = core::MultiLayerModel::Run(
      *matrix, config, MotivatingExample::Table3Quality());
  if (!result.ok()) return 1;

  std::printf("\nMulti-layer model, extraction layer (Table 4):\n");
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    std::printf("  does W%u really state '%s'?  p(C=1|X) = %.2f\n",
                matrix->slot_source(s) + 1, names[matrix->slot_value(s)],
                result->slot_correct_prob[s]);
  }

  double usa = 0.0;
  double kenya = 0.0;
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_value(s) == MotivatingExample::kUsa) {
      usa = result->slot_value_prob[s];
    } else if (matrix->slot_value(s) == MotivatingExample::kKenya) {
      kenya = result->slot_value_prob[s];
    }
  }
  std::printf(
      "\nValue layer: p(USA)=%.3f, p(Kenya)=%.3f  -> USA wins decisively\n",
      usa, kenya);

  // ---- Full run: KBT per page ----
  core::MultiLayerConfig full;
  full.min_source_support = 1;
  full.min_extractor_support = 1;
  full.num_false_override = 10;
  const auto trained = core::MultiLayerModel::Run(
      *matrix, full, MotivatingExample::Table3Quality());
  if (!trained.ok()) return 1;
  std::printf("\nEstimated source accuracy A_w after 5 iterations:\n");
  for (uint32_t w = 0; w < matrix->num_sources(); ++w) {
    std::printf("  W%u: %.2f%s\n", w + 1, trained->source_accuracy[w],
                w < 4 ? "  (states USA: trustworthy)"
                      : (w < 6 ? "  (states Kenya: not trustworthy)"
                               : "  (states nothing)"));
  }
  return 0;
}
