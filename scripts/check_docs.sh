#!/usr/bin/env bash
# Docs consistency check: every intra-repo markdown link in README.md and
# docs/*.md must resolve to an existing file or directory (relative to the
# linking document, or to the repo root). External links (http/https/
# mailto) and pure anchors are skipped. Run by scripts/check.sh and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
  [[ -f "$doc" ]] || continue
  dir=$(dirname "$doc")
  while IFS= read -r target; do
    target="${target%%#*}"          # drop in-page anchors
    [[ -z "$target" ]] && continue  # pure anchor link
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [[ ! -e "$dir/$target" && ! -e "$target" ]]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ $fail -ne 0 ]]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK"
