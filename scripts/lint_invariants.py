#!/usr/bin/env python3
"""Repo-specific invariant linter for the KBT codebase.

The KBT pipeline's contract is *bit-for-bit reproducible* trust scores
(Dong et al., VLDB 2015, Sec. 4: the EM estimates must not drift under
parallel reduction) served from a lock-free read path. These invariants
cannot be expressed in a compiler flag, so this linter enforces them
textually over src/ and include/:

  determinism        No wall-clock or ambient-randomness calls in the
                     inference layers (src/core, src/extract, src/fusion,
                     src/kernels). All stochastic behaviour must flow
                     through kbt::Rng (seeded, fork-able) and all timing
                     through callers.

  unordered-iter     No range-for iteration over std::unordered_map/set in
                     the inference layers without an explicit
                     "deterministic-reduction" comment tag: hash-order
                     iteration feeding a float accumulation silently breaks
                     run-to-run reproducibility. The tag asserts the loop
                     body is order-independent (e.g. pure counting into a
                     keyed slot) or is followed by a sort.

  public-includes    Public headers (include/kbt/*.h) may include only
                     kbt/* and the standard library. Pre-existing internal
                     includes are grandfathered in BASELINE below (the debt
                     register for the facade-isolation roadmap item); new
                     ones are errors. Baseline entries that disappear must
                     be deleted here (the ratchet only tightens).

  raw-sync           std::mutex & friends may appear only inside the
                     annotated locking layer (include/kbt/sync.h, spelled
                     src/common/mutex.h internally). Everything else must
                     use kbt::Mutex / kbt::MutexLock / kbt::CondVar so a
                     clang -Wthread-safety build can prove lock discipline.

  metric-naming      Every metric registered through obs (GetCounter /
                     GetGauge / GetHistogram with a literal name, in src/,
                     include/ and bench/) must follow the
                     kbt_<layer>_<name>_<unit> scheme documented in
                     docs/OBSERVABILITY.md: counters end in _total,
                     histograms in _seconds/_bytes, gauges in a unit noun
                     (_depth, _ratio, _version, _retained). A scrape with
                     mixed conventions is a dashboard nobody can query.

  obs-timing         src/api, src/stream and src/query time their seams
                     through kbt::obs (ScopedTimer / MonotonicNanos), not
                     ad-hoc Stopwatch instances — one clock source, and
                     every latency lands in a scrapeable histogram. The
                     baseline is empty and stays empty (the ratchet only
                     tightens).

A finding can be waived on its own line (or the line above) with
    // kbt-lint: allow(<rule>) -- <justification>
Use sparingly; the waiver text is grep-able review surface.

Usage: scripts/lint_invariants.py [--root DIR]   (exit 1 on any finding)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --- rule: determinism ------------------------------------------------------

DETERMINISM_DIRS = ("src/core", "src/extract", "src/fusion", "src/kernels")

DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w:])(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"std::chrono::(?:system|steady|high_resolution)_clock"),
     "std::chrono wall clock"),
    (re.compile(r"(?<![\w:])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time()"),
    (re.compile(r"(?<![\w:])(?:clock_gettime|gettimeofday|clock)\s*\("),
     "C clock API"),
    (re.compile(r"(?<![\w:])(?:localtime|gmtime)(?:_r)?\s*\("), "date API"),
]

# --- rule: public-includes --------------------------------------------------

# Grandfathered (file -> includes) pairs: the public facade still re-exports
# internal types. Shrink only.
PUBLIC_INCLUDE_BASELINE = {
    "include/kbt/data.h": {
        "eval/gold_standard.h", "exp/kv_sim.h", "exp/motivating_example.h",
        "exp/runners.h", "exp/synthetic.h", "extract/raw_dataset.h",
        "io/dataset_io.h", "kb/ids.h",
    },
    "include/kbt/kbt.h": {
        "common/histogram.h", "common/math.h", "common/random.h",
        "common/stopwatch.h", "corpus/link_graph.h", "dataflow/parallel.h",
        "dataflow/stage_timer.h", "exp/table_printer.h", "pagerank/pagerank.h",
    },
    "include/kbt/options.h": {
        "core/initialization.h", "core/multilayer_config.h",
        "fusion/single_layer.h", "granularity/split_merge.h",
    },
    "include/kbt/pipeline.h": {
        "common/status.h", "extract/raw_dataset.h",
    },
    "include/kbt/query.h": {"kb/ids.h"},
    "include/kbt/report.h": {
        "core/kbt_score.h", "core/multilayer_result.h", "eval/gold_standard.h",
    },
}

QUOTE_INCLUDE_RE = re.compile(r'#\s*include\s+"([^"]+)"')
ANGLE_INCLUDE_RE = re.compile(r"#\s*include\s+<([^>]+)>")

# --- rule: raw-sync ---------------------------------------------------------

SYNC_ALLOWLIST = {"include/kbt/sync.h", "src/common/mutex.h"}

RAW_SYNC_PATTERNS = [
    (re.compile(r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"),
     "raw std mutex type"),
    (re.compile(r"std::condition_variable(?:_any)?\b"),
     "raw std::condition_variable"),
    (re.compile(r"std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "raw std lock wrapper"),
    (re.compile(r"#\s*include\s+<(?:mutex|condition_variable|shared_mutex)>"),
     "raw sync header include"),
]

# --- rule: metric-naming ----------------------------------------------------

METRIC_CALL_RE = re.compile(r'Get(Counter|Gauge|Histogram)\(\s*"([^"]+)"')
METRIC_NAME_RE = re.compile(r"^kbt_[a-z][a-z0-9_]*$")
HISTOGRAM_SUFFIXES = ("_seconds", "_bytes")
GAUGE_SUFFIXES = ("_depth", "_ratio", "_version", "_retained")

# --- rule: obs-timing -------------------------------------------------------

OBS_TIMING_DIRS = ("src/api", "src/stream", "src/query")
OBS_TIMING_RE = re.compile(r"\bStopwatch\b|common/stopwatch\.h")
# Grandfathered Stopwatch uses in the instrumented layers: empty, and the
# ratchet only tightens — new entries are not accepted.
OBS_TIMING_BASELINE: set[str] = set()

# --- rule: unordered-iter ---------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s*"
    r"(?:&\s*)?(\w+)\s*[;({=]")
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*:\s*\*?(\w+)\s*\)")
DETERMINISTIC_TAG = "deterministic-reduction"

WAIVER_RE = re.compile(r"kbt-lint:\s*allow\(([\w,\s-]+)\)")

BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)


def strip_comments(text: str) -> str:
    """Blanks comments (preserving newlines) so rules match code only."""
    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT_RE.sub(blank, text)
    return "\n".join(line.split("//", 1)[0] for line in text.split("\n"))


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.findings: list[str] = []

    def report(self, rule: str, path: pathlib.Path, lineno: int,
               message: str, raw_lines: list[str]) -> None:
        for probe in (lineno - 1, lineno - 2):
            if 0 <= probe < len(raw_lines):
                waiver = WAIVER_RE.search(raw_lines[probe])
                if waiver and rule in waiver.group(1):
                    return
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path: pathlib.Path) -> None:
        rel = str(path.relative_to(self.root))
        raw = path.read_text(encoding="utf-8")
        raw_lines = raw.split("\n")
        code_lines = strip_comments(raw).split("\n")

        self.check_metric_naming(path, code_lines, raw_lines)
        if rel.startswith("bench/"):
            # Benches are scanned for metric naming only; the concurrency
            # and layering rules target the library proper.
            return
        if rel not in SYNC_ALLOWLIST:
            self.check_raw_sync(path, code_lines, raw_lines)
        if any(rel.startswith(d + "/") for d in DETERMINISM_DIRS):
            self.check_determinism(path, code_lines, raw_lines)
            self.check_unordered_iteration(path, code_lines, raw_lines)
        if (any(rel.startswith(d + "/") for d in OBS_TIMING_DIRS)
                and rel not in OBS_TIMING_BASELINE):
            self.check_obs_timing(path, code_lines, raw_lines)
        if rel.startswith("include/kbt/") and rel != "include/kbt/sync.h":
            self.check_public_includes(path, rel, code_lines, raw_lines)

    def check_raw_sync(self, path, code_lines, raw_lines) -> None:
        for i, line in enumerate(code_lines, 1):
            for pattern, what in RAW_SYNC_PATTERNS:
                if pattern.search(line):
                    self.report(
                        "raw-sync", path, i,
                        f"{what}: use kbt::Mutex/MutexLock/CondVar from "
                        "common/mutex.h (public headers: kbt/sync.h)",
                        raw_lines)

    def check_metric_naming(self, path, code_lines, raw_lines) -> None:
        for i, line in enumerate(code_lines, 1):
            for kind, name in METRIC_CALL_RE.findall(line):
                if not METRIC_NAME_RE.match(name):
                    self.report(
                        "metric-naming", path, i,
                        f'metric "{name}" does not match '
                        "kbt_<layer>_<name>_<unit> (lowercase, "
                        "kbt_-prefixed; see docs/OBSERVABILITY.md)",
                        raw_lines)
                    continue
                if kind == "Counter" and not name.endswith("_total"):
                    self.report(
                        "metric-naming", path, i,
                        f'counter "{name}" must end in _total',
                        raw_lines)
                elif (kind == "Histogram"
                      and not name.endswith(HISTOGRAM_SUFFIXES)):
                    self.report(
                        "metric-naming", path, i,
                        f'histogram "{name}" must end in the measured unit '
                        f"({' or '.join(HISTOGRAM_SUFFIXES)})",
                        raw_lines)
                elif kind == "Gauge" and not name.endswith(GAUGE_SUFFIXES):
                    self.report(
                        "metric-naming", path, i,
                        f'gauge "{name}" must end in a unit noun '
                        f"({', '.join(GAUGE_SUFFIXES)}; extend the set in "
                        "scripts/lint_invariants.py if a new unit is real)",
                        raw_lines)

    def check_obs_timing(self, path, code_lines, raw_lines) -> None:
        for i, line in enumerate(code_lines, 1):
            if OBS_TIMING_RE.search(line):
                self.report(
                    "obs-timing", path, i,
                    "ad-hoc Stopwatch in an instrumented layer: time "
                    "through kbt::obs (ScopedTimer into a registered "
                    "histogram, or MonotonicNanos) so the latency is "
                    "scrapeable",
                    raw_lines)

    def check_determinism(self, path, code_lines, raw_lines) -> None:
        for i, line in enumerate(code_lines, 1):
            for pattern, what in DETERMINISM_PATTERNS:
                if pattern.search(line):
                    self.report(
                        "determinism", path, i,
                        f"{what} in an inference layer: draw through "
                        "kbt::Rng / take timings from the caller so runs "
                        "stay bit-for-bit reproducible",
                        raw_lines)

    def check_unordered_iteration(self, path, code_lines, raw_lines) -> None:
        unordered_vars = set()
        for line in code_lines:
            match = UNORDERED_DECL_RE.search(line)
            if match:
                unordered_vars.add(match.group(1))
        if not unordered_vars:
            return
        for i, line in enumerate(code_lines, 1):
            match = RANGE_FOR_RE.search(line)
            if not match or match.group(1) not in unordered_vars:
                continue
            context = raw_lines[max(0, i - 4):i]
            if any(DETERMINISTIC_TAG in c for c in context):
                continue
            self.report(
                "unordered-iter", path, i,
                f"iteration over unordered container '{match.group(1)}' in "
                "an inference layer: hash order is not deterministic — sort "
                "first, or tag the loop with a "
                f"'// {DETERMINISTIC_TAG}: <why order cannot matter>' "
                "comment on the preceding line",
                raw_lines)

    def check_public_includes(self, path, rel, code_lines, raw_lines) -> None:
        grandfathered = PUBLIC_INCLUDE_BASELINE.get(rel, set())
        seen_grandfathered = set()
        for i, line in enumerate(code_lines, 1):
            quoted = QUOTE_INCLUDE_RE.search(line)
            if quoted:
                target = quoted.group(1)
                if target.startswith("kbt/"):
                    continue
                if target in grandfathered:
                    seen_grandfathered.add(target)
                    continue
                self.report(
                    "public-includes", path, i,
                    f'public header includes internal "{target}": public '
                    "headers may include only kbt/* and the standard "
                    "library (no new entries to the baseline)",
                    raw_lines)
                continue
            angled = ANGLE_INCLUDE_RE.search(line)
            if angled and "/" in angled.group(1):
                self.report(
                    "public-includes", path, i,
                    f"<{angled.group(1)}> is not a standard-library header",
                    raw_lines)
        for stale in sorted(grandfathered - seen_grandfathered):
            self.findings.append(
                f"{rel}:1: [public-includes] baseline entry '{stale}' is no "
                "longer included — delete it from PUBLIC_INCLUDE_BASELINE in "
                "scripts/lint_invariants.py (the ratchet only tightens)")

    def run(self) -> int:
        paths = []
        for top in ("src", "include"):
            paths.extend(sorted((self.root / top).rglob("*.h")))
            paths.extend(sorted((self.root / top).rglob("*.cpp")))
        # Benches participate in the metric-naming rule (their private
        # registries feed the same dashboards); see lint_file for scoping.
        paths.extend(sorted((self.root / "bench").glob("*.h")))
        paths.extend(sorted((self.root / "bench").glob("*.cpp")))
        for path in paths:
            self.lint_file(path)
        for finding in self.findings:
            print(finding)
        grandfathered = sum(len(v) for v in PUBLIC_INCLUDE_BASELINE.values())
        print(f"lint_invariants: {len(paths)} files checked, "
              f"{len(self.findings)} finding(s), "
              f"{grandfathered} grandfathered public-header include(s)",
              file=sys.stderr)
        return 1 if self.findings else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", default=str(pathlib.Path(__file__).resolve().parent.parent),
        help="repository root (default: the checkout containing this script)")
    args = parser.parse_args()
    return Linter(pathlib.Path(args.root).resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
