#!/usr/bin/env bash
# Full local/CI check: configure, build, test, smoke-run the quickstart and
# the append-throughput bench (emits BENCH_append.json for trend tooling).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
./build/examples/quickstart
./build/bench/bench_append_throughput --smoke
