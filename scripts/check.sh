#!/usr/bin/env bash
# Full local/CI check: docs consistency, configure, build, test, smoke-run
# the quickstart, the serving + query demos, and the append/serving/cache/
# query benches (emitting BENCH_*.json for trend tooling).
set -euo pipefail
cd "$(dirname "$0")/.."

./scripts/check_docs.sh
cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
./build/examples/quickstart
./build/examples/trust_service
./build/examples/query_trust
./build/bench/bench_append_throughput --smoke
./build/bench/bench_service_throughput --smoke
./build/bench/bench_cache_warmstart --smoke
./build/bench/bench_query_throughput --smoke
