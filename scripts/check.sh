#!/usr/bin/env bash
# Full local/CI check: repo invariant linter, docs consistency, configure,
# build, test, smoke-run the quickstart, the serving + query + streaming
# demos, and the append/serving/cache/query/stream/table7 benches (emitting
# BENCH_*.json for trend tooling; the table7 smoke includes the EM-kernel
# parity hard gate). Extra configure arguments (e.g. -DKBT_WERROR=ON in CI)
# come in through KBT_CONFIGURE_ARGS.
#
# This covers the GCC leg of the correctness tooling; the clang legs
# (thread-safety proof, clang-tidy) and the sanitizer matrix run as their
# own CI jobs — see docs/STATIC_ANALYSIS.md for running those locally.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 scripts/lint_invariants.py
./scripts/check_docs.sh

# Non-blocking format drift report (see .clang-format): tool-optional so
# the check runs the same everywhere, advisory so whitespace never gates a
# functional change.
if command -v clang-format >/dev/null 2>&1; then
  if ! clang-format --dry-run -Werror \
      src/**/*.h src/**/*.cpp include/kbt/*.h tests/**/*.cpp \
      bench/*.cpp examples/*.cpp 2>/dev/null; then
    echo "NOTE: clang-format reports drift (non-blocking; run" \
         "clang-format -i on the files you touched)."
  fi
else
  echo "NOTE: clang-format not installed; skipping format drift report."
fi

cmake -B build -S . ${KBT_CONFIGURE_ARGS:-}
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
./build/examples/quickstart
./build/examples/trust_service
./build/examples/query_trust
./build/examples/stream_trust
./build/bench/bench_append_throughput --smoke
./build/bench/bench_service_throughput --smoke
./build/bench/bench_cache_warmstart --smoke
./build/bench/bench_query_throughput --smoke
./build/bench/bench_shard_scaling --smoke
./build/bench/bench_stream_ingest --smoke
./build/bench/bench_table7_efficiency --smoke
# Latency-under-load soak: mixed query/append/run/tick driver with hard
# gates on per-class liveness and disabled-path macro overhead.
./build/bench/bench_soak --smoke
