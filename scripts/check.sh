#!/usr/bin/env bash
# Full local/CI check: configure, build, test, and smoke-run the quickstart.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
./build/examples/quickstart
