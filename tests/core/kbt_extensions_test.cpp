#include "core/kbt_extensions.h"

#include <gtest/gtest.h>

#include "extract/observation_matrix.h"
#include "granularity/assignments.h"

namespace kbt::core {
namespace {

/// A site that mostly covers predicate 0 (its topic) with a few predicate-1
/// strays, and a trivial site that repeats one value for everything.
struct Fixture {
  extract::RawDataset data;
  extract::GroupAssignment assignment;
  MultiLayerResult result;

  void Add(uint32_t site, uint32_t subject, uint32_t predicate,
           kb::ValueId value) {
    extract::RawObservation obs;
    obs.extractor = 0;
    obs.pattern = 0;
    obs.website = site;
    obs.page = site;
    obs.item = kb::MakeDataItem(subject, predicate);
    obs.value = value;
    data.observations.push_back(obs);
  }

  void Finish() {
    data.num_false_by_predicate = {10, 10};
    data.num_websites = 2;
    data.num_pages = 2;
    data.num_extractors = 1;
    data.num_patterns = 1;
    assignment = granularity::PageSourcePlainExtractor(data);
  }
};

TEST(KbtExtensionsTest, WebsiteTopicsPickDominantPredicates) {
  Fixture f;
  for (uint32_t t = 0; t < 9; ++t) f.Add(0, t, 0, 100 + t);  // Topic: pred 0.
  f.Add(0, 50, 1, 200);  // A stray off-topic triple.
  for (uint32_t t = 0; t < 5; ++t) f.Add(1, t, 1, 300 + t);
  f.Finish();
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());

  TopicOptions options;
  options.top_k = 1;
  options.min_share = 0.5;
  const auto topics = WebsiteTopics(*matrix, 2, options);
  ASSERT_EQ(topics.size(), 2u);
  EXPECT_EQ(topics[0], std::vector<uint32_t>{0});
  EXPECT_EQ(topics[1], std::vector<uint32_t>{1});
}

TEST(KbtExtensionsTest, TopicalKbtIgnoresOffTopicTriples) {
  Fixture f;
  for (uint32_t t = 0; t < 9; ++t) f.Add(0, t, 0, 100 + t);
  f.Add(0, 50, 1, 200);  // Off-topic and false.
  f.Finish();
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());

  MultiLayerResult result;
  result.slot_correct_prob.assign(matrix->num_slots(), 1.0);
  result.slot_value_prob.assign(matrix->num_slots(), 1.0);
  // The off-topic triple is false.
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_predicate(s) == 1) result.slot_value_prob[s] = 0.0;
  }

  const auto plain = ComputeWebsiteKbt(*matrix, result, 2);
  TopicOptions options;
  options.top_k = 1;
  options.min_share = 0.5;
  const auto topics = WebsiteTopics(*matrix, 2, options);
  const auto topical = ComputeTopicalKbt(*matrix, result, 2, topics);

  // Plain KBT is dragged down by the off-topic false triple; topical
  // scoring judges the site only on its own subject matter.
  EXPECT_LT(plain[0].kbt, 0.95);
  EXPECT_NEAR(topical[0].kbt, 1.0, 1e-9);
}

TEST(KbtExtensionsTest, IdfWeightsPenalizeRepeatedValues) {
  Fixture f;
  // Predicate 0: ten slots all stating THE SAME value (trivial).
  for (uint32_t t = 0; t < 10; ++t) f.Add(0, t, 0, 777);
  // Predicate 0 on site 1: ten slots with distinct values (informative).
  for (uint32_t t = 10; t < 20; ++t) f.Add(1, t, 0, 800 + t);
  f.Finish();
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());

  const auto weights = SlotIdfWeights(*matrix);
  double trivial = 0.0;
  double informative = 0.0;
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_value(s) == 777) {
      trivial = weights[s];
    } else {
      informative = weights[s];
    }
  }
  EXPECT_GT(informative, trivial * 2);
}

TEST(KbtExtensionsTest, IdfWeightedKbtDiscountsTrivialAgreement) {
  Fixture f;
  // Site 0: nine trivial true triples (same value) and one informative
  // false triple. Site 1 supplies variety for the IDF statistics.
  for (uint32_t t = 0; t < 9; ++t) f.Add(0, t, 0, 777);
  f.Add(0, 60, 0, 900);
  for (uint32_t t = 10; t < 30; ++t) f.Add(1, t, 0, 800 + t);
  f.Finish();
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());

  MultiLayerResult result;
  result.slot_correct_prob.assign(matrix->num_slots(), 1.0);
  result.slot_value_prob.assign(matrix->num_slots(), 1.0);
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_value(s) == 900) result.slot_value_prob[s] = 0.0;
  }

  const auto plain = ComputeWebsiteKbt(*matrix, result, 2);
  const auto idf = ComputeIdfWeightedKbt(*matrix, result, 2);
  // Under plain KBT the site looks 90% accurate; IDF weighting sees one
  // informative-and-wrong triple against nine trivial ones and scores it
  // substantially lower.
  EXPECT_GT(plain[0].kbt, 0.85);
  EXPECT_LT(idf[0].kbt, plain[0].kbt - 0.1);
}

TEST(KbtExtensionsTest, EmptySitesGetZeroScores) {
  Fixture f;
  f.Add(0, 1, 0, 100);
  f.Finish();
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());
  MultiLayerResult result;
  result.slot_correct_prob.assign(matrix->num_slots(), 1.0);
  result.slot_value_prob.assign(matrix->num_slots(), 1.0);
  // Ask for more sites than exist in the matrix.
  const auto idf = ComputeIdfWeightedKbt(*matrix, result, 5);
  ASSERT_EQ(idf.size(), 5u);
  EXPECT_DOUBLE_EQ(idf[4].kbt, 0.0);
  EXPECT_DOUBLE_EQ(idf[4].evidence, 0.0);
}

}  // namespace
}  // namespace kbt::core
