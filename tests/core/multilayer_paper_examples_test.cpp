#include <gtest/gtest.h>

#include "common/math.h"
#include "exp/motivating_example.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "core/multilayer_model.h"

namespace kbt::core {
namespace {

using exp::MotivatingExample;
using extract::CompiledMatrix;

/// Runs one frozen-parameter iteration on the Table 2 fixture with Table 3
/// quality — the exact setting of the paper's worked examples.
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MotivatingExample::Dataset();
    assignment_ = granularity::PageSourcePlainExtractor(data_);
    auto matrix = CompiledMatrix::Build(data_, assignment_);
    ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
    matrix_ = std::make_unique<CompiledMatrix>(std::move(*matrix));

    config_.max_iterations = 1;
    config_.update_source_accuracy = false;
    config_.update_extractor_quality = false;
    config_.update_alpha = false;
    config_.min_source_support = 1;
    config_.min_extractor_support = 1;
    config_.num_false_override = 10;
    config_.gamma = 0.25;
    // The worked examples assume the paper's stated alpha = 0.5 (so that
    // p(C|X) = sigma(VCC) exactly) and check raw, uncalibrated posteriors.
    config_.initial_alpha = 0.5;
    config_.calibrate_correctness = false;
  }

  /// Slot index for (page, value) in the compiled matrix.
  std::optional<size_t> FindSlot(int page, kb::ValueId value) const {
    for (size_t s = 0; s < matrix_->num_slots(); ++s) {
      if (matrix_->slot_source(s) == static_cast<uint32_t>(page) &&
          matrix_->slot_value(s) == value) {
        return s;
      }
    }
    return std::nullopt;
  }

  extract::RawDataset data_;
  extract::GroupAssignment assignment_;
  std::unique_ptr<CompiledMatrix> matrix_;
  MultiLayerConfig config_;
};

TEST_F(PaperExampleTest, MatrixShape) {
  // 8 sources, 5 extractor groups, 1 item; 13 distinct (w,d,v) slots.
  EXPECT_EQ(matrix_->num_sources(), 8u);
  EXPECT_EQ(matrix_->num_extractor_groups(), 5u);
  EXPECT_EQ(matrix_->num_items(), 1u);
  EXPECT_EQ(matrix_->num_slots(), 13u);
  EXPECT_EQ(matrix_->num_extractions(), 26u);
}

TEST_F(PaperExampleTest, Table4ExtractionCorrectness) {
  const auto result = MultiLayerModel::Run(
      *matrix_, config_, MotivatingExample::Table3Quality());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  for (const auto& expected : MotivatingExample::Table4()) {
    const auto slot = FindSlot(expected.page, expected.value);
    ASSERT_TRUE(slot.has_value())
        << "missing slot W" << (expected.page + 1) << " value "
        << expected.value;
    EXPECT_NEAR(result->slot_correct_prob[*slot], expected.probability, 0.01)
        << "W" << (expected.page + 1) << " value " << expected.value;
  }
}

TEST_F(PaperExampleTest, Example31VoteCountsViaLogit) {
  const auto result = MultiLayerModel::Run(
      *matrix_, config_, MotivatingExample::Table3Quality());
  ASSERT_TRUE(result.ok());
  // With alpha = 0.5 the posterior is sigma(VCC), so logit recovers VCC.
  const auto w7 = FindSlot(6, MotivatingExample::kKenya);
  ASSERT_TRUE(w7.has_value());
  EXPECT_NEAR(Logit(result->slot_correct_prob[*w7]), -2.65, 0.05);

  const auto w1 = FindSlot(0, MotivatingExample::kUsa);
  ASSERT_TRUE(w1.has_value());
  EXPECT_NEAR(Logit(result->slot_correct_prob[*w1]), 11.7, 0.1);

  const auto w6 = FindSlot(5, MotivatingExample::kUsa);
  ASSERT_TRUE(w6.has_value());
  EXPECT_NEAR(Logit(result->slot_correct_prob[*w6]), -9.4, 0.1);
}

TEST_F(PaperExampleTest, Table4ValuePosteriorWeighted) {
  const auto result = MultiLayerModel::Run(
      *matrix_, config_, MotivatingExample::Table3Quality());
  ASSERT_TRUE(result.ok());
  // Improved (weighted) estimator: close to the paper's 0.995 / 0.004.
  const auto usa = FindSlot(0, MotivatingExample::kUsa);
  const auto kenya = FindSlot(4, MotivatingExample::kKenya);
  ASSERT_TRUE(usa.has_value());
  ASSERT_TRUE(kenya.has_value());
  EXPECT_NEAR(result->slot_value_prob[*usa], 0.995, 0.003);
  EXPECT_NEAR(result->slot_value_prob[*kenya], 0.005, 0.003);
  // N.Amer gets essentially zero.
  const auto namer = FindSlot(1, MotivatingExample::kNAmerica);
  ASSERT_TRUE(namer.has_value());
  EXPECT_LT(result->slot_value_prob[*namer], 1e-3);
}

TEST_F(PaperExampleTest, Example32MapVariantExact) {
  // With the MAP estimate C-hat (Section 3.3.2, not the improved weighted
  // version) the numbers of Example 3.2 are exact: vote 2.7 per source,
  // p(USA)=0.9954, p(Kenya)=0.0044.
  MultiLayerConfig map_config = config_;
  map_config.weighted_value_votes = false;
  const auto result = MultiLayerModel::Run(
      *matrix_, map_config, MotivatingExample::Table3Quality());
  ASSERT_TRUE(result.ok());

  const double vote = SourceVote(0.6, 10);
  const double z = std::exp(4 * vote) + std::exp(2 * vote) + 9.0;
  const auto usa = FindSlot(0, MotivatingExample::kUsa);
  const auto kenya = FindSlot(4, MotivatingExample::kKenya);
  ASSERT_TRUE(usa.has_value());
  ASSERT_TRUE(kenya.has_value());
  EXPECT_NEAR(result->slot_value_prob[*usa], std::exp(4 * vote) / z, 1e-6);
  EXPECT_NEAR(result->slot_value_prob[*kenya], std::exp(2 * vote) / z, 1e-6);
  EXPECT_NEAR(result->slot_value_prob[*usa], 0.995, 0.001);
  EXPECT_NEAR(result->slot_value_prob[*kenya], 0.004, 0.001);
  // The unobserved-value mass: 9 values share 9/z.
  EXPECT_NEAR(result->item_unobserved_value_prob[0], 1.0 / z, 1e-9);
}

TEST_F(PaperExampleTest, Example33PriorUpdateLowersFalsePositive) {
  // Second iteration with alpha re-estimation: W7's Kenya slot drops from
  // 0.066 toward ~0.04 (Example 3.3).
  MultiLayerConfig two_iter = config_;
  two_iter.max_iterations = 2;
  two_iter.update_alpha = true;
  two_iter.alpha_update_start_iteration = 1;
  two_iter.alpha_update_rule = AlphaUpdateRule::kPaperEq26;
  const auto result = MultiLayerModel::Run(
      *matrix_, two_iter, MotivatingExample::Table3Quality());
  ASSERT_TRUE(result.ok());
  const auto w7 = FindSlot(6, MotivatingExample::kKenya);
  ASSERT_TRUE(w7.has_value());
  EXPECT_GT(result->slot_correct_prob[*w7], 0.02);
  EXPECT_LT(result->slot_correct_prob[*w7], 0.06);
  // And the stored alpha reflects Eq. 26 with A_w = 0.6.
  EXPECT_NEAR(result->slot_alpha[*w7],
              UpdatedAlpha(result->slot_value_prob[*w7], 0.6), 1e-9);
}

TEST_F(PaperExampleTest, Example34ConfidenceWeighting) {
  // E1 extracts from W3/W4 with confidence .85, E3 with .5; collectively we
  // should still be fairly confident W3 provides (Obama,nationality,USA).
  extract::RawDataset soft = MotivatingExample::Dataset();
  for (auto& obs : soft.observations) {
    if ((obs.page == 2 || obs.page == 3) &&
        obs.value == MotivatingExample::kUsa) {
      if (obs.extractor == 0) obs.confidence = 0.85f;
      if (obs.extractor == 2) obs.confidence = 0.5f;
    }
  }
  const auto assignment = granularity::PageSourcePlainExtractor(soft);
  auto matrix = CompiledMatrix::Build(soft, assignment);
  ASSERT_TRUE(matrix.ok());

  const auto weighted = MultiLayerModel::Run(
      *matrix, config_, MotivatingExample::Table3Quality());
  ASSERT_TRUE(weighted.ok());

  MultiLayerConfig thresholded_config = config_;
  thresholded_config.use_confidence_weights = false;
  thresholded_config.confidence_threshold = 0.7;
  const auto thresholded = MultiLayerModel::Run(
      *matrix, thresholded_config, MotivatingExample::Table3Quality());
  ASSERT_TRUE(thresholded.ok());

  size_t w3_usa = 0;
  bool found = false;
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_source(s) == 2 &&
        matrix->slot_value(s) == MotivatingExample::kUsa) {
      w3_usa = s;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  // Soft evidence: sigma(1.51) ~ 0.82 -> fairly confident.
  EXPECT_NEAR(weighted->slot_correct_prob[w3_usa], 0.82, 0.05);
  // Thresholding at 0.7 discards E3's extraction and loses the signal.
  EXPECT_LT(thresholded->slot_correct_prob[w3_usa],
            weighted->slot_correct_prob[w3_usa] - 0.3);
}

TEST_F(PaperExampleTest, SourceAccuracyUpdateSeparatesGoodAndBadSources) {
  // Full run with parameter updates: W1-W4 (truthful pages) must end more
  // accurate than W5-W6 (pages stating Kenya).
  MultiLayerConfig full = config_;
  full.max_iterations = 5;
  full.update_source_accuracy = true;
  full.update_extractor_quality = true;
  full.update_alpha = true;
  const auto result = MultiLayerModel::Run(
      *matrix_, full, MotivatingExample::Table3Quality());
  ASSERT_TRUE(result.ok());
  for (int good = 0; good < 4; ++good) {
    for (int bad = 4; bad < 6; ++bad) {
      EXPECT_GT(result->source_accuracy[static_cast<size_t>(good)],
                result->source_accuracy[static_cast<size_t>(bad)])
          << "W" << good + 1 << " vs W" << bad + 1;
    }
  }
}

}  // namespace
}  // namespace kbt::core
