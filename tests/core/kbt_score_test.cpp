#include "core/kbt_score.h"

#include <gtest/gtest.h>

#include "exp/motivating_example.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "core/multilayer_model.h"

namespace kbt::core {
namespace {

using exp::MotivatingExample;
using extract::CompiledMatrix;

class KbtScoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MotivatingExample::Dataset();
    const auto assignment = granularity::PageSourcePlainExtractor(data_);
    auto matrix = CompiledMatrix::Build(data_, assignment);
    ASSERT_TRUE(matrix.ok());
    matrix_ = std::make_unique<CompiledMatrix>(std::move(*matrix));

    MultiLayerConfig config;
    config.max_iterations = 5;
    config.min_source_support = 1;
    config.min_extractor_support = 1;
    config.num_false_override = 10;
    auto result = MultiLayerModel::Run(*matrix_, config,
                                       MotivatingExample::Table3Quality());
    ASSERT_TRUE(result.ok());
    result_ = std::make_unique<MultiLayerResult>(std::move(*result));
  }

  extract::RawDataset data_;
  std::unique_ptr<CompiledMatrix> matrix_;
  std::unique_ptr<MultiLayerResult> result_;
};

TEST_F(KbtScoreTest, TruthfulPagesScoreHigherThanFalsePages) {
  const auto scores = ComputeWebsiteKbt(*matrix_, *result_, 8);
  ASSERT_EQ(scores.size(), 8u);
  for (int good = 0; good < 4; ++good) {
    for (int bad = 4; bad < 6; ++bad) {
      EXPECT_GT(scores[static_cast<size_t>(good)].kbt,
                scores[static_cast<size_t>(bad)].kbt)
          << "W" << good + 1 << " vs W" << bad + 1;
    }
  }
}

TEST_F(KbtScoreTest, EvidenceTracksCorrectlyExtractedTriples) {
  const auto scores = ComputeWebsiteKbt(*matrix_, *result_, 8);
  // W1 has one solidly-provided triple (USA) plus a spurious Kenya slot with
  // p(C)~0: evidence close to 1.
  EXPECT_NEAR(scores[0].evidence, 1.0, 0.15);
  // W7/W8 provide nothing; their slots have tiny p(C).
  EXPECT_LT(scores[6].evidence, 0.2);
  EXPECT_LT(scores[7].evidence, 0.2);
}

TEST_F(KbtScoreTest, HasScoreGatesOnEvidence) {
  KbtScore score;
  score.evidence = 4.0;
  EXPECT_FALSE(score.HasScore(5.0));
  score.evidence = 5.0;
  EXPECT_TRUE(score.HasScore(5.0));
}

TEST_F(KbtScoreTest, SourceKbtMatchesWebsiteKbtWhenSourceIsPage) {
  // In this fixture source == page == website, so both aggregations agree.
  const auto by_site = ComputeWebsiteKbt(*matrix_, *result_, 8);
  const auto by_source = ComputeSourceKbt(*matrix_, *result_);
  ASSERT_EQ(by_source.size(), 8u);
  for (size_t w = 0; w < 8; ++w) {
    EXPECT_NEAR(by_site[w].kbt, by_source[w].kbt, 1e-12);
    EXPECT_NEAR(by_site[w].evidence, by_source[w].evidence, 1e-12);
  }
}

TEST_F(KbtScoreTest, ZeroEvidenceYieldsZeroScore) {
  MultiLayerResult empty;
  empty.slot_correct_prob.assign(matrix_->num_slots(), 0.0);
  empty.slot_value_prob.assign(matrix_->num_slots(), 1.0);
  const auto scores = ComputeWebsiteKbt(*matrix_, empty, 8);
  for (const auto& s : scores) {
    EXPECT_DOUBLE_EQ(s.kbt, 0.0);
    EXPECT_DOUBLE_EQ(s.evidence, 0.0);
  }
}

}  // namespace
}  // namespace kbt::core
