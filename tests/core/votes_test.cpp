#include <gtest/gtest.h>

#include "common/math.h"
#include "exp/motivating_example.h"
#include "core/multilayer_model.h"

namespace kbt::core {
namespace {

using exp::MotivatingExample;

// Table 3 of the paper: presence/absence votes from (Q, R).
TEST(VotesTest, Table3PresenceAbsenceVotes) {
  const auto rows = MotivatingExample::Table3Rows();
  const double expected_pre[5] = {4.6, 3.9, 2.8, 0.4, 0.0};
  const double expected_abs[5] = {-4.6, -0.7, -4.5, -0.15, 0.0};
  for (int i = 0; i < 5; ++i) {
    const ExtractorVotes v = ComputeVotes(rows[static_cast<size_t>(i)].r,
                                          rows[static_cast<size_t>(i)].q, 1.0);
    EXPECT_NEAR(v.presence, expected_pre[i], 0.05) << "E" << (i + 1);
    EXPECT_NEAR(v.weighted_absence, expected_abs[i], 0.05) << "E" << (i + 1);
  }
}

TEST(VotesTest, AbsenceWeightScalesAbsenceOnly) {
  const ExtractorVotes full = ComputeVotes(0.8, 0.1, 1.0);
  const ExtractorVotes half = ComputeVotes(0.8, 0.1, 0.5);
  EXPECT_DOUBLE_EQ(full.presence, half.presence);
  EXPECT_NEAR(half.weighted_absence, full.weighted_absence * 0.5, 1e-12);
}

// Example 3.1: vote count for (W1, USA) is 11.7; for (W6, USA) it is -9.4.
TEST(VotesTest, Example31VoteCounts) {
  const auto rows = MotivatingExample::Table3Rows();
  double pre[5];
  double abs[5];
  for (int i = 0; i < 5; ++i) {
    const ExtractorVotes v = ComputeVotes(rows[static_cast<size_t>(i)].r,
                                          rows[static_cast<size_t>(i)].q, 1.0);
    pre[i] = v.presence;
    abs[i] = v.weighted_absence;
  }
  // W1/USA: E1..E4 extract, E5 absent.
  const double w1 = pre[0] + pre[1] + pre[2] + pre[3] + abs[4];
  EXPECT_NEAR(w1, 11.7, 0.1);
  EXPECT_NEAR(Sigmoid(w1), 1.0, 1e-4);
  // W6/USA: only E4 extracts.
  const double w6 = pre[3] + abs[0] + abs[1] + abs[2] + abs[4];
  EXPECT_NEAR(w6, -9.4, 0.1);
  EXPECT_NEAR(Sigmoid(w6), 0.0, 1e-4);
  // W7/Kenya (Example 3.3): E3 and E5 extract.
  const double w7 = pre[2] + pre[4] + abs[0] + abs[1] + abs[3];
  EXPECT_NEAR(w7, -2.65, 0.05);
  EXPECT_NEAR(Sigmoid(w7), 0.066, 0.005);
}

// Example 3.2: source vote ln(10*0.6/0.4) = 2.7; posterior 0.995 / 0.004.
TEST(VotesTest, Example32SourceVotesAndPosterior) {
  const double vote = SourceVote(0.6, 10);
  EXPECT_NEAR(vote, 2.7, 0.01);
  const double usa = vote * 4;
  const double kenya = vote * 2;
  const double z = std::exp(usa) + std::exp(kenya) + 9.0;
  EXPECT_NEAR(std::exp(usa) / z, 0.995, 0.001);
  EXPECT_NEAR(std::exp(kenya) / z, 0.004, 0.001);
}

// Example 3.3: updated prior 0.004*0.6 + 0.996*0.4 = 0.4, and the updated
// posterior sigma(-2.65 + logit(0.4)) = 0.04.
TEST(VotesTest, Example33AlphaUpdate) {
  const double alpha = UpdatedAlpha(0.004, 0.6);
  EXPECT_NEAR(alpha, 0.4, 0.005);
  const double posterior = Sigmoid(-2.65 + Logit(alpha));
  EXPECT_NEAR(posterior, 0.04, 0.01);
}

TEST(VotesTest, AlphaUpdateBounds) {
  // A certain-true triple from a perfect source keeps a high prior.
  EXPECT_NEAR(UpdatedAlpha(1.0, 0.99), 0.99, 1e-9);
  // A certain-false triple from a perfect source gets a low prior.
  EXPECT_NEAR(UpdatedAlpha(0.0, 0.99), 0.01, 1e-9);
  // An uninformative source yields an uninformative prior.
  EXPECT_NEAR(UpdatedAlpha(0.3, 0.5), 0.5, 1e-9);
}

}  // namespace
}  // namespace kbt::core
