#include "core/initialization.h"

#include <gtest/gtest.h>

#include "common/math.h"
#include "exp/motivating_example.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "core/multilayer_model.h"

namespace kbt::core {
namespace {

using exp::MotivatingExample;
using extract::CompiledMatrix;

class InitializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MotivatingExample::Dataset();
    assignment_ = granularity::PageSourcePlainExtractor(data_);
    auto matrix = CompiledMatrix::Build(data_, assignment_);
    ASSERT_TRUE(matrix.ok());
    matrix_ = std::make_unique<CompiledMatrix>(std::move(*matrix));
  }

  /// The oracle labeler: USA true, everything else false (single-truth).
  static std::optional<bool> Oracle(kb::DataItemId item, kb::ValueId value) {
    (void)item;
    return value == MotivatingExample::kUsa;
  }

  extract::RawDataset data_;
  extract::GroupAssignment assignment_;
  std::unique_ptr<CompiledMatrix> matrix_;
  MultiLayerConfig config_;
};

TEST_F(InitializationTest, SourcesWithTrueTriplesGetHigherAccuracy) {
  SmartInitOptions options;
  options.min_labeled = 1;
  options.smoothing = 0.5;
  const InitialQuality init =
      InitialQualityFromLabels(*matrix_, Oracle, config_, options);
  ASSERT_EQ(init.source_accuracy.size(), 8u);
  // W1 (mostly USA slots) must beat W5 (all Kenya slots).
  EXPECT_GT(init.source_accuracy[0], init.source_accuracy[4]);
  // W5's initial accuracy is pulled well below the default.
  EXPECT_LT(init.source_accuracy[4], config_.default_source_accuracy - 0.2);
}

TEST_F(InitializationTest, UnknownLabelsFallBackToDefault) {
  const auto unknown = [](kb::DataItemId, kb::ValueId) {
    return std::optional<bool>();
  };
  const InitialQuality init =
      InitialQualityFromLabels(*matrix_, unknown, config_);
  for (double a : init.source_accuracy) {
    EXPECT_DOUBLE_EQ(a, config_.default_source_accuracy);
  }
  for (double p : init.extractor_precision) {
    EXPECT_DOUBLE_EQ(
        p, PrecisionFromQ(config_.default_q, config_.default_recall,
                          config_.gamma));
  }
}

TEST_F(InitializationTest, MinLabeledGate) {
  SmartInitOptions options;
  options.min_labeled = 100;  // No group has that many labels.
  const InitialQuality init =
      InitialQualityFromLabels(*matrix_, Oracle, config_, options);
  for (double a : init.source_accuracy) {
    EXPECT_DOUBLE_EQ(a, config_.default_source_accuracy);
  }
}

TEST_F(InitializationTest, SmoothingPullsTowardDefault) {
  SmartInitOptions light;
  light.min_labeled = 1;
  light.smoothing = 0.1;
  SmartInitOptions heavy;
  heavy.min_labeled = 1;
  heavy.smoothing = 100.0;
  const InitialQuality a =
      InitialQualityFromLabels(*matrix_, Oracle, config_, light);
  const InitialQuality b =
      InitialQualityFromLabels(*matrix_, Oracle, config_, heavy);
  // Heavy smoothing keeps W5 near the default; light smoothing does not.
  EXPECT_NEAR(b.source_accuracy[4], config_.default_source_accuracy, 0.05);
  EXPECT_LT(a.source_accuracy[4], 0.2);
}

TEST_F(InitializationTest, ExtractorPrecisionReflectsLabels) {
  SmartInitOptions options;
  options.min_labeled = 1;
  options.smoothing = 0.5;
  const InitialQuality init =
      InitialQualityFromLabels(*matrix_, Oracle, config_, options);
  ASSERT_EQ(init.extractor_precision.size(), 5u);
  // E1 (all USA extractions on truthful pages... it extracts 4 USA + 2
  // Kenya) still beats E5 (all Kenya).
  EXPECT_GT(init.extractor_precision[0], init.extractor_precision[4]);
}

TEST_F(InitializationTest, InitialQualityFeedsRun) {
  SmartInitOptions options;
  options.min_labeled = 1;
  const InitialQuality init =
      InitialQualityFromLabels(*matrix_, Oracle, config_, options);
  MultiLayerConfig config;
  config.max_iterations = 2;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  const auto result = MultiLayerModel::Run(*matrix_, config, init);
  ASSERT_TRUE(result.ok());
  // Smart init should give USA a decisive win.
  for (size_t s = 0; s < matrix_->num_slots(); ++s) {
    if (matrix_->slot_value(s) == MotivatingExample::kUsa) {
      EXPECT_GT(result->slot_value_prob[s], 0.9);
    }
  }
}

}  // namespace
}  // namespace kbt::core
