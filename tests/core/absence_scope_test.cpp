// Verifies the absence-vote scoping machinery: an extractor group whose
// scope is restricted to one (predicate, website) region must cast absence
// votes only against slots inside that region. This is what makes the
// finest extractor granularity <extractor, pattern, predicate, website>
// meaningful.
#include <gtest/gtest.h>

#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "core/multilayer_model.h"

namespace kbt::core {
namespace {

/// Two websites, one item each. Extractor 0 covers ONLY website 0 (it has
/// extractions there); extractor 1 covers both. Website 1's slot is
/// extracted by extractor 1 alone.
extract::RawDataset TwoSiteDataset() {
  extract::RawDataset data;
  auto add = [&data](uint32_t extractor, uint32_t site, uint32_t subject,
                     kb::ValueId value) {
    extract::RawObservation obs;
    obs.extractor = extractor;
    obs.pattern = extractor;
    obs.website = site;
    obs.page = site;
    obs.item = kb::MakeDataItem(subject, 0);
    obs.value = value;
    data.observations.push_back(obs);
  };
  add(0, 0, 1, 100);  // E0 on site 0.
  add(1, 0, 1, 100);  // E1 on site 0 (same slot).
  add(1, 1, 2, 200);  // E1 alone on site 1.
  data.num_false_by_predicate = {10};
  data.num_websites = 2;
  data.num_pages = 2;
  data.num_extractors = 2;
  data.num_patterns = 2;
  return data;
}

MultiLayerConfig FrozenConfig() {
  MultiLayerConfig config;
  config.max_iterations = 1;
  config.update_source_accuracy = false;
  config.update_extractor_quality = false;
  config.update_alpha = false;
  config.calibrate_correctness = false;
  config.initial_alpha = 0.5;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  return config;
}

InitialQuality StrongExtractors(size_t n) {
  InitialQuality init;
  init.extractor_recall.assign(n, 0.9);
  init.extractor_q.assign(n, 0.05);
  return init;
}

TEST(AbsenceScopeTest, ScopedExtractorDoesNotPunishOtherSites) {
  const auto data = TwoSiteDataset();

  // Plain granularity: extractor groups cover everything, so E0's absence
  // vote hits website 1's slot.
  const auto plain_assignment = granularity::PageSourcePlainExtractor(data);
  const auto plain_matrix =
      extract::CompiledMatrix::Build(data, plain_assignment);
  ASSERT_TRUE(plain_matrix.ok());
  const auto plain = MultiLayerModel::Run(
      *plain_matrix, FrozenConfig(),
      StrongExtractors(plain_matrix->num_extractor_groups()));
  ASSERT_TRUE(plain.ok());

  // Finest granularity: E0's group is scoped to (pred 0, site 0) and casts
  // no absence vote on site 1.
  const auto finest_assignment = granularity::FinestAssignment(data);
  const auto finest_matrix =
      extract::CompiledMatrix::Build(data, finest_assignment);
  ASSERT_TRUE(finest_matrix.ok());
  const auto finest = MultiLayerModel::Run(
      *finest_matrix, FrozenConfig(),
      StrongExtractors(finest_matrix->num_extractor_groups()));
  ASSERT_TRUE(finest.ok());

  const auto find_site1_slot = [](const extract::CompiledMatrix& m) {
    for (size_t s = 0; s < m.num_slots(); ++s) {
      if (m.slot_website(s) == 1) return s;
    }
    ADD_FAILURE() << "site-1 slot missing";
    return size_t{0};
  };
  const double plain_c =
      plain->slot_correct_prob[find_site1_slot(*plain_matrix)];
  const double finest_c =
      finest->slot_correct_prob[find_site1_slot(*finest_matrix)];

  // Identical presence evidence; the only difference is E0's absence vote,
  // which must hit in the plain case and not in the finest case.
  EXPECT_GT(finest_c, plain_c + 0.15);
}

TEST(AbsenceScopeTest, SameSiteSlotsUnaffectedByScoping) {
  const auto data = TwoSiteDataset();
  const auto plain_assignment = granularity::PageSourcePlainExtractor(data);
  const auto finest_assignment = granularity::FinestAssignment(data);
  const auto plain_matrix =
      extract::CompiledMatrix::Build(data, plain_assignment);
  const auto finest_matrix =
      extract::CompiledMatrix::Build(data, finest_assignment);
  ASSERT_TRUE(plain_matrix.ok());
  ASSERT_TRUE(finest_matrix.ok());
  const auto plain = MultiLayerModel::Run(
      *plain_matrix, FrozenConfig(),
      StrongExtractors(plain_matrix->num_extractor_groups()));
  const auto finest = MultiLayerModel::Run(
      *finest_matrix, FrozenConfig(),
      StrongExtractors(finest_matrix->num_extractor_groups()));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(finest.ok());

  // Site 0's slot is extracted by both extractors in both granularities,
  // and both extractor groups cover site 0 either way: same posterior.
  const auto find_site0_slot = [](const extract::CompiledMatrix& m) {
    for (size_t s = 0; s < m.num_slots(); ++s) {
      if (m.slot_website(s) == 0) return s;
    }
    return size_t{0};
  };
  EXPECT_NEAR(plain->slot_correct_prob[find_site0_slot(*plain_matrix)],
              finest->slot_correct_prob[find_site0_slot(*finest_matrix)],
              1e-9);
}

TEST(AbsenceScopeTest, SplitBucketsShareAbsenceMass) {
  // Two identical extractor groups with absence_weight 0.5 each must
  // produce the same posterior as one group with weight 1.0.
  const auto data = TwoSiteDataset();
  extract::GroupAssignment one = granularity::PageSourcePlainExtractor(data);

  extract::GroupAssignment halves = one;
  // Duplicate extractor 0's group into two half-weight buckets; move E0's
  // single extraction into bucket A (group re-used), bucket B exists with
  // no extraction but still casts (half) absence everywhere.
  halves.num_extractor_groups = 3;
  halves.extractor_scopes.push_back(halves.extractor_scopes[0]);
  halves.extractor_scopes[0].absence_weight = 0.5;
  halves.extractor_scopes[2].absence_weight = 0.5;

  const auto matrix_one = extract::CompiledMatrix::Build(data, one);
  const auto matrix_halves = extract::CompiledMatrix::Build(data, halves);
  ASSERT_TRUE(matrix_one.ok());
  ASSERT_TRUE(matrix_halves.ok());

  const auto r1 = MultiLayerModel::Run(
      *matrix_one, FrozenConfig(),
      StrongExtractors(matrix_one->num_extractor_groups()));
  const auto r2 = MultiLayerModel::Run(
      *matrix_halves, FrozenConfig(),
      StrongExtractors(matrix_halves->num_extractor_groups()));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());

  // Slot on site 1 (not extracted by extractor 0): absence mass from
  // 2 x 0.5 buckets equals one full group.
  for (size_t s = 0; s < matrix_one->num_slots(); ++s) {
    if (matrix_one->slot_website(s) != 1) continue;
    for (size_t t = 0; t < matrix_halves->num_slots(); ++t) {
      if (matrix_halves->slot_website(t) != 1) continue;
      EXPECT_NEAR(r1->slot_correct_prob[s], r2->slot_correct_prob[t], 1e-9);
    }
  }
}

}  // namespace
}  // namespace kbt::core
