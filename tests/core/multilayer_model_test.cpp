#include "core/multilayer_model.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "dataflow/parallel.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"

namespace kbt::core {
namespace {

using exp::GenerateSynthetic;
using exp::SyntheticConfig;
using extract::CompiledMatrix;

CompiledMatrix BuildSyntheticMatrix(const SyntheticConfig& config) {
  const auto synthetic = GenerateSynthetic(config);
  const auto assignment =
      granularity::PageSourcePlainExtractor(synthetic.data);
  auto matrix = CompiledMatrix::Build(synthetic.data, assignment);
  EXPECT_TRUE(matrix.ok());
  return std::move(*matrix);
}

MultiLayerConfig TestConfig() {
  MultiLayerConfig config;
  config.max_iterations = 5;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  return config;
}

TEST(MultiLayerModelTest, RecoversSourceAccuracyOnSyntheticData) {
  SyntheticConfig sc;
  sc.num_sources = 10;
  sc.num_extractors = 8;  // More evidence than the default challenge case.
  sc.recall = 0.7;
  sc.page_coverage = 0.8;
  sc.component_accuracy = 0.9;
  sc.seed = 42;
  const CompiledMatrix matrix = BuildSyntheticMatrix(sc);
  const auto result = MultiLayerModel::Run(matrix, TestConfig());
  ASSERT_TRUE(result.ok());

  double total_error = 0.0;
  for (uint32_t w = 0; w < matrix.num_sources(); ++w) {
    total_error += std::fabs(result->source_accuracy[w] - 0.7);
  }
  EXPECT_LT(total_error / matrix.num_sources(), 0.15);
}

TEST(MultiLayerModelTest, ExtractionCorrectnessSeparatesProvidedFromNoise) {
  SyntheticConfig sc;
  sc.seed = 7;
  sc.num_extractors = 8;
  sc.recall = 0.7;
  sc.page_coverage = 0.8;
  const CompiledMatrix matrix = BuildSyntheticMatrix(sc);
  const auto result = MultiLayerModel::Run(matrix, TestConfig());
  ASSERT_TRUE(result.ok());

  double provided_mean = 0.0;
  double noise_mean = 0.0;
  size_t provided_n = 0;
  size_t noise_n = 0;
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    if (matrix.slot_provided_truth(s)) {
      provided_mean += result->slot_correct_prob[s];
      ++provided_n;
    } else {
      noise_mean += result->slot_correct_prob[s];
      ++noise_n;
    }
  }
  ASSERT_GT(provided_n, 0u);
  ASSERT_GT(noise_n, 0u);
  provided_mean /= static_cast<double>(provided_n);
  noise_mean /= static_cast<double>(noise_n);
  EXPECT_GT(provided_mean, noise_mean + 0.3);
}

TEST(MultiLayerModelTest, DeterministicAcrossRuns) {
  const CompiledMatrix matrix = BuildSyntheticMatrix(SyntheticConfig{});
  const auto a = MultiLayerModel::Run(matrix, TestConfig());
  const auto b = MultiLayerModel::Run(matrix, TestConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->slot_value_prob.size(), b->slot_value_prob.size());
  for (size_t s = 0; s < a->slot_value_prob.size(); ++s) {
    EXPECT_DOUBLE_EQ(a->slot_value_prob[s], b->slot_value_prob[s]);
    EXPECT_DOUBLE_EQ(a->slot_correct_prob[s], b->slot_correct_prob[s]);
  }
}

TEST(MultiLayerModelTest, ParallelMatchesSerial) {
  const CompiledMatrix matrix = BuildSyntheticMatrix(SyntheticConfig{});
  dataflow::Executor executor(4);
  const auto serial = MultiLayerModel::Run(matrix, TestConfig());
  const auto parallel =
      MultiLayerModel::Run(matrix, TestConfig(), {}, &executor);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (size_t s = 0; s < serial->slot_value_prob.size(); ++s) {
    EXPECT_DOUBLE_EQ(serial->slot_value_prob[s], parallel->slot_value_prob[s]);
  }
  for (uint32_t w = 0; w < matrix.num_sources(); ++w) {
    EXPECT_DOUBLE_EQ(serial->source_accuracy[w], parallel->source_accuracy[w]);
  }
}

TEST(MultiLayerModelTest, PosteriorsAreValidProbabilities) {
  const CompiledMatrix matrix = BuildSyntheticMatrix(SyntheticConfig{});
  const auto result = MultiLayerModel::Run(matrix, TestConfig());
  ASSERT_TRUE(result.ok());
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    EXPECT_GE(result->slot_correct_prob[s], 0.0);
    EXPECT_LE(result->slot_correct_prob[s], 1.0);
    EXPECT_GE(result->slot_value_prob[s], 0.0);
    EXPECT_LE(result->slot_value_prob[s], 1.0);
  }
  // Per item, the value probabilities plus unobserved mass stay <= 1 (+eps).
  for (size_t i = 0; i < matrix.num_items(); ++i) {
    const auto [b, e] = matrix.ItemSlots(i);
    double mass = 0.0;
    std::vector<uint32_t> seen;
    for (uint32_t s = b; s < e; ++s) {
      bool duplicate = false;
      for (uint32_t v : seen) {
        if (v == matrix.slot_value(s)) duplicate = true;
      }
      if (duplicate) continue;
      seen.push_back(matrix.slot_value(s));
      mass += result->slot_value_prob[s];
    }
    EXPECT_LE(mass, 1.0 + 1e-6);
  }
}

TEST(MultiLayerModelTest, UnsupportedSourcesKeepInitialAccuracy) {
  MultiLayerConfig config = TestConfig();
  config.min_source_support = 1000000;  // Nothing is supported.
  const CompiledMatrix matrix = BuildSyntheticMatrix(SyntheticConfig{});
  const auto result = MultiLayerModel::Run(matrix, config);
  ASSERT_TRUE(result.ok());
  for (uint32_t w = 0; w < matrix.num_sources(); ++w) {
    EXPECT_EQ(result->source_supported[w], 0);
    EXPECT_DOUBLE_EQ(result->source_accuracy[w],
                     config.default_source_accuracy);
  }
  // With no supported sources nothing is covered.
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    EXPECT_EQ(result->slot_covered[s], 0);
  }
}

TEST(MultiLayerModelTest, PopAccuVariantProducesValidPosteriors) {
  MultiLayerConfig config = TestConfig();
  config.value_model = ValueModel::kPopAccu;
  const CompiledMatrix matrix = BuildSyntheticMatrix(SyntheticConfig{});
  const auto result = MultiLayerModel::Run(matrix, config);
  ASSERT_TRUE(result.ok());
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    EXPECT_GE(result->slot_value_prob[s], 0.0);
    EXPECT_LE(result->slot_value_prob[s], 1.0);
  }
}

TEST(MultiLayerModelTest, RejectsBadConfigAndInitialSizes) {
  const CompiledMatrix matrix = BuildSyntheticMatrix(SyntheticConfig{});
  MultiLayerConfig config = TestConfig();
  config.max_iterations = 0;
  EXPECT_FALSE(MultiLayerModel::Run(matrix, config).ok());

  InitialQuality bad;
  bad.source_accuracy.assign(matrix.num_sources() + 3, 0.8);
  EXPECT_FALSE(MultiLayerModel::Run(matrix, TestConfig(), bad).ok());

  InitialQuality bad_ext;
  bad_ext.extractor_q.assign(matrix.num_extractor_groups() + 1, 0.2);
  EXPECT_FALSE(MultiLayerModel::Run(matrix, TestConfig(), bad_ext).ok());
}

TEST(MultiLayerModelTest, ConvergesOnEasyData) {
  SyntheticConfig sc;
  sc.num_extractors = 8;
  sc.recall = 0.9;
  sc.page_coverage = 0.9;
  sc.component_accuracy = 0.97;
  sc.source_accuracy = 0.9;
  const CompiledMatrix matrix = BuildSyntheticMatrix(sc);
  MultiLayerConfig config = TestConfig();
  config.max_iterations = 50;
  const auto result = MultiLayerModel::Run(matrix, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_LT(result->iterations, 50);
}

TEST(MultiLayerModelTest, ExtractorQualityRecoveredQualitatively) {
  // Build data where extractor 0 is far better than extractor 4 and check
  // the estimated precision ordering matches.
  SyntheticConfig sc;
  sc.seed = 11;
  sc.num_extractors = 5;
  sc.recall = 0.8;
  sc.page_coverage = 1.0;
  sc.component_accuracy = 0.95;
  const auto good = GenerateSynthetic(sc);
  sc.seed = 11;  // Same world; worse extraction for the added extractors.
  // Merge a noisy copy: reuse generator with poor accuracy and remap ids.
  SyntheticConfig noisy = sc;
  noisy.component_accuracy = 0.55;
  auto bad = GenerateSynthetic(noisy);
  extract::RawDataset data = good.data;
  for (auto obs : bad.data.observations) {
    obs.extractor += sc.num_extractors;
    obs.pattern += sc.num_extractors;
    data.observations.push_back(obs);
  }
  data.num_extractors = 10;
  data.num_patterns = 10;

  const auto assignment = granularity::PageSourcePlainExtractor(data);
  auto matrix = CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());
  const auto result = MultiLayerModel::Run(*matrix, TestConfig());
  ASSERT_TRUE(result.ok());

  // Mean precision of the five good extractor groups beats the noisy five.
  double good_p = 0.0;
  double bad_p = 0.0;
  for (uint32_t g = 0; g < 10; ++g) {
    // Group ids are interned in observation order: good first, then noisy.
    (g < 5 ? good_p : bad_p) += result->extractor_precision[g];
  }
  EXPECT_GT(good_p / 5.0, bad_p / 5.0 + 0.1);
}

}  // namespace
}  // namespace kbt::core
