// Golden-file tests of the two text export surfaces: the Prometheus
// exposition format and the JSON dump must stay byte-stable for a fixed
// registry state (scrapers and the perf-trend tooling parse them).
//
// To regenerate after an intentional format change:
//   KBT_UPDATE_GOLDENS=1 ./build/tests/kbt_obs_tests
//   (with --gtest_filter='RenderGolden*')
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "kbt/obs.h"

namespace kbt::obs {
namespace {

std::string GoldenPath(const char* file) {
  return std::string(KBT_SOURCE_DIR) + "/tests/obs/testdata/" + file;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void CompareToGolden(const std::string& actual, const char* golden_file) {
  const std::string path = GoldenPath(golden_file);
  if (std::getenv("KBT_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot update " << path;
    GTEST_SKIP() << "updated " << path;
  }
  const std::string expected = ReadFileOrEmpty(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " — regenerate with KBT_UPDATE_GOLDENS=1";
  EXPECT_EQ(actual, expected) << "render drifted from " << golden_file
                              << "; if intentional, regenerate with "
                                 "KBT_UPDATE_GOLDENS=1";
}

/// A fixed registry state covering all three metric types, labels, and a
/// small hand-picked histogram (3 edges so the golden stays readable).
RegistrySnapshot FixedSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("kbt_test_requests_total")->Increment(42);
  registry.GetCounter("kbt_test_requests_total", {{"kind", "run"}})
      ->Increment(7);
  registry.GetGauge("kbt_test_queue_depth", {{"service", "svc0"}})
      ->Set(3.0);
  Histogram* hist = registry.GetHistogram("kbt_test_wait_seconds", {},
                                          {0.001, 0.01, 0.1});
  hist->Record(0.0005);  // clamps into bucket 0
  hist->Record(0.005);
  hist->Record(0.005);
  hist->Record(0.05);
  hist->Record(0.5);  // catch-all
  return registry.Snapshot();
}

TEST(RenderGoldenTest, Prometheus) {
  CompareToGolden(FixedSnapshot().RenderPrometheus(), "registry.prom");
}

TEST(RenderGoldenTest, Json) {
  CompareToGolden(FixedSnapshot().RenderJson(), "registry.json");
}

// Structural (non-golden) checks that pin the parts parsers rely on, so a
// failure localizes the break even when the golden diff is noisy.
TEST(RenderTest, PrometheusStructure) {
  const std::string text = FixedSnapshot().RenderPrometheus();
  EXPECT_NE(text.find("# TYPE kbt_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE kbt_test_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE kbt_test_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("kbt_test_requests_total 42"), std::string::npos);
  EXPECT_NE(text.find("kbt_test_requests_total{kind=\"run\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("kbt_test_queue_depth{service=\"svc0\"} 3"),
            std::string::npos);
  // Cumulative buckets ending in the +Inf catch-all, plus _sum/_count.
  EXPECT_NE(text.find("kbt_test_wait_seconds_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("kbt_test_wait_seconds_count 5"), std::string::npos);
  EXPECT_NE(text.find("kbt_test_wait_seconds_sum"), std::string::npos);
}

TEST(RenderTest, JsonStructure) {
  const std::string json = FixedSnapshot().RenderJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"kbt_test_requests_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace kbt::obs
