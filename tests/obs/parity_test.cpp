// The determinism contract of the observability layer: obs is
// observation-only. Toggling metrics and tracing on/off around
// Pipeline::Run must leave every score bit unchanged — the instrumented
// seams (stage timers, service counters, shard gauges) never feed back
// into inference.
#include <vector>

#include <gtest/gtest.h>

#include "kbt/kbt.h"

namespace kbt {
namespace {

exp::SyntheticConfig ParitySynthetic() {
  exp::SyntheticConfig config;
  config.num_sources = 25;
  config.num_extractors = 5;
  config.num_subjects = 30;
  config.seed = 123;
  return config;
}

void ExpectVectorsBitEqual(const std::vector<double>& a,
                           const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << "[" << i << "]";
  }
}

api::TrustReport RunOnce() {
  api::Options options;
  options.granularity = api::Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  auto pipeline = api::PipelineBuilder()
                      .FromSynthetic(ParitySynthetic())
                      .WithOptions(options)
                      .Build();
  EXPECT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  auto report = pipeline->Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(*report);
}

TEST(ObsParityTest, TogglingObsNeverChangesAScoreBit) {
  obs::SetMetricsEnabled(true);
  obs::SetTracingEnabled(true);
  const api::TrustReport on = RunOnce();
  obs::SetMetricsEnabled(false);
  obs::SetTracingEnabled(false);
  const api::TrustReport off = RunOnce();
  obs::SetMetricsEnabled(true);  // restore the process default

  ExpectVectorsBitEqual(on.inference.slot_value_prob,
                        off.inference.slot_value_prob, "slot_value_prob");
  ExpectVectorsBitEqual(on.inference.slot_correct_prob,
                        off.inference.slot_correct_prob,
                        "slot_correct_prob");
  ExpectVectorsBitEqual(on.inference.source_accuracy,
                        off.inference.source_accuracy, "source_accuracy");
  ExpectVectorsBitEqual(on.inference.extractor_q, off.inference.extractor_q,
                        "extractor_q");
  ASSERT_EQ(on.website_kbt.size(), off.website_kbt.size());
  for (size_t w = 0; w < on.website_kbt.size(); ++w) {
    ASSERT_EQ(on.website_kbt[w].kbt, off.website_kbt[w].kbt) << w;
    ASSERT_EQ(on.website_kbt[w].evidence, off.website_kbt[w].evidence) << w;
  }
  ASSERT_EQ(on.predictions.size(), off.predictions.size());
  for (size_t i = 0; i < on.predictions.size(); ++i) {
    ASSERT_EQ(on.predictions[i].item, off.predictions[i].item);
    ASSERT_EQ(on.predictions[i].probability, off.predictions[i].probability);
  }
  ASSERT_EQ(on.iterations(), off.iterations());
  ASSERT_EQ(on.converged(), off.converged());

  // And the report still carries its stage timings in BOTH modes: the
  // timing of the run is the report's own contract (ungated clock reads),
  // only the obs exports are switched.
  EXPECT_FALSE(on.stage_seconds.empty());
  EXPECT_FALSE(off.stage_seconds.empty());
}

// The disabled macros must also be side-effect free on the registry: no
// counter moves while metrics are off.
TEST(ObsParityTest, DisabledMacrosLeaveMetricsUntouched) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("kbt_test_gate_total");
  obs::Gauge* gauge = registry.GetGauge("kbt_test_gate_depth");
  obs::Histogram* hist = registry.GetHistogram("kbt_test_gate_seconds");
  obs::SetMetricsEnabled(false);
  KBT_OBS_INC(counter);
  KBT_OBS_ADD(counter, 5);
  KBT_OBS_GAUGE_SET(gauge, 9.0);
  KBT_OBS_GAUGE_ADD(gauge, 1.0);
  KBT_OBS_RECORD(hist, 0.5);
  { obs::ScopedTimer timer(hist); }
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(hist->Snapshot().samples, 0u);
  // Direct method calls are NOT gated — analysis code always records.
  obs::SetMetricsEnabled(false);
  counter->Increment();
  EXPECT_EQ(counter->Value(), 1u);
  obs::SetMetricsEnabled(true);
}

}  // namespace
}  // namespace kbt
