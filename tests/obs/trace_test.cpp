// TraceRecorder / TraceSpan tests: disabled-mode no-ops, implicit and
// explicit parent links, ring-buffer wraparound, cross-thread capture,
// and the Chrome-trace JSON export structure.
#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kbt/obs.h"

namespace kbt::obs {
namespace {

/// Every trace test owns the global recorder + switch state; restore so
/// test order never matters.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Default().Clear();
    SetTracingEnabled(true);
  }
  void TearDown() override {
    SetTracingEnabled(false);
    TraceRecorder::Default().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetTracingEnabled(false);
  const uint64_t before = TraceRecorder::Default().spans_recorded();
  {
    KBT_TRACE_SPAN("never.recorded");
    TraceSpan explicit_span("also.never");
    EXPECT_EQ(explicit_span.id(), 0u);
    EXPECT_EQ(TraceSpan::CurrentId(), 0u);
  }
  EXPECT_EQ(TraceRecorder::Default().spans_recorded(), before);
  EXPECT_TRUE(TraceRecorder::Default().Snapshot().empty());
}

TEST_F(TraceTest, SpansNestIntoParentLinks) {
  {
    TraceSpan outer("outer");
    EXPECT_NE(outer.id(), 0u);
    EXPECT_EQ(TraceSpan::CurrentId(), outer.id());
    {
      TraceSpan inner("inner");
      EXPECT_EQ(TraceSpan::CurrentId(), inner.id());
    }
    EXPECT_EQ(TraceSpan::CurrentId(), outer.id());
  }
  EXPECT_EQ(TraceSpan::CurrentId(), 0u);

  const std::vector<TraceEvent> events = TraceRecorder::Default().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Start-time order: outer first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[1].parent_id, events[0].id);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  // The inner span completes within the outer one.
  EXPECT_LE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
}

TEST_F(TraceTest, ExplicitParentStitchesAcrossThreads) {
  uint64_t request_id = 0;
  {
    TraceSpan request("service.request");
    request_id = request.id();
    std::thread worker([request_id] {
      // The strand-hop: the executing thread links back to the submitting
      // span explicitly.
      KBT_TRACE_SPAN_LINKED("service.execute", request_id);
    });
    worker.join();
  }
  const std::vector<TraceEvent> events = TraceRecorder::Default().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto execute =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return e.name == "service.execute";
      });
  ASSERT_NE(execute, events.end());
  EXPECT_EQ(execute->parent_id, request_id);
  // Distinct recording threads get distinct dense indices.
  const auto request_event =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return e.name == "service.request";
      });
  ASSERT_NE(request_event, events.end());
  EXPECT_NE(execute->thread_index, request_event->thread_index);
}

TEST_F(TraceTest, RingWrapsKeepingNewestSpans) {
  // A dedicated thread gets a fresh ring sized AFTER SetRingCapacity.
  TraceRecorder::Default().SetRingCapacity(16);
  const uint64_t recorded_before = TraceRecorder::Default().spans_recorded();
  std::thread worker([] {
    for (int i = 0; i < 100; ++i) {
      TraceSpan span("span." + std::to_string(i));
    }
  });
  worker.join();
  TraceRecorder::Default().SetRingCapacity(8192);  // restore for others

  const std::vector<TraceEvent> events = TraceRecorder::Default().Snapshot();
  ASSERT_EQ(events.size(), 16u);
  // The ring keeps the NEWEST spans: 84..99.
  for (const TraceEvent& event : events) {
    const int n = std::stoi(event.name.substr(5));
    EXPECT_GE(n, 84) << event.name;
  }
  // All 100 were still counted as recorded (the counter is monotonic and
  // process-wide, so compare the delta).
  EXPECT_EQ(TraceRecorder::Default().spans_recorded() - recorded_before,
            100u);
}

TEST_F(TraceTest, ChromeTraceExportShape) {
  {
    TraceSpan outer("phase.outer");
    TraceSpan inner("phase.inner");
  }
  const std::string json = TraceRecorder::Default().RenderChromeTrace();
  // Chrome trace-event envelope with complete ("X") events carrying
  // microsecond timestamps — the shape Perfetto ingests.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsSpansKeepsCounting) {
  { TraceSpan span("before.clear"); }
  EXPECT_FALSE(TraceRecorder::Default().Snapshot().empty());
  TraceRecorder::Default().Clear();
  EXPECT_TRUE(TraceRecorder::Default().Snapshot().empty());
  // The thread's ring registration survives: new spans still record.
  { TraceSpan span("after.clear"); }
  const std::vector<TraceEvent> events = TraceRecorder::Default().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after.clear");
}

TEST_F(TraceTest, BuffersOutliveTheirThreads) {
  std::thread worker([] { TraceSpan span("from.worker"); });
  worker.join();
  const std::vector<TraceEvent> events = TraceRecorder::Default().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "from.worker");
}

}  // namespace
}  // namespace kbt::obs
