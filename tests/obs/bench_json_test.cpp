// bench/bench_json.h envelope tests: the shared writer all benches emit
// BENCH_*.json through. Pins the schema (bench/smoke/schema_version/
// metadata/metrics), string escaping, and number formatting, so a writer
// change that would break the perf-trend tooling fails here first.
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_json.h"

namespace kbt::bench {
namespace {

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonNumberTest, IntegralDoublesRenderWithoutExponent) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-7.0), "-7");
  EXPECT_EQ(JsonNumber(104769455.0), "104769455");
}

TEST(JsonNumberTest, FractionsKeepPrecision) {
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  // %.9g keeps enough digits to round-trip bench timings.
  EXPECT_NE(JsonNumber(0.000123456).find("0.000123456"), std::string::npos);
}

TEST(BenchJsonWriterTest, EnvelopeShape) {
  BenchJsonWriter writer("soak", true);
  writer.AddMetadata("hardware_threads", 8.0);
  writer.AddMetadata("isa", "avx2");
  writer.AddMetadata("scaling_meaningful", false);
  writer.AddMetric("run_p99_seconds", 0.25, "seconds");
  writer.AddMetric("lookups", 1000.0, "count");
  writer.AddRawSection("rows", "[{\"shards\": 2}]");
  const std::string json = writer.ToJson();

  // The envelope keys, in schema order.
  EXPECT_NE(json.find("\"bench\": \"soak\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  // Metadata preserves insertion order and value types.
  EXPECT_NE(json.find("\"hardware_threads\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"isa\": \"avx2\""), std::string::npos);
  EXPECT_NE(json.find("\"scaling_meaningful\": false"), std::string::npos);
  // Metrics as {name, value, unit} records.
  EXPECT_NE(json.find("\"name\": \"run_p99_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"seconds\""), std::string::npos);
  // Raw sections appended at the top level.
  EXPECT_NE(json.find("\"rows\": [{\"shards\": 2}]"), std::string::npos);
  // Balanced braces: metadata before metrics, both before the raw section.
  EXPECT_LT(json.find("\"metadata\""), json.find("\"metrics\""));
  EXPECT_LT(json.find("\"metrics\""), json.find("\"rows\""));
}

TEST(BenchJsonWriterTest, EscapesMetadataAndNames) {
  BenchJsonWriter writer("quo\"te", false);
  writer.AddMetadata("note", "line1\nline2");
  writer.AddMetric("a\"b", 1.0, "count");
  const std::string json = writer.ToJson();
  EXPECT_NE(json.find("\"bench\": \"quo\\\"te\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"a\\\"b\""), std::string::npos);
}

TEST(BenchJsonWriterTest, EmptyWriterIsStillValidEnvelope) {
  BenchJsonWriter writer("empty", false);
  const std::string json = writer.ToJson();
  EXPECT_NE(json.find("\"bench\": \"empty\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": []"), std::string::npos);
}

}  // namespace
}  // namespace kbt::bench
