// MetricsRegistry tests: handle stability (same pointer forever), label
// normalization, type-mismatch safety, snapshot/merge semantics, reset,
// and a concurrent registration + recording hammer (runs under the
// TSan/ASan CI matrix).
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kbt/obs.h"

namespace kbt::obs {
namespace {

TEST(MetricsRegistryTest, SamePointerOnReRegistration) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("kbt_test_events_total");
  Counter* b = registry.GetCounter("kbt_test_events_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
  a->Increment(3);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotDistinguish) {
  MetricsRegistry registry;
  Histogram* a = registry.GetHistogram(
      "kbt_test_wait_seconds", {{"kind", "run"}, {"service", "svc0"}});
  Histogram* b = registry.GetHistogram(
      "kbt_test_wait_seconds", {{"service", "svc0"}, {"kind", "run"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
  // Different label VALUES are different metrics.
  Histogram* c = registry.GetHistogram("kbt_test_wait_seconds",
                                       {{"kind", "append"},
                                        {"service", "svc0"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsDetachedDummy) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("kbt_test_thing_total");
  counter->Increment();
  // Re-requesting as a gauge must not crash or corrupt the counter.
  Gauge* gauge = registry.GetGauge("kbt_test_thing_total");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99.0);
  EXPECT_EQ(counter->Value(), 1u);
  // The registry still has exactly the original metric.
  const RegistrySnapshot snap = registry.Snapshot();
  const MetricSnapshot* found = snap.Find("kbt_test_thing_total");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->type, MetricType::kCounter);
  EXPECT_EQ(found->counter_value, 1u);
}

TEST(MetricsRegistryTest, HistogramEdgesApplyOnFirstRegistrationOnly) {
  MetricsRegistry registry;
  Histogram* a =
      registry.GetHistogram("kbt_test_size_bytes", {}, {1.0, 2.0, 4.0});
  EXPECT_EQ(a->num_buckets(), 3u);
  // Later edges are ignored: the existing histogram comes back.
  Histogram* b =
      registry.GetHistogram("kbt_test_size_bytes", {}, {10.0, 20.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->num_buckets(), 3u);
  // Empty edges select the latency defaults.
  Histogram* lat = registry.GetHistogram("kbt_test_wait_seconds");
  EXPECT_EQ(lat->edges(), LatencyBucketEdges());
}

TEST(MetricsRegistryTest, SnapshotIsOrderedAndFindable) {
  MetricsRegistry registry;
  registry.GetCounter("kbt_test_b_total")->Increment(2);
  registry.GetGauge("kbt_test_a_depth")->Set(7.0);
  registry.GetCounter("kbt_test_b_total", {{"kind", "x"}})->Increment();
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  // Ordered by (name, labels): a_depth, b_total{}, b_total{kind=x}.
  EXPECT_EQ(snap.metrics[0].name, "kbt_test_a_depth");
  EXPECT_EQ(snap.metrics[1].name, "kbt_test_b_total");
  EXPECT_TRUE(snap.metrics[1].labels.empty());
  EXPECT_EQ(snap.metrics[2].labels.size(), 1u);

  const MetricSnapshot* gauge = snap.Find("kbt_test_a_depth");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->gauge_value, 7.0);
  const MetricSnapshot* labeled =
      snap.Find("kbt_test_b_total", {{"kind", "x"}});
  ASSERT_NE(labeled, nullptr);
  EXPECT_EQ(labeled->counter_value, 1u);
  EXPECT_EQ(snap.Find("kbt_test_missing_total"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotMergeSumsAndAdopts) {
  MetricsRegistry shard0;
  MetricsRegistry shard1;
  shard0.GetCounter("kbt_test_runs_total")->Increment(3);
  shard1.GetCounter("kbt_test_runs_total")->Increment(4);
  shard0.GetGauge("kbt_test_queue_depth")->Set(2.0);
  shard1.GetGauge("kbt_test_queue_depth")->Set(5.0);
  shard0.GetHistogram("kbt_test_run_seconds")->Record(0.5);
  shard1.GetHistogram("kbt_test_run_seconds")->Record(0.25);
  shard1.GetCounter("kbt_test_only_in_one_total")->Increment();

  RegistrySnapshot merged = shard0.Snapshot();
  ASSERT_TRUE(merged.MergeFrom(shard1.Snapshot()));
  EXPECT_EQ(merged.Find("kbt_test_runs_total")->counter_value, 7u);
  EXPECT_DOUBLE_EQ(merged.Find("kbt_test_queue_depth")->gauge_value, 7.0);
  const MetricSnapshot* hist = merged.Find("kbt_test_run_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->histogram.samples, 2u);
  // Adopted from shard1.
  const MetricSnapshot* adopted = merged.Find("kbt_test_only_in_one_total");
  ASSERT_NE(adopted, nullptr);
  EXPECT_EQ(adopted->counter_value, 1u);
}

TEST(MetricsRegistryTest, SnapshotMergeSkipsTypeConflicts) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("kbt_test_conflict_total")->Increment(1);
  b.GetGauge("kbt_test_conflict_total")->Set(9.0);
  a.GetCounter("kbt_test_clean_total")->Increment(1);
  b.GetCounter("kbt_test_clean_total")->Increment(1);
  RegistrySnapshot merged = a.Snapshot();
  EXPECT_FALSE(merged.MergeFrom(b.Snapshot()));
  // The conflicting metric kept its original state; the clean one merged.
  EXPECT_EQ(merged.Find("kbt_test_conflict_total")->counter_value, 1u);
  EXPECT_EQ(merged.Find("kbt_test_clean_total")->counter_value, 2u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("kbt_test_events_total");
  Gauge* gauge = registry.GetGauge("kbt_test_depth");
  Histogram* hist = registry.GetHistogram("kbt_test_wait_seconds");
  counter->Increment(5);
  gauge->Set(3.0);
  hist->Record(0.1);
  registry.ResetValues();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(hist->Snapshot().samples, 0u);
  // Handles still live.
  counter->Increment();
  EXPECT_EQ(registry.GetCounter("kbt_test_events_total")->Value(), 1u);
}

TEST(MetricsRegistryTest, GaugeAddIsLossless) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        gauge.Add(1.0);
        gauge.Add(-1.0);
      }
      gauge.Add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), static_cast<double>(kThreads));
}

// Concurrent registration of the SAME names plus lock-free recording:
// every thread must get the same handle, and no increment may be lost.
TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecordingHammer) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25000;
  std::atomic<Counter*> first{nullptr};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &first, t] {
      Counter* counter =
          registry.GetCounter("kbt_test_hammer_total", {{"kind", "x"}});
      Counter* expected = nullptr;
      if (!first.compare_exchange_strong(expected, counter)) {
        EXPECT_EQ(expected, counter);
      }
      Histogram* hist = registry.GetHistogram("kbt_test_hammer_seconds");
      Gauge* gauge = registry.GetGauge("kbt_test_hammer_depth");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Record(1e-6 * static_cast<double>((t * kPerThread + i) % 97));
        gauge->Set(static_cast<double>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(first.load()->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GetHistogram("kbt_test_hammer_seconds")
                ->Snapshot()
                .samples,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace kbt::obs
