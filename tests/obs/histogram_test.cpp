// obs::Histogram unit tests: bucket-boundary conventions (clamp below,
// half-open interior buckets, >= catch-all), quantile estimation,
// weighted adds, and the merge contract — merging two snapshots then
// estimating a quantile equals estimating it over the combined stream.
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kbt/obs.h"

namespace kbt::obs {
namespace {

TEST(BucketEdgesTest, LogEdgesSpacingAndRange) {
  const std::vector<double> edges = LogBucketEdges(1e-9, 1e3, 4);
  ASSERT_GE(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges.front(), 1e-9);
  EXPECT_GE(edges.back(), 1e3 * 0.999);
  // Log-spaced: the ratio between consecutive edges is constant 10^(1/4).
  const double ratio = std::pow(10.0, 0.25);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_NEAR(edges[i] / edges[i - 1], ratio, 1e-9) << i;
  }
}

TEST(BucketEdgesTest, LatencyEdgesCoverNanosToKiloseconds) {
  const std::vector<double> edges = LatencyBucketEdges();
  EXPECT_DOUBLE_EQ(edges.front(), 1e-9);
  EXPECT_GE(edges.back(), 999.0);
  // Strictly increasing — required by the Histogram constructor contract.
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]);
  }
}

TEST(BucketIndexTest, BoundaryConventions) {
  const std::vector<double> edges{1.0, 2.0, 4.0};
  // Below the first edge clamps into bucket 0.
  EXPECT_EQ(BucketIndexFor(edges, 0.0), 0u);
  EXPECT_EQ(BucketIndexFor(edges, 0.999), 0u);
  // Half-open [lower, upper): an exact edge lands in the bucket it opens.
  EXPECT_EQ(BucketIndexFor(edges, 1.0), 0u);
  EXPECT_EQ(BucketIndexFor(edges, 1.999), 0u);
  EXPECT_EQ(BucketIndexFor(edges, 2.0), 1u);
  EXPECT_EQ(BucketIndexFor(edges, 3.999), 1u);
  // At or above the last edge: the catch-all.
  EXPECT_EQ(BucketIndexFor(edges, 4.0), 2u);
  EXPECT_EQ(BucketIndexFor(edges, 1e12), 2u);
}

TEST(HistogramTest, RecordsIntoCorrectBuckets) {
  Histogram hist({1.0, 10.0, 100.0});
  hist.Record(0.5);    // below the first edge: clamps into bucket 0
  hist.Record(5.0);    // bucket 0: [1,10)
  hist.Record(50.0);   // bucket 1: [10,100)
  hist.Record(500.0);  // bucket 2: >= 100
  ASSERT_EQ(hist.num_buckets(), 3u);
  EXPECT_DOUBLE_EQ(hist.bucket_count(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.bucket_count(1), 1.0);
  EXPECT_DOUBLE_EQ(hist.bucket_count(2), 1.0);
  EXPECT_DOUBLE_EQ(hist.total_weight(), 4.0);

  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.samples, 4u);
  EXPECT_DOUBLE_EQ(snap.min_value, 0.5);
  EXPECT_DOUBLE_EQ(snap.max_value, 500.0);
  EXPECT_DOUBLE_EQ(snap.weighted_sum, 0.5 + 5.0 + 50.0 + 500.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), (0.5 + 5.0 + 50.0 + 500.0) / 4.0);
}

TEST(HistogramTest, WeightedAddSeparatesWeightFromSampleCount) {
  Histogram hist({1.0, 10.0});
  hist.Add(2.0, 128.0);  // one batch of 128 per-op samples
  hist.Add(3.0, 64.0);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.samples, 2u);  // Add calls
  EXPECT_DOUBLE_EQ(snap.total_weight, 192.0);
  EXPECT_DOUBLE_EQ(snap.weighted_sum, 2.0 * 128.0 + 3.0 * 64.0);
  EXPECT_DOUBLE_EQ(snap.counts[0], 192.0);
}

TEST(HistogramTest, FractionAndLabels) {
  Histogram hist({0.0, 0.5, 1.0});
  hist.Record(0.25);
  hist.Record(0.75);
  hist.Record(0.8);
  hist.Record(1.5);
  EXPECT_DOUBLE_EQ(hist.Fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(hist.Fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(hist.Fraction(2), 0.25);
  EXPECT_EQ(hist.BucketLabel(0), BucketLabelFor(hist.edges(), 0));
  // The catch-all's upper edge reports +inf.
  EXPECT_TRUE(std::isinf(hist.bucket_upper(2)));
  EXPECT_DOUBLE_EQ(hist.bucket_lower(2), 1.0);
}

TEST(HistogramTest, ClearKeepsEdges) {
  Histogram hist({1.0, 2.0});
  hist.Record(1.5);
  hist.Clear();
  EXPECT_DOUBLE_EQ(hist.total_weight(), 0.0);
  EXPECT_EQ(hist.Snapshot().samples, 0u);
  ASSERT_EQ(hist.edges().size(), 2u);
  hist.Record(1.5);
  EXPECT_DOUBLE_EQ(hist.bucket_count(0), 1.0);
}

TEST(HistogramTest, QuantileEmptyAndSingle) {
  Histogram hist({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(hist.Snapshot().Quantile(0.5), 0.0);
  hist.Record(1.5);
  const HistogramSnapshot snap = hist.Snapshot();
  // One sample: every quantile clamps to the observed value range.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1.5);
}

TEST(HistogramTest, QuantileWithinBucketResolution) {
  // 1000 uniform samples in [0, 1): the estimated quantile must land in
  // the bucket holding the true quantile (edges every 0.1).
  std::vector<double> edges;
  for (int i = 0; i <= 10; ++i) edges.push_back(0.1 * i);
  Histogram hist(edges);
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) hist.Record(uni(rng));
  const HistogramSnapshot snap = hist.Snapshot();
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(snap.Quantile(q), q, 0.1 + 0.02) << "q=" << q;
  }
  // q = 1 is exact: the maximum observed value.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), snap.max_value);
}

TEST(HistogramTest, MergeEqualsCombinedStream) {
  const std::vector<double> edges = LogBucketEdges(1e-6, 10.0, 4);
  Histogram a(edges);
  Histogram b(edges);
  Histogram combined(edges);
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> lat(-7.0, 2.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = lat(rng);
    (i % 3 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  HistogramSnapshot merged = a.Snapshot();
  ASSERT_TRUE(merged.MergeFrom(b.Snapshot()));
  const HistogramSnapshot expect = combined.Snapshot();
  ASSERT_EQ(merged.counts.size(), expect.counts.size());
  for (size_t i = 0; i < merged.counts.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged.counts[i], expect.counts[i]) << i;
  }
  EXPECT_EQ(merged.samples, expect.samples);
  EXPECT_DOUBLE_EQ(merged.total_weight, expect.total_weight);
  EXPECT_DOUBLE_EQ(merged.min_value, expect.min_value);
  EXPECT_DOUBLE_EQ(merged.max_value, expect.max_value);
  // The headline claim: quantiles over the merge == quantiles over the
  // combined stream, exactly (same buckets, same interpolation inputs).
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), expect.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeRejectsMismatchedEdges) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  a.Record(1.5);
  b.Record(1.5);
  HistogramSnapshot snap = a.Snapshot();
  const HistogramSnapshot before = snap;
  EXPECT_FALSE(snap.MergeFrom(b.Snapshot()));
  // Left untouched on rejection.
  EXPECT_EQ(snap.samples, before.samples);
  EXPECT_DOUBLE_EQ(snap.counts[0], before.counts[0]);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsMinMax) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 2.0});
  b.Record(1.2);
  b.Record(5.0);
  HistogramSnapshot snap = a.Snapshot();
  ASSERT_TRUE(snap.MergeFrom(b.Snapshot()));
  EXPECT_DOUBLE_EQ(snap.min_value, 1.2);
  EXPECT_DOUBLE_EQ(snap.max_value, 5.0);
  EXPECT_EQ(snap.samples, 2u);
}

TEST(HistogramTest, CopyCapturesValues) {
  Histogram a({1.0, 2.0});
  a.Record(1.5);
  Histogram b(a);
  a.Record(1.6);
  EXPECT_DOUBLE_EQ(b.total_weight(), 1.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 2.0);
  b = a;
  EXPECT_DOUBLE_EQ(b.total_weight(), 2.0);
}

TEST(HistogramTest, ConcurrentAddsLoseNothing) {
  Histogram hist(LatencyBucketEdges());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t));
      std::uniform_real_distribution<double> uni(1e-6, 1.0);
      for (int i = 0; i < kPerThread; ++i) hist.Record(uni(rng));
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.samples, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.total_weight,
                   static_cast<double>(kThreads) * kPerThread);
  double bucket_sum = 0.0;
  for (double c : snap.counts) bucket_sum += c;
  EXPECT_DOUBLE_EQ(bucket_sum, snap.total_weight);
}

}  // namespace
}  // namespace kbt::obs
