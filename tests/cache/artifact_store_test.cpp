// Store tests: keyed persistence with atomic writes, and the rejection
// paths (missing, corrupt, stale/mismatched entries) that let callers fall
// back to recompilation.
#include "cache/artifact_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

#include "exp/synthetic.h"
#include "granularity/assignments.h"

namespace kbt::cache {
namespace {

namespace fs = std::filesystem;

class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/kbt_store_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);

    exp::SyntheticConfig config;
    config.num_sources = 10;
    config.num_extractors = 3;
    config.seed = 5;
    data_ = exp::GenerateSynthetic(config).data;
    assignment_ = granularity::FinestAssignment(data_);
    auto matrix = extract::CompiledMatrix::Build(data_, assignment_);
    ASSERT_TRUE(matrix.ok());
    matrix_ = std::move(*matrix);
  }

  StatusOr<ArtifactStore> Open() { return ArtifactStore::Open(dir_); }

  Status Put(const ArtifactStore& store, uint64_t dataset_fp,
             uint64_t options_fp) {
    return store.Put(dataset_fp, options_fp, data_.size(), assignment_,
                     matrix_);
  }

  std::string dir_;
  extract::RawDataset data_;
  extract::GroupAssignment assignment_;
  extract::CompiledMatrix matrix_;
};

TEST_F(ArtifactStoreTest, OpenCreatesTheDirectory) {
  EXPECT_FALSE(fs::exists(dir_));
  const auto store = Open();
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(fs::is_directory(dir_));
}

TEST_F(ArtifactStoreTest, PutThenGetRoundTrips) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 0xAB, 0xCD).ok());

  const auto bundle = store->Get(0xAB, 0xCD);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->dataset_fingerprint, 0xABu);
  EXPECT_EQ(bundle->options_fingerprint, 0xCDu);
  EXPECT_EQ(bundle->compiled_observations, data_.size());
  EXPECT_TRUE(bundle->assignment == assignment_);
  EXPECT_EQ(bundle->matrix.num_slots(), matrix_.num_slots());
  EXPECT_EQ(bundle->matrix.ext_conf(), matrix_.ext_conf());
}

TEST_F(ArtifactStoreTest, GetMissingEntryIsNotFound) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  const auto bundle = store->Get(1, 2);
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kNotFound);
}

TEST_F(ArtifactStoreTest, EntriesAreKeyedByBothFingerprints) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 0xAB, 0xCD).ok());
  EXPECT_EQ(store->Get(0xAB, 0xCE).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store->Get(0xAC, 0xCD).status().code(), StatusCode::kNotFound);
}

TEST_F(ArtifactStoreTest, RemoveDeletesTheEntry) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 1, 2).ok());
  EXPECT_TRUE(store->Remove(1, 2).ok());
  EXPECT_EQ(store->Get(1, 2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store->Remove(1, 2).code(), StatusCode::kNotFound);
}

TEST_F(ArtifactStoreTest, ListEntriesSeesOnlyCompleteEntries) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 2, 1).ok());
  ASSERT_TRUE(Put(*store, 1, 1).ok());
  // A stray temp file (crash mid-write) must not be listed as an entry.
  std::ofstream(store->EntryPath(9, 9) + ".tmp.1234") << "partial";

  const auto entries = store->ListEntries();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0], ArtifactStore::EntryFileName(1, 1));
  EXPECT_EQ((*entries)[1], ArtifactStore::EntryFileName(2, 1));
}

TEST_F(ArtifactStoreTest, OpenSweepsStaleTempFilesButKeepsFreshOnes) {
  // Plant the temps before the FIRST Open of this directory: the sweep
  // runs once per directory per process.
  fs::create_directories(dir_);
  // A crashed writer's stray temp, old enough to be unambiguously dead...
  const std::string stale = dir_ + "/deadbeef.kbtart.tmp.9999.0";
  std::ofstream(stale) << "partial";
  fs::last_write_time(stale,
                      fs::file_time_type::clock::now() - std::chrono::hours(2));
  // ...and one that could still belong to a live writer.
  const std::string fresh = dir_ + "/cafe.kbtart.tmp.9999.1";
  std::ofstream(fresh) << "partial";

  const auto store = Open();
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
  // The swept store works normally.
  ASSERT_TRUE(Put(*store, 1, 1).ok());
  EXPECT_TRUE(store->Get(1, 1).ok());
}

TEST_F(ArtifactStoreTest, TruncatedEntryIsRejected) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 1, 2).ok());
  const std::string path = store->EntryPath(1, 2);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);

  const auto bundle = store->Get(1, 2);
  ASSERT_FALSE(bundle.ok());
  EXPECT_EQ(bundle.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ArtifactStoreTest, CorruptedEntryIsRejectedByCrc) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 1, 2).ok());
  const std::string path = store->EntryPath(1, 2);
  {
    // XOR so the flip can never coincide with the byte's existing value.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(-3, std::ios::end);  // inside the matrix payload
    const char byte = static_cast<char>(file.get());
    file.seekp(-3, std::ios::end);
    file.put(static_cast<char>(byte ^ 0x7f));
  }
  const auto bundle = store->Get(1, 2);
  ASSERT_FALSE(bundle.ok());
  EXPECT_NE(bundle.status().message().find("CRC"), std::string::npos);
}

TEST_F(ArtifactStoreTest, RenamedEntryIsRejectedAsStale) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 1, 2).ok());
  // Copy the valid entry onto a different key: the blob decodes fine but
  // its stored fingerprints disagree with the requested key.
  fs::copy_file(store->EntryPath(1, 2), store->EntryPath(3, 4));
  const auto bundle = store->Get(3, 4);
  ASSERT_FALSE(bundle.ok());
  EXPECT_NE(bundle.status().message().find("fingerprints"),
            std::string::npos);
}

TEST_F(ArtifactStoreTest, PutOverwritesAtomically) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 1, 2).ok());
  // Overwrite with artifacts of a grown cube under the same key (only a
  // unit test would do this — real keys change with the content — but the
  // rename path must replace, not append).
  ASSERT_TRUE(Put(*store, 1, 2).ok());
  const auto bundle = store->Get(1, 2);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  // No temp files left behind.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".kbtart") << entry.path();
  }
}

// ---------------------------------------------------------------------------
// Size-capped stores: LRU-by-mtime eviction (ROADMAP store-GC follow-up).
// ---------------------------------------------------------------------------

class ArtifactStoreEvictionTest : public ArtifactStoreTest {
 protected:
  /// A cap that fits `n` entries of this fixture's (constant-size) blob.
  StatusOr<ArtifactStore> OpenCapped(size_t n) {
    StoreOptions options;
    options.max_bytes = n * EntryBytes();
    return ArtifactStore::Open(dir_, options);
  }

  uint64_t EntryBytes() {
    if (entry_bytes_ == 0) {
      const auto store = ArtifactStore::Open(dir_);
      EXPECT_TRUE(store.ok());
      EXPECT_TRUE(Put(*store, 0xEE, 0xFF).ok());
      entry_bytes_ = fs::file_size(store->EntryPath(0xEE, 0xFF));
      EXPECT_TRUE(store->Remove(0xEE, 0xFF).ok());
    }
    return entry_bytes_;
  }

  /// Backdates an entry's mtime by `seconds`, making its recency explicit
  /// instead of racing the filesystem's timestamp granularity.
  void Age(const ArtifactStore& store, uint64_t dataset_fp,
           uint64_t options_fp, int seconds) {
    fs::last_write_time(
        store.EntryPath(dataset_fp, options_fp),
        fs::file_time_type::clock::now() - std::chrono::seconds(seconds));
  }

 private:
  uint64_t entry_bytes_ = 0;
};

TEST_F(ArtifactStoreEvictionTest, PutSweepsOldestEntriesPastTheCap) {
  const auto store = OpenCapped(2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(Put(*store, 1, 0).ok());
  Age(*store, 1, 0, 300);
  ASSERT_TRUE(Put(*store, 2, 0).ok());
  Age(*store, 2, 0, 200);
  // The third put exceeds the two-entry cap: the oldest (key 1) goes.
  ASSERT_TRUE(Put(*store, 3, 0).ok());

  EXPECT_EQ(store->Get(1, 0).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store->Get(2, 0).ok());
  EXPECT_TRUE(store->Get(3, 0).ok());
  const auto total = store->TotalBytes();
  ASSERT_TRUE(total.ok());
  EXPECT_LE(*total, 2 * EntryBytes());
}

TEST_F(ArtifactStoreEvictionTest, GetRefreshesRecencySoServedEntriesSurvive) {
  const auto store = OpenCapped(2);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 1, 0).ok());
  Age(*store, 1, 0, 300);
  ASSERT_TRUE(Put(*store, 2, 0).ok());
  Age(*store, 2, 0, 200);
  // Serving key 1 marks it recently used (its mtime is refreshed to now),
  // so the next sweep evicts key 2 instead.
  ASSERT_TRUE(store->Get(1, 0).ok());
  ASSERT_TRUE(Put(*store, 3, 0).ok());

  EXPECT_TRUE(store->Get(1, 0).ok());
  EXPECT_EQ(store->Get(2, 0).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store->Get(3, 0).ok());
}

TEST_F(ArtifactStoreEvictionTest, NewestEntrySurvivesEvenACapSmallerThanIt) {
  StoreOptions options;
  options.max_bytes = 1;  // Smaller than any single entry.
  const auto store = ArtifactStore::Open(dir_, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(Put(*store, 1, 0).ok());
  Age(*store, 1, 0, 300);
  ASSERT_TRUE(Put(*store, 2, 0).ok());

  // Everything but the most recent write is swept; the fresh entry itself
  // is never the sweep's victim.
  EXPECT_EQ(store->Get(1, 0).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(store->Get(2, 0).ok());
}

TEST_F(ArtifactStoreEvictionTest, UncappedHandleNeverEvicts) {
  const auto store = Open();
  ASSERT_TRUE(store.ok());
  for (uint64_t key = 1; key <= 4; ++key) {
    ASSERT_TRUE(Put(*store, key, 0).ok());
  }
  EXPECT_TRUE(store->EvictToLimit().ok());  // No cap: a no-op.
  const auto entries = store->ListEntries();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 4u);
}

TEST_F(ArtifactStoreEvictionTest, EvictToLimitCapsAnInheritedDirectory) {
  {
    const auto uncapped = Open();
    ASSERT_TRUE(uncapped.ok());
    for (uint64_t key = 1; key <= 4; ++key) {
      ASSERT_TRUE(Put(*uncapped, key, 0).ok());
      Age(*uncapped, key, 0, 100 * static_cast<int>(5 - key));
    }
  }
  const auto capped = OpenCapped(2);
  ASSERT_TRUE(capped.ok());
  ASSERT_TRUE(capped->EvictToLimit().ok());
  const auto entries = capped->ListEntries();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  // The two youngest mtimes (keys 3, 4) survive.
  EXPECT_TRUE(capped->Get(3, 0).ok());
  EXPECT_TRUE(capped->Get(4, 0).ok());
}

}  // namespace
}  // namespace kbt::cache
