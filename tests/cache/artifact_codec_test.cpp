// Codec tests: byte-exact round trips of the compiled artifacts, rejection
// of every corruption class the format guards against, and stability of the
// compile-options fingerprint that keys the store.
#include "cache/artifact_codec.h"

#include <gtest/gtest.h>

#include <string>

#include "exp/synthetic.h"
#include "granularity/assignments.h"
#include "kbt/options.h"

namespace kbt::cache {
namespace {

/// A small but non-trivial compiled cube: multiple sources, extractors,
/// predicates, duplicate claims (exercising confidence-max dedup).
struct Compiled {
  extract::RawDataset data;
  extract::GroupAssignment assignment;
  extract::CompiledMatrix matrix;
};

Compiled BuildCompiled() {
  exp::SyntheticConfig config;
  config.num_sources = 12;
  config.num_extractors = 4;
  config.num_subjects = 9;
  config.num_predicates = 3;
  config.seed = 42;
  Compiled out;
  out.data = exp::GenerateSynthetic(config).data;
  out.assignment = granularity::FinestAssignment(out.data);
  auto matrix = extract::CompiledMatrix::Build(out.data, out.assignment);
  EXPECT_TRUE(matrix.ok()) << matrix.status().ToString();
  out.matrix = std::move(*matrix);
  return out;
}

std::string Encode(const Compiled& c, uint64_t dataset_fp = 0x1111,
                   uint64_t options_fp = 0x2222) {
  return EncodeArtifacts(dataset_fp, options_fp, c.data.size(), c.assignment,
                         c.matrix);
}

TEST(ArtifactCodecTest, RoundTripPreservesEveryField) {
  const Compiled c = BuildCompiled();
  const std::string blob = Encode(c);

  const StatusOr<ArtifactBundle> decoded = DecodeArtifacts(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->dataset_fingerprint, 0x1111u);
  EXPECT_EQ(decoded->options_fingerprint, 0x2222u);
  EXPECT_EQ(decoded->compiled_observations, c.data.size());
  EXPECT_TRUE(decoded->assignment == c.assignment);

  // Matrix equality through the public accessors...
  const extract::CompiledMatrix& m = decoded->matrix;
  ASSERT_EQ(m.num_slots(), c.matrix.num_slots());
  ASSERT_EQ(m.num_items(), c.matrix.num_items());
  ASSERT_EQ(m.num_extractions(), c.matrix.num_extractions());
  ASSERT_EQ(m.num_sources(), c.matrix.num_sources());
  ASSERT_EQ(m.num_extractor_groups(), c.matrix.num_extractor_groups());
  for (size_t s = 0; s < m.num_slots(); ++s) {
    ASSERT_EQ(m.slot_source(s), c.matrix.slot_source(s));
    ASSERT_EQ(m.slot_item(s), c.matrix.slot_item(s));
    ASSERT_EQ(m.slot_value(s), c.matrix.slot_value(s));
    ASSERT_EQ(m.slot_website(s), c.matrix.slot_website(s));
    ASSERT_EQ(m.slot_predicate(s), c.matrix.slot_predicate(s));
    ASSERT_EQ(m.slot_provided_truth(s), c.matrix.slot_provided_truth(s));
    ASSERT_EQ(m.SlotExtractions(s), c.matrix.SlotExtractions(s));
  }
  ASSERT_EQ(m.ext_group(), c.matrix.ext_group());
  ASSERT_EQ(m.ext_conf(), c.matrix.ext_conf());
  for (size_t i = 0; i < m.num_items(); ++i) {
    ASSERT_EQ(m.item_id(i), c.matrix.item_id(i));
    ASSERT_EQ(m.item_num_false(i), c.matrix.item_num_false(i));
    ASSERT_EQ(m.ItemSlots(i), c.matrix.ItemSlots(i));
  }
  for (uint32_t w = 0; w < m.num_sources(); ++w) {
    ASSERT_EQ(m.SourceSlots(w), c.matrix.SourceSlots(w));
    ASSERT_TRUE(m.source_info(w) == c.matrix.source_info(w));
  }
  for (uint32_t e = 0; e < m.num_extractor_groups(); ++e) {
    ASSERT_EQ(m.ExtractorEdges(e), c.matrix.ExtractorEdges(e));
    ASSERT_TRUE(m.extractor_scope(e) == c.matrix.extractor_scope(e));
  }
  ASSERT_EQ(m.source_slot_index(), c.matrix.source_slot_index());
  ASSERT_EQ(m.extractor_edge_index(), c.matrix.extractor_edge_index());

  // ...and, stronger, bit-exactly: re-encoding the decoded bundle must
  // reproduce the original blob, which covers every serialized byte.
  const std::string re_encoded =
      EncodeArtifacts(decoded->dataset_fingerprint,
                      decoded->options_fingerprint,
                      decoded->compiled_observations, decoded->assignment,
                      decoded->matrix);
  EXPECT_EQ(re_encoded, blob);
}

TEST(ArtifactCodecTest, EncodingIsDeterministic) {
  const Compiled c = BuildCompiled();
  EXPECT_EQ(Encode(c), Encode(c));
}

TEST(ArtifactCodecTest, RejectsBadMagic) {
  std::string blob = Encode(BuildCompiled());
  blob[0] = 'X';
  const auto decoded = DecodeArtifacts(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(ArtifactCodecTest, RejectsWrongFormatVersion) {
  std::string blob = Encode(BuildCompiled());
  blob[8] = static_cast<char>(kFormatVersion + 1);  // version is at offset 8
  const auto decoded = DecodeArtifacts(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("format version"),
            std::string::npos);
}

TEST(ArtifactCodecTest, RejectsBadEndianMarker) {
  std::string blob = Encode(BuildCompiled());
  // Little-endian writes the marker as 04 03 02 01; a byte-swapped file
  // would lead with 0x01.
  blob[12] = 0x01;
  const auto decoded = DecodeArtifacts(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("endian"), std::string::npos);
}

TEST(ArtifactCodecTest, RejectsTruncationAtEveryBoundary) {
  const std::string blob = Encode(BuildCompiled());
  // Chop in the header, in the section table, and inside each payload.
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{20}, size_t{60}, blob.size() / 2,
        blob.size() - 1}) {
    const auto decoded = DecodeArtifacts(blob.substr(0, keep));
    EXPECT_FALSE(decoded.ok()) << "kept " << keep << " bytes";
  }
}

TEST(ArtifactCodecTest, RejectsFlippedPayloadByteViaCrc) {
  std::string blob = Encode(BuildCompiled());
  blob[blob.size() - 1] ^= 0x40;  // inside the matrix section payload
  const auto decoded = DecodeArtifacts(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("CRC"), std::string::npos);
}

TEST(ArtifactCodecTest, RejectsMismatchedGroupCounts) {
  Compiled c = BuildCompiled();
  // A well-formed blob whose assignment disagrees with its matrix: the
  // structural validation must catch what the CRCs cannot.
  c.assignment.num_source_groups += 1;
  c.assignment.source_infos.push_back({0});
  const auto decoded = DecodeArtifacts(Encode(c));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("group counts"),
            std::string::npos);
}

TEST(ArtifactCodecTest, Crc32MatchesKnownAnswer) {
  // The CRC-32/IEEE check value: crc32("123456789") == 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(data, 0), 0u);
}

TEST(ArtifactCodecTest, FieldListCoversHeaderAndBothSections) {
  const std::vector<FieldSpec>& fields = ArtifactFields();
  size_t header = 0, assignment = 0, matrix = 0;
  for (const FieldSpec& f : fields) {
    if (f.section == "header") ++header;
    if (f.section == "assignment") ++assignment;
    if (f.section == "matrix") ++matrix;
  }
  EXPECT_EQ(header + assignment + matrix, fields.size());
  EXPECT_EQ(header, 8u);
  EXPECT_EQ(assignment, 6u);
  EXPECT_EQ(matrix, 21u);
}

TEST(OptionsFingerprintTest, GoldenValuesArePinned) {
  // These values key PERSISTED cache entries: changing the fingerprint
  // function (or the fields/order it hashes) orphans every .kbtart file
  // ever written. If this test fails, you changed the cache key — make
  // sure that is intentional and treat it like a format bump
  // (docs/artifact-format.md).
  api::Options finest;  // default options: kFinest
  EXPECT_EQ(CompileOptionsFingerprint(finest), 0xdf0f8a052b8f3ce7ull);
  api::Options sm;
  sm.granularity = api::Granularity::kSplitMerge;
  EXPECT_EQ(CompileOptionsFingerprint(sm), 0xd9664027bbed6b74ull);
}

TEST(OptionsFingerprintTest, KeyedByGranularityOnlyForStatelessKinds) {
  api::Options a;
  a.granularity = api::Granularity::kFinest;
  api::Options b = a;
  // Inference knobs do not shape the compiled artifacts.
  b.multilayer.max_iterations += 5;
  b.model = api::Model::kSingleLayer;
  b.sm_source.min_size += 1;  // ignored outside kSplitMerge
  EXPECT_EQ(CompileOptionsFingerprint(a), CompileOptionsFingerprint(b));

  b.granularity = api::Granularity::kWebsiteSource;
  EXPECT_NE(CompileOptionsFingerprint(a), CompileOptionsFingerprint(b));
}

TEST(OptionsFingerprintTest, SplitMergeKnobsKeyTheFingerprint) {
  api::Options a;
  a.granularity = api::Granularity::kSplitMerge;
  api::Options b = a;
  EXPECT_EQ(CompileOptionsFingerprint(a), CompileOptionsFingerprint(b));
  b.sm_extractor.max_size += 1;
  EXPECT_NE(CompileOptionsFingerprint(a), CompileOptionsFingerprint(b));
  b = a;
  b.sm_source.seed += 1;
  EXPECT_NE(CompileOptionsFingerprint(a), CompileOptionsFingerprint(b));
}

}  // namespace
}  // namespace kbt::cache
