// Cross-checks docs/artifact-format.md — the normative on-disk spec —
// against the codec itself: the spec's field table must list exactly the
// fields the codec serializes, in order, and the documented format version
// must match kFormatVersion. A failing test means code and spec drifted;
// docs/artifact-format.md has the bump checklist.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/artifact_codec.h"

namespace kbt::cache {
namespace {

std::string ReadSpec() {
  const std::string path =
      std::string(KBT_SOURCE_DIR) + "/docs/artifact-format.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Rows of the markdown table under "## Field list": (section, name, type).
std::vector<std::vector<std::string>> ParseFieldTable(
    const std::string& spec) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream lines(spec);
  std::string line;
  bool in_section = false;
  while (std::getline(lines, line)) {
    if (line.rfind("## ", 0) == 0) {
      in_section = line == "## Field list";
      continue;
    }
    if (!in_section || line.rfind("|", 0) != 0) continue;
    // Split on '|'; a row like "| header | magic | `u8[8]` |" yields three
    // non-empty cells.
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream row(line.substr(1));
    while (std::getline(row, cell, '|')) {
      const size_t begin = cell.find_first_not_of(" `");
      const size_t end = cell.find_last_not_of(" `");
      cells.push_back(begin == std::string::npos
                          ? std::string()
                          : cell.substr(begin, end - begin + 1));
    }
    while (!cells.empty() && cells.back().empty()) cells.pop_back();
    if (cells.size() != 3) continue;
    if (cells[0] == "Section") continue;                   // header row
    if (cells[0].find_first_not_of("-: ") == std::string::npos) continue;
    rows.push_back(std::move(cells));
  }
  return rows;
}

TEST(FormatDocTest, FieldTableMatchesTheCodecExactly) {
  const std::vector<std::vector<std::string>> documented =
      ParseFieldTable(ReadSpec());
  const std::vector<FieldSpec>& actual = ArtifactFields();

  ASSERT_FALSE(documented.empty())
      << "docs/artifact-format.md has no parseable '## Field list' table";
  ASSERT_EQ(documented.size(), actual.size())
      << "spec lists " << documented.size() << " fields, the codec has "
      << actual.size();
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(documented[i][0], actual[i].section) << "row " << i;
    EXPECT_EQ(documented[i][1], actual[i].name) << "row " << i;
    EXPECT_EQ(documented[i][2], actual[i].type) << "row " << i;
  }
}

TEST(FormatDocTest, DocumentedVersionMatchesKFormatVersion) {
  const std::string spec = ReadSpec();
  const std::string want =
      "kFormatVersion = " + std::to_string(kFormatVersion);
  EXPECT_NE(spec.find(want), std::string::npos)
      << "docs/artifact-format.md must state '" << want << "'";
}

TEST(FormatDocTest, DocumentedMagicMatchesKMagic) {
  const std::string spec = ReadSpec();
  EXPECT_NE(spec.find("\"KBTCACHE\""), std::string::npos)
      << "docs/artifact-format.md must state the magic string";
  EXPECT_EQ(std::string(kMagic, sizeof(kMagic)), "KBTCACHE");
}

}  // namespace
}  // namespace kbt::cache
