// Parity suite for CompiledMatrix::Append: patching the CSR structures with
// a delta must be bit-for-bit identical to a full Build over the grown
// dataset — same slot order, same edge arrays, same group CSRs — across
// only-new observations, new sources, new facts, and every stateless
// granularity; deltas that invalidate the compiled groups must be refused
// with kRebuildRequired and leave the matrix untouched.
#include "extract/observation_matrix.h"

#include <gtest/gtest.h>

#include "exp/synthetic.h"
#include "granularity/assignments.h"

namespace kbt::extract {
namespace {

using granularity::AssignmentExtender;
using granularity::StatelessGranularity;

/// Exhaustive equality over every public accessor of the matrix.
void ExpectMatricesEqual(const CompiledMatrix& a, const CompiledMatrix& b) {
  ASSERT_EQ(a.num_slots(), b.num_slots());
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_extractions(), b.num_extractions());
  ASSERT_EQ(a.num_sources(), b.num_sources());
  ASSERT_EQ(a.num_extractor_groups(), b.num_extractor_groups());
  for (size_t s = 0; s < a.num_slots(); ++s) {
    ASSERT_EQ(a.slot_source(s), b.slot_source(s)) << "slot " << s;
    ASSERT_EQ(a.slot_item(s), b.slot_item(s)) << "slot " << s;
    ASSERT_EQ(a.slot_value(s), b.slot_value(s)) << "slot " << s;
    ASSERT_EQ(a.slot_website(s), b.slot_website(s)) << "slot " << s;
    ASSERT_EQ(a.slot_predicate(s), b.slot_predicate(s)) << "slot " << s;
    ASSERT_EQ(a.slot_provided_truth(s), b.slot_provided_truth(s))
        << "slot " << s;
    ASSERT_EQ(a.SlotExtractions(s), b.SlotExtractions(s)) << "slot " << s;
  }
  ASSERT_EQ(a.ext_group(), b.ext_group());
  ASSERT_EQ(a.ext_conf(), b.ext_conf());
  for (size_t e = 0; e < a.num_extractions(); ++e) {
    ASSERT_EQ(a.ext_slot(e), b.ext_slot(e)) << "edge " << e;
  }
  for (size_t i = 0; i < a.num_items(); ++i) {
    ASSERT_EQ(a.item_id(i), b.item_id(i)) << "item " << i;
    ASSERT_EQ(a.item_num_false(i), b.item_num_false(i)) << "item " << i;
    ASSERT_EQ(a.ItemSlots(i), b.ItemSlots(i)) << "item " << i;
  }
  for (uint32_t w = 0; w < a.num_sources(); ++w) {
    ASSERT_EQ(a.SourceSlots(w), b.SourceSlots(w)) << "source " << w;
    ASSERT_EQ(a.source_info(w), b.source_info(w)) << "source " << w;
  }
  ASSERT_EQ(a.source_slot_index(), b.source_slot_index());
  for (uint32_t g = 0; g < a.num_extractor_groups(); ++g) {
    ASSERT_EQ(a.ExtractorEdges(g), b.ExtractorEdges(g)) << "group " << g;
    ASSERT_EQ(a.extractor_scope(g), b.extractor_scope(g)) << "group " << g;
  }
  ASSERT_EQ(a.extractor_edge_index(), b.extractor_edge_index());
}

/// Compiles the first `base` observations of `data`, appends the rest via
/// Append, and checks bit-for-bit parity with a full Build — mirroring the
/// pipeline's extender-driven flow.
void ExpectAppendEqualsBuild(const RawDataset& data, size_t base,
                             StatelessGranularity kind) {
  RawDataset prefix = data;
  prefix.observations.resize(base);

  AssignmentExtender extender(kind);
  GroupAssignment assignment;
  ASSERT_TRUE(extender.Extend(prefix, &assignment).ok());
  auto matrix = CompiledMatrix::Build(prefix, assignment);
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();

  ASSERT_TRUE(extender.Extend(data, &assignment).ok());
  const auto outcome =
      matrix->Append(data, ObservationDelta{base}, assignment);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(*outcome, AppendOutcome::kPatched);

  const auto full = CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ExpectMatricesEqual(*matrix, *full);
}

RawObservation MakeObs(uint32_t extractor, uint32_t page, kb::DataItemId item,
                       kb::ValueId value, float conf = 1.0f,
                       bool provided = false) {
  RawObservation obs;
  obs.extractor = extractor;
  obs.pattern = extractor;
  obs.website = page;
  obs.page = page;
  obs.item = item;
  obs.value = value;
  obs.confidence = conf;
  obs.provided = provided;
  return obs;
}

/// Two sites, two extractors, two items: enough structure for targeted
/// deltas.
RawDataset SmallCube() {
  const kb::DataItemId item_a = kb::MakeDataItem(5, 0);
  const kb::DataItemId item_b = kb::MakeDataItem(2, 1);
  RawDataset data;
  data.num_false_by_predicate = {10, 7};
  data.num_websites = 2;
  data.num_pages = 2;
  data.num_extractors = 2;
  data.num_patterns = 2;
  data.observations = {
      MakeObs(0, 0, item_a, 3, 1.0f, true),
      MakeObs(1, 0, item_a, 3, 0.7f),
      MakeObs(0, 1, item_a, 4, 0.9f),
      MakeObs(1, 1, item_b, 2, 0.5f, true),
  };
  return data;
}

constexpr StatelessGranularity kAllKinds[] = {
    StatelessGranularity::kFinest,
    StatelessGranularity::kPageSource,
    StatelessGranularity::kWebsiteSource,
    StatelessGranularity::kProvenance,
};

// ---- Case 1: only-new observations on existing slots (conf maxing,
// provided updates, and a new (slot, group) edge) ----

TEST(AppendParityTest, OnlyNewObservationsOnExistingSlots) {
  RawDataset data = SmallCube();
  const size_t base = data.observations.size();
  // Duplicate of obs 0 with lower confidence (keeps the max), duplicate of
  // obs 1 with higher confidence (takes the max), and obs 2 turning
  // provided.
  data.observations.push_back(MakeObs(0, 0, kb::MakeDataItem(5, 0), 3, 0.2f));
  data.observations.push_back(MakeObs(1, 0, kb::MakeDataItem(5, 0), 3, 0.95f));
  data.observations.push_back(
      MakeObs(0, 1, kb::MakeDataItem(5, 0), 4, 0.1f, true));
  for (const StatelessGranularity kind : kAllKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    ExpectAppendEqualsBuild(data, base, kind);
  }
}

TEST(AppendParityTest, NewEdgeOnExistingSlot) {
  RawDataset data = SmallCube();
  const size_t base = data.observations.size();
  // Extractor 1 had not extracted (page 1, item_a, 4): a new edge on an
  // existing slot under kPageSource, a new group+edge under kFinest.
  data.observations.push_back(MakeObs(1, 1, kb::MakeDataItem(5, 0), 4, 0.6f));
  for (const StatelessGranularity kind : kAllKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    ExpectAppendEqualsBuild(data, base, kind);
  }
}

// ---- Case 2: delta introducing new sources ----

TEST(AppendParityTest, DeltaIntroducesNewSources) {
  RawDataset data = SmallCube();
  const size_t base = data.observations.size();
  data.num_websites = 4;
  data.num_pages = 4;
  // Two new pages/sites, one claiming an existing fact, one a new value.
  data.observations.push_back(MakeObs(0, 2, kb::MakeDataItem(5, 0), 3, 0.8f));
  data.observations.push_back(
      MakeObs(1, 3, kb::MakeDataItem(2, 1), 9, 0.4f, true));
  for (const StatelessGranularity kind : kAllKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    ExpectAppendEqualsBuild(data, base, kind);
  }
}

// ---- Case 3: delta introducing new facts (items sorting before, between
// and after the existing ones) ----

TEST(AppendParityTest, DeltaIntroducesNewFacts) {
  RawDataset data = SmallCube();
  const size_t base = data.observations.size();
  data.num_false_by_predicate.push_back(4);  // Predicate 2.
  // Item ids: existing are (5,0) and (2,1). New: (1,0) sorts first, (3,2)
  // sorts between, (9,1) sorts last.
  data.observations.push_back(MakeObs(0, 0, kb::MakeDataItem(1, 0), 6, 1.0f));
  data.observations.push_back(
      MakeObs(1, 1, kb::MakeDataItem(3, 2), 1, 0.3f, true));
  data.observations.push_back(MakeObs(0, 1, kb::MakeDataItem(9, 1), 8, 0.7f));
  for (const StatelessGranularity kind : kAllKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    ExpectAppendEqualsBuild(data, base, kind);
  }
}

// ---- Case 4: forced fallback — changed group metadata / shrunk counts ----

TEST(AppendParityTest, ChangedScopeMetadataForcesRebuild) {
  const RawDataset data = SmallCube();
  const auto assignment = granularity::FinestAssignment(data);
  auto matrix = CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());

  GroupAssignment changed = assignment;
  changed.extractor_scopes[0].absence_weight = 0.5;  // Re-bucketed group.
  const auto outcome =
      matrix->Append(data, ObservationDelta{data.size()}, changed);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, AppendOutcome::kRebuildRequired);

  GroupAssignment relocated = assignment;
  relocated.source_infos[0].website = 1;  // Group metadata changed.
  const auto relocated_outcome =
      matrix->Append(data, ObservationDelta{data.size()}, relocated);
  ASSERT_TRUE(relocated_outcome.ok());
  EXPECT_EQ(*relocated_outcome, AppendOutcome::kRebuildRequired);

  // The refused appends left the matrix untouched: still equal to Build.
  const auto fresh = CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(fresh.ok());
  ExpectMatricesEqual(*matrix, *fresh);
}

TEST(AppendParityTest, ShrunkGroupCountForcesRebuild) {
  const RawDataset data = SmallCube();
  const auto assignment = granularity::PageSourcePlainExtractor(data);
  auto matrix = CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());

  // A coarser regrouping (fewer sources) can never be patched in.
  const auto coarse = granularity::WebsiteSourceAssignment(data);
  ASSERT_LE(coarse.num_source_groups, assignment.num_source_groups);
  GroupAssignment merged = coarse;
  merged.num_source_groups = 1;
  merged.source_infos.resize(1);
  merged.observation_source.assign(data.size(), 0);
  const auto outcome =
      matrix->Append(data, ObservationDelta{data.size()}, merged);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, AppendOutcome::kRebuildRequired);
}

TEST(AppendParityTest, MalformedDeltaIsRejectedWithoutMutation) {
  RawDataset data = SmallCube();
  const size_t base = data.observations.size();
  const auto base_assignment = granularity::PageSourcePlainExtractor(data);
  auto matrix = CompiledMatrix::Build(data, base_assignment);
  ASSERT_TRUE(matrix.ok());

  data.observations.push_back(MakeObs(0, 0, kb::MakeDataItem(5, 0), 3));
  GroupAssignment bad = base_assignment;  // Not extended to cover the delta.
  EXPECT_FALSE(matrix->Append(data, ObservationDelta{base}, bad).ok());

  bad = granularity::PageSourcePlainExtractor(data);
  bad.observation_source.back() = bad.num_source_groups + 3;
  EXPECT_FALSE(matrix->Append(data, ObservationDelta{base}, bad).ok());

  // Both rejections left the matrix equal to the base Build.
  data.observations.resize(base);
  const auto fresh = CompiledMatrix::Build(data, base_assignment);
  ASSERT_TRUE(fresh.ok());
  ExpectMatricesEqual(*matrix, *fresh);
}

// ---- Empty delta is a structural no-op ----

TEST(AppendParityTest, EmptyDeltaIsANoOp) {
  const RawDataset data = SmallCube();
  const auto assignment = granularity::FinestAssignment(data);
  auto matrix = CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());
  const auto outcome =
      matrix->Append(data, ObservationDelta{data.size()}, assignment);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(*outcome, AppendOutcome::kPatched);
  const auto fresh = CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(fresh.ok());
  ExpectMatricesEqual(*matrix, *fresh);
}

// ---- Randomized end-to-end parity: a synthetic cube appended in several
// uneven chunks, across every stateless granularity ----

TEST(AppendParityTest, SyntheticCubeAppendedInChunksMatchesFullBuild) {
  exp::SyntheticConfig config;
  config.num_sources = 12;
  config.num_extractors = 4;
  config.seed = 42;
  const RawDataset data = exp::GenerateSynthetic(config).data;
  ASSERT_GT(data.size(), 100u);

  for (const StatelessGranularity kind : kAllKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    // Compile a small seed, then append the rest in uneven chunks.
    const size_t splits[] = {data.size() / 10, data.size() / 3,
                             data.size() / 2, data.size() - 1};
    AssignmentExtender extender(kind);
    GroupAssignment assignment;
    RawDataset prefix = data;
    prefix.observations.resize(splits[0]);
    ASSERT_TRUE(extender.Extend(prefix, &assignment).ok());
    auto matrix = CompiledMatrix::Build(prefix, assignment);
    ASSERT_TRUE(matrix.ok());

    size_t compiled = splits[0];
    for (size_t k = 1; k < 4; ++k) {
      prefix.observations.assign(data.observations.begin(),
                                 data.observations.begin() + splits[k]);
      ASSERT_TRUE(extender.Extend(prefix, &assignment).ok());
      const auto outcome =
          matrix->Append(prefix, ObservationDelta{compiled}, assignment);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      ASSERT_EQ(*outcome, AppendOutcome::kPatched);
      compiled = splits[k];
    }
    prefix.observations = data.observations;
    ASSERT_TRUE(extender.Extend(prefix, &assignment).ok());
    const auto outcome =
        matrix->Append(prefix, ObservationDelta{compiled}, assignment);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(*outcome, AppendOutcome::kPatched);

    const auto full = CompiledMatrix::Build(data, assignment);
    ASSERT_TRUE(full.ok());
    ExpectMatricesEqual(*matrix, *full);
  }
}

}  // namespace
}  // namespace kbt::extract
