// Unit tests of extract::PartitionDataset / PartitionObservations — the
// scatter half of the sharded pipeline. The contract under test:
//  * the website -> shard map is deterministic and respects num_shards;
//  * shards are disjoint, order-preserving, and their shard-order
//    concatenation is exactly the input (bit-for-bit union);
//  * every shard replicates the global bookkeeping (meta counts, gold
//    truth, per-predicate n), so empty shards are valid worlds;
//  * K = 1 degenerates to a copy; delta scatter matches full partition.
#include "extract/dataset_partition.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "exp/synthetic.h"

namespace kbt::extract {
namespace {

RawDataset SyntheticCube(uint64_t seed) {
  exp::SyntheticConfig config;
  config.num_sources = 20;
  config.num_extractors = 5;
  config.seed = seed;
  return exp::GenerateSynthetic(config).data;
}

bool SameObservation(const RawObservation& a, const RawObservation& b) {
  return a.extractor == b.extractor && a.pattern == b.pattern &&
         a.website == b.website && a.page == b.page && a.item == b.item &&
         a.value == b.value && a.confidence == b.confidence &&
         a.provided == b.provided;
}

TEST(ShardOfWebsiteTest, DeterministicAndInRange) {
  for (uint32_t k : {1u, 2u, 3u, 7u, 64u}) {
    for (uint32_t website = 0; website < 200; ++website) {
      const uint32_t shard = ShardOfWebsite(website, k, /*salt=*/0);
      EXPECT_LT(shard, k);
      EXPECT_EQ(shard, ShardOfWebsite(website, k, /*salt=*/0));
    }
  }
  // K = 1 always routes to shard 0, whatever the salt.
  EXPECT_EQ(ShardOfWebsite(123, 1, 42), 0u);
}

TEST(ShardOfWebsiteTest, SaltPerturbsTheMap) {
  // Different salts must produce a genuinely different map (not a rotation
  // of the same one): count disagreements over a window of ids.
  int disagreements = 0;
  for (uint32_t website = 0; website < 256; ++website) {
    if (ShardOfWebsite(website, 4, 0) != ShardOfWebsite(website, 4, 1)) {
      disagreements++;
    }
  }
  EXPECT_GT(disagreements, 64);
}

TEST(ShardOfWebsiteTest, SpreadsWebsitesAcrossShards) {
  std::vector<int> counts(8, 0);
  for (uint32_t website = 0; website < 4096; ++website) {
    counts[ShardOfWebsite(website, 8, 0)]++;
  }
  for (int count : counts) {
    // A uniform hash puts ~512 in each bucket; even a loose bound catches
    // a broken (e.g. modulo-of-id) map.
    EXPECT_GT(count, 256);
    EXPECT_LT(count, 1024);
  }
}

TEST(PartitionDatasetTest, RejectsZeroShards) {
  PartitionOptions options;
  options.num_shards = 0;
  const auto partition = PartitionDataset(SyntheticCube(1), options);
  ASSERT_FALSE(partition.ok());
  EXPECT_EQ(partition.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionDatasetTest, SingleShardIsACopy) {
  const RawDataset data = SyntheticCube(2);
  PartitionOptions options;
  options.num_shards = 1;
  const auto partition = PartitionDataset(data, options);
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->shards.size(), 1u);
  const RawDataset& shard = partition->shards[0];
  ASSERT_EQ(shard.observations.size(), data.observations.size());
  for (size_t i = 0; i < data.observations.size(); ++i) {
    EXPECT_TRUE(SameObservation(shard.observations[i], data.observations[i]));
    EXPECT_EQ(partition->shard_of_observation[i], 0u);
  }
  EXPECT_EQ(shard.num_websites, data.num_websites);
  EXPECT_EQ(shard.num_pages, data.num_pages);
  EXPECT_EQ(shard.num_extractors, data.num_extractors);
  EXPECT_EQ(shard.num_patterns, data.num_patterns);
  EXPECT_EQ(shard.true_values.size(), data.true_values.size());
  EXPECT_EQ(shard.num_false_by_predicate, data.num_false_by_predicate);
}

TEST(PartitionDatasetTest, ShardsAreDisjointByWebsiteAndOrderPreserving) {
  const RawDataset data = SyntheticCube(3);
  PartitionOptions options;
  options.num_shards = 4;
  options.salt = 7;
  const auto partition = PartitionDataset(data, options);
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->shards.size(), 4u);

  // Disjoint: a website's observations live in exactly the shard the hash
  // names, in every shard consistently.
  for (uint32_t s = 0; s < 4; ++s) {
    for (const RawObservation& obs : partition->shards[s].observations) {
      EXPECT_EQ(ShardOfWebsite(obs.website, 4, 7), s);
    }
  }

  // Order-preserving bit-for-bit union: replaying the input against
  // shard_of_observation must walk each shard front to back.
  std::vector<size_t> cursor(4, 0);
  size_t total = 0;
  ASSERT_EQ(partition->shard_of_observation.size(), data.observations.size());
  for (size_t i = 0; i < data.observations.size(); ++i) {
    const uint32_t s = partition->shard_of_observation[i];
    ASSERT_LT(s, 4u);
    ASSERT_LT(cursor[s], partition->shards[s].observations.size());
    EXPECT_TRUE(SameObservation(partition->shards[s].observations[cursor[s]],
                                data.observations[i]))
        << "input " << i << " -> shard " << s << " pos " << cursor[s];
    cursor[s]++;
    total++;
  }
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cursor[s], partition->shards[s].observations.size());
  }
  EXPECT_EQ(total, data.observations.size());
}

TEST(PartitionDatasetTest, EveryShardReplicatesGlobalBookkeeping) {
  const RawDataset data = SyntheticCube(4);
  PartitionOptions options;
  options.num_shards = 3;
  const auto partition = PartitionDataset(data, options);
  ASSERT_TRUE(partition.ok());
  for (const RawDataset& shard : partition->shards) {
    EXPECT_EQ(shard.num_websites, data.num_websites);
    EXPECT_EQ(shard.num_pages, data.num_pages);
    EXPECT_EQ(shard.num_extractors, data.num_extractors);
    EXPECT_EQ(shard.num_patterns, data.num_patterns);
    EXPECT_EQ(shard.true_values.size(), data.true_values.size());
    EXPECT_EQ(shard.num_false_by_predicate, data.num_false_by_predicate);
  }
}

TEST(PartitionDatasetTest, MoreShardsThanWebsitesLeavesEmptyValidShards) {
  RawDataset data;
  data.num_websites = 2;
  data.num_pages = 2;
  data.num_extractors = 1;
  data.num_patterns = 1;
  data.num_false_by_predicate = {10};
  for (uint32_t w = 0; w < 2; ++w) {
    RawObservation obs;
    obs.extractor = 0;
    obs.pattern = 0;
    obs.website = w;
    obs.page = w;
    obs.item = 0;
    obs.value = w;
    data.observations.push_back(obs);
  }
  PartitionOptions options;
  options.num_shards = 8;
  const auto partition = PartitionDataset(data, options);
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->shards.size(), 8u);
  size_t nonempty = 0;
  for (const RawDataset& shard : partition->shards) {
    if (!shard.observations.empty()) nonempty++;
    // Empty or not, every shard carries the full global meta.
    EXPECT_EQ(shard.num_websites, 2u);
    EXPECT_EQ(shard.num_false_by_predicate, data.num_false_by_predicate);
  }
  EXPECT_LE(nonempty, 2u);
  EXPECT_GE(nonempty, 1u);
}

TEST(PartitionDatasetTest, RepartitionIsBitForBitIdentical) {
  const RawDataset data = SyntheticCube(5);
  PartitionOptions options;
  options.num_shards = 4;
  options.salt = 99;
  const auto first = PartitionDataset(data, options);
  const auto second = PartitionDataset(data, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->shard_of_observation, second->shard_of_observation);
  for (uint32_t s = 0; s < 4; ++s) {
    ASSERT_EQ(first->shards[s].observations.size(),
              second->shards[s].observations.size());
    for (size_t i = 0; i < first->shards[s].observations.size(); ++i) {
      EXPECT_TRUE(SameObservation(first->shards[s].observations[i],
                                  second->shards[s].observations[i]));
    }
  }
}

TEST(PartitionObservationsTest, DeltaScatterMatchesFullPartition) {
  const RawDataset data = SyntheticCube(6);
  PartitionOptions options;
  options.num_shards = 4;
  options.salt = 11;
  const auto partition = PartitionDataset(data, options);
  ASSERT_TRUE(partition.ok());
  const auto buckets = PartitionObservations(data.observations, options);
  ASSERT_EQ(buckets.size(), 4u);
  for (uint32_t s = 0; s < 4; ++s) {
    ASSERT_EQ(buckets[s].size(), partition->shards[s].observations.size());
    for (size_t i = 0; i < buckets[s].size(); ++i) {
      EXPECT_TRUE(SameObservation(buckets[s][i],
                                  partition->shards[s].observations[i]));
    }
  }
}

TEST(PartitionObservationsTest, UntouchedShardsGetEmptyBuckets) {
  // A delta touching one website must land in exactly one bucket.
  RawObservation obs;
  obs.extractor = 0;
  obs.pattern = 0;
  obs.website = 42;
  obs.page = 0;
  obs.item = 0;
  obs.value = 1;
  PartitionOptions options;
  options.num_shards = 4;
  const auto buckets = PartitionObservations({obs, obs, obs}, options);
  const uint32_t owner = ShardOfWebsite(42, 4, 0);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(buckets[s].size(), s == owner ? 3u : 0u);
  }
}

}  // namespace
}  // namespace kbt::extract
