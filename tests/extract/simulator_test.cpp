#include "extract/extraction_simulator.h"

#include <gtest/gtest.h>

#include "corpus/corpus_generator.h"
#include "extract/extractor_profile.h"
#include "kb/type_checker.h"

namespace kbt::extract {
namespace {

corpus::WebCorpus MakeCorpus() {
  corpus::CorpusConfig config;
  config.seed = 21;
  config.num_subjects = 150;
  config.num_predicates = 5;
  config.values_per_domain = 10;
  config.num_websites = 40;
  config.max_pages_per_site = 8;
  config.max_triples_per_page = 15;
  auto corpus = corpus::CorpusGenerator(config).Generate();
  EXPECT_TRUE(corpus.ok());
  return std::move(*corpus);
}

ExtractionConfig MakeExtraction(int num_extractors, uint64_t seed = 31) {
  ExtractionConfig config;
  config.seed = seed;
  Rng rng(seed);
  config.extractors = MakeDefaultExtractors(num_extractors, 5, rng);
  return config;
}

TEST(ExtractionSimulatorTest, ProducesObservations) {
  const auto corpus = MakeCorpus();
  const auto data = ExtractionSimulator(MakeExtraction(6)).Run(corpus);
  ASSERT_TRUE(data.ok());
  EXPECT_GT(data->size(), corpus.num_provided() / 2);
  EXPECT_EQ(data->num_extractors, 6u);
  EXPECT_EQ(data->num_websites, corpus.num_websites());
  for (const auto& obs : data->observations) {
    EXPECT_LT(obs.page, corpus.num_pages());
    EXPECT_EQ(obs.website, corpus.page(obs.page).website);
    EXPECT_GE(obs.confidence, 0.0f);
    EXPECT_LE(obs.confidence, 1.0f);
  }
}

TEST(ExtractionSimulatorTest, DeterministicGivenSeed) {
  const auto corpus = MakeCorpus();
  const auto a = ExtractionSimulator(MakeExtraction(4)).Run(corpus);
  const auto b = ExtractionSimulator(MakeExtraction(4)).Run(corpus);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->observations[i].item, b->observations[i].item);
    EXPECT_EQ(a->observations[i].value, b->observations[i].value);
    EXPECT_FLOAT_EQ(a->observations[i].confidence,
                    b->observations[i].confidence);
  }
}

TEST(ExtractionSimulatorTest, ProvidedFlagMatchesCorpus) {
  const auto corpus = MakeCorpus();
  const auto data = ExtractionSimulator(MakeExtraction(6)).Run(corpus);
  ASSERT_TRUE(data.ok());
  // Rebuild the provided set and verify each flag.
  std::set<std::tuple<kb::PageId, kb::DataItemId, kb::ValueId>> provided;
  for (const auto& t : corpus.provided()) {
    provided.emplace(t.page, t.item, t.value);
  }
  size_t true_flags = 0;
  for (const auto& obs : data->observations) {
    const bool expected =
        provided.count({obs.page, obs.item, obs.value}) > 0;
    EXPECT_EQ(obs.provided, expected);
    true_flags += obs.provided;
  }
  // Extraction is mostly faithful: most observations are real.
  EXPECT_GT(true_flags, data->size() / 3);
  EXPECT_LT(true_flags, data->size());  // But noise exists.
}

TEST(ExtractionSimulatorTest, NoConfidenceExtractorsReportOne) {
  const auto corpus = MakeCorpus();
  ExtractionConfig config = MakeExtraction(8);
  for (auto& e : config.extractors) e.emits_confidence = false;
  const auto data = ExtractionSimulator(std::move(config)).Run(corpus);
  ASSERT_TRUE(data.ok());
  for (const auto& obs : data->observations) {
    EXPECT_FLOAT_EQ(obs.confidence, 1.0f);
  }
}

TEST(ExtractionSimulatorTest, ConfidencesSeparateWhenCalibrated) {
  const auto corpus = MakeCorpus();
  ExtractionConfig config = MakeExtraction(6);
  for (auto& e : config.extractors) {
    e.emits_confidence = true;
    e.confidence_calibration = 0.95;
  }
  const auto data = ExtractionSimulator(std::move(config)).Run(corpus);
  ASSERT_TRUE(data.ok());
  double provided_conf = 0.0;
  double noise_conf = 0.0;
  size_t np = 0;
  size_t nn = 0;
  for (const auto& obs : data->observations) {
    if (obs.provided) {
      provided_conf += obs.confidence;
      ++np;
    } else {
      noise_conf += obs.confidence;
      ++nn;
    }
  }
  ASSERT_GT(np, 0u);
  ASSERT_GT(nn, 0u);
  EXPECT_GT(provided_conf / np, noise_conf / nn + 0.3);
}

TEST(ExtractionSimulatorTest, TypeErrorsAppearAmongCorruptions) {
  const auto corpus = MakeCorpus();
  ExtractionConfig config = MakeExtraction(6);
  for (auto& e : config.extractors) {
    e.component_accuracy = 0.7;  // Plenty of corruption.
    e.type_error_fraction = 0.8;
    for (auto& p : e.patterns) p.component_accuracy = 0.7;
  }
  const auto data = ExtractionSimulator(std::move(config)).Run(corpus);
  ASSERT_TRUE(data.ok());
  kb::TypeChecker checker(corpus.world());
  size_t violations = 0;
  for (const auto& obs : data->observations) {
    if (!checker.IsWellTyped(obs.item, obs.value)) ++violations;
  }
  // A visible share of extractions violates type rules (Figure 6's
  // "type-error triples"), and they are all labeled unprovided.
  EXPECT_GT(violations, data->size() / 50);
  for (const auto& obs : data->observations) {
    if (!checker.IsWellTyped(obs.item, obs.value)) {
      EXPECT_FALSE(obs.provided);
    }
  }
}

TEST(ExtractionSimulatorTest, HigherRecallExtractsMore) {
  const auto corpus = MakeCorpus();
  ExtractionConfig low = MakeExtraction(4, 77);
  ExtractionConfig high = MakeExtraction(4, 77);
  for (auto& e : low.extractors) {
    e.recall = 0.2;
    e.page_coverage = 0.5;
  }
  for (auto& e : high.extractors) {
    e.recall = 0.9;
    e.page_coverage = 0.9;
  }
  const auto a = ExtractionSimulator(std::move(low)).Run(corpus);
  const auto b = ExtractionSimulator(std::move(high)).Run(corpus);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->size(), a->size() * 2);
}

TEST(ExtractionSimulatorTest, ValidatesConfig) {
  const auto corpus = MakeCorpus();
  ExtractionConfig empty;
  EXPECT_FALSE(ExtractionSimulator(std::move(empty)).Run(corpus).ok());

  ExtractionConfig bad = MakeExtraction(2);
  bad.extractors[0].recall = 1.5;
  EXPECT_FALSE(ExtractionSimulator(std::move(bad)).Run(corpus).ok());
}

}  // namespace
}  // namespace kbt::extract
