#include "extract/observation_matrix.h"

#include <gtest/gtest.h>

#include "exp/motivating_example.h"
#include "granularity/assignments.h"

namespace kbt::extract {
namespace {

using exp::MotivatingExample;

class ObservationMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MotivatingExample::Dataset();
    assignment_ = granularity::PageSourcePlainExtractor(data_);
  }

  extract::RawDataset data_;
  GroupAssignment assignment_;
};

TEST_F(ObservationMatrixTest, SlotsGroupObservationsBySourceItemValue) {
  const auto matrix = CompiledMatrix::Build(data_, assignment_);
  ASSERT_TRUE(matrix.ok());
  // W1 has two slots (USA from E1-E4, Kenya from E5).
  int w1_slots = 0;
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_source(s) == 0) ++w1_slots;
  }
  EXPECT_EQ(w1_slots, 2);
  // The USA slot of W1 aggregates four extraction edges.
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_source(s) == 0 &&
        matrix->slot_value(s) == MotivatingExample::kUsa) {
      const auto [b, e] = matrix->SlotExtractions(s);
      EXPECT_EQ(e - b, 4u);
    }
  }
}

TEST_F(ObservationMatrixTest, SlotsAreContiguousByItem) {
  const auto matrix = CompiledMatrix::Build(data_, assignment_);
  ASSERT_TRUE(matrix.ok());
  ASSERT_EQ(matrix->num_items(), 1u);
  const auto [b, e] = matrix->ItemSlots(0);
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, matrix->num_slots());
  EXPECT_EQ(matrix->item_id(0), MotivatingExample::Item());
  EXPECT_EQ(matrix->item_num_false(0), 10);
}

TEST_F(ObservationMatrixTest, SourceCsrIsConsistent) {
  const auto matrix = CompiledMatrix::Build(data_, assignment_);
  ASSERT_TRUE(matrix.ok());
  size_t total = 0;
  for (uint32_t w = 0; w < matrix->num_sources(); ++w) {
    const auto [b, e] = matrix->SourceSlots(w);
    for (uint32_t k = b; k < e; ++k) {
      const uint32_t s = matrix->source_slot_index()[k];
      EXPECT_EQ(matrix->slot_source(s), w);
    }
    total += e - b;
  }
  EXPECT_EQ(total, matrix->num_slots());
}

TEST_F(ObservationMatrixTest, ExtractorCsrIsConsistent) {
  const auto matrix = CompiledMatrix::Build(data_, assignment_);
  ASSERT_TRUE(matrix.ok());
  size_t total = 0;
  for (uint32_t g = 0; g < matrix->num_extractor_groups(); ++g) {
    const auto [b, e] = matrix->ExtractorEdges(g);
    for (uint32_t k = b; k < e; ++k) {
      const uint32_t edge = matrix->extractor_edge_index()[k];
      EXPECT_EQ(matrix->ext_group()[edge], g);
      // ext_slot inverts SlotExtractions.
      const uint32_t slot = matrix->ext_slot(edge);
      const auto [sb, se] = matrix->SlotExtractions(slot);
      EXPECT_GE(edge, sb);
      EXPECT_LT(edge, se);
    }
    total += e - b;
  }
  EXPECT_EQ(total, matrix->num_extractions());
}

TEST_F(ObservationMatrixTest, DuplicateEdgesKeepMaxConfidence) {
  extract::RawDataset data;
  extract::RawObservation obs;
  obs.extractor = 0;
  obs.pattern = 0;
  obs.website = 0;
  obs.page = 0;
  obs.item = kb::MakeDataItem(1, 0);
  obs.value = 2;
  obs.confidence = 0.3f;
  data.observations.push_back(obs);
  obs.confidence = 0.9f;
  obs.pattern = 1;  // Different pattern, same extractor group below.
  data.observations.push_back(obs);
  data.num_false_by_predicate = {10};
  data.num_websites = 1;
  data.num_pages = 1;
  data.num_extractors = 1;
  data.num_patterns = 2;

  const auto assignment = granularity::PageSourcePlainExtractor(data);
  const auto matrix = CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());
  ASSERT_EQ(matrix->num_slots(), 1u);
  ASSERT_EQ(matrix->num_extractions(), 1u);
  EXPECT_FLOAT_EQ(matrix->ext_conf()[0], 0.9f);
}

TEST_F(ObservationMatrixTest, ProvidedTruthIsSticky) {
  const auto matrix = CompiledMatrix::Build(data_, assignment_);
  ASSERT_TRUE(matrix.ok());
  // W1's USA slot is provided; its Kenya slot is not.
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    if (matrix->slot_source(s) != 0) continue;
    if (matrix->slot_value(s) == MotivatingExample::kUsa) {
      EXPECT_TRUE(matrix->slot_provided_truth(s));
    } else {
      EXPECT_FALSE(matrix->slot_provided_truth(s));
    }
  }
}

TEST_F(ObservationMatrixTest, RejectsMismatchedAssignment) {
  GroupAssignment bad = assignment_;
  bad.observation_source.pop_back();
  EXPECT_FALSE(CompiledMatrix::Build(data_, bad).ok());

  bad = assignment_;
  bad.observation_source[0] = bad.num_source_groups + 5;
  EXPECT_FALSE(CompiledMatrix::Build(data_, bad).ok());

  bad = assignment_;
  bad.source_infos.pop_back();
  EXPECT_FALSE(CompiledMatrix::Build(data_, bad).ok());
}

TEST_F(ObservationMatrixTest, WebsiteAndPredicatePropagate) {
  const auto matrix = CompiledMatrix::Build(data_, assignment_);
  ASSERT_TRUE(matrix.ok());
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    EXPECT_EQ(matrix->slot_website(s), matrix->slot_source(s));  // Fixture.
    EXPECT_EQ(matrix->slot_predicate(s), MotivatingExample::kNationality);
  }
}

}  // namespace
}  // namespace kbt::extract
