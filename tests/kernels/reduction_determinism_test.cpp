// Reduction determinism: the blocked reductions behind every served score
// must be a pure function of the data — invariant to the executor's thread
// count, to ParallelFor chunking, and to the kernel kind. Plus golden score
// pins on one fixed corpus, asserted on BOTH kernel kinds, so a silent
// change to the summation tree (lane count, combine order, block size)
// fails loudly instead of drifting every score the system serves.
#include "dataflow/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/multilayer_model.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "fusion/single_layer.h"
#include "granularity/assignments.h"
#include "kernels/kernels.h"

namespace kbt {
namespace {

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

std::vector<double> NastyDoubles(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> xs(n);
  for (size_t i = 0; i < n; ++i) {
    // Magnitudes spanning ~24 orders with mixed signs: any reassociation
    // of the summation tree changes the rounded result here.
    const double mag = std::pow(10.0, double(i % 25) - 12.0);
    xs[i] = (i % 3 == 0 ? -1.0 : 1.0) * uni(rng) * mag;
  }
  return xs;
}

TEST(BlockedSumTest, InvariantToExecutorThreadCount) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{4095}, size_t{4096},
                   size_t{4097}, size_t{100000}}) {
    SCOPED_TRACE(n);
    const std::vector<double> xs = NastyDoubles(n, /*seed=*/n + 13);
    const auto block_sum = [&xs](size_t begin, size_t end) {
      double s = 0.0;
      for (size_t i = begin; i < end; ++i) s += xs[i];
      return s;
    };
    const double serial = dataflow::BlockedSum(nullptr, n, block_sum);
    for (int threads : {1, 2, 8}) {
      dataflow::Executor executor(threads);
      const double parallel = dataflow::BlockedSum(&executor, n, block_sum);
      ASSERT_EQ(Bits(serial), Bits(parallel)) << "threads=" << threads;
    }
  }
}

TEST(BlockedSumTest, MatchesTheFixedBlockProgramExactly) {
  // The contract is not "some deterministic answer": it is THIS summation
  // tree — per-block partials in block order. Recompute it by hand.
  const size_t n = 12345;
  const std::vector<double> xs = NastyDoubles(n, /*seed=*/99);
  const auto block_sum = [&xs](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) s += xs[i];
    return s;
  };
  double expected = 0.0;
  for (size_t begin = 0; begin < n; begin += dataflow::kBlockedSumBlock) {
    expected += block_sum(begin, std::min(n, begin + dataflow::kBlockedSumBlock));
  }
  dataflow::Executor executor(4);
  ASSERT_EQ(Bits(expected), Bits(dataflow::BlockedSum(&executor, n, block_sum)));
}

TEST(BlockedSumTest, BlockSizeIsPartOfTheResultIdentity) {
  // Different block sizes legitimately produce different roundings on
  // adversarial data; the default must therefore never drift silently.
  const size_t n = 10000;
  const std::vector<double> xs = NastyDoubles(n, /*seed=*/7);
  const auto block_sum = [&xs](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) s += xs[i];
    return s;
  };
  EXPECT_EQ(dataflow::kBlockedSumBlock, 4096u);
  const double a = dataflow::BlockedSum(nullptr, n, block_sum, 4096);
  const double b = dataflow::BlockedSum(nullptr, n, block_sum);
  ASSERT_EQ(Bits(a), Bits(b));
}

// ---------------------------------------------------------------------------
// Model-level determinism across executors, on both kernel kinds.
// ---------------------------------------------------------------------------

extract::CompiledMatrix SyntheticMatrix(bool provenance) {
  exp::SyntheticConfig config;
  config.seed = 5;
  const exp::SyntheticData syn = exp::GenerateSynthetic(config);
  const extract::GroupAssignment assignment =
      provenance ? granularity::ProvenanceAssignment(syn.data)
                 : granularity::FinestAssignment(syn.data);
  auto matrix = extract::CompiledMatrix::Build(syn.data, assignment);
  EXPECT_TRUE(matrix.ok());
  return std::move(*matrix);
}

TEST(ReductionDeterminismTest, MultiLayerRunInvariantToThreadCount) {
  const extract::CompiledMatrix matrix = SyntheticMatrix(/*provenance=*/false);
  for (kernels::Kind kind :
       {kernels::Kind::kScalarReference, kernels::Kind::kVectorized}) {
    SCOPED_TRACE(kernels::KindName(kind));
    core::MultiLayerConfig config;
    config.min_source_support = 1;
    config.min_extractor_support = 1;
    config.kernel = kind;
    auto serial = core::MultiLayerModel::Run(matrix, config);
    ASSERT_TRUE(serial.ok());
    for (int threads : {1, 2, 8}) {
      dataflow::Executor executor(threads);
      auto parallel = core::MultiLayerModel::Run(matrix, config, {}, &executor);
      ASSERT_TRUE(parallel.ok());
      for (size_t s = 0; s < serial->slot_value_prob.size(); ++s) {
        ASSERT_EQ(Bits(serial->slot_value_prob[s]),
                  Bits(parallel->slot_value_prob[s]))
            << "threads=" << threads << " slot=" << s;
        ASSERT_EQ(Bits(serial->slot_correct_prob[s]),
                  Bits(parallel->slot_correct_prob[s]))
            << "threads=" << threads << " slot=" << s;
      }
      for (size_t w = 0; w < serial->source_accuracy.size(); ++w) {
        ASSERT_EQ(Bits(serial->source_accuracy[w]),
                  Bits(parallel->source_accuracy[w]))
            << "threads=" << threads << " source=" << w;
      }
      ASSERT_EQ(serial->iterations, parallel->iterations);
    }
  }
}

TEST(ReductionDeterminismTest, SingleLayerRunInvariantToThreadCount) {
  const extract::CompiledMatrix matrix = SyntheticMatrix(/*provenance=*/true);
  for (kernels::Kind kind :
       {kernels::Kind::kScalarReference, kernels::Kind::kVectorized}) {
    SCOPED_TRACE(kernels::KindName(kind));
    fusion::SingleLayerConfig config;
    config.min_source_support = 1;
    config.kernel = kind;
    auto serial = fusion::SingleLayerModel::Run(matrix, config);
    ASSERT_TRUE(serial.ok());
    for (int threads : {1, 2, 8}) {
      dataflow::Executor executor(threads);
      auto parallel =
          fusion::SingleLayerModel::Run(matrix, config, {}, &executor);
      ASSERT_TRUE(parallel.ok());
      for (size_t s = 0; s < serial->slot_value_prob.size(); ++s) {
        ASSERT_EQ(Bits(serial->slot_value_prob[s]),
                  Bits(parallel->slot_value_prob[s]))
            << "threads=" << threads << " slot=" << s;
      }
      for (size_t w = 0; w < serial->source_accuracy.size(); ++w) {
        ASSERT_EQ(Bits(serial->source_accuracy[w]),
                  Bits(parallel->source_accuracy[w]))
            << "threads=" << threads << " source=" << w;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Golden score pins: one fixed corpus, literals asserted on both kinds.
// ---------------------------------------------------------------------------

TEST(ReductionDeterminismTest, GoldenScorePinsHoldOnBothKernels) {
  // These literals were produced by this exact test on the seed corpus
  // (SyntheticConfig{seed = 5}, defaults otherwise). They pin the whole
  // float program: kernels, lane order, BlockedSum calibration, clamps. A
  // legitimate numeric change must update them CONSCIOUSLY — with a note in
  // docs/ARCHITECTURE.md ("EM kernels") that every served score moves.
  const extract::CompiledMatrix matrix = SyntheticMatrix(/*provenance=*/false);
  for (kernels::Kind kind :
       {kernels::Kind::kScalarReference, kernels::Kind::kVectorized}) {
    SCOPED_TRACE(kernels::KindName(kind));
    core::MultiLayerConfig config;
    config.min_source_support = 1;
    config.min_extractor_support = 1;
    config.kernel = kind;
    dataflow::Executor executor(4);
    auto result = core::MultiLayerModel::Run(matrix, config, {}, &executor);
    ASSERT_TRUE(result.ok());
    ASSERT_GE(result->source_accuracy.size(), 3u);
    ASSERT_GE(result->slot_value_prob.size(), 3u);
    EXPECT_NEAR(result->source_accuracy[0], 0.72632222533314905, 1e-9);
    EXPECT_NEAR(result->source_accuracy[2], 0.69445854970164345, 1e-9);
    EXPECT_NEAR(result->slot_value_prob[0], 0.0016563813524343421, 1e-9);
    EXPECT_NEAR(result->slot_value_prob[2], 0.0016776722310779177, 1e-9);
    EXPECT_NEAR(result->slot_correct_prob[0], 0.20067420692335949, 1e-9);
    double mean_value_prob = 0.0;
    for (double p : result->slot_value_prob) mean_value_prob += p;
    mean_value_prob /= double(result->slot_value_prob.size());
    EXPECT_NEAR(mean_value_prob, 0.33037372716497215, 1e-9);
  }
}

}  // namespace
}  // namespace kbt
