// Numeric edge cases the sanitizers care about: denormal inputs, votes at
// the log-clamp boundaries, empty ranges, 1-element reduction blocks. Every
// case runs on both kernel kinds and asserts bit-for-bit agreement, so a
// UBSan-visible shortcut (reading past n, skipping the empty-range early
// return, widening a denormal differently) cannot hide in either path.
// Also home of the M-step scratch-reuse regression: the blocked tallies
// must equal an independently computed sequential tally.
#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "common/math.h"
#include "dataflow/parallel.h"

namespace kbt::kernels {
namespace {

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

TEST(KernelEdgesTest, EmptyRangesAreExactZeroOnBothKinds) {
  // n = 0 with null-ish data: the kernels must not touch any pointer.
  const uint32_t* no_idx = nullptr;
  const double* no_d = nullptr;
  const float* no_f = nullptr;
  for (Kind kind : {Kind::kScalarReference, Kind::kVectorized}) {
    SCOPED_TRACE(KindName(kind));
    const Tally t1 = TallyIndexed(kind, no_idx, 0, no_d, no_d);
    EXPECT_EQ(Bits(t1.num), Bits(0.0));
    EXPECT_EQ(Bits(t1.den), Bits(0.0));
    const Tally t2 = TallyMap(kind, no_idx, 0, no_d, no_d);
    EXPECT_EQ(Bits(t2.num), Bits(0.0));
    EXPECT_EQ(Bits(t2.den), Bits(0.0));
    const Tally t3 = TallyEdges(kind, no_idx, 0, no_f, no_idx, no_d);
    EXPECT_EQ(Bits(t3.num), Bits(0.0));
    EXPECT_EQ(Bits(t3.den), Bits(0.0));
    // begin == end staging ranges are no-ops.
    double out = 42.0;
    StageVotes(kind, no_d, no_idx, no_d, 5, 5, &out);
    StageVotesMasked(kind, no_d, no_d, no_idx, no_d, 5, 5, &out);
    StageVotesSub(kind, no_d, no_idx, no_d, no_d, 5, 5, &out);
    StageVotesMaskedSub(kind, no_d, no_d, no_idx, no_d, no_d, 5, 5, &out);
    StageEdgeTerms(kind, no_f, no_idx, no_d, 5, 5, &out);
    EXPECT_EQ(out, 42.0);
  }
}

TEST(KernelEdgesTest, DenormalWeightsAgreeBitForBit) {
  // Weights and probabilities deep in the denormal range: flush-to-zero
  // differences between the scalar and SIMD paths would show up here.
  const double denorm = 5e-324;             // smallest positive denormal
  const double tiny = 1e-310;               // mid-range denormal
  ASSERT_LT(tiny, std::numeric_limits<double>::min());
  const std::vector<double> w = {denorm, tiny, 1.0, tiny * 3, denorm, 0.5,
                                 tiny, denorm * 7, 2e-320};
  const std::vector<double> p = {1e-4, 0.5, tiny, 1.0 - 1e-4, denorm,
                                 0.25, 1.0,  0.75, tiny};
  std::vector<uint32_t> idx(w.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = uint32_t(i);
  const Tally s =
      TallyIndexed(Kind::kScalarReference, idx.data(), idx.size(), w.data(),
                   p.data());
  const Tally v = TallyIndexed(Kind::kVectorized, idx.data(), idx.size(),
                               w.data(), p.data());
  EXPECT_EQ(Bits(s.num), Bits(v.num));
  EXPECT_EQ(Bits(s.den), Bits(v.den));

  std::vector<double> out_s(w.size()), out_v(w.size());
  StageVotes(Kind::kScalarReference, w.data(), idx.data(), p.data(), 0,
             w.size(), out_s.data());
  StageVotes(Kind::kVectorized, w.data(), idx.data(), p.data(), 0, w.size(),
             out_v.data());
  for (size_t i = 0; i < w.size(); ++i) {
    ASSERT_EQ(Bits(out_s[i]), Bits(out_v[i])) << i;
  }
}

TEST(KernelEdgesTest, VotesAtClampBoundariesStayFinite) {
  // SourceVote at the probability clamps is the largest finite vote the
  // models produce; sums of many of them must stay finite and identical.
  const double hi = SourceVote(ClampProbability(1.0), 100);
  const double lo = SourceVote(ClampProbability(0.0), 100);
  ASSERT_TRUE(std::isfinite(hi));
  ASSERT_TRUE(std::isfinite(lo));
  std::vector<double> table = {hi, lo, hi, lo, hi, hi, lo};
  std::vector<double> w(table.size(), 1.0);
  std::vector<uint32_t> idx(table.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = uint32_t(i);
  std::vector<double> out_s(table.size()), out_v(table.size());
  StageVotes(Kind::kScalarReference, w.data(), idx.data(), table.data(), 0,
             table.size(), out_s.data());
  StageVotes(Kind::kVectorized, w.data(), idx.data(), table.data(), 0,
             table.size(), out_v.data());
  for (size_t i = 0; i < table.size(); ++i) {
    ASSERT_TRUE(std::isfinite(out_s[i]));
    ASSERT_EQ(Bits(out_s[i]), Bits(out_v[i])) << i;
  }
  // An item voted entirely at the clamp bounds still yields a normalized
  // posterior (LogSumExp shifts by the max, so no overflow).
  const std::vector<uint32_t> values = {1, 2, 1, 2, 1, 1, 2};
  const std::vector<uint8_t> mask(table.size(), 1);
  std::vector<double> prob(table.size(), 0.0);
  std::vector<uint8_t> cov(table.size(), 0);
  double unobserved = -1.0;
  EmScratch scratch;
  ItemValuePass(Kind::kScalarReference, 0, uint32_t(table.size()),
                out_s.data(), 0, mask.data(), values.data(),
                /*num_false=*/10, prob.data(), cov.data(), &unobserved,
                &scratch);
  double total = unobserved * 10.0;  // 10 - 1 observed... upper bound check
  for (double p : prob) {
    ASSERT_TRUE(std::isfinite(p));
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
  }
  ASSERT_TRUE(std::isfinite(unobserved));
  ASSERT_GE(total, 0.0);
}

TEST(KernelEdgesTest, SingleElementAndLaneBoundaryTallies) {
  // n = 1..5 crosses the lane horizon (4): the single element must land in
  // lane 0 and the first tail element in the stored lane arrays.
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> w(8), p(8);
  std::vector<uint32_t> idx(8);
  for (size_t i = 0; i < 8; ++i) {
    w[i] = uni(rng);
    p[i] = uni(rng);
    idx[i] = uint32_t(7 - i);
  }
  for (size_t n = 1; n <= 5; ++n) {
    SCOPED_TRACE(n);
    const Tally s =
        TallyIndexed(Kind::kScalarReference, idx.data(), n, w.data(), p.data());
    const Tally v =
        TallyIndexed(Kind::kVectorized, idx.data(), n, w.data(), p.data());
    ASSERT_EQ(Bits(s.num), Bits(v.num));
    ASSERT_EQ(Bits(s.den), Bits(v.den));
    // And the laned program really is the documented one: element k in lane
    // k % 4, lanes combined (l0 + l1) + (l2 + l3).
    double lane_num[kTallyLanes] = {0, 0, 0, 0};
    double lane_den[kTallyLanes] = {0, 0, 0, 0};
    for (size_t k = 0; k < n; ++k) {
      lane_num[k % kTallyLanes] += w[idx[k]] * p[idx[k]];
      lane_den[k % kTallyLanes] += w[idx[k]];
    }
    ASSERT_EQ(Bits((lane_num[0] + lane_num[1]) + (lane_num[2] + lane_num[3])),
              Bits(s.num));
    ASSERT_EQ(Bits((lane_den[0] + lane_den[1]) + (lane_den[2] + lane_den[3])),
              Bits(s.den));
  }
}

TEST(KernelEdgesTest, BlockedSumWithOneElementBlocks) {
  // block_size = 1: every element is its own partial — the combine loop IS
  // the whole sum, sequentially in element order.
  const std::vector<double> xs = {1e16, 1.0, -1e16, 3.5, 5e-324, -1.25};
  const auto block_sum = [&xs](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) s += xs[i];
    return s;
  };
  double expected = 0.0;
  for (double x : xs) expected += x;
  dataflow::Executor executor(3);
  ASSERT_EQ(Bits(expected),
            Bits(dataflow::BlockedSum(&executor, xs.size(), block_sum, 1)));
  ASSERT_EQ(Bits(expected),
            Bits(dataflow::BlockedSum(nullptr, xs.size(), block_sum, 1)));
  // block_size = 0 is clamped to 1, not UB.
  ASSERT_EQ(Bits(expected),
            Bits(dataflow::BlockedSum(nullptr, xs.size(), block_sum, 0)));
}

// ---------------------------------------------------------------------------
// M-step scratch-reuse regression
// ---------------------------------------------------------------------------

TEST(KernelEdgesTest, MStepTallyMatchesIndependentSequentialComputation) {
  // The scratch-churn fix moved the M-step through reusable buffers and
  // laned tallies; this guards the RESULT against that plumbing: the laned
  // tally must equal a plainly written sequential sum to 1e-12 relative,
  // and the two kinds must agree exactly.
  std::mt19937_64 rng(777);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const size_t num_slots = 1537;  // odd, > kStageBlock / 4, not lane-aligned
  std::vector<double> weight(num_slots), prob(num_slots);
  std::vector<uint32_t> idx(num_slots);
  for (size_t s = 0; s < num_slots; ++s) {
    weight[s] = uni(rng);
    prob[s] = ClampProbability(uni(rng));
    idx[s] = uint32_t(s);
  }
  // Shuffle the index list the way a source's CSR slot list is permuted.
  for (size_t s = num_slots; s > 1; --s) {
    std::swap(idx[s - 1], idx[rng() % s]);
  }
  const Tally scalar = TallyIndexed(Kind::kScalarReference, idx.data(),
                                    num_slots, weight.data(), prob.data());
  const Tally vectorized = TallyIndexed(Kind::kVectorized, idx.data(),
                                        num_slots, weight.data(), prob.data());
  ASSERT_EQ(Bits(scalar.num), Bits(vectorized.num));
  ASSERT_EQ(Bits(scalar.den), Bits(vectorized.den));
  double num = 0.0, den = 0.0;
  for (size_t k = 0; k < num_slots; ++k) {
    num += weight[idx[k]] * prob[idx[k]];
    den += weight[idx[k]];
  }
  EXPECT_NEAR(scalar.num, num, 1e-12 * std::abs(num));
  EXPECT_NEAR(scalar.den, den, 1e-12 * std::abs(den));
  // And the derived accuracy (Eq. 4 / 28 shape) is a sane probability.
  const double accuracy = scalar.num / scalar.den;
  EXPECT_GT(accuracy, 0.0);
  EXPECT_LT(accuracy, 1.0);
}

TEST(KernelEdgesTest, EmScratchReuseAcrossManyItemsIsStable) {
  // One scratch instance across a whole chunk of differently-shaped items
  // (the production reuse pattern) must give the same answers as a fresh
  // scratch per item (the old allocation-churn behavior).
  std::mt19937_64 rng(31337);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const size_t num_items = 64;
  EmScratch shared_scalar, shared_vector;
  for (size_t item = 0; item < num_items; ++item) {
    const uint32_t num_slots = 1 + uint32_t(rng() % 9);
    std::vector<double> votes(num_slots);
    std::vector<uint32_t> values(num_slots);
    std::vector<uint8_t> mask(num_slots);
    for (uint32_t s = 0; s < num_slots; ++s) {
      votes[s] = (uni(rng) - 0.5) * 20.0;
      values[s] = uint32_t(rng() % 4);  // few distinct values, repeats
      mask[s] = rng() % 2 ? 1 : 0;
    }
    // Fresh-scratch reference write-back is the baseline; each kind
    // through its own chunk-shared scratch must match it bit for bit.
    std::vector<double> prob_fresh(num_slots, 0.0);
    std::vector<uint8_t> cov_fresh(num_slots, 0);
    double un_fresh = 0.0;
    EmScratch fresh;
    const double d_fresh = ItemValuePass(
        Kind::kScalarReference, 0, num_slots, votes.data(), 0, mask.data(),
        values.data(),
        /*num_false=*/10, prob_fresh.data(), cov_fresh.data(), &un_fresh,
        &fresh);
    for (Kind kind : {Kind::kScalarReference, Kind::kVectorized}) {
      EmScratch& shared =
          kind == Kind::kVectorized ? shared_vector : shared_scalar;
      std::vector<double> prob_shared(num_slots, 0.0);
      std::vector<uint8_t> cov_shared(num_slots, 0);
      double un_shared = 0.0;
      const double d_shared = ItemValuePass(
          kind, 0, num_slots, votes.data(), 0, mask.data(), values.data(),
          /*num_false=*/10, prob_shared.data(), cov_shared.data(),
          &un_shared, &shared);
      ASSERT_EQ(Bits(d_shared), Bits(d_fresh))
          << "item " << item << " kind " << KindName(kind);
      ASSERT_EQ(Bits(un_shared), Bits(un_fresh))
          << "item " << item << " kind " << KindName(kind);
      ASSERT_EQ(cov_shared, cov_fresh)
          << "item " << item << " kind " << KindName(kind);
      for (uint32_t s = 0; s < num_slots; ++s) {
        ASSERT_EQ(Bits(prob_shared[s]), Bits(prob_fresh[s]))
            << "item " << item << " slot " << s << " kind " << KindName(kind);
      }
    }
  }
}

}  // namespace
}  // namespace kbt::kernels
