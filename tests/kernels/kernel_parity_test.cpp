// Differential kernel parity: the vectorized kind must match the
// scalar_reference oracle BIT FOR BIT — on raw kernel sweeps over
// adversarial sizes (0 / 1 / odd / SIMD-width +- 1), on whole model runs
// with every estimator variant, and end to end through Pipeline::Run on
// the plain, sharded (K = 2) and stream-tick backends. Any mismatch here
// means the two kinds no longer execute the same float program and the
// oracle policy (docs/ARCHITECTURE.md, "EM kernels") is broken.
#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "core/multilayer_model.h"
#include "exp/motivating_example.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "fusion/single_layer.h"
#include "granularity/assignments.h"
#include "kbt/kbt.h"
#include "kbt/shard.h"
#include "kbt/stream.h"
#include "support/corpus_fixture.h"

namespace kbt::kernels {
namespace {

// Slot/edge counts crossing every dispatch boundary: empty, below one SIMD
// register, exactly the lane count, one over, around two registers, around
// the 64-entry unrolling horizon, and a bulk run.
const size_t kSweepSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 65, 1000};

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

#define EXPECT_BITS_EQ(a, b) \
  EXPECT_EQ(Bits(a), Bits(b)) << #a " = " << (a) << " vs " #b " = " << (b)

void ExpectVectorBitsEq(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i]))
        << what << "[" << i << "]: " << a[i] << " vs " << b[i];
  }
}

/// Deterministic input streams for the raw-kernel sweeps. The value mix is
/// deliberately nasty: magnitudes spanning ~30 orders, exact zeros, values
/// at the probability clamp bounds, and negatives — anything that would
/// expose a reassociated or contracted float program.
struct KernelInputs {
  std::vector<uint32_t> idx;     // gather indices into the base arrays
  std::vector<double> w;         // weights (claim / correctness streams)
  std::vector<double> p;         // probabilities in [0, 1]
  std::vector<double> table;     // per-source vote memo (signed, large range)
  std::vector<double> sub;       // per-slot log-popularity memo
  std::vector<double> mask;      // 0/1 support stream
  std::vector<float> conf;       // extraction confidences
  std::vector<uint32_t> group;   // per-edge extractor group
  std::vector<double> net;       // per-group net vote
};

KernelInputs MakeInputs(size_t n, uint64_t seed, bool all_false) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const size_t base = n + 7;  // gather targets beyond the sweep range
  KernelInputs in;
  in.idx.resize(n);
  in.w.resize(base);
  in.p.resize(base);
  in.table.resize(base);
  in.sub.resize(base);
  in.mask.resize(n);
  in.conf.resize(base);
  in.group.resize(n);
  in.net.resize(base);
  for (size_t i = 0; i < n; ++i) {
    in.idx[i] = static_cast<uint32_t>(rng() % base);
    in.group[i] = static_cast<uint32_t>(rng() % base);
    in.mask[i] = all_false ? 0.0 : (rng() % 3 ? 1.0 : 0.0);
  }
  for (size_t i = 0; i < base; ++i) {
    const double u = uni(rng);
    // Probabilities hugging the clamp bounds (1e-4 / 1 - 1e-4) and 0.5.
    in.p[i] = (i % 5 == 0) ? 1e-4 : (i % 5 == 1) ? 1.0 - 1e-4 : u;
    // Weights across ~30 orders of magnitude plus exact zeros.
    in.w[i] = (i % 7 == 0) ? 0.0 : uni(rng) * std::pow(10.0, double(i % 31) - 15.0);
    // Signed votes as large as SourceVote near the clamps produces (~27.6).
    in.table[i] = (uni(rng) - 0.5) * 55.2;
    in.sub[i] = -uni(rng) * 20.0;
    in.conf[i] = (i % 11 == 0) ? 0.0f : static_cast<float>(uni(rng));
    in.net[i] = (uni(rng) - 0.5) * 10.0;
  }
  return in;
}

TEST(KernelParityTest, TalliesMatchBitForBitAcrossSizes) {
  for (size_t n : kSweepSizes) {
    SCOPED_TRACE(n);
    const KernelInputs in = MakeInputs(n, /*seed=*/0x9e3779b97f4a7c15 + n,
                                       /*all_false=*/false);
    {
      const Tally s = TallyIndexed(Kind::kScalarReference, in.idx.data(), n,
                                   in.w.data(), in.p.data());
      const Tally v = TallyIndexed(Kind::kVectorized, in.idx.data(), n,
                                   in.w.data(), in.p.data());
      EXPECT_BITS_EQ(s.num, v.num);
      EXPECT_BITS_EQ(s.den, v.den);
    }
    {
      // The correctness stream for the MAP tally: values on both sides of
      // the 0.5 threshold, including exactly 0.5 (not taken: > 0.5).
      std::vector<double> c(in.w.size());
      for (size_t i = 0; i < c.size(); ++i) {
        c[i] = (i % 4 == 0) ? 0.5 : in.p[i];
      }
      const Tally s = TallyMap(Kind::kScalarReference, in.idx.data(), n,
                               c.data(), in.p.data());
      const Tally v = TallyMap(Kind::kVectorized, in.idx.data(), n, c.data(),
                               in.p.data());
      EXPECT_BITS_EQ(s.num, v.num);
      EXPECT_BITS_EQ(s.den, v.den);
    }
    {
      // edges index into conf; edge_slot maps each edge to a slot in p's
      // range.
      std::vector<uint32_t> edge_slot(in.conf.size());
      std::mt19937_64 rng(n * 1315423911u + 7);
      for (size_t i = 0; i < edge_slot.size(); ++i) {
        edge_slot[i] = static_cast<uint32_t>(rng() % in.p.size());
      }
      const Tally s = TallyEdges(Kind::kScalarReference, in.idx.data(), n,
                                 in.conf.data(), edge_slot.data(), in.p.data());
      const Tally v = TallyEdges(Kind::kVectorized, in.idx.data(), n,
                                 in.conf.data(), edge_slot.data(), in.p.data());
      EXPECT_BITS_EQ(s.num, v.num);
      EXPECT_BITS_EQ(s.den, v.den);
    }
  }
}

TEST(KernelParityTest, StagingSweepsMatchBitForBitAcrossSizes) {
  for (size_t n : kSweepSizes) {
    for (bool all_false : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "n=" << n
                                        << " all_false=" << all_false);
      const KernelInputs in =
          MakeInputs(n, /*seed=*/0xc2b2ae3d27d4eb4f + n, all_false);
      std::vector<double> s(n, -1.0);
      std::vector<double> v(n, -2.0);

      StageVotes(Kind::kScalarReference, in.w.data(), in.idx.data(),
                 in.table.data(), 0, n, s.data());
      StageVotes(Kind::kVectorized, in.w.data(), in.idx.data(),
                 in.table.data(), 0, n, v.data());
      ExpectVectorBitsEq(s, v, "StageVotes");

      StageVotesMasked(Kind::kScalarReference, in.mask.data(), in.w.data(),
                       in.idx.data(), in.table.data(), 0, n, s.data());
      StageVotesMasked(Kind::kVectorized, in.mask.data(), in.w.data(),
                       in.idx.data(), in.table.data(), 0, n, v.data());
      ExpectVectorBitsEq(s, v, "StageVotesMasked");

      StageVotesSub(Kind::kScalarReference, in.w.data(), in.idx.data(),
                    in.table.data(), in.sub.data(), 0, n, s.data());
      StageVotesSub(Kind::kVectorized, in.w.data(), in.idx.data(),
                    in.table.data(), in.sub.data(), 0, n, v.data());
      ExpectVectorBitsEq(s, v, "StageVotesSub");

      StageVotesMaskedSub(Kind::kScalarReference, in.mask.data(), in.w.data(),
                          in.idx.data(), in.table.data(), in.sub.data(), 0, n,
                          s.data());
      StageVotesMaskedSub(Kind::kVectorized, in.mask.data(), in.w.data(),
                          in.idx.data(), in.table.data(), in.sub.data(), 0, n,
                          v.data());
      ExpectVectorBitsEq(s, v, "StageVotesMaskedSub");

      StageEdgeTerms(Kind::kScalarReference, in.conf.data(), in.group.data(),
                     in.net.data(), 0, n, s.data());
      StageEdgeTerms(Kind::kVectorized, in.conf.data(), in.group.data(),
                     in.net.data(), 0, n, v.data());
      ExpectVectorBitsEq(s, v, "StageEdgeTerms");
    }
  }
}

TEST(KernelParityTest, StagingHonorsNonZeroBegin) {
  // The blocked model loops always stage [begin, end) sub-ranges with
  // out[0] anchored at begin; an off-by-one here corrupts votes silently.
  const size_t n = 97;
  const KernelInputs in = MakeInputs(n, /*seed=*/71, /*all_false=*/false);
  std::vector<double> whole(n);
  StageVotesMasked(Kind::kVectorized, in.mask.data(), in.w.data(),
                   in.idx.data(), in.table.data(), 0, n, whole.data());
  for (size_t begin : {size_t{0}, size_t{1}, size_t{3}, size_t{64}, n}) {
    for (size_t end : {begin, std::min(begin + 5, n), n}) {
      std::vector<double> part(end - begin, -7.0);
      StageVotesMasked(Kind::kVectorized, in.mask.data(), in.w.data(),
                       in.idx.data(), in.table.data(), begin, end,
                       part.data());
      for (size_t i = 0; i < part.size(); ++i) {
        ASSERT_EQ(Bits(part[i]), Bits(whole[begin + i]))
            << "begin=" << begin << " end=" << end << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ItemValuePass on adversarial item shapes
// ---------------------------------------------------------------------------

TEST(KernelParityTest, ItemValuePassSingleValueAndAllFalseItems) {
  // Items whose slots all claim ONE value, and items whose slots are all
  // unsupported (covered_mask zero), at votes near the clamp bounds.
  const std::vector<double> votes = {27.6, 27.6, -27.6};
  const std::vector<uint32_t> values = {5, 5, 5};  // single-value item
  for (uint8_t mask_value : {uint8_t{1}, uint8_t{0}}) {
    const std::vector<uint8_t> mask(3, mask_value);
    // Reference write-back with a clean scratch is the baseline; both
    // kinds, clean or dirty scratch, must reproduce it bit for bit.
    std::vector<double> prob_ref(3, 0.0);
    std::vector<uint8_t> cov_ref(3, 2);
    double un_ref = -1.0;
    EmScratch scratch_ref;
    const double delta_ref =
        ItemValuePass(Kind::kScalarReference, 0, 3, votes.data(), 0,
                      mask.data(), values.data(),
                      /*num_false=*/10, prob_ref.data(), cov_ref.data(),
                      &un_ref, &scratch_ref);
    for (Kind kind : {Kind::kScalarReference, Kind::kVectorized}) {
      SCOPED_TRACE(::testing::Message()
                   << "mask=" << int(mask_value) << " kind=" << KindName(kind));
      // A pass through a DIRTY scratch (simulating buffer reuse across
      // items in one chunk) must not change anything.
      std::vector<double> prob_b(3, 0.0);
      std::vector<uint8_t> cov_b(3, 2);
      double un_b = -1.0;
      EmScratch scratch_b;
      scratch_b.values.assign(100, 9);
      scratch_b.value_votes.assign(100, 3.25);
      scratch_b.log_terms.assign(100, -8.5);
      scratch_b.slot_vi.assign(100, 77);
      const double delta_b =
          ItemValuePass(kind, 0, 3, votes.data(), 0, mask.data(),
                        values.data(),
                        /*num_false=*/10, prob_b.data(), cov_b.data(), &un_b,
                        &scratch_b);
      EXPECT_BITS_EQ(delta_ref, delta_b);
      EXPECT_BITS_EQ(un_ref, un_b);
      ExpectVectorBitsEq(prob_ref, prob_b, "slot_value_prob");
      EXPECT_EQ(cov_ref, cov_b);
    }
    // Coverage propagates from the mask: all slots covered or none.
    for (uint8_t c : cov_ref) EXPECT_EQ(c, mask_value);
    // The single value soaks up essentially all mass when votes are huge.
    if (votes[0] > 0) {
      EXPECT_GT(prob_ref[0], 0.99);
    }
    // All slots of a single-value item share the posterior bit for bit.
    EXPECT_BITS_EQ(prob_ref[0], prob_ref[1]);
    EXPECT_BITS_EQ(prob_ref[0], prob_ref[2]);
  }
}

TEST(KernelParityTest, ItemValuePassNoUnobservedMassWhenDomainIsFull) {
  // num_false + 1 distinct values observed => zero unobserved slots; the
  // unobserved branch must write exactly 0.0 and LogSumExp must run over
  // the observed votes only.
  const std::vector<double> votes = {1.0, -2.0, 0.5};
  const std::vector<uint32_t> values = {1, 2, 3};
  const std::vector<uint8_t> mask = {1, 1, 1};
  for (Kind kind : {Kind::kScalarReference, Kind::kVectorized}) {
    SCOPED_TRACE(::testing::Message() << "kind=" << KindName(kind));
    std::vector<double> prob(3, 0.0);
    std::vector<uint8_t> cov(3, 0);
    double unobserved = -1.0;
    EmScratch scratch;
    ItemValuePass(kind, 0, 3, votes.data(), 0, mask.data(), values.data(),
                  /*num_false=*/2, prob.data(), cov.data(), &unobserved,
                  &scratch);
    EXPECT_BITS_EQ(unobserved, 0.0);
    double total = prob[0] + prob[1] + prob[2];
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(KernelParityTest, ItemValuePassIndexedMatchesReferenceBitForBit) {
  // The staged paths hoist the value grouping out of the iteration loop
  // (BuildValueIndex once per Run) and finish items through
  // ItemValuePassIndexed. Per-item, that must be bit-identical to the
  // reference scanning ItemValuePass on adversarial vote streams.
  std::mt19937_64 rng(424242);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (size_t item = 0; item < 200; ++item) {
    SCOPED_TRACE(::testing::Message() << "item=" << item);
    const uint32_t num_slots = 1 + uint32_t(rng() % 12);
    std::vector<double> votes(num_slots);
    std::vector<uint32_t> values(num_slots);
    std::vector<uint8_t> mask(num_slots);
    for (uint32_t s = 0; s < num_slots; ++s) {
      // Mix huge, tiny and zero votes; few distinct values so repeats and
      // first-occurrence ordering both get exercised.
      const double scale = s % 3 == 0 ? 27.6 : (s % 3 == 1 ? 1e-8 : 1.0);
      votes[s] = (uni(rng) - 0.5) * 2.0 * scale;
      values[s] = uint32_t(rng() % 5);
      mask[s] = rng() % 4 == 0 ? 0 : 1;
    }
    const int num_false = 1 + int(rng() % 12);

    std::vector<double> prob_ref(num_slots, 0.25), prob_idx(num_slots, 0.25);
    std::vector<uint8_t> cov_ref(num_slots, 2), cov_idx(num_slots, 2);
    double un_ref = -1.0, un_idx = -1.0;
    EmScratch scratch_ref, scratch_idx, vi_scratch;
    const double d_ref = ItemValuePass(
        Kind::kScalarReference, 0, num_slots, votes.data(), 0, mask.data(),
        values.data(), num_false, prob_ref.data(), cov_ref.data(), &un_ref,
        &scratch_ref);

    std::vector<uint32_t> slot_vi(num_slots, 999);
    const uint32_t num_values = BuildValueIndex(0, num_slots, values.data(),
                                                slot_vi.data(), &vi_scratch);
    ASSERT_GE(num_values, 1u);
    ASSERT_LE(num_values, num_slots);
    for (uint32_t s = 0; s < num_slots; ++s) ASSERT_LT(slot_vi[s], num_values);
    const double d_idx = ItemValuePassIndexed(
        0, num_slots, votes.data(), 0, mask.data(), slot_vi.data(),
        num_values, num_false, prob_idx.data(), cov_idx.data(), &un_idx,
        &scratch_idx);

    EXPECT_BITS_EQ(d_ref, d_idx);
    EXPECT_BITS_EQ(un_ref, un_idx);
    ExpectVectorBitsEq(prob_ref, prob_idx, "slot_value_prob");
    EXPECT_EQ(cov_ref, cov_idx);
  }
}

// ---------------------------------------------------------------------------
// Whole-model parity: flip only config.kernel, compare everything bitwise.
// ---------------------------------------------------------------------------

extract::CompiledMatrix BuildMatrix(const extract::RawDataset& data,
                                    bool provenance) {
  const extract::GroupAssignment assignment =
      provenance ? granularity::ProvenanceAssignment(data)
                 : granularity::FinestAssignment(data);
  auto matrix = extract::CompiledMatrix::Build(data, assignment);
  EXPECT_TRUE(matrix.ok());
  return std::move(*matrix);
}

void ExpectSingleLayerBitsEq(const fusion::SingleLayerResult& a,
                             const fusion::SingleLayerResult& b) {
  ExpectVectorBitsEq(a.source_accuracy, b.source_accuracy, "source_accuracy");
  EXPECT_EQ(a.source_supported, b.source_supported);
  ExpectVectorBitsEq(a.slot_value_prob, b.slot_value_prob, "slot_value_prob");
  EXPECT_EQ(a.slot_covered, b.slot_covered);
  ExpectVectorBitsEq(a.item_unobserved_value_prob,
                     b.item_unobserved_value_prob, "item_unobserved");
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

void ExpectMultiLayerBitsEq(const core::MultiLayerResult& a,
                            const core::MultiLayerResult& b) {
  ExpectVectorBitsEq(a.source_accuracy, b.source_accuracy, "source_accuracy");
  EXPECT_EQ(a.source_supported, b.source_supported);
  ExpectVectorBitsEq(a.extractor_precision, b.extractor_precision,
                     "extractor_precision");
  ExpectVectorBitsEq(a.extractor_recall, b.extractor_recall,
                     "extractor_recall");
  ExpectVectorBitsEq(a.extractor_q, b.extractor_q, "extractor_q");
  EXPECT_EQ(a.extractor_supported, b.extractor_supported);
  ExpectVectorBitsEq(a.slot_correct_prob, b.slot_correct_prob,
                     "slot_correct_prob");
  ExpectVectorBitsEq(a.slot_value_prob, b.slot_value_prob, "slot_value_prob");
  ExpectVectorBitsEq(a.slot_alpha, b.slot_alpha, "slot_alpha");
  EXPECT_EQ(a.slot_covered, b.slot_covered);
  ExpectVectorBitsEq(a.item_unobserved_value_prob,
                     b.item_unobserved_value_prob, "item_unobserved");
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(KernelParityTest, SingleLayerModelMatchesAcrossEstimatorVariants) {
  const exp::SyntheticData syn = exp::GenerateSynthetic(exp::SyntheticConfig{});
  const extract::CompiledMatrix matrix =
      BuildMatrix(syn.data, /*provenance=*/true);
  for (core::ValueModel vm :
       {core::ValueModel::kAccu, core::ValueModel::kPopAccu}) {
    for (int n_override : {100, -1}) {
      for (bool confidence_weights : {true, false}) {
        SCOPED_TRACE(::testing::Message()
                     << "value_model=" << int(vm) << " n=" << n_override
                     << " conf_weights=" << confidence_weights);
        fusion::SingleLayerConfig config;
        config.min_source_support = 1;
        config.value_model = vm;
        config.num_false_override = n_override;
        config.use_confidence_weights = confidence_weights;

        config.kernel = Kind::kScalarReference;
        auto scalar = fusion::SingleLayerModel::Run(matrix, config);
        ASSERT_TRUE(scalar.ok());
        config.kernel = Kind::kVectorized;
        auto vectorized = fusion::SingleLayerModel::Run(matrix, config);
        ASSERT_TRUE(vectorized.ok());
        ExpectSingleLayerBitsEq(*scalar, *vectorized);
      }
    }
  }
}

TEST(KernelParityTest, SingleLayerModelMatchesAtExtremeInitialAccuracies) {
  // Initial accuracies pinned at the clamp bounds drive SourceVote through
  // its largest magnitudes (~ +-27.6 at n = 100) — the regime where a
  // reassociated sum would diverge first.
  const exp::SyntheticData syn = exp::GenerateSynthetic(exp::SyntheticConfig{});
  const extract::CompiledMatrix matrix =
      BuildMatrix(syn.data, /*provenance=*/true);
  std::vector<double> initial(matrix.num_sources());
  for (size_t w = 0; w < initial.size(); ++w) {
    initial[w] = (w % 2 == 0) ? 1e-4 : 1.0 - 1e-4;
  }
  fusion::SingleLayerConfig config;
  config.min_source_support = 1;
  config.kernel = Kind::kScalarReference;
  auto scalar = fusion::SingleLayerModel::Run(matrix, config, initial);
  ASSERT_TRUE(scalar.ok());
  config.kernel = Kind::kVectorized;
  auto vectorized = fusion::SingleLayerModel::Run(matrix, config, initial);
  ASSERT_TRUE(vectorized.ok());
  ExpectSingleLayerBitsEq(*scalar, *vectorized);
}

TEST(KernelParityTest, MultiLayerModelMatchesAcrossEstimatorVariants) {
  const exp::SyntheticData syn = exp::GenerateSynthetic(exp::SyntheticConfig{});
  const extract::CompiledMatrix matrix =
      BuildMatrix(syn.data, /*provenance=*/false);
  for (bool weighted : {true, false}) {
    for (bool calibrate : {true, false}) {
      for (core::ValueModel vm :
           {core::ValueModel::kAccu, core::ValueModel::kPopAccu}) {
        for (int n_override : {10, -1}) {
          SCOPED_TRACE(::testing::Message()
                       << "weighted=" << weighted << " calibrate=" << calibrate
                       << " value_model=" << int(vm) << " n=" << n_override);
          core::MultiLayerConfig config;
          config.min_source_support = 1;
          config.min_extractor_support = 1;
          config.weighted_value_votes = weighted;
          config.calibrate_correctness = calibrate;
          config.value_model = vm;
          config.num_false_override = n_override;

          config.kernel = Kind::kScalarReference;
          auto scalar = core::MultiLayerModel::Run(matrix, config);
          ASSERT_TRUE(scalar.ok());
          config.kernel = Kind::kVectorized;
          auto vectorized = core::MultiLayerModel::Run(matrix, config);
          ASSERT_TRUE(vectorized.ok());
          ExpectMultiLayerBitsEq(*scalar, *vectorized);
        }
      }
    }
  }
}

TEST(KernelParityTest, MultiLayerModelMatchesOnMotivatingExample) {
  // The paper's 8-page worked example: tiny item counts, frozen Table 3
  // quality, no calibration — the regime the worked-example tests pin.
  const extract::RawDataset data = exp::MotivatingExample::Dataset();
  const extract::GroupAssignment assignment =
      granularity::PageSourcePlainExtractor(data);
  auto matrix = extract::CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());
  core::MultiLayerConfig config;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.calibrate_correctness = false;
  config.update_extractor_quality = false;
  config.num_false_override = 10;
  const core::InitialQuality initial =
      exp::MotivatingExample::Table3Quality();

  config.kernel = Kind::kScalarReference;
  auto scalar = core::MultiLayerModel::Run(*matrix, config, initial);
  ASSERT_TRUE(scalar.ok());
  config.kernel = Kind::kVectorized;
  auto vectorized = core::MultiLayerModel::Run(*matrix, config, initial);
  ASSERT_TRUE(vectorized.ok());
  ExpectMultiLayerBitsEq(*scalar, *vectorized);
}

// ---------------------------------------------------------------------------
// End-to-end parity on the corpus fixture: plain, sharded, stream tick.
// ---------------------------------------------------------------------------

kbt::testing::CorpusFixtureOptions FixtureOptions() {
  kbt::testing::CorpusFixtureOptions options;
  options.num_subjects = 80;
  options.num_websites = 25;
  options.num_extractors = 4;
  return options;
}

api::Options PipelineOptions(api::Model model, Kind kind) {
  api::Options options;
  options.model = model;
  options.granularity = model == api::Model::kSingleLayer
                            ? api::Granularity::kProvenance
                            : api::Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  options.multilayer.kernel = kind;
  options.single_layer.min_source_support = 1;
  options.single_layer.kernel = kind;
  return options;
}

void ExpectReportsBitsEq(const api::TrustReport& a, const api::TrustReport& b) {
  ExpectMultiLayerBitsEq(a.inference, b.inference);
  ASSERT_EQ(a.website_kbt.size(), b.website_kbt.size());
  for (size_t w = 0; w < a.website_kbt.size(); ++w) {
    ASSERT_EQ(Bits(a.website_kbt[w].kbt), Bits(b.website_kbt[w].kbt)) << w;
    ASSERT_EQ(Bits(a.website_kbt[w].evidence), Bits(b.website_kbt[w].evidence))
        << w;
  }
  ASSERT_EQ(a.source_kbt.size(), b.source_kbt.size());
  for (size_t s = 0; s < a.source_kbt.size(); ++s) {
    ASSERT_EQ(Bits(a.source_kbt[s].kbt), Bits(b.source_kbt[s].kbt)) << s;
  }
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (size_t i = 0; i < a.predictions.size(); ++i) {
    ASSERT_EQ(a.predictions[i].item, b.predictions[i].item) << i;
    ASSERT_EQ(a.predictions[i].value, b.predictions[i].value) << i;
    ASSERT_EQ(Bits(a.predictions[i].probability),
              Bits(b.predictions[i].probability))
        << i;
    ASSERT_EQ(a.predictions[i].covered, b.predictions[i].covered) << i;
  }
}

TEST(KernelParityEndToEndTest, PipelineRunMatchesOnBothModels) {
  auto fixture = kbt::testing::MakeCorpusFixture(FixtureOptions());
  ASSERT_TRUE(fixture.ok());
  for (api::Model model : {api::Model::kMultiLayer, api::Model::kSingleLayer}) {
    SCOPED_TRACE(api::ModelName(model));
    auto scalar =
        api::PipelineBuilder()
            .FromDataset(fixture->dataset)
            .WithOptions(PipelineOptions(model, Kind::kScalarReference))
            .Build();
    ASSERT_TRUE(scalar.ok());
    auto vectorized =
        api::PipelineBuilder()
            .FromDataset(fixture->dataset)
            .WithOptions(PipelineOptions(model, Kind::kVectorized))
            .Build();
    ASSERT_TRUE(vectorized.ok());
    auto report_s = scalar->Run();
    ASSERT_TRUE(report_s.ok());
    auto report_v = vectorized->Run();
    ASSERT_TRUE(report_v.ok());
    ExpectReportsBitsEq(*report_s, *report_v);
  }
}

TEST(KernelParityEndToEndTest, ShardedPipelineMatchesAtKEquals2) {
  auto fixture = kbt::testing::MakeCorpusFixture(FixtureOptions());
  ASSERT_TRUE(fixture.ok());
  api::ShardOptions shard_options;
  shard_options.num_shards = 2;
  auto scalar = api::ShardedPipeline::Create(
      fixture->dataset,
      PipelineOptions(api::Model::kMultiLayer, Kind::kScalarReference),
      shard_options);
  ASSERT_TRUE(scalar.ok());
  auto vectorized = api::ShardedPipeline::Create(
      fixture->dataset,
      PipelineOptions(api::Model::kMultiLayer, Kind::kVectorized),
      shard_options);
  ASSERT_TRUE(vectorized.ok());
  auto report_s = scalar->Run();
  ASSERT_TRUE(report_s.ok());
  auto report_v = vectorized->Run();
  ASSERT_TRUE(report_v.ok());
  ASSERT_EQ(report_s->shards.size(), 2u);
  ASSERT_EQ(report_v->shards.size(), 2u);
  for (size_t k = 0; k < 2; ++k) {
    SCOPED_TRACE(::testing::Message() << "shard " << k);
    ExpectReportsBitsEq(report_s->shards[k], report_v->shards[k]);
  }
  ExpectReportsBitsEq(report_s->merged, report_v->merged);
}

TEST(KernelParityEndToEndTest, StreamTicksMatchAcrossKernels) {
  auto fixture = kbt::testing::MakeCorpusFixture(FixtureOptions());
  ASSERT_TRUE(fixture.ok());
  auto slices = kbt::testing::SliceObservations(fixture->dataset, 3);
  extract::RawDataset seed = fixture->dataset;
  seed.observations = slices[0];

  auto run_stream = [&](Kind kind) {
    auto pipeline =
        api::PipelineBuilder()
            .FromDataset(seed)
            .WithOptions(PipelineOptions(api::Model::kMultiLayer, kind))
            .Build();
    EXPECT_TRUE(pipeline.ok());
    auto feed = std::make_shared<stream::QueueFeed>();
    auto engine =
        stream::StreamEngine::Create(&*pipeline, feed, stream::StreamOptions{});
    EXPECT_TRUE(engine.ok());
    std::vector<std::shared_ptr<const query::Snapshot>> snapshots;
    double now = 10.0;
    for (size_t b = 1; b < slices.size(); ++b, now += 10.0) {
      std::vector<stream::TimedObservation> timed;
      for (const extract::RawObservation& obs : slices[b]) {
        timed.push_back(stream::TimedObservation{obs, now});
      }
      feed->PushBatch(std::move(timed));
      auto tick = (*engine)->Tick(now);
      EXPECT_TRUE(tick.ok());
      EXPECT_TRUE(tick->published);
      snapshots.push_back(tick->snapshot);
    }
    return snapshots;
  };

  const auto scalar_snaps = run_stream(Kind::kScalarReference);
  const auto vector_snaps = run_stream(Kind::kVectorized);
  ASSERT_EQ(scalar_snaps.size(), vector_snaps.size());
  for (size_t g = 0; g < scalar_snaps.size(); ++g) {
    SCOPED_TRACE(::testing::Message() << "generation " << g);
    const query::Snapshot& a = *scalar_snaps[g];
    const query::Snapshot& b = *vector_snaps[g];
    ASSERT_EQ(a.num_sources(), b.num_sources());
    ASSERT_EQ(a.num_triples(), b.num_triples());
    for (uint32_t s = 0; s < a.num_sources(); ++s) {
      const auto sa = a.SourceTrust(s);
      const auto sb = b.SourceTrust(s);
      ASSERT_TRUE(sa.has_value());
      ASSERT_TRUE(sb.has_value());
      ASSERT_EQ(Bits(sa->kbt), Bits(sb->kbt)) << "source " << s;
    }
    const auto ta = a.TopKTriples(a.num_triples());
    const auto tb = b.TopKTriples(b.num_triples());
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta[i].item, tb[i].item) << i;
      ASSERT_EQ(ta[i].value, tb[i].value) << i;
      ASSERT_EQ(Bits(ta[i].probability), Bits(tb[i].probability)) << i;
    }
  }
}

}  // namespace
}  // namespace kbt::kernels
