#include "granularity/split_merge.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace kbt::granularity {
namespace {

/// Builds a leaf with a sequential atom range.
LeafNode MakeLeaf(std::vector<uint64_t> path, uint64_t first_atom,
                  size_t count) {
  LeafNode leaf;
  leaf.path = std::move(path);
  for (size_t i = 0; i < count; ++i) leaf.atoms.push_back(first_atom + i);
  return leaf;
}

size_t TotalAtoms(const SplitMergeResult& result) {
  return result.atom_group.size();
}

TEST(SplitMergeTest, InRangeLeavesPassThrough) {
  std::vector<LeafNode> leaves;
  leaves.push_back(MakeLeaf({1, 10, 100}, 0, 7));
  leaves.push_back(MakeLeaf({1, 10, 101}, 100, 9));
  SplitMergeOptions options;
  options.min_size = 5;
  options.max_size = 10;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups, 2u);
  EXPECT_EQ(TotalAtoms(*result), 16u);
  for (const auto& g : result->groups) {
    EXPECT_EQ(g.level, 2);
    EXPECT_EQ(g.num_buckets, 1u);
  }
}

// Example 4.1: three small sources under one site merge into the parent.
TEST(SplitMergeTest, Example41MergeSiblings) {
  std::vector<LeafNode> leaves;
  leaves.push_back(MakeLeaf({7, 0}, 0, 2));   // (website1, date_of_birth)
  leaves.push_back(MakeLeaf({7, 1}, 10, 2));  // (website1, place_of_birth)
  leaves.push_back(MakeLeaf({7, 2}, 20, 2));  // (website1, gender)
  SplitMergeOptions options;
  options.min_size = 5;
  options.max_size = 100;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  // One merged source <website1> of size 2*3 = 6.
  ASSERT_EQ(result->num_groups, 1u);
  EXPECT_EQ(result->groups[0].level, 0);
  EXPECT_EQ(result->groups[0].path_prefix, std::vector<uint64_t>{7});
  EXPECT_EQ(result->groups[0].size, 6u);
}

// Example 4.2: 1000 sources <W, Pi, URLi>, one triple each, bounds [5, 500]:
// two stages of merging then one split, ending with 2 sources of 500.
TEST(SplitMergeTest, Example42MergeThenSplit) {
  std::vector<LeafNode> leaves;
  for (uint64_t i = 0; i < 1000; ++i) {
    leaves.push_back(MakeLeaf({42, 1000 + i, 2000 + i}, i, 1));
  }
  SplitMergeOptions options;
  options.min_size = 5;
  options.max_size = 500;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups, 2u);
  for (const auto& g : result->groups) {
    EXPECT_EQ(g.level, 0);
    EXPECT_EQ(g.size, 500u);
    EXPECT_EQ(g.num_buckets, 2u);
  }
  EXPECT_EQ(TotalAtoms(*result), 1000u);
}

TEST(SplitMergeTest, SplitProducesBalancedBuckets) {
  std::vector<LeafNode> leaves;
  leaves.push_back(MakeLeaf({1, 2, 3}, 0, 1003));
  SplitMergeOptions options;
  options.min_size = 1;
  options.max_size = 100;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  // ceil(1003/100) = 11 buckets of 91 or 92 atoms.
  ASSERT_EQ(result->num_groups, 11u);
  for (const auto& g : result->groups) {
    EXPECT_GE(g.size, 91u);
    EXPECT_LE(g.size, 92u);
    EXPECT_EQ(g.num_buckets, 11u);
  }
}

TEST(SplitMergeTest, AtomPartitionIsExact) {
  // Every atom lands in exactly one group regardless of merge/split mix.
  std::vector<LeafNode> leaves;
  uint64_t atom = 0;
  for (uint64_t site = 0; site < 5; ++site) {
    for (uint64_t pred = 0; pred < 4; ++pred) {
      for (uint64_t page = 0; page < 3; ++page) {
        const size_t size = 1 + ((site * 7 + pred * 3 + page) % 40);
        leaves.push_back(
            MakeLeaf({site, pred * 10, page * 100}, atom, size));
        atom += size;
      }
    }
  }
  SplitMergeOptions options;
  options.min_size = 8;
  options.max_size = 30;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(TotalAtoms(*result), atom);
  // Group sizes from metadata match the atom map.
  std::vector<size_t> counted(result->num_groups, 0);
  for (const auto& [a, g] : result->atom_group) {
    (void)a;
    counted[g]++;
  }
  for (uint32_t g = 0; g < result->num_groups; ++g) {
    EXPECT_EQ(counted[g], result->groups[g].size);
  }
}

TEST(SplitMergeTest, RootLevelSmallNodeKeptAsIs) {
  // A lone tiny hierarchy cannot merge further; Algorithm 2 keeps it.
  std::vector<LeafNode> leaves;
  leaves.push_back(MakeLeaf({3, 1, 0}, 0, 1));
  SplitMergeOptions options;
  options.min_size = 5;
  options.max_size = 100;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups, 1u);
  EXPECT_EQ(result->groups[0].size, 1u);
  EXPECT_EQ(result->groups[0].level, 0);
}

TEST(SplitMergeTest, MergeDisabledKeepsSmallLeaves) {
  std::vector<LeafNode> leaves;
  leaves.push_back(MakeLeaf({1, 2, 3}, 0, 1));
  leaves.push_back(MakeLeaf({1, 2, 4}, 10, 1));
  SplitMergeOptions options;
  options.min_size = 5;
  options.max_size = 100;
  options.enable_merge = false;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups, 2u);
  for (const auto& g : result->groups) EXPECT_EQ(g.level, 2);
}

TEST(SplitMergeTest, SplitDisabledKeepsBigLeaves) {
  std::vector<LeafNode> leaves;
  leaves.push_back(MakeLeaf({1, 2, 3}, 0, 1000));
  SplitMergeOptions options;
  options.min_size = 5;
  options.max_size = 100;
  options.enable_split = false;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups, 1u);
  EXPECT_EQ(result->groups[0].size, 1000u);
}

TEST(SplitMergeTest, MergedParentThatBecomesTooLargeIsSplit) {
  // 50 children of one parent, 4 atoms each -> parent has 200 > M=80 ->
  // split into 3 buckets.
  std::vector<LeafNode> leaves;
  for (uint64_t i = 0; i < 50; ++i) {
    leaves.push_back(MakeLeaf({9, i, i}, i * 10, 4));
  }
  SplitMergeOptions options;
  options.min_size = 5;
  options.max_size = 80;
  const auto result = SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  // Children merge to (9, i) singletons (still small), then to (9): 200
  // atoms, split into ceil(200/80)=3.
  ASSERT_EQ(result->num_groups, 3u);
  size_t total = 0;
  for (const auto& g : result->groups) {
    EXPECT_EQ(g.level, 0);
    EXPECT_EQ(g.num_buckets, 3u);
    total += g.size;
  }
  EXPECT_EQ(total, 200u);
}

TEST(SplitMergeTest, DeterministicGivenSeed) {
  std::vector<LeafNode> leaves;
  leaves.push_back(MakeLeaf({1, 2, 3}, 0, 1000));
  SplitMergeOptions options;
  options.min_size = 1;
  options.max_size = 100;
  options.seed = 7;
  const auto a = SplitAndMerge(leaves, options);
  const auto b = SplitAndMerge(leaves, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (const auto& [atom, group] : a->atom_group) {
    EXPECT_EQ(b->atom_group.at(atom), group);
  }
}

TEST(SplitMergeTest, RejectsInvalidOptionsAndLeaves) {
  std::vector<LeafNode> leaves;
  leaves.push_back(MakeLeaf({1}, 0, 3));
  SplitMergeOptions bad;
  bad.min_size = 10;
  bad.max_size = 5;
  EXPECT_FALSE(SplitAndMerge(leaves, bad).ok());

  SplitMergeOptions ok_options;
  std::vector<LeafNode> uneven;
  uneven.push_back(MakeLeaf({1, 2}, 0, 3));
  uneven.push_back(MakeLeaf({1}, 10, 3));
  EXPECT_FALSE(SplitAndMerge(uneven, ok_options).ok());

  std::vector<LeafNode> empty_path;
  empty_path.push_back(MakeLeaf({}, 0, 3));
  EXPECT_FALSE(SplitAndMerge(empty_path, ok_options).ok());
}

TEST(SplitMergeTest, EmptyInputYieldsEmptyResult) {
  const auto result = SplitAndMerge({}, SplitMergeOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups, 0u);
}

}  // namespace
}  // namespace kbt::granularity
