#include "granularity/assignments.h"

#include <set>

#include <gtest/gtest.h>

#include "exp/motivating_example.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"

namespace kbt::granularity {
namespace {

using exp::MotivatingExample;

TEST(AssignmentsTest, PageSourcePlainExtractorOnFixture) {
  const auto data = MotivatingExample::Dataset();
  const auto a = PageSourcePlainExtractor(data);
  EXPECT_EQ(a.num_source_groups, 8u);
  EXPECT_EQ(a.num_extractor_groups, 5u);
  ASSERT_EQ(a.observation_source.size(), data.size());
  // Scopes are unrestricted and unweighted.
  for (const auto& scope : a.extractor_scopes) {
    EXPECT_EQ(scope.predicate, extract::kAnyScope);
    EXPECT_EQ(scope.website, extract::kAnyScope);
    EXPECT_DOUBLE_EQ(scope.absence_weight, 1.0);
  }
  // Source infos carry the website (site == page in the fixture).
  for (size_t i = 0; i < data.size(); ++i) {
    const uint32_t src = a.observation_source[i];
    EXPECT_EQ(a.source_infos[src].website, data.observations[i].website);
  }
}

TEST(AssignmentsTest, FinestAssignmentScopes) {
  const auto data = MotivatingExample::Dataset();
  const auto a = FinestAssignment(data);
  // One data item & one predicate: finest sources are (site, pred, page) =
  // 8 groups; extractor groups are (e, pattern, pred, site) pairs: each
  // extractor on each page it extracted from.
  EXPECT_EQ(a.num_source_groups, 8u);
  EXPECT_EQ(a.num_extractor_groups, 26u);  // One per extraction here.
  for (const auto& scope : a.extractor_scopes) {
    EXPECT_EQ(scope.predicate, MotivatingExample::kNationality);
    EXPECT_NE(scope.website, extract::kAnyScope);
    EXPECT_DOUBLE_EQ(scope.absence_weight, 1.0);
  }
}

TEST(AssignmentsTest, ProvenanceAssignmentGroupsByTuple) {
  const auto data = MotivatingExample::Dataset();
  const auto a = ProvenanceAssignment(data);
  // (extractor, website, predicate, pattern): pattern == extractor here, so
  // one provenance per (extractor, page) pair with >= 1 extraction = 26.
  EXPECT_EQ(a.num_source_groups, 26u);
  EXPECT_EQ(a.num_extractor_groups, 1u);
  const auto matrix = extract::CompiledMatrix::Build(data, a);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->num_slots(), data.size());  // Claims are per provenance.
}

TEST(AssignmentsTest, WebsiteSourceGroupsBySite) {
  exp::SyntheticConfig sc;
  sc.num_sources = 6;
  const auto syn = exp::GenerateSynthetic(sc);
  const auto a = WebsiteSourceAssignment(syn.data);
  EXPECT_LE(a.num_source_groups, 6u);
  for (size_t i = 0; i < syn.data.size(); ++i) {
    const uint32_t src = a.observation_source[i];
    EXPECT_EQ(a.source_infos[src].website, syn.data.observations[i].website);
  }
}

TEST(AssignmentsTest, SplitMergeAssignmentCoversAllObservations) {
  exp::SyntheticConfig sc;
  sc.num_sources = 10;
  sc.num_extractors = 5;
  const auto syn = exp::GenerateSynthetic(sc);
  SplitMergeOptions source_options;
  source_options.min_size = 3;
  source_options.max_size = 50;
  SplitMergeOptions extractor_options;
  extractor_options.min_size = 3;
  extractor_options.max_size = 200;
  const auto a =
      SplitMergeAssignment(syn.data, source_options, extractor_options);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->observation_source.size(), syn.data.size());
  for (size_t i = 0; i < syn.data.size(); ++i) {
    EXPECT_LT(a->observation_source[i], a->num_source_groups);
    EXPECT_LT(a->observation_extractor[i], a->num_extractor_groups);
  }
  // Compiles cleanly.
  const auto matrix = extract::CompiledMatrix::Build(syn.data, *a);
  EXPECT_TRUE(matrix.ok());
}

TEST(AssignmentsTest, SplitMergeRecordsPrepTimers) {
  exp::SyntheticConfig sc;
  const auto syn = exp::GenerateSynthetic(sc);
  dataflow::StageTimers timers;
  const auto a = SplitMergeAssignment(syn.data, SplitMergeOptions{},
                                      SplitMergeOptions{}, &timers);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(timers.Count("Prep.Source"), 1);
  EXPECT_EQ(timers.Count("Prep.Extractor"), 1);
}

TEST(AssignmentsTest, SplitMergeAbsenceWeightReflectsBuckets) {
  // Force splitting on the extractor side with a tiny max size.
  exp::SyntheticConfig sc;
  sc.num_sources = 10;
  sc.num_extractors = 3;
  sc.recall = 0.9;
  sc.page_coverage = 1.0;
  const auto syn = exp::GenerateSynthetic(sc);
  SplitMergeOptions source_options;  // Defaults: no-op-ish.
  SplitMergeOptions extractor_options;
  extractor_options.min_size = 1;
  extractor_options.max_size = 10;  // Heavy splitting.
  const auto a =
      SplitMergeAssignment(syn.data, source_options, extractor_options);
  ASSERT_TRUE(a.ok());
  bool saw_split = false;
  for (const auto& scope : a->extractor_scopes) {
    EXPECT_GT(scope.absence_weight, 0.0);
    EXPECT_LE(scope.absence_weight, 1.0);
    if (scope.absence_weight < 1.0) saw_split = true;
  }
  EXPECT_TRUE(saw_split);
}

// ---------------------------------------------------------------------------
// AssignmentExtender: incremental extension must equal the batch builders,
// with existing observation entries, group ids and metadata untouched.
// ---------------------------------------------------------------------------

void ExpectAssignmentsEqual(const extract::GroupAssignment& a,
                            const extract::GroupAssignment& b) {
  ASSERT_EQ(a.num_source_groups, b.num_source_groups);
  ASSERT_EQ(a.num_extractor_groups, b.num_extractor_groups);
  ASSERT_EQ(a.observation_source, b.observation_source);
  ASSERT_EQ(a.observation_extractor, b.observation_extractor);
  ASSERT_EQ(a.source_infos.size(), b.source_infos.size());
  for (size_t i = 0; i < a.source_infos.size(); ++i) {
    ASSERT_EQ(a.source_infos[i], b.source_infos[i]) << i;
  }
  ASSERT_EQ(a.extractor_scopes.size(), b.extractor_scopes.size());
  for (size_t i = 0; i < a.extractor_scopes.size(); ++i) {
    ASSERT_EQ(a.extractor_scopes[i], b.extractor_scopes[i]) << i;
  }
}

extract::GroupAssignment BatchAssignment(StatelessGranularity kind,
                                         const extract::RawDataset& data) {
  switch (kind) {
    case StatelessGranularity::kFinest:
      return FinestAssignment(data);
    case StatelessGranularity::kPageSource:
      return PageSourcePlainExtractor(data);
    case StatelessGranularity::kWebsiteSource:
      return WebsiteSourceAssignment(data);
    case StatelessGranularity::kProvenance:
      return ProvenanceAssignment(data);
  }
  return {};
}

TEST(AssignmentExtenderTest, IncrementalExtensionEqualsBatchBuild) {
  exp::SyntheticConfig sc;
  sc.num_sources = 10;
  sc.num_extractors = 4;
  sc.seed = 11;
  const auto syn = exp::GenerateSynthetic(sc);
  const extract::RawDataset& data = syn.data;
  ASSERT_GT(data.size(), 50u);

  for (const StatelessGranularity kind :
       {StatelessGranularity::kFinest, StatelessGranularity::kPageSource,
        StatelessGranularity::kWebsiteSource,
        StatelessGranularity::kProvenance}) {
    SCOPED_TRACE(static_cast<int>(kind));
    AssignmentExtender extender(kind);
    extract::GroupAssignment incremental;
    extract::RawDataset prefix = data;
    // Three uneven chunks, including an empty one.
    for (const size_t upto :
         {data.size() / 4, data.size() / 4, data.size() / 2, data.size()}) {
      prefix.observations.assign(data.observations.begin(),
                                 data.observations.begin() + upto);
      ASSERT_TRUE(extender.Extend(prefix, &incremental).ok());
      EXPECT_EQ(extender.consumed(), upto);
      // Every prefix state matches the batch builder over that prefix.
      ExpectAssignmentsEqual(incremental, BatchAssignment(kind, prefix));
    }
  }
}

TEST(AssignmentExtenderTest, ExistingGroupIdsAreStableAcrossExtension) {
  const auto data = MotivatingExample::Dataset();
  AssignmentExtender extender(StatelessGranularity::kFinest);
  extract::GroupAssignment assignment;
  extract::RawDataset prefix = data;
  prefix.observations.resize(data.size() / 2);
  ASSERT_TRUE(extender.Extend(prefix, &assignment).ok());
  const extract::GroupAssignment before = assignment;

  ASSERT_TRUE(extender.Extend(data, &assignment).ok());
  // The prefix entries and the metadata of already-known groups are
  // byte-identical; growth is append-only.
  for (size_t i = 0; i < before.observation_source.size(); ++i) {
    EXPECT_EQ(assignment.observation_source[i],
              before.observation_source[i]);
    EXPECT_EQ(assignment.observation_extractor[i],
              before.observation_extractor[i]);
  }
  for (size_t g = 0; g < before.source_infos.size(); ++g) {
    EXPECT_EQ(assignment.source_infos[g], before.source_infos[g]);
  }
  for (size_t g = 0; g < before.extractor_scopes.size(); ++g) {
    EXPECT_EQ(assignment.extractor_scopes[g], before.extractor_scopes[g]);
  }
  EXPECT_GE(assignment.num_source_groups, before.num_source_groups);
  EXPECT_GE(assignment.num_extractor_groups, before.num_extractor_groups);
}

TEST(AssignmentExtenderTest, RejectsMismatchedProgress) {
  const auto data = MotivatingExample::Dataset();
  AssignmentExtender extender(StatelessGranularity::kPageSource);
  extract::GroupAssignment assignment;
  ASSERT_TRUE(extender.Extend(data, &assignment).ok());

  // A fresh assignment does not match the extender's progress.
  extract::GroupAssignment fresh;
  EXPECT_FALSE(extender.Extend(data, &fresh).ok());

  // A shrunk dataset cannot be extended over.
  extract::RawDataset shrunk = data;
  shrunk.observations.pop_back();
  EXPECT_FALSE(extender.Extend(shrunk, &assignment).ok());
  EXPECT_FALSE(extender.Extend(data, nullptr).ok());
}

}  // namespace
}  // namespace kbt::granularity
