#include "granularity/assignments.h"

#include <set>

#include <gtest/gtest.h>

#include "exp/motivating_example.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"

namespace kbt::granularity {
namespace {

using exp::MotivatingExample;

TEST(AssignmentsTest, PageSourcePlainExtractorOnFixture) {
  const auto data = MotivatingExample::Dataset();
  const auto a = PageSourcePlainExtractor(data);
  EXPECT_EQ(a.num_source_groups, 8u);
  EXPECT_EQ(a.num_extractor_groups, 5u);
  ASSERT_EQ(a.observation_source.size(), data.size());
  // Scopes are unrestricted and unweighted.
  for (const auto& scope : a.extractor_scopes) {
    EXPECT_EQ(scope.predicate, extract::kAnyScope);
    EXPECT_EQ(scope.website, extract::kAnyScope);
    EXPECT_DOUBLE_EQ(scope.absence_weight, 1.0);
  }
  // Source infos carry the website (site == page in the fixture).
  for (size_t i = 0; i < data.size(); ++i) {
    const uint32_t src = a.observation_source[i];
    EXPECT_EQ(a.source_infos[src].website, data.observations[i].website);
  }
}

TEST(AssignmentsTest, FinestAssignmentScopes) {
  const auto data = MotivatingExample::Dataset();
  const auto a = FinestAssignment(data);
  // One data item & one predicate: finest sources are (site, pred, page) =
  // 8 groups; extractor groups are (e, pattern, pred, site) pairs: each
  // extractor on each page it extracted from.
  EXPECT_EQ(a.num_source_groups, 8u);
  EXPECT_EQ(a.num_extractor_groups, 26u);  // One per extraction here.
  for (const auto& scope : a.extractor_scopes) {
    EXPECT_EQ(scope.predicate, MotivatingExample::kNationality);
    EXPECT_NE(scope.website, extract::kAnyScope);
    EXPECT_DOUBLE_EQ(scope.absence_weight, 1.0);
  }
}

TEST(AssignmentsTest, ProvenanceAssignmentGroupsByTuple) {
  const auto data = MotivatingExample::Dataset();
  const auto a = ProvenanceAssignment(data);
  // (extractor, website, predicate, pattern): pattern == extractor here, so
  // one provenance per (extractor, page) pair with >= 1 extraction = 26.
  EXPECT_EQ(a.num_source_groups, 26u);
  EXPECT_EQ(a.num_extractor_groups, 1u);
  const auto matrix = extract::CompiledMatrix::Build(data, a);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->num_slots(), data.size());  // Claims are per provenance.
}

TEST(AssignmentsTest, WebsiteSourceGroupsBySite) {
  exp::SyntheticConfig sc;
  sc.num_sources = 6;
  const auto syn = exp::GenerateSynthetic(sc);
  const auto a = WebsiteSourceAssignment(syn.data);
  EXPECT_LE(a.num_source_groups, 6u);
  for (size_t i = 0; i < syn.data.size(); ++i) {
    const uint32_t src = a.observation_source[i];
    EXPECT_EQ(a.source_infos[src].website, syn.data.observations[i].website);
  }
}

TEST(AssignmentsTest, SplitMergeAssignmentCoversAllObservations) {
  exp::SyntheticConfig sc;
  sc.num_sources = 10;
  sc.num_extractors = 5;
  const auto syn = exp::GenerateSynthetic(sc);
  SplitMergeOptions source_options;
  source_options.min_size = 3;
  source_options.max_size = 50;
  SplitMergeOptions extractor_options;
  extractor_options.min_size = 3;
  extractor_options.max_size = 200;
  const auto a =
      SplitMergeAssignment(syn.data, source_options, extractor_options);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->observation_source.size(), syn.data.size());
  for (size_t i = 0; i < syn.data.size(); ++i) {
    EXPECT_LT(a->observation_source[i], a->num_source_groups);
    EXPECT_LT(a->observation_extractor[i], a->num_extractor_groups);
  }
  // Compiles cleanly.
  const auto matrix = extract::CompiledMatrix::Build(syn.data, *a);
  EXPECT_TRUE(matrix.ok());
}

TEST(AssignmentsTest, SplitMergeRecordsPrepTimers) {
  exp::SyntheticConfig sc;
  const auto syn = exp::GenerateSynthetic(sc);
  dataflow::StageTimers timers;
  const auto a = SplitMergeAssignment(syn.data, SplitMergeOptions{},
                                      SplitMergeOptions{}, &timers);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(timers.Count("Prep.Source"), 1);
  EXPECT_EQ(timers.Count("Prep.Extractor"), 1);
}

TEST(AssignmentsTest, SplitMergeAbsenceWeightReflectsBuckets) {
  // Force splitting on the extractor side with a tiny max size.
  exp::SyntheticConfig sc;
  sc.num_sources = 10;
  sc.num_extractors = 3;
  sc.recall = 0.9;
  sc.page_coverage = 1.0;
  const auto syn = exp::GenerateSynthetic(sc);
  SplitMergeOptions source_options;  // Defaults: no-op-ish.
  SplitMergeOptions extractor_options;
  extractor_options.min_size = 1;
  extractor_options.max_size = 10;  // Heavy splitting.
  const auto a =
      SplitMergeAssignment(syn.data, source_options, extractor_options);
  ASSERT_TRUE(a.ok());
  bool saw_split = false;
  for (const auto& scope : a->extractor_scopes) {
    EXPECT_GT(scope.absence_weight, 0.0);
    EXPECT_LE(scope.absence_weight, 1.0);
    if (scope.absence_weight < 1.0) saw_split = true;
  }
  EXPECT_TRUE(saw_split);
}

}  // namespace
}  // namespace kbt::granularity
