// SnapshotRegistry / SnapshotReader tests: RCU publish semantics. Readers
// never lock; publishes atomically replace the served snapshot; in-flight
// readers keep superseded snapshots alive; sequences are monotonic. The
// concurrent suites run under ThreadSanitizer in CI, which is what backs
// the "zero reader-side locking without races" claim.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kbt/query.h"
#include "kbt/report.h"

namespace kbt::query {
namespace {

/// A minimal report whose single source carries `kbt` — enough to tell
/// snapshots apart through the query surface.
api::TrustReport TaggedReport(double kbt) {
  api::TrustReport report;
  report.source_kbt = {core::KbtScore{kbt, 10.0}};
  return report;
}

TEST(SnapshotRegistryTest, EmptyRegistryServesNothing) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  EXPECT_EQ(registry->Current(), nullptr);
  EXPECT_EQ(registry->version(), 0u);

  SnapshotReader reader(registry);
  EXPECT_TRUE(reader.attached());
  EXPECT_EQ(reader.view(), nullptr);
  EXPECT_EQ(reader.Acquire(), nullptr);
}

TEST(SnapshotRegistryTest, UnattachedReaderIsInert) {
  SnapshotReader reader;
  EXPECT_FALSE(reader.attached());
  EXPECT_EQ(reader.view(), nullptr);
  EXPECT_EQ(reader.Acquire(), nullptr);
}

TEST(SnapshotRegistryTest, PublishStampsIncreasingSequences) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  const auto first = registry->Publish(Snapshot::Build(TaggedReport(0.1)));
  const auto second = registry->Publish(Snapshot::Build(TaggedReport(0.2)));

  EXPECT_EQ(first->info().sequence, 1u);
  EXPECT_EQ(second->info().sequence, 2u);
  EXPECT_EQ(registry->version(), 2u);
  EXPECT_EQ(registry->Current(), second);
}

TEST(SnapshotRegistryTest, ReaderRefreshesOnlyOnPublish) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  SnapshotReader reader(registry);

  registry->Publish(Snapshot::Build(TaggedReport(0.1)));
  const Snapshot* first_view = reader.view();
  ASSERT_NE(first_view, nullptr);
  EXPECT_EQ(first_view->SourceTrust(0)->kbt, 0.1);
  // No publish between calls: the identical object is returned (the
  // version gate short-circuits, no refresh).
  EXPECT_EQ(reader.view(), first_view);

  registry->Publish(Snapshot::Build(TaggedReport(0.2)));
  const Snapshot* second_view = reader.view();
  ASSERT_NE(second_view, nullptr);
  EXPECT_NE(second_view, first_view);
  EXPECT_EQ(second_view->SourceTrust(0)->kbt, 0.2);
}

TEST(SnapshotRegistryTest, InFlightReadersKeepSupersededSnapshotsAlive) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  SnapshotReader reader(registry);

  std::weak_ptr<const Snapshot> old_snapshot;
  {
    old_snapshot = registry->Publish(Snapshot::Build(TaggedReport(0.1)));
  }
  ASSERT_NE(reader.view(), nullptr);  // Reader now pins the old snapshot.

  registry->Publish(Snapshot::Build(TaggedReport(0.2)));
  // Superseded but pinned: the reader has not refreshed yet.
  EXPECT_FALSE(old_snapshot.expired());
  // The refresh drops the last reference.
  EXPECT_EQ(reader.view()->SourceTrust(0)->kbt, 0.2);
  EXPECT_TRUE(old_snapshot.expired());
}

TEST(SnapshotRegistryTest, AcquirePinsAViewAcrossPublishes) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  SnapshotReader reader(registry);
  registry->Publish(Snapshot::Build(TaggedReport(0.1)));

  const std::shared_ptr<const Snapshot> pinned = reader.Acquire();
  registry->Publish(Snapshot::Build(TaggedReport(0.2)));
  // The pinned shared_ptr still serves the old values even though the
  // reader itself has moved on.
  EXPECT_EQ(reader.view()->SourceTrust(0)->kbt, 0.2);
  EXPECT_EQ(pinned->SourceTrust(0)->kbt, 0.1);
}

TEST(SnapshotRegistryTest, ReadersOutliveTheRegistryOwner) {
  // The pipeline (registry owner) may be destroyed while readers hold the
  // registry; shared ownership keeps both registry and snapshot alive.
  SnapshotReader reader;
  {
    auto registry = std::make_shared<SnapshotRegistry>();
    registry->Publish(Snapshot::Build(TaggedReport(0.3)));
    reader = SnapshotReader(registry);
  }
  ASSERT_NE(reader.view(), nullptr);
  EXPECT_EQ(reader.view()->SourceTrust(0)->kbt, 0.3);
}

// ---------------------------------------------------------------------------
// Retention / history ring / AsOf.
// ---------------------------------------------------------------------------

TEST(SnapshotRegistryTest, DefaultRetentionKeepsOnlyTheCurrentGeneration) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  EXPECT_TRUE(registry->History().empty());  // Nothing published yet.
  registry->Publish(Snapshot::Build(TaggedReport(0.1)), 10.0);
  registry->Publish(Snapshot::Build(TaggedReport(0.2)), 20.0);
  const auto history = registry->History();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].sequence, 2u);
  EXPECT_EQ(history[0].publish_time, 20.0);
  // With retention 0 there is no window to travel back through.
  EXPECT_EQ(registry->AsOf(10.0), nullptr);
  EXPECT_NE(registry->AsOf(20.0), nullptr);
}

TEST(SnapshotRegistryTest, HistoryRingRetainsTheLastCapacityGenerations) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  registry->SetRetention(3);
  for (int g = 1; g <= 5; ++g) {
    registry->Publish(Snapshot::Build(TaggedReport(0.1 * g)), 10.0 * g);
  }
  const auto history = registry->History();
  ASSERT_EQ(history.size(), 3u);  // Generations 3, 4, 5, oldest first.
  EXPECT_EQ(history[0].sequence, 3u);
  EXPECT_EQ(history[1].sequence, 4u);
  EXPECT_EQ(history[2].sequence, 5u);
  EXPECT_EQ(history[0].publish_time, 30.0);
  EXPECT_EQ(history[2].publish_time, 50.0);
}

TEST(SnapshotRegistryTest, AsOfServesTheLatestGenerationAtOrBeforeT) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  registry->SetRetention(4);
  registry->Publish(Snapshot::Build(TaggedReport(0.1)), 100.0);
  registry->Publish(Snapshot::Build(TaggedReport(0.2)), 200.0);
  registry->Publish(Snapshot::Build(TaggedReport(0.3)), 300.0);

  EXPECT_EQ(registry->AsOf(99.0), nullptr);  // Before the first generation.
  const auto at100 = registry->AsOf(100.0);  // Inclusive boundary.
  ASSERT_NE(at100, nullptr);
  EXPECT_EQ(at100->SourceTrust(0)->kbt, 0.1);
  const auto mid = registry->AsOf(250.0);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->SourceTrust(0)->kbt, 0.2);
  const auto beyond = registry->AsOf(1e12);
  ASSERT_NE(beyond, nullptr);
  EXPECT_EQ(beyond->SourceTrust(0)->kbt, 0.3);
}

TEST(SnapshotRegistryTest, EvictedGenerationsAreFreedOnceReadersRefresh) {
  // The retention cap is a liveness guarantee, not just a History()
  // truncation: once a generation falls off the ring and the last reader
  // moves on, it must actually be destroyed.
  const auto registry = std::make_shared<SnapshotRegistry>();
  registry->SetRetention(2);
  SnapshotReader reader(registry);

  std::weak_ptr<const Snapshot> first =
      registry->Publish(Snapshot::Build(TaggedReport(0.1)), 1.0);
  ASSERT_NE(reader.view(), nullptr);  // Reader pins generation 1.

  registry->Publish(Snapshot::Build(TaggedReport(0.2)), 2.0);
  // Generation 1 is still on the ring (capacity 2) AND pinned by the
  // reader.
  EXPECT_FALSE(first.expired());

  registry->Publish(Snapshot::Build(TaggedReport(0.3)), 3.0);
  // Off the ring now, but the stale reader still pins it.
  EXPECT_FALSE(first.expired());

  reader.view();  // Refresh: the last reference to generation 1 drops.
  EXPECT_TRUE(first.expired());
  EXPECT_EQ(registry->AsOf(1.0), nullptr);  // And AsOf cannot resurrect it.
}

TEST(SnapshotRegistryTest, ShrinkingRetentionEvictsOldestImmediately) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  registry->SetRetention(4);
  std::weak_ptr<const Snapshot> first =
      registry->Publish(Snapshot::Build(TaggedReport(0.1)), 1.0);
  registry->Publish(Snapshot::Build(TaggedReport(0.2)), 2.0);
  registry->Publish(Snapshot::Build(TaggedReport(0.3)), 3.0);
  ASSERT_EQ(registry->History().size(), 3u);
  EXPECT_FALSE(first.expired());

  registry->SetRetention(2);
  EXPECT_TRUE(first.expired());
  const auto history = registry->History();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].sequence, 2u);
  EXPECT_EQ(history[1].sequence, 3u);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan targets).
// ---------------------------------------------------------------------------

TEST(SnapshotRegistryStressTest, ConcurrentReadersNeverSeeTornOrStaleViews) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  constexpr int kReaders = 4;
  constexpr uint64_t kPublishes = 200;
  std::atomic<uint64_t> total_views{0};

  // Readers race the publisher and exit once they observe the final
  // sequence (the last snapshot stays current forever, so this always
  // terminates — and guarantees every reader validates at least one view).
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&registry, &total_views] {
      SnapshotReader reader(registry);
      uint64_t last_sequence = 0;
      uint64_t views = 0;
      while (last_sequence < kPublishes) {
        const Snapshot* snapshot = reader.view();
        if (snapshot == nullptr) continue;
        const uint64_t sequence = snapshot->info().sequence;
        // Monotonic: a reader never goes back in time.
        ASSERT_GE(sequence, last_sequence);
        last_sequence = sequence;
        // The snapshot a view returns is sealed: its tag equals its
        // sequence's tag (a torn snapshot would mismatch).
        const auto trust = snapshot->SourceTrust(0);
        ASSERT_TRUE(trust.has_value());
        ASSERT_EQ(trust->kbt, static_cast<double>(sequence));
        ASSERT_EQ(snapshot->TopKSources(1).size(), 1u);
        ++views;
      }
      total_views.fetch_add(views, std::memory_order_relaxed);
    });
  }

  for (uint64_t p = 1; p <= kPublishes; ++p) {
    // Tag each snapshot with its own (about-to-be-assigned) sequence so
    // readers can cross-check view consistency.
    const auto published =
        registry->Publish(Snapshot::Build(TaggedReport(
            static_cast<double>(p))));
    ASSERT_EQ(published->info().sequence, p);
  }
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(registry->version(), kPublishes);
  EXPECT_GE(total_views.load(), static_cast<uint64_t>(kReaders));
}

TEST(SnapshotRegistryStressTest, ConcurrentPublishersSerializeCleanly) {
  const auto registry = std::make_shared<SnapshotRegistry>();
  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 50;

  std::vector<std::thread> publishers;
  publishers.reserve(kPublishers);
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&registry] {
      for (int i = 0; i < kPerPublisher; ++i) {
        registry->Publish(Snapshot::Build(TaggedReport(0.5)));
      }
    });
  }
  for (std::thread& publisher : publishers) publisher.join();

  EXPECT_EQ(registry->version(),
            static_cast<uint64_t>(kPublishers * kPerPublisher));
  const auto current = registry->Current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->info().sequence, registry->version());
}

}  // namespace
}  // namespace kbt::query
