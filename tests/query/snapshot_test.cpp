// Snapshot tests: index-backed read views over TrustReports. The
// load-bearing contract is bit-for-bit parity — every score a Snapshot
// serves equals (==, not near) the report it was built from, including
// after appends — plus correct indexing (point/batch/item lookups), rank
// order, filters, and cross-snapshot diff.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exp/synthetic.h"
#include "kbt/pipeline.h"
#include "kbt/query.h"
#include "kbt/report.h"

namespace kbt::query {
namespace {

/// A small hand-built report: 3 source groups, 2 websites, 4 predictions
/// over 2 items. Values chosen so every rank order is unambiguous.
api::TrustReport HandReport() {
  api::TrustReport report;
  report.source_kbt = {
      core::KbtScore{0.9, 10.0},  // group 0: high trust, scored
      core::KbtScore{0.4, 7.0},   // group 1: low trust, scored
      core::KbtScore{0.99, 2.0},  // group 2: high trust, too little evidence
  };
  report.website_kbt = {
      core::KbtScore{0.6, 20.0},
      core::KbtScore{0.8, 6.0},
  };
  const kb::DataItemId item_a = kb::MakeDataItem(7, 1);
  const kb::DataItemId item_b = kb::MakeDataItem(8, 1);
  report.predictions = {
      eval::TriplePrediction{item_a, 100, 0.95, true},
      eval::TriplePrediction{item_a, 101, 0.05, true},
      eval::TriplePrediction{item_b, 100, 0.70, true},
      eval::TriplePrediction{item_b, 102, 0.30, false},
  };
  report.counts.num_sources = 3;
  report.counts.num_websites = 2;
  return report;
}

TEST(SnapshotTest, BuildIndexesTheReportShape) {
  SnapshotInfo stamp;
  stamp.dataset_fingerprint = 0xFEED;
  const Snapshot snapshot = Snapshot::Build(HandReport(), stamp);

  EXPECT_EQ(snapshot.info().sequence, 0u);  // Unpublished.
  EXPECT_EQ(snapshot.info().dataset_fingerprint, 0xFEEDu);
  EXPECT_EQ(snapshot.num_sources(), 3u);
  EXPECT_EQ(snapshot.num_websites(), 2u);
  EXPECT_EQ(snapshot.num_triples(), 4u);
  EXPECT_EQ(snapshot.num_items(), 2u);
}

TEST(SnapshotTest, PointLookupsServeTheReportsValues) {
  const api::TrustReport report = HandReport();
  const Snapshot snapshot = Snapshot::Build(report);

  for (uint32_t g = 0; g < report.source_kbt.size(); ++g) {
    const auto trust = snapshot.SourceTrust(g);
    ASSERT_TRUE(trust.has_value());
    EXPECT_EQ(trust->id, g);
    EXPECT_EQ(trust->kbt, report.source_kbt[g].kbt);
    EXPECT_EQ(trust->evidence, report.source_kbt[g].evidence);
    EXPECT_EQ(trust->scored, report.source_kbt[g].HasScore());
  }
  for (uint32_t w = 0; w < report.website_kbt.size(); ++w) {
    const auto trust = snapshot.WebsiteTrust(w);
    ASSERT_TRUE(trust.has_value());
    EXPECT_EQ(trust->kbt, report.website_kbt[w].kbt);
  }
  for (const eval::TriplePrediction& prediction : report.predictions) {
    const auto truth = snapshot.TripleTruth(prediction.item,
                                            prediction.value);
    ASSERT_TRUE(truth.has_value());
    EXPECT_EQ(truth->probability, prediction.probability);
    EXPECT_EQ(truth->covered, prediction.covered);
  }
}

TEST(SnapshotTest, LookupMissesAreNullopt) {
  const Snapshot snapshot = Snapshot::Build(HandReport());

  EXPECT_FALSE(snapshot.SourceTrust(3).has_value());
  EXPECT_FALSE(snapshot.SourceTrust(kb::kInvalidId).has_value());
  EXPECT_FALSE(snapshot.WebsiteTrust(2).has_value());
  // Known item, never-extracted value; and a never-seen item.
  EXPECT_FALSE(
      snapshot.TripleTruth(kb::MakeDataItem(7, 1), 999).has_value());
  EXPECT_FALSE(
      snapshot.TripleTruth(kb::MakeDataItem(99, 1), 100).has_value());
}

TEST(SnapshotTest, EmptyReportServesOnlyMisses) {
  const Snapshot snapshot = Snapshot::Build(api::TrustReport());

  EXPECT_EQ(snapshot.num_sources(), 0u);
  EXPECT_EQ(snapshot.num_triples(), 0u);
  EXPECT_FALSE(snapshot.SourceTrust(0).has_value());
  EXPECT_FALSE(snapshot.TripleTruth(0, 0).has_value());
  EXPECT_TRUE(snapshot.TopKSources(5).empty());
  EXPECT_TRUE(snapshot.TopKTriples(5).empty());
  EXPECT_TRUE(snapshot.ItemValues(0).empty());
}

TEST(SnapshotTest, ItemValuesListsCandidatesInReportOrder) {
  const Snapshot snapshot = Snapshot::Build(HandReport());

  const auto values = snapshot.ItemValues(kb::MakeDataItem(7, 1));
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].value, 100u);
  EXPECT_EQ(values[0].probability, 0.95);
  EXPECT_EQ(values[1].value, 101u);
  EXPECT_EQ(values[1].probability, 0.05);
  EXPECT_TRUE(snapshot.ItemValues(kb::MakeDataItem(6, 1)).empty());
}

TEST(SnapshotTest, BatchLookupsAnswerPositionally) {
  const Snapshot snapshot = Snapshot::Build(HandReport());

  const auto sources = snapshot.BatchSourceTrust({2, 7, 0});
  ASSERT_EQ(sources.size(), 3u);
  ASSERT_TRUE(sources[0].has_value());
  EXPECT_EQ(sources[0]->id, 2u);
  EXPECT_FALSE(sources[1].has_value());
  ASSERT_TRUE(sources[2].has_value());
  EXPECT_EQ(sources[2]->kbt, 0.9);

  const auto triples = snapshot.BatchTripleTruth(
      {TripleKey{kb::MakeDataItem(8, 1), 102},
       TripleKey{kb::MakeDataItem(8, 1), 555}});
  ASSERT_EQ(triples.size(), 2u);
  ASSERT_TRUE(triples[0].has_value());
  EXPECT_EQ(triples[0]->probability, 0.30);
  EXPECT_FALSE(triples[1].has_value());
}

TEST(SnapshotTest, TopKSourcesRanksByKbtAndAppliesFilters) {
  const Snapshot snapshot = Snapshot::Build(HandReport());

  // Default filter: the paper's evidence floor (5) drops group 2 despite
  // its top KBT.
  const auto top = snapshot.TopKSources(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_EQ(top[1].id, 1u);

  // Zero floor ranks everyone, KBT descending.
  SourceFilter all;
  all.min_evidence = 0.0;
  const auto unfiltered = snapshot.TopKSources(10, all);
  ASSERT_EQ(unfiltered.size(), 3u);
  EXPECT_EQ(unfiltered[0].id, 2u);
  EXPECT_EQ(unfiltered[1].id, 0u);
  EXPECT_EQ(unfiltered[2].id, 1u);

  // k truncates; a predicate composes with the evidence floor.
  EXPECT_EQ(snapshot.TopKSources(1, all).size(), 1u);
  EXPECT_EQ(snapshot.TopKSources(0, all).size(), 0u);
  SourceFilter low_trust = all;
  low_trust.predicate = [](const SourceTrust& s) { return s.kbt < 0.5; };
  const auto low = snapshot.TopKSources(10, low_trust);
  ASSERT_EQ(low.size(), 1u);
  EXPECT_EQ(low[0].id, 1u);

  const auto websites = snapshot.TopKWebsites(10);
  ASSERT_EQ(websites.size(), 2u);
  EXPECT_EQ(websites[0].id, 1u);  // 0.8 over 0.6.
}

TEST(SnapshotTest, TopKTriplesRanksByProbability) {
  const Snapshot snapshot = Snapshot::Build(HandReport());

  const auto top = snapshot.TopKTriples(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].probability, 0.95);
  EXPECT_EQ(top[1].probability, 0.70);
  EXPECT_EQ(top[2].probability, 0.30);

  TripleFilter covered;
  covered.covered_only = true;
  const auto covered_top = snapshot.TopKTriples(10, covered);
  ASSERT_EQ(covered_top.size(), 3u);  // The 0.30 triple is uncovered.
  EXPECT_EQ(covered_top[2].probability, 0.05);

  TripleFilter confident;
  confident.predicate = [](const TripleTruth& t) {
    return t.probability >= 0.5;
  };
  EXPECT_EQ(snapshot.TopKTriples(10, confident).size(), 2u);
}

TEST(SnapshotTest, NonContiguousPredictionsAreReindexed) {
  // Hand-assembled reports may interleave items; the snapshot restores
  // per-item contiguity without disturbing within-item order.
  api::TrustReport report;
  const kb::DataItemId item_a = kb::MakeDataItem(1, 1);
  const kb::DataItemId item_b = kb::MakeDataItem(2, 1);
  report.predictions = {
      eval::TriplePrediction{item_a, 10, 0.9, true},
      eval::TriplePrediction{item_b, 11, 0.8, true},
      eval::TriplePrediction{item_a, 12, 0.1, true},
  };
  const Snapshot snapshot = Snapshot::Build(report);

  EXPECT_EQ(snapshot.num_items(), 2u);
  const auto values = snapshot.ItemValues(item_a);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].value, 10u);
  EXPECT_EQ(values[1].value, 12u);
  ASSERT_TRUE(snapshot.TripleTruth(item_b, 11).has_value());
  EXPECT_EQ(snapshot.TripleTruth(item_b, 11)->probability, 0.8);
}

TEST(SnapshotTest, DuplicatePredictionsAreDedupedFirstWins) {
  // Pipeline reports carry distinct (item, value) pairs; hand-assembled
  // ones may not. The first occurrence wins everywhere (count, item
  // listing, lookups), and diffs against a deduped snapshot cannot count
  // more common keys than distinct triples (no churn underflow).
  api::TrustReport report;
  const kb::DataItemId item = kb::MakeDataItem(3, 1);
  report.predictions = {
      eval::TriplePrediction{item, 10, 0.9, true},
      eval::TriplePrediction{item, 10, 0.4, false},  // Duplicate key.
      eval::TriplePrediction{item, 11, 0.2, true},
  };
  const Snapshot snapshot = Snapshot::Build(report);

  EXPECT_EQ(snapshot.num_triples(), 2u);
  EXPECT_EQ(snapshot.ItemValues(item).size(), 2u);
  EXPECT_EQ(snapshot.TripleTruth(item, 10)->probability, 0.9);
  EXPECT_EQ(snapshot.TopKTriples(10).size(), 2u);

  api::TrustReport smaller;
  smaller.predictions = {eval::TriplePrediction{item, 10, 0.5, true}};
  const SnapshotDiff diff =
      DiffSnapshots(Snapshot::Build(smaller), snapshot, 5);
  EXPECT_EQ(diff.triples_added, 1u);    // (item, 11).
  EXPECT_EQ(diff.triples_removed, 0u);  // No underflow.
}

TEST(SnapshotTest, DiffRanksMoversAndCountsChurn) {
  api::TrustReport before_report = HandReport();
  api::TrustReport after_report = HandReport();
  // Group 0 drops hard, group 1 gains a little, group 2 is unchanged; a
  // fourth group appears. One triple is replaced by a new value.
  after_report.source_kbt[0].kbt = 0.5;   // delta -0.4
  after_report.source_kbt[1].kbt = 0.45;  // delta +0.05
  after_report.source_kbt.push_back(core::KbtScore{0.7, 9.0});
  after_report.predictions.pop_back();
  after_report.predictions.push_back(
      eval::TriplePrediction{kb::MakeDataItem(8, 1), 103, 0.25, true});

  Snapshot before = Snapshot::Build(before_report);
  Snapshot after = Snapshot::Build(after_report);
  const SnapshotDiff diff = DiffSnapshots(before, after, 2);

  EXPECT_EQ(diff.sources_added, 1u);
  EXPECT_EQ(diff.sources_removed, 0u);
  ASSERT_EQ(diff.top_source_moves.size(), 2u);
  EXPECT_EQ(diff.top_source_moves[0].id, 0u);
  EXPECT_EQ(diff.top_source_moves[0].delta, 0.5 - 0.9);
  EXPECT_EQ(diff.top_source_moves[1].id, 1u);
  EXPECT_EQ(diff.triples_added, 1u);    // (item_b, 103) is new.
  EXPECT_EQ(diff.triples_removed, 1u);  // (item_b, 102) is gone.
  EXPECT_EQ(diff.websites_added, 0u);
  EXPECT_EQ(diff.top_website_moves.size(), 2u);
  EXPECT_EQ(diff.top_website_moves[0].delta, 0.0);
}

TEST(SnapshotTest, DiffOfEmptySnapshotsIsAllZero) {
  const Snapshot empty_a = Snapshot::Build(api::TrustReport{});
  const Snapshot empty_b = Snapshot::Build(api::TrustReport{});
  const SnapshotDiff diff = DiffSnapshots(empty_a, empty_b, 5);
  EXPECT_EQ(diff.sources_added, 0u);
  EXPECT_EQ(diff.sources_removed, 0u);
  EXPECT_EQ(diff.websites_added, 0u);
  EXPECT_EQ(diff.websites_removed, 0u);
  EXPECT_EQ(diff.triples_added, 0u);
  EXPECT_EQ(diff.triples_removed, 0u);
  EXPECT_TRUE(diff.top_source_moves.empty());
  EXPECT_TRUE(diff.top_website_moves.empty());
}

TEST(SnapshotTest, DiffAgainstEmptyCountsEverythingOnce) {
  api::TrustReport report;
  report.source_kbt = {core::KbtScore{0.9, 5.0}, core::KbtScore{0.4, 3.0}};
  report.website_kbt = {core::KbtScore{0.8, 4.0}};
  report.predictions = {
      eval::TriplePrediction{kb::MakeDataItem(1, 0), 7, 0.6, true}};
  const Snapshot empty = Snapshot::Build(api::TrustReport{});
  const Snapshot full = Snapshot::Build(report);

  const SnapshotDiff grew = DiffSnapshots(empty, full, 5);
  EXPECT_EQ(grew.sources_added, 2u);
  EXPECT_EQ(grew.sources_removed, 0u);
  EXPECT_EQ(grew.websites_added, 1u);
  EXPECT_EQ(grew.triples_added, 1u);
  EXPECT_EQ(grew.triples_removed, 0u);
  // No common population: ids present on only one side never "move".
  EXPECT_TRUE(grew.top_source_moves.empty());

  const SnapshotDiff shrank = DiffSnapshots(full, empty, 5);
  EXPECT_EQ(shrank.sources_added, 0u);
  EXPECT_EQ(shrank.sources_removed, 2u);
  EXPECT_EQ(shrank.websites_removed, 1u);
  EXPECT_EQ(shrank.triples_removed, 1u);
  EXPECT_TRUE(shrank.top_source_moves.empty());
}

TEST(SnapshotTest, DiffOfDisjointTripleSetsCountsBothSidesFully) {
  api::TrustReport before_report;
  before_report.predictions = {
      eval::TriplePrediction{kb::MakeDataItem(1, 0), 7, 0.6, true},
      eval::TriplePrediction{kb::MakeDataItem(2, 0), 8, 0.7, true}};
  api::TrustReport after_report;
  after_report.predictions = {
      eval::TriplePrediction{kb::MakeDataItem(3, 0), 9, 0.8, true},
      eval::TriplePrediction{kb::MakeDataItem(1, 0), 5, 0.9, true},
      // Same ITEM as before's first triple but a different value: the
      // triple key is (item, value), so this is churn, not a move.
      eval::TriplePrediction{kb::MakeDataItem(2, 0), 99, 0.1, true}};
  const SnapshotDiff diff = DiffSnapshots(Snapshot::Build(before_report),
                                          Snapshot::Build(after_report), 5);
  EXPECT_EQ(diff.triples_added, 3u);
  EXPECT_EQ(diff.triples_removed, 2u);
}

TEST(SnapshotTest, DiffBreaksIdenticalDeltaTiesByLowestId) {
  // Every source moves by exactly |0.1| (alternating sign): the ranking
  // has nothing but the tie-break, which must be ascending id so a
  // truncated diff is deterministic.
  api::TrustReport before_report;
  api::TrustReport after_report;
  for (int i = 0; i < 6; ++i) {
    before_report.source_kbt.push_back(core::KbtScore{0.5, 1.0});
    const double delta = (i % 2 == 0) ? 0.1 : -0.1;
    after_report.source_kbt.push_back(core::KbtScore{0.5 + delta, 1.0});
  }
  const SnapshotDiff diff = DiffSnapshots(Snapshot::Build(before_report),
                                          Snapshot::Build(after_report), 4);
  ASSERT_EQ(diff.top_source_moves.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(diff.top_source_moves[i].id, i);
  }
}

TEST(SnapshotTest, DiffWithZeroTopKReportsChurnButNoMoves) {
  api::TrustReport before_report;
  before_report.source_kbt = {core::KbtScore{0.9, 5.0}};
  api::TrustReport after_report;
  after_report.source_kbt = {core::KbtScore{0.1, 5.0}};
  const SnapshotDiff diff = DiffSnapshots(Snapshot::Build(before_report),
                                          Snapshot::Build(after_report), 0);
  EXPECT_TRUE(diff.top_source_moves.empty());
  EXPECT_EQ(diff.sources_added, 0u);
  EXPECT_EQ(diff.sources_removed, 0u);
}

// ---------------------------------------------------------------------------
// Pipeline integration: published snapshots serve real reports bit-for-bit,
// including across appends, and superseded snapshots stay immutable.
// ---------------------------------------------------------------------------

class SnapshotPipelineTest : public ::testing::Test {
 protected:
  static extract::RawDataset MakeCube() {
    exp::SyntheticConfig config;
    config.num_sources = 20;
    config.num_extractors = 4;
    config.num_subjects = 12;
    config.num_predicates = 4;
    config.seed = 77;
    return exp::GenerateSynthetic(config).data;
  }

  static api::Options FastOptions() {
    api::Options options;
    options.multilayer.max_iterations = 8;
    options.multilayer.min_source_support = 1;
    options.multilayer.min_extractor_support = 1;
    return options;
  }

  /// Every score the snapshot serves must equal the report's exactly.
  static void ExpectParity(const Snapshot& snapshot,
                           const api::TrustReport& report) {
    ASSERT_EQ(snapshot.num_sources(), report.source_kbt.size());
    for (uint32_t g = 0; g < report.source_kbt.size(); ++g) {
      const auto trust = snapshot.SourceTrust(g);
      ASSERT_TRUE(trust.has_value());
      EXPECT_EQ(trust->kbt, report.source_kbt[g].kbt) << "group " << g;
      EXPECT_EQ(trust->evidence, report.source_kbt[g].evidence);
    }
    ASSERT_EQ(snapshot.num_websites(), report.website_kbt.size());
    for (uint32_t w = 0; w < report.website_kbt.size(); ++w) {
      const auto trust = snapshot.WebsiteTrust(w);
      ASSERT_TRUE(trust.has_value());
      EXPECT_EQ(trust->kbt, report.website_kbt[w].kbt) << "website " << w;
    }
    ASSERT_EQ(snapshot.num_triples(), report.predictions.size());
    for (const eval::TriplePrediction& prediction : report.predictions) {
      const auto truth =
          snapshot.TripleTruth(prediction.item, prediction.value);
      ASSERT_TRUE(truth.has_value());
      EXPECT_EQ(truth->probability, prediction.probability);
      EXPECT_EQ(truth->covered, prediction.covered);
    }
  }
};

TEST_F(SnapshotPipelineTest, PublishedSnapshotMatchesItsReportAcrossAppends) {
  extract::RawDataset cube = MakeCube();
  // Carve the tail off as an append delta.
  const size_t delta_size = cube.size() / 5;
  std::vector<extract::RawObservation> delta(
      cube.observations.end() - static_cast<long>(delta_size),
      cube.observations.end());
  cube.observations.resize(cube.size() - delta_size);

  auto pipeline = api::PipelineBuilder()
                      .FromDataset(std::move(cube))
                      .WithOptions(FastOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  const auto report1 = pipeline->Run();
  ASSERT_TRUE(report1.ok());
  const auto snapshot1 = pipeline->PublishSnapshot(*report1);
  ASSERT_NE(snapshot1, nullptr);
  EXPECT_EQ(snapshot1->info().sequence, 1u);
  EXPECT_EQ(snapshot1->info().dataset_fingerprint,
            pipeline->dataset_fingerprint());
  ExpectParity(*snapshot1, *report1);

  // Append, re-run, publish: the new snapshot serves the new report...
  ASSERT_TRUE(pipeline->AppendObservations(delta).ok());
  const auto report2 = pipeline->Run();
  ASSERT_TRUE(report2.ok());
  const auto snapshot2 = pipeline->PublishSnapshot(*report2);
  ASSERT_NE(snapshot2, nullptr);
  EXPECT_EQ(snapshot2->info().sequence, 2u);
  EXPECT_EQ(snapshot2->info().counts.num_observations,
            report2->counts.num_observations);
  ExpectParity(*snapshot2, *report2);

  // ...while the superseded snapshot still serves the old one, untouched.
  ExpectParity(*snapshot1, *report1);

  // The registry now hands out the new snapshot.
  SnapshotReader reader(pipeline->snapshot_registry());
  EXPECT_EQ(reader.view(), snapshot2.get());
}

TEST_F(SnapshotPipelineTest, DiffAcrossAppendRunsSeesGrowth) {
  extract::RawDataset cube = MakeCube();
  const size_t delta_size = cube.size() / 5;
  std::vector<extract::RawObservation> delta(
      cube.observations.end() - static_cast<long>(delta_size),
      cube.observations.end());
  cube.observations.resize(cube.size() - delta_size);

  auto pipeline = api::PipelineBuilder()
                      .FromDataset(std::move(cube))
                      .WithOptions(FastOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto report1 = pipeline->Run();
  ASSERT_TRUE(report1.ok());
  const auto snapshot1 = pipeline->PublishSnapshot(*report1);
  ASSERT_TRUE(pipeline->AppendObservations(delta).ok());
  const auto report2 = pipeline->Run();
  ASSERT_TRUE(report2.ok());
  const auto snapshot2 = pipeline->PublishSnapshot(*report2);

  const SnapshotDiff diff = DiffSnapshots(*snapshot1, *snapshot2, 5);
  EXPECT_EQ(diff.before_sequence, 1u);
  EXPECT_EQ(diff.after_sequence, 2u);
  // Appends only grow the cube: nothing disappears.
  EXPECT_EQ(diff.sources_removed, 0u);
  EXPECT_EQ(diff.triples_removed, 0u);
  EXPECT_GT(diff.triples_added + diff.sources_added +
                diff.top_source_moves.size(),
            0u);
  // Movers are ordered by |delta| descending.
  for (size_t i = 1; i < diff.top_source_moves.size(); ++i) {
    EXPECT_GE(std::abs(diff.top_source_moves[i - 1].delta),
              std::abs(diff.top_source_moves[i].delta));
  }
}

}  // namespace
}  // namespace kbt::query
