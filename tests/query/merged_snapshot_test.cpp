// Unit tests of query::MergedSnapshot / DiffMergedSnapshots — the merge
// half of the sharded read path, driven over hand-built per-shard
// snapshots. The contract under test:
//  * point lookups route (websites) or probe-and-merge (triples) under the
//    documented cross-shard rule, with deterministic tie-breaks;
//  * k-way top-k merges are exact, deduplicated, and stable for ties
//    across shards; k = 0, k > total, empty and null shards all behave;
//  * filters apply to per-shard candidates BEFORE the merge, so the served
//    record is the most confident PASSING claim;
//  * cross-shard diffs aggregate churn and dedup top moves by owner.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "kbt/report.h"
#include "kbt/shard.h"

namespace kbt::query {
namespace {

constexpr uint32_t kNumShards = 2;

/// The first website id >= `start` owned by `shard` under the real hash —
/// tests must place scores where the router will look for them.
uint32_t WebsiteOwnedBy(uint32_t shard, uint32_t start = 0,
                        uint64_t salt = 0) {
  for (uint32_t w = start;; ++w) {
    if (ShardOfWebsite(w, kNumShards, salt) == shard) return w;
  }
}

eval::TriplePrediction Prediction(uint64_t item, uint32_t value,
                                  double probability, bool covered = true) {
  eval::TriplePrediction prediction;
  prediction.item = item;
  prediction.value = value;
  prediction.probability = probability;
  prediction.covered = covered;
  return prediction;
}

/// Builds one shard snapshot from a dense website table and predictions.
std::shared_ptr<const Snapshot> MakeShard(
    std::vector<core::KbtScore> websites,
    std::vector<eval::TriplePrediction> predictions) {
  api::TrustReport report;
  report.website_kbt = std::move(websites);
  report.predictions = std::move(predictions);
  return std::make_shared<const Snapshot>(Snapshot::Build(report));
}

/// A website table sized `n`, zero everywhere (zero evidence = unscored
/// alignment row) except the explicitly scored ids.
std::vector<core::KbtScore> WebsiteTable(
    size_t n, std::vector<std::pair<uint32_t, double>> scored) {
  std::vector<core::KbtScore> table(n);
  for (const auto& [id, kbt] : scored) {
    table[id].kbt = kbt;
    table[id].evidence = 10.0;
  }
  return table;
}

TEST(MergedSnapshotTest, EmptyViewMissesEverything) {
  const MergedSnapshot merged;
  EXPECT_EQ(merged.num_shards(), 0u);
  EXPECT_EQ(merged.TotalTriples(), 0u);
  EXPECT_FALSE(merged.WebsiteTrust(0).has_value());
  EXPECT_FALSE(merged.TripleTruth(1, 2).has_value());
  EXPECT_TRUE(merged.ItemValues(1).empty());
  EXPECT_TRUE(merged.TopKWebsites(5).empty());
  EXPECT_TRUE(merged.TopKSources(5).empty());
  EXPECT_TRUE(merged.TopKTriples(5).empty());
}

TEST(MergedSnapshotTest, NullShardsActAsEmptyWorlds) {
  const uint32_t w1 = WebsiteOwnedBy(1);
  MergedSnapshot merged(
      {nullptr, MakeShard(WebsiteTable(w1 + 1, {{w1, 0.8}}),
                          {Prediction(1, 2, 0.9)})});
  // Shard 0 is absent: websites routed there miss, shard-1 data serves.
  EXPECT_FALSE(merged.WebsiteTrust(WebsiteOwnedBy(0)).has_value());
  ASSERT_TRUE(merged.WebsiteTrust(w1).has_value());
  EXPECT_EQ(merged.WebsiteTrust(w1)->kbt, 0.8);
  ASSERT_EQ(merged.TopKWebsites(10).size(), 1u);
  ASSERT_TRUE(merged.TripleTruth(1, 2).has_value());
  EXPECT_EQ(merged.shard(0), nullptr);
  EXPECT_NE(merged.shard(1), nullptr);
  EXPECT_EQ(merged.shard(7), nullptr);
}

TEST(MergedSnapshotTest, WebsiteLookupRoutesToOwnerOnly) {
  const uint32_t w0 = WebsiteOwnedBy(0);
  const size_t n = std::max(WebsiteOwnedBy(1), w0) + 1;
  // Shard 1 (NOT the owner) also carries a scored row for w0 — a corrupt
  // alignment row. Routing must serve the owner's value, never probe it.
  MergedSnapshot merged({MakeShard(WebsiteTable(n, {{w0, 0.6}}), {}),
                         MakeShard(WebsiteTable(n, {{w0, 0.9}}), {})});
  ASSERT_TRUE(merged.WebsiteTrust(w0).has_value());
  EXPECT_EQ(merged.WebsiteTrust(w0)->kbt, 0.6);
}

TEST(MergedSnapshotTest, TopKWebsitesIgnoresNonOwnerRows) {
  const uint32_t w0 = WebsiteOwnedBy(0);
  const uint32_t w1 = WebsiteOwnedBy(1);
  const size_t n = std::max(w0, w1) + 1;
  // Each shard scores BOTH websites (the foreign row with a huge score);
  // the merged ranking must contain each id once, with the owner's value.
  MergedSnapshot merged(
      {MakeShard(WebsiteTable(n, {{w0, 0.6}, {w1, 0.99}}), {}),
       MakeShard(WebsiteTable(n, {{w0, 0.99}, {w1, 0.4}}), {})});
  const auto top = merged.TopKWebsites(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, w0);
  EXPECT_EQ(top[0].kbt, 0.6);
  EXPECT_EQ(top[1].id, w1);
  EXPECT_EQ(top[1].kbt, 0.4);
}

TEST(MergedSnapshotTest, WebsiteTiesAcrossShardsBreakById) {
  const uint32_t w0 = WebsiteOwnedBy(0);
  const uint32_t w1 = WebsiteOwnedBy(1, w0 + 1);
  const size_t n = std::max(w0, w1) + 1;
  MergedSnapshot merged({MakeShard(WebsiteTable(n, {{w0, 0.5}}), {}),
                         MakeShard(WebsiteTable(n, {{w1, 0.5}}), {})});
  const auto top = merged.TopKWebsites(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, std::min(w0, w1));
  EXPECT_EQ(top[1].id, std::max(w0, w1));
}

TEST(MergedSnapshotTest, TripleTieBreaksCoveredThenShard) {
  // Same (item, value) in both shards at equal probability: covered wins.
  MergedSnapshot merged(
      {MakeShard({}, {Prediction(1, 2, 0.7, /*covered=*/false)}),
       MakeShard({}, {Prediction(1, 2, 0.7, /*covered=*/true)})});
  ASSERT_TRUE(merged.TripleTruth(1, 2).has_value());
  EXPECT_TRUE(merged.TripleTruth(1, 2)->covered);

  // Equal probability AND coverage: the lower shard's record serves.
  MergedSnapshot tied({MakeShard({}, {Prediction(1, 2, 0.7)}),
                       MakeShard({}, {Prediction(1, 2, 0.7)})});
  ASSERT_TRUE(tied.TripleTruth(1, 2).has_value());
  // Both records are identical here; the assertion that matters is the
  // deterministic dedup in the ranked view.
  EXPECT_EQ(tied.TopKTriples(10).size(), 1u);
  EXPECT_EQ(tied.TotalTriples(), 2u);
}

TEST(MergedSnapshotTest, TripleLookupTakesHighestProbabilityAcrossShards) {
  MergedSnapshot merged({MakeShard({}, {Prediction(1, 2, 0.3)}),
                         MakeShard({}, {Prediction(1, 2, 0.8)})});
  ASSERT_TRUE(merged.TripleTruth(1, 2).has_value());
  EXPECT_EQ(merged.TripleTruth(1, 2)->probability, 0.8);
  const auto top = merged.TopKTriples(10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].probability, 0.8);
}

TEST(MergedSnapshotTest, ItemValuesMergesPerValueAndOrdersByProbability) {
  MergedSnapshot merged(
      {MakeShard({}, {Prediction(1, 2, 0.3), Prediction(1, 3, 0.9)}),
       MakeShard({}, {Prediction(1, 2, 0.6), Prediction(1, 4, 0.5)})});
  const auto values = merged.ItemValues(1);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].value, 3u);
  EXPECT_EQ(values[0].probability, 0.9);
  EXPECT_EQ(values[1].value, 2u);
  EXPECT_EQ(values[1].probability, 0.6);  // shard 1's copy wins the merge
  EXPECT_EQ(values[2].value, 4u);
  EXPECT_EQ(values[2].probability, 0.5);
  EXPECT_TRUE(merged.ItemValues(99).empty());
}

TEST(MergedSnapshotTest, KLargerThanTotalAndKZero) {
  MergedSnapshot merged(
      {MakeShard({}, {Prediction(1, 2, 0.9), Prediction(2, 1, 0.4)}),
       MakeShard({}, {Prediction(3, 1, 0.6)})});
  const auto top = merged.TopKTriples(100);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].probability, 0.9);
  EXPECT_EQ(top[1].probability, 0.6);
  EXPECT_EQ(top[2].probability, 0.4);
  EXPECT_TRUE(merged.TopKTriples(0).empty());
  EXPECT_TRUE(merged.TopKWebsites(0).empty());
  EXPECT_TRUE(merged.TopKSources(0).empty());
}

TEST(MergedSnapshotTest, TripleFilterAppliesBeforeMerge) {
  // The higher-probability copy of (1, 2) is uncovered; with covered_only
  // the surviving lower-probability covered claim must serve — filtering
  // AFTER the merge would drop the key entirely.
  MergedSnapshot merged(
      {MakeShard({}, {Prediction(1, 2, 0.9, /*covered=*/false)}),
       MakeShard({}, {Prediction(1, 2, 0.5, /*covered=*/true)})});
  TripleFilter covered_only;
  covered_only.covered_only = true;
  const auto top = merged.TopKTriples(10, covered_only);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].probability, 0.5);
  EXPECT_TRUE(top[0].covered);

  // Same pre-merge semantics through an arbitrary predicate.
  TripleFilter below;
  below.predicate = [](const TripleTruth& t) { return t.probability < 0.8; };
  const auto filtered = merged.TopKTriples(10, below);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].probability, 0.5);
}

TEST(MergedSnapshotTest, SourceFilterAppliesPerShard) {
  const uint32_t w0 = WebsiteOwnedBy(0);
  const uint32_t w1 = WebsiteOwnedBy(1);
  const size_t n = std::max(w0, w1) + 1;
  MergedSnapshot merged({MakeShard(WebsiteTable(n, {{w0, 0.9}}), {}),
                         MakeShard(WebsiteTable(n, {{w1, 0.5}}), {})});
  SourceFilter filter;
  filter.predicate = [](const SourceTrust& s) { return s.kbt < 0.7; };
  const auto top = merged.TopKWebsites(10, filter);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, w1);
}

TEST(MergedSnapshotTest, ShardSourceTrustIsShardLocal) {
  api::TrustReport report;
  report.source_kbt = {{0.7, 12.0}, {0.2, 8.0}};
  MergedSnapshot merged(
      {std::make_shared<const Snapshot>(Snapshot::Build(report)), nullptr});
  ASSERT_TRUE(merged.ShardSourceTrust(0, 1).has_value());
  EXPECT_EQ(merged.ShardSourceTrust(0, 1)->kbt, 0.2);
  EXPECT_FALSE(merged.ShardSourceTrust(1, 0).has_value());  // null shard
  EXPECT_FALSE(merged.ShardSourceTrust(9, 0).has_value());  // out of range
  EXPECT_FALSE(merged.ShardSourceTrust(0, 9).has_value());  // unknown id

  const auto top = merged.TopKSources(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].shard, 0u);
  EXPECT_EQ(top[0].trust.kbt, 0.7);
  EXPECT_EQ(top[1].trust.kbt, 0.2);
}

TEST(MergedSnapshotDiffTest, AggregatesChurnAndDedupsTopMoves) {
  const uint32_t w0 = WebsiteOwnedBy(0);
  const uint32_t w1 = WebsiteOwnedBy(1);
  const size_t n = std::max(w0, w1) + 1;
  const MergedSnapshot before(
      {MakeShard(WebsiteTable(n, {{w0, 0.2}}), {Prediction(1, 2, 0.5)}),
       MakeShard(WebsiteTable(n, {{w1, 0.9}}), {})});
  const MergedSnapshot after(
      {MakeShard(WebsiteTable(n, {{w0, 0.8}}),
                 {Prediction(1, 2, 0.5), Prediction(2, 1, 0.4)}),
       MakeShard(WebsiteTable(n, {{w1, 0.7}}), {})});
  const MergedSnapshotDiff diff = DiffMergedSnapshots(before, after);
  ASSERT_EQ(diff.shard_diffs.size(), 2u);
  EXPECT_EQ(diff.triples_added, 1u);
  EXPECT_EQ(diff.triples_removed, 0u);
  // Both scored websites moved; w0 (|0.6|) outranks w1 (|0.2|), each id
  // exactly once despite every shard diffing the full aligned table.
  ASSERT_GE(diff.top_website_moves.size(), 2u);
  EXPECT_EQ(diff.top_website_moves[0].id, w0);
  EXPECT_DOUBLE_EQ(diff.top_website_moves[0].delta, 0.6);
  EXPECT_EQ(diff.top_website_moves[1].id, w1);
  EXPECT_DOUBLE_EQ(diff.top_website_moves[1].delta, -0.2);
  std::set<uint32_t> ids;
  for (const SourceMove& move : diff.top_website_moves) {
    EXPECT_TRUE(ids.insert(move.id).second) << "duplicate id " << move.id;
  }
  EXPECT_TRUE(DiffMergedSnapshots(before, after, 0).top_website_moves.empty());
}

TEST(MergedSnapshotDiffTest, MissingShardsDiffAsEmpty) {
  const MergedSnapshot before({MakeShard({}, {Prediction(1, 2, 0.5)})});
  const MergedSnapshot after({nullptr});
  const MergedSnapshotDiff diff = DiffMergedSnapshots(before, after);
  ASSERT_EQ(diff.shard_diffs.size(), 1u);
  EXPECT_EQ(diff.triples_added, 0u);
  EXPECT_EQ(diff.triples_removed, 0u);
  EXPECT_TRUE(diff.top_website_moves.empty());
}

}  // namespace
}  // namespace kbt::query
