#include "support/corpus_fixture.h"

#include <utility>

#include "common/random.h"
#include "corpus/corpus_generator.h"
#include "extract/extraction_simulator.h"
#include "extract/extractor_profile.h"

namespace kbt::testing {

StatusOr<CorpusFixture> MakeCorpusFixture(const CorpusFixtureOptions& options) {
  corpus::CorpusConfig config;
  config.seed = options.seed;
  config.num_subjects = options.num_subjects;
  config.num_predicates = options.num_predicates;
  config.values_per_domain = options.values_per_domain;
  config.num_websites = options.num_websites;
  config.max_pages_per_site = options.max_pages_per_site;
  config.max_triples_per_page = options.max_triples_per_page;
  StatusOr<corpus::WebCorpus> corpus =
      corpus::CorpusGenerator(config).Generate();
  KBT_RETURN_IF_ERROR(corpus.status());

  extract::ExtractionConfig extraction;
  // Fork the extraction seed off the fixture seed so distinct fixtures get
  // decorrelated extractor noise, while the whole fixture stays a pure
  // function of the options.
  extraction.seed = options.seed * 1000003 + 17;
  Rng rng(extraction.seed);
  extraction.extractors = extract::MakeDefaultExtractors(
      options.num_extractors, options.num_predicates, rng);
  StatusOr<extract::RawDataset> dataset =
      extract::ExtractionSimulator(extraction).Run(*corpus);
  KBT_RETURN_IF_ERROR(dataset.status());

  CorpusFixture fixture{std::move(*corpus), std::move(*dataset)};
  return fixture;
}

std::vector<std::vector<extract::RawObservation>> SliceObservations(
    const extract::RawDataset& dataset, size_t num_batches) {
  std::vector<std::vector<extract::RawObservation>> slices;
  if (num_batches == 0) return slices;
  slices.resize(num_batches);
  const size_t total = dataset.observations.size();
  const size_t base = total / num_batches;
  const size_t remainder = total % num_batches;
  size_t next = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t count = base + (b < remainder ? 1 : 0);
    slices[b].assign(dataset.observations.begin() + next,
                     dataset.observations.begin() + next + count);
    next += count;
  }
  return slices;
}

}  // namespace kbt::testing
