#ifndef KBT_TESTS_SUPPORT_CORPUS_FIXTURE_H_
#define KBT_TESTS_SUPPORT_CORPUS_FIXTURE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "corpus/web_corpus.h"
#include "extract/raw_dataset.h"

namespace kbt::testing {

/// Knobs of the shared test corpus. Defaults are sized for unit tests: a
/// few hundred observations, fast enough for sanitizer runs, but with the
/// full generator structure (category mix, scrapers, popular errors, noisy
/// extractors) so fixtures exercise realistic cubes instead of hand-rolled
/// toy data. The same options (including seed) always produce the same
/// fixture, bit for bit.
struct CorpusFixtureOptions {
  uint64_t seed = 42;
  int num_subjects = 150;
  int num_predicates = 5;
  int values_per_domain = 10;
  int num_websites = 40;
  int max_pages_per_site = 8;
  int max_triples_per_page = 15;
  int num_extractors = 6;
};

/// A generated web world plus the observation cube a simulated extractor
/// fleet produced over it — the standard input for pipeline-level tests,
/// stream tests and benches.
struct CorpusFixture {
  corpus::WebCorpus corpus;
  extract::RawDataset dataset;
};

/// Generates the corpus and runs the extraction pass. Deterministic in
/// `options` (the extraction fleet derives its seed from options.seed).
StatusOr<CorpusFixture> MakeCorpusFixture(
    const CorpusFixtureOptions& options = CorpusFixtureOptions());

/// Splits a dataset's observations into `num_batches` contiguous slices
/// (sizes differ by at most one), preserving order — the canonical way to
/// replay a batch cube as a stream of ingestion batches. num_batches == 0
/// returns no slices; empty datasets return num_batches empty slices.
std::vector<std::vector<extract::RawObservation>> SliceObservations(
    const extract::RawDataset& dataset, size_t num_batches);

}  // namespace kbt::testing

#endif  // KBT_TESTS_SUPPORT_CORPUS_FIXTURE_H_
