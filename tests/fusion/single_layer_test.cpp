#include "fusion/single_layer.h"

#include <gtest/gtest.h>

#include "exp/motivating_example.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"

namespace kbt::fusion {
namespace {

using exp::MotivatingExample;
using extract::CompiledMatrix;

SingleLayerConfig TestConfig() {
  SingleLayerConfig config;
  config.min_source_support = 1;
  config.num_false_override = 10;
  return config;
}

CompiledMatrix FixtureMatrix() {
  const auto data = MotivatingExample::Dataset();
  const auto assignment = granularity::ProvenanceAssignment(data);
  auto matrix = CompiledMatrix::Build(data, assignment);
  EXPECT_TRUE(matrix.ok());
  return std::move(*matrix);
}

TEST(SingleLayerTest, UsaWinsOnFixture) {
  // 12 provenances extract USA and 12 extract Kenya in Table 2 — but with
  // uniform accuracies the single-layer model cannot distinguish them
  // (Section 2.3's first criticism). Probabilities must come out equal.
  const CompiledMatrix matrix = FixtureMatrix();
  SingleLayerConfig config = TestConfig();
  config.max_iterations = 1;  // Keep accuracies at the uniform default.
  const auto result = SingleLayerModel::Run(matrix, config);
  ASSERT_TRUE(result.ok());

  double usa_prob = -1.0;
  double kenya_prob = -1.0;
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    if (matrix.slot_value(s) == MotivatingExample::kUsa) {
      usa_prob = result->slot_value_prob[s];
    }
    if (matrix.slot_value(s) == MotivatingExample::kKenya) {
      kenya_prob = result->slot_value_prob[s];
    }
  }
  ASSERT_GE(usa_prob, 0.0);
  ASSERT_GE(kenya_prob, 0.0);
  // 12 sources each: equal vote counts, equal posterior — the failure mode
  // the multi-layer model fixes by explaining Kenya away as extraction
  // error.
  EXPECT_NEAR(usa_prob, kenya_prob, 1e-9);
}

TEST(SingleLayerTest, RecoversAccuracyOnSyntheticData) {
  exp::SyntheticConfig sc;
  sc.seed = 3;
  sc.num_extractors = 8;
  sc.component_accuracy = 0.98;  // Nearly clean extraction.
  sc.recall = 0.8;
  sc.page_coverage = 1.0;
  const auto syn = exp::GenerateSynthetic(sc);
  // With near-perfect extractors, (w,e) provenance accuracy ~ source
  // accuracy; the single layer should find accuracies near 0.7.
  const auto assignment = granularity::ProvenanceAssignment(syn.data);
  auto matrix = CompiledMatrix::Build(syn.data, assignment);
  ASSERT_TRUE(matrix.ok());
  const auto result = SingleLayerModel::Run(*matrix, TestConfig());
  ASSERT_TRUE(result.ok());

  double mean = 0.0;
  for (double a : result->source_accuracy) mean += a;
  mean /= static_cast<double>(result->source_accuracy.size());
  EXPECT_NEAR(mean, 0.7, 0.12);
}

TEST(SingleLayerTest, TruthfulValuesGetHigherProbability) {
  exp::SyntheticConfig sc;
  sc.seed = 5;
  sc.num_extractors = 8;
  sc.component_accuracy = 0.95;
  sc.recall = 0.7;
  sc.page_coverage = 0.9;
  const auto syn = exp::GenerateSynthetic(sc);
  const auto assignment = granularity::ProvenanceAssignment(syn.data);
  auto matrix = CompiledMatrix::Build(syn.data, assignment);
  ASSERT_TRUE(matrix.ok());
  const auto result = SingleLayerModel::Run(*matrix, TestConfig());
  ASSERT_TRUE(result.ok());

  double true_mean = 0.0;
  double false_mean = 0.0;
  size_t true_n = 0;
  size_t false_n = 0;
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    const auto it = syn.data.true_values.find(
        matrix->item_id(matrix->slot_item(s)));
    if (it == syn.data.true_values.end()) continue;
    if (it->second == matrix->slot_value(s)) {
      true_mean += result->slot_value_prob[s];
      ++true_n;
    } else {
      false_mean += result->slot_value_prob[s];
      ++false_n;
    }
  }
  ASSERT_GT(true_n, 0u);
  ASSERT_GT(false_n, 0u);
  EXPECT_GT(true_mean / true_n, false_mean / false_n + 0.4);
}

TEST(SingleLayerTest, CoverageRuleExcludesThinProvenances) {
  const CompiledMatrix matrix = FixtureMatrix();
  SingleLayerConfig config = TestConfig();
  config.min_source_support = 3;  // Provenances here have 1-2 claims.
  const auto result = SingleLayerModel::Run(matrix, config);
  ASSERT_TRUE(result.ok());
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    EXPECT_EQ(result->slot_covered[s], 0);
  }
}

TEST(SingleLayerTest, InitialAccuracySeedsTheRun) {
  const CompiledMatrix matrix = FixtureMatrix();
  // Mark provenances extracting USA as accurate, others poor.
  std::vector<double> initial(matrix.num_sources(), 0.3);
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    if (matrix.slot_value(s) == MotivatingExample::kUsa) {
      initial[matrix.slot_source(s)] = 0.95;
    }
  }
  SingleLayerConfig config = TestConfig();
  const auto result = SingleLayerModel::Run(matrix, config, initial);
  ASSERT_TRUE(result.ok());
  for (size_t s = 0; s < matrix.num_slots(); ++s) {
    if (matrix.slot_value(s) == MotivatingExample::kUsa) {
      EXPECT_GT(result->slot_value_prob[s], 0.9);
    } else {
      EXPECT_LT(result->slot_value_prob[s], 0.1);
    }
  }
}

TEST(SingleLayerTest, PopAccuVariantRuns) {
  const CompiledMatrix matrix = FixtureMatrix();
  SingleLayerConfig config = TestConfig();
  config.value_model = core::ValueModel::kPopAccu;
  const auto result = SingleLayerModel::Run(matrix, config);
  ASSERT_TRUE(result.ok());
  for (double p : result->slot_value_prob) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(SingleLayerTest, RejectsBadInputs) {
  const CompiledMatrix matrix = FixtureMatrix();
  SingleLayerConfig config = TestConfig();
  config.max_iterations = 0;
  EXPECT_FALSE(SingleLayerModel::Run(matrix, config).ok());
  EXPECT_FALSE(SingleLayerModel::Run(matrix, TestConfig(),
                                     std::vector<double>(3, 0.5))
                   .ok());
}

TEST(SingleLayerTest, AccuracyByWebsiteAggregates) {
  const CompiledMatrix matrix = FixtureMatrix();
  const auto result = SingleLayerModel::Run(matrix, TestConfig());
  ASSERT_TRUE(result.ok());
  const auto by_site =
      AccuracyByWebsite(matrix, result->slot_value_prob, 8, 0.8);
  ASSERT_EQ(by_site.size(), 8u);
  for (double a : by_site) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

}  // namespace
}  // namespace kbt::fusion
