#include "exp/motivating_example.h"

#include <gtest/gtest.h>

namespace kbt::exp {
namespace {

TEST(MotivatingExampleTest, DatasetMatchesTable2Counts) {
  const auto data = MotivatingExample::Dataset();
  EXPECT_EQ(data.size(), 26u);
  EXPECT_EQ(data.num_websites, 8u);
  EXPECT_EQ(data.num_extractors, 5u);
  // Extraction counts per extractor: E1=6, E2=3, E3=7, E4=6, E5=4.
  int counts[5] = {0, 0, 0, 0, 0};
  for (const auto& obs : data.observations) counts[obs.extractor]++;
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 7);
  EXPECT_EQ(counts[3], 6);
  EXPECT_EQ(counts[4], 4);
}

TEST(MotivatingExampleTest, ProvidedFlagsMatchValueColumn) {
  const auto data = MotivatingExample::Dataset();
  const auto provided = MotivatingExample::ProvidedValues();
  for (const auto& obs : data.observations) {
    const bool should_be_provided =
        provided[obs.page] != kb::kInvalidId && provided[obs.page] == obs.value;
    EXPECT_EQ(obs.provided, should_be_provided)
        << "E" << obs.extractor + 1 << " on W" << obs.page + 1;
  }
}

TEST(MotivatingExampleTest, E1AndE2ExtractOnlyProvidedTriples) {
  // Table 2's narrative: E1 extracts all provided triples correctly; E2
  // misses some but never errs.
  const auto data = MotivatingExample::Dataset();
  for (const auto& obs : data.observations) {
    if (obs.extractor == 0 || obs.extractor == 1) {
      EXPECT_TRUE(obs.provided);
    }
  }
}

TEST(MotivatingExampleTest, E3ErrsOnlyOnW7) {
  const auto data = MotivatingExample::Dataset();
  for (const auto& obs : data.observations) {
    if (obs.extractor != 2) continue;
    EXPECT_EQ(obs.provided, obs.page != 6);
  }
}

TEST(MotivatingExampleTest, SingleDataItem) {
  const auto data = MotivatingExample::Dataset();
  for (const auto& obs : data.observations) {
    EXPECT_EQ(obs.item, MotivatingExample::Item());
  }
  EXPECT_EQ(data.true_values.at(MotivatingExample::Item()),
            MotivatingExample::kUsa);
}

TEST(MotivatingExampleTest, Table3QualityAligned) {
  const auto init = MotivatingExample::Table3Quality();
  EXPECT_EQ(init.extractor_q.size(), 5u);
  EXPECT_EQ(init.extractor_recall.size(), 5u);
  EXPECT_EQ(init.source_accuracy.size(), 8u);
  // E5 is the uninformative extractor: Q == R.
  EXPECT_DOUBLE_EQ(init.extractor_q[4], init.extractor_recall[4]);
}

}  // namespace
}  // namespace kbt::exp
