#include "exp/synthetic.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace kbt::exp {
namespace {

TEST(SyntheticTest, DefaultMatchesSection521Shape) {
  // 10 sources x (20 subjects x 5 predicates) = 100 triples per source.
  const SyntheticData data = GenerateSynthetic(SyntheticConfig{});
  EXPECT_EQ(data.true_source_accuracy.size(), 10u);
  EXPECT_EQ(data.data.num_websites, 10u);
  EXPECT_EQ(data.data.num_extractors, 5u);
  EXPECT_EQ(data.data.true_values.size(), 100u);
  EXPECT_GT(data.data.size(), 100u);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticConfig config;
  config.seed = 77;
  const auto a = GenerateSynthetic(config);
  const auto b = GenerateSynthetic(config);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (size_t i = 0; i < a.data.size(); ++i) {
    EXPECT_EQ(a.data.observations[i].item, b.data.observations[i].item);
    EXPECT_EQ(a.data.observations[i].value, b.data.observations[i].value);
  }
}

TEST(SyntheticTest, ExtractionVolumeScalesWithCoverageAndRecall) {
  SyntheticConfig low;
  low.page_coverage = 0.2;
  low.recall = 0.2;
  SyntheticConfig high = low;
  high.page_coverage = 0.9;
  high.recall = 0.9;
  const auto a = GenerateSynthetic(low);
  const auto b = GenerateSynthetic(high);
  EXPECT_GT(b.data.size(), a.data.size() * 5);
}

TEST(SyntheticTest, ProvidedFlagsReflectSourceStatements) {
  SyntheticConfig config;
  config.component_accuracy = 1.0;  // No corruption.
  const auto data = GenerateSynthetic(config);
  // With perfect extraction components every observation is provided.
  for (const auto& obs : data.data.observations) {
    EXPECT_TRUE(obs.provided);
  }
}

TEST(SyntheticTest, CorruptionCreatesUnprovidedObservations) {
  SyntheticConfig config;
  config.component_accuracy = 0.6;
  const auto data = GenerateSynthetic(config);
  size_t unprovided = 0;
  for (const auto& obs : data.data.observations) {
    unprovided += obs.provided ? 0 : 1;
  }
  // 1 - 0.6^3 ~ 78% of extractions touch at least one corrupted component.
  EXPECT_GT(unprovided, data.data.size() / 2);
}

TEST(SyntheticTest, ProvidedShareOfTrueValuesTracksSourceAccuracy) {
  SyntheticConfig config;
  config.source_accuracy = 0.7;
  config.component_accuracy = 1.0;  // Observations mirror statements.
  config.recall = 1.0;
  config.page_coverage = 1.0;
  config.num_extractors = 1;
  const auto data = GenerateSynthetic(config);
  size_t correct = 0;
  for (const auto& obs : data.data.observations) {
    const auto it = data.data.true_values.find(obs.item);
    ASSERT_NE(it, data.data.true_values.end());
    correct += (it->second == obs.value) ? 1 : 0;
  }
  const double share =
      static_cast<double>(correct) / static_cast<double>(data.data.size());
  EXPECT_NEAR(share, 0.7, 0.05);
}

TEST(SyntheticTest, ValuesStayWithinPredicateDomains) {
  const auto data = GenerateSynthetic(SyntheticConfig{});
  const int domain = 11;  // n + 1.
  for (const auto& obs : data.data.observations) {
    const int pred = static_cast<int>(kb::DataItemPredicate(obs.item));
    EXPECT_GE(static_cast<int>(obs.value), pred * domain);
    EXPECT_LT(static_cast<int>(obs.value), (pred + 1) * domain);
  }
}

}  // namespace
}  // namespace kbt::exp
