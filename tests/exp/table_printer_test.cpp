#include "exp/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace kbt::exp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1.0"});
  table.AddRow({"longer-name", "2.25"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name        | v    |"), std::string::npos);
  EXPECT_NE(text.find("| longer-name | 2.25 |"), std::string::npos);
  // Rules above/below header and at the end: 3 rule lines.
  size_t rules = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(TablePrinterTest, ShortRowsPadWithEmptyCells) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"x"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("| x |"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::Fmt(0.1, 1), "0.1");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Fmt(-1.5, 2), "-1.50");
}

TEST(TablePrinterTest, FmtCountGroupsThousands) {
  EXPECT_EQ(TablePrinter::FmtCount(0), "0");
  EXPECT_EQ(TablePrinter::FmtCount(999), "999");
  EXPECT_EQ(TablePrinter::FmtCount(1000), "1,000");
  EXPECT_EQ(TablePrinter::FmtCount(2816344), "2,816,344");
}

TEST(TablePrinterTest, BannerFormat) {
  std::ostringstream out;
  PrintBanner("Table 5", out);
  EXPECT_EQ(out.str(), "\n== Table 5 ==\n");
}

}  // namespace
}  // namespace kbt::exp
