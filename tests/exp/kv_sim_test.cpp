#include "exp/kv_sim.h"

#include <gtest/gtest.h>

#include "eval/gold_standard.h"

namespace kbt::exp {
namespace {

TEST(KvSimTest, SmallConfigBuilds) {
  const auto kv = BuildKvSim(KvSimConfig::Small());
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();
  EXPECT_EQ(kv->corpus.num_websites(), 120u);
  EXPECT_GT(kv->data.size(), 1000u);
  EXPECT_GT(kv->partial_kb.num_facts(), 0u);
  EXPECT_LT(kv->partial_kb.num_facts(), kv->corpus.world().num_facts());
}

TEST(KvSimTest, DeterministicGivenConfig) {
  const auto a = BuildKvSim(KvSimConfig::Small());
  const auto b = BuildKvSim(KvSimConfig::Small());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->data.size(), b->data.size());
  EXPECT_EQ(a->partial_kb.num_facts(), b->partial_kb.num_facts());
  for (size_t i = 0; i < a->data.size(); ++i) {
    EXPECT_EQ(a->data.observations[i].item, b->data.observations[i].item);
    EXPECT_EQ(a->data.observations[i].value, b->data.observations[i].value);
  }
}

TEST(KvSimTest, GoldStandardLabelsAMeaningfulFraction) {
  const auto kv = BuildKvSim(KvSimConfig::Small());
  ASSERT_TRUE(kv.ok());
  const eval::GoldStandard gold(kv->partial_kb, kv->corpus.world());
  size_t labeled = 0;
  size_t total = 0;
  size_t type_errors = 0;
  for (const auto& obs : kv->data.observations) {
    ++total;
    if (gold.Label(obs.item, obs.value).has_value()) ++labeled;
    if (gold.IsTypeError(obs.item, obs.value)) ++type_errors;
  }
  // The paper could label 26% of triples + 20% type errors; our partial KB
  // should label a similar order of magnitude.
  EXPECT_GT(static_cast<double>(labeled) / total, 0.1);
  EXPECT_LT(static_cast<double>(labeled) / total, 0.9);
  EXPECT_GT(type_errors, total / 100);
}

TEST(KvSimTest, SkewedConfigHasWhales) {
  const auto kv = BuildKvSim(KvSimConfig::Skewed());
  ASSERT_TRUE(kv.ok());
  uint32_t biggest = 0;
  for (const auto& site : kv->corpus.websites()) {
    biggest = std::max(biggest, site.num_pages);
  }
  // The skewed world exists to stress SPLITANDMERGE: at least one site with
  // hundreds of pages.
  EXPECT_GT(biggest, 200u);
}

}  // namespace
}  // namespace kbt::exp
