#include "kb/knowledge_base.h"

#include <gtest/gtest.h>

#include "kb/ids.h"
#include "kb/schema.h"

namespace kbt::kb {
namespace {

KnowledgeBase MakeSmallKb() {
  KnowledgeBase kb;
  const EntityId obama = kb.AddEntity("Barack Obama", EntityType::kPerson);
  const EntityId usa = kb.AddEntity("USA", EntityType::kPlace);
  kb.AddEntity("Kenya", EntityType::kPlace);
  PredicateSchema nationality;
  nationality.name = "nationality";
  nationality.subject_type = EntityType::kPerson;
  nationality.object_type = EntityType::kPlace;
  const PredicateId pred = kb.AddPredicate(nationality);
  EXPECT_TRUE(kb.AddFact(obama, pred, usa).ok());
  return kb;
}

TEST(DataItemIdTest, PackAndUnpackRoundTrip) {
  const DataItemId d = MakeDataItem(0xdeadbeefu, 0x12345678u);
  EXPECT_EQ(DataItemSubject(d), 0xdeadbeefu);
  EXPECT_EQ(DataItemPredicate(d), 0x12345678u);
}

TEST(KnowledgeBaseTest, EntitiesGetDenseIds) {
  KnowledgeBase kb;
  EXPECT_EQ(kb.AddEntity("a", EntityType::kPerson), 0u);
  EXPECT_EQ(kb.AddEntity("b", EntityType::kPlace), 1u);
  EXPECT_EQ(kb.num_entities(), 2u);
  EXPECT_EQ(kb.entity_name(1), "b");
  EXPECT_EQ(kb.entity_type(0), EntityType::kPerson);
}

TEST(KnowledgeBaseTest, PredicateSchemaIsStored) {
  KnowledgeBase kb;
  PredicateSchema s;
  s.name = "date_of_birth";
  s.object_type = EntityType::kDate;
  s.num_false_values = 50;
  const PredicateId id = kb.AddPredicate(s);
  EXPECT_EQ(kb.predicate(id).name, "date_of_birth");
  EXPECT_EQ(kb.predicate(id).num_false_values, 50);
  EXPECT_EQ(kb.predicate(id).id, id);
}

TEST(KnowledgeBaseTest, AddFactValidatesIds) {
  KnowledgeBase kb;
  const EntityId e = kb.AddEntity("e", EntityType::kPerson);
  PredicateSchema s;
  s.name = "p";
  const PredicateId p = kb.AddPredicate(s);
  EXPECT_TRUE(kb.AddFact(e, p, e).ok());
  EXPECT_FALSE(kb.AddFact(e + 10, p, e).ok());
  EXPECT_FALSE(kb.AddFact(e, p + 10, e).ok());
  EXPECT_FALSE(kb.AddFact(e, p, e + 10).ok());
}

TEST(KnowledgeBaseTest, ValueOfReturnsSingleTruth) {
  KnowledgeBase kb = MakeSmallKb();
  const DataItemId item = MakeDataItem(0, 0);  // (Obama, nationality)
  ASSERT_TRUE(kb.ValueOf(item).has_value());
  EXPECT_EQ(*kb.ValueOf(item), 1u);  // USA
  EXPECT_FALSE(kb.ValueOf(MakeDataItem(1, 0)).has_value());
}

TEST(KnowledgeBaseTest, AddFactOverwritesValue) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_TRUE(kb.AddFact(0, 0, 2).ok());  // Re-assert with Kenya.
  EXPECT_EQ(*kb.ValueOf(MakeDataItem(0, 0)), 2u);
  EXPECT_EQ(kb.num_facts(), 1u);
}

TEST(KnowledgeBaseTest, LcwaLabels) {
  KnowledgeBase kb = MakeSmallKb();
  const DataItemId known = MakeDataItem(0, 0);
  // (Obama, nationality, USA) in KB -> true.
  EXPECT_EQ(kb.Label(known, 1), LcwaLabel::kTrue);
  // (Obama, nationality, Kenya): KB knows another value -> false.
  EXPECT_EQ(kb.Label(known, 2), LcwaLabel::kFalse);
  // (Kenya, nationality, *): data item absent -> unknown.
  EXPECT_EQ(kb.Label(MakeDataItem(2, 0), 1), LcwaLabel::kUnknown);
}

TEST(KnowledgeBaseTest, ContainsFact) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_TRUE(kb.ContainsFact(MakeDataItem(0, 0), 1));
  EXPECT_FALSE(kb.ContainsFact(MakeDataItem(0, 0), 2));
  EXPECT_FALSE(kb.ContainsFact(MakeDataItem(1, 0), 1));
}

TEST(KnowledgeBaseTest, SampleSubsetKeepsSchemaDropsFacts) {
  KnowledgeBase kb;
  const EntityId s = kb.AddEntity("s", EntityType::kPerson);
  PredicateSchema schema;
  schema.name = "p";
  schema.subject_type = EntityType::kPerson;
  schema.object_type = EntityType::kPlace;
  const PredicateId p = kb.AddPredicate(schema);
  std::vector<EntityId> objects;
  for (int i = 0; i < 2000; ++i) {
    objects.push_back(
        kb.AddEntity("o" + std::to_string(i), EntityType::kPlace));
  }
  // Distinct subjects so each fact is a distinct data item.
  for (int i = 0; i < 2000; ++i) {
    const EntityId subj =
        kb.AddEntity("s" + std::to_string(i), EntityType::kPerson);
    ASSERT_TRUE(kb.AddFact(subj, p, objects[static_cast<size_t>(i)]).ok());
  }
  (void)s;

  Rng rng(5);
  const KnowledgeBase half = kb.SampleSubset(0.5, rng);
  EXPECT_EQ(half.num_entities(), kb.num_entities());
  EXPECT_EQ(half.num_predicates(), kb.num_predicates());
  EXPECT_NEAR(static_cast<double>(half.num_facts()), 1000.0, 100.0);
  // Every retained fact matches the world.
  for (const auto& [item, value] : half.facts()) {
    EXPECT_TRUE(kb.ContainsFact(item, value));
  }
}

TEST(KnowledgeBaseTest, SampleSubsetFullAndEmpty) {
  KnowledgeBase kb = MakeSmallKb();
  Rng rng(6);
  EXPECT_EQ(kb.SampleSubset(1.0, rng).num_facts(), kb.num_facts());
  EXPECT_EQ(kb.SampleSubset(0.0, rng).num_facts(), 0u);
}

}  // namespace
}  // namespace kbt::kb
