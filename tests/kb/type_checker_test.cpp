#include "kb/type_checker.h"

#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "kb/schema.h"

namespace kbt::kb {
namespace {

class TypeCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    person_ = kb_.AddEntity("athlete", EntityType::kPerson);
    place_ = kb_.AddEntity("USA", EntityType::kPlace);
    other_person_ = kb_.AddEntity("coach", EntityType::kPerson);
    weight_ok_ = kb_.AddEntity("180", EntityType::kNumber, 180.0);
    weight_bad_ = kb_.AddEntity("1200", EntityType::kNumber, 1200.0);

    PredicateSchema nationality;
    nationality.name = "nationality";
    nationality.subject_type = EntityType::kPerson;
    nationality.object_type = EntityType::kPlace;
    nationality_ = kb_.AddPredicate(nationality);

    PredicateSchema weight;
    weight.name = "weight_lbs";
    weight.subject_type = EntityType::kPerson;
    weight.object_type = EntityType::kNumber;
    weight.numeric_min = 0.0;
    weight.numeric_max = 1000.0;  // Paper: athlete weight over 1000 lbs fails.
    weight_pred_ = kb_.AddPredicate(weight);
  }

  KnowledgeBase kb_;
  EntityId person_ = 0;
  EntityId place_ = 0;
  EntityId other_person_ = 0;
  EntityId weight_ok_ = 0;
  EntityId weight_bad_ = 0;
  PredicateId nationality_ = 0;
  PredicateId weight_pred_ = 0;
};

TEST_F(TypeCheckerTest, WellTypedTriplePasses) {
  TypeChecker checker(kb_);
  EXPECT_EQ(checker.Check(MakeDataItem(person_, nationality_), place_),
            TypeViolation::kNone);
  EXPECT_TRUE(checker.IsWellTyped(MakeDataItem(person_, nationality_), place_));
}

TEST_F(TypeCheckerTest, SubjectEqualsObjectFails) {
  TypeChecker checker(kb_);
  EXPECT_EQ(checker.Check(MakeDataItem(person_, nationality_), person_),
            TypeViolation::kSubjectEqualsObject);
}

TEST_F(TypeCheckerTest, SubjectTypeMismatchFails) {
  TypeChecker checker(kb_);
  // Place as subject of nationality: the subject rule fires first even when
  // the object is also incompatible.
  EXPECT_EQ(checker.Check(MakeDataItem(place_, nationality_), other_person_),
            TypeViolation::kSubjectTypeMismatch);
  const EntityId another_place = kb_.AddEntity("Wales", EntityType::kPlace);
  EXPECT_EQ(checker.Check(MakeDataItem(place_, nationality_), another_place),
            TypeViolation::kSubjectTypeMismatch);
}

TEST_F(TypeCheckerTest, ObjectTypeMismatchFails) {
  TypeChecker checker(kb_);
  EXPECT_EQ(checker.Check(MakeDataItem(person_, nationality_), other_person_),
            TypeViolation::kObjectTypeMismatch);
}

TEST_F(TypeCheckerTest, NumericRangeEnforced) {
  TypeChecker checker(kb_);
  EXPECT_EQ(checker.Check(MakeDataItem(person_, weight_pred_), weight_ok_),
            TypeViolation::kNone);
  EXPECT_EQ(checker.Check(MakeDataItem(person_, weight_pred_), weight_bad_),
            TypeViolation::kValueOutOfRange);
}

TEST_F(TypeCheckerTest, NanBoundsDisableRangeCheck) {
  PredicateSchema unbounded;
  unbounded.name = "count";
  unbounded.subject_type = EntityType::kPerson;
  unbounded.object_type = EntityType::kNumber;
  const PredicateId p = kb_.AddPredicate(unbounded);
  TypeChecker checker(kb_);
  EXPECT_EQ(checker.Check(MakeDataItem(person_, p), weight_bad_),
            TypeViolation::kNone);
}

TEST_F(TypeCheckerTest, ViolationNamesAreStable) {
  EXPECT_EQ(TypeViolationName(TypeViolation::kNone), "none");
  EXPECT_EQ(TypeViolationName(TypeViolation::kSubjectEqualsObject),
            "subject_equals_object");
  EXPECT_EQ(TypeViolationName(TypeViolation::kValueOutOfRange),
            "value_out_of_range");
}

}  // namespace
}  // namespace kbt::kb
