#include "common/math.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(MathTest, SigmoidBasicValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(Sigmoid(-2.0), 1.0 - Sigmoid(2.0), 1e-15);
}

TEST(MathTest, SigmoidExtremesDoNotOverflow) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(Sigmoid(709.0)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-709.0)));
}

TEST(MathTest, LogitInvertsSigmoid) {
  for (double x : {-5.0, -1.0, 0.0, 0.3, 2.0, 8.0}) {
    EXPECT_NEAR(Logit(Sigmoid(x)), x, 1e-9) << "x=" << x;
  }
}

TEST(MathTest, LogitClampsEndpoints) {
  EXPECT_TRUE(std::isfinite(Logit(0.0)));
  EXPECT_TRUE(std::isfinite(Logit(1.0)));
  EXPECT_LT(Logit(0.0), -20.0);
  EXPECT_GT(Logit(1.0), 20.0);
}

TEST(MathTest, LogSumExpMatchesDirectComputation) {
  const std::vector<double> xs = {0.1, -2.0, 3.5};
  double direct = 0.0;
  for (double x : xs) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(xs), std::log(direct), 1e-12);
}

TEST(MathTest, LogSumExpHandlesLargeInputs) {
  // Direct exp(1000) would overflow; the stable version must not.
  const std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, LogSumExpEmptyIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(LogSumExp({})));
  EXPECT_LT(LogSumExp({}), 0);
}

// Eq. (7) examples from Table 3 of the paper (gamma = 0.25):
//   E3: P=.85, R=.99 -> Q ~ .06
//   E4: P=.33, R=.33 -> Q ~ .22
//   E5: P=.25, R=.17 -> Q = .17
TEST(MathTest, QFromPrecisionRecallMatchesTable3) {
  const double gamma = 0.25;
  EXPECT_NEAR(QFromPrecisionRecall(0.85, 0.99, gamma), 0.06, 0.005);
  EXPECT_NEAR(QFromPrecisionRecall(0.33, 0.33, gamma), 0.22, 0.005);
  EXPECT_NEAR(QFromPrecisionRecall(0.25, 0.17, gamma), 0.17, 0.005);
}

TEST(MathTest, PrecisionFromQInvertsEq7) {
  const double gamma = 0.25;
  for (double p : {0.2, 0.5, 0.85, 0.99}) {
    for (double r : {0.1, 0.5, 0.9}) {
      // Skip combinations where Eq. (7) exceeds 1 and is clamped (a Q of 1
      // is not a valid false-positive rate, so the inverse is undefined).
      const double unclamped = gamma / (1 - gamma) * (1 - p) / p * r;
      if (unclamped >= 1.0) continue;
      const double q = QFromPrecisionRecall(p, r, gamma);
      EXPECT_NEAR(PrecisionFromQ(q, r, gamma), p, 1e-9)
          << "P=" << p << " R=" << r;
    }
  }
}

// Table 3: presence/absence votes derived from (Q, R).
//   Pre(E1)=ln(.99/.01)=4.6, Abs(E1)=ln(.01/.99)=-4.6
//   Pre(E2)=ln(.5/.01)=3.9,  Abs(E2)=ln(.5/.99)=-0.7
//   Pre(E3)=ln(.99/.06)=2.8, Abs(E3)=ln(.01/.94)=-4.5
//   Pre(E4)=ln(.33/.22)=0.4, Abs(E4)=ln(.67/.78)=-0.15
//   Pre(E5)=0,               Abs(E5)=0
TEST(MathTest, VotesMatchTable3) {
  EXPECT_NEAR(PresenceVote(0.99, 0.01), 4.6, 0.05);
  EXPECT_NEAR(AbsenceVote(0.99, 0.01), -4.6, 0.05);
  EXPECT_NEAR(PresenceVote(0.5, 0.01), 3.9, 0.05);
  EXPECT_NEAR(AbsenceVote(0.5, 0.01), -0.7, 0.05);
  EXPECT_NEAR(PresenceVote(0.99, 0.06), 2.8, 0.05);
  EXPECT_NEAR(AbsenceVote(0.99, 0.06), -4.5, 0.05);
  EXPECT_NEAR(PresenceVote(0.33, 0.22), 0.4, 0.05);
  EXPECT_NEAR(AbsenceVote(0.33, 0.22), -0.15, 0.05);
  EXPECT_NEAR(PresenceVote(0.17, 0.17), 0.0, 1e-9);
  EXPECT_NEAR(AbsenceVote(0.17, 0.17), 0.0, 1e-9);
}

// Example 3.2: A_w = 0.6, n = 10 -> vote = ln(10*0.6/0.4) = 2.7.
TEST(MathTest, SourceVoteMatchesExample32) {
  EXPECT_NEAR(SourceVote(0.6, 10), 2.708, 0.001);
}

TEST(MathTest, SourceVoteIsMonotonicInAccuracy) {
  double prev = SourceVote(0.05, 10);
  for (double a = 0.1; a < 1.0; a += 0.05) {
    const double v = SourceVote(a, 10);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(MathTest, ClampProbabilityBounds) {
  EXPECT_GT(ClampProbability(0.0), 0.0);
  EXPECT_LT(ClampProbability(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ClampProbability(0.5), 0.5);
}

// Regression: the log-odds helpers must clamp their probability inputs away
// from {0, 1} *before* dividing — an unclamped p == 1.0 in Logit (or
// a == 1.0 in SourceVote) divides by zero and the resulting inf/NaN
// propagates through every subsequent inference vote.
TEST(MathTest, SourceVoteEndpointsAreFinite) {
  for (const int n : {1, 10, 100}) {
    EXPECT_TRUE(std::isfinite(SourceVote(1.0, n))) << n;
    EXPECT_TRUE(std::isfinite(SourceVote(0.0, n))) << n;
  }
  // A perfect source votes strongly for, a broken one strongly against.
  EXPECT_GT(SourceVote(1.0, 10), 20.0);
  EXPECT_LT(SourceVote(0.0, 10), -20.0);
  // Degenerate domain sizes are lifted to n = 1 rather than log(0).
  EXPECT_TRUE(std::isfinite(SourceVote(0.6, 0)));
  EXPECT_TRUE(std::isfinite(SourceVote(0.6, -5)));
}

// UBSan-sensitive edges (these run under the sanitizer matrix CI jobs,
// where -fno-sanitize-recover turns any log(0)/division-by-zero/overflow
// reached here into a hard failure, not just a wrong number).

TEST(MathTest, SafeLogGuardsZeroAndNegative) {
  // log(0) is -inf and log(-x) is NaN; SafeLog must clamp first.
  EXPECT_TRUE(std::isfinite(SafeLog(0.0)));
  EXPECT_NEAR(SafeLog(0.0), std::log(kProbEpsilon), 1e-12);
  EXPECT_TRUE(std::isfinite(SafeLog(-1.0)));
  EXPECT_DOUBLE_EQ(SafeLog(1.0), 0.0);
}

TEST(MathTest, LogitSurvivesScoreUnderflow) {
  // Probabilities that underflowed to subnormals (or to exactly 0) appear
  // in long EM chains; the clamp keeps the log-odds finite.
  const double subnormal = 5e-324;
  EXPECT_TRUE(std::isfinite(Logit(subnormal)));
  EXPECT_TRUE(std::isfinite(Logit(1.0 - 1e-18)));  // Rounds to 1.0.
  EXPECT_TRUE(std::isfinite(Logit(-0.25)));        // Clamped from below.
  EXPECT_TRUE(std::isfinite(Logit(1.25)));         // Clamped from above.
}

TEST(MathTest, LogSumExpHandlesInfiniteVotes) {
  const double inf = std::numeric_limits<double>::infinity();
  // All-(-inf): every candidate value has zero mass. The guard returns
  // -inf directly instead of computing exp(-inf - (-inf)) = exp(NaN).
  const std::vector<double> all_dead = {-inf, -inf};
  EXPECT_TRUE(std::isinf(LogSumExp(all_dead)));
  EXPECT_LT(LogSumExp(all_dead), 0.0);
  // +inf dominates and must come back unchanged, not as NaN.
  const std::vector<double> peaked = {inf, 0.0};
  EXPECT_TRUE(std::isinf(LogSumExp(peaked)));
  EXPECT_GT(LogSumExp(peaked), 0.0);
}

TEST(MathTest, ClampProbabilityRejectsOutOfRangeInputs) {
  EXPECT_DOUBLE_EQ(ClampProbability(-3.0), kProbEpsilon);
  EXPECT_DOUBLE_EQ(ClampProbability(4.0), 1.0 - kProbEpsilon);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(MathTest, VoteHelpersAreFiniteAtProbabilityEndpoints) {
  for (const double p : {0.0, 1.0}) {
    for (const double q : {0.0, 1.0}) {
      EXPECT_TRUE(std::isfinite(PresenceVote(p, q))) << p << " " << q;
      EXPECT_TRUE(std::isfinite(AbsenceVote(p, q))) << p << " " << q;
      EXPECT_TRUE(std::isfinite(QFromPrecisionRecall(p, q, 0.25)))
          << p << " " << q;
      EXPECT_TRUE(std::isfinite(PrecisionFromQ(p, q, 0.25))) << p << " " << q;
    }
  }
}

}  // namespace
}  // namespace kbt
