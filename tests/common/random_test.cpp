#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent(99);
  Rng f1 = parent.Fork(0);
  Rng f2 = parent.Fork(1);
  Rng f1_again = parent.Fork(0);
  EXPECT_EQ(f1.NextU64(), f1_again.NextU64());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.NextU32() == f2.NextU32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    counts[static_cast<size_t>(v - 2)]++;
  }
  for (int c : counts) EXPECT_GT(c, 700);  // ~1000 expected per bucket.
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, BetaMomentsMatch) {
  Rng rng(17);
  const double a = 8.0;
  const double b = 2.0;
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(a, b);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, a / (a + b), 0.01);
}

TEST(RngTest, GammaMeanMatches) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(3.0, 2.0);
  EXPECT_NEAR(sum / n, 6.0, 0.15);
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(0.5, 1.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfSamplerTest, RankOneMostFrequent) {
  Rng rng(31);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], 5 * counts[9]);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(1000, 1.2);
  double sum = 0.0;
  for (size_t i = 0; i < zipf.size(); ++i) sum += zipf.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfFollowsPowerLaw) {
  ZipfSampler zipf(1000, 2.0);
  // p(1)/p(2) = 2^2 = 4.
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(1), 4.0, 1e-6);
}

TEST(ZipfSamplerTest, SingleElement) {
  Rng rng(37);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(41);
  AliasSampler alias({1.0, 2.0, 7.0});
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[alias.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(AliasSamplerTest, PmfNormalized) {
  AliasSampler alias({3.0, 0.0, 1.0});
  EXPECT_NEAR(alias.Pmf(0), 0.75, 1e-12);
  EXPECT_NEAR(alias.Pmf(1), 0.0, 1e-12);
  EXPECT_NEAR(alias.Pmf(2), 0.25, 1e-12);
}

TEST(AliasSamplerTest, NeverSamplesZeroWeight) {
  Rng rng(43);
  AliasSampler alias({1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(alias.Sample(rng), 1u);
  }
}

TEST(AliasSamplerTest, UniformCase) {
  Rng rng(47);
  AliasSampler alias(std::vector<double>(8, 1.0));
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 80000; ++i) counts[alias.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c / 80000.0, 0.125, 0.01);
}

}  // namespace
}  // namespace kbt
