#include "common/status.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad n");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad n");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  ASSERT_TRUE(v.ok());
  const std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

TEST(StatusOrTest, DereferencingTemporaryMovesValueOut) {
  struct MoveOnly {
    explicit MoveOnly(int v) : value(v) {}
    MoveOnly(const MoveOnly&) = delete;
    MoveOnly& operator=(const MoveOnly&) = delete;
    MoveOnly(MoveOnly&&) = default;
    MoveOnly& operator=(MoveOnly&&) = default;
    int value;
  };
  const auto produce = [] { return StatusOr<MoveOnly>(MoveOnly(7)); };
  // `*produce()` must select the rvalue overload: a move-only payload
  // (api::Pipeline is one) flows straight into a consumer.
  const MoveOnly out = *produce();
  EXPECT_EQ(out.value, 7);
}

TEST(StatusOrTest, RvalueValueAccessChainsIntoConsumers) {
  // The && overloads exist so `Consume(*Produce())` never copies. Under
  // AddressSanitizer this also proves the moved-from temporary is not
  // dangled into: the returned reference binds to the temporary, which
  // lives to the end of the full expression.
  const auto produce = [] {
    return StatusOr<std::vector<double>>(std::vector<double>{1.0, 2.0});
  };
  const std::vector<double> direct = *produce();
  EXPECT_EQ(direct.size(), 2u);
  const std::vector<double> via_value = std::move(produce()).value();
  EXPECT_EQ(via_value[1], 2.0);
}

Status FailingHelper() { return Status::Internal("inner"); }

Status Propagates() {
  KBT_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace kbt
