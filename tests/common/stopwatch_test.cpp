#include "common/stopwatch.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.02);
  EXPECT_LT(elapsed, 2.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.02);
}

TEST(StopwatchTest, MillisMatchesSeconds) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1000.0, 5.0);
}

TEST(StopwatchTest, TimeIsMonotone) {
  Stopwatch watch;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = watch.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace kbt
