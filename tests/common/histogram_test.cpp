#include "common/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(HistogramTest, BucketIndexRespectsEdges) {
  Histogram h({0.0, 1.0, 2.0});
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(0.99), 0u);
  EXPECT_EQ(h.BucketIndex(1.0), 1u);
  EXPECT_EQ(h.BucketIndex(1.5), 1u);
  EXPECT_EQ(h.BucketIndex(2.0), 2u);   // catch-all >= last edge
  EXPECT_EQ(h.BucketIndex(99.0), 2u);
}

TEST(HistogramTest, ValuesBelowFirstEdgeClampToFirstBucket) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.BucketIndex(0.5), 0u);
}

TEST(HistogramTest, AddAccumulatesWeight) {
  Histogram h({0.0, 1.0});
  h.Add(0.5);
  h.Add(0.5, 2.0);
  h.Add(1.5, 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(1), 4.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 7.0);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 3.0 / 7.0);
}

TEST(HistogramTest, TripleCountBucketsMatchFigure5Axis) {
  Histogram h = Histogram::TripleCountBuckets();
  // 1..10 singleton buckets + 11-100, 100-1K, 1K-10K, 10K-100K, 100K-1M, >1M.
  EXPECT_EQ(h.num_buckets(), 16u);
  EXPECT_EQ(h.BucketIndex(1), 0u);
  EXPECT_EQ(h.BucketIndex(5), 4u);
  EXPECT_EQ(h.BucketIndex(10), 9u);
  EXPECT_EQ(h.BucketIndex(11), 10u);
  EXPECT_EQ(h.BucketIndex(100), 10u);
  EXPECT_EQ(h.BucketIndex(101), 11u);
  EXPECT_EQ(h.BucketIndex(50000), 13u);
  EXPECT_EQ(h.BucketIndex(2000000), 15u);
}

TEST(HistogramTest, UniformProbabilityBuckets) {
  Histogram h = Histogram::UniformProbabilityBuckets(20);
  EXPECT_EQ(h.num_buckets(), 20u);
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(0.049), 0u);
  EXPECT_EQ(h.BucketIndex(0.05), 1u);
  EXPECT_EQ(h.BucketIndex(0.951), 19u);
  EXPECT_EQ(h.BucketIndex(1.0), 19u);
}

TEST(HistogramTest, WDevBucketsAreFineAtTheEnds) {
  Histogram h = Histogram::WDevBuckets();
  // [0,0.01).. x5, [0.05,0.1).. x18, [0.95,0.96).. x5, [1,1] -> 29 buckets.
  EXPECT_EQ(h.num_buckets(), 29u);
  // Fine granularity near 0.
  EXPECT_NE(h.BucketIndex(0.005), h.BucketIndex(0.015));
  // Coarse in the middle: 0.52 and 0.54 share a bucket.
  EXPECT_EQ(h.BucketIndex(0.52), h.BucketIndex(0.54));
  // Fine again near 1.
  EXPECT_NE(h.BucketIndex(0.955), h.BucketIndex(0.965));
  // Exact 1.0 isolated in its own [1,1] bucket.
  EXPECT_NE(h.BucketIndex(0.999), h.BucketIndex(1.0));
}

TEST(HistogramTest, ClearResetsCounts) {
  Histogram h({0.0, 1.0});
  h.Add(0.5, 3.0);
  h.Clear();
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_count(0), 0.0);
}

TEST(HistogramTest, LabelsAreReadable) {
  Histogram h({0.0, 0.5});
  EXPECT_EQ(h.BucketLabel(0), "[0,0.5)");
  EXPECT_EQ(h.BucketLabel(1), ">=0.5");
}

TEST(HistogramTest, UpperEdgeOfLastBucketIsInfinite) {
  Histogram h({0.0, 1.0});
  EXPECT_TRUE(std::isinf(h.bucket_upper(1)));
  EXPECT_DOUBLE_EQ(h.bucket_upper(0), 1.0);
}

}  // namespace
}  // namespace kbt
