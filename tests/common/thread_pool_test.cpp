#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No explicit Wait: destructor must not drop queued tasks.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitDrainsTasksSubmittedByRunningTasks) {
  // Documented Wait() semantics: a submitter running on a worker is still
  // active while it enqueues children, so one Wait() covers the children
  // (and grandchildren) too — no re-Wait loop needed.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&pool, &counter] {
        pool.Submit([&counter] { counter.fetch_add(1); });  // Grandchild.
        counter.fetch_add(1);
      });
    }
    counter.fetch_add(1);
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 21);
}

TEST(ThreadPoolTest, WaitDrainsNestedSubmitsUnderManySubmitters) {
  // Stress the drain condition: external submitters race with worker-side
  // nested submissions; every task submitted before Wait() (transitively)
  // must be complete when it returns.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&pool, &counter] {
          pool.Submit([&counter] { counter.fetch_add(1); });
          counter.fetch_add(1);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 8 * 50 * 2);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
  std::future<std::string> g =
      pool.SubmitWithResult([] { return std::string("kbt"); });
  EXPECT_EQ(g.get(), "kbt");
}

TEST(ThreadPoolTest, SubmitWithResultPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<int> f = pool.SubmitWithResult(
      []() -> int { throw std::runtime_error("inference blew up"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a captured exception.
  EXPECT_EQ(pool.SubmitWithResult([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, TryRunOneTaskRunsOnCallingThread) {
  ThreadPool pool(1);
  // Occupy the single worker so the queue backs up. Wait until the blocker
  // is *running* — otherwise TryRunOneTask below could pop the blocker
  // itself and spin on this thread forever.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.Submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> counter{0};
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&counter, &ran_on] {
    ran_on = std::this_thread::get_id();
    counter.fetch_add(1);
  });
  while (!pool.TryRunOneTask()) std::this_thread::yield();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(ran_on, self);
  EXPECT_FALSE(pool.TryRunOneTask());  // Queue is empty now.
  release.store(true);
  pool.Wait();
}

// ---------------------------------------------------------------------------
// TaskGroup
// ---------------------------------------------------------------------------

TEST(TaskGroupTest, WaitJoinsExactlyTheGroup) {
  ThreadPool pool(4);
  std::atomic<int> group_done{0};
  // A slow non-group task: the group's Wait must not require it to finish.
  // Wait until it is running so the helping join below cannot pop it onto
  // this thread and spin.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  pool.Submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Submit([&group_done] { group_done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(group_done.load(), 100);
  release.store(true);
  pool.Wait();
}

TEST(TaskGroupTest, NestedGroupsOnSaturatedPoolDoNotDeadlock) {
  // Every worker runs a task that itself forks a nested group; the nested
  // joins can only finish because waiters donate their threads to queued
  // work.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Submit([&pool, &leaves] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) {
        inner.Submit([&pool, &leaves] {
          TaskGroup innermost(&pool);
          for (int k = 0; k < 4; ++k) {
            innermost.Submit([&leaves] { leaves.fetch_add(1); });
          }
          innermost.Wait();
        });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaves.load(), 8 * 8 * 4);
}

TEST(TaskGroupTest, SingleThreadPoolNestedJoin) {
  // The tightest case: one worker, nested fork-join from inside its task.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  TaskGroup outer(&pool);
  outer.Submit([&pool, &count] {
    TaskGroup inner(&pool);
    for (int i = 0; i < 10; ++i) inner.Submit([&count] { count.fetch_add(1); });
    inner.Wait();
    count.fetch_add(100);
  });
  outer.Wait();
  EXPECT_EQ(count.load(), 110);
}

TEST(TaskGroupTest, DestructorWaitsForStragglers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) group.Submit([&count] { count.fetch_add(1); });
    // No explicit Wait.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskGroupTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) group.Submit([&count] { count.fetch_add(1); });
    group.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

// ---------------------------------------------------------------------------
// SerialQueue
// ---------------------------------------------------------------------------

TEST(SerialQueueTest, PreservesFifoOrderOnMultiThreadPool) {
  ThreadPool pool(4);
  SerialQueue queue(&pool);
  std::vector<int> order;  // Unsynchronized on purpose: the strand is the lock.
  for (int i = 0; i < 500; ++i) {
    queue.Submit([&order, i] { order.push_back(i); });
  }
  queue.Wait();
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SerialQueueTest, StrandsRunConcurrentlyWithEachOther) {
  // Two strands over one pool must be able to overlap: strand A blocks
  // until strand B's task has run, which can only happen concurrently.
  ThreadPool pool(4);
  SerialQueue a(&pool);
  SerialQueue b(&pool);
  std::atomic<bool> b_ran{false};
  a.Submit([&b_ran] {
    while (!b_ran.load()) std::this_thread::yield();
  });
  b.Submit([&b_ran] { b_ran.store(true); });
  a.Wait();
  b.Wait();
  EXPECT_TRUE(b_ran.load());
}

TEST(SerialQueueTest, ManyConcurrentSubmittersKeepPerQueueOrder) {
  ThreadPool pool(4);
  constexpr int kQueues = 5;
  constexpr int kPerSubmitter = 100;
  std::vector<std::unique_ptr<SerialQueue>> queues;
  std::vector<std::vector<int>> logs(kQueues);
  for (int q = 0; q < kQueues; ++q) {
    queues.push_back(std::make_unique<SerialQueue>(&pool));
  }
  // One submitter thread per queue: per-queue submission order is then
  // well-defined and must be preserved exactly.
  std::vector<std::thread> submitters;
  for (int q = 0; q < kQueues; ++q) {
    submitters.emplace_back([&, q] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        queues[static_cast<size_t>(q)]->Submit(
            [&logs, q, i] { logs[static_cast<size_t>(q)].push_back(i); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (auto& queue : queues) queue->Wait();
  for (int q = 0; q < kQueues; ++q) {
    ASSERT_EQ(logs[static_cast<size_t>(q)].size(),
              static_cast<size_t>(kPerSubmitter));
    for (int i = 0; i < kPerSubmitter; ++i) {
      EXPECT_EQ(logs[static_cast<size_t>(q)][static_cast<size_t>(i)], i);
    }
  }
}

TEST(SerialQueueTest, SubmitWithResultDeliversValuesAndExceptions) {
  ThreadPool pool(2);
  SerialQueue queue(&pool);
  std::future<int> ok = queue.SubmitWithResult([] { return 7; });
  std::future<int> bad = queue.SubmitWithResult(
      []() -> int { throw std::runtime_error("bad request"); });
  std::future<int> after = queue.SubmitWithResult([] { return 8; });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(after.get(), 8);  // The strand survives a captured exception.
}

TEST(SerialQueueTest, TasksCanResubmitOntoTheirOwnQueue) {
  ThreadPool pool(2);
  SerialQueue queue(&pool);
  std::atomic<int> count{0};
  std::function<void(int)> chain = [&](int depth) {
    count.fetch_add(1);
    if (depth > 0) queue.Submit([&chain, depth] { chain(depth - 1); });
  };
  queue.Submit([&chain] { chain(9); });
  // Wait() covers tasks the queue's own tasks submit back onto it.
  queue.Wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(SerialQueueTest, PendingCountsQueuedAndRunning) {
  ThreadPool pool(2);
  SerialQueue queue(&pool);
  EXPECT_EQ(queue.pending(), 0u);
  std::atomic<bool> release{false};
  queue.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  queue.Submit([] {});
  EXPECT_GE(queue.pending(), 1u);
  release.store(true);
  queue.Wait();
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(SerialQueueTest, DestructorDrains) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  {
    SerialQueue queue(&pool);
    for (int i = 0; i < 100; ++i) queue.Submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace kbt
