#include "common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No explicit Wait: destructor must not drop queued tasks.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    counter.fetch_add(1);
  });
  // Wait may observe the outer task only; loop until stable.
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace kbt
