#include "common/string_pool.h"

#include <string>

#include <gtest/gtest.h>

namespace kbt {
namespace {

TEST(StringPoolTest, InternAssignsDenseIds) {
  StringPool pool;
  EXPECT_EQ(pool.Intern("alpha"), 0u);
  EXPECT_EQ(pool.Intern("beta"), 1u);
  EXPECT_EQ(pool.Intern("gamma"), 2u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  const uint32_t a = pool.Intern("x");
  const uint32_t b = pool.Intern("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPoolTest, GetRoundTrips) {
  StringPool pool;
  const uint32_t id = pool.Intern("wiki.com/page1");
  EXPECT_EQ(pool.Get(id), "wiki.com/page1");
}

TEST(StringPoolTest, FindMissingReturnsNullopt) {
  StringPool pool;
  pool.Intern("present");
  EXPECT_TRUE(pool.Find("present").has_value());
  EXPECT_FALSE(pool.Find("absent").has_value());
}

TEST(StringPoolTest, ViewsSurviveGrowth) {
  StringPool pool;
  const uint32_t first = pool.Intern("first");
  const std::string_view view = pool.Get(first);
  for (int i = 0; i < 10000; ++i) {
    pool.Intern("filler_" + std::to_string(i));
  }
  EXPECT_EQ(view, "first");
  EXPECT_EQ(pool.Get(first), "first");
}

TEST(StringPoolTest, EmptyStringIsValidKey) {
  StringPool pool;
  const uint32_t id = pool.Intern("");
  EXPECT_EQ(pool.Get(id), "");
  EXPECT_EQ(pool.Find("").value(), id);
}

}  // namespace
}  // namespace kbt
