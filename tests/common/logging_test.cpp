#include "common/logging.h"

#include <gtest/gtest.h>

namespace kbt {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, LoggingDoesNotCrashAtAnyLevel) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError,
                         LogLevel::kOff}) {
    SetLogLevel(level);
    KBT_LOG(Debug) << "debug " << 1;
    KBT_LOG(Info) << "info " << 2.5;
    KBT_LOG(Warning) << "warning " << "text";
    KBT_LOG(Error) << "error " << 'c';
  }
  SUCCEED();
}

TEST_F(LoggingTest, SuppressedMessagesSkipFormatting) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("payload");
  };
  // Stream arguments are still evaluated (no lazy macro), but the message
  // must not be emitted; this documents the contract.
  KBT_LOG(Info) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, CheckPassesOnTrueCondition) {
  KBT_CHECK(1 + 1 == 2);
  SUCCEED();
}

TEST_F(LoggingTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ KBT_CHECK(false); }, "KBT_CHECK failed");
}

}  // namespace
}  // namespace kbt
