#include "io/dataset_io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <utility>

#include <gtest/gtest.h>

#include "exp/synthetic.h"

namespace kbt::io {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(DatasetIoTest, RawDatasetRoundTrips) {
  exp::SyntheticConfig config;
  config.num_sources = 5;
  config.num_extractors = 3;
  const auto synthetic = exp::GenerateSynthetic(config);
  const std::string path = TempPath("dataset.tsv");

  ASSERT_TRUE(WriteRawDataset(path, synthetic.data).ok());
  const auto loaded = ReadRawDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->num_websites, synthetic.data.num_websites);
  EXPECT_EQ(loaded->num_pages, synthetic.data.num_pages);
  EXPECT_EQ(loaded->num_extractors, synthetic.data.num_extractors);
  EXPECT_EQ(loaded->num_patterns, synthetic.data.num_patterns);
  EXPECT_EQ(loaded->num_false_by_predicate,
            synthetic.data.num_false_by_predicate);
  EXPECT_EQ(loaded->true_values, synthetic.data.true_values);
  ASSERT_EQ(loaded->size(), synthetic.data.size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    const auto& a = loaded->observations[i];
    const auto& b = synthetic.data.observations[i];
    EXPECT_EQ(a.extractor, b.extractor);
    EXPECT_EQ(a.pattern, b.pattern);
    EXPECT_EQ(a.website, b.website);
    EXPECT_EQ(a.page, b.page);
    EXPECT_EQ(a.item, b.item);
    EXPECT_EQ(a.value, b.value);
    EXPECT_FLOAT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.provided, b.provided);
  }
}

/// A minimal one-observation dataset with consistent meta counts.
extract::RawDataset OneObservationDataset() {
  extract::RawDataset data;
  extract::RawObservation obs;
  obs.extractor = 0;
  obs.pattern = 0;
  obs.website = 0;
  obs.page = 0;
  obs.item = kb::MakeDataItem(1, 0);
  obs.value = 2;
  data.observations.push_back(obs);
  data.num_false_by_predicate = {10};
  data.num_websites = 1;
  data.num_pages = 1;
  data.num_extractors = 1;
  data.num_patterns = 1;
  return data;
}

TEST(DatasetIoTest, ConfidenceRoundTripsExactly) {
  extract::RawDataset data = OneObservationDataset();
  data.observations[0].confidence = 0.123456789f;
  const extract::RawObservation obs = data.observations[0];

  const std::string path = TempPath("conf.tsv");
  ASSERT_TRUE(WriteRawDataset(path, data).ok());
  const auto loaded = ReadRawDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->observations[0].confidence, obs.confidence);
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  const auto result = ReadRawDataset(TempPath("does_not_exist.tsv"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, WrongHeaderRejected) {
  const std::string path = TempPath("bad_header.tsv");
  {
    std::ofstream out(path);
    out << "# some other file\nobs 0 0 0 0 1 2 1.0 1\n";
  }
  const auto result = ReadRawDataset(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, MalformedLineRejected) {
  const std::string path = TempPath("malformed.tsv");
  {
    std::ofstream out(path);
    out << "# kbt-raw-dataset v1\nobs 0 zero 0\n";
  }
  EXPECT_FALSE(ReadRawDataset(path).ok());
}

TEST(DatasetIoTest, DuplicateNfalseRejected) {
  const std::string path = TempPath("dup_nfalse.tsv");
  {
    std::ofstream out(path);
    out << "# kbt-raw-dataset v1\n"
           "meta 1 1 1 1\n"
           "nfalse 0 10\n"
           "nfalse 1 7\n"
           "nfalse 0 100\n"
           "obs 0 0 0 0 1 2 1.0 1\n";
  }
  const auto result = ReadRawDataset(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The error names the offending predicate and line.
  EXPECT_NE(result.status().message().find("predicate 0"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("line 5"), std::string::npos)
      << result.status().ToString();
}

TEST(DatasetIoTest, NfalseGapFilledByResizeMayStillBeDeclaredOnce) {
  const std::string path = TempPath("gap_nfalse.tsv");
  {
    // "nfalse 2" resizes predicates 0-1 to the default; declaring predicate
    // 1 afterwards is the first (and only) declaration, not a duplicate.
    std::ofstream out(path);
    out << "# kbt-raw-dataset v1\n"
           "meta 1 1 1 1\n"
           "nfalse 2 5\n"
           "nfalse 1 7\n"
           "obs 0 0 0 0 1 2 1.0 1\n";
  }
  const auto result = ReadRawDataset(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_false_by_predicate.size(), 3u);
  EXPECT_EQ(result->num_false_by_predicate[0], 10);  // Default fill.
  EXPECT_EQ(result->num_false_by_predicate[1], 7);
  EXPECT_EQ(result->num_false_by_predicate[2], 5);
}

TEST(DatasetIoTest, UnknownTagRejected) {
  const std::string path = TempPath("unknown_tag.tsv");
  {
    std::ofstream out(path);
    out << "# kbt-raw-dataset v1\nwhatever 1 2 3\n";
  }
  EXPECT_FALSE(ReadRawDataset(path).ok());
}

TEST(DatasetIoTest, ObservationIdBeyondMetaCountRejected) {
  for (const char* field : {"extractor", "pattern", "website", "page"}) {
    extract::RawDataset data = OneObservationDataset();
    extract::RawObservation& obs = data.observations[0];
    if (std::string(field) == "extractor") obs.extractor = 1;
    if (std::string(field) == "pattern") obs.pattern = 1;
    if (std::string(field) == "website") obs.website = 1;
    if (std::string(field) == "page") obs.page = 1;
    EXPECT_FALSE(ValidateRawDataset(data).ok()) << field;

    const std::string path = TempPath("out_of_range.tsv");
    ASSERT_TRUE(WriteRawDataset(path, data).ok());
    const auto loaded = ReadRawDataset(path);
    ASSERT_FALSE(loaded.ok()) << field;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument) << field;
  }
}

TEST(DatasetIoTest, UncoveredPredicateRejected) {
  extract::RawDataset data = OneObservationDataset();
  data.observations[0].item = kb::MakeDataItem(1, 3);  // nfalse has 1 entry.
  EXPECT_FALSE(ValidateRawDataset(data).ok());

  const std::string path = TempPath("uncovered_predicate.tsv");
  ASSERT_TRUE(WriteRawDataset(path, data).ok());
  const auto loaded = ReadRawDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, UncoveredTruthPredicateRejected) {
  extract::RawDataset data = OneObservationDataset();
  data.true_values[kb::MakeDataItem(0, 7)] = 1;
  EXPECT_FALSE(ValidateRawDataset(data).ok());
}

TEST(DatasetIoTest, NonPositiveDomainSizeRejected) {
  extract::RawDataset data = OneObservationDataset();
  data.num_false_by_predicate[0] = 0;
  EXPECT_FALSE(ValidateRawDataset(data).ok());
}

TEST(DatasetIoTest, InvalidValueIdRejected) {
  extract::RawDataset data = OneObservationDataset();
  data.observations[0].value = kb::kInvalidId;
  EXPECT_FALSE(ValidateRawDataset(data).ok());
}

TEST(DatasetIoTest, ValidDatasetPassesValidation) {
  EXPECT_TRUE(ValidateRawDataset(OneObservationDataset()).ok());
  extract::RawDataset empty;
  EXPECT_TRUE(ValidateRawDataset(empty).ok());
}

TEST(DatasetIoTest, PredictionsRoundTrip) {
  std::vector<eval::TriplePrediction> preds;
  preds.push_back(eval::TriplePrediction{kb::MakeDataItem(3, 1), 7,
                                         0.123456789012345, true});
  preds.push_back(eval::TriplePrediction{kb::MakeDataItem(4, 0), 9, 1e-9,
                                         false});
  const std::string path = TempPath("preds.tsv");
  ASSERT_TRUE(WriteTriplePredictions(path, preds).ok());
  const auto loaded = ReadTriplePredictions(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].item, preds[0].item);
  EXPECT_EQ((*loaded)[0].value, preds[0].value);
  EXPECT_DOUBLE_EQ((*loaded)[0].probability, preds[0].probability);
  EXPECT_TRUE((*loaded)[0].covered);
  EXPECT_FALSE((*loaded)[1].covered);
}

TEST(DatasetIoTest, KbtScoresRoundTrip) {
  std::vector<core::KbtScore> scores(3);
  scores[0].kbt = 0.875;
  scores[0].evidence = 12.5;
  scores[2].kbt = 0.25;
  scores[2].evidence = 5.0;
  const std::string path = TempPath("scores.tsv");
  ASSERT_TRUE(WriteKbtScores(path, scores).ok());
  const auto loaded = ReadKbtScores(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_DOUBLE_EQ((*loaded)[0].kbt, 0.875);
  EXPECT_DOUBLE_EQ((*loaded)[0].evidence, 12.5);
  EXPECT_DOUBLE_EQ((*loaded)[2].kbt, 0.25);
}

TEST(DatasetIoTest, EmptyDatasetRoundTrips) {
  extract::RawDataset empty;
  const std::string path = TempPath("empty.tsv");
  ASSERT_TRUE(WriteRawDataset(path, empty).ok());
  const auto loaded = ReadRawDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

// ---------------------------------------------------------------------------
// Observation timestamps (optional trailing column)
// ---------------------------------------------------------------------------

/// OneObservationDataset() widened to two observations so the all-or-none
/// timestamp rule has something to mix.
extract::RawDataset TwoObservationDataset() {
  extract::RawDataset data;
  data.num_false_by_predicate = {10};
  data.num_websites = 2;
  data.num_pages = 2;
  data.num_extractors = 1;
  data.num_patterns = 1;
  for (uint32_t site = 0; site < 2; ++site) {
    extract::RawObservation obs;
    obs.extractor = 0;
    obs.pattern = 0;
    obs.website = site;
    obs.page = site;
    obs.item = kb::MakeDataItem(1, 0);
    obs.value = 2;
    obs.confidence = 0.5f + 0.25f * site;
    data.observations.push_back(obs);
  }
  return data;
}

TEST(DatasetIoTest, TimestampsRoundTripExactly) {
  extract::RawDataset data = TwoObservationDataset();
  // Values chosen to stress %.17g round-tripping (non-representable
  // fraction, large epoch-seconds).
  data.observation_timestamps = {0.1, 1722470400.123456};
  const std::string path = TempPath("timestamped.tsv");
  ASSERT_TRUE(WriteRawDataset(path, data).ok());
  const auto loaded = ReadRawDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->observation_timestamps.size(), 2u);
  EXPECT_EQ(loaded->observation_timestamps[0], 0.1);
  EXPECT_EQ(loaded->observation_timestamps[1], 1722470400.123456);
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->observations[1].confidence, 0.75f);
}

TEST(DatasetIoTest, UntimestampedFilesStayUntimestamped) {
  extract::RawDataset data = TwoObservationDataset();
  const std::string path = TempPath("untimestamped.tsv");
  ASSERT_TRUE(WriteRawDataset(path, data).ok());
  // The written file has exactly the historical 8-field obs lines.
  std::ifstream in(path);
  std::string line;
  size_t obs_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("obs ", 0) != 0) continue;
    ++obs_lines;
    std::istringstream fields(line);
    std::string field;
    size_t count = 0;
    while (fields >> field) ++count;
    EXPECT_EQ(count, 9u) << line;  // "obs" + 8 fields, no timestamp.
  }
  EXPECT_EQ(obs_lines, 2u);
  const auto loaded = ReadRawDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->observation_timestamps.empty());
}

TEST(DatasetIoTest, NegativeTimestampRejected) {
  const std::string path = TempPath("negative_ts.tsv");
  std::ofstream out(path);
  out << "# kbt-raw-dataset v1\n"
      << "meta 1 1 1 1\n"
      << "nfalse 0 10\n"
      << "obs 0 0 0 0 4294967296 2 1 1 -5\n";
  out.close();
  const auto loaded = ReadRawDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, MalformedTimestampRejected) {
  const std::string path = TempPath("malformed_ts.tsv");
  std::ofstream out(path);
  out << "# kbt-raw-dataset v1\n"
      << "meta 1 1 1 1\n"
      << "nfalse 0 10\n"
      << "obs 0 0 0 0 4294967296 2 1 1 soon\n";
  out.close();
  const auto loaded = ReadRawDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, TrailingFieldAfterTimestampRejected) {
  const std::string path = TempPath("trailing_ts.tsv");
  std::ofstream out(path);
  out << "# kbt-raw-dataset v1\n"
      << "meta 1 1 1 1\n"
      << "nfalse 0 10\n"
      << "obs 0 0 0 0 4294967296 2 1 1 5 extra\n";
  out.close();
  const auto loaded = ReadRawDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, MixedTimestampPresenceRejected) {
  const std::string path = TempPath("mixed_ts.tsv");
  std::ofstream out(path);
  out << "# kbt-raw-dataset v1\n"
      << "meta 2 2 1 1\n"
      << "nfalse 0 10\n"
      << "obs 0 0 0 0 4294967296 2 1 1 5\n"
      << "obs 0 0 1 1 4294967296 2 1 1\n";  // Lacks the column: all-or-none.
  out.close();
  const auto loaded = ReadRawDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("all-or-none"), std::string::npos);
}

TEST(DatasetIoTest, MismatchedTimestampCountFailsValidation) {
  extract::RawDataset data = TwoObservationDataset();
  data.observation_timestamps = {1.0};  // 1 entry for 2 observations.
  EXPECT_EQ(ValidateRawDataset(data).code(), StatusCode::kInvalidArgument);
  const std::string path = TempPath("mismatched_ts.tsv");
  // WriteRawDataset treats a non-parallel vector as untimestamped rather
  // than inventing stamps.
  ASSERT_TRUE(WriteRawDataset(path, data).ok());
  const auto loaded = ReadRawDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->observation_timestamps.empty());
}

// ---------------------------------------------------------------------------
// DatasetFingerprint
// ---------------------------------------------------------------------------

TEST(DatasetFingerprintTest, EqualContentMeansEqualFingerprint) {
  exp::SyntheticConfig config;
  config.num_sources = 6;
  config.num_extractors = 3;
  config.seed = 4;
  const extract::RawDataset a = exp::GenerateSynthetic(config).data;
  const extract::RawDataset b = a;  // Copy: same content, separate storage.
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(b));
}

TEST(DatasetFingerprintTest, IndependentOfTrueValueInsertionOrder) {
  // true_values is an unordered_map, whose iteration order depends on the
  // insertion history; the fingerprint must not.
  extract::RawDataset forward = OneObservationDataset();
  extract::RawDataset backward = OneObservationDataset();
  for (uint32_t i = 0; i < 50; ++i) {
    forward.true_values[kb::MakeDataItem(i, 0)] = i + 1;
  }
  for (uint32_t i = 50; i-- > 0;) {
    backward.true_values[kb::MakeDataItem(i, 0)] = i + 1;
  }
  EXPECT_EQ(DatasetFingerprint(forward), DatasetFingerprint(backward));
}

TEST(DatasetFingerprintTest, SensitiveToEveryContentField) {
  const extract::RawDataset base = OneObservationDataset();
  const uint64_t fp = DatasetFingerprint(base);

  extract::RawDataset changed = base;
  changed.num_websites = 2;
  EXPECT_NE(DatasetFingerprint(changed), fp) << "meta count";

  changed = base;
  changed.num_false_by_predicate[0] = 11;
  EXPECT_NE(DatasetFingerprint(changed), fp) << "domain size";

  changed = base;
  changed.true_values[kb::MakeDataItem(1, 0)] = 2;
  EXPECT_NE(DatasetFingerprint(changed), fp) << "true value";

  changed = base;
  changed.observations[0].value = 3;
  EXPECT_NE(DatasetFingerprint(changed), fp) << "observation value";

  changed = base;
  changed.observations[0].confidence = 0.5f;
  EXPECT_NE(DatasetFingerprint(changed), fp) << "confidence bits";

  changed = base;
  changed.observations[0].provided = true;
  EXPECT_NE(DatasetFingerprint(changed), fp) << "provided flag";

  changed = base;
  changed.observations.push_back(changed.observations[0]);
  EXPECT_NE(DatasetFingerprint(changed), fp) << "appended observation";
}

TEST(DatasetFingerprintTest, ObservationOrderMatters) {
  // The observation list is an ordered sequence (appends extend it); two
  // cubes with the same events in a different order are different content.
  extract::RawDataset ab = OneObservationDataset();
  extract::RawObservation second = ab.observations[0];
  second.value = 3;
  ab.observations.push_back(second);
  extract::RawDataset ba = ab;
  std::swap(ba.observations[0], ba.observations[1]);
  EXPECT_NE(DatasetFingerprint(ab), DatasetFingerprint(ba));
}

TEST(DatasetFingerprintTest, StableAcrossTsvRoundTrip) {
  exp::SyntheticConfig config;
  config.num_sources = 5;
  config.num_extractors = 3;
  config.seed = 9;
  const extract::RawDataset data = exp::GenerateSynthetic(config).data;
  const std::string path = TempPath("fingerprint.tsv");
  ASSERT_TRUE(WriteRawDataset(path, data).ok());
  const auto loaded = ReadRawDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(DatasetFingerprint(*loaded), DatasetFingerprint(data));
}

TEST(DatasetFingerprintTest, PinnedGoldenValue) {
  // The fingerprint is a persistence cache key: its value for fixed
  // content must never drift across platforms, standard libraries or
  // refactors. Pin a small cube's exact value; if an intentional algorithm
  // change breaks this, bump the version constant inside
  // DatasetFingerprint and update the golden value here.
  extract::RawDataset data = OneObservationDataset();
  data.true_values[kb::MakeDataItem(1, 0)] = 2;
  const uint64_t fp = DatasetFingerprint(data);
  EXPECT_EQ(fp, DatasetFingerprint(data));  // Deterministic within-process.
  // Golden value computed by this implementation; see comment above.
  EXPECT_EQ(fp, UINT64_C(0x1b4e4b28ef7e4a2d));
}

}  // namespace
}  // namespace kbt::io
