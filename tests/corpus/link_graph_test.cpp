#include "corpus/link_graph.h"

#include <gtest/gtest.h>

namespace kbt::corpus {
namespace {

TEST(LinkGraphTest, FromEdgesBuildsCsr) {
  LinkGraph g = LinkGraph::FromEdges(4, {{0, 1}, {0, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  const auto [b, e] = g.OutRange(0);
  std::vector<uint32_t> targets(g.targets().begin() + b,
                                g.targets().begin() + e);
  EXPECT_EQ(targets, (std::vector<uint32_t>{1, 2}));
}

TEST(LinkGraphTest, DuplicateEdgesCollapse) {
  LinkGraph g = LinkGraph::FromEdges(2, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(LinkGraphTest, GenerateAvoidsSelfLoops) {
  std::vector<Website> sites(50);
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i].id = static_cast<uint32_t>(i);
    sites[i].popularity = 1.0;
  }
  Rng rng(9);
  LinkGraph g = LinkGraph::Generate(sites, 5.0, rng);
  EXPECT_EQ(g.num_nodes(), 50u);
  EXPECT_GT(g.num_edges(), 50u);
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    const auto [b, e] = g.OutRange(u);
    for (uint32_t k = b; k < e; ++k) {
      EXPECT_NE(g.targets()[k], u);
    }
  }
}

TEST(LinkGraphTest, PopularityAttractsInLinks) {
  std::vector<Website> sites(100);
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i].id = static_cast<uint32_t>(i);
    sites[i].popularity = i == 0 ? 100.0 : 1.0;
  }
  Rng rng(11);
  LinkGraph g = LinkGraph::Generate(sites, 8.0, rng);
  std::vector<int> in_degree(100, 0);
  for (uint32_t t : g.targets()) in_degree[t]++;
  int max_other = 0;
  for (size_t i = 1; i < 100; ++i) {
    max_other = std::max(max_other, in_degree[i]);
  }
  EXPECT_GT(in_degree[0], max_other);
}

TEST(LinkGraphTest, EmptyGraphIsValid) {
  LinkGraph g = LinkGraph::FromEdges(3, {});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.out_degree(1), 0u);
}

}  // namespace
}  // namespace kbt::corpus
