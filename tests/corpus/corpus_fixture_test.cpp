// tests/support/corpus_fixture.h is shared infrastructure (stream tests,
// benches, examples): pin its determinism and slicing contracts here so a
// drift in the generator or the fixture glue fails loudly in one place.
#include "support/corpus_fixture.h"

#include <gtest/gtest.h>

#include "io/dataset_io.h"

namespace kbt::testing {
namespace {

TEST(CorpusFixtureTest, SameOptionsProduceBitIdenticalDatasets) {
  CorpusFixtureOptions options;
  const auto a = MakeCorpusFixture(options);
  const auto b = MakeCorpusFixture(options);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_GT(a->dataset.size(), 0u);
  // The content fingerprint covers meta counts, truth and every
  // observation field bit-for-bit.
  EXPECT_EQ(io::DatasetFingerprint(a->dataset),
            io::DatasetFingerprint(b->dataset));
  EXPECT_EQ(a->corpus.num_pages(), b->corpus.num_pages());
}

TEST(CorpusFixtureTest, DifferentSeedsProduceDifferentDatasets) {
  CorpusFixtureOptions options;
  const auto a = MakeCorpusFixture(options);
  options.seed = options.seed + 1;
  const auto b = MakeCorpusFixture(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(io::DatasetFingerprint(a->dataset),
            io::DatasetFingerprint(b->dataset));
}

TEST(CorpusFixtureTest, FixtureValidatesAndIsPipelineReady) {
  const auto fixture = MakeCorpusFixture();
  ASSERT_TRUE(fixture.ok());
  EXPECT_TRUE(io::ValidateRawDataset(fixture->dataset).ok());
  EXPECT_GT(fixture->dataset.num_websites, 0u);
  EXPECT_GT(fixture->dataset.num_extractors, 0u);
  EXPECT_FALSE(fixture->dataset.true_values.empty());
}

TEST(CorpusFixtureTest, SliceObservationsPartitionsInOrder) {
  const auto fixture = MakeCorpusFixture();
  ASSERT_TRUE(fixture.ok());
  const auto& all = fixture->dataset.observations;

  for (const size_t num_batches : {1u, 3u, 7u}) {
    const auto slices = SliceObservations(fixture->dataset, num_batches);
    ASSERT_EQ(slices.size(), num_batches);
    // Sizes differ by at most one and partition the whole set.
    size_t total = 0;
    size_t min_size = all.size();
    size_t max_size = 0;
    for (const auto& slice : slices) {
      total += slice.size();
      min_size = std::min(min_size, slice.size());
      max_size = std::max(max_size, slice.size());
    }
    EXPECT_EQ(total, all.size()) << num_batches;
    EXPECT_LE(max_size - min_size, 1u) << num_batches;
    // Concatenating the slices replays the original order exactly.
    size_t index = 0;
    for (const auto& slice : slices) {
      for (const auto& obs : slice) {
        EXPECT_EQ(obs.item, all[index].item);
        EXPECT_EQ(obs.value, all[index].value);
        EXPECT_EQ(obs.website, all[index].website);
        ++index;
      }
    }
  }
}

TEST(CorpusFixtureTest, SliceObservationsEdgeCases) {
  const auto fixture = MakeCorpusFixture();
  ASSERT_TRUE(fixture.ok());
  EXPECT_TRUE(SliceObservations(fixture->dataset, 0).empty());

  extract::RawDataset empty;
  const auto slices = SliceObservations(empty, 4);
  ASSERT_EQ(slices.size(), 4u);
  for (const auto& slice : slices) EXPECT_TRUE(slice.empty());
}

}  // namespace
}  // namespace kbt::testing
