#include "corpus/corpus_generator.h"

#include <set>

#include <gtest/gtest.h>

namespace kbt::corpus {
namespace {

CorpusConfig SmallConfig() {
  CorpusConfig config;
  config.seed = 5;
  config.num_subjects = 200;
  config.num_predicates = 6;
  config.values_per_domain = 12;
  config.num_websites = 60;
  config.max_pages_per_site = 16;
  config.max_triples_per_page = 20;
  return config;
}

TEST(CorpusGeneratorTest, GeneratesConsistentStructure) {
  const auto corpus = CorpusGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_websites(), 60u);
  EXPECT_GT(corpus->num_pages(), 60u);  // At least one page per site.
  EXPECT_GT(corpus->num_provided(), 0u);

  // Page ids are dense and owned by their sites.
  for (const auto& site : corpus->websites()) {
    for (uint32_t p = site.first_page; p < site.first_page + site.num_pages;
         ++p) {
      EXPECT_EQ(corpus->page(p).website, site.id);
    }
  }
  // Every provided triple references a valid page and a real data item.
  for (const auto& t : corpus->provided()) {
    EXPECT_LT(t.page, corpus->num_pages());
    EXPECT_TRUE(corpus->world().ValueOf(t.item).has_value());
  }
}

TEST(CorpusGeneratorTest, DeterministicGivenSeed) {
  const auto a = CorpusGenerator(SmallConfig()).Generate();
  const auto b = CorpusGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_provided(), b->num_provided());
  for (size_t i = 0; i < a->num_provided(); ++i) {
    EXPECT_EQ(a->provided()[i].page, b->provided()[i].page);
    EXPECT_EQ(a->provided()[i].item, b->provided()[i].item);
    EXPECT_EQ(a->provided()[i].value, b->provided()[i].value);
  }
}

TEST(CorpusGeneratorTest, IsTrueFlagsMatchWorld) {
  const auto corpus = CorpusGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(corpus.ok());
  for (const auto& t : corpus->provided()) {
    const auto truth = corpus->world().ValueOf(t.item);
    ASSERT_TRUE(truth.has_value());
    EXPECT_EQ(t.is_true, *truth == t.value);
  }
}

TEST(CorpusGeneratorTest, SiteAccuracyControlsErrorRate) {
  const auto corpus = CorpusGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(corpus.ok());
  // Sites with high configured accuracy state mostly-true triples; the
  // empirical rate should track the configured one.
  double err = 0.0;
  int counted = 0;
  for (const auto& site : corpus->websites()) {
    if (site.category == SourceCategory::kScraper) continue;
    size_t total = 0;
    for (uint32_t p = site.first_page; p < site.first_page + site.num_pages;
         ++p) {
      const auto [b, e] = corpus->PageTripleRange(p);
      total += e - b;
    }
    if (total < 30) continue;  // Too small to compare rates.
    err += std::fabs(corpus->EmpiricalSiteAccuracy(site.id) - site.accuracy);
    ++counted;
  }
  ASSERT_GT(counted, 3);
  EXPECT_LT(err / counted, 0.12);
}

TEST(CorpusGeneratorTest, CategoriesShapeAccuracy) {
  CorpusConfig config = SmallConfig();
  config.num_websites = 400;
  const auto corpus = CorpusGenerator(config).Generate();
  ASSERT_TRUE(corpus.ok());
  double specialist = 0.0;
  double gossip = 0.0;
  int ns = 0;
  int ng = 0;
  for (const auto& site : corpus->websites()) {
    if (site.category == SourceCategory::kSpecialist) {
      specialist += site.accuracy;
      ++ns;
    }
    if (site.category == SourceCategory::kGossip) {
      gossip += site.accuracy;
      ++ng;
    }
  }
  ASSERT_GT(ns, 5);
  ASSERT_GT(ng, 5);
  EXPECT_GT(specialist / ns, gossip / ng + 0.3);
}

TEST(CorpusGeneratorTest, ScrapersCopyVictimContent) {
  CorpusConfig config = SmallConfig();
  config.num_websites = 300;
  const auto corpus = CorpusGenerator(config).Generate();
  ASSERT_TRUE(corpus.ok());
  int scrapers_with_victims = 0;
  for (const auto& site : corpus->websites()) {
    if (site.category != SourceCategory::kScraper ||
        site.scrape_victim == kb::kInvalidId) {
      continue;
    }
    ++scrapers_with_victims;
    // Every scraped triple appears in the victim's provided set.
    const auto& victim = corpus->website(site.scrape_victim);
    std::set<std::pair<kb::DataItemId, kb::ValueId>> victim_triples;
    for (uint32_t p = victim.first_page;
         p < victim.first_page + victim.num_pages; ++p) {
      const auto [b, e] = corpus->PageTripleRange(p);
      for (uint32_t i = b; i < e; ++i) {
        victim_triples.emplace(corpus->provided()[i].item,
                               corpus->provided()[i].value);
      }
    }
    for (uint32_t p = site.first_page; p < site.first_page + site.num_pages;
         ++p) {
      const auto [b, e] = corpus->PageTripleRange(p);
      for (uint32_t i = b; i < e; ++i) {
        EXPECT_TRUE(victim_triples.count({corpus->provided()[i].item,
                                          corpus->provided()[i].value}) > 0);
      }
    }
  }
  EXPECT_GT(scrapers_with_victims, 0);
}

TEST(CorpusGeneratorTest, ValuePoolsSupportTypeChecking) {
  const auto corpus = CorpusGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(corpus.ok());
  const auto& world = corpus->world();
  for (uint32_t p = 0; p < world.num_predicates(); ++p) {
    const auto& schema = world.predicate(p);
    for (kb::ValueId v : corpus->ValuePool(p)) {
      EXPECT_EQ(world.entity_type(v), schema.object_type);
    }
    // Corruption-pool entries must violate type or range rules.
    EXPECT_FALSE(corpus->CorruptionPool(p).empty());
  }
}

TEST(CorpusGeneratorTest, ValidatesConfig) {
  CorpusConfig bad = SmallConfig();
  bad.num_websites = 0;
  EXPECT_FALSE(CorpusGenerator(bad).Generate().ok());
  bad = SmallConfig();
  bad.values_per_domain = 1;
  EXPECT_FALSE(CorpusGenerator(bad).Generate().ok());
  bad = SmallConfig();
  bad.item_density = 0.0;
  EXPECT_FALSE(CorpusGenerator(bad).Generate().ok());
  bad = SmallConfig();
  bad.min_triples_per_page = 5;
  bad.max_triples_per_page = 2;
  EXPECT_FALSE(CorpusGenerator(bad).Generate().ok());
}

TEST(CorpusGeneratorTest, PagesPerSiteAreLongTailed) {
  CorpusConfig config = SmallConfig();
  config.num_websites = 300;
  config.max_pages_per_site = 64;
  const auto corpus = CorpusGenerator(config).Generate();
  ASSERT_TRUE(corpus.ok());
  size_t single_page = 0;
  size_t big = 0;
  for (const auto& site : corpus->websites()) {
    if (site.num_pages == 1) ++single_page;
    if (site.num_pages >= 16) ++big;
  }
  // Zipf: most sites tiny, a few big ones exist.
  EXPECT_GT(single_page, corpus->num_websites() / 3);
  EXPECT_GT(big, 0u);
}

}  // namespace
}  // namespace kbt::corpus
