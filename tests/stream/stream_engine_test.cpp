// StreamEngine tests. The load-bearing guarantee: with decay off, one
// Tick is EXACTLY the batch path — AppendObservations + Run/RunFrom +
// PublishSnapshot — bit for bit, on plain and sharded backends alike. On
// top of that: time-decay semantics, snapshot history / AsOf time travel,
// and top-mover alerts across generations.
#include "kbt/stream.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "kbt/kbt.h"
#include "kbt/shard.h"
#include "support/corpus_fixture.h"

namespace kbt::stream {
namespace {

api::Options SmallOptions() {
  api::Options options;
  options.granularity = api::Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  return options;
}

/// The generated fixture cube, with only the first slice's observations
/// kept as the seed (the remaining slices replay through feeds).
struct StreamWorld {
  extract::RawDataset seed;
  std::vector<std::vector<extract::RawObservation>> batches;
};

StreamWorld MakeStreamWorld(size_t num_batches) {
  kbt::testing::CorpusFixtureOptions options;
  options.num_subjects = 80;
  options.num_websites = 25;
  options.num_extractors = 4;
  auto fixture = kbt::testing::MakeCorpusFixture(options);
  EXPECT_TRUE(fixture.ok());
  StreamWorld world;
  world.batches =
      kbt::testing::SliceObservations(fixture->dataset, num_batches + 1);
  world.seed = std::move(fixture->dataset);
  world.seed.observations = std::move(world.batches.front());
  world.batches.erase(world.batches.begin());
  return world;
}

std::vector<TimedObservation> Timed(
    const std::vector<extract::RawObservation>& batch, double timestamp) {
  std::vector<TimedObservation> timed;
  timed.reserve(batch.size());
  for (const extract::RawObservation& obs : batch) {
    timed.push_back(TimedObservation{obs, timestamp});
  }
  return timed;
}

void ExpectSnapshotsEqual(const query::Snapshot& a, const query::Snapshot& b) {
  ASSERT_EQ(a.num_sources(), b.num_sources());
  ASSERT_EQ(a.num_websites(), b.num_websites());
  ASSERT_EQ(a.num_triples(), b.num_triples());
  for (uint32_t s = 0; s < a.num_sources(); ++s) {
    const auto sa = a.SourceTrust(s);
    const auto sb = b.SourceTrust(s);
    ASSERT_TRUE(sa.has_value());
    ASSERT_TRUE(sb.has_value());
    // Bit-for-bit: both paths must execute the same float program.
    ASSERT_EQ(sa->kbt, sb->kbt) << "source " << s;
    ASSERT_EQ(sa->evidence, sb->evidence) << "source " << s;
  }
  for (uint32_t w = 0; w < a.num_websites(); ++w) {
    const auto wa = a.WebsiteTrust(w);
    const auto wb = b.WebsiteTrust(w);
    ASSERT_TRUE(wa.has_value());
    ASSERT_TRUE(wb.has_value());
    ASSERT_EQ(wa->kbt, wb->kbt) << "website " << w;
    ASSERT_EQ(wa->evidence, wb->evidence) << "website " << w;
  }
  const auto ta = a.TopKTriples(a.num_triples());
  const auto tb = b.TopKTriples(b.num_triples());
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].item, tb[i].item) << i;
    ASSERT_EQ(ta[i].value, tb[i].value) << i;
    ASSERT_EQ(ta[i].probability, tb[i].probability) << i;
    ASSERT_EQ(ta[i].covered, tb[i].covered) << i;
  }
}

// ---------------------------------------------------------------------------
// Decay-off parity: tick == batch, bit for bit.
// ---------------------------------------------------------------------------

TEST(StreamEngineParityTest, DecayOffTicksMatchBatchPipelineBitForBit) {
  const StreamWorld world = MakeStreamWorld(2);

  auto streamed = api::PipelineBuilder()
                      .FromDataset(world.seed)
                      .WithOptions(SmallOptions())
                      .Build();
  ASSERT_TRUE(streamed.ok());
  auto batch = api::PipelineBuilder()
                   .FromDataset(world.seed)
                   .WithOptions(SmallOptions())
                   .Build();
  ASSERT_TRUE(batch.ok());

  auto feed = std::make_shared<QueueFeed>();
  auto engine =
      StreamEngine::Create(&*streamed, feed, StreamOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // First tick: no previous report, so the engine cold-runs — exactly
  // append + Run() + publish.
  feed->PushBatch(Timed(world.batches[0], 10.0));
  const auto tick1 = (*engine)->Tick(10.0);
  ASSERT_TRUE(tick1.ok()) << tick1.status().ToString();
  ASSERT_TRUE(tick1->published);
  EXPECT_EQ(tick1->observations_ingested, world.batches[0].size());
  EXPECT_FALSE(tick1->diff.has_value());

  ASSERT_TRUE(batch->AppendObservations(world.batches[0]).ok());
  const auto run1 = batch->Run();
  ASSERT_TRUE(run1.ok());
  const auto published1 = batch->PublishSnapshot(*run1, 10.0);
  ExpectSnapshotsEqual(*tick1->snapshot, *published1);

  // Second tick warm-starts from the first: append + RunFrom + publish.
  feed->PushBatch(Timed(world.batches[1], 20.0));
  const auto tick2 = (*engine)->Tick(20.0);
  ASSERT_TRUE(tick2.ok()) << tick2.status().ToString();
  ASSERT_TRUE(tick2->published);
  ASSERT_TRUE(tick2->diff.has_value());
  EXPECT_EQ(tick2->diff->before_sequence, tick1->sequence);
  EXPECT_EQ(tick2->diff->after_sequence, tick2->sequence);

  ASSERT_TRUE(batch->AppendObservations(world.batches[1]).ok());
  const auto run2 = batch->RunFrom(*run1);
  ASSERT_TRUE(run2.ok());
  const auto published2 = batch->PublishSnapshot(*run2, 20.0);
  ExpectSnapshotsEqual(*tick2->snapshot, *published2);

  const StreamStats stats = (*engine)->stats();
  EXPECT_EQ(stats.ticks, 2u);
  EXPECT_EQ(stats.empty_ticks, 0u);
  EXPECT_EQ(stats.generations_published, 2u);
  EXPECT_EQ(stats.observations_ingested,
            world.batches[0].size() + world.batches[1].size());
}

TEST(StreamEngineParityTest, ColdStartOptionRerunsFromPriorsEachTick) {
  const StreamWorld world = MakeStreamWorld(2);
  auto streamed = api::PipelineBuilder()
                      .FromDataset(world.seed)
                      .WithOptions(SmallOptions())
                      .Build();
  ASSERT_TRUE(streamed.ok());
  auto batch = api::PipelineBuilder()
                   .FromDataset(world.seed)
                   .WithOptions(SmallOptions())
                   .Build();
  ASSERT_TRUE(batch.ok());

  StreamOptions options;
  options.warm_start = false;
  auto feed = std::make_shared<QueueFeed>();
  auto engine = StreamEngine::Create(&*streamed, feed, options);
  ASSERT_TRUE(engine.ok());

  feed->PushBatch(Timed(world.batches[0], 1.0));
  ASSERT_TRUE((*engine)->Tick(1.0).ok());
  feed->PushBatch(Timed(world.batches[1], 2.0));
  const auto tick2 = (*engine)->Tick(2.0);
  ASSERT_TRUE(tick2.ok());

  ASSERT_TRUE(batch->AppendObservations(world.batches[0]).ok());
  ASSERT_TRUE(batch->AppendObservations(world.batches[1]).ok());
  const auto cold = batch->Run();  // cold: priors, not the previous report
  ASSERT_TRUE(cold.ok());
  ExpectSnapshotsEqual(*tick2->snapshot, *batch->PublishSnapshot(*cold));
}

TEST(StreamEngineParityTest, ShardedTicksMatchShardedBatchBitForBit) {
  const StreamWorld world = MakeStreamWorld(2);
  api::ShardOptions shard_options;
  shard_options.num_shards = 3;

  auto streamed = api::ShardedPipeline::Create(world.seed, SmallOptions(),
                                               shard_options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  auto batch = api::ShardedPipeline::Create(world.seed, SmallOptions(),
                                            shard_options);
  ASSERT_TRUE(batch.ok());

  auto feed = std::make_shared<QueueFeed>();
  auto engine = StreamEngine::Create(&*streamed, feed, StreamOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  feed->PushBatch(Timed(world.batches[0], 10.0));
  const auto tick1 = (*engine)->Tick(10.0);
  ASSERT_TRUE(tick1.ok()) << tick1.status().ToString();
  ASSERT_TRUE(batch->AppendObservations(world.batches[0]).ok());
  const auto run1 = batch->Run();
  ASSERT_TRUE(run1.ok());
  ExpectSnapshotsEqual(*tick1->snapshot, *batch->PublishSnapshot(*run1, 10.0));

  // Warm-started second tick: each shard re-runs from its own report.
  feed->PushBatch(Timed(world.batches[1], 20.0));
  const auto tick2 = (*engine)->Tick(20.0);
  ASSERT_TRUE(tick2.ok());
  ASSERT_TRUE(batch->AppendObservations(world.batches[1]).ok());
  const auto run2 = batch->RunFrom(*run1);
  ASSERT_TRUE(run2.ok());
  ExpectSnapshotsEqual(*tick2->snapshot, *batch->PublishSnapshot(*run2, 20.0));
}

// ---------------------------------------------------------------------------
// Engine contract details.
// ---------------------------------------------------------------------------

TEST(StreamEngineTest, EmptyFeedTickIsANoOp) {
  const StreamWorld world = MakeStreamWorld(1);
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(world.seed)
                      .WithOptions(SmallOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  auto feed = std::make_shared<QueueFeed>();
  auto engine = StreamEngine::Create(&*pipeline, feed, StreamOptions{});
  ASSERT_TRUE(engine.ok());

  const auto tick = (*engine)->Tick(1.0);
  ASSERT_TRUE(tick.ok());
  EXPECT_FALSE(tick->published);
  EXPECT_EQ(tick->observations_ingested, 0u);
  EXPECT_EQ(tick->snapshot, nullptr);
  const StreamStats stats = (*engine)->stats();
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.empty_ticks, 1u);
  EXPECT_EQ(stats.generations_published, 0u);
  // Nothing was published on the registry either.
  EXPECT_EQ((*engine)->snapshot_registry()->version(), 0u);
}

TEST(StreamEngineTest, NullPipelineOrFeedIsRejected) {
  auto feed = std::make_shared<QueueFeed>();
  EXPECT_EQ(StreamEngine::Create(static_cast<api::Pipeline*>(nullptr), feed,
                                 StreamOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const StreamWorld world = MakeStreamWorld(1);
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(world.seed)
                      .WithOptions(SmallOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(StreamEngine::Create(&*pipeline, nullptr, StreamOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamEngineTest, DecayOnShardedBackendIsRejected) {
  const StreamWorld world = MakeStreamWorld(1);
  auto sharded = api::ShardedPipeline::Create(world.seed, SmallOptions(),
                                              api::ShardOptions{});
  ASSERT_TRUE(sharded.ok());
  StreamOptions options;
  options.decay_half_life = 60.0;
  const auto engine =
      StreamEngine::Create(&*sharded, std::make_shared<QueueFeed>(), options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamEngineTest, RejectedAppendPoisonsTheTickButNotTheEngine) {
  const StreamWorld world = MakeStreamWorld(2);
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(world.seed)
                      .WithOptions(SmallOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  auto feed = std::make_shared<QueueFeed>();
  auto engine = StreamEngine::Create(&*pipeline, feed, StreamOptions{});
  ASSERT_TRUE(engine.ok());

  extract::RawObservation bad = world.batches[0][0];
  bad.value = kb::kInvalidId;
  feed->Push(TimedObservation{bad, 1.0});
  const auto poisoned = (*engine)->Tick(1.0);
  ASSERT_FALSE(poisoned.ok());
  EXPECT_EQ(poisoned.status().code(), StatusCode::kInvalidArgument);
  // The batch was rejected whole: the dataset is untouched and the next
  // (well-formed) tick proceeds normally.
  EXPECT_EQ(pipeline->dataset().size(), world.seed.size());
  feed->PushBatch(Timed(world.batches[0], 2.0));
  const auto recovered = (*engine)->Tick(2.0);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->published);
}

// ---------------------------------------------------------------------------
// Time-decay semantics.
// ---------------------------------------------------------------------------

/// One-extractor observation: site `site` (page = site) claims `value` for
/// item `item`.
extract::RawObservation Claim(uint32_t site, uint32_t item, kb::ValueId value,
                              float confidence = 1.0f) {
  extract::RawObservation obs;
  obs.extractor = 0;
  obs.pattern = 0;
  obs.website = site;
  obs.page = site;
  obs.item = kb::MakeDataItem(item, 0);
  obs.value = value;
  obs.confidence = confidence;
  return obs;
}

/// `num_sites` sites, one page each, one extractor, predicate 0 (n = 10).
extract::RawDataset TinyCube(uint32_t num_sites) {
  extract::RawDataset data;
  data.num_false_by_predicate = {10};
  data.num_websites = num_sites;
  data.num_pages = num_sites;
  data.num_extractors = 1;
  data.num_patterns = 1;
  return data;
}

TEST(StreamDecayTest, FreshClaimsOutweighDecayedOnes) {
  // Site 0 claimed value 1 at t = 0; site 1 claims value 2 at t = 1000.
  // With a 100 s half-life evaluated at t = 1000 the old claim carries
  // weight 2^-10 — the fresh claim must dominate the item's belief. With
  // decay off the two claims stay symmetric.
  auto run_stream = [](double half_life) {
    extract::RawDataset seed = TinyCube(2);
    seed.observations = {Claim(0, 0, 1)};
    seed.observation_timestamps = {0.0};
    auto pipeline = api::PipelineBuilder()
                        .FromDataset(std::move(seed))
                        .WithOptions(SmallOptions())
                        .Build();
    EXPECT_TRUE(pipeline.ok());
    auto feed = std::make_shared<QueueFeed>();
    StreamOptions options;
    options.decay_half_life = half_life;
    auto engine = StreamEngine::Create(&*pipeline, feed, options);
    EXPECT_TRUE(engine.ok());
    feed->Push(TimedObservation{Claim(1, 0, 2), 1000.0});
    auto tick = (*engine)->Tick(1000.0);
    EXPECT_TRUE(tick.ok()) << tick.status().ToString();
    const auto old_claim = tick->snapshot->TripleTruth(kb::MakeDataItem(0, 0), 1);
    const auto new_claim = tick->snapshot->TripleTruth(kb::MakeDataItem(0, 0), 2);
    EXPECT_TRUE(old_claim.has_value());
    EXPECT_TRUE(new_claim.has_value());
    return std::make_pair(old_claim->probability, new_claim->probability);
  };

  const auto decayed = run_stream(100.0);
  EXPECT_GT(decayed.second, decayed.first)
      << "fresh claim must dominate under decay";

  const auto undecayed = run_stream(0.0);
  EXPECT_EQ(undecayed.first, undecayed.second)
      << "identical claims must stay symmetric without decay";
}

TEST(StreamDecayTest, FutureDatedObservationsClampToFullWeight) {
  extract::RawDataset seed = TinyCube(2);
  seed.observations = {Claim(0, 0, 1)};
  seed.observation_timestamps = {50.0};
  auto pipeline = api::PipelineBuilder()
                      .FromDataset(std::move(seed))
                      .WithOptions(SmallOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  auto feed = std::make_shared<QueueFeed>();
  StreamOptions options;
  options.decay_half_life = 10.0;
  auto engine = StreamEngine::Create(&*pipeline, feed, options);
  ASSERT_TRUE(engine.ok());
  // Both observations are at-or-after `now` (= 40): both clamp to weight 1,
  // so beliefs stay symmetric — a future date is not a boost.
  feed->Push(TimedObservation{Claim(1, 0, 2), 40.0});
  const auto tick = (*engine)->Tick(40.0);
  ASSERT_TRUE(tick.ok());
  const auto a = tick->snapshot->TripleTruth(kb::MakeDataItem(0, 0), 1);
  const auto b = tick->snapshot->TripleTruth(kb::MakeDataItem(0, 0), 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->probability, b->probability);
}

// ---------------------------------------------------------------------------
// End-to-end: history, AsOf and alerts across >= 3 generations.
// ---------------------------------------------------------------------------

TEST(StreamHistoryTest, AsOfAndTrustDropAlertsAcrossGenerations) {
  // Seed: four sites agree on items 0-1. Generation 2 has site 3 contradict
  // the consensus on items 3-5, so its trust must drop and the watching
  // rules must fire.
  extract::RawDataset seed = TinyCube(4);
  for (uint32_t site = 0; site < 4; ++site) {
    seed.observations.push_back(Claim(site, 0, 1));
    seed.observations.push_back(Claim(site, 1, 1));
  }

  auto pipeline = api::PipelineBuilder()
                      .FromDataset(std::move(seed))
                      .WithOptions(SmallOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());

  std::vector<Alert> callback_alerts;
  StreamOptions options;
  options.history_capacity = 3;
  options.diff_top_k = 8;
  options.alert_rules.push_back(
      AlertRule{"any-drop-site-3", AlertTarget::kWebsites, 0.0, 0.0, 3});
  options.alert_rules.push_back(
      AlertRule{"relative-drop", AlertTarget::kWebsites, 0.0, 0.05,
                std::nullopt});
  options.alert_callback = [&callback_alerts](const Alert& alert) {
    callback_alerts.push_back(alert);
  };

  auto feed = std::make_shared<QueueFeed>();
  auto engine = StreamEngine::Create(&*pipeline, feed, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Generation 1 (t = 100): more consensus.
  std::vector<TimedObservation> gen1;
  for (uint32_t site = 0; site < 4; ++site) {
    gen1.push_back(TimedObservation{Claim(site, 2, 1), 100.0});
  }
  feed->PushBatch(gen1);
  const auto tick1 = (*engine)->Tick(100.0);
  ASSERT_TRUE(tick1.ok()) << tick1.status().ToString();
  EXPECT_TRUE(tick1->alerts.empty());  // Nothing to compare against yet.
  const double site3_before = tick1->snapshot->WebsiteTrust(3)->kbt;

  // Generation 2 (t = 200): site 3 turns against the consensus.
  std::vector<TimedObservation> gen2;
  for (uint32_t item = 3; item <= 5; ++item) {
    for (uint32_t site = 0; site < 3; ++site) {
      gen2.push_back(TimedObservation{Claim(site, item, 1), 200.0});
    }
    gen2.push_back(TimedObservation{Claim(3, item, 2), 200.0});
  }
  feed->PushBatch(gen2);
  const auto tick2 = (*engine)->Tick(200.0);
  ASSERT_TRUE(tick2.ok());
  const double site3_after = tick2->snapshot->WebsiteTrust(3)->kbt;
  ASSERT_LT(site3_after, site3_before);

  // The id-pinned rule fired, stamped with the movement it measured.
  ASSERT_FALSE(tick2->alerts.empty());
  const Alert& alert = tick2->alerts.front();
  EXPECT_EQ(alert.rule, "any-drop-site-3");
  EXPECT_EQ(alert.id, 3u);
  EXPECT_EQ(alert.before_kbt, site3_before);
  EXPECT_EQ(alert.after_kbt, site3_after);
  EXPECT_EQ(alert.before_sequence, tick1->sequence);
  EXPECT_EQ(alert.after_sequence, tick2->sequence);
  EXPECT_EQ(alert.time, 200.0);
  // The callback saw exactly the returned alerts, in order.
  ASSERT_EQ(callback_alerts.size(), tick2->alerts.size());
  EXPECT_EQ(callback_alerts.front().rule, tick2->alerts.front().rule);
  // The diff ranks site 3 among the movers.
  ASSERT_TRUE(tick2->diff.has_value());
  bool site3_moved = false;
  for (const query::SourceMove& move : tick2->diff->top_website_moves) {
    if (move.id == 3 && move.delta < 0.0) site3_moved = true;
  }
  EXPECT_TRUE(site3_moved);

  // Generation 3 (t = 300): consensus resumes.
  std::vector<TimedObservation> gen3;
  for (uint32_t site = 0; site < 4; ++site) {
    gen3.push_back(TimedObservation{Claim(site, 6, 1), 300.0});
  }
  feed->PushBatch(gen3);
  const auto tick3 = (*engine)->Tick(300.0);
  ASSERT_TRUE(tick3.ok());

  // History retains all three generations, oldest first.
  const auto registry = (*engine)->snapshot_registry();
  const auto history = registry->History();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].sequence, tick1->sequence);
  EXPECT_EQ(history[0].publish_time, 100.0);
  EXPECT_EQ(history[2].sequence, tick3->sequence);
  EXPECT_EQ(history[2].publish_time, 300.0);

  // AsOf time travel across the ring.
  EXPECT_EQ(registry->AsOf(50.0), nullptr);  // Before the first generation.
  const auto at100 = registry->AsOf(100.0);
  ASSERT_NE(at100, nullptr);
  EXPECT_EQ(at100->info().sequence, tick1->sequence);
  const auto at250 = registry->AsOf(250.0);
  ASSERT_NE(at250, nullptr);
  EXPECT_EQ(at250->info().sequence, tick2->sequence);
  // The generation-2 view really serves the pre-recovery scores.
  EXPECT_EQ(at250->WebsiteTrust(3)->kbt, site3_after);
  const auto latest = registry->AsOf(1e9);
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->info().sequence, tick3->sequence);

  const StreamStats stats = (*engine)->stats();
  EXPECT_EQ(stats.generations_published, 3u);
  EXPECT_EQ(stats.alerts_fired, callback_alerts.size());
}

}  // namespace
}  // namespace kbt::stream
