// TrustService streaming surface: AttachStream / DetachStream / SubmitTick
// / StreamingStats contracts, parity of service-driven ticks with the
// direct batch pipeline (plain AND sharded sessions), interleaving with
// coalesced appends, and the background ticker lifecycle.
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "kbt/kbt.h"
#include "kbt/service.h"
#include "kbt/shard.h"
#include "kbt/stream.h"
#include "support/corpus_fixture.h"

namespace kbt::api {
namespace {

Options SmallOptions() {
  Options options;
  options.granularity = Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  return options;
}

struct StreamWorld {
  extract::RawDataset seed;
  std::vector<std::vector<extract::RawObservation>> batches;
};

StreamWorld MakeStreamWorld(size_t num_batches) {
  kbt::testing::CorpusFixtureOptions options;
  options.num_subjects = 60;
  options.num_websites = 20;
  options.num_extractors = 3;
  auto fixture = kbt::testing::MakeCorpusFixture(options);
  EXPECT_TRUE(fixture.ok());
  StreamWorld world;
  world.batches =
      kbt::testing::SliceObservations(fixture->dataset, num_batches + 1);
  world.seed = std::move(fixture->dataset);
  world.seed.observations = std::move(world.batches.front());
  world.batches.erase(world.batches.begin());
  return world;
}

std::vector<stream::TimedObservation> Timed(
    const std::vector<extract::RawObservation>& batch, double timestamp) {
  std::vector<stream::TimedObservation> timed;
  timed.reserve(batch.size());
  for (const extract::RawObservation& obs : batch) {
    timed.push_back(stream::TimedObservation{obs, timestamp});
  }
  return timed;
}

Status CreatePlainSession(TrustService& service, const std::string& name,
                          const extract::RawDataset& seed) {
  auto pipeline = PipelineBuilder()
                      .FromDataset(seed)
                      .WithOptions(SmallOptions())
                      .Build();
  if (!pipeline.ok()) return pipeline.status();
  return service.CreateSession(name, std::move(*pipeline));
}

void ExpectSnapshotsEqual(const query::Snapshot& a, const query::Snapshot& b) {
  ASSERT_EQ(a.num_sources(), b.num_sources());
  ASSERT_EQ(a.num_websites(), b.num_websites());
  ASSERT_EQ(a.num_triples(), b.num_triples());
  for (uint32_t w = 0; w < a.num_websites(); ++w) {
    const auto wa = a.WebsiteTrust(w);
    const auto wb = b.WebsiteTrust(w);
    ASSERT_TRUE(wa.has_value());
    ASSERT_TRUE(wb.has_value());
    ASSERT_EQ(wa->kbt, wb->kbt) << "website " << w;
    ASSERT_EQ(wa->evidence, wb->evidence) << "website " << w;
  }
  const auto ta = a.TopKTriples(a.num_triples());
  const auto tb = b.TopKTriples(b.num_triples());
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    ASSERT_EQ(ta[i].item, tb[i].item) << i;
    ASSERT_EQ(ta[i].value, tb[i].value) << i;
    ASSERT_EQ(ta[i].probability, tb[i].probability) << i;
  }
}

// ---------------------------------------------------------------------------
// Contracts.
// ---------------------------------------------------------------------------

TEST(ServiceStreamTest, StreamCallsOnMissingSessionAreNotFound) {
  TrustService service;
  auto feed = std::make_shared<stream::QueueFeed>();
  EXPECT_EQ(service.AttachStream("ghost", feed, {}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.DetachStream("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.SubmitTick("ghost", 1.0).get().status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.StreamingStats("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(ServiceStreamTest, AttachDetachLifecycle) {
  const StreamWorld world = MakeStreamWorld(1);
  TrustService service;
  ASSERT_TRUE(CreatePlainSession(service, "s", world.seed)
                  .ok());

  // Streamless session: tick and stats are FailedPrecondition, detach too.
  EXPECT_EQ(service.SubmitTick("s", 1.0).get().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.StreamingStats("s").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.DetachStream("s").code(),
            StatusCode::kFailedPrecondition);

  auto feed = std::make_shared<stream::QueueFeed>();
  ASSERT_TRUE(service.AttachStream("s", feed, {}).ok());
  // Double attach is rejected until the first stream detaches.
  EXPECT_EQ(service.AttachStream("s", feed, {}).code(),
            StatusCode::kFailedPrecondition);

  const auto stats = service.StreamingStats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ticks, 0u);

  ASSERT_TRUE(service.DetachStream("s").ok());
  EXPECT_EQ(service.StreamingStats("s").status().code(),
            StatusCode::kFailedPrecondition);
  // Re-attach after detach works.
  ASSERT_TRUE(service.AttachStream("s", feed, {}).ok());
  ASSERT_TRUE(service.CloseSession("s").ok());  // Detaches implicitly.
}

TEST(ServiceStreamTest, NullFeedAndShardedDecayAreInvalidArgument) {
  const StreamWorld world = MakeStreamWorld(1);
  TrustService service;
  ASSERT_TRUE(CreatePlainSession(service, "plain", world.seed)
                  .ok());
  EXPECT_EQ(service.AttachStream("plain", nullptr, {}).code(),
            StatusCode::kInvalidArgument);

  auto sharded = ShardedPipeline::Create(world.seed, SmallOptions(),
                                         ShardOptions{});
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(
      service.CreateShardedSession("sharded", std::move(*sharded)).ok());
  stream::StreamOptions decay;
  decay.decay_half_life = 60.0;
  // The engine's sharded-decay rejection surfaces through AttachStream,
  // and the session is left stream-free (a later attach succeeds).
  EXPECT_EQ(service
                .AttachStream("sharded",
                              std::make_shared<stream::QueueFeed>(), decay)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(service
                  .AttachStream("sharded",
                                std::make_shared<stream::QueueFeed>(), {})
                  .ok());
}

// ---------------------------------------------------------------------------
// Parity through the service.
// ---------------------------------------------------------------------------

TEST(ServiceStreamTest, TicksThroughPlainSessionMatchBatchPipeline) {
  const StreamWorld world = MakeStreamWorld(2);

  TrustService service;
  ASSERT_TRUE(CreatePlainSession(service, "s", world.seed)
                  .ok());
  auto feed = std::make_shared<stream::QueueFeed>();
  ASSERT_TRUE(service.AttachStream("s", feed, {}).ok());

  auto batch = PipelineBuilder()
                   .FromDataset(world.seed)
                   .WithOptions(SmallOptions())
                   .Build();
  ASSERT_TRUE(batch.ok());

  feed->PushBatch(Timed(world.batches[0], 10.0));
  const auto tick1 = service.SubmitTick("s", 10.0).get();
  ASSERT_TRUE(tick1.ok()) << tick1.status().ToString();
  ASSERT_TRUE(tick1->published);

  ASSERT_TRUE(batch->AppendObservations(world.batches[0]).ok());
  const auto run1 = batch->Run();
  ASSERT_TRUE(run1.ok());
  ExpectSnapshotsEqual(*tick1->snapshot, *batch->PublishSnapshot(*run1, 10.0));

  // The session's read path serves the tick's generation.
  auto reader = service.Query("s");
  ASSERT_TRUE(reader.ok());
  const query::Snapshot* view = reader->view();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->info().sequence, tick1->sequence);

  // Second tick warm-starts (RunFrom) — still exact.
  feed->PushBatch(Timed(world.batches[1], 20.0));
  const auto tick2 = service.SubmitTick("s", 20.0).get();
  ASSERT_TRUE(tick2.ok());
  ASSERT_TRUE(batch->AppendObservations(world.batches[1]).ok());
  const auto run2 = batch->RunFrom(*run1);
  ASSERT_TRUE(run2.ok());
  ExpectSnapshotsEqual(*tick2->snapshot, *batch->PublishSnapshot(*run2, 20.0));
}

TEST(ServiceStreamTest, TicksInterleaveExactlyWithCoalescedAppends) {
  // A service append followed by a tick must equal batch append + append +
  // run: the tick closes the append-coalescing window (it is itself an
  // append + run), so FIFO visibility holds.
  const StreamWorld world = MakeStreamWorld(2);

  TrustService service;
  ASSERT_TRUE(CreatePlainSession(service, "s", world.seed)
                  .ok());
  auto feed = std::make_shared<stream::QueueFeed>();
  ASSERT_TRUE(service.AttachStream("s", feed, {}).ok());

  auto append_status = service.SubmitAppend("s", world.batches[0]);
  feed->PushBatch(Timed(world.batches[1], 5.0));
  const auto tick = service.SubmitTick("s", 5.0).get();
  ASSERT_TRUE(append_status.get().ok());
  ASSERT_TRUE(tick.ok()) << tick.status().ToString();
  EXPECT_EQ(tick->observations_ingested, world.batches[1].size());

  auto batch = PipelineBuilder()
                   .FromDataset(world.seed)
                   .WithOptions(SmallOptions())
                   .Build();
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->AppendObservations(world.batches[0]).ok());
  ASSERT_TRUE(batch->AppendObservations(world.batches[1]).ok());
  const auto run = batch->Run();
  ASSERT_TRUE(run.ok());
  ExpectSnapshotsEqual(*tick->snapshot, *batch->PublishSnapshot(*run, 5.0));
}

TEST(ServiceStreamTest, TicksThroughShardedSessionMatchShardedBatch) {
  const StreamWorld world = MakeStreamWorld(1);
  ShardOptions shard_options;
  shard_options.num_shards = 3;

  auto serving = ShardedPipeline::Create(world.seed, SmallOptions(),
                                         shard_options);
  ASSERT_TRUE(serving.ok());
  TrustService service;
  ASSERT_TRUE(service.CreateShardedSession("s", std::move(*serving)).ok());
  auto feed = std::make_shared<stream::QueueFeed>();
  ASSERT_TRUE(service.AttachStream("s", feed, {}).ok());

  feed->PushBatch(Timed(world.batches[0], 10.0));
  const auto tick = service.SubmitTick("s", 10.0).get();
  ASSERT_TRUE(tick.ok()) << tick.status().ToString();
  ASSERT_TRUE(tick->published);

  auto batch = ShardedPipeline::Create(world.seed, SmallOptions(),
                                       shard_options);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(batch->AppendObservations(world.batches[0]).ok());
  const auto run = batch->Run();
  ASSERT_TRUE(run.ok());
  ExpectSnapshotsEqual(*tick->snapshot, *batch->PublishSnapshot(*run, 10.0));
}

// ---------------------------------------------------------------------------
// Background ticker.
// ---------------------------------------------------------------------------

TEST(ServiceStreamTest, BackgroundTickerTicksWithTheInjectedClock) {
  const StreamWorld world = MakeStreamWorld(1);
  TrustService service;
  ASSERT_TRUE(CreatePlainSession(service, "s", world.seed)
                  .ok());

  auto clock_now = std::make_shared<std::atomic<double>>(100.0);
  stream::StreamOptions options;
  options.tick_interval = 0.002;
  options.clock = [clock_now] { return clock_now->load(); };
  auto feed = std::make_shared<stream::QueueFeed>();
  feed->PushBatch(Timed(world.batches[0], 100.0));
  ASSERT_TRUE(service.AttachStream("s", feed, options).ok());

  // The ticker drives ticks on its own; wait for the feed batch to land
  // and a few more (empty) ticks to pass.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto stats = service.StreamingStats("s");
    ASSERT_TRUE(stats.ok());
    if (stats->generations_published >= 1 && stats->ticks >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto stats = service.StreamingStats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->generations_published, 1u);
  EXPECT_GE(stats->ticks, 3u);

  // The published generation is stamped with the injected clock's time.
  auto reader = service.Query("s");
  ASSERT_TRUE(reader.ok());
  const query::Snapshot* view = reader->view();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->info().publish_time, 100.0);

  // Detach joins the ticker; no further ticks happen.
  ASSERT_TRUE(service.DetachStream("s").ok());
}

TEST(ServiceStreamTest, CloseSessionStopsALiveTicker) {
  const StreamWorld world = MakeStreamWorld(1);
  TrustService service;
  ASSERT_TRUE(CreatePlainSession(service, "s", world.seed)
                  .ok());
  stream::StreamOptions options;
  options.tick_interval = 0.001;
  options.clock = [] { return 1.0; };
  ASSERT_TRUE(service
                  .AttachStream("s", std::make_shared<stream::QueueFeed>(),
                                options)
                  .ok());
  // Implicit detach: must join the ticker thread and not hang or crash.
  ASSERT_TRUE(service.CloseSession("s").ok());
  EXPECT_FALSE(service.HasSession("s"));
}

TEST(ServiceStreamTest, ServiceDestructionWithLiveTickerIsClean) {
  const StreamWorld world = MakeStreamWorld(1);
  auto feed = std::make_shared<stream::QueueFeed>();
  {
    TrustService service;
    ASSERT_TRUE(CreatePlainSession(service, "s", world.seed)
                    .ok());
    stream::StreamOptions options;
    options.tick_interval = 0.001;
    options.clock = [] { return 2.0; };
    feed->PushBatch(Timed(world.batches[0], 1.0));
    ASSERT_TRUE(service.AttachStream("s", feed, options).ok());
    // Destructor drains sessions and stops the ticker.
  }
  SUCCEED();
}

}  // namespace
}  // namespace kbt::api
