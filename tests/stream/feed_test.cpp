// ObservationFeed tests: QueueFeed (in-memory, multi-producer) and
// TsvTailFeed (tail a growing io::WriteRawDataset file, never half-parse a
// line a writer is mid-appending).
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kbt/stream.h"

namespace kbt::stream {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TimedObservation Obs(uint32_t extractor, double timestamp) {
  TimedObservation timed;
  timed.observation.extractor = extractor;
  timed.timestamp = timestamp;
  return timed;
}

// ---------------------------------------------------------------------------
// QueueFeed
// ---------------------------------------------------------------------------

TEST(QueueFeedTest, PollDrainsInArrivalOrder) {
  QueueFeed feed;
  EXPECT_EQ(feed.pending(), 0u);
  feed.Push(Obs(0, 1.0));
  feed.Push(Obs(1, 2.0));
  feed.PushBatch({Obs(2, 3.0), Obs(3, 4.0)});
  EXPECT_EQ(feed.pending(), 4u);

  const auto drained = feed.Poll();
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*drained)[i].observation.extractor, i);
    EXPECT_EQ((*drained)[i].timestamp, i + 1.0);
  }
  EXPECT_EQ(feed.pending(), 0u);

  const auto empty = feed.Poll();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(QueueFeedTest, PushBatchIntoEmptyQueueMovesTheVector) {
  QueueFeed feed;
  std::vector<TimedObservation> batch = {Obs(7, 1.0), Obs(8, 2.0)};
  feed.PushBatch(std::move(batch));
  const auto drained = feed.Poll();
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->size(), 2u);
  EXPECT_EQ((*drained)[0].observation.extractor, 7u);
}

TEST(QueueFeedTest, ConcurrentProducersLoseNothing) {
  // Producers push while a consumer polls — every observation must come
  // out exactly once. Run under TSan this also proves the locking.
  QueueFeed feed;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&feed, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        feed.Push(Obs(static_cast<uint32_t>(p), static_cast<double>(i)));
      }
    });
  }
  std::vector<TimedObservation> all;
  while (all.size() < kProducers * kPerProducer) {
    const auto polled = feed.Poll();
    ASSERT_TRUE(polled.ok());
    all.insert(all.end(), polled->begin(), polled->end());
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(feed.pending(), 0u);

  // Per-producer order is preserved and nothing duplicated: each
  // producer's timestamps come out strictly increasing, 0..kPerProducer-1.
  std::vector<double> next(kProducers, 0.0);
  for (const TimedObservation& obs : all) {
    const uint32_t p = obs.observation.extractor;
    ASSERT_LT(p, static_cast<uint32_t>(kProducers));
    EXPECT_EQ(obs.timestamp, next[p]);
    next[p] += 1.0;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], static_cast<double>(kPerProducer));
  }
}

// ---------------------------------------------------------------------------
// TsvTailFeed
// ---------------------------------------------------------------------------

void AppendTo(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  ASSERT_TRUE(out.is_open());
  out << text;
}

TEST(TsvTailFeedTest, MissingFileIsEmptyNotAnError) {
  TsvTailFeed feed(TempPath("no_such_feed.tsv"));
  const auto polled = feed.Poll();
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled->empty());
  EXPECT_EQ(feed.bytes_consumed(), 0u);
}

TEST(TsvTailFeedTest, TailsObsLinesAndSkipsDatasetBookkeeping) {
  const std::string path = TempPath("tail_basic.tsv");
  std::remove(path.c_str());
  AppendTo(path,
           "# kbt-raw-dataset v1\n"
           "meta 2 2 1 1\n"
           "nfalse 0 10\n"
           "truth 5 1\n"
           "obs 0 0 0 0 5 1 0.75 1\n"
           "\n"
           "obs 0 0 1 1 5 2 0.5 0 42.5\n");
  TsvTailFeed feed(path, /*default_timestamp=*/7.0);
  const auto polled = feed.Poll();
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  ASSERT_EQ(polled->size(), 2u);
  // Untimestamped line falls back to the feed default.
  EXPECT_EQ((*polled)[0].timestamp, 7.0);
  EXPECT_EQ((*polled)[0].observation.website, 0u);
  EXPECT_EQ((*polled)[0].observation.confidence, 0.75f);
  EXPECT_TRUE((*polled)[0].observation.provided);
  // Timestamped line keeps its own stamp.
  EXPECT_EQ((*polled)[1].timestamp, 42.5);
  EXPECT_EQ((*polled)[1].observation.value, 2u);
  EXPECT_FALSE((*polled)[1].observation.provided);

  // Nothing new: the next poll is empty, not a re-read.
  const auto again = feed.Poll();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST(TsvTailFeedTest, PartialLineCarriesOverToTheNextPoll) {
  const std::string path = TempPath("tail_partial.tsv");
  std::remove(path.c_str());
  // Writer appends a complete line plus the first half of another.
  AppendTo(path,
           "obs 0 0 0 0 5 1 1 1 10\n"
           "obs 0 0 1 1 5 2");
  TsvTailFeed feed(path);
  const auto first = feed.Poll();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->size(), 1u);
  EXPECT_EQ((*first)[0].timestamp, 10.0);

  // The half-line alone is not parsed — no spurious malformed error.
  const auto nothing = feed.Poll();
  ASSERT_TRUE(nothing.ok());
  EXPECT_TRUE(nothing->empty());

  // Writer completes the line: it parses whole.
  AppendTo(path, " 1 0 20\n");
  const auto second = feed.Poll();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->size(), 1u);
  EXPECT_EQ((*second)[0].observation.website, 1u);
  EXPECT_EQ((*second)[0].observation.value, 2u);
  EXPECT_EQ((*second)[0].timestamp, 20.0);
}

TEST(TsvTailFeedTest, MalformedCompletedLineFailsThePoll) {
  const std::string path = TempPath("tail_malformed.tsv");
  std::remove(path.c_str());
  AppendTo(path, "obs 0 0 not-a-number 0 5 1 1 1\n");
  TsvTailFeed feed(path);
  const auto polled = feed.Poll();
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.status().code(), StatusCode::kInvalidArgument);
  // The error names the feed so multi-feed services can attribute it.
  EXPECT_NE(polled.status().message().find(path), std::string::npos);
}

TEST(TsvTailFeedTest, NegativeTimestampIsRejected) {
  const std::string path = TempPath("tail_negative_ts.tsv");
  std::remove(path.c_str());
  AppendTo(path, "obs 0 0 0 0 5 1 1 1 -3\n");
  TsvTailFeed feed(path);
  const auto polled = feed.Poll();
  ASSERT_FALSE(polled.ok());
  EXPECT_EQ(polled.status().code(), StatusCode::kInvalidArgument);
}

TEST(TsvTailFeedTest, CrLfLinesParse) {
  const std::string path = TempPath("tail_crlf.tsv");
  std::remove(path.c_str());
  AppendTo(path, "obs 0 0 0 0 5 1 1 1 10\r\n");
  TsvTailFeed feed(path);
  const auto polled = feed.Poll();
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  ASSERT_EQ(polled->size(), 1u);
  EXPECT_EQ((*polled)[0].timestamp, 10.0);
}

}  // namespace
}  // namespace kbt::stream
