#include "eval/gold_standard.h"

#include <gtest/gtest.h>

#include "kb/schema.h"

namespace kbt::eval {
namespace {

class GoldStandardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // World: person -> place nationality facts.
    person_a_ = world_.AddEntity("a", kb::EntityType::kPerson);
    person_b_ = world_.AddEntity("b", kb::EntityType::kPerson);
    usa_ = world_.AddEntity("usa", kb::EntityType::kPlace);
    kenya_ = world_.AddEntity("kenya", kb::EntityType::kPlace);
    kb::PredicateSchema schema;
    schema.name = "nationality";
    schema.subject_type = kb::EntityType::kPerson;
    schema.object_type = kb::EntityType::kPlace;
    pred_ = world_.AddPredicate(schema);

    ASSERT_TRUE(world_.AddFact(person_a_, pred_, usa_).ok());
    // Partial KB knows only person_a's fact.
    partial_ = std::make_unique<kb::KnowledgeBase>();
    *partial_ = world_.SampleSubset(0.0, rng_);  // Schema only...
    // ...then add the one known fact deterministically.
    ASSERT_TRUE(partial_->AddFact(person_a_, pred_, usa_).ok());
  }

  Rng rng_{1};
  kb::KnowledgeBase world_;
  std::unique_ptr<kb::KnowledgeBase> partial_;
  kb::EntityId person_a_ = 0;
  kb::EntityId person_b_ = 0;
  kb::ValueId usa_ = 0;
  kb::ValueId kenya_ = 0;
  kb::PredicateId pred_ = 0;
};

TEST_F(GoldStandardTest, LcwaLabels) {
  GoldStandard gold(*partial_, world_);
  const kb::DataItemId item_a = kb::MakeDataItem(person_a_, pred_);
  const kb::DataItemId item_b = kb::MakeDataItem(person_b_, pred_);
  // In-KB triple: true.
  EXPECT_EQ(gold.Label(item_a, usa_), std::optional<bool>(true));
  // Same data item, other value: false under LCWA.
  EXPECT_EQ(gold.Label(item_a, kenya_), std::optional<bool>(false));
  // Unknown data item: no label.
  EXPECT_EQ(gold.Label(item_b, usa_), std::nullopt);
}

TEST_F(GoldStandardTest, TypeErrorsAreFalseEvenWhenUnknown) {
  GoldStandard gold(*partial_, world_);
  const kb::DataItemId item_b = kb::MakeDataItem(person_b_, pred_);
  // person_b is unknown to the KB, but (b, nationality, person_a) violates
  // the object type rule -> labeled false.
  EXPECT_TRUE(gold.IsTypeError(item_b, person_a_));
  EXPECT_EQ(gold.Label(item_b, person_a_), std::optional<bool>(false));
  // s = o violation.
  EXPECT_TRUE(gold.IsTypeError(item_b, person_b_));
}

TEST_F(GoldStandardTest, EvaluateTriplesComputesCoverage) {
  GoldStandard gold(*partial_, world_);
  const kb::DataItemId item_a = kb::MakeDataItem(person_a_, pred_);
  std::vector<TriplePrediction> preds;
  preds.push_back(TriplePrediction{item_a, usa_, 0.9, true});
  preds.push_back(TriplePrediction{item_a, kenya_, 0.2, false});  // Uncovered.
  preds.push_back(
      TriplePrediction{kb::MakeDataItem(person_b_, pred_), usa_, 0.5, true});

  const TripleMetrics m = EvaluateTriples(preds, gold);
  EXPECT_EQ(m.num_labeled, 2u);   // person_b triple is unknown.
  EXPECT_EQ(m.num_covered, 1u);
  EXPECT_DOUBLE_EQ(m.coverage, 0.5);
  EXPECT_DOUBLE_EQ(m.fraction_true, 0.5);
  // Only the covered true triple enters SqV: (1 - 0.9)^2.
  EXPECT_NEAR(m.sqv, 0.01, 1e-12);
}

TEST_F(GoldStandardTest, TriplePredictionsDeduplicate) {
  // Two sources providing the same (d, v) yield one prediction.
  extract::RawDataset data;
  extract::RawObservation obs;
  obs.extractor = 0;
  obs.pattern = 0;
  obs.item = kb::MakeDataItem(person_a_, pred_);
  obs.value = usa_;
  obs.website = 0;
  obs.page = 0;
  data.observations.push_back(obs);
  obs.page = 1;
  obs.website = 1;
  data.observations.push_back(obs);
  obs.value = kenya_;
  data.observations.push_back(obs);
  data.num_false_by_predicate = {10};
  data.num_websites = 2;
  data.num_pages = 2;
  data.num_extractors = 1;
  data.num_patterns = 1;

  extract::GroupAssignment assignment;
  assignment.num_source_groups = 2;
  assignment.num_extractor_groups = 1;
  assignment.observation_source = {0, 1, 1};
  assignment.observation_extractor = {0, 0, 0};
  assignment.source_infos = {extract::SourceGroupInfo{0},
                             extract::SourceGroupInfo{1}};
  assignment.extractor_scopes = {extract::ExtractorScope{}};
  const auto matrix = extract::CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());
  ASSERT_EQ(matrix->num_slots(), 3u);

  const std::vector<double> probs = {0.8, 0.8, 0.1};
  const std::vector<uint8_t> covered = {1, 1, 1};
  const auto preds = TriplePredictions(*matrix, probs, covered);
  EXPECT_EQ(preds.size(), 2u);  // (a,usa) deduped; (a,kenya) separate.
}

}  // namespace
}  // namespace kbt::eval
