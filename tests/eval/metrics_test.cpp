#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace kbt::eval {
namespace {

TEST(MetricsTest, SquareLossBasics) {
  EXPECT_DOUBLE_EQ(SquareLoss({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SquareLoss({1.0, 0.0}, {1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(SquareLoss({0.5}, {1.0}), 0.25);
  EXPECT_DOUBLE_EQ(SquareLoss({0.0, 1.0}, {1.0, 0.0}), 1.0);
}

TEST(MetricsTest, WDevZeroForPerfectCalibration) {
  // Predictions equal to empirical accuracy inside each bucket.
  std::vector<double> pred;
  std::vector<uint8_t> truth;
  // 10 triples at 0.5: exactly 5 true.
  for (int i = 0; i < 10; ++i) {
    pred.push_back(0.52);
    truth.push_back(i < 5 ? 1 : 0);
  }
  const double wdev = WeightedDeviation(pred, truth);
  EXPECT_NEAR(wdev, (0.52 - 0.5) * (0.52 - 0.5), 1e-12);
}

TEST(MetricsTest, WDevPenalizesMiscalibration) {
  // Everything predicted 0.99 but only half true.
  std::vector<double> pred(100, 0.992);
  std::vector<uint8_t> truth(100, 0);
  for (int i = 0; i < 50; ++i) truth[static_cast<size_t>(i)] = 1;
  EXPECT_GT(WeightedDeviation(pred, truth), 0.2);
}

TEST(MetricsTest, WDevUsesFineBucketsAtExtremes) {
  // 0.005 vs 0.045 land in different buckets; a coarse [0,0.05) bucket
  // would hide the miscalibration of one of them.
  std::vector<double> pred = {0.005, 0.005, 0.045, 0.045};
  std::vector<uint8_t> truth = {0, 0, 1, 1};
  // Bucket [0,0.01): perfect (acc 0). Bucket [0.04,0.05): acc 1, pred .045.
  const double wdev = WeightedDeviation(pred, truth);
  EXPECT_NEAR(wdev, 0.5 * (1.0 - 0.045) * (1.0 - 0.045) +
                        0.5 * (0.005 - 0.0) * (0.005 - 0.0),
              1e-9);
}

TEST(MetricsTest, AucPrPerfectRanking) {
  const std::vector<double> pred = {0.9, 0.8, 0.7, 0.2, 0.1};
  const std::vector<uint8_t> truth = {1, 1, 1, 0, 0};
  EXPECT_NEAR(AucPr(pred, truth), 1.0, 1e-9);
}

TEST(MetricsTest, AucPrInvertedRankingIsPoor) {
  const std::vector<double> pred = {0.9, 0.8, 0.2, 0.1};
  const std::vector<uint8_t> truth = {0, 0, 1, 1};
  EXPECT_LT(AucPr(pred, truth), 0.5);
}

TEST(MetricsTest, AucPrRandomScoresNearPrevalence) {
  // For uninformative scores AUC-PR approaches the positive fraction.
  std::vector<double> pred;
  std::vector<uint8_t> truth;
  for (int i = 0; i < 2000; ++i) {
    pred.push_back((i * 2654435761u % 1000) / 1000.0);
    truth.push_back(i % 5 == 0 ? 1 : 0);  // 20% positive.
  }
  EXPECT_NEAR(AucPr(pred, truth), 0.2, 0.05);
}

TEST(MetricsTest, AucPrNoPositives) {
  EXPECT_DOUBLE_EQ(AucPr({0.5, 0.2}, {0, 0}), 0.0);
}

TEST(MetricsTest, PrCurveIsMonotonicInRecall) {
  std::vector<double> pred;
  std::vector<uint8_t> truth;
  for (int i = 0; i < 500; ++i) {
    pred.push_back((i % 100) / 100.0);
    truth.push_back(i % 3 == 0 ? 1 : 0);
  }
  const auto curve = PrCurve(pred, truth);
  ASSERT_FALSE(curve.empty());
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  }
  EXPECT_NEAR(curve.back().recall, 1.0, 1e-9);
}

TEST(MetricsTest, PrCurveCollapsesTies) {
  const std::vector<double> pred = {0.5, 0.5, 0.5, 0.5};
  const std::vector<uint8_t> truth = {1, 0, 1, 0};
  const auto curve = PrCurve(pred, truth);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].precision, 0.5);
}

TEST(MetricsTest, CalibrationCurveRecoversAccuracy) {
  std::vector<double> pred;
  std::vector<uint8_t> truth;
  // Bucket near 0.3: 30% true. Bucket near 0.8: 80% true.
  for (int i = 0; i < 100; ++i) {
    pred.push_back(0.31);
    truth.push_back(i < 30 ? 1 : 0);
  }
  for (int i = 0; i < 100; ++i) {
    pred.push_back(0.81);
    truth.push_back(i < 80 ? 1 : 0);
  }
  const auto curve = CalibrationCurve(pred, truth);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(curve[0].predicted_mean, 0.31, 1e-9);
  EXPECT_NEAR(curve[0].empirical_accuracy, 0.30, 1e-9);
  EXPECT_NEAR(curve[1].predicted_mean, 0.81, 1e-9);
  EXPECT_NEAR(curve[1].empirical_accuracy, 0.80, 1e-9);
  EXPECT_DOUBLE_EQ(curve[0].weight, 100.0);
}

}  // namespace
}  // namespace kbt::eval
