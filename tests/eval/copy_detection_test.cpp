#include "eval/copy_detection.h"

#include <gtest/gtest.h>

#include "extract/observation_matrix.h"
#include "granularity/assignments.h"

namespace kbt::eval {
namespace {

/// Builds a matrix with three sites:
///  site 0 ("original"): claims t0..t9, of which t8/t9 are false claims;
///  site 1 ("scraper"): copies t0..t7 AND the false t8/t9;
///  site 2 ("honest peer"): independently claims the true t0..t7 only.
struct Fixture {
  extract::RawDataset data;
  extract::GroupAssignment assignment;
  std::vector<double> value_prob;

  Fixture() {
    auto add = [this](uint32_t site, uint32_t subject, kb::ValueId value) {
      extract::RawObservation obs;
      obs.extractor = 0;
      obs.pattern = 0;
      obs.website = site;
      obs.page = site;  // One page per site.
      obs.item = kb::MakeDataItem(subject, 0);
      obs.value = value;
      data.observations.push_back(obs);
    };
    for (uint32_t t = 0; t < 10; ++t) {
      add(0, t, /*value=*/100 + t);                    // Original.
      add(1, t, 100 + t);                              // Scraper copies all.
      if (t < 8) add(2, t, 100 + t);                   // Honest peer: truths.
    }
    data.num_false_by_predicate = {10};
    data.num_websites = 3;
    data.num_pages = 3;
    data.num_extractors = 1;
    data.num_patterns = 1;
    assignment = granularity::PageSourcePlainExtractor(data);
  }
};

TEST(CopyDetectionTest, ScraperScoresAboveHonestPeer) {
  Fixture f;
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());
  // Truth probabilities: t0..t7 true (0.95), t8/t9 false (0.05).
  std::vector<double> probs(matrix->num_slots(), 0.95);
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    const uint32_t subject =
        kb::DataItemSubject(matrix->item_id(matrix->slot_item(s)));
    if (subject >= 8) probs[s] = 0.05;
  }

  CopyDetectionConfig config;
  config.min_shared_claims = 3;
  config.min_score = 0.0;  // Report everything; we check the ordering.
  const auto pairs = DetectCopying(*matrix, probs, 3, config);

  double scraper_score = -1.0;
  double honest_score = -1.0;
  for (const auto& p : pairs) {
    if (p.site_a == 0 && p.site_b == 1) scraper_score = p.score;
    if (p.site_a == 0 && p.site_b == 2) honest_score = p.score;
  }
  ASSERT_GE(scraper_score, 0.0) << "scraper pair not found";
  ASSERT_GE(honest_score, 0.0) << "honest pair not found";
  // The scraper shares the false claims; the honest site does not.
  EXPECT_GT(scraper_score, honest_score + 0.5);
}

TEST(CopyDetectionTest, SharedFalseClaimsAreCounted) {
  Fixture f;
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());
  std::vector<double> probs(matrix->num_slots(), 0.95);
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    const uint32_t subject =
        kb::DataItemSubject(matrix->item_id(matrix->slot_item(s)));
    if (subject >= 8) probs[s] = 0.05;
  }
  CopyDetectionConfig config;
  config.min_shared_claims = 3;
  config.min_score = 0.0;
  const auto pairs = DetectCopying(*matrix, probs, 3, config);
  for (const auto& p : pairs) {
    if (p.site_a == 0 && p.site_b == 1) {
      EXPECT_EQ(p.shared_claims, 10);
      EXPECT_EQ(p.shared_false_claims, 2);
      EXPECT_NEAR(p.jaccard, 1.0, 1e-9);
    }
    if (p.site_a == 0 && p.site_b == 2) {
      EXPECT_EQ(p.shared_claims, 8);
      EXPECT_EQ(p.shared_false_claims, 0);
    }
  }
}

TEST(CopyDetectionTest, MinSharedClaimsFilters) {
  Fixture f;
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());
  const std::vector<double> probs(matrix->num_slots(), 0.9);
  CopyDetectionConfig config;
  config.min_shared_claims = 100;
  config.min_score = 0.0;
  EXPECT_TRUE(DetectCopying(*matrix, probs, 3, config).empty());
}

TEST(CopyDetectionTest, ResultsAreSortedByScore) {
  Fixture f;
  const auto matrix = extract::CompiledMatrix::Build(f.data, f.assignment);
  ASSERT_TRUE(matrix.ok());
  std::vector<double> probs(matrix->num_slots(), 0.95);
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    const uint32_t subject =
        kb::DataItemSubject(matrix->item_id(matrix->slot_item(s)));
    if (subject >= 8) probs[s] = 0.05;
  }
  CopyDetectionConfig config;
  config.min_shared_claims = 3;
  config.min_score = 0.0;
  const auto pairs = DetectCopying(*matrix, probs, 3, config);
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i - 1].score, pairs[i].score);
  }
}

}  // namespace
}  // namespace kbt::eval
