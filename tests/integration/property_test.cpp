// Property-based tests (parameterized sweeps) over model invariants: for a
// grid of synthetic-world configurations, the inference outputs must satisfy
// structural properties regardless of the random draw.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "exp/synthetic.h"
#include "exp/synthetic_eval.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "granularity/split_merge.h"
#include "fusion/single_layer.h"
#include "core/multilayer_model.h"

namespace kbt {
namespace {

/// (seed, #extractors, recall, component accuracy).
using Params = std::tuple<uint64_t, int, double, double>;

class ModelPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  exp::SyntheticConfig Config() const {
    const auto [seed, extractors, recall, precision] = GetParam();
    exp::SyntheticConfig config;
    config.seed = seed;
    config.num_extractors = extractors;
    config.recall = recall;
    config.component_accuracy = precision;
    return config;
  }
};

TEST_P(ModelPropertyTest, PosteriorsAreProbabilities) {
  const auto synthetic = exp::GenerateSynthetic(Config());
  const auto assignment =
      granularity::PageSourcePlainExtractor(synthetic.data);
  const auto matrix =
      extract::CompiledMatrix::Build(synthetic.data, assignment);
  ASSERT_TRUE(matrix.ok());
  core::MultiLayerConfig config;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(*matrix, config);
  ASSERT_TRUE(result.ok());
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    ASSERT_GE(result->slot_correct_prob[s], 0.0);
    ASSERT_LE(result->slot_correct_prob[s], 1.0);
    ASSERT_GE(result->slot_value_prob[s], 0.0);
    ASSERT_LE(result->slot_value_prob[s], 1.0);
    ASSERT_FALSE(std::isnan(result->slot_alpha[s]));
  }
  for (uint32_t w = 0; w < matrix->num_sources(); ++w) {
    ASSERT_GT(result->source_accuracy[w], 0.0);
    ASSERT_LT(result->source_accuracy[w], 1.0);
  }
  for (uint32_t g = 0; g < matrix->num_extractor_groups(); ++g) {
    ASSERT_GT(result->extractor_precision[g], 0.0);
    ASSERT_LE(result->extractor_q[g], result->extractor_recall[g] + 1e-12);
  }
}

TEST_P(ModelPropertyTest, PerItemValueMassIsSubNormalized) {
  const auto synthetic = exp::GenerateSynthetic(Config());
  const auto assignment =
      granularity::PageSourcePlainExtractor(synthetic.data);
  const auto matrix =
      extract::CompiledMatrix::Build(synthetic.data, assignment);
  ASSERT_TRUE(matrix.ok());
  core::MultiLayerConfig config;
  config.min_source_support = 1;
  config.min_extractor_support = 1;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(*matrix, config);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < matrix->num_items(); ++i) {
    const auto [b, e] = matrix->ItemSlots(i);
    double mass = 0.0;
    std::vector<uint32_t> seen;
    for (uint32_t s = b; s < e; ++s) {
      bool duplicate = false;
      for (uint32_t v : seen) duplicate |= (v == matrix->slot_value(s));
      if (duplicate) continue;
      seen.push_back(matrix->slot_value(s));
      mass += result->slot_value_prob[s];
    }
    // Observed mass plus unobserved mass can never exceed 1.
    const int unobserved =
        std::max(0, 10 + 1 - static_cast<int>(seen.size()));
    mass += result->item_unobserved_value_prob[i] * unobserved;
    ASSERT_LE(mass, 1.0 + 1e-6) << "item " << i;
  }
}

TEST_P(ModelPropertyTest, SingleLayerSlotProbsAreNormalizedToo) {
  const auto synthetic = exp::GenerateSynthetic(Config());
  const auto assignment = granularity::ProvenanceAssignment(synthetic.data);
  const auto matrix =
      extract::CompiledMatrix::Build(synthetic.data, assignment);
  ASSERT_TRUE(matrix.ok());
  fusion::SingleLayerConfig config;
  config.min_source_support = 1;
  config.num_false_override = 10;
  const auto result = fusion::SingleLayerModel::Run(*matrix, config);
  ASSERT_TRUE(result.ok());
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    ASSERT_GE(result->slot_value_prob[s], 0.0);
    ASSERT_LE(result->slot_value_prob[s], 1.0);
  }
}

TEST_P(ModelPropertyTest, RaisingSupportThresholdOnlyShrinksCoverage) {
  const auto synthetic = exp::GenerateSynthetic(Config());
  const auto assignment =
      granularity::PageSourcePlainExtractor(synthetic.data);
  const auto matrix =
      extract::CompiledMatrix::Build(synthetic.data, assignment);
  ASSERT_TRUE(matrix.ok());
  size_t prev_covered = matrix->num_slots() + 1;
  for (int support : {1, 50, 200, 100000}) {
    core::MultiLayerConfig config;
    config.min_source_support = support;
    config.min_extractor_support = 1;
    config.num_false_override = 10;
    const auto result = core::MultiLayerModel::Run(*matrix, config);
    ASSERT_TRUE(result.ok());
    size_t covered = 0;
    for (size_t s = 0; s < matrix->num_slots(); ++s) {
      covered += result->slot_covered[s];
    }
    ASSERT_LE(covered, prev_covered) << "support " << support;
    prev_covered = covered;
  }
}

TEST_P(ModelPropertyTest, SplitMergePartitionsAtoms) {
  const auto synthetic = exp::GenerateSynthetic(Config());
  granularity::SplitMergeOptions source_options;
  source_options.min_size = 4;
  source_options.max_size = 60;
  granularity::SplitMergeOptions extractor_options;
  extractor_options.min_size = 2;
  extractor_options.max_size = 300;
  const auto assignment = granularity::SplitMergeAssignment(
      synthetic.data, source_options, extractor_options);
  ASSERT_TRUE(assignment.ok());
  // Every observation maps into range; the compiled matrix preserves the
  // total extraction count (dedup only collapses same-slot duplicates).
  for (size_t i = 0; i < synthetic.data.size(); ++i) {
    ASSERT_LT(assignment->observation_source[i],
              assignment->num_source_groups);
    ASSERT_LT(assignment->observation_extractor[i],
              assignment->num_extractor_groups);
  }
  const auto matrix =
      extract::CompiledMatrix::Build(synthetic.data, *assignment);
  ASSERT_TRUE(matrix.ok());
  ASSERT_LE(matrix->num_extractions(), synthetic.data.size());
  ASSERT_GT(matrix->num_extractions(), 0u);
}

TEST_P(ModelPropertyTest, MultiLayerNotWorseThanChanceOnTruth) {
  const auto run = exp::RunSyntheticComparison(Config());
  ASSERT_TRUE(run.ok());
  // Predicting 0.5 for everything would score SqV = 0.25.
  ASSERT_LT(run->multi_layer.sqv, 0.25);
  ASSERT_LT(run->multi_layer.sqc, 0.5);
  ASSERT_LT(run->multi_layer.sqa, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    SyntheticGrid, ModelPropertyTest,
    ::testing::Values(
        Params{11, 3, 0.5, 0.8}, Params{12, 5, 0.5, 0.8},
        Params{13, 8, 0.5, 0.8}, Params{14, 5, 0.2, 0.8},
        Params{15, 5, 0.9, 0.8}, Params{16, 5, 0.5, 0.6},
        Params{17, 5, 0.5, 0.95}, Params{18, 10, 0.7, 0.9},
        Params{19, 2, 0.3, 0.7}));

/// Property sweep over SplitAndMerge bounds.
class SplitMergePropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SplitMergePropertyTest, GroupSizesRespectBoundsWherePossible) {
  const auto [m, M] = GetParam();
  // Random-ish hierarchy of 3 levels.
  std::vector<granularity::LeafNode> leaves;
  uint64_t atom = 0;
  Rng rng(m * 131 + M);
  for (uint64_t site = 0; site < 12; ++site) {
    const int pages = 1 + static_cast<int>(rng.UniformInt(0, 20));
    for (int p = 0; p < pages; ++p) {
      granularity::LeafNode leaf;
      leaf.path = {site, site * 100 + static_cast<uint64_t>(p) % 3,
                   static_cast<uint64_t>(p)};
      const int size = 1 + static_cast<int>(rng.UniformInt(0, 120));
      for (int a = 0; a < size; ++a) leaf.atoms.push_back(atom++);
      leaves.push_back(std::move(leaf));
    }
  }
  granularity::SplitMergeOptions options;
  options.min_size = m;
  options.max_size = M;
  const auto result = granularity::SplitAndMerge(leaves, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->atom_group.size(), atom);
  for (const auto& group : result->groups) {
    // Upper bound is hard.
    ASSERT_LE(group.size, M);
    // Lower bound can only be violated at the hierarchy root (no parent to
    // merge into) or by a split remainder.
    if (group.size < m) {
      ASSERT_TRUE(group.level == 0 || group.num_buckets > 1)
          << "size " << group.size << " level " << group.level;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, SplitMergePropertyTest,
                         ::testing::Values(std::tuple<size_t, size_t>{1, 50},
                                           std::tuple<size_t, size_t>{5, 100},
                                           std::tuple<size_t, size_t>{10, 40},
                                           std::tuple<size_t, size_t>{2, 500},
                                           std::tuple<size_t, size_t>{30,
                                                                      3000}));

}  // namespace
}  // namespace kbt
