// Integration tests over the full pipeline:
// corpus -> extraction -> granularity -> compilation -> inference -> eval.
#include <gtest/gtest.h>

#include "corpus/link_graph.h"
#include "eval/gold_standard.h"
#include "exp/kv_sim.h"
#include "exp/runners.h"
#include "extract/observation_matrix.h"
#include "granularity/assignments.h"
#include "pagerank/pagerank.h"
#include "core/kbt_score.h"
#include "core/multilayer_model.h"

namespace kbt {
namespace {

/// Shared small KV world (built once; the tests only read it).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto kv = exp::BuildKvSim(exp::KvSimConfig::Small());
    ASSERT_TRUE(kv.ok()) << kv.status().ToString();
    kv_ = new exp::KvSimData(std::move(*kv));
    gold_ = new eval::GoldStandard(kv_->partial_kb, kv_->corpus.world());
  }
  static void TearDownTestSuite() {
    delete gold_;
    gold_ = nullptr;
    delete kv_;
    kv_ = nullptr;
  }

  static exp::KvSimData* kv_;
  static eval::GoldStandard* gold_;
};

exp::KvSimData* EndToEndTest::kv_ = nullptr;
eval::GoldStandard* EndToEndTest::gold_ = nullptr;

TEST_F(EndToEndTest, AllThreeMethodsProduceSaneMetrics) {
  for (const exp::Method method :
       {exp::Method::kSingleLayer, exp::Method::kMultiLayer,
        exp::Method::kMultiLayerSM}) {
    exp::RunnerOptions options;
    const auto run = exp::RunMethodOnKv(method, *kv_, *gold_, options);
    ASSERT_TRUE(run.ok()) << exp::MethodName(method);
    EXPECT_GT(run->metrics.num_labeled, 100u) << exp::MethodName(method);
    EXPECT_GT(run->metrics.coverage, 0.3) << exp::MethodName(method);
    EXPECT_LE(run->metrics.coverage, 1.0) << exp::MethodName(method);
    EXPECT_GT(run->metrics.auc_pr, 0.3) << exp::MethodName(method);
    EXPECT_LT(run->metrics.sqv, 0.25) << exp::MethodName(method);
    for (const auto& p : run->predictions) {
      ASSERT_GE(p.probability, 0.0);
      ASSERT_LE(p.probability, 1.0);
    }
  }
}

TEST_F(EndToEndTest, MultiLayerBeatsSingleLayerOnSqV) {
  exp::RunnerOptions options;
  const auto single =
      exp::RunMethodOnKv(exp::Method::kSingleLayer, *kv_, *gold_, options);
  const auto multi =
      exp::RunMethodOnKv(exp::Method::kMultiLayer, *kv_, *gold_, options);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  // The paper's headline Table 5 ordering.
  EXPECT_LT(multi->metrics.sqv, single->metrics.sqv);
  EXPECT_LT(multi->metrics.wdev, single->metrics.wdev);
}

TEST_F(EndToEndTest, SmartInitRaisesCoverage) {
  exp::RunnerOptions plain;
  exp::RunnerOptions smart;
  smart.smart_init = true;
  const auto base =
      exp::RunMethodOnKv(exp::Method::kMultiLayer, *kv_, *gold_, plain);
  const auto plus =
      exp::RunMethodOnKv(exp::Method::kMultiLayer, *kv_, *gold_, smart);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(plus.ok());
  EXPECT_GT(plus->metrics.coverage, base->metrics.coverage);
}

TEST_F(EndToEndTest, TypeErrorSlotsGetLowCorrectness) {
  const auto assignment = granularity::FinestAssignment(kv_->data);
  const auto matrix = extract::CompiledMatrix::Build(kv_->data, assignment);
  ASSERT_TRUE(matrix.ok());
  core::MultiLayerConfig config;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(*matrix, config);
  ASSERT_TRUE(result.ok());

  double type_error_mean = 0.0;
  double kb_true_mean = 0.0;
  size_t nt = 0;
  size_t nk = 0;
  for (size_t s = 0; s < matrix->num_slots(); ++s) {
    const kb::DataItemId item = matrix->item_id(matrix->slot_item(s));
    const kb::ValueId value = matrix->slot_value(s);
    if (gold_->IsTypeError(item, value)) {
      type_error_mean += result->slot_correct_prob[s];
      ++nt;
    } else if (kv_->partial_kb.Label(item, value) == kb::LcwaLabel::kTrue) {
      kb_true_mean += result->slot_correct_prob[s];
      ++nk;
    }
  }
  ASSERT_GT(nt, 50u);
  ASSERT_GT(nk, 50u);
  // Figure 6's separation.
  EXPECT_LT(type_error_mean / nt + 0.3, kb_true_mean / nk);
}

TEST_F(EndToEndTest, KbtTracksTrueSiteAccuracy) {
  const auto assignment = granularity::FinestAssignment(kv_->data);
  const auto matrix = extract::CompiledMatrix::Build(kv_->data, assignment);
  ASSERT_TRUE(matrix.ok());
  core::MultiLayerConfig config;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(*matrix, config);
  ASSERT_TRUE(result.ok());
  const auto kbt = core::ComputeWebsiteKbt(
      *matrix, *result, static_cast<uint32_t>(kv_->corpus.num_websites()));

  std::vector<double> kbt_scores;
  std::vector<double> true_accuracy;
  for (uint32_t w = 0; w < kv_->corpus.num_websites(); ++w) {
    if (!kbt[w].HasScore(5.0)) continue;
    kbt_scores.push_back(kbt[w].kbt);
    true_accuracy.push_back(kv_->corpus.EmpiricalSiteAccuracy(w));
  }
  ASSERT_GT(kbt_scores.size(), 20u);
  // KBT correlates strongly with the true accuracy it estimates.
  EXPECT_GT(pagerank::PearsonCorrelation(kbt_scores, true_accuracy), 0.5);
}

TEST_F(EndToEndTest, KbtIsOrthogonalToPageRank) {
  const auto assignment = granularity::FinestAssignment(kv_->data);
  const auto matrix = extract::CompiledMatrix::Build(kv_->data, assignment);
  ASSERT_TRUE(matrix.ok());
  core::MultiLayerConfig config;
  config.num_false_override = 10;
  const auto result = core::MultiLayerModel::Run(*matrix, config);
  ASSERT_TRUE(result.ok());
  const auto kbt = core::ComputeWebsiteKbt(
      *matrix, *result, static_cast<uint32_t>(kv_->corpus.num_websites()));

  Rng rng(7);
  const auto graph =
      corpus::LinkGraph::Generate(kv_->corpus.websites(), 8.0, rng);
  const auto pr = pagerank::ComputePageRank(graph);
  ASSERT_TRUE(pr.ok());

  std::vector<double> kbt_scores;
  std::vector<double> pr_scores;
  for (uint32_t w = 0; w < kv_->corpus.num_websites(); ++w) {
    if (!kbt[w].HasScore(5.0)) continue;
    kbt_scores.push_back(kbt[w].kbt);
    pr_scores.push_back((*pr)[w]);
  }
  // "Almost orthogonal": |corr| well below a meaningful association.
  EXPECT_LT(std::fabs(pagerank::PearsonCorrelation(kbt_scores, pr_scores)),
            0.35);
}

TEST_F(EndToEndTest, PipelineIsDeterministic) {
  exp::RunnerOptions options;
  const auto a =
      exp::RunMethodOnKv(exp::Method::kMultiLayerSM, *kv_, *gold_, options);
  const auto b =
      exp::RunMethodOnKv(exp::Method::kMultiLayerSM, *kv_, *gold_, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->metrics.sqv, b->metrics.sqv);
  EXPECT_DOUBLE_EQ(a->metrics.auc_pr, b->metrics.auc_pr);
  ASSERT_EQ(a->predictions.size(), b->predictions.size());
  for (size_t i = 0; i < a->predictions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->predictions[i].probability,
                     b->predictions[i].probability);
  }
}

}  // namespace
}  // namespace kbt
