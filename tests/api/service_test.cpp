// Integration tests of kbt::api::TrustService. The contract under test:
//  * served results are bit-for-bit what the same sequence of direct
//    Pipeline calls produces (per session, with or without a shared
//    executor attached to the pipelines);
//  * requests to one session execute FIFO in submission order;
//  * consecutive queued appends coalesce into one AppendObservations call
//    whose Status resolves every submitter's future;
//  * distinct sessions make progress concurrently on one shared executor;
//  * lifecycle + error surface: unknown sessions, duplicate names, close.
#include "kbt/kbt.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kbt::api {
namespace {

exp::SyntheticConfig SmallSynthetic(uint64_t seed) {
  exp::SyntheticConfig config;
  config.num_sources = 15;
  config.num_extractors = 4;
  config.seed = seed;
  return config;
}

Options ServingOptions() {
  Options options;
  options.granularity = Granularity::kFinest;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  return options;
}

extract::RawDataset SyntheticCube(uint64_t seed) {
  return exp::GenerateSynthetic(SmallSynthetic(seed)).data;
}

void ExpectVectorsEqual(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    // Bit-for-bit: served and direct paths run the same float program.
    ASSERT_EQ(a[i], b[i]) << what << "[" << i << "]";
  }
}

void ExpectReportsEqual(const TrustReport& a, const TrustReport& b) {
  ASSERT_EQ(a.counts.num_observations, b.counts.num_observations);
  ASSERT_EQ(a.counts.num_slots, b.counts.num_slots);
  ASSERT_EQ(a.counts.num_sources, b.counts.num_sources);
  ASSERT_EQ(a.counts.num_extractor_groups, b.counts.num_extractor_groups);
  ExpectVectorsEqual(a.inference.slot_value_prob, b.inference.slot_value_prob,
                     "slot_value_prob");
  ExpectVectorsEqual(a.inference.slot_correct_prob,
                     b.inference.slot_correct_prob, "slot_correct_prob");
  ExpectVectorsEqual(a.inference.source_accuracy, b.inference.source_accuracy,
                     "source_accuracy");
  ExpectVectorsEqual(a.inference.extractor_q, b.inference.extractor_q,
                     "extractor_q");
  ASSERT_EQ(a.website_kbt.size(), b.website_kbt.size());
  for (size_t w = 0; w < a.website_kbt.size(); ++w) {
    ASSERT_EQ(a.website_kbt[w].kbt, b.website_kbt[w].kbt) << w;
    ASSERT_EQ(a.website_kbt[w].evidence, b.website_kbt[w].evidence) << w;
  }
  ASSERT_EQ(a.iterations(), b.iterations());
  ASSERT_EQ(a.converged(), b.converged());
}

StatusOr<Pipeline> BuildPipeline(uint64_t seed,
                                 dataflow::Executor* executor = nullptr) {
  PipelineBuilder builder;
  builder.FromDataset(SyntheticCube(seed)).WithOptions(ServingOptions());
  if (executor != nullptr) builder.WithExecutor(executor);
  return builder.Build();
}

// ---------------------------------------------------------------------------
// Parity: served == direct, bit for bit.
// ---------------------------------------------------------------------------

TEST(TrustServiceTest, ServedRunMatchesDirectPipelineRun) {
  auto direct = BuildPipeline(11);
  ASSERT_TRUE(direct.ok());
  const auto expected = direct->Run();
  ASSERT_TRUE(expected.ok());

  TrustService service;
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(11)).ok());
  auto served = service.SubmitRun("s").get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ExpectReportsEqual(*served, *expected);
}

TEST(TrustServiceTest, ServedRunWithSharedExecutorMatchesDirectRun) {
  // The pipelines' parallel stages run on the SAME executor that carries
  // the service's request tasks — the nested-join composition. Results
  // must still be deterministic and equal to the sequential run.
  dataflow::Executor executor(4);
  auto direct = BuildPipeline(12, &executor);
  ASSERT_TRUE(direct.ok());
  const auto expected = direct->Run();
  ASSERT_TRUE(expected.ok());

  TrustService::ServiceOptions service_options;
  service_options.executor = &executor;
  TrustService service(service_options);
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(12, &executor)).ok());
  auto served = service.SubmitRun("s").get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ExpectReportsEqual(*served, *expected);
}

TEST(TrustServiceTest, ServedAppendThenRunMatchesDirectSequence) {
  const extract::RawDataset full = SyntheticCube(13);
  const size_t base_size = full.size() - 40;
  std::vector<extract::RawObservation> delta(
      full.observations.begin() + static_cast<long>(base_size),
      full.observations.end());
  extract::RawDataset base = full;
  base.observations.resize(base_size);

  // Direct sequence.
  auto direct = PipelineBuilder()
                    .FromDataset(extract::RawDataset(base))
                    .WithOptions(ServingOptions())
                    .Build();
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(direct->Run().ok());
  ASSERT_TRUE(direct->AppendObservations(delta).ok());
  const auto expected = direct->Run();
  ASSERT_TRUE(expected.ok());

  // Served sequence: run, append, run — FIFO on one session.
  TrustService service;
  auto pipeline = PipelineBuilder()
                      .FromDataset(std::move(base))
                      .WithOptions(ServingOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(service.CreateSession("s", std::move(*pipeline)).ok());
  auto first = service.SubmitRun("s");
  auto appended = service.SubmitAppend("s", delta);
  auto second = service.SubmitRun("s");

  ASSERT_TRUE(first.get().ok());
  ASSERT_TRUE(appended.get().ok());
  auto served = second.get();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->counts.num_observations, full.size());
  ExpectReportsEqual(*served, *expected);
}

TEST(TrustServiceTest, ServedRunFromMatchesDirectWarmStart) {
  auto direct = BuildPipeline(14);
  ASSERT_TRUE(direct.ok());
  const auto cold = direct->Run();
  ASSERT_TRUE(cold.ok());
  const auto warm = direct->RunFrom(*cold);
  ASSERT_TRUE(warm.ok());

  TrustService service;
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(14)).ok());
  auto served_cold = service.SubmitRun("s").get();
  ASSERT_TRUE(served_cold.ok());
  auto served_warm = service.SubmitRunFrom("s", *served_cold).get();
  ASSERT_TRUE(served_warm.ok());
  ExpectReportsEqual(*served_warm, *warm);
}

// ---------------------------------------------------------------------------
// FIFO order + append coalescing.
// ---------------------------------------------------------------------------

/// Parks `n` blocker tasks on the executor and waits until all its workers
/// are pinned, so subsequently submitted service requests stay queued
/// until `release` flips. This makes queue-order tests deterministic.
class WorkerPins {
 public:
  WorkerPins(dataflow::Executor& executor, int n) {
    for (int i = 0; i < n; ++i) {
      futures_.push_back(executor.Submit([this] {
        started_.fetch_add(1);
        while (!release_.load()) std::this_thread::yield();
      }));
    }
    while (started_.load() < n) std::this_thread::yield();
  }
  void Release() {
    release_.store(true);
    for (auto& f : futures_) f.get();
  }

 private:
  std::atomic<int> started_{0};
  std::atomic<bool> release_{false};
  std::vector<std::future<void>> futures_;
};

TEST(TrustServiceTest, QueuedAppendsCoalesceIntoOneBatch) {
  dataflow::Executor executor(2);
  TrustService::ServiceOptions service_options;
  service_options.executor = &executor;
  TrustService service(service_options);

  const extract::RawDataset full = SyntheticCube(15);
  const size_t base_size = full.size() - 30;
  extract::RawDataset base = full;
  base.observations.resize(base_size);
  auto pipeline = PipelineBuilder()
                      .FromDataset(std::move(base))
                      .WithOptions(ServingOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(service.CreateSession("s", std::move(*pipeline)).ok());

  {
    // Pin both workers so everything below queues without starting.
    WorkerPins pins(executor, 2);
    auto run1 = service.SubmitRun("s");
    // Three appends of 10 observations each, queued back to back: they
    // must merge into ONE AppendObservations call.
    std::vector<std::future<Status>> appends;
    for (int b = 0; b < 3; ++b) {
      appends.push_back(service.SubmitAppend(
          "s", std::vector<extract::RawObservation>(
                   full.observations.begin() +
                       static_cast<long>(base_size + 10 * b),
                   full.observations.begin() +
                       static_cast<long>(base_size + 10 * (b + 1)))));
    }
    auto run2 = service.SubmitRun("s");
    pins.Release();

    auto first = run1.get();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first->counts.num_observations, base_size);  // FIFO: pre-append.
    for (auto& f : appends) EXPECT_TRUE(f.get().ok());
    auto second = run2.get();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->counts.num_observations, full.size());  // Sees all 30.
  }

  const TrustService::Stats stats = service.stats();
  EXPECT_EQ(stats.runs_submitted, 2u);
  EXPECT_EQ(stats.appends_submitted, 3u);
  EXPECT_EQ(stats.appends_coalesced, 2u);
  EXPECT_EQ(stats.append_batches_executed, 1u);
}

TEST(TrustServiceTest, RunClosesTheCoalescingWindow) {
  dataflow::Executor executor(2);
  TrustService::ServiceOptions service_options;
  service_options.executor = &executor;
  TrustService service(service_options);

  const extract::RawDataset full = SyntheticCube(16);
  const size_t base_size = full.size() - 20;
  extract::RawDataset base = full;
  base.observations.resize(base_size);
  auto pipeline = PipelineBuilder()
                      .FromDataset(std::move(base))
                      .WithOptions(ServingOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(service.CreateSession("s", std::move(*pipeline)).ok());

  {
    WorkerPins pins(executor, 2);
    const auto slice = [&](size_t begin, size_t count) {
      return std::vector<extract::RawObservation>(
          full.observations.begin() + static_cast<long>(base_size + begin),
          full.observations.begin() +
              static_cast<long>(base_size + begin + count));
    };
    auto append1 = service.SubmitAppend("s", slice(0, 10));
    auto run = service.SubmitRun("s");
    // Submitted after the run: must NOT merge into append1's batch (the
    // run in between has to observe exactly the first delta).
    auto append2 = service.SubmitAppend("s", slice(10, 10));
    pins.Release();

    EXPECT_TRUE(append1.get().ok());
    auto mid = run.get();
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(mid->counts.num_observations, base_size + 10);
    EXPECT_TRUE(append2.get().ok());
  }
  const TrustService::Stats stats = service.stats();
  EXPECT_EQ(stats.appends_submitted, 2u);
  EXPECT_EQ(stats.appends_coalesced, 0u);
  EXPECT_EQ(stats.append_batches_executed, 2u);
}

TEST(TrustServiceTest, CoalescedAppendErrorResolvesEveryFuture) {
  dataflow::Executor executor(2);
  TrustService::ServiceOptions service_options;
  service_options.executor = &executor;
  TrustService service(service_options);
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(17)).ok());

  // An observation with an invalid id poisons the whole merged batch; both
  // submitters must see the same InvalidArgument.
  extract::RawObservation good = SyntheticCube(17).observations.front();
  extract::RawObservation bad = good;
  bad.value = kb::kInvalidId;
  {
    WorkerPins pins(executor, 2);
    auto f1 = service.SubmitAppend("s", {good});
    auto f2 = service.SubmitAppend("s", {bad});
    pins.Release();
    const Status s1 = f1.get();
    const Status s2 = f2.get();
    EXPECT_EQ(s1.code(), StatusCode::kInvalidArgument) << s1.ToString();
    EXPECT_EQ(s2.code(), StatusCode::kInvalidArgument) << s2.ToString();
  }
  EXPECT_EQ(service.stats().append_batches_executed, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency across sessions.
// ---------------------------------------------------------------------------

TEST(TrustServiceTest, DistinctSessionsServeConcurrently) {
  // Four sessions, four client threads firing runs at once: everything
  // must complete (no cross-session blocking), and each session's result
  // must still equal its own direct sequential run — concurrency across
  // sessions cannot leak state between them.
  dataflow::Executor executor(4);
  TrustService::ServiceOptions service_options;
  service_options.executor = &executor;
  TrustService service(service_options);
  for (uint64_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(service
                    .CreateSession("session-" + std::to_string(s),
                                   *BuildPipeline(20 + s))
                    .ok());
  }
  // Fire runs at all sessions from multiple client threads at once.
  std::vector<std::future<StatusOr<TrustReport>>> futures;
  std::vector<std::thread> clients;
  std::mutex futures_mutex;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &futures, &futures_mutex, c] {
      for (int i = 0; i < 3; ++i) {
        auto f = service.SubmitRun("session-" + std::to_string(c));
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (auto& f : futures) {
    auto report = f.get();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  EXPECT_EQ(service.stats().runs_submitted, 12u);

  // Each session's result still equals its direct sequential run.
  for (uint64_t s = 0; s < 4; ++s) {
    auto direct = BuildPipeline(20 + s);
    ASSERT_TRUE(direct.ok());
    const auto expected = direct->Run();
    ASSERT_TRUE(expected.ok());
    auto served = service.SubmitRun("session-" + std::to_string(s)).get();
    ASSERT_TRUE(served.ok());
    ExpectReportsEqual(*served, *expected);
  }
}

// ---------------------------------------------------------------------------
// Lifecycle + error surface.
// ---------------------------------------------------------------------------

TEST(TrustServiceTest, CacheDirectoryWarmsSessionsAcrossRestarts) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/kbt_service_cache";
  std::filesystem::remove_all(dir);

  TrustService::ServiceOptions options;
  options.cache_directory = dir;

  // First service lifetime: the run compiles and persists its artifacts.
  StatusOr<TrustReport> first_report = Status::NotFound("unset");
  {
    TrustService service(options);
    auto pipeline = BuildPipeline(11);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE(service.CreateSession("tenant", std::move(*pipeline)).ok());
    first_report = service.SubmitRun("tenant").get();
    ASSERT_TRUE(first_report.ok());
  }
  ASSERT_FALSE(std::filesystem::is_empty(dir));

  // "Process restart": a new service over the same cube. The session's
  // first run loads the persisted artifacts instead of compiling — and
  // serves the bit-for-bit identical report.
  {
    TrustService service(options);
    auto pipeline = BuildPipeline(11);
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE(service.CreateSession("tenant", std::move(*pipeline)).ok());
    const StatusOr<TrustReport> warm = service.SubmitRun("tenant").get();
    ASSERT_TRUE(warm.ok());
    ExpectReportsEqual(*warm, *first_report);
  }
  // Content-addressed: both lifetimes share one entry for the one cube.
  size_t entries = 0;
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    if (file.path().extension() == ".kbtart") ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(TrustServiceTest, UnknownSessionResolvesToNotFound) {
  TrustService service;
  auto run = service.SubmitRun("nope").get();
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
  const Status append = service.SubmitAppend("nope", {}).get();
  EXPECT_EQ(append.code(), StatusCode::kNotFound);
}

TEST(TrustServiceTest, DuplicateSessionNameIsRejected) {
  TrustService service;
  ASSERT_TRUE(service.CreateSession("dup", *BuildPipeline(30)).ok());
  auto pipeline = BuildPipeline(31);
  ASSERT_TRUE(pipeline.ok());
  const Status again = service.CreateSession("dup", std::move(*pipeline));
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.SessionNames().size(), 1u);
  // The rejected pipeline was not consumed: it still runs, and can be
  // registered under a free name.
  EXPECT_TRUE(pipeline->Run().ok());
  EXPECT_TRUE(service.CreateSession("dup2", std::move(*pipeline)).ok());
  EXPECT_TRUE(service.SubmitRun("dup2").get().ok());
}

TEST(TrustServiceTest, DuplicateNameWithCacheLeavesThePipelineUntouched) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/kbt_service_dup_cache";
  std::filesystem::remove_all(dir);
  TrustService::ServiceOptions options;
  options.cache_directory = dir;
  TrustService service(options);
  ASSERT_TRUE(service.CreateSession("dup", *BuildPipeline(30)).ok());

  auto pipeline = BuildPipeline(31);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(service.CreateSession("dup", std::move(*pipeline)).code(),
            StatusCode::kInvalidArgument);
  // The collision is checked before ANY mutation: in particular no disk
  // cache was attached to the caller's still-owned pipeline.
  EXPECT_EQ(pipeline->SaveCompiledArtifacts().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TrustServiceTest, BuilderOverloadBuildsAndRegisters) {
  TrustService service;
  PipelineBuilder builder;
  builder.FromDataset(SyntheticCube(32)).WithOptions(ServingOptions());
  ASSERT_TRUE(service.CreateSession("built", std::move(builder)).ok());
  EXPECT_TRUE(service.HasSession("built"));
  EXPECT_TRUE(service.SubmitRun("built").get().ok());

  PipelineBuilder broken;  // No dataset source: Build() must fail cleanly.
  const Status status = service.CreateSession("broken", std::move(broken));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(service.HasSession("broken"));
}

TEST(TrustServiceTest, CloseSessionDrainsAndRemoves) {
  TrustService service;
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(33)).ok());
  auto pending = service.SubmitRun("s");
  ASSERT_TRUE(service.CloseSession("s").ok());
  EXPECT_FALSE(service.HasSession("s"));
  // The queued request completed (close drains, it does not cancel).
  EXPECT_TRUE(pending.get().ok());
  EXPECT_EQ(service.CloseSession("s").code(), StatusCode::kNotFound);
}

TEST(TrustServiceTest, SubmitRacingCloseIsSafe) {
  // A submit running concurrently with CloseSession must either resolve
  // NotFound or execute on the still-pinned session — never touch freed
  // memory (the TSan CI job watches this one).
  TrustService service;
  ASSERT_TRUE(service.CreateSession("r", *BuildPipeline(36)).ok());
  std::atomic<bool> stop{false};
  std::thread submitter([&service, &stop] {
    while (!stop.load()) {
      // Empty append: a cheap no-op request (or NotFound after close).
      service.SubmitAppend("r", {}).get();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(service.CloseSession("r").ok());
  stop.store(true);
  submitter.join();
  EXPECT_FALSE(service.HasSession("r"));
}

TEST(TrustServiceTest, SessionPipelineStagesRunOnServiceExecutor) {
  // CreateSession must attach the shared executor to the adopted pipeline
  // (overriding the builder), so a served run with a builder-serial
  // pipeline still equals — bit for bit — a direct run that was explicitly
  // given the same executor.
  dataflow::Executor executor(3);
  auto direct = BuildPipeline(37, &executor);
  ASSERT_TRUE(direct.ok());
  const auto expected = direct->Run();
  ASSERT_TRUE(expected.ok());

  TrustService::ServiceOptions service_options;
  service_options.executor = &executor;
  TrustService service(service_options);
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(37)).ok());
  auto served = service.SubmitRun("s").get();
  ASSERT_TRUE(served.ok());
  ExpectReportsEqual(*served, *expected);
}

TEST(TrustServiceTest, DrainWaitsForAllSessions) {
  TrustService service;
  ASSERT_TRUE(service.CreateSession("a", *BuildPipeline(34)).ok());
  ASSERT_TRUE(service.CreateSession("b", *BuildPipeline(35)).ok());
  auto fa = service.SubmitRun("a");
  auto fb = service.SubmitRun("b");
  service.Drain();
  // Both futures are ready the moment Drain returns.
  EXPECT_EQ(fa.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(fb.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_TRUE(fa.get().ok());
  EXPECT_TRUE(fb.get().ok());
}

// ---------------------------------------------------------------------------
// The read path: Query() serves published snapshots lock-free, decoupled
// from (and concurrent with) the session's queued writes.
// ---------------------------------------------------------------------------

/// Every score the snapshot serves equals the report's exactly.
void ExpectSnapshotMatchesReport(const query::Snapshot& snapshot,
                                 const TrustReport& report) {
  ASSERT_EQ(snapshot.num_sources(), report.source_kbt.size());
  for (uint32_t g = 0; g < report.source_kbt.size(); ++g) {
    const auto trust = snapshot.SourceTrust(g);
    ASSERT_TRUE(trust.has_value());
    ASSERT_EQ(trust->kbt, report.source_kbt[g].kbt) << "group " << g;
    ASSERT_EQ(trust->evidence, report.source_kbt[g].evidence) << "group " << g;
  }
  ASSERT_EQ(snapshot.num_websites(), report.website_kbt.size());
  for (uint32_t w = 0; w < report.website_kbt.size(); ++w) {
    const auto trust = snapshot.WebsiteTrust(w);
    ASSERT_TRUE(trust.has_value());
    ASSERT_EQ(trust->kbt, report.website_kbt[w].kbt) << "website " << w;
  }
  ASSERT_EQ(snapshot.num_triples(), report.predictions.size());
  for (const eval::TriplePrediction& prediction : report.predictions) {
    const auto truth = snapshot.TripleTruth(prediction.item, prediction.value);
    ASSERT_TRUE(truth.has_value());
    ASSERT_EQ(truth->probability, prediction.probability);
    ASSERT_EQ(truth->covered, prediction.covered);
  }
}

TEST(TrustServiceQueryTest, QueryOnUnknownSessionIsNotFound) {
  TrustService service;
  const auto reader = service.Query("ghost");
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(TrustServiceQueryTest, QueryIsEmptyUntilTheFirstRunCompletes) {
  TrustService service;
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(41)).ok());
  auto reader = service.Query("s");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->view(), nullptr);

  ASSERT_TRUE(service.SubmitRun("s").get().ok());
  EXPECT_NE(reader->view(), nullptr);
}

TEST(TrustServiceQueryTest, QueryServesEachCompletedRunBitForBit) {
  const extract::RawDataset full = SyntheticCube(42);
  const size_t base_size = full.size() - 40;
  std::vector<extract::RawObservation> delta(
      full.observations.begin() + static_cast<long>(base_size),
      full.observations.end());
  extract::RawDataset base = full;
  base.observations.resize(base_size);

  TrustService service;
  auto pipeline = PipelineBuilder()
                      .FromDataset(std::move(base))
                      .WithOptions(ServingOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(service.CreateSession("s", std::move(*pipeline)).ok());
  auto reader = service.Query("s");
  ASSERT_TRUE(reader.ok());

  const auto first = service.SubmitRun("s").get();
  ASSERT_TRUE(first.ok());
  ASSERT_NE(reader->view(), nullptr);
  ExpectSnapshotMatchesReport(*reader->view(), *first);
  EXPECT_EQ(reader->view()->info().sequence, 1u);

  // After an append + run, the served snapshot tracks the NEW report —
  // the parity contract "including after appends".
  ASSERT_TRUE(service.SubmitAppend("s", delta).get().ok());
  const auto second = service.SubmitRun("s").get();
  ASSERT_TRUE(second.ok());
  ExpectSnapshotMatchesReport(*reader->view(), *second);
  EXPECT_EQ(reader->view()->info().sequence, 2u);
  EXPECT_EQ(service.stats().snapshots_published, 2u);
}

TEST(TrustServiceQueryTest, PublishingCanBeDisabled) {
  TrustService::ServiceOptions options;
  options.publish_snapshots = false;
  TrustService service(options);
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(43)).ok());
  ASSERT_TRUE(service.SubmitRun("s").get().ok());

  auto reader = service.Query("s");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->view(), nullptr);
  EXPECT_EQ(service.stats().snapshots_published, 0u);
}

TEST(TrustServiceQueryTest, ReaderKeepsServingAfterCloseSession) {
  TrustService service;
  ASSERT_TRUE(service.CreateSession("s", *BuildPipeline(44)).ok());
  const auto report = service.SubmitRun("s").get();
  ASSERT_TRUE(report.ok());
  auto reader = service.Query("s");
  ASSERT_TRUE(reader.ok());
  ASSERT_NE(reader->view(), nullptr);

  ASSERT_TRUE(service.CloseSession("s").ok());
  // The session (and its pipeline) are gone; the reader co-owns the
  // registry and keeps serving the last published snapshot.
  ASSERT_NE(reader->view(), nullptr);
  ExpectSnapshotMatchesReport(*reader->view(), *report);
}

// The reader/writer stress of the read-path contract: queries proceed on
// caller threads while appends and runs churn the session. TSan (CI job)
// verifies the "readers never lock, writers never race them" claim.
TEST(TrustServiceQueryTest, ConcurrentQueriesDuringAppendsAreSafe) {
  const extract::RawDataset full = SyntheticCube(45);
  const size_t num_deltas = 8;
  const size_t batch = 16;
  const size_t base_size = full.size() - num_deltas * batch;
  extract::RawDataset base = full;
  base.observations.resize(base_size);

  TrustService service;
  auto pipeline = PipelineBuilder()
                      .FromDataset(std::move(base))
                      .WithOptions(ServingOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(service.CreateSession("s", std::move(*pipeline)).ok());
  ASSERT_TRUE(service.SubmitRun("s").get().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&service, &stop, &queries] {
      auto reader = service.Query("s");
      ASSERT_TRUE(reader.ok());
      uint64_t last_sequence = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const query::Snapshot* snapshot = reader->view();
        ASSERT_NE(snapshot, nullptr);  // A run already published.
        ASSERT_GE(snapshot->info().sequence, last_sequence);
        last_sequence = snapshot->info().sequence;
        // Exercise the index paths, not just the pointer swap.
        ASSERT_TRUE(snapshot->SourceTrust(0).has_value());
        const auto top = snapshot->TopKSources(3);
        ASSERT_LE(top.size(), 3u);
        for (size_t i = 1; i < top.size(); ++i) {
          ASSERT_GE(top[i - 1].kbt, top[i].kbt);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer traffic: interleaved appends and runs on the session strand.
  std::vector<std::future<Status>> appends;
  std::vector<std::future<StatusOr<TrustReport>>> runs;
  for (size_t d = 0; d < num_deltas; ++d) {
    const size_t begin = base_size + d * batch;
    appends.push_back(service.SubmitAppend(
        "s", {full.observations.begin() + static_cast<long>(begin),
              full.observations.begin() + static_cast<long>(begin + batch)}));
    runs.push_back(service.SubmitRun("s"));
  }
  for (auto& f : appends) ASSERT_TRUE(f.get().ok());
  StatusOr<TrustReport> last = Status::Internal("no runs");
  for (auto& f : runs) {
    last = f.get();
    ASSERT_TRUE(last.ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_GT(queries.load(), 0u);
  // Once the dust settles, the served snapshot is the last run's report.
  auto reader = service.Query("s");
  ASSERT_TRUE(reader.ok());
  ExpectSnapshotMatchesReport(*reader->view(), *last);
  EXPECT_EQ(reader->view()->info().counts.num_observations, full.size());
}

}  // namespace
}  // namespace kbt::api
