// Integration tests of the kbt::api facade. The key guarantees:
//  * Pipeline::Run() is bit-for-bit identical to the hand-wired
//    granularity -> compile -> infer -> score sequence it replaces;
//  * warm starts (RunFrom) equal a cold run with the same InitialQuality;
//  * a TSV round trip of the cube yields an identical TrustReport;
//  * the compiled-matrix cache is reused across runs and invalidated by
//    AppendObservations.
#include "kbt/kbt.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/artifact_codec.h"
#include "cache/artifact_store.h"
#include "common/math.h"
#include "core/kbt_score.h"
#include "core/multilayer_model.h"
#include "extract/observation_matrix.h"
#include "fusion/single_layer.h"
#include "granularity/assignments.h"

namespace kbt::api {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// The quickstart cube: 3 sites, 2 extractors, one data item.
extract::RawDataset QuickstartCube() {
  const kb::DataItemId born_in = kb::MakeDataItem(0, 0);
  extract::RawDataset data;
  data.num_false_by_predicate = {10};
  data.num_websites = 3;
  data.num_pages = 3;
  data.num_extractors = 2;
  data.num_patterns = 2;
  struct Event {
    uint32_t extractor, page;
    kb::ValueId value;
    float confidence;
  };
  const Event events[] = {
      {0, 0, 1, 1.0f}, {0, 1, 1, 1.0f}, {0, 2, 2, 1.0f},
      {1, 0, 1, 0.9f}, {1, 1, 2, 0.4f},
  };
  for (const Event& e : events) {
    extract::RawObservation obs;
    obs.extractor = e.extractor;
    obs.pattern = e.extractor;
    obs.website = e.page;
    obs.page = e.page;
    obs.item = born_in;
    obs.value = e.value;
    obs.confidence = e.confidence;
    data.observations.push_back(obs);
  }
  return data;
}

Options QuickstartOptions() {
  Options options;
  options.granularity = Granularity::kPageSource;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  return options;
}

exp::SyntheticConfig SmallSynthetic() {
  exp::SyntheticConfig config;
  config.num_sources = 15;
  config.num_extractors = 4;
  config.seed = 7;
  return config;
}

void ExpectVectorsEqual(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    // Bit-for-bit: both paths must execute the exact same float program.
    ASSERT_EQ(a[i], b[i]) << what << "[" << i << "]";
  }
}

void ExpectReportsEqual(const TrustReport& a, const TrustReport& b) {
  ExpectVectorsEqual(a.inference.slot_value_prob, b.inference.slot_value_prob,
                     "slot_value_prob");
  ExpectVectorsEqual(a.inference.slot_correct_prob,
                     b.inference.slot_correct_prob, "slot_correct_prob");
  ExpectVectorsEqual(a.inference.source_accuracy, b.inference.source_accuracy,
                     "source_accuracy");
  ExpectVectorsEqual(a.inference.extractor_q, b.inference.extractor_q,
                     "extractor_q");
  ASSERT_EQ(a.website_kbt.size(), b.website_kbt.size());
  for (size_t w = 0; w < a.website_kbt.size(); ++w) {
    ASSERT_EQ(a.website_kbt[w].kbt, b.website_kbt[w].kbt) << w;
    ASSERT_EQ(a.website_kbt[w].evidence, b.website_kbt[w].evidence) << w;
  }
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (size_t i = 0; i < a.predictions.size(); ++i) {
    ASSERT_EQ(a.predictions[i].item, b.predictions[i].item);
    ASSERT_EQ(a.predictions[i].value, b.predictions[i].value);
    ASSERT_EQ(a.predictions[i].probability, b.predictions[i].probability);
    ASSERT_EQ(a.predictions[i].covered, b.predictions[i].covered);
  }
  ASSERT_EQ(a.iterations(), b.iterations());
  ASSERT_EQ(a.converged(), b.converged());
}

// ---------------------------------------------------------------------------
// (a) Facade output == the hand-wired five-step sequence, bit for bit.
// ---------------------------------------------------------------------------

TEST(PipelineParityTest, MultiLayerRunMatchesHandWiredPath) {
  const extract::RawDataset data = QuickstartCube();
  const Options options = QuickstartOptions();

  // Hand-wired path (what every caller used to repeat).
  const extract::GroupAssignment assignment =
      granularity::PageSourcePlainExtractor(data);
  const auto matrix = extract::CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());
  const auto result = core::MultiLayerModel::Run(*matrix, options.multilayer);
  ASSERT_TRUE(result.ok());
  const auto kbt =
      core::ComputeWebsiteKbt(*matrix, *result, data.num_websites);
  const auto predictions = eval::TriplePredictions(
      *matrix, result->slot_value_prob, result->slot_covered);

  // Facade path.
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(options)
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const auto report = pipeline->Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ExpectVectorsEqual(report->inference.slot_value_prob,
                     result->slot_value_prob, "slot_value_prob");
  ExpectVectorsEqual(report->inference.slot_correct_prob,
                     result->slot_correct_prob, "slot_correct_prob");
  ExpectVectorsEqual(report->inference.source_accuracy,
                     result->source_accuracy, "source_accuracy");
  ExpectVectorsEqual(report->inference.extractor_precision,
                     result->extractor_precision, "extractor_precision");
  ExpectVectorsEqual(report->inference.extractor_recall,
                     result->extractor_recall, "extractor_recall");
  ASSERT_EQ(report->website_kbt.size(), kbt.size());
  for (size_t w = 0; w < kbt.size(); ++w) {
    ASSERT_EQ(report->website_kbt[w].kbt, kbt[w].kbt);
    ASSERT_EQ(report->website_kbt[w].evidence, kbt[w].evidence);
  }
  ASSERT_EQ(report->predictions.size(), predictions.size());
  for (size_t i = 0; i < predictions.size(); ++i) {
    ASSERT_EQ(report->predictions[i].probability,
              predictions[i].probability);
  }
  EXPECT_EQ(report->iterations(), result->iterations);
  EXPECT_EQ(report->counts.num_slots, matrix->num_slots());
  EXPECT_EQ(report->counts.num_sources, matrix->num_sources());
}

TEST(PipelineParityTest, SingleLayerRunMatchesHandWiredPath) {
  const extract::RawDataset data = QuickstartCube();
  Options options;
  options.model = Model::kSingleLayer;
  options.granularity = Granularity::kProvenance;
  options.single_layer.min_source_support = 1;
  options.single_layer.num_false_override = 10;

  const extract::GroupAssignment assignment =
      granularity::ProvenanceAssignment(data);
  const auto matrix = extract::CompiledMatrix::Build(data, assignment);
  ASSERT_TRUE(matrix.ok());
  const auto result =
      fusion::SingleLayerModel::Run(*matrix, options.single_layer);
  ASSERT_TRUE(result.ok());

  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(options)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto report = pipeline->Run();
  ASSERT_TRUE(report.ok());

  ExpectVectorsEqual(report->inference.slot_value_prob,
                     result->slot_value_prob, "slot_value_prob");
  ExpectVectorsEqual(report->inference.source_accuracy,
                     result->source_accuracy, "source_accuracy");
  // The baseline's correctness layer is folded in as certainty.
  for (const double c : report->inference.slot_correct_prob) {
    ASSERT_EQ(c, 1.0);
  }
  EXPECT_EQ(report->iterations(), result->iterations);
}

// ---------------------------------------------------------------------------
// (b) Warm start == cold run with the same InitialQuality.
// ---------------------------------------------------------------------------

TEST(PipelineWarmStartTest, RunFromEqualsColdRunWithSameInitialQuality) {
  auto pipeline = PipelineBuilder()
                      .FromSynthetic(SmallSynthetic())
                      .WithGranularity(Granularity::kPageSource)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto first = pipeline->Run();
  ASSERT_TRUE(first.ok());

  const auto warm = pipeline->RunFrom(*first);
  ASSERT_TRUE(warm.ok());

  // A fresh pipeline over the same cube, cold-started with the same
  // InitialQuality, must agree exactly.
  auto cold_pipeline = PipelineBuilder()
                           .FromSynthetic(SmallSynthetic())
                           .WithGranularity(Granularity::kPageSource)
                           .Build();
  ASSERT_TRUE(cold_pipeline.ok());
  const auto cold = cold_pipeline->Run(first->ToInitialQuality());
  ASSERT_TRUE(cold.ok());

  ExpectReportsEqual(*warm, *cold);
}

TEST(PipelineWarmStartTest, SmallerShapeFromOtherGranularityIsRejected) {
  // kWebsiteSource produces fewer groups than kFinest over the same cube;
  // a prefix-shaped report is only acceptable as an *append-grown* warm
  // start within one granularity, never across granularities.
  auto coarse = PipelineBuilder()
                    .FromSynthetic(SmallSynthetic())
                    .WithGranularity(Granularity::kWebsiteSource)
                    .Build();
  ASSERT_TRUE(coarse.ok());
  const auto coarse_report = coarse->Run();
  ASSERT_TRUE(coarse_report.ok());

  auto fine = PipelineBuilder()
                  .FromSynthetic(SmallSynthetic())
                  .WithGranularity(Granularity::kFinest)
                  .Build();
  ASSERT_TRUE(fine.ok());
  const auto fine_report = fine->Run();
  ASSERT_TRUE(fine_report.ok());
  ASSERT_LT(coarse_report->counts.num_sources,
            fine_report->counts.num_sources);

  const auto warm = fine->RunFrom(*coarse_report);
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineWarmStartTest, GrownShapeUnderSplitMergeIsRejected) {
  // SPLITANDMERGE re-buckets (and renumbers) groups when the cube grows,
  // so a pre-append report must not be carried onto the regrouped ids.
  exp::SyntheticConfig config = SmallSynthetic();
  auto pipeline = PipelineBuilder()
                      .FromSynthetic(config)
                      .WithGranularity(Granularity::kSplitMerge)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto first = pipeline->Run();
  ASSERT_TRUE(first.ok());

  // A new site's page grows the source side on recompilation.
  extract::RawObservation obs = pipeline->dataset().observations[0];
  obs.website = pipeline->dataset().num_websites;
  obs.page = pipeline->dataset().num_pages;
  ASSERT_TRUE(pipeline->AppendObservations({obs}).ok());

  const auto warm = pipeline->RunFrom(*first);
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineWarmStartTest, MismatchedShapeIsRejected) {
  auto fine = PipelineBuilder()
                  .FromSynthetic(SmallSynthetic())
                  .WithGranularity(Granularity::kFinest)
                  .Build();
  ASSERT_TRUE(fine.ok());
  const auto fine_report = fine->Run();
  ASSERT_TRUE(fine_report.ok());

  auto coarse = PipelineBuilder()
                    .FromSynthetic(SmallSynthetic())
                    .WithGranularity(Granularity::kWebsiteSource)
                    .Build();
  ASSERT_TRUE(coarse.ok());
  const auto warm = coarse->RunFrom(*fine_report);
  ASSERT_FALSE(warm.ok());
  EXPECT_EQ(warm.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// (c) TSV round trip yields an identical TrustReport.
// ---------------------------------------------------------------------------

TEST(PipelineRoundTripTest, TsvRoundTripYieldsIdenticalReport) {
  auto direct = PipelineBuilder()
                    .FromSynthetic(SmallSynthetic())
                    .WithGranularity(Granularity::kPageSource)
                    .Build();
  ASSERT_TRUE(direct.ok());

  const std::string path = TempPath("pipeline_roundtrip.tsv");
  ASSERT_TRUE(io::WriteRawDataset(path, direct->dataset()).ok());

  auto reloaded = PipelineBuilder()
                      .FromTsv(path)
                      .WithGranularity(Granularity::kPageSource)
                      .Build();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  const auto a = direct->Run();
  const auto b = reloaded->Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectReportsEqual(*a, *b);
}

// ---------------------------------------------------------------------------
// Compiled-matrix cache and AppendObservations.
// ---------------------------------------------------------------------------

TEST(PipelineCacheTest, RepeatedRunsReuseTheCompiledMatrix) {
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(pipeline->compiled_matrix(), nullptr);

  const auto first = pipeline->Run();
  ASSERT_TRUE(first.ok());
  const extract::CompiledMatrix* matrix = pipeline->compiled_matrix();
  ASSERT_NE(matrix, nullptr);

  const auto second = pipeline->Run();
  ASSERT_TRUE(second.ok());
  // Same object, not an equal recompilation.
  EXPECT_EQ(pipeline->compiled_matrix(), matrix);
  ExpectReportsEqual(*first, *second);
}

TEST(PipelineCacheTest, AppendObservationsPatchesTheCompiledMatrix) {
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto before = pipeline->Run();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->counts.num_observations, 5u);
  const extract::CompiledMatrix* matrix = pipeline->compiled_matrix();
  ASSERT_NE(matrix, nullptr);

  // A fourth site (id 3) claims "Warsaw" through extractor 0. The cached
  // matrix is patched in place — same object, already covering the delta —
  // instead of being dropped.
  extract::RawObservation obs;
  obs.extractor = 0;
  obs.pattern = 0;
  obs.website = 3;
  obs.page = 3;
  obs.item = kb::MakeDataItem(0, 0);
  obs.value = 1;
  ASSERT_TRUE(pipeline->AppendObservations({obs}).ok());
  ASSERT_EQ(pipeline->compiled_matrix(), matrix);
  EXPECT_EQ(pipeline->dataset().num_websites, 4u);
  // The patch already folded the new site's source group in.
  EXPECT_EQ(matrix->num_sources(), before->counts.num_sources + 1);

  const auto after = pipeline->Run();
  ASSERT_TRUE(after.ok());
  // The run reused the patched matrix (same object).
  EXPECT_EQ(pipeline->compiled_matrix(), matrix);
  EXPECT_EQ(after->counts.num_observations, 6u);
  EXPECT_EQ(after->counts.num_websites, 4u);
  EXPECT_EQ(after->counts.num_sources, before->counts.num_sources + 1);

  // And the patched run is bit-for-bit the run a fresh pipeline over the
  // grown cube produces.
  auto fresh = PipelineBuilder()
                   .FromDataset(pipeline->dataset())
                   .WithOptions(QuickstartOptions())
                   .Build();
  ASSERT_TRUE(fresh.ok());
  const auto fresh_report = fresh->Run();
  ASSERT_TRUE(fresh_report.ok());
  ExpectReportsEqual(*after, *fresh_report);
}

TEST(PipelineCacheTest, EmptyAppendKeepsTheCacheWarm) {
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->Run().ok());
  const extract::CompiledMatrix* matrix = pipeline->compiled_matrix();
  ASSERT_NE(matrix, nullptr);

  ASSERT_TRUE(pipeline->AppendObservations({}).ok());
  EXPECT_EQ(pipeline->compiled_matrix(), matrix);
  EXPECT_EQ(pipeline->dataset().size(), 5u);
}

TEST(PipelineCacheTest, AppendBeforeFirstRunCompilesTheGrownCube) {
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  extract::RawObservation obs = QuickstartCube().observations[0];
  obs.confidence = 0.5f;
  ASSERT_TRUE(pipeline->AppendObservations({obs}).ok());
  EXPECT_EQ(pipeline->compiled_matrix(), nullptr);
  const auto report = pipeline->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->counts.num_observations, 6u);
}

TEST(PipelineCacheTest, AppendUnderSplitMergeFallsBackToRecompilation) {
  exp::SyntheticConfig config = SmallSynthetic();
  auto pipeline = PipelineBuilder()
                      .FromSynthetic(config)
                      .WithGranularity(Granularity::kSplitMerge)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->Run().ok());
  ASSERT_NE(pipeline->compiled_matrix(), nullptr);

  extract::RawObservation obs = pipeline->dataset().observations[0];
  obs.confidence = 0.25f;
  ASSERT_TRUE(pipeline->AppendObservations({obs}).ok());
  // SPLITANDMERGE re-buckets on growth: the cache is dropped, the next run
  // recompiles against the grown cube and agrees with a fresh pipeline.
  EXPECT_EQ(pipeline->compiled_matrix(), nullptr);
  const auto after = pipeline->Run();
  ASSERT_TRUE(after.ok());

  auto fresh = PipelineBuilder()
                   .FromDataset(pipeline->dataset())
                   .WithGranularity(Granularity::kSplitMerge)
                   .Build();
  ASSERT_TRUE(fresh.ok());
  const auto fresh_report = fresh->Run();
  ASSERT_TRUE(fresh_report.ok());
  ExpectReportsEqual(*after, *fresh_report);
}

TEST(PipelineCacheTest, AppendedRunsMatchFreshPipelinesAcrossGranularities) {
  for (const Granularity granularity :
       {Granularity::kFinest, Granularity::kPageSource,
        Granularity::kWebsiteSource, Granularity::kProvenance}) {
    SCOPED_TRACE(static_cast<int>(granularity));
    auto pipeline = PipelineBuilder()
                        .FromSynthetic(SmallSynthetic())
                        .WithGranularity(granularity)
                        .Build();
    ASSERT_TRUE(pipeline.ok());
    ASSERT_TRUE(pipeline->Run().ok());
    const extract::CompiledMatrix* matrix = pipeline->compiled_matrix();
    ASSERT_NE(matrix, nullptr);

    // Delta: a repeat claim, a new page of a new site, and a new fact.
    std::vector<extract::RawObservation> delta;
    delta.push_back(pipeline->dataset().observations[3]);
    delta.back().confidence = 0.8f;
    extract::RawObservation fresh_site = pipeline->dataset().observations[0];
    fresh_site.website = pipeline->dataset().num_websites;
    fresh_site.page = pipeline->dataset().num_pages;
    delta.push_back(fresh_site);
    extract::RawObservation new_fact = pipeline->dataset().observations[1];
    new_fact.item = kb::MakeDataItem(999, 0);
    delta.push_back(new_fact);
    ASSERT_TRUE(pipeline->AppendObservations(delta).ok());
    ASSERT_EQ(pipeline->compiled_matrix(), matrix);

    const auto patched = pipeline->Run();
    ASSERT_TRUE(patched.ok());
    auto fresh = PipelineBuilder()
                     .FromDataset(pipeline->dataset())
                     .WithGranularity(granularity)
                     .Build();
    ASSERT_TRUE(fresh.ok());
    const auto fresh_report = fresh->Run();
    ASSERT_TRUE(fresh_report.ok());
    ExpectReportsEqual(*patched, *fresh_report);
  }
}

TEST(PipelineWarmStartTest, WarmStartSurvivesAppendWithPriorInitializedGrowth) {
  auto pipeline = PipelineBuilder()
                      .FromSynthetic(SmallSynthetic())
                      .WithGranularity(Granularity::kPageSource)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto first = pipeline->Run();
  ASSERT_TRUE(first.ok());

  // Grow the cube with a brand-new source (new page + site).
  extract::RawObservation obs = pipeline->dataset().observations[0];
  obs.website = pipeline->dataset().num_websites;
  obs.page = pipeline->dataset().num_pages;
  ASSERT_TRUE(pipeline->AppendObservations({obs}).ok());

  // The pre-append report still warm starts: learned quality is preserved
  // for surviving groups, new groups start from the config priors.
  const auto warm = pipeline->RunFrom(*first);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->counts.num_sources, first->counts.num_sources + 1);

  // It equals a cold run with the explicitly-extended InitialQuality.
  core::InitialQuality extended = first->ToInitialQuality();
  const Options& options = pipeline->options();
  extended.source_accuracy.resize(warm->counts.num_sources,
                                  options.multilayer.default_source_accuracy);
  extended.source_trusted.resize(warm->counts.num_sources, 0);
  extended.extractor_recall.resize(warm->counts.num_extractor_groups,
                                   options.multilayer.default_recall);
  extended.extractor_q.resize(warm->counts.num_extractor_groups,
                              options.multilayer.default_q);
  extended.extractor_precision.resize(
      warm->counts.num_extractor_groups,
      PrecisionFromQ(options.multilayer.default_q,
                     options.multilayer.default_recall,
                     options.multilayer.gamma));
  auto cold_pipeline = PipelineBuilder()
                           .FromDataset(pipeline->dataset())
                           .WithGranularity(Granularity::kPageSource)
                           .Build();
  ASSERT_TRUE(cold_pipeline.ok());
  const auto cold = cold_pipeline->Run(extended);
  ASSERT_TRUE(cold.ok());
  ExpectReportsEqual(*warm, *cold);
}

TEST(PipelineCacheTest, AppendRejectsBorrowedDatasetsAndInvalidIds) {
  const extract::RawDataset data = QuickstartCube();
  auto borrowed = PipelineBuilder()
                      .FromDataset(&data)
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_TRUE(borrowed.ok());
  extract::RawObservation obs = data.observations[0];
  const Status status = borrowed->AppendObservations({obs});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  auto owned = PipelineBuilder()
                   .FromDataset(QuickstartCube())
                   .WithOptions(QuickstartOptions())
                   .Build();
  ASSERT_TRUE(owned.ok());
  obs.value = kb::kInvalidId;
  EXPECT_EQ(owned->AppendObservations({obs}).code(),
            StatusCode::kInvalidArgument);
}

TEST(PipelineCacheTest, AppendRejectsPredicateWithNonPositiveDomain) {
  extract::RawDataset data = QuickstartCube();
  // Predicate 1 exists with n = 0 but is unreferenced, so Build() accepts it.
  data.num_false_by_predicate.push_back(0);
  auto pipeline = PipelineBuilder()
                      .FromDataset(std::move(data))
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  extract::RawObservation obs = pipeline->dataset().observations[0];
  obs.item = kb::MakeDataItem(0, 1);  // Lands on the n = 0 predicate.
  const Status status = pipeline->AppendObservations({obs});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The rejected batch left the dataset untouched and loadable.
  EXPECT_EQ(pipeline->dataset().size(), 5u);
  EXPECT_TRUE(io::ValidateRawDataset(pipeline->dataset()).ok());
}

TEST(PipelineTest, OutOfRangeGranularityEnumIsRejectedNotUB) {
  Options options = QuickstartOptions();
  options.granularity = static_cast<Granularity>(99);
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(options)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto report = pipeline->Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Builder validation and collaborators.
// ---------------------------------------------------------------------------

TEST(PipelineBuilderTest, RequiresExactlyOneDatasetSource) {
  auto none = PipelineBuilder().Build();
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);

  auto two = PipelineBuilder()
                 .FromDataset(QuickstartCube())
                 .FromSynthetic(SmallSynthetic())
                 .Build();
  ASSERT_FALSE(two.ok());
  EXPECT_EQ(two.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineBuilderTest, RejectsStructurallyInvalidDatasets) {
  extract::RawDataset bad = QuickstartCube();
  bad.observations[0].website = 17;  // Beyond meta count.
  auto pipeline = PipelineBuilder()
                      .FromDataset(std::move(bad))
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineBuilderTest, MissingTsvSurfacesAsNotFound) {
  auto pipeline = PipelineBuilder()
                      .FromTsv(TempPath("does_not_exist.tsv"))
                      .Build();
  ASSERT_FALSE(pipeline.ok());
  EXPECT_EQ(pipeline.status().code(), StatusCode::kNotFound);
}

TEST(PipelineBuilderTest, KvSimWiresCorpusAndGoldStandard) {
  auto pipeline = PipelineBuilder()
                      .FromKvSim(exp::KvSimConfig::Small())
                      .WithOptions(Options::Paper())
                      .Build();
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_NE(pipeline->corpus(), nullptr);
  ASSERT_NE(pipeline->gold_standard(), nullptr);
  const auto report = pipeline->Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->metrics.has_value());
  EXPECT_GT(report->metrics->num_labeled, 100u);
  EXPECT_EQ(report->website_kbt.size(), pipeline->corpus()->num_websites());
}

TEST(PipelineTest, ProgressCallbackSeesEveryStageInOrder) {
  std::vector<Stage> stages;
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(QuickstartOptions())
                      .OnProgress([&stages](Stage stage, double seconds) {
                        EXPECT_GE(seconds, 0.0);
                        stages.push_back(stage);
                      })
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE(pipeline->Run().ok());
  ASSERT_EQ(stages.size(), static_cast<size_t>(kNumStages));
  for (int i = 0; i < kNumStages; ++i) {
    EXPECT_EQ(stages[i], static_cast<Stage>(i));
  }
}

TEST(PipelineTest, StageSecondsCoverEveryStage) {
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto report = pipeline->Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->stage_seconds.size(), static_cast<size_t>(kNumStages));
  for (int i = 0; i < kNumStages; ++i) {
    EXPECT_EQ(report->stage_seconds[i].first,
              std::string(StageName(static_cast<Stage>(i))));
  }
}

// ---------------------------------------------------------------------------
// Persistent disk cache: EnableDiskCache / Save / LoadCompiledArtifacts.
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

/// Fresh per-test store directory.
std::string CacheDir(const char* name) {
  const std::string dir = TempPath(name);
  fs::remove_all(dir);
  return dir;
}

/// Path of the store entry a pipeline's artifacts live under.
std::string EntryPathFor(const Pipeline& pipeline, const std::string& dir) {
  return (fs::path(dir) /
          cache::ArtifactStore::EntryFileName(
              pipeline.dataset_fingerprint(),
              cache::CompileOptionsFingerprint(pipeline.options())))
      .string();
}

TEST(PipelineDiskCacheTest, WarmStartLoadsArtifactsBitForBit) {
  const std::string dir = CacheDir("disk_cache_warm");
  const exp::SyntheticConfig config = SmallSynthetic();

  auto cold = PipelineBuilder().FromSynthetic(config).Build();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->EnableDiskCache(dir).ok());
  const auto cold_report = cold->Run();
  ASSERT_TRUE(cold_report.ok());
  // The run auto-persisted its artifacts.
  EXPECT_TRUE(fs::exists(EntryPathFor(*cold, dir)));

  // A new session over the same content: explicit load succeeds and fills
  // the in-memory cache before any run.
  auto warm = PipelineBuilder().FromSynthetic(config).Build();
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->EnableDiskCache(dir).ok());
  EXPECT_EQ(warm->shape(), std::nullopt);
  const Status loaded = warm->LoadCompiledArtifacts();
  ASSERT_TRUE(loaded.ok()) << loaded.ToString();
  ASSERT_NE(warm->compiled_matrix(), nullptr);
  EXPECT_EQ(warm->shape()->num_slots, cold_report->counts.num_slots);

  const auto warm_report = warm->Run();
  ASSERT_TRUE(warm_report.ok());
  ExpectReportsEqual(*warm_report, *cold_report);
}

TEST(PipelineDiskCacheTest, RunAutoLoadsWithoutAnExplicitCall) {
  const std::string dir = CacheDir("disk_cache_autoload");
  const exp::SyntheticConfig config = SmallSynthetic();

  auto cold = PipelineBuilder().FromSynthetic(config).Build();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->EnableDiskCache(dir).ok());
  const auto cold_report = cold->Run();
  ASSERT_TRUE(cold_report.ok());

  auto warm = PipelineBuilder().FromSynthetic(config).Build();
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->EnableDiskCache(dir).ok());
  const auto warm_report = warm->Run();
  ASSERT_TRUE(warm_report.ok());
  ExpectReportsEqual(*warm_report, *cold_report);
}

TEST(PipelineDiskCacheTest, SplitMergeArtifactsRoundTripThroughTheStore) {
  const std::string dir = CacheDir("disk_cache_splitmerge");
  const exp::SyntheticConfig config = SmallSynthetic();

  auto cold = PipelineBuilder()
                  .FromSynthetic(config)
                  .WithGranularity(Granularity::kSplitMerge)
                  .Build();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->EnableDiskCache(dir).ok());
  const auto cold_report = cold->Run();
  ASSERT_TRUE(cold_report.ok());

  auto warm = PipelineBuilder()
                  .FromSynthetic(config)
                  .WithGranularity(Granularity::kSplitMerge)
                  .Build();
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->EnableDiskCache(dir).ok());
  ASSERT_TRUE(warm->LoadCompiledArtifacts().ok());
  const auto warm_report = warm->Run();
  ASSERT_TRUE(warm_report.ok());
  ExpectReportsEqual(*warm_report, *cold_report);
}

TEST(PipelineDiskCacheTest, AppendOnLoadedArtifactsPatchesAndRepersists) {
  const std::string dir = CacheDir("disk_cache_append");
  const exp::SyntheticConfig config = SmallSynthetic();

  auto cold = PipelineBuilder().FromSynthetic(config).Build();
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->EnableDiskCache(dir).ok());
  ASSERT_TRUE(cold->Run().ok());

  // Load into a fresh session, then grow the cube: the loaded matrix must
  // be patched incrementally (not invalidated), exactly like a matrix the
  // session compiled itself.
  auto warm = PipelineBuilder().FromSynthetic(config).Build();
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->EnableDiskCache(dir).ok());
  ASSERT_TRUE(warm->LoadCompiledArtifacts().ok());
  const extract::CompiledMatrix* matrix = warm->compiled_matrix();
  ASSERT_NE(matrix, nullptr);

  std::vector<extract::RawObservation> delta;
  delta.push_back(warm->dataset().observations[1]);  // repeat claim
  extract::RawObservation fresh_obs = warm->dataset().observations[0];
  fresh_obs.website = warm->dataset().num_websites;  // brand-new site
  fresh_obs.page = warm->dataset().num_pages;
  delta.push_back(fresh_obs);
  ASSERT_TRUE(warm->AppendObservations(delta).ok());
  EXPECT_EQ(warm->compiled_matrix(), matrix);  // patched in place

  const auto patched_report = warm->Run();
  ASSERT_TRUE(patched_report.ok());
  auto fresh = PipelineBuilder().FromDataset(warm->dataset()).Build();
  ASSERT_TRUE(fresh.ok());
  const auto fresh_report = fresh->Run();
  ASSERT_TRUE(fresh_report.ok());
  ExpectReportsEqual(*patched_report, *fresh_report);

  // The append re-persisted under the grown cube's fingerprint: a third
  // session over the grown content loads without compiling.
  EXPECT_TRUE(fs::exists(EntryPathFor(*warm, dir)));
  auto restarted = PipelineBuilder().FromDataset(warm->dataset()).Build();
  ASSERT_TRUE(restarted.ok());
  ASSERT_TRUE(restarted->EnableDiskCache(dir).ok());
  ASSERT_TRUE(restarted->LoadCompiledArtifacts().ok());
  const auto restarted_report = restarted->Run();
  ASSERT_TRUE(restarted_report.ok());
  ExpectReportsEqual(*restarted_report, *patched_report);
}

TEST(PipelineDiskCacheTest, CorruptEntriesFallBackToACleanRebuild) {
  const exp::SyntheticConfig config = SmallSynthetic();
  auto reference = PipelineBuilder().FromSynthetic(config).Build();
  ASSERT_TRUE(reference.ok());
  const auto reference_report = reference->Run();
  ASSERT_TRUE(reference_report.ok());

  // Each corruption class: the poisoned entry must be rejected with a
  // logged warning and the run must rebuild to the identical report.
  struct Corruption {
    const char* name;
    void (*poison)(const std::string& path);
  };
  const Corruption corruptions[] = {
      {"truncated",
       [](const std::string& path) {
         fs::resize_file(path, fs::file_size(path) / 3);
       }},
      {"bad_crc",
       [](const std::string& path) {
         // XOR, not overwrite: unconditionally flips bits whatever the
         // byte holds, so the corruption can never be a no-op.
         std::fstream file(path,
                           std::ios::in | std::ios::out | std::ios::binary);
         file.seekg(-5, std::ios::end);
         const char byte = static_cast<char>(file.get());
         file.seekp(-5, std::ios::end);
         file.put(static_cast<char>(byte ^ 0x55));
       }},
      {"wrong_version",
       [](const std::string& path) {
         std::fstream file(path,
                           std::ios::in | std::ios::out | std::ios::binary);
         file.seekg(8);  // format_version field
         const char byte = static_cast<char>(file.get());
         file.seekp(8);
         file.put(static_cast<char>(byte ^ 0x40));
       }},
  };
  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.name);
    const std::string dir =
        CacheDir((std::string("disk_cache_") + corruption.name).c_str());
    auto cold = PipelineBuilder().FromSynthetic(config).Build();
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(cold->EnableDiskCache(dir).ok());
    ASSERT_TRUE(cold->Run().ok());
    const std::string entry = EntryPathFor(*cold, dir);
    ASSERT_TRUE(fs::exists(entry));
    corruption.poison(entry);

    auto recovered = PipelineBuilder().FromSynthetic(config).Build();
    ASSERT_TRUE(recovered.ok());
    ASSERT_TRUE(recovered->EnableDiskCache(dir).ok());
    ::testing::internal::CaptureStderr();
    const auto report = recovered->Run();
    const std::string log = ::testing::internal::GetCapturedStderr();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_NE(log.find("disk cache"), std::string::npos)
        << "expected a logged warning, got: " << log;
    ExpectReportsEqual(*report, *reference_report);
  }
}

TEST(PipelineDiskCacheTest, MismatchedEntryContentFallsBackToARebuild) {
  const std::string dir = CacheDir("disk_cache_mismatch");

  // Persist artifacts of cube A, then plant that entry under cube B's key:
  // the stored fingerprints disagree with the key, so B must reject the
  // entry (fingerprint mismatch), log, and rebuild — identical results.
  auto a = PipelineBuilder().FromSynthetic(SmallSynthetic()).Build();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->EnableDiskCache(dir).ok());
  ASSERT_TRUE(a->Run().ok());

  exp::SyntheticConfig other = SmallSynthetic();
  other.seed = 1234;  // different content, different fingerprint
  auto reference = PipelineBuilder().FromSynthetic(other).Build();
  ASSERT_TRUE(reference.ok());
  const auto reference_report = reference->Run();
  ASSERT_TRUE(reference_report.ok());

  auto b = PipelineBuilder().FromSynthetic(other).Build();
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->EnableDiskCache(dir).ok());
  fs::copy_file(EntryPathFor(*a, dir), EntryPathFor(*b, dir));
  ::testing::internal::CaptureStderr();
  const auto report = b->Run();
  const std::string log = ::testing::internal::GetCapturedStderr();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(log.find("disk cache"), std::string::npos);
  ExpectReportsEqual(*report, *reference_report);
}

TEST(PipelineDiskCacheTest, EntriesAreKeyedByCompileOptions) {
  const std::string dir = CacheDir("disk_cache_options_key");
  const exp::SyntheticConfig config = SmallSynthetic();

  auto finest = PipelineBuilder().FromSynthetic(config).Build();
  ASSERT_TRUE(finest.ok());
  ASSERT_TRUE(finest->EnableDiskCache(dir).ok());
  ASSERT_TRUE(finest->Run().ok());

  // Same dataset, different granularity: the finest entry must not serve
  // this pipeline (different options fingerprint -> miss, not corruption).
  auto coarse = PipelineBuilder()
                    .FromSynthetic(config)
                    .WithGranularity(Granularity::kWebsiteSource)
                    .Build();
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(coarse->EnableDiskCache(dir).ok());
  EXPECT_EQ(coarse->LoadCompiledArtifacts().code(), StatusCode::kNotFound);
}

TEST(PipelineDiskCacheTest, SaveAndLoadStatusContracts) {
  const std::string dir = CacheDir("disk_cache_contracts");
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(QuickstartOptions())
                      .Build();
  ASSERT_TRUE(pipeline.ok());

  // Without a store attached, both entry points refuse.
  EXPECT_EQ(pipeline->SaveCompiledArtifacts().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(pipeline->LoadCompiledArtifacts().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(pipeline->EnableDiskCache(dir).ok());
  // Nothing compiled yet: saving would persist nothing.
  EXPECT_EQ(pipeline->SaveCompiledArtifacts().code(),
            StatusCode::kFailedPrecondition);
  // Empty store: loading misses.
  EXPECT_EQ(pipeline->LoadCompiledArtifacts().code(), StatusCode::kNotFound);

  // An explicit save after a run succeeds and round-trips.
  ASSERT_TRUE(pipeline->Run().ok());
  ASSERT_TRUE(pipeline->SaveCompiledArtifacts().ok());
  auto warm = PipelineBuilder()
                  .FromDataset(QuickstartCube())
                  .WithOptions(QuickstartOptions())
                  .Build();
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->EnableDiskCache(dir).ok());
  EXPECT_TRUE(warm->LoadCompiledArtifacts().ok());
}

TEST(PipelineTest, ScoringStagesCanBeDisabled) {
  Options options = QuickstartOptions();
  options.score_websites = false;
  options.score_sources = false;
  auto pipeline = PipelineBuilder()
                      .FromDataset(QuickstartCube())
                      .WithOptions(options)
                      .Build();
  ASSERT_TRUE(pipeline.ok());
  const auto report = pipeline->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->website_kbt.empty());
  EXPECT_TRUE(report->source_kbt.empty());
  EXPECT_FALSE(report->predictions.empty());
}

}  // namespace
}  // namespace kbt::api
