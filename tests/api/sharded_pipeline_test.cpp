// Integration tests of api::ShardedPipeline and the TrustService sharded
// session routing. The contract under test:
//  * K = 1 is a bit-for-bit PASSTHROUGH of the unsharded Pipeline —
//    reports, fingerprints and published snapshots — including after
//    appends and for any salt;
//  * K > 1 scatters deterministically: website rows come from owner
//    shards, sources concatenate in shard order, predictions merge under
//    the cross-shard rule, counts sum; repeat runs are bit-for-bit stable;
//  * appends scatter to owning shards and reject bad batches whole;
//  * per-shard disk-cache namespaces never collide;
//  * sharded TrustService sessions serve the merged surface transparently.
#include "kbt/kbt.h"

#include <cstdint>
#include <filesystem>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kbt::api {
namespace {

Options ServingOptions() {
  Options options;
  options.granularity = Granularity::kFinest;
  options.multilayer.min_source_support = 1;
  options.multilayer.min_extractor_support = 1;
  return options;
}

extract::RawDataset SyntheticCube(uint64_t seed) {
  exp::SyntheticConfig config;
  config.num_sources = 15;
  config.num_extractors = 4;
  config.seed = seed;
  return exp::GenerateSynthetic(config).data;
}

std::vector<extract::RawObservation> DeltaBatch(
    const extract::RawDataset& data, size_t n) {
  // Re-assert a slice of existing observations: valid ids, touches
  // several websites, grows nothing.
  std::vector<extract::RawObservation> delta;
  for (size_t i = 0; i < n && i < data.observations.size(); ++i) {
    delta.push_back(data.observations[i * 7 % data.observations.size()]);
  }
  return delta;
}

void ExpectVectorsEqual(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << "[" << i << "]";
  }
}

void ExpectReportsEqual(const TrustReport& a, const TrustReport& b) {
  ASSERT_EQ(a.counts.num_observations, b.counts.num_observations);
  ASSERT_EQ(a.counts.num_slots, b.counts.num_slots);
  ASSERT_EQ(a.counts.num_items, b.counts.num_items);
  ASSERT_EQ(a.counts.num_sources, b.counts.num_sources);
  ASSERT_EQ(a.counts.num_extractor_groups, b.counts.num_extractor_groups);
  ExpectVectorsEqual(a.inference.source_accuracy, b.inference.source_accuracy,
                     "source_accuracy");
  ExpectVectorsEqual(a.inference.extractor_q, b.inference.extractor_q,
                     "extractor_q");
  ASSERT_EQ(a.website_kbt.size(), b.website_kbt.size());
  for (size_t w = 0; w < a.website_kbt.size(); ++w) {
    ASSERT_EQ(a.website_kbt[w].kbt, b.website_kbt[w].kbt) << w;
    ASSERT_EQ(a.website_kbt[w].evidence, b.website_kbt[w].evidence) << w;
  }
  ASSERT_EQ(a.source_kbt.size(), b.source_kbt.size());
  for (size_t s = 0; s < a.source_kbt.size(); ++s) {
    ASSERT_EQ(a.source_kbt[s].kbt, b.source_kbt[s].kbt) << s;
  }
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (size_t i = 0; i < a.predictions.size(); ++i) {
    ASSERT_EQ(a.predictions[i].item, b.predictions[i].item) << i;
    ASSERT_EQ(a.predictions[i].value, b.predictions[i].value) << i;
    ASSERT_EQ(a.predictions[i].probability, b.predictions[i].probability)
        << i;
    ASSERT_EQ(a.predictions[i].covered, b.predictions[i].covered) << i;
  }
  ASSERT_EQ(a.iterations(), b.iterations());
  ASSERT_EQ(a.converged(), b.converged());
}

StatusOr<ShardedPipeline> BuildSharded(uint64_t seed, uint32_t num_shards,
                                       uint64_t salt = 0) {
  ShardOptions shard_options;
  shard_options.num_shards = num_shards;
  shard_options.salt = salt;
  return ShardedPipeline::Create(SyntheticCube(seed), ServingOptions(),
                                 shard_options);
}

StatusOr<Pipeline> BuildUnsharded(uint64_t seed) {
  return PipelineBuilder()
      .FromDataset(SyntheticCube(seed))
      .WithOptions(ServingOptions())
      .Build();
}

TEST(ShardedPipelineTest, RejectsZeroShards) {
  ShardOptions shard_options;
  shard_options.num_shards = 0;
  const auto sharded = ShardedPipeline::Create(SyntheticCube(1),
                                               ServingOptions(),
                                               shard_options);
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedPipelineTest, SingleShardMatchesUnshardedBitForBit) {
  // The K = 1 parity guarantee, for several salts (the salt keys a
  // degenerate one-bucket map, so it must not matter).
  for (uint64_t salt : {uint64_t{0}, uint64_t{1234}}) {
    auto sharded = BuildSharded(7, 1, salt);
    auto direct = BuildUnsharded(7);
    ASSERT_TRUE(sharded.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(sharded->num_shards(), 1u);
    EXPECT_EQ(sharded->dataset_fingerprint(), direct->dataset_fingerprint());

    const auto reports = sharded->Run();
    const auto report = direct->Run();
    ASSERT_TRUE(reports.ok());
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(reports->shards.size(), 1u);
    ExpectReportsEqual(reports->merged, *report);
    ExpectReportsEqual(reports->shards[0], *report);

    // Published snapshots carry identical serving answers and stamps.
    const auto sharded_snapshot = sharded->PublishSnapshot(*reports);
    const auto direct_snapshot = direct->PublishSnapshot(*report);
    ASSERT_NE(sharded_snapshot, nullptr);
    EXPECT_EQ(sharded_snapshot->info().dataset_fingerprint,
              direct_snapshot->info().dataset_fingerprint);
    EXPECT_EQ(sharded_snapshot->num_triples(), direct_snapshot->num_triples());
    const auto top_sharded = sharded_snapshot->TopKWebsites(5);
    const auto top_direct = direct_snapshot->TopKWebsites(5);
    ASSERT_EQ(top_sharded.size(), top_direct.size());
    for (size_t i = 0; i < top_sharded.size(); ++i) {
      EXPECT_EQ(top_sharded[i].id, top_direct[i].id);
      EXPECT_EQ(top_sharded[i].kbt, top_direct[i].kbt);
    }
  }
}

TEST(ShardedPipelineTest, SingleShardParityAfterAppend) {
  auto sharded = BuildSharded(8, 1);
  auto direct = BuildUnsharded(8);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(direct.ok());
  const auto delta = DeltaBatch(SyntheticCube(8), 50);
  ASSERT_TRUE(sharded->AppendObservations(delta).ok());
  ASSERT_TRUE(direct->AppendObservations(delta).ok());
  EXPECT_EQ(sharded->dataset_fingerprint(), direct->dataset_fingerprint());
  const auto reports = sharded->Run();
  const auto report = direct->Run();
  ASSERT_TRUE(reports.ok());
  ASSERT_TRUE(report.ok());
  ExpectReportsEqual(reports->merged, *report);
}

TEST(ShardedPipelineTest, MultiShardMergedInvariants) {
  const extract::RawDataset cube = SyntheticCube(9);
  auto sharded = BuildSharded(9, 4, /*salt=*/3);
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->num_shards(), 4u);
  EXPECT_EQ(sharded->salt(), 3u);
  const auto reports = sharded->Run();
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->shards.size(), 4u);
  const TrustReport& merged = reports->merged;

  // Counts: observations partition exactly; website space is global.
  size_t shard_observations = 0;
  for (const TrustReport& shard : reports->shards) {
    shard_observations += shard.counts.num_observations;
  }
  EXPECT_EQ(merged.counts.num_observations, shard_observations);
  EXPECT_EQ(merged.counts.num_observations, cube.observations.size());

  // Website rows come from their owner shard verbatim.
  ASSERT_EQ(merged.website_kbt.size(), cube.num_websites);
  for (uint32_t w = 0; w < merged.website_kbt.size(); ++w) {
    const uint32_t owner = query::ShardOfWebsite(w, 4, 3);
    ASSERT_LT(w, reports->shards[owner].website_kbt.size());
    EXPECT_EQ(merged.website_kbt[w].kbt,
              reports->shards[owner].website_kbt[w].kbt)
        << w;
    EXPECT_EQ(merged.website_kbt[w].evidence,
              reports->shards[owner].website_kbt[w].evidence)
        << w;
  }

  // Sources concatenate in shard order at source_offset().
  size_t total_sources = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    const TrustReport& shard = reports->shards[s];
    const size_t offset = reports->source_offset(s);
    EXPECT_EQ(offset, total_sources);
    for (size_t i = 0; i < shard.source_kbt.size(); ++i) {
      EXPECT_EQ(merged.source_kbt[offset + i].kbt, shard.source_kbt[i].kbt);
    }
    total_sources += shard.source_kbt.size();
  }
  EXPECT_EQ(merged.source_kbt.size(), total_sources);

  // Predictions: sorted by (item, value), one record per key, and the
  // served probability is the max over the shards carrying the key.
  std::set<std::pair<uint64_t, uint32_t>> seen;
  for (size_t i = 0; i < merged.predictions.size(); ++i) {
    const auto& p = merged.predictions[i];
    ASSERT_TRUE(seen.emplace(p.item, p.value).second) << i;
    if (i > 0) {
      const auto& prev = merged.predictions[i - 1];
      ASSERT_TRUE(prev.item < p.item ||
                  (prev.item == p.item && prev.value < p.value))
          << i;
    }
    double best = -1.0;
    for (const TrustReport& shard : reports->shards) {
      for (const auto& candidate : shard.predictions) {
        if (candidate.item == p.item && candidate.value == p.value) {
          best = std::max(best, candidate.probability);
        }
      }
    }
    ASSERT_EQ(p.probability, best) << i;
  }
  EXPECT_EQ(merged.counts.num_items, [&] {
    std::set<uint64_t> items;
    for (const auto& p : merged.predictions) items.insert(p.item);
    return items.size();
  }());

  // The whole gather is bit-for-bit repeatable.
  auto again = BuildSharded(9, 4, /*salt=*/3);
  ASSERT_TRUE(again.ok());
  const auto repeat = again->Run();
  ASSERT_TRUE(repeat.ok());
  ExpectReportsEqual(repeat->merged, merged);
  for (uint32_t s = 0; s < 4; ++s) {
    ExpectReportsEqual(repeat->shards[s], reports->shards[s]);
  }
}

TEST(ShardedPipelineTest, RunFromWarmStartsPerShard) {
  auto sharded = BuildSharded(10, 3);
  ASSERT_TRUE(sharded.ok());
  const auto cold = sharded->Run();
  ASSERT_TRUE(cold.ok());
  const auto warm = sharded->RunFrom(*cold);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->shards.size(), 3u);
  // Warm posterior shapes match; values converge to the same fixed point
  // shapes (bit-equality of warm vs cold is not part of the contract).
  EXPECT_EQ(warm->merged.website_kbt.size(), cold->merged.website_kbt.size());
  EXPECT_EQ(warm->merged.source_kbt.size(), cold->merged.source_kbt.size());

  // A report with the wrong shard count cannot warm-start this layout.
  ShardedTrustReport wrong;
  wrong.shards.resize(2);
  const auto mismatched = sharded->RunFrom(wrong);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardedPipelineTest, EmptyShardsAreValidWorlds) {
  // 2 websites spread over 8 shards: at least 6 shards run on zero
  // observations and must still produce aligned (all-zero) reports.
  extract::RawDataset data;
  data.num_websites = 2;
  data.num_pages = 2;
  data.num_extractors = 1;
  data.num_patterns = 1;
  data.num_false_by_predicate = {10};
  for (uint32_t w = 0; w < 2; ++w) {
    for (uint32_t rep = 0; rep < 3; ++rep) {
      extract::RawObservation obs;
      obs.extractor = 0;
      obs.pattern = 0;
      obs.website = w;
      obs.page = w;
      obs.item = kb::MakeDataItem(rep, 0);
      obs.value = 1 + w;
      data.observations.push_back(obs);
    }
  }
  ShardOptions shard_options;
  shard_options.num_shards = 8;
  auto sharded = ShardedPipeline::Create(std::move(data), ServingOptions(),
                                         shard_options);
  ASSERT_TRUE(sharded.ok());
  const auto reports = sharded->Run();
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->shards.size(), 8u);
  EXPECT_EQ(reports->merged.counts.num_observations, 6u);
  ASSERT_EQ(reports->merged.website_kbt.size(), 2u);
}

TEST(ShardedPipelineTest, AppendScattersToOwningShards) {
  auto sharded = BuildSharded(11, 4);
  ASSERT_TRUE(sharded.ok());
  size_t before = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    before += sharded->shard(s).dataset().size();
  }
  const auto delta = DeltaBatch(SyntheticCube(11), 40);
  ASSERT_TRUE(sharded->AppendObservations(delta).ok());
  size_t after = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    after += sharded->shard(s).dataset().size();
    // Every shard holds only websites it owns, delta included.
    for (const auto& obs : sharded->shard(s).dataset().observations) {
      EXPECT_EQ(query::ShardOfWebsite(obs.website, 4, 0), s);
    }
  }
  EXPECT_EQ(after, before + delta.size());
  // Empty batch: no-op.
  EXPECT_TRUE(sharded->AppendObservations({}).ok());
}

TEST(ShardedPipelineTest, BadAppendBatchIsRejectedWhole) {
  auto sharded = BuildSharded(12, 4);
  ASSERT_TRUE(sharded.ok());
  std::vector<size_t> before(4);
  for (uint32_t s = 0; s < 4; ++s) {
    before[s] = sharded->shard(s).dataset().size();
  }
  // One valid observation then one carrying an invalid id: the batch must
  // be rejected before ANY shard mutates (per-shard validation alone would
  // have applied the valid slice).
  auto delta = DeltaBatch(SyntheticCube(12), 1);
  extract::RawObservation bad = delta[0];
  bad.value = kb::kInvalidId;
  delta.push_back(bad);
  const Status status = sharded->AppendObservations(delta);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(sharded->shard(s).dataset().size(), before[s]) << s;
  }
}

TEST(ShardedPipelineTest, DiskCacheUsesPerShardNamespaces) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "kbt_shard_cache_test")
          .string();
  std::filesystem::remove_all(root);
  auto sharded = BuildSharded(13, 3);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(sharded->EnableDiskCache(root).ok());
  const auto reports = sharded->Run();
  ASSERT_TRUE(reports.ok());
  for (uint32_t s = 0; s < 3; ++s) {
    const std::filesystem::path dir =
        std::filesystem::path(root) / ("shard-" + std::to_string(s));
    EXPECT_TRUE(std::filesystem::is_directory(dir)) << dir;
    EXPECT_NE(std::filesystem::directory_iterator(dir),
              std::filesystem::directory_iterator())
        << "shard " << s << " persisted nothing";
  }
  std::filesystem::remove_all(root);
}

TEST(ShardedPipelineTest, PublishSnapshotServesMergedAndPerShardViews) {
  auto sharded = BuildSharded(14, 4);
  ASSERT_TRUE(sharded.ok());
  const auto reports = sharded->Run();
  ASSERT_TRUE(reports.ok());

  // Before publishing: merged registry empty, merged view all-null.
  EXPECT_EQ(sharded->snapshot_registry()->Current(), nullptr);
  const auto snapshot = sharded->PublishSnapshot(*reports);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(sharded->snapshot_registry()->Current(), snapshot);
  EXPECT_EQ(snapshot->info().dataset_fingerprint,
            sharded->dataset_fingerprint());

  // The flattened snapshot serves owner-shard website rows...
  const query::MergedSnapshot view = sharded->MergedView();
  ASSERT_EQ(view.num_shards(), 4u);
  for (uint32_t w = 0; w < reports->merged.website_kbt.size(); ++w) {
    const auto flat = snapshot->WebsiteTrust(w);
    const auto routed = view.WebsiteTrust(w);
    ASSERT_EQ(flat.has_value(), routed.has_value()) << w;
    if (flat.has_value()) {
      EXPECT_EQ(flat->kbt, routed->kbt) << w;
      EXPECT_EQ(flat->evidence, routed->evidence) << w;
    }
  }
  // ...and the merged view's ranked websites agree with the flat ranking.
  const auto flat_top = snapshot->TopKWebsites(5);
  const auto view_top = view.TopKWebsites(5);
  ASSERT_EQ(flat_top.size(), view_top.size());
  for (size_t i = 0; i < flat_top.size(); ++i) {
    EXPECT_EQ(flat_top[i].id, view_top[i].id);
    EXPECT_EQ(flat_top[i].kbt, view_top[i].kbt);
  }
}

TEST(TrustServiceShardedTest, ShardedSessionServesMergedSurface) {
  TrustService service;
  auto sharded = BuildSharded(15, 4);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(
      service.CreateShardedSession("cube", std::move(*sharded)).ok());
  EXPECT_TRUE(service.HasSession("cube"));

  // Duplicate names fail for sharded sessions too.
  auto second = BuildSharded(15, 2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(
      service.CreateShardedSession("cube", std::move(*second)).code(),
      StatusCode::kInvalidArgument);

  // A warm start before any completed run cannot exist on a sharded
  // session (per-shard state is session-retained, not caller-supplied).
  auto premature = service.SubmitRunFrom("cube", TrustReport()).get();
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);

  const auto report = service.SubmitRun("cube").get();
  ASSERT_TRUE(report.ok());

  // The resolved report is the merged one a direct sharded run produces.
  auto direct = BuildSharded(15, 4);
  ASSERT_TRUE(direct.ok());
  const auto expected = direct->Run();
  ASSERT_TRUE(expected.ok());
  ExpectReportsEqual(*report, expected->merged);

  // Query serves the merged logical snapshot (auto-published).
  auto reader = service.Query("cube");
  ASSERT_TRUE(reader.ok());
  const query::Snapshot* snapshot = reader->view();
  ASSERT_NE(snapshot, nullptr);
  for (uint32_t w = 0; w < expected->merged.website_kbt.size(); ++w) {
    const auto served = snapshot->WebsiteTrust(w);
    ASSERT_TRUE(served.has_value()) << w;
    EXPECT_EQ(served->kbt, expected->merged.website_kbt[w].kbt) << w;
  }

  // Appends route through the scatter; the next run reflects them.
  const auto delta = DeltaBatch(SyntheticCube(15), 30);
  ASSERT_TRUE(service.SubmitAppend("cube", delta).get().ok());
  const auto grown = service.SubmitRun("cube").get();
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown->counts.num_observations,
            expected->merged.counts.num_observations + delta.size());

  // Warm start now works off the retained per-shard reports.
  const auto warm = service.SubmitRunFrom("cube", TrustReport()).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->counts.num_observations, grown->counts.num_observations);

  EXPECT_TRUE(service.CloseSession("cube").ok());
  EXPECT_FALSE(service.HasSession("cube"));
}

TEST(TrustServiceShardedTest, ShardedAndPlainSessionsCoexist) {
  TrustService service;
  auto sharded = BuildSharded(16, 3);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(service.CreateShardedSession("sharded",
                                           std::move(*sharded)).ok());
  auto plain = BuildUnsharded(16);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(service.CreateSession("plain", std::move(*plain)).ok());

  auto sharded_report = service.SubmitRun("sharded");
  auto plain_report = service.SubmitRun("plain");
  ASSERT_TRUE(plain_report.get().ok());
  ASSERT_TRUE(sharded_report.get().ok());
  EXPECT_EQ(service.SessionNames().size(), 2u);
  EXPECT_EQ(service.stats().runs_submitted, 2u);
  EXPECT_EQ(service.stats().snapshots_published, 2u);
}

// Sanitizer-facing stress: concurrent submitters and lock-free readers
// against one sharded session, while the scatter fans out on the shared
// executor underneath. TSan/ASan runs of this suite are the machine check
// that the scatter/gather and merged-registry publication are race-free.
TEST(TrustServiceShardedTest, ConcurrentSubmittersAndReaders) {
  TrustService service;
  auto sharded = BuildSharded(17, 4);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(service.CreateShardedSession("cube", std::move(*sharded)).ok());
  ASSERT_TRUE(service.SubmitRun("cube").get().ok());  // first snapshot up

  std::vector<std::thread> threads;
  // Writers: interleaved runs and appends from several client threads.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&service, t] {
      for (int i = 0; i < 3; ++i) {
        if ((t + i) % 2 == 0) {
          service.SubmitRun("cube").get();
        } else {
          service.SubmitAppend("cube", DeltaBatch(SyntheticCube(17), 5))
              .get();
        }
      }
    });
  }
  // Readers: lock-free snapshot queries racing the publishes.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&service] {
      auto reader = service.Query("cube");
      ASSERT_TRUE(reader.ok());
      for (int i = 0; i < 200; ++i) {
        const query::Snapshot* snapshot = reader->view();
        ASSERT_NE(snapshot, nullptr);
        snapshot->TopKWebsites(3);
        snapshot->TripleTruth(1, 2);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  service.Drain();
  EXPECT_GE(service.stats().runs_submitted, 1u);
}

}  // namespace
}  // namespace kbt::api
