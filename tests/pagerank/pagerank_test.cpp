#include "pagerank/pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "corpus/link_graph.h"

namespace kbt::pagerank {
namespace {

using corpus::LinkGraph;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRankTest, UniformOnSymmetricCycle) {
  // 0 -> 1 -> 2 -> 3 -> 0: perfect symmetry, uniform rank.
  LinkGraph g = LinkGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto rank = ComputePageRank(g);
  ASSERT_TRUE(rank.ok());
  EXPECT_NEAR(Sum(*rank), 1.0, 1e-9);
  for (double r : *rank) EXPECT_NEAR(r, 0.25, 1e-9);
}

TEST(PageRankTest, HubAccumulatesRank) {
  // Star: everyone links to node 0.
  LinkGraph g = LinkGraph::FromEdges(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto rank = ComputePageRank(g);
  ASSERT_TRUE(rank.ok());
  for (int i = 1; i < 5; ++i) {
    EXPECT_GT((*rank)[0], (*rank)[static_cast<size_t>(i)] * 3);
  }
  EXPECT_NEAR(Sum(*rank), 1.0, 1e-9);
}

TEST(PageRankTest, DanglingMassIsRedistributed) {
  // Node 1 has no out-links; rank must still sum to 1.
  LinkGraph g = LinkGraph::FromEdges(3, {{0, 1}, {2, 1}});
  const auto rank = ComputePageRank(g);
  ASSERT_TRUE(rank.ok());
  EXPECT_NEAR(Sum(*rank), 1.0, 1e-9);
  EXPECT_GT((*rank)[1], (*rank)[0]);
}

TEST(PageRankTest, TwoNodeExactSolution) {
  // 0 <-> 1 symmetric: rank 0.5 each.
  LinkGraph g = LinkGraph::FromEdges(2, {{0, 1}, {1, 0}});
  const auto rank = ComputePageRank(g);
  ASSERT_TRUE(rank.ok());
  EXPECT_NEAR((*rank)[0], 0.5, 1e-9);
  EXPECT_NEAR((*rank)[1], 0.5, 1e-9);
}

TEST(PageRankTest, RejectsBadInputs) {
  LinkGraph empty;
  EXPECT_FALSE(ComputePageRank(empty).ok());
  LinkGraph g = LinkGraph::FromEdges(2, {{0, 1}});
  PageRankConfig bad;
  bad.damping = 1.0;
  EXPECT_FALSE(ComputePageRank(g, bad).ok());
}

TEST(PageRankTest, NormalizeToUnitInterval) {
  const auto normalized = NormalizeToUnitInterval({0.1, 0.4, 0.2});
  EXPECT_DOUBLE_EQ(normalized[1], 1.0);
  EXPECT_DOUBLE_EQ(normalized[0], 0.25);
  EXPECT_DOUBLE_EQ(normalized[2], 0.5);
}

TEST(PageRankTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 1, 2}, {5, 5, 6, 6}), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
}

TEST(PageRankTest, DescendingRanks) {
  const auto ranks = DescendingRanks({0.1, 0.9, 0.5});
  EXPECT_EQ(ranks[0], 2u);
  EXPECT_EQ(ranks[1], 0u);
  EXPECT_EQ(ranks[2], 1u);
}

TEST(PageRankTest, PopularSitesOutrankTailSites) {
  // A preferential-attachment graph generated from site popularity: the
  // most popular sites should land in the top ranks.
  std::vector<corpus::Website> sites(100);
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i].id = static_cast<uint32_t>(i);
    sites[i].popularity = i < 5 ? 50.0 : 0.5;  // Five celebrity sites.
  }
  Rng rng(4);
  LinkGraph g = LinkGraph::Generate(sites, 6.0, rng);
  const auto rank = ComputePageRank(g);
  ASSERT_TRUE(rank.ok());
  const auto ranks = DescendingRanks(*rank);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_LT(ranks[i], 15u) << "celebrity site " << i;
  }
}

}  // namespace
}  // namespace kbt::pagerank
