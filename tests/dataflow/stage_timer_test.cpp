#include "dataflow/stage_timer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace kbt::dataflow {
namespace {

TEST(StageTimersTest, AddAccumulates) {
  StageTimers timers;
  timers.Add("ExtCorr", 1.5);
  timers.Add("ExtCorr", 0.5);
  timers.Add("TriplePr", 2.0);
  EXPECT_DOUBLE_EQ(timers.TotalSeconds("ExtCorr"), 2.0);
  EXPECT_DOUBLE_EQ(timers.TotalSeconds("TriplePr"), 2.0);
  EXPECT_EQ(timers.Count("ExtCorr"), 2);
  EXPECT_DOUBLE_EQ(timers.MeanSeconds("ExtCorr"), 1.0);
}

TEST(StageTimersTest, UnknownStageIsZero) {
  StageTimers timers;
  EXPECT_DOUBLE_EQ(timers.TotalSeconds("nope"), 0.0);
  EXPECT_EQ(timers.Count("nope"), 0);
  EXPECT_DOUBLE_EQ(timers.MeanSeconds("nope"), 0.0);
}

TEST(StageTimersTest, ScopeRecordsElapsedTime) {
  StageTimers timers;
  {
    StageTimers::Scope scope(timers, "stage");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(timers.TotalSeconds("stage"), 0.015);
  EXPECT_EQ(timers.Count("stage"), 1);
}

TEST(StageTimersTest, EntriesSortedByName) {
  StageTimers timers;
  timers.Add("b", 1.0);
  timers.Add("a", 2.0);
  timers.Add("c", 3.0);
  const auto entries = timers.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "a");
  EXPECT_EQ(entries[1].first, "b");
  EXPECT_EQ(entries[2].first, "c");
}

TEST(StageTimersTest, ClearResets) {
  StageTimers timers;
  timers.Add("x", 1.0);
  timers.Clear();
  EXPECT_TRUE(timers.Entries().empty());
  EXPECT_DOUBLE_EQ(timers.TotalSeconds("x"), 0.0);
}

TEST(StageTimersTest, ConcurrentAddsAreSafe) {
  StageTimers timers;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&timers] {
      for (int i = 0; i < 1000; ++i) timers.Add("shared", 0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(timers.Count("shared"), 8000);
  EXPECT_NEAR(timers.TotalSeconds("shared"), 8.0, 1e-6);
}

}  // namespace
}  // namespace kbt::dataflow
