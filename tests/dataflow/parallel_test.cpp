#include "dataflow/parallel.h"

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace kbt::dataflow {
namespace {

TEST(ParallelTest, ParallelForVisitsEveryIndexOnce) {
  Executor exec(4);
  std::vector<std::atomic<int>> visits(1000);
  exec.ParallelFor(1000, [&visits](size_t i) { visits[i].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelTest, ParallelForZeroIsNoop) {
  Executor exec(2);
  exec.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelTest, ParallelForComputesCorrectSum) {
  Executor exec(8);
  std::vector<long long> values(10000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long long> total{0};
  exec.ParallelForRanges(values.size(), [&](size_t begin, size_t end) {
    long long local = 0;
    for (size_t i = begin; i < end; ++i) local += values[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 10000LL * 9999 / 2);
}

TEST(ParallelTest, ParallelForRangesCoversWithoutOverlap) {
  Executor exec(4);
  std::vector<std::atomic<int>> visits(777);
  exec.ParallelForRanges(
      777,
      [&visits](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
      },
      /*num_chunks=*/13);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelTest, ParallelForGroupsRunsEachGroup) {
  Executor exec(4);
  std::vector<std::atomic<int>> visits(57);
  exec.ParallelForGroups(57, [&visits](size_t g) { visits[g].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelTest, SingleThreadExecutorStillCorrect) {
  Executor exec(1);
  std::atomic<int> count{0};
  exec.ParallelFor(100, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelTest, ExecutorIsReusableAcrossStages) {
  Executor exec(4);
  std::atomic<int> count{0};
  for (int stage = 0; stage < 10; ++stage) {
    exec.ParallelFor(100, [&count](size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ParallelTest, DefaultExecutorIsSingleton) {
  Executor& a = DefaultExecutor();
  Executor& b = DefaultExecutor();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
}

TEST(ParallelTest, NestedParallelForIsReentrant) {
  // A parallel body opening another parallel loop on the SAME executor is
  // the serving pattern (a request task runs inference stages). The scoped
  // joins + thread donation must keep a saturated pool from deadlocking.
  Executor exec(2);
  std::atomic<int> count{0};
  exec.ParallelFor(8, [&exec, &count](size_t) {
    exec.ParallelFor(16, [&count](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ParallelTest, NestedParallelForOnSingleThreadExecutor) {
  Executor exec(1);
  std::atomic<int> count{0};
  exec.ParallelForGroups(4, [&exec, &count](size_t) {
    exec.ParallelForRanges(10, [&count](size_t begin, size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_EQ(count.load(), 40);
}

TEST(ParallelTest, SubmitReturnsResultThroughFuture) {
  Executor exec(2);
  std::future<long long> f = exec.Submit([] {
    long long sum = 0;
    for (int i = 1; i <= 100; ++i) sum += i;
    return sum;
  });
  EXPECT_EQ(f.get(), 5050);
}

TEST(ParallelTest, SubmitPropagatesExceptions) {
  Executor exec(2);
  std::future<int> f =
      exec.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelTest, SubmittedTaskCanRunParallelLoops) {
  // The TrustService composition in miniature: a request submitted as one
  // task fans out its own stages on the same executor and joins them.
  Executor exec(2);
  std::atomic<int> count{0};
  std::future<int> f = exec.Submit([&exec, &count] {
    exec.ParallelFor(32, [&count](size_t) { count.fetch_add(1); });
    return count.load();
  });
  EXPECT_EQ(f.get(), 32);
}

TEST(ParallelTest, ConcurrentSubmittedTasksWithNestedLoops) {
  Executor exec(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(exec.Submit([&exec, &count] {
      exec.ParallelForRanges(100, [&count](size_t begin, size_t end) {
        count.fetch_add(static_cast<int>(end - begin));
      });
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 800);
}

}  // namespace
}  // namespace kbt::dataflow
