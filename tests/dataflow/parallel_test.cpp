#include "dataflow/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace kbt::dataflow {
namespace {

TEST(ParallelTest, ParallelForVisitsEveryIndexOnce) {
  Executor exec(4);
  std::vector<std::atomic<int>> visits(1000);
  exec.ParallelFor(1000, [&visits](size_t i) { visits[i].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelTest, ParallelForZeroIsNoop) {
  Executor exec(2);
  exec.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelTest, ParallelForComputesCorrectSum) {
  Executor exec(8);
  std::vector<long long> values(10000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long long> total{0};
  exec.ParallelForRanges(values.size(), [&](size_t begin, size_t end) {
    long long local = 0;
    for (size_t i = begin; i < end; ++i) local += values[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 10000LL * 9999 / 2);
}

TEST(ParallelTest, ParallelForRangesCoversWithoutOverlap) {
  Executor exec(4);
  std::vector<std::atomic<int>> visits(777);
  exec.ParallelForRanges(
      777,
      [&visits](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
      },
      /*num_chunks=*/13);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelTest, ParallelForGroupsRunsEachGroup) {
  Executor exec(4);
  std::vector<std::atomic<int>> visits(57);
  exec.ParallelForGroups(57, [&visits](size_t g) { visits[g].fetch_add(1); });
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelTest, SingleThreadExecutorStillCorrect) {
  Executor exec(1);
  std::atomic<int> count{0};
  exec.ParallelFor(100, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelTest, ExecutorIsReusableAcrossStages) {
  Executor exec(4);
  std::atomic<int> count{0};
  for (int stage = 0; stage < 10; ++stage) {
    exec.ParallelFor(100, [&count](size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ParallelTest, DefaultExecutorIsSingleton) {
  Executor& a = DefaultExecutor();
  Executor& b = DefaultExecutor();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
}

}  // namespace
}  // namespace kbt::dataflow
