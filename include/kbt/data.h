#ifndef KBT_API_DATA_H_
#define KBT_API_DATA_H_

/// Dataset vocabulary of the public API: the raw observation cube, the
/// bundled dataset generators (KV simulation, Section 5.2.1 synthetic, the
/// Tables 2-4 motivating example), the gold standard, TSV persistence, and
/// the method-comparison runner. Everything here is reachable from kbt/*
/// without touching src/ paths directly.

#include "eval/gold_standard.h"
#include "exp/kv_sim.h"
#include "exp/motivating_example.h"
#include "exp/runners.h"
#include "exp/synthetic.h"
#include "extract/raw_dataset.h"
#include "io/dataset_io.h"
#include "kb/ids.h"

namespace kbt::api {

// Core dataset types under the api namespace for fluent call sites.

/// The sparse observation cube X = {X_ewdv}: extraction events plus the
/// meta counts and per-predicate domain sizes inference needs
/// (extract::RawDataset).
using extract::RawDataset;
/// One extraction event: extractor+pattern claims page states (item,
/// value) with a confidence (extract::RawObservation).
using extract::RawObservation;

}  // namespace kbt::api

#endif  // KBT_API_DATA_H_
