#ifndef KBT_API_SHARD_H_
#define KBT_API_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kbt/options.h"
#include "kbt/pipeline.h"
#include "kbt/query.h"
#include "kbt/report.h"

/// kbt sharding — partition the cube, scatter the pipeline, merge the
/// read path.
///
/// The paper ran KBT on 2.8B facts by fanning the E/M passes out over
/// MapReduce (Dong et al., VLDB 2015, Sec. 4). This layer reproduces that
/// decomposition in-process: a deterministic WEBSITE-keyed partitioner
/// splits one observation cube into K disjoint shards, a ShardedPipeline
/// owns one Pipeline per shard (each with its own artifact-store namespace
/// and snapshot registry) and scatters Run / RunFrom / Append across the
/// executor, and the query layer merges the K per-shard snapshots back
/// into one logical read view.
///
/// Why websites are the key: source groups never span websites, so every
/// source group — and therefore every per-source and per-website KBT
/// aggregate — lives entirely inside one shard and is served exactly.
/// Only (item, value) triples can span shards (the same triple claimed by
/// pages on differently-sharded websites); those merge under one
/// deterministic rule, documented on MergedSnapshot.
///
/// Determinism contract:
///  * The website -> shard map is a pure function of (id, K, salt) through
///    the repo's stable Mix64 hash; partitioning is a deterministic,
///    order-preserving scatter (bit-for-bit reproducible union).
///  * K = 1 is a PASSTHROUGH: the single shard holds the whole cube and
///    the merged report/snapshot are bit-for-bit identical to what the
///    unsharded Pipeline produces (parity tests pin this).
///  * K > 1 runs EM independently per shard. Because the model couples
///    sources only through shared triples, per-shard posteriors are the
///    paper's MapReduce approximation, not a bit-identical refactoring of
///    the K = 1 run — by design, and documented here rather than hidden.
///    Given the same (cube, options, K, salt), results are still
///    bit-for-bit reproducible run to run.
namespace kbt::dataflow {
class Executor;
}  // namespace kbt::dataflow

namespace kbt::query {

/// The shard owning `website` under (num_shards, salt): the public face of
/// the partitioner's stable hash. Routing, tests and capacity planning use
/// it; num_shards == 0 or 1 always yields shard 0.
uint32_t ShardOfWebsite(uint32_t website, uint32_t num_shards,
                        uint64_t salt = 0);

/// One source group's served trust together with the shard that owns it.
/// Source-group ids are DENSE AND SHARD-LOCAL (each shard compiles its own
/// granularity assignment), so a bare id is meaningless across shards;
/// cross-shard source queries return this pair instead.
struct MergedSourceTrust {
  uint32_t shard = 0;
  query::SourceTrust trust;
};

/// A zero-copy logical read view over K per-shard Snapshots: point lookups
/// route (websites) or probe-and-merge (triples), top-k queries k-way
/// merge the shards' build-time sorted rank orders through a heap with
/// deterministic tie-breaks. The component snapshots are immutable and
/// shared, so a MergedSnapshot is cheap to construct, safe to copy, and
/// safe to query from any number of threads concurrently.
///
/// Cross-shard triple rule (applied identically here and in the flattened
/// merged TrustReport): when several shards carry the same (item, value),
/// the served record is the single most confident shard's — highest
/// probability, then covered = true over false, then the lowest shard
/// index. Filters apply to the per-shard candidates BEFORE the merge, so
/// the answer is the most confident *passing* claim.
///
/// Missing shards (a null entry, e.g. a shard that has not published yet)
/// are served as empty worlds. Websites route to their owner shard only —
/// the zero-evidence rows other shards carry for alignment are never
/// duplicated into merged answers.
class MergedSnapshot {
 public:
  /// An empty view: every lookup misses, every top-k is empty.
  MergedSnapshot() = default;
  /// Wraps `shards` (positional: index = shard id under `salt`). Null
  /// entries are legal and act as empty shards.
  explicit MergedSnapshot(
      std::vector<std::shared_ptr<const query::Snapshot>> shards,
      uint64_t salt = 0);

  size_t num_shards() const { return shards_.size(); }
  /// The component snapshot for one shard (null when absent).
  const query::Snapshot* shard(uint32_t shard_index) const;
  /// Total distinct triples across shards, counting a cross-shard triple
  /// once per shard that carries it (an upper bound on merged keys).
  size_t TotalTriples() const;

  // ---- Point lookups ----
  /// Routes to the owner shard: exact, O(1). nullopt for unknown websites.
  std::optional<query::SourceTrust> WebsiteTrust(uint32_t website) const;
  /// A source group WITHIN one shard (ids are shard-local; see
  /// MergedSourceTrust). nullopt for unknown shard or id.
  std::optional<query::SourceTrust> ShardSourceTrust(
      uint32_t shard_index, uint32_t source_group) const;
  /// Probes every shard and merges under the cross-shard triple rule.
  std::optional<query::TripleTruth> TripleTruth(uint64_t item,
                                                uint32_t value) const;

  // ---- Enumeration ----
  /// Every candidate value any shard extracted for `item`, one merged
  /// record per distinct value (cross-shard rule), ordered by probability
  /// descending then value ascending.
  std::vector<query::TripleTruth> ItemValues(uint64_t item) const;

  // ---- K-way top-k merges over the shards' sorted rank orders ----
  /// The k most trustworthy websites across all shards (KBT descending,
  /// id ascending on ties). Each website is considered only in its owner
  /// shard, so ids never repeat.
  std::vector<query::SourceTrust> TopKWebsites(
      size_t k, const query::SourceFilter& filter = {}) const;
  /// The k most trustworthy source groups across all shards (KBT
  /// descending, then shard ascending, then id ascending), shard-tagged.
  std::vector<MergedSourceTrust> TopKSources(
      size_t k, const query::SourceFilter& filter = {}) const;
  /// The k most believed distinct triples across all shards (probability
  /// descending, then item/value ascending), deduplicated under the
  /// cross-shard rule.
  std::vector<query::TripleTruth> TopKTriples(
      size_t k, const query::TripleFilter& filter = {}) const;

 private:
  std::vector<std::shared_ptr<const query::Snapshot>> shards_;
  uint64_t salt_ = 0;
};

/// What changed between two merged views with the same shard layout:
/// per-shard diffs plus cross-shard aggregates.
struct MergedSnapshotDiff {
  /// One DiffSnapshots per shard index (default-constructed where either
  /// side's shard snapshot is absent). Source moves live here — source ids
  /// are shard-local.
  std::vector<query::SnapshotDiff> shard_diffs;
  /// Population churn summed across shards.
  size_t sources_added = 0;
  size_t sources_removed = 0;
  size_t websites_added = 0;
  size_t websites_removed = 0;
  size_t triples_added = 0;
  size_t triples_removed = 0;
  /// The websites that moved most across ALL shards: the per-shard
  /// top_website_moves k-way merged by |delta| descending (id ascending on
  /// ties), deduplicated by id (owner-shard entry wins), truncated to the
  /// requested k.
  std::vector<query::SourceMove> top_website_moves;
};

/// Diffs two merged views shard by shard (positional pairing over
/// min(num_shards) — diff views from the same sharded pipeline, where the
/// layout cannot change). O(sum of shard sizes).
MergedSnapshotDiff DiffMergedSnapshots(const MergedSnapshot& before,
                                       const MergedSnapshot& after,
                                       size_t top_k = 10);

}  // namespace kbt::query

namespace kbt::api {

/// Shard layout of one ShardedPipeline: fixed at Create, part of the
/// result identity (same cube + options + num_shards + salt => bit-for-bit
/// the same ShardedTrustReport).
struct ShardOptions {
  /// Number of shards K (>= 1). K = 1 is the bit-for-bit passthrough.
  uint32_t num_shards = 1;
  /// Perturbs the website -> shard map; must stay fixed for the pipeline's
  /// lifetime (it keys every scatter).
  uint64_t salt = 0;
  /// Scatter/gather executor, shared with the shard pipelines' parallel
  /// stages. Null selects dataflow::DefaultExecutor(). Must outlive the
  /// ShardedPipeline.
  dataflow::Executor* executor = nullptr;
};

/// The gathered result of one sharded run: the per-shard reports verbatim
/// plus one flattened logical report.
///
/// `merged` carries the SERVING surface — website_kbt (rows from each
/// website's owner shard), source_kbt (shards concatenated in shard order;
/// see source_offset), predictions (cross-shard triple rule, sorted by
/// item then value) and summed counts/stage timings. Its `inference`
/// vectors are intentionally empty: slot/group coordinates are shard-local
/// and do not concatenate meaningfully, so warm starts go through the
/// per-shard reports (RunFrom takes the whole ShardedTrustReport), never
/// through `merged`.
struct ShardedTrustReport {
  /// The flattened logical report (== shards[0] when K = 1).
  TrustReport merged;
  /// One report per shard, exactly as that shard's Pipeline produced it.
  std::vector<TrustReport> shards;

  /// First global source index of one shard inside a shard-order
  /// concatenation: merged.source_kbt[source_offset(s) + local_id] is
  /// shard s's source_kbt[local_id].
  size_t source_offset(uint32_t shard_index) const {
    size_t offset = 0;
    for (uint32_t s = 0; s < shard_index && s < shards.size(); ++s) {
      offset += shards[s].source_kbt.size();
    }
    return offset;
  }
};

/// K per-shard Pipelines behind one Pipeline-shaped surface: Create
/// partitions the cube (website-keyed, deterministic), Run / RunFrom
/// scatter one run per shard across the executor and gather the reports,
/// AppendObservations scatters the delta to the owning shards, and
/// PublishSnapshot publishes each shard's snapshot on that shard's own
/// registry PLUS one flattened logical snapshot on the sharded pipeline's
/// registry — so existing SnapshotReader-based read paths work unchanged
/// against a sharded backend.
///
/// Scatter joins use TaskGroup (help-while-waiting), so a sharded run is
/// safe to execute from a task already running on the shared executor —
/// in particular from a TrustService session strand.
///
/// Like Pipeline: movable, not copyable, not thread-safe; serialize
/// mutations (a TrustService strand does exactly that).
class ShardedPipeline {
 public:
  /// Partitions `dataset` under `shard_options` and builds one Pipeline
  /// per shard (each validates its slice against the replicated global
  /// meta). InvalidArgument when num_shards == 0. Gold standards and
  /// metrics are not wired through shards — evaluate on an unsharded run.
  static StatusOr<ShardedPipeline> Create(extract::RawDataset dataset,
                                          Options options,
                                          ShardOptions shard_options);

  ShardedPipeline(ShardedPipeline&&) noexcept;
  ShardedPipeline& operator=(ShardedPipeline&&) noexcept;
  ~ShardedPipeline();

  /// Runs every shard (scattered across the executor, gathered on the
  /// caller) and flattens the merged logical report. The first failing
  /// shard's error is returned, annotated with its shard index.
  StatusOr<ShardedTrustReport> Run();

  /// Warm start: each shard re-runs from its own previous report.
  /// FailedPrecondition when `previous` has a different shard count.
  StatusOr<ShardedTrustReport> RunFrom(const ShardedTrustReport& previous);

  /// Scatters the delta by website to the owning shards' pipelines
  /// (touched shards patch their CSRs incrementally, untouched shards are
  /// no-ops). The batch is pre-validated against the global meta before
  /// any shard mutates, so a bad delta is rejected whole.
  Status AppendObservations(
      const std::vector<extract::RawObservation>& observations);

  /// Per-shard artifact-store namespaces: shard i persists under
  /// `directory`/shard-<i> (created on demand), so shard artifacts never
  /// collide and per-shard caches warm independently.
  Status EnableDiskCache(const std::string& directory,
                         uint64_t max_bytes = 0);

  /// Publishes each shard's report on that shard's registry and the
  /// flattened `reports.merged` on this pipeline's own registry (stamped
  /// with dataset_fingerprint()). Returns the merged logical snapshot.
  std::shared_ptr<const query::Snapshot> PublishSnapshot(
      const ShardedTrustReport& reports);

  /// As above, stamping `publish_time` (seconds, caller-defined epoch) on
  /// the merged logical snapshot AND every per-shard snapshot, for the
  /// registries' history rings (query::SnapshotRegistry::AsOf). The plain
  /// overload stamps 0.0.
  std::shared_ptr<const query::Snapshot> PublishSnapshot(
      const ShardedTrustReport& reports, double publish_time);

  /// The registry serving the merged logical snapshots (never null);
  /// plug it into a query::SnapshotReader exactly like a Pipeline's.
  std::shared_ptr<query::SnapshotRegistry> snapshot_registry() const;

  /// A cross-shard read view over the shards' CURRENTLY published
  /// per-shard snapshots (null entries for shards that have not published
  /// yet). Prefer this over the flattened registry snapshot when the
  /// per-shard structure matters (shard-tagged source queries, per-shard
  /// diffs).
  query::MergedSnapshot MergedView() const;

  /// Re-points the scatter AND every shard pipeline at `executor` (null
  /// selects DefaultExecutor()). Must not be called while a run is in
  /// flight; TrustService uses it when adopting a sharded pipeline.
  void AttachExecutor(dataflow::Executor* executor);

  /// Combined content fingerprint: shard 0's fingerprint when K = 1
  /// (preserving unsharded parity), otherwise a stable chain over the
  /// per-shard fingerprints in shard order.
  uint64_t dataset_fingerprint() const;

  uint32_t num_shards() const;
  uint64_t salt() const;
  const Options& options() const;
  /// Read access to one shard's Pipeline (asserts shard_index < K).
  const Pipeline& shard(uint32_t shard_index) const;

 private:
  struct Impl;
  explicit ShardedPipeline(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace kbt::api

#endif  // KBT_API_SHARD_H_
