#ifndef KBT_API_OPTIONS_H_
#define KBT_API_OPTIONS_H_

#include <string_view>

#include "core/initialization.h"
#include "core/multilayer_config.h"
#include "fusion/single_layer.h"
#include "granularity/split_merge.h"

namespace kbt::api {

/// Which inference model a pipeline runs on the compiled matrix.
enum class Model {
  /// The single-layer ACCU baseline of Section 2.2 (Dong et al. PVLDB'14):
  /// extracted triples are taken at face value as claims of their source.
  kSingleLayer = 0,
  /// The paper's MULTILAYER model (Section 3): joint inference over
  /// extraction correctness, triple truth, source accuracy and extractor
  /// quality.
  kMultiLayer = 1,
};

/// What a "web source" w and an "extractor" e mean for one run (Section 4).
enum class Granularity {
  /// source = <website, predicate, webpage>,
  /// extractor = <extractor, pattern, predicate, website> — the MULTILAYER
  /// default of Section 5.1.2.
  kFinest = 0,
  /// source = webpage, extractor = extraction system (the Tables 2-4 setup).
  kPageSource = 1,
  /// source = website, extractor = extraction system (website-level KBT).
  kWebsiteSource = 2,
  /// source = the provenance 4-tuple <extractor, website, predicate,
  /// pattern>, no extraction layer — the single-layer baseline's grouping.
  kProvenance = 3,
  /// Algorithm 2 (SPLITANDMERGE) applied to both hierarchies, tuned by
  /// Options::sm_source / Options::sm_extractor.
  kSplitMerge = 4,
};

/// Stable display name of a Model ("SingleLayer" / "MultiLayer"), for
/// tables and logs.
std::string_view ModelName(Model model);
/// Stable display name of a Granularity ("Finest", "PageSource", ...).
std::string_view GranularityName(Granularity granularity);

/// All knobs of one pipeline run, consolidating the per-layer configs that
/// used to be wired by hand (MultiLayerConfig, SingleLayerConfig,
/// SplitMergeOptions, smart-init options).
struct Options {
  /// Which inference model runs on the compiled matrix.
  Model model = Model::kMultiLayer;
  /// What a "source" and an "extractor" mean for this run. Together with
  /// sm_source/sm_extractor (under kSplitMerge) this is the only option
  /// that shapes the *compiled* artifacts — and therefore the only part
  /// that keys the persistent cache (cache::CompileOptionsFingerprint).
  Granularity granularity = Granularity::kFinest;

  /// Knobs of the multi-layer inference (also supplies the defaults smart
  /// initialization smooths toward, for either model).
  core::MultiLayerConfig multilayer;
  /// Knobs of the single-layer baseline (used when model == kSingleLayer).
  fusion::SingleLayerConfig single_layer;
  /// SPLITANDMERGE (m, M) per side (used when granularity == kSplitMerge).
  granularity::SplitMergeOptions sm_source;
  granularity::SplitMergeOptions sm_extractor;

  /// Initialize source/extractor quality from the attached gold standard
  /// (the "+" variants of Table 5). Requires a gold standard on the
  /// pipeline; ignored when an explicit InitialQuality is passed to Run.
  bool smart_init = false;
  core::SmartInitOptions smart_init_options;

  /// Aggregate slot posteriors into per-website / per-source-group KBT
  /// scores (TrustReport::website_kbt / source_kbt). Disable to shave the
  /// scoring stage off metric-only sweeps.
  bool score_websites = true;
  bool score_sources = true;

  /// The paper's experimental settings (Section 5.1.2): n = 10 for the
  /// multi-layer model, n = 100 for the single layer, SPLITANDMERGE with
  /// m = 5 / M = 10K, and source-side-only smart initialization anchored by
  /// a single labeled triple.
  static Options Paper();
  /// The smart-init variant Paper() installs, exposed for callers that
  /// assemble Options by hand.
  static core::SmartInitOptions PaperSmartInit();
};

}  // namespace kbt::api

#endif  // KBT_API_OPTIONS_H_
