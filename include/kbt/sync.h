#ifndef KBT_SYNC_H_
#define KBT_SYNC_H_

/// Annotated synchronization layer: Clang thread-safety attribute macros
/// plus thin wrappers over the std primitives that carry them. Every lock
/// in the library goes through these types so that a Clang build (which
/// enables -Wthread-safety, see CMakeLists.txt) proves the locking
/// discipline at compile time: each shared member is declared
/// KBT_GUARDED_BY its mutex, and touching it without holding that mutex is
/// a build error, not a code-review hope.
///
/// This is the only place in the repo allowed to name std::mutex /
/// std::condition_variable directly (enforced by
/// scripts/lint_invariants.py). Internal code spells the include
/// "common/mutex.h"; this public header exists because annotated mutexes
/// also live inside public kbt/ headers (e.g. query.h's SnapshotRegistry),
/// which may include only kbt/* + std.
///
/// How to annotate a new mutex (see docs/STATIC_ANALYSIS.md for the long
/// form):
///
///   class Thing {
///    public:
///     void Update() {
///       MutexLock lock(mutex_);
///       value_ += 1;                  // OK: mutex_ held.
///     }
///    private:
///     Mutex mutex_;
///     int value_ KBT_GUARDED_BY(mutex_) = 0;
///   };
///
/// Private helpers that expect the caller to hold the lock are annotated
/// KBT_REQUIRES(mutex_); functions that must NOT be called with it held
/// (e.g. they take it themselves and would self-deadlock) are annotated
/// KBT_EXCLUDES(mutex_).
///
/// The wrappers are zero-overhead: under GCC (or any compiler without the
/// attributes) the macros expand to nothing and each method is an inline
/// forward to the std primitive.

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define KBT_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef KBT_THREAD_ANNOTATION_
#define KBT_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define KBT_CAPABILITY(x) KBT_THREAD_ANNOTATION_(capability(x))
/// Declares an RAII type whose lifetime acquires/releases a capability.
#define KBT_SCOPED_CAPABILITY KBT_THREAD_ANNOTATION_(scoped_lockable)
/// Data member may only be touched while holding `x`.
#define KBT_GUARDED_BY(x) KBT_THREAD_ANNOTATION_(guarded_by(x))
/// Pointer member whose *pointee* may only be touched while holding `x`.
#define KBT_PT_GUARDED_BY(x) KBT_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function requires the listed capabilities to be held on entry.
#define KBT_REQUIRES(...) \
  KBT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on exit, not on entry).
#define KBT_ACQUIRE(...) \
  KBT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define KBT_RELEASE(...) \
  KBT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns the given value.
#define KBT_TRY_ACQUIRE(...) \
  KBT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function must be called WITHOUT the listed capabilities held (it takes
/// them itself, or would deadlock / invert the lock order otherwise).
#define KBT_EXCLUDES(...) KBT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Asserts (at runtime, to the analysis) that the capability is held.
#define KBT_ASSERT_CAPABILITY(x) \
  KBT_THREAD_ANNOTATION_(assert_capability(x))
/// Function returns a reference to the given capability.
#define KBT_RETURN_CAPABILITY(x) KBT_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch: disables analysis inside one function. Every use needs a
/// comment explaining why the analysis cannot see the invariant.
#define KBT_NO_THREAD_SAFETY_ANALYSIS \
  KBT_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace kbt {

class CondVar;

/// Annotated std::mutex. Prefer the scoped MutexLock; raw Lock()/Unlock()
/// are for the few hand-over-hand sections (e.g. TaskGroup::Wait) where a
/// scope cannot express the protocol.
class KBT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KBT_ACQUIRE() { mu_.lock(); }
  void Unlock() KBT_RELEASE() { mu_.unlock(); }
  bool TryLock() KBT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a kbt::Mutex (the annotated std::lock_guard).
class KBT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KBT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KBT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to kbt::Mutex. Wait() releases the mutex,
/// blocks, and reacquires before returning; as with the std primitive it
/// can wake spuriously, so callers loop on their predicate:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.Wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and waits; `mu` is held again on return.
  void Wait(Mutex& mu) KBT_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait and
    // release the adoption before the guard unwinds: the capability stays
    // held across the call from the caller's (and the analysis') view.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    // Spurious wakeups are handled by the caller's predicate loop (see the
    // class comment). NOLINT(bugprone-spuriously-wake-up-functions)
    cv_.wait(native);  // NOLINT(bugprone-spuriously-wake-up-functions)
    native.release();
  }

  /// Timed Wait: returns false when `timeout` elapsed without a
  /// notification, true when notified (including spuriously — loop on the
  /// predicate either way). `mu` is held again on return. The interruptible
  /// sleep behind periodic background work (e.g. the streaming ticker),
  /// which a plain sleep cannot provide: a notify wakes it immediately.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      KBT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    // Spurious wakeups are handled by the caller's predicate loop (see the
    // class comment). NOLINT(bugprone-spuriously-wake-up-functions)
    const std::cv_status status =  // NOLINT(bugprone-spuriously-wake-up-functions)
        cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kbt

#endif  // KBT_SYNC_H_
