#ifndef KBT_API_REPORT_H_
#define KBT_API_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/kbt_score.h"
#include "core/multilayer_result.h"
#include "eval/gold_standard.h"
#include "kbt/options.h"

namespace kbt::api {

/// The stages of one Pipeline::Run, in execution order. Progress callbacks
/// receive these, and TrustReport::stage_seconds records their wall clock.
enum class Stage {
  kGranularity = 0,  // choose/compute the group assignment
  kCompile = 1,      // build the CompiledMatrix
  kInitialize = 2,   // smart / warm-start initial quality
  kInference = 3,    // the EM itself
  kScore = 4,        // KBT aggregation
  kEvaluate = 5,     // predictions + gold-standard metrics
};

/// Number of Stage values (kGranularity .. kEvaluate).
inline constexpr int kNumStages = 6;

/// Stable display name of a Stage ("Granularity", "Compile", ...), the
/// key used in TrustReport::stage_seconds and StageTimers.
std::string_view StageName(Stage stage);

/// Shape of the compiled problem one report was computed from. Doubles as
/// the compatibility check for warm starts.
struct PipelineCounts {
  /// Raw extraction events compiled into the matrix.
  size_t num_observations = 0;
  /// Distinct (source group, data item, value) triples — the C_wdv units.
  size_t num_slots = 0;
  /// Distinct data items d.
  size_t num_items = 0;
  /// Deduplicated (slot, extractor group) edges — the observed X_ewdv.
  size_t num_extractions = 0;
  /// Source groups at the run's granularity.
  uint32_t num_sources = 0;
  /// Extractor groups at the run's granularity.
  uint32_t num_extractor_groups = 0;
  /// Websites in the underlying dataset (granularity-independent).
  uint32_t num_websites = 0;
};

/// Everything one pipeline run produces: the inference posterior and
/// parameters, KBT aggregates, deduplicated triple predictions, optional
/// gold-standard metrics and per-stage timings.
///
/// For single-layer runs the result is folded into the multi-layer shape:
/// source_accuracy / slot_value_prob / slot_covered carry the baseline's
/// output, slot_correct_prob is all-ones (the baseline takes every
/// extraction at face value) and the extractor-quality vectors are empty.
struct TrustReport {
  /// The model and granularity the producing run used (echoed from its
  /// Options; RunFrom uses them to validate warm-start compatibility).
  Model model = Model::kMultiLayer;
  Granularity granularity = Granularity::kFinest;

  /// The raw inference output: slot/value posteriors, learned source
  /// accuracy and extractor quality, convergence state.
  core::MultiLayerResult inference;
  /// Per-website KBT (indexed by WebsiteId; empty when !score_websites).
  std::vector<core::KbtScore> website_kbt;
  /// Per-source-group KBT at the run's granularity (empty when
  /// !score_sources).
  std::vector<core::KbtScore> source_kbt;
  /// One prediction per distinct extracted (item, value).
  std::vector<eval::TriplePrediction> predictions;
  /// Present when a gold standard was attached to the pipeline.
  std::optional<eval::TripleMetrics> metrics;

  /// Shape of the compiled problem this report came from.
  PipelineCounts counts;
  /// Wall-clock seconds per pipeline stage, in execution order. Stages
  /// served from the in-memory cache (granularity/compile on a re-run)
  /// report ~0; on a disk-cache warm start the load (read + decode +
  /// verify) is timed under "Granularity" and "Compile" reports ~0.
  std::vector<std::pair<std::string, double>> stage_seconds;

  /// EM iterations the inference ran.
  int iterations() const { return inference.iterations; }
  /// Whether the EM met its convergence threshold within max_iterations.
  bool converged() const { return inference.converged; }

  /// Fraction of slots with at least one supported provider.
  double CoveredFraction() const;

  /// The learned parameters packaged for warm-starting another run
  /// (Pipeline::RunFrom feeds this as InitialQuality). Sources that earned
  /// support keep participating below the support threshold, mirroring the
  /// smart-init coverage rule.
  core::InitialQuality ToInitialQuality() const;
};

}  // namespace kbt::api

#endif  // KBT_API_REPORT_H_
