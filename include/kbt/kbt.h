#ifndef KBT_API_KBT_H_
#define KBT_API_KBT_H_

/// Umbrella header of the Knowledge-Based Trust library. Downstream code
/// (examples, benches, services) includes only kbt/* headers; the facade
/// re-exports the stable surface of the extraction -> granularity ->
/// inference -> scoring stack.
///
/// Quickstart:
///
///   kbt::api::Options options;                     // paper defaults
///   auto pipeline = kbt::api::PipelineBuilder()
///                       .FromTsv("cube.tsv")
///                       .WithOptions(options)
///                       .Build();
///   auto report = pipeline->Run();                 // StatusOr<TrustReport>
///   // report->website_kbt, report->predictions, report->metrics ...
///
/// For long-lived serving (many cubes, concurrent consumers, streaming
/// appends) wrap pipelines in a kbt::api::TrustService (kbt/service.h):
/// named sessions, non-blocking Submit{Run,Append,RunFrom} returning
/// std::futures, per-session FIFO, cross-session concurrency on one
/// executor, and append coalescing.
///
/// Compiled artifacts persist across processes through the disk cache
/// (Pipeline::EnableDiskCache / ServiceOptions::cache_directory):
/// re-analysis of an unchanged cube loads the compiled matrix instead of
/// recompiling it. Format spec: docs/artifact-format.md.
///
/// The read path is kbt::query (kbt/query.h): completed runs publish
/// immutable, index-backed Snapshots (O(1) point lookups, pre-sorted
/// top-k, cross-snapshot diff) through an RCU-style registry, so any
/// number of reader threads query trust scores lock-free while writes
/// queue behind the compute path (TrustService::Query).
///
/// Cubes too large for one in-memory run shard across K pipelines
/// (kbt/shard.h): a deterministic website-keyed partitioner splits the
/// cube, api::ShardedPipeline scatters runs/appends across the executor
/// and gathers one merged logical report, and query::MergedSnapshot
/// k-way merges the per-shard read views. K = 1 is bit-for-bit identical
/// to an unsharded Pipeline; TrustService sessions can be backed by
/// either transparently (CreateShardedSession).
///
/// Observability is kbt::obs (kbt/obs.h): a process-wide metrics registry
/// (lock-free counters, gauges, mergeable latency histograms), trace
/// spans exportable as Chrome/Perfetto JSON, and Prometheus/JSON render
/// surfaces. Every layer above is pre-instrumented; see
/// docs/OBSERVABILITY.md for the metric catalog and naming scheme.

#include "kbt/data.h"
#include "kbt/obs.h"
#include "kbt/options.h"
#include "kbt/pipeline.h"
#include "kbt/query.h"
#include "kbt/report.h"
#include "kbt/service.h"
#include "kbt/shard.h"

// Analysis toolkit shipped with the library: result tables, histograms,
// timing, the hyperlink-graph PageRank baseline and shared math helpers.
#include "common/histogram.h"
#include "common/math.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "corpus/link_graph.h"
#include "dataflow/parallel.h"
#include "dataflow/stage_timer.h"
#include "exp/table_printer.h"
#include "pagerank/pagerank.h"

#endif  // KBT_API_KBT_H_
