#ifndef KBT_API_QUERY_H_
#define KBT_API_QUERY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "kb/ids.h"
#include "kbt/options.h"
#include "kbt/report.h"
#include "kbt/sync.h"

/// kbt::query — the read path of the library: lock-free snapshot serving
/// of trust scores at read-heavy scale.
///
/// The compute side (Pipeline/TrustService) produces TrustReports; this
/// module turns each report into an immutable, index-backed Snapshot and
/// publishes it through a SnapshotRegistry with RCU semantics: the
/// steady-state read path is lock-free (a version-counter gate), a
/// publish is one briefly-guarded shared_ptr swap (see the
/// SnapshotRegistry comment for why it is not std::atomic<shared_ptr>),
/// and in-flight queries keep superseded snapshots alive until their
/// readers move on.
///
///   auto pipeline = kbt::api::PipelineBuilder()...Build();
///   auto report = pipeline->Run();
///   pipeline->PublishSnapshot(*report);
///
///   kbt::query::SnapshotReader reader(pipeline->snapshot_registry());
///   const kbt::query::Snapshot* snap = reader.view();   // lock-free
///   auto trust = snap->SourceTrust(42);                 // O(1)
///   auto top = snap->TopKSources(10);                   // pre-sorted
///
/// Or, through the serving layer (which auto-publishes after every
/// completed run): `service.Query("news")` hands back a SnapshotReader
/// whose queries proceed concurrently with that session's queued writes.
namespace kbt::query {

class Snapshot;
struct SnapshotDiff;

/// Identity and provenance of one published Snapshot.
struct SnapshotInfo {
  /// Publish sequence number assigned by the SnapshotRegistry (1, 2, ...);
  /// 0 until the snapshot is published. Strictly increasing per registry,
  /// so readers can order snapshots and detect staleness.
  uint64_t sequence = 0;
  /// io::DatasetFingerprint of the pipeline's dataset at publish time — 0
  /// when the snapshot was built outside a pipeline. Comparing it against
  /// Pipeline::dataset_fingerprint() reveals appends that the served
  /// scores do not yet reflect.
  uint64_t dataset_fingerprint = 0;
  /// Echoed from the producing TrustReport.
  api::Model model = api::Model::kMultiLayer;
  api::Granularity granularity = api::Granularity::kFinest;
  /// Shape of the compiled problem the report came from.
  api::PipelineCounts counts;
  /// Publish time (seconds, caller-defined epoch) stamped by the
  /// timestamped Publish overload; 0.0 for untimed publishes. The key for
  /// SnapshotRegistry::AsOf time-travel — the streaming layer stamps each
  /// tick's logical time here.
  double publish_time = 0.0;
};

/// One source's served trust: the KBT aggregate (Eq. 28) plus its evidence
/// mass. `id` is the dense source-group id (or WebsiteId for website
/// queries); `scored` applies the paper's Section 5.4 reporting rule
/// (evidence >= the snapshot's min_evidence, default 5).
struct SourceTrust {
  uint32_t id = kb::kInvalidId;
  double kbt = 0.0;
  double evidence = 0.0;
  bool scored = false;
};

/// Key of one distinct extracted triple (data item, claimed value).
struct TripleKey {
  kb::DataItemId item = 0;
  kb::ValueId value = kb::kInvalidId;
};

/// One triple's served belief: p(V_d = v | X) and whether the item has a
/// supported provider (uncovered triples carry a probability the paper
/// would not act on).
struct TripleTruth {
  kb::DataItemId item = 0;
  kb::ValueId value = kb::kInvalidId;
  double probability = 0.0;
  bool covered = false;
};

/// Filters for TopKSources / TopKWebsites. The evidence threshold applies
/// first (cheap), then the optional predicate.
struct SourceFilter {
  /// Minimum evidence mass to be served as ranked; defaults to the
  /// snapshot's own min_evidence (see SnapshotOptions). Set to 0 to rank
  /// every group.
  std::optional<double> min_evidence;
  /// Arbitrary predicate over the candidate; empty accepts everything.
  std::function<bool(const SourceTrust&)> predicate;
};

/// Filters for TopKTriples.
struct TripleFilter {
  /// Serve only triples whose item has a supported provider.
  bool covered_only = false;
  /// Arbitrary predicate over the candidate; empty accepts everything.
  std::function<bool(const TripleTruth&)> predicate;
};

/// Build-time knobs of one Snapshot.
struct SnapshotOptions {
  /// Evidence mass below which a source is served as unscored (the paper
  /// reports KBT only for sources with >= 5 expected correct extractions).
  double min_evidence = 5.0;
};

/// An immutable, sealed, index-backed view over one TrustReport. Built
/// once at publish time: a hash index from triple keys to dense positions
/// (open addressing, O(1) point lookups), per-item ranges, and score
/// orders sorted at build for O(k) top-k scans. All scores are served
/// bit-for-bit as the report produced them — a Snapshot re-indexes, it
/// never recomputes.
///
/// Thread safety: a built Snapshot is deeply const; any number of threads
/// may query one concurrently without synchronization. Queries never
/// allocate except to return their result vectors.
class Snapshot {
 public:
  /// Indexes `report` into a sealed snapshot. `stamp.sequence` is ignored
  /// (the registry assigns it at publish). Sources/websites/triples the
  /// report does not carry (e.g. score_sources disabled) simply yield
  /// empty/miss answers.
  static Snapshot Build(const api::TrustReport& report,
                        const SnapshotInfo& stamp = SnapshotInfo(),
                        const SnapshotOptions& options = SnapshotOptions());

  /// Identity, provenance and shape of this snapshot.
  const SnapshotInfo& info() const { return info_; }
  /// The evidence threshold `scored` was computed with.
  double min_evidence() const { return min_evidence_; }

  // ---- Sizes ----
  /// Source groups carried (0 when the report skipped source scoring).
  size_t num_sources() const { return source_kbt_.size(); }
  /// Websites carried (0 when the report skipped website scoring).
  size_t num_websites() const { return website_kbt_.size(); }
  /// Distinct (item, value) triples carried.
  size_t num_triples() const { return triples_.size(); }
  /// Distinct data items carried.
  size_t num_items() const { return item_ids_.size(); }

  // ---- Point lookups (O(1)) ----
  /// Trust of one source group, or nullopt for an unknown id.
  std::optional<query::SourceTrust> SourceTrust(uint32_t source_group) const;
  /// Trust of one website, or nullopt for an unknown id.
  std::optional<query::SourceTrust> WebsiteTrust(kb::WebsiteId website) const;
  /// Belief in one (item, value) triple, or nullopt when the cube never
  /// extracted it.
  std::optional<query::TripleTruth> TripleTruth(kb::DataItemId item,
                                                kb::ValueId value) const;

  // ---- Batch lookups ----
  /// One answer per key, positionally; misses are nullopt. Cheaper than a
  /// loop of point lookups only in code shape, but the natural unit for
  /// RPC-style callers.
  std::vector<std::optional<query::SourceTrust>> BatchSourceTrust(
      const std::vector<uint32_t>& source_groups) const;
  std::vector<std::optional<query::TripleTruth>> BatchTripleTruth(
      const std::vector<TripleKey>& keys) const;

  // ---- Enumeration ----
  /// Every candidate value the cube extracted for one item, in the
  /// report's prediction order (first-seen). Empty for unknown items.
  std::vector<query::TripleTruth> ItemValues(kb::DataItemId item) const;

  // ---- Rank queries (O(k + filtered) over build-time sorted orders) ----
  /// The k most trustworthy source groups (KBT descending, id ascending on
  /// ties), after filtering. Fewer than k when the filter exhausts them.
  std::vector<query::SourceTrust> TopKSources(
      size_t k, const SourceFilter& filter = SourceFilter()) const;
  /// The k most trustworthy websites, same contract as TopKSources.
  std::vector<query::SourceTrust> TopKWebsites(
      size_t k, const SourceFilter& filter = SourceFilter()) const;
  /// The k most believed triples (probability descending, key ascending on
  /// ties), after filtering.
  std::vector<query::TripleTruth> TopKTriples(
      size_t k, const TripleFilter& filter = TripleFilter()) const;

 private:
  friend class SnapshotRegistry;
  /// Walks triples_ directly (sequential, no copy) to count key churn.
  friend SnapshotDiff DiffSnapshots(const Snapshot& before,
                                    const Snapshot& after, size_t top_k);

  Snapshot() = default;

  /// Dense position of (item, value) in triples_, or nullopt.
  std::optional<uint32_t> FindTriple(kb::DataItemId item,
                                     kb::ValueId value) const;
  /// Dense position of `item` in item_ids_, or nullopt.
  std::optional<uint32_t> FindItem(kb::DataItemId item) const;

  query::SourceTrust MakeSourceTrust(uint32_t id, size_t index) const;
  query::SourceTrust MakeWebsiteTrust(uint32_t id, size_t index) const;
  query::TripleTruth MakeTriple(size_t index) const;

  SnapshotInfo info_;
  double min_evidence_ = 5.0;

  /// Per-source-group / per-website (kbt, evidence), indexed by dense id —
  /// the exact doubles of the producing report.
  std::vector<std::pair<double, double>> source_kbt_;
  std::vector<std::pair<double, double>> website_kbt_;

  /// Triples in report order (items contiguous), plus per-item ranges.
  std::vector<query::TripleTruth> triples_;
  std::vector<kb::DataItemId> item_ids_;
  std::vector<uint32_t> item_offsets_;  // item_ids_.size() + 1 entries

  /// Open-addressing hash tables (power-of-two, linear probing; value is
  /// position + 1, 0 = empty): triple key -> triples_ position, item id ->
  /// item_ids_ position.
  std::vector<uint32_t> triple_table_;
  std::vector<uint32_t> item_table_;

  /// Build-time sort orders for the rank queries.
  std::vector<uint32_t> sources_by_kbt_;
  std::vector<uint32_t> websites_by_kbt_;
  std::vector<uint32_t> triples_by_prob_;
};

/// RCU-style publication point for Snapshots: writers Publish (serialized,
/// swapping one shared_ptr slot inside a microscopic critical section),
/// readers detect publishes through a lock-free version counter and
/// whatever snapshot they hold stays valid until they drop it. One
/// registry belongs to one Pipeline (and is handed out by
/// TrustService::Query); it is shared with every reader, so readers
/// survive the pipeline's destruction.
///
/// Query through a SnapshotReader: its version-gated cache makes the
/// steady-state read path lock-free (one acquire load of a read-shared
/// word, no reference-count traffic), and its refresh path is WAIT-free —
/// it try_locks the slot, and on contention simply keeps serving the
/// still-pinned previous snapshot until the next call. Readers therefore
/// never block, publish or not. (The slot is a plain shared_ptr under a
/// mutex rather than std::atomic<shared_ptr> deliberately: libstdc++'s
/// lock-bit implementation is invisible to ThreadSanitizer, and the TSan
/// CI job is what proves this module's concurrency claims.)
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Seals `snapshot` with the next sequence number and swaps it in as
  /// current. Returns the published (now shared) snapshot. Concurrent
  /// publishers are serialized; readers are never blocked.
  std::shared_ptr<const Snapshot> Publish(Snapshot snapshot);

  /// As above, stamping `publish_time` (seconds, caller-defined epoch,
  /// visible as info().publish_time) for the history ring and AsOf. The
  /// plain overload stamps 0.0.
  std::shared_ptr<const Snapshot> Publish(Snapshot snapshot,
                                          double publish_time);

  /// Bounds how many generations the registry itself keeps alive:
  /// `capacity` = the current snapshot plus up to capacity - 1 superseded
  /// generations, retained for History()/AsOf(). 0 (the default — today's
  /// semantics) keeps only the current snapshot: a publish drops the
  /// registry's reference to the superseded generation, so it is freed as
  /// soon as the last reader refreshes. Shrinking the capacity evicts the
  /// oldest retained generations immediately. Publishes/readers are
  /// unaffected (the ring is maintained inside the same microscopic
  /// critical section).
  void SetRetention(size_t capacity);

  /// The retained generations, oldest first (the last entry is the current
  /// snapshot). Empty before the first publish. With retention 0 this is
  /// just the current snapshot.
  std::vector<SnapshotInfo> History() const;

  /// Time-travel: the latest retained snapshot whose publish_time <= t, or
  /// null when every retained generation is newer than `t` (or nothing is
  /// published). Retention bounds how far back AsOf can reach — readers
  /// needing a deeper window must raise SetRetention before those
  /// generations are published.
  std::shared_ptr<const Snapshot> AsOf(double t) const;

  /// The current snapshot (shared ownership), or null before the first
  /// Publish. Takes the slot lock briefly; prefer SnapshotReader (which
  /// only falls back to TryCurrent) on hot read paths.
  std::shared_ptr<const Snapshot> Current() const;

  /// Non-blocking Current(): copies the current snapshot into `out` and
  /// returns true, or returns false without waiting when the slot is
  /// momentarily held (a publisher mid-swap or another reader mid-copy).
  bool TryCurrent(std::shared_ptr<const Snapshot>* out) const;

  /// Sequence number of the latest published snapshot (0 = none yet).
  /// Monotonic; the lock-free staleness probe behind SnapshotReader.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  /// Guards `current_` and the history ring, for nanoseconds at a time
  /// (pointer copies / swaps; the Snapshots themselves are immutable and
  /// never touched under it).
  mutable Mutex slot_mutex_;
  std::atomic<uint64_t> version_{0};
  std::shared_ptr<const Snapshot> current_ KBT_GUARDED_BY(slot_mutex_);
  /// Superseded generations retained for History()/AsOf(), oldest first;
  /// bounded by retention_ - 1 (the current snapshot is the ring's
  /// implicit last entry). Empty when retention_ == 0.
  std::vector<std::shared_ptr<const Snapshot>> history_
      KBT_GUARDED_BY(slot_mutex_);
  size_t retention_ KBT_GUARDED_BY(slot_mutex_) = 0;
};

/// A per-reader handle over one SnapshotRegistry: caches the current
/// snapshot and re-checks only the registry's version counter (one atomic
/// load of an otherwise read-shared word) per view() call, refreshing the
/// cached shared_ptr solely when a publish happened — and even then
/// without blocking (TryCurrent; on contention the still-pinned previous
/// snapshot keeps serving until the next call). The one exception is the
/// very first refresh after attach, which takes the slot lock outright
/// (briefly — a pointer copy) so that a published snapshot is never
/// misreported as absent. Steady-state reads take no lock AND generate no
/// shared write traffic — point lookups scale linearly with reader
/// threads.
///
/// A reader is single-threaded: give each reader thread its own (they are
/// cheap — two shared_ptrs). The pointer view() returns stays valid until
/// the next view()/Acquire() call on this reader, because the reader's
/// cached shared_ptr pins it.
class SnapshotReader {
 public:
  /// An empty reader: view() returns nullptr until attached.
  SnapshotReader() = default;
  /// Attaches to `registry` (shared: the reader keeps it alive).
  explicit SnapshotReader(std::shared_ptr<const SnapshotRegistry> registry)
      : registry_(std::move(registry)) {}

  /// The current snapshot, or nullptr when nothing is published (or the
  /// reader is unattached). Lock-free; refreshes the cache only on a
  /// version change.
  const Snapshot* view();

  /// Shared ownership of the current snapshot (for handing a consistent
  /// view to another thread or pinning one across publishes); null when
  /// nothing is published.
  std::shared_ptr<const Snapshot> Acquire();

  /// Whether this reader is attached to a registry.
  bool attached() const { return registry_ != nullptr; }

 private:
  void Refresh();

  std::shared_ptr<const SnapshotRegistry> registry_;
  std::shared_ptr<const Snapshot> cached_;
};

/// One source's (or website's) trust movement between two snapshots.
struct SourceMove {
  uint32_t id = kb::kInvalidId;
  double before_kbt = 0.0;
  double after_kbt = 0.0;
  /// after - before (positive = gained trust).
  double delta = 0.0;
};

/// What changed between two snapshots (typically consecutive runs of one
/// session): population churn plus the sources/websites that moved most.
struct SnapshotDiff {
  uint64_t before_sequence = 0;
  uint64_t after_sequence = 0;
  /// Ids present on one side only (dense id spaces only ever grow under
  /// appends, so "added" are new groups; "removed" is nonzero only when
  /// diffing across re-bucketing granularities like SPLITANDMERGE).
  size_t sources_added = 0;
  size_t sources_removed = 0;
  size_t websites_added = 0;
  size_t websites_removed = 0;
  size_t triples_added = 0;
  size_t triples_removed = 0;
  /// Sources/websites present in both snapshots, ordered by |delta|
  /// descending (id ascending on ties), truncated to the requested k.
  std::vector<SourceMove> top_source_moves;
  std::vector<SourceMove> top_website_moves;
};

/// Compares two snapshots by id: which sources moved most between runs,
/// and how much the triple population churned. Ids are matched positionally
/// (source-group and website ids are append-stable for the stateless
/// granularities; diffing across SPLITANDMERGE re-bucketings compares
/// whatever groups share an id). O(sources + websites + triples).
SnapshotDiff DiffSnapshots(const Snapshot& before, const Snapshot& after,
                           size_t top_k = 10);

}  // namespace kbt::query

#endif  // KBT_API_QUERY_H_
