#ifndef KBT_API_PIPELINE_H_
#define KBT_API_PIPELINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "extract/raw_dataset.h"
#include "kbt/options.h"
#include "kbt/report.h"

// The facade needs only names, not definitions, for its collaborators:
// everything below is held by pointer/reference across the API boundary.
namespace kbt::corpus {
class WebCorpus;
}  // namespace kbt::corpus

namespace kbt::dataflow {
class Executor;
class StageTimers;
}  // namespace kbt::dataflow

namespace kbt::eval {
class GoldStandard;
}  // namespace kbt::eval

namespace kbt::exp {
struct KvSimConfig;
struct SyntheticConfig;
}  // namespace kbt::exp

namespace kbt::extract {
class CompiledMatrix;
}  // namespace kbt::extract

namespace kbt::query {
class Snapshot;
class SnapshotRegistry;
}  // namespace kbt::query

namespace kbt::api {

/// Invoked after every pipeline stage with the stage and its wall-clock
/// seconds. Called on the thread driving Run().
using ProgressCallback = std::function<void(Stage, double seconds)>;

/// One trust-estimation session over a fixed dataset and Options:
/// observation cube -> granularity assignment -> compiled matrix ->
/// inference -> KBT scoring -> evaluation.
///
/// The granularity assignment and compiled matrix are cached across runs:
/// a second Run() (e.g. a warm start) skips straight to inference.
/// AppendObservations keeps the cache *incrementally up to date* for the
/// stateless granularities (finest / page / website / provenance): the
/// assignment is extended with stable group ids and the matrix's CSR
/// structures are patched in place, identical to a full recompilation of
/// the grown cube. SPLITANDMERGE re-buckets on growth, so appends under it
/// fall back to invalidating the cache. Sessions are movable, not
/// copyable, and not thread-safe; runs themselves parallelize through the
/// attached Executor.
class Pipeline {
 public:
  Pipeline(Pipeline&& other) noexcept;
  Pipeline& operator=(Pipeline&& other) noexcept;
  ~Pipeline();

  /// Runs the five-step sequence with default (or smart, when configured
  /// and a gold standard is attached) initial quality.
  StatusOr<TrustReport> Run();

  /// Runs with explicit initial parameter values (e.g. Table 3's fixed
  /// extractor quality). Overrides smart initialization.
  StatusOr<TrustReport> Run(const core::InitialQuality& initial);

  /// Warm start: re-runs inference initialized from a previous report's
  /// learned parameters. The previous report must come from a run of the
  /// same shape (same group counts) or — for the stateless granularities,
  /// whose group ids are append-stable — of a prefix shape (fewer groups,
  /// as after AppendObservations grew the cube; new groups then start from
  /// the config-default priors). Returns FailedPrecondition when the
  /// previous report has *more* groups than this pipeline, or a smaller
  /// shape from a different granularity or from kSplitMerge (re-bucketing
  /// renumbers groups, so old quality cannot be carried by id).
  StatusOr<TrustReport> RunFrom(const TrustReport& previous);

  /// Appends extraction events to the owned dataset, growing the meta
  /// counts to cover new ids. An empty batch is a no-op. When a compiled
  /// matrix is cached and the granularity is stateless, the matrix is
  /// patched in place (O(delta) discovery + linear merge, no re-hashing /
  /// re-sorting of the base cube) and stays available through
  /// compiled_matrix(); under kSplitMerge the cache is invalidated and the
  /// next run recompiles. Fails on borrowed datasets
  /// (FromDataset(const RawDataset*)) and on observations with invalid
  /// ids, leaving the dataset untouched.
  Status AppendObservations(
      const std::vector<extract::RawObservation>& observations);

  /// Sets per-observation evidence weights in [0, 1] (one per dataset
  /// observation; InvalidArgument on a size mismatch) applied by subsequent
  /// Run/RunFrom calls: each compiled extraction edge's confidence is scaled
  /// by the MAXIMUM weight over the observations that were deduplicated into
  /// it (max mirrors the compiler's max-confidence dedup — the edge's
  /// retained evidence is as fresh as its freshest contributor, and max is
  /// commutative so the reduction is deterministic). The streaming layer's
  /// time-decay hook; weights persist until replaced, cleared, or
  /// invalidated by AppendObservations (which changes the observation
  /// count). Weighted runs recompute the observation→edge mapping per run
  /// (O(N log slots)); unweighted runs are completely untouched.
  Status SetObservationWeights(std::vector<float> weights);

  /// Removes the weights; subsequent runs are bit-for-bit the unweighted
  /// path again.
  void ClearObservationWeights();

  const extract::RawDataset& dataset() const;
  const Options& options() const;

  /// Stable 64-bit content fingerprint of the current dataset
  /// (io::DatasetFingerprint): the cache key for persisting compiled
  /// artifacts across sessions. Computed lazily and cached; appends
  /// invalidate the cached value, so the first call after a mutation pays
  /// one O(observations) pass. Concurrent calls are safe against each
  /// other, but — like every accessor on this class — not against a
  /// simultaneous AppendObservations; serialize reads with mutations
  /// (TrustService's per-session FIFO does exactly that).
  uint64_t dataset_fingerprint() const;

  /// Shape of the cached compiled problem (slot/item/source/group counts),
  /// or nullopt when nothing is compiled yet. O(1): serving layers use it
  /// to inspect cache state without touching the matrix.
  std::optional<PipelineCounts> shape() const;

  /// Drops the cached granularity assignment, compiled matrix and
  /// memoized dataset fingerprint; the next run recompiles from the
  /// dataset — or, with a disk cache attached, loads the entry matching
  /// the dataset's *current* content (the fingerprint is re-derived). For
  /// callers that mutated shared state behind the pipeline's back or want
  /// to drop in-memory state. Does not delete persisted entries: they
  /// stay valid for the content they were compiled from
  /// (cache::ArtifactStore::Remove evicts).
  void InvalidateCache();

  /// Attaches a persistent artifact store (cache::ArtifactStore) rooted at
  /// `directory`, creating it if needed. From then on:
  ///  * the first compile of a run tries to LOAD the artifacts keyed by
  ///    (dataset_fingerprint(), compile-options fingerprint) and, on a hit,
  ///    skips matrix compilation entirely (corrupt/stale entries are
  ///    rejected with a logged warning and fall back to recompilation);
  ///  * a fresh compile SAVES its artifacts (atomic rename-on-write);
  ///  * AppendObservations re-persists the patched matrix under the grown
  ///    dataset's new fingerprint, so a restarted process resumes warm.
  ///    Note the cost: each patched append then re-fingerprints the
  ///    dataset and rewrites the whole entry (O(compiled size), not
  ///    O(delta)) on the append path — for high-frequency tiny appends,
  ///    prefer batching deltas (TrustService coalescing does this) or
  ///    enabling the cache only on checkpoint pipelines.
  /// Loaded artifacts are bit-for-bit interchangeable with freshly built
  /// ones — runs over them produce identical TrustReports, and appends
  /// stay incremental (the first append after a load rebuilds the
  /// extender state with one O(observations) replay pass; warm sessions
  /// that never append skip that cost entirely). Fails when the directory
  /// cannot be created. Enabling replaces any previous store.
  ///
  /// `max_bytes` caps the store's total size (0 = unlimited): each save
  /// then sweeps least-recently-used entries (by mtime, refreshed on
  /// load) until the total fits — see cache::StoreOptions::max_bytes.
  Status EnableDiskCache(const std::string& directory,
                         uint64_t max_bytes = 0);

  /// Persists the currently cached artifacts to the attached store now.
  /// FailedPrecondition when EnableDiskCache was not called or nothing is
  /// compiled yet. (Runs already auto-save; this is for callers that warmed
  /// the cache before enabling the store, or want a write they can check.)
  Status SaveCompiledArtifacts();

  /// Loads the artifacts keyed by the current dataset + options from the
  /// attached store, replacing any in-memory cache. NotFound when no entry
  /// exists; InvalidArgument/FailedPrecondition when the entry is corrupt
  /// or stale (the in-memory cache is left unchanged). Unlike the automatic
  /// load inside Run(), this surfaces the exact status instead of falling
  /// back silently.
  Status LoadCompiledArtifacts();

  /// Indexes `report` into an immutable query::Snapshot (stamped with the
  /// dataset's current fingerprint) and publishes it on this pipeline's
  /// snapshot registry, atomically replacing the previously served
  /// snapshot. Readers holding the old snapshot keep it alive; new reads
  /// see the new one. Returns the published snapshot.
  ///
  /// Call it with a report produced by THIS pipeline, after the run and
  /// before further appends — otherwise the stamped fingerprint describes
  /// a different cube than the scores (the values themselves are still
  /// served bit-for-bit from `report`). TrustService does this
  /// automatically after every completed Run/RunFrom. Like every mutator,
  /// not safe against a concurrent AppendObservations.
  std::shared_ptr<const query::Snapshot> PublishSnapshot(
      const TrustReport& report);

  /// As above, but stamps the snapshot with an explicit publish time
  /// (seconds, caller-defined epoch) for the registry's history ring —
  /// query::SnapshotRegistry::AsOf time-travel keys on it. The parameterless
  /// overload stamps 0.0 (no temporal meaning).
  std::shared_ptr<const query::Snapshot> PublishSnapshot(
      const TrustReport& report, double publish_time);

  /// The registry PublishSnapshot publishes to. Shared ownership: readers
  /// (query::SnapshotReader) hold it beyond the pipeline's lifetime, so a
  /// served snapshot outlives a closed session. Never null.
  std::shared_ptr<query::SnapshotRegistry> snapshot_registry() const;

  /// Replaces the executor subsequent runs parallelize through (null means
  /// serial stages), overriding whatever the builder set. Must not be
  /// called while a run is in flight. TrustService uses this to point
  /// adopted pipelines at its shared executor.
  void AttachExecutor(dataflow::Executor* executor);

  /// The cached compiled matrix: non-null after a successful Run() until
  /// the cache is invalidated (appends under stateless granularities patch
  /// it rather than invalidate). Slot/item accessors on it give report
  /// vectors their coordinates.
  const extract::CompiledMatrix* compiled_matrix() const;

  /// The generated world behind a FromKvSim pipeline (null otherwise).
  const corpus::WebCorpus* corpus() const;

  /// The gold standard used for metrics/smart-init (null when none).
  const eval::GoldStandard* gold_standard() const;

  /// Opaque implementation record; public only so internal helpers can name
  /// it. Nothing on it is part of the API.
  struct Impl;

 private:
  friend class PipelineBuilder;
  explicit Pipeline(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Fluent assembly of a Pipeline: exactly one dataset source, plus options
/// and optional collaborators. Build() validates the dataset (ids within
/// meta counts, nfalse covering every referenced predicate) before any
/// compute happens.
class PipelineBuilder {
 public:
  PipelineBuilder();
  PipelineBuilder(PipelineBuilder&&) noexcept;
  PipelineBuilder& operator=(PipelineBuilder&&) noexcept;
  ~PipelineBuilder();

  /// Dataset sources — call exactly one.
  PipelineBuilder& FromDataset(extract::RawDataset dataset);
  /// Non-owning: the caller keeps `dataset` alive and unchanged for the
  /// pipeline's lifetime (AppendObservations is unavailable).
  PipelineBuilder& FromDataset(const extract::RawDataset* dataset);
  /// Loads a TSV cube written by io::WriteRawDataset at Build() time.
  PipelineBuilder& FromTsv(std::string path);
  /// Generates a KV-scale simulated world; the pipeline owns it and wires
  /// its LCWA + type-check gold standard automatically.
  PipelineBuilder& FromKvSim(const exp::KvSimConfig& config);
  /// Generates the Section 5.2.1 synthetic cube.
  PipelineBuilder& FromSynthetic(const exp::SyntheticConfig& config);

  /// Replaces the whole option set (model, granularity, every layer's
  /// knobs). Later WithModel/WithGranularity calls override fields of it.
  PipelineBuilder& WithOptions(Options options);
  /// Sets only the inference model, keeping the other options.
  PipelineBuilder& WithModel(Model model);
  /// Sets only the granularity, keeping the other options.
  PipelineBuilder& WithGranularity(Granularity granularity);
  /// Non-owning; enables metrics in TrustReport and smart initialization.
  /// Overrides the automatic KvSim gold standard.
  PipelineBuilder& WithGoldStandard(const eval::GoldStandard* gold);
  /// Non-owning; stages run serially when absent.
  PipelineBuilder& WithExecutor(dataflow::Executor* executor);
  /// Non-owning; collects the Table 7 stage timings when present.
  PipelineBuilder& WithStageTimers(dataflow::StageTimers* timers);
  PipelineBuilder& OnProgress(ProgressCallback callback);

  StatusOr<Pipeline> Build();

 private:
  enum class SourceKind;
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace kbt::api

#endif  // KBT_API_PIPELINE_H_
