#ifndef KBT_API_SERVICE_H_
#define KBT_API_SERVICE_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "kbt/obs.h"
#include "kbt/pipeline.h"
#include "kbt/query.h"
#include "kbt/report.h"
#include "kbt/shard.h"
#include "kbt/stream.h"

namespace kbt::dataflow {
class Executor;
}  // namespace kbt::dataflow

namespace kbt::api {

/// Asynchronous multi-session serving layer over Pipeline — the library's
/// stand-in for the paper's production setting, where KBT sits behind a
/// search-quality signal and serves many concurrent consumers instead of
/// running one batch job.
///
/// A TrustService owns *named sessions*, each wrapping one Pipeline (one
/// cube + options + compiled-matrix cache). Requests are submitted without
/// blocking and return std::futures:
///
///   kbt::api::TrustService service;
///   service.CreateSession("news", std::move(builder));
///   auto report = service.SubmitRun("news");            // future
///   service.SubmitAppend("news", delta);                // future<Status>
///   auto updated = service.SubmitRun("news");
///   updated.get();          // reflects the delta: per-session FIFO
///
/// Scheduling model:
///  * Requests to ONE session execute FIFO, one at a time, in submission
///    order (a SerialQueue per session) — a run submitted after an append
///    always observes it, and results are bit-for-bit what the same
///    sequence of direct Pipeline calls would produce.
///  * DISTINCT sessions run concurrently on one shared dataflow::Executor;
///    each request's parallel stages (EM inference etc.) also run on that
///    same executor, whose joins donate the waiting thread, so sessions *
///    stages compose without extra threads or deadlock.
///  * Consecutive queued appends to one session are COALESCED: while an
///    append sits queued behind a running request, later appends merge
///    into it and the whole delta is applied through one
///    AppendObservations call (one incremental matrix patch). Every
///    submitter's future still gets the batch's Status. A queued run
///    closes the window, preserving FIFO visibility.
///
/// Thread safety: all public methods may be called from any thread, with
/// one restriction: CloseSession, Drain and the destructor BLOCK until
/// queued requests finish, so they must be called from client threads,
/// never from a task running on the service's executor (a blocked worker
/// could be the one the drain is waiting for). A submit racing a close is
/// safe — it either resolves NotFound or executes on the session, which
/// stays pinned until its last request finishes (the close may return
/// before that straggler does). The executor (when supplied) must outlive
/// the service and every returned future.
class TrustService {
 public:
  struct ServiceOptions {
    /// Shared executor carrying both the request loop and the requests'
    /// parallel stages. Null selects dataflow::DefaultExecutor().
    dataflow::Executor* executor = nullptr;
    /// Merge consecutive queued appends per session into one delta.
    bool coalesce_appends = true;
    /// When non-empty, every created session gets a persistent artifact
    /// cache rooted here (Pipeline::EnableDiskCache): compiled matrices are
    /// keyed by (dataset fingerprint, compile options), so a service
    /// restarted over the same cubes serves its first runs warm — loading
    /// artifacts instead of recompiling. Sessions share the directory
    /// safely (entries are content-addressed). CreateSession fails if the
    /// directory cannot be created.
    std::string cache_directory;
    /// Byte-size cap on the shared cache directory (0 = unlimited): after
    /// every save the store evicts least-recently-used entries (by mtime;
    /// loads refresh recency) until the total fits. See
    /// cache::StoreOptions::max_bytes.
    uint64_t cache_max_bytes = 0;
    /// Index every completed Submit{Run,RunFrom} report into an immutable
    /// query::Snapshot and publish it on the session's registry, so
    /// Query() always serves the latest completed run. Publication happens
    /// on the session strand (after the run, before the next request), so
    /// it never races the pipeline. Disable to publish manually through
    /// Pipeline::PublishSnapshot.
    bool publish_snapshots = true;
    /// Registry this service's metrics register into: the Stats counters,
    /// per-kind queue-wait/execute latency histograms
    /// (kbt_service_queue_wait_seconds / kbt_service_execute_seconds,
    /// kind = run|run_from|append|tick) and per-session queue-depth gauges
    /// (kbt_service_queue_depth). Null selects
    /// obs::MetricsRegistry::Default().
    obs::MetricsRegistry* metrics = nullptr;
    /// Value of the `service` label on this instance's metrics. Empty
    /// picks a process-unique ordinal ("svc0", "svc1", ...), keeping
    /// concurrently-live services apart without unbounded cardinality.
    std::string metrics_label;
  };

  /// Monotonic request counters — a thin view over this service's
  /// kbt::obs counters (kbt_service_*_total with this instance's
  /// `service` label), kept for API compatibility; the registry is the
  /// source of truth and the superset (latency histograms, queue depths).
  struct Stats {
    /// SubmitRun + SubmitRunFrom calls accepted.
    size_t runs_submitted = 0;
    /// SubmitAppend calls accepted.
    size_t appends_submitted = 0;
    /// Appends that merged into an already-queued batch.
    size_t appends_coalesced = 0;
    /// AppendObservations calls actually executed (batches).
    size_t append_batches_executed = 0;
    /// Snapshots auto-published after completed runs.
    size_t snapshots_published = 0;
  };

  /// Default options: the shared DefaultExecutor, coalescing on, no
  /// persistent cache.
  TrustService() : TrustService(ServiceOptions()) {}
  explicit TrustService(ServiceOptions options);
  /// Drains every session before returning (blocks like Drain(); see the
  /// thread-safety paragraph above — never destroy from a service task).
  ~TrustService();

  TrustService(const TrustService&) = delete;
  TrustService& operator=(const TrustService&) = delete;

  /// Registers `pipeline` under `name`. Fails with InvalidArgument when
  /// the name is already taken — in that case the caller's pipeline is
  /// left untouched (not consumed), so a warm pipeline survives a naming
  /// collision and can be registered under another name. On success the
  /// service adopts the pipeline and points it at the shared executor
  /// (Pipeline::AttachExecutor, overriding any builder-set executor), so
  /// request tasks and their parallel stages run on one pool.
  Status CreateSession(const std::string& name, Pipeline&& pipeline);

  /// Convenience: Build() the pipeline and register it in one step.
  Status CreateSession(const std::string& name, PipelineBuilder builder);

  /// Registers a SHARDED pipeline under `name`; the session surface stays
  /// identical, the backend differs transparently:
  ///  * SubmitRun / SubmitRunFrom scatter across the shards (the session
  ///    strand drives ShardedPipeline, whose TaskGroup joins donate the
  ///    strand's thread, so sharded runs never deadlock the executor) and
  ///    resolve with the MERGED logical report.
  ///  * SubmitRunFrom warm-starts from the session's RETAINED last sharded
  ///    report — per-shard inference state does not flatten, so the
  ///    `previous` argument cannot carry it. FailedPrecondition before the
  ///    first completed sharded run.
  ///  * SubmitAppend scatters the delta to the owning shards (coalescing
  ///    unchanged).
  ///  * Query() serves the sharded pipeline's merged-snapshot registry, so
  ///    readers cannot tell a sharded session from a plain one.
  /// Same failure contract as CreateSession: on a name collision the
  /// caller's pipeline is left untouched.
  Status CreateShardedSession(const std::string& name,
                              ShardedPipeline&& pipeline);

  /// Drains the session's queued requests, then removes it. NotFound when
  /// no such session exists. Blocks via SerialQueue::Wait, which parks the
  /// calling thread WITHOUT donating it to the pool (unlike
  /// TaskGroup::Wait — see src/common/thread_pool.h): call it from client
  /// threads only, never from a task running on the service's executor.
  Status CloseSession(const std::string& name);

  /// Whether a session is currently registered under `name`. A snapshot:
  /// a racing CreateSession/CloseSession may change the answer by the
  /// time the caller acts on it.
  bool HasSession(const std::string& name) const;
  /// Names of all currently registered sessions, sorted (map order).
  std::vector<std::string> SessionNames() const;

  /// Enqueues a Pipeline::Run() on the session. Non-blocking; the future
  /// resolves to the report (or the run's error Status, or NotFound when
  /// the session does not exist).
  std::future<StatusOr<TrustReport>> SubmitRun(const std::string& session);

  /// Enqueues a warm-started Pipeline::RunFrom(previous).
  std::future<StatusOr<TrustReport>> SubmitRunFrom(const std::string& session,
                                                   TrustReport previous);

  /// Enqueues Pipeline::AppendObservations(observations). Consecutive
  /// queued appends coalesce into one call (see class comment); the future
  /// resolves to that call's Status.
  std::future<Status> SubmitAppend(
      const std::string& session,
      std::vector<extract::RawObservation> observations);

  /// Attaches a streaming ingestion loop to the session: a
  /// stream::StreamEngine over the session's pipeline (plain or sharded —
  /// streaming composes with sharded sessions transparently) draining
  /// `feed`. Ticks run ON THE SESSION STRAND, interleaving FIFO with
  /// Submit* requests, so a tick never races an append and its published
  /// generation is exactly what the equivalent batch calls would produce.
  ///
  /// With options.tick_interval > 0 a background ticker thread enqueues a
  /// tick every interval, stamping it with options.clock (system clock
  /// when unset); with tick_interval == 0 ticks happen only via
  /// SubmitTick — the deterministic mode.
  ///
  /// Fails NotFound (no such session), FailedPrecondition (a stream is
  /// already attached — DetachStream first), or InvalidArgument (engine
  /// rejects the configuration, e.g. decay on a sharded backend).
  ///
  /// BLOCKS until the attach executes on the strand (engine construction
  /// reads the live dataset, so it serializes behind queued requests):
  /// call from client threads, like CloseSession, never from a task on
  /// the service's executor.
  Status AttachStream(const std::string& session,
                      std::shared_ptr<stream::ObservationFeed> feed,
                      stream::StreamOptions options);

  /// Stops the session's background ticker (if any), waits for it to exit,
  /// and detaches the engine. Queued ticks still drain harmlessly (they
  /// pin the engine). NotFound when the session does not exist,
  /// FailedPrecondition when no stream is attached. CloseSession detaches
  /// implicitly.
  Status DetachStream(const std::string& session);

  /// Enqueues one tick at logical time `now` on the session strand.
  /// Resolves with the TickResult (or NotFound / FailedPrecondition when
  /// the session or its stream is gone). Works with or without a
  /// background ticker; with one, manual and periodic ticks interleave
  /// FIFO.
  std::future<StatusOr<stream::TickResult>> SubmitTick(
      const std::string& session, double now);

  /// The attached engine's monotonic counters. NotFound /
  /// FailedPrecondition as above. Callable from any thread, concurrently
  /// with running ticks.
  StatusOr<stream::StreamStats> StreamingStats(
      const std::string& session) const;

  /// A read handle onto the session's published snapshots: queries on it
  /// run on the CALLER's thread, lock-free, concurrently with whatever
  /// requests are queued or executing on the session — the read path never
  /// enters the session strand. The reader stays valid after CloseSession
  /// (it co-owns the registry and keeps serving the last published
  /// snapshot); its view() is null until the session's first run
  /// completes. NotFound when no such session exists. Readers are
  /// single-threaded: take one per reader thread.
  StatusOr<query::SnapshotReader> Query(const std::string& session) const;

  /// Blocks until every request queued so far on every session finished.
  /// Same caller restriction as CloseSession: it waits through
  /// SerialQueue::Wait (non-donating — src/common/thread_pool.h), so a
  /// service-executor task calling it could wait for itself.
  void Drain();

  /// Snapshot of the monotonic request counters (coalescing efficiency,
  /// executed batches). Callable from any thread.
  Stats stats() const;

 private:
  struct Session;
  struct State;
  /// Shared (not unique) so request tasks can pin the stats/state they
  /// touch even if they outlive a racing shutdown.
  std::shared_ptr<State> state_;
};

}  // namespace kbt::api

#endif  // KBT_API_SERVICE_H_
