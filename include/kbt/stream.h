#ifndef KBT_API_STREAM_H_
#define KBT_API_STREAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kbt/pipeline.h"
#include "kbt/query.h"
#include "kbt/shard.h"
#include "kbt/sync.h"

/// kbt::stream — continuous-ingestion temporal trust.
///
/// The paper scores one frozen extraction cube; this module turns the
/// batch machinery into a continuously-updating trust system over the
/// seams the earlier layers already paid for: incremental appends
/// (Pipeline::AppendObservations), warm starts (RunFrom), the RCU snapshot
/// registry, and cross-snapshot diffs.
///
///   feed -> Tick(now) -> [decay weights] -> AppendObservations
///        -> Run/RunFrom -> PublishSnapshot(now) -> diff -> alerts
///
/// Determinism contract:
///  * Tick takes logical time as a parameter — the engine itself never
///    reads a clock, so a replayed feed with the same tick times produces
///    bit-for-bit the same snapshot sequence. (TrustService's optional
///    background ticker is the one place wall-clock time enters, and only
///    as the `now` it passes in.)
///  * decay_half_life <= 0 (the default) makes a tick EXACTLY equivalent
///    to batch AppendObservations + RunFrom/Run + PublishSnapshot —
///    bit-for-bit, pinned by parity tests, including through a sharded
///    session.
///  * With decay on, per-observation weights reduce onto compiled
///    extraction edges by max (commutative — deterministic regardless of
///    observation order; see Pipeline::SetObservationWeights).
namespace kbt::stream {

/// One timestamped extraction event flowing through a feed. `timestamp` is
/// seconds since a caller-defined epoch — the same axis as tick times and
/// snapshot publish times; only differences ever matter.
struct TimedObservation {
  extract::RawObservation observation;
  double timestamp = 0.0;
};

/// A source of timestamped observations the StreamEngine drains on each
/// tick. Implementations decide their own threading contract; Poll itself
/// is only ever called from one tick at a time (the engine serializes
/// ticks, TrustService runs them on the session strand).
class ObservationFeed {
 public:
  virtual ~ObservationFeed() = default;

  /// Removes and returns everything currently available, in arrival order;
  /// an empty vector means "nothing new" (the tick becomes a no-op), an
  /// error poisons the tick without touching the pipeline.
  virtual StatusOr<std::vector<TimedObservation>> Poll() = 0;
};

/// In-memory feed: producers Push from any thread, the engine drains on
/// tick. The mutex is held only for vector swaps/appends, so producers
/// never wait on a running tick's inference.
class QueueFeed : public ObservationFeed {
 public:
  /// Enqueues one observation (thread-safe).
  void Push(TimedObservation observation);
  /// Enqueues a batch in order (thread-safe, one lock).
  void PushBatch(std::vector<TimedObservation> batch);
  /// Observations currently waiting to be polled.
  size_t pending() const;

  StatusOr<std::vector<TimedObservation>> Poll() override;

 private:
  mutable Mutex mutex_;
  std::vector<TimedObservation> pending_ KBT_GUARDED_BY(mutex_);
};

/// Tails a growing TSV file of `obs` records in the io::WriteRawDataset
/// line format ("obs <extractor> <pattern> <website> <page> <item> <value>
/// <conf> <provided> [<timestamp>]"; header/meta/nfalse/truth/comment
/// lines are skipped). Each Poll reads from the previous end-of-file
/// position; a trailing partial line (a writer mid-append) is carried over
/// and completed on the next Poll, never half-parsed. Observations without
/// the timestamp column get `default_timestamp`. A malformed completed
/// line fails the Poll (InvalidArgument naming the offending record).
class TsvTailFeed : public ObservationFeed {
 public:
  explicit TsvTailFeed(std::string path, double default_timestamp = 0.0);

  StatusOr<std::vector<TimedObservation>> Poll() override;

  /// Bytes of the file consumed so far (diagnostics/tests).
  uint64_t bytes_consumed() const { return bytes_consumed_; }

 private:
  std::string path_;
  double default_timestamp_ = 0.0;
  uint64_t bytes_consumed_ = 0;
  /// Carry-over of an incomplete final line between Polls.
  std::string partial_;
};

/// What an alert rule watches.
enum class AlertTarget {
  kWebsites = 0,
  kSources = 1,
};

/// A trust-drop predicate evaluated against consecutive snapshot
/// generations: fires for every id whose KBT fell by at least `min_drop`
/// absolute AND — when `min_drop_fraction` > 0 — by at least that fraction
/// of its previous score ("source trust dropped >= 20%" is
/// min_drop_fraction = 0.2). Ids present in only one generation never
/// fire (there is no drop to measure).
struct AlertRule {
  /// Echoed on every alert the rule fires; purely for the consumer.
  std::string name;
  AlertTarget target = AlertTarget::kWebsites;
  /// Minimum absolute KBT drop (before - after) to fire; <= 0 means any
  /// decrease qualifies (subject to the fraction below).
  double min_drop = 0.0;
  /// Minimum relative drop (fraction of the before-score, evaluated only
  /// when the before-score is positive); <= 0 disables the relative test.
  double min_drop_fraction = 0.0;
  /// Restricts the rule to one id; nullopt watches every id.
  std::optional<uint32_t> id;
};

/// One fired alert: which rule, which id, and the movement that fired it.
struct Alert {
  std::string rule;
  AlertTarget target = AlertTarget::kWebsites;
  uint32_t id = 0;
  double before_kbt = 0.0;
  double after_kbt = 0.0;
  /// before_kbt - after_kbt (always > 0 when fired).
  double drop = 0.0;
  uint64_t before_sequence = 0;
  uint64_t after_sequence = 0;
  /// The tick time the alert fired at.
  double time = 0.0;
};

/// Evaluates registered AlertRules against two snapshot generations.
/// Evaluation walks the FULL id spaces of both snapshots — alerts are
/// independent of the diff's top-k truncation. Stateless and const after
/// setup: rules are added before streaming starts, evaluation is
/// deterministic (alerts ordered by rule registration, then id).
class AlertSink {
 public:
  void AddRule(AlertRule rule);
  size_t num_rules() const { return rules_.size(); }

  /// All alerts fired by the movement from `before` to `after`, stamped
  /// with `now`.
  std::vector<Alert> Evaluate(const query::Snapshot& before,
                              const query::Snapshot& after,
                              double now) const;

 private:
  std::vector<AlertRule> rules_;
};

/// Configuration of one StreamEngine.
struct StreamOptions {
  /// Exponential time-decay half-life in seconds: an observation aged one
  /// half-life at tick time contributes with weight 0.5, two half-lives
  /// 0.25, ... (weight = 2^(-age / half_life); future-dated observations
  /// clamp to 1). <= 0 disables decay entirely — ticks then reproduce the
  /// batch pipeline bit-for-bit. Observations without real timestamps
  /// (untimestamped seed datasets, feeds defaulting to 0) carry time 0,
  /// i.e. decay as maximally old. NOT supported on sharded backends yet
  /// (Tick returns InvalidArgument).
  double decay_half_life = 0.0;
  /// SnapshotRegistry retention (SetRetention) applied at engine creation:
  /// how many generations stay reachable for AsOf/History. 0 keeps only
  /// the current snapshot (no time travel).
  size_t history_capacity = 0;
  /// Warm-start each tick's inference from the previous tick's report
  /// (RunFrom); false re-runs from priors every tick.
  bool warm_start = true;
  /// top_k for the per-tick DiffSnapshots in TickResult.
  size_t diff_top_k = 10;
  /// Background tick cadence in seconds for TrustService::AttachStream:
  /// > 0 starts a ticker thread enqueuing a tick on the session strand
  /// every interval; 0 (default) means ticks happen only when explicitly
  /// submitted (SubmitTick) — the deterministic mode tests use.
  double tick_interval = 0.0;
  /// Rules evaluated after every published generation.
  std::vector<AlertRule> alert_rules;
  /// Invoked synchronously (on the ticking thread) for each fired alert,
  /// in order. Alerts are also returned on the TickResult.
  std::function<void(const Alert&)> alert_callback;
  /// The clock TrustService's background ticker stamps tick times with;
  /// defaults to the system clock in seconds. Manual Tick(now) calls
  /// bypass it entirely. Injectable for deterministic service tests.
  std::function<double()> clock;
};

/// What one Tick did.
struct TickResult {
  /// Observations drained from the feed this tick.
  size_t observations_ingested = 0;
  /// False for an empty-feed no-op tick (nothing below is meaningful).
  bool published = false;
  /// Registry sequence number of the published generation.
  uint64_t sequence = 0;
  /// The published generation.
  std::shared_ptr<const query::Snapshot> snapshot;
  /// Movement vs the previous generation (nullopt on the first one),
  /// truncated to StreamOptions::diff_top_k.
  std::optional<query::SnapshotDiff> diff;
  /// Alerts fired by this generation, in rule-registration order.
  std::vector<Alert> alerts;
};

/// Monotonic counters over an engine's lifetime. Readable concurrently
/// with a running tick (TrustService::StreamingStats does).
struct StreamStats {
  uint64_t ticks = 0;
  uint64_t empty_ticks = 0;
  uint64_t observations_ingested = 0;
  uint64_t generations_published = 0;
  uint64_t alerts_fired = 0;
};

/// Drives one pipeline from one feed: each Tick(now) drains the feed,
/// appends the batch, recomputes decay weights (when enabled), runs
/// inference (warm-started from the previous tick), publishes the result
/// as a new snapshot generation stamped with `now`, and evaluates alert
/// rules against the previous generation.
///
/// Threading: ticks must be serialized by the caller (TrustService runs
/// them on the session strand); stats() is safe concurrently with a
/// running tick. The engine borrows the pipeline — the caller keeps it
/// alive and must not mutate it between ticks behind the engine's back.
class StreamEngine {
 public:
  /// Engine over an unsharded pipeline. InvalidArgument on a null
  /// pipeline/feed or a feed batch contract violation; applies
  /// options.history_capacity to the pipeline's registry.
  static StatusOr<std::unique_ptr<StreamEngine>> Create(
      api::Pipeline* pipeline, std::shared_ptr<ObservationFeed> feed,
      StreamOptions options);

  /// Engine over a sharded pipeline. Decay is not supported on sharded
  /// backends yet: options.decay_half_life > 0 is rejected here.
  static StatusOr<std::unique_ptr<StreamEngine>> Create(
      api::ShardedPipeline* pipeline, std::shared_ptr<ObservationFeed> feed,
      StreamOptions options);

  /// One ingestion cycle at logical time `now` (seconds, the same epoch as
  /// the feed's timestamps). An empty feed is a cheap no-op (no append, no
  /// run, no publish). Errors leave the engine consistent: a failed run
  /// keeps the appended observations (they re-enter inference next tick)
  /// but publishes nothing.
  StatusOr<TickResult> Tick(double now);

  const StreamOptions& options() const { return options_; }
  StreamStats stats() const;
  /// The registry generations are published on (the pipeline's own).
  std::shared_ptr<query::SnapshotRegistry> snapshot_registry() const;

 private:
  StreamEngine(api::Pipeline* pipeline, api::ShardedPipeline* sharded,
               std::shared_ptr<ObservationFeed> feed, StreamOptions options);

  StatusOr<TickResult> TickPipeline(double now,
                                    std::vector<TimedObservation> batch);
  StatusOr<TickResult> TickSharded(double now,
                                   std::vector<TimedObservation> batch);
  /// Diff + alert + stats bookkeeping shared by both backends.
  void FinishTick(double now, TickResult* result);

  api::Pipeline* pipeline_ = nullptr;
  api::ShardedPipeline* sharded_ = nullptr;
  std::shared_ptr<ObservationFeed> feed_;
  StreamOptions options_;
  AlertSink alerts_;

  /// Per-observation ingestion times, parallel to the pipeline's dataset;
  /// the authoritative timeline decay weights derive from (the dataset's
  /// own observation_timestamps are seeded in but appends through the
  /// engine keep only this copy current).
  std::vector<double> timeline_;
  /// Previous tick's results for warm starts and diffs.
  std::optional<api::TrustReport> last_report_;
  std::optional<api::ShardedTrustReport> last_sharded_;
  std::shared_ptr<const query::Snapshot> previous_snapshot_;

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> empty_ticks_{0};
  std::atomic<uint64_t> observations_ingested_{0};
  std::atomic<uint64_t> generations_published_{0};
  std::atomic<uint64_t> alerts_fired_{0};

  /// Monotonic stamp of the current Tick's entry, for the
  /// feed-to-queryable latency histogram (0 = obs disabled). Tick-path
  /// confined like timeline_ (ticks are strand-serialized).
  uint64_t tick_start_ns_ = 0;
};

}  // namespace kbt::stream

#endif  // KBT_API_STREAM_H_
