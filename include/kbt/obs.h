#ifndef KBT_OBS_H_
#define KBT_OBS_H_

/// kbt::obs — the unified observability substrate: one process-wide
/// registry of lock-free counters, gauges and fixed-bucket latency
/// histograms that every layer (service, shards, stream ticks, EM
/// kernels, caches, the query read path) reports into, plus a
/// lightweight trace-span layer exportable to Chrome tracing / Perfetto.
///
///   // Metrics: register once (cheap mutex), record lock-free forever.
///   auto* hist = kbt::obs::MetricsRegistry::Default().GetHistogram(
///       "kbt_service_execute_seconds", {{"kind", "run"}});
///   { kbt::obs::ScopedTimer timer(hist);  DoWork(); }
///
///   // Tracing: scoped spans with implicit (or explicit) parent links.
///   { KBT_TRACE_SPAN("stream.tick");  Tick(); }
///   std::string json = kbt::obs::TraceRecorder::Default()
///                          .RenderChromeTrace();   // load in Perfetto
///
/// Three export surfaces: MetricsRegistry::Snapshot() (structured C++,
/// mergeable across shard/thread registries), RenderPrometheus() (text
/// exposition format) and RenderJson().
///
/// Contracts (pinned by tests/obs/):
///  * Determinism: observation-only. Nothing read from this layer feeds
///    back into inference — enabling or disabling obs never changes any
///    score bit (tests/obs/parity_test.cpp).
///  * Overhead: the KBT_OBS_* macro hooks and KBT_TRACE_SPAN cost one
///    relaxed atomic load + branch when the corresponding switch is off
///    (single-digit ns; measured by bench_soak's disabled-path
///    microbench). Enabled counters are one relaxed fetch_add.
///  * Thread safety: every metric object is safe for concurrent use from
///    any number of threads; all synchronization is relaxed atomics (no
///    fences on the hot path) plus a registration-time mutex.
///
/// Metric naming scheme (linted by scripts/lint_invariants.py, documented
/// in docs/OBSERVABILITY.md): kbt_<layer>_<name>_<unit> — counters end in
/// _total, histograms in _seconds/_bytes, gauges in a unit noun (_depth,
/// _ratio, _version, ...). Label cardinality must stay bounded (sessions,
/// shards, stages — never ids or triples).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kbt/sync.h"

namespace kbt::obs {

// ---------------------------------------------------------------------------
// Global switches
// ---------------------------------------------------------------------------

namespace internal {
/// Process-wide metric switch. Inline variable: one relaxed load to test,
/// no function-local-static guard on the hot path.
inline std::atomic<bool> g_metrics_enabled{true};
/// Process-wide tracing switch; tracing is opt-in (spans cost a clock read
/// and a ring push when on).
inline std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

/// Whether the KBT_OBS_* instrumentation macros record. Direct method
/// calls on metric objects (Counter::Increment etc.) are NOT gated — the
/// switch exists so instrumentation hooks can be compiled in everywhere
/// and turned off wholesale, while analysis code (e.g. the paper-figure
/// histograms) always records.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

/// Whether KBT_TRACE_SPAN records spans (off by default).
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}
inline void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

/// Monotonic (steady-clock) nanoseconds since an arbitrary epoch — the
/// one timing source of the observability layer. Implemented out of line
/// so the clock include stays out of this public header.
uint64_t MonotonicNanos();
inline double MonotonicSeconds() {
  return static_cast<double>(MonotonicNanos()) * 1e-9;
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotonic event counter. Increment is one relaxed fetch_add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (queue depth, straggler ratio, registry version).
/// Set is a relaxed store; Add is a relaxed CAS loop (for +1/-1 depth
/// tracking from concurrent submitters).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced latency bucket edges: 10^(1/4)-spaced from 1 ns to 1000 s
/// (50 buckets including the >= 1000 s catch-all). Quantiles estimated on
/// these edges are exact to within a factor of 10^(1/4) ~ 1.78 — tight
/// enough to tell a 10 us lookup from a 100 ms run.
std::vector<double> LatencyBucketEdges();

/// Generic log-spaced edges: `per_decade` edges per factor of 10 from
/// `lo` up to and including ~`hi` (both > 0).
std::vector<double> LogBucketEdges(double lo, double hi, int per_decade);

/// A plain-data histogram capture: what Snapshot() hands out and what
/// merging/quantile math runs on. Bucket i covers [edges[i], edges[i+1]);
/// the final bucket is the >= edges.back() catch-all; values below
/// edges.front() clamp into bucket 0 (same convention as the paper-figure
/// histograms this type absorbed from common/histogram.h).
struct HistogramSnapshot {
  std::vector<double> edges;
  /// One weight total per bucket (edges.size() buckets).
  std::vector<double> counts;
  /// Sum of weights / of value*weight over all Add calls.
  double total_weight = 0.0;
  double weighted_sum = 0.0;
  /// Number of Add calls (unweighted), and the observed value range.
  uint64_t samples = 0;
  double min_value = 0.0;
  double max_value = 0.0;

  /// Estimated value at quantile q in [0, 1]: linear interpolation inside
  /// the bucket holding the q-th weight, clamped to the observed
  /// [min_value, max_value]. q = 1 returns max_value exactly. 0 when
  /// empty.
  double Quantile(double q) const;
  double Mean() const {
    return total_weight > 0.0 ? weighted_sum / total_weight : 0.0;
  }
  /// Fraction of total weight in bucket i (0 when empty).
  double Fraction(size_t i) const;

  /// Accumulates `other` into this snapshot. The merge is exact at bucket
  /// resolution: merging two captures then estimating a quantile equals
  /// estimating it over the combined stream (pinned by
  /// tests/obs/histogram_test.cpp). Returns false (and leaves this
  /// snapshot untouched) when the edges differ.
  bool MergeFrom(const HistogramSnapshot& other);
};

/// Index of the bucket `value` falls into for `edges` (see
/// HistogramSnapshot for the bucket convention).
size_t BucketIndexFor(const std::vector<double>& edges, double value);
/// Human-readable label for bucket i, e.g. "[0.05,0.1)" or ">=1".
std::string BucketLabelFor(const std::vector<double>& edges, size_t i);

/// Fixed-bucket concurrent histogram: immutable edges chosen at
/// construction, per-bucket atomic weight accumulation, O(log buckets)
/// Add. The general form of (and the implementation behind) the paper's
/// figure histograms in common/histogram.h; registered instances default
/// to LatencyBucketEdges().
class Histogram {
 public:
  /// `edges` must be strictly increasing with at least one entry.
  explicit Histogram(std::vector<double> edges);
  /// Copy is a (racy-snapshot) capture of the source's current values —
  /// for analysis-style use; registered metrics are never copied.
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  /// Adds `weight` at `value`. Lock-free (relaxed CAS per touched word).
  void Add(double value, double weight = 1.0);
  /// Add with weight 1 — the latency-sample spelling.
  void Record(double value) { Add(value, 1.0); }

  /// Plain-data capture of the current state (each word read relaxed; a
  /// capture concurrent with writers is a consistent-enough observation,
  /// not a linearization point).
  HistogramSnapshot Snapshot() const;

  /// Resets all accumulation, keeping the edges.
  void Clear();

  // -- Direct accessors (relaxed reads), mirroring the absorbed
  // common/histogram.h surface --
  size_t num_buckets() const { return counts_.size(); }
  size_t BucketIndex(double value) const {
    return BucketIndexFor(edges_, value);
  }
  double bucket_count(size_t i) const;
  double bucket_lower(size_t i) const { return edges_[i]; }
  /// Upper edge; the last bucket reports +inf.
  double bucket_upper(size_t i) const;
  double total_weight() const;
  double Fraction(size_t i) const;
  std::string BucketLabel(size_t i) const {
    return BucketLabelFor(edges_, i);
  }
  const std::vector<double>& edges() const { return edges_; }

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<double>> counts_;
  std::atomic<double> total_weight_{0.0};
  std::atomic<double> weighted_sum_{0.0};
  std::atomic<uint64_t> samples_{0};
  std::atomic<double> min_value_;
  std::atomic<double> max_value_;
};

/// RAII latency sample: records elapsed seconds into `histogram` on
/// destruction. Gated on MetricsEnabled() at construction (a disabled
/// timer never reads the clock); pass nullptr to no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(MetricsEnabled() ? histogram : nullptr),
        start_ns_(histogram_ != nullptr ? MonotonicNanos() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(
          static_cast<double>(MonotonicNanos() - start_ns_) * 1e-9);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// (key, value) metric labels; registration sorts them, so label order
/// never distinguishes metrics.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// One metric's captured state inside a RegistrySnapshot.
struct MetricSnapshot {
  std::string name;
  Labels labels;  // sorted by key
  MetricType type = MetricType::kCounter;
  uint64_t counter_value = 0;
  double gauge_value = 0.0;
  HistogramSnapshot histogram;  // engaged for kHistogram only
};

/// A structured capture of a whole registry, ordered by (name, labels) so
/// renders are deterministic. Mergeable across shard/thread registries.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// The metric with this exact (name, sorted labels), or nullptr.
  const MetricSnapshot* Find(const std::string& name,
                             const Labels& labels = {}) const;

  /// Accumulates `other`: counters and histograms sum, gauges sum (the
  /// useful semantics for depth-style gauges aggregated across shards —
  /// document per-metric when a max would be truer). Metrics present only
  /// in `other` are adopted. Returns false on a type or bucket-edge
  /// conflict (conflicting entries are skipped, the rest still merge).
  bool MergeFrom(const RegistrySnapshot& other);

  /// Prometheus text exposition format (one # TYPE line per family;
  /// histograms as cumulative _bucket{le=...}/_sum/_count series).
  std::string RenderPrometheus() const;
  /// JSON dump: {"metrics": [{name, type, labels, ...}, ...]}; histograms
  /// carry count/sum/min/max/p50/p90/p99 plus per-bucket counts.
  std::string RenderJson() const;
};

/// Registry of named metrics with stable handle addresses: Get* registers
/// on first use (mutex) and returns the same lock-free object forever
/// after — call once, cache the pointer, record forever. One process-wide
/// Default() instance is the library's dashboard; per-component instances
/// (e.g. a bench's private registry, one registry per shard process) are
/// cheap and merge via RegistrySnapshot::MergeFrom.
class MetricsRegistry {
 public:
  // Out-of-line so entries_ can hold unique_ptrs to the incomplete Entry.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every library layer reports into.
  static MetricsRegistry& Default();

  /// Returns the metric registered under (name, labels), creating it on
  /// first use. The pointer stays valid for the registry's lifetime. A
  /// (name, labels) pair re-requested as a DIFFERENT type is a
  /// programming error: it logs once and returns a detached dummy (so
  /// callers never crash or corrupt the real metric).
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// `edges` applies on first registration only (empty selects
  /// LatencyBucketEdges()); later calls return the existing histogram.
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> edges = {});

  RegistrySnapshot Snapshot() const;
  std::string RenderPrometheus() const { return Snapshot().RenderPrometheus(); }
  std::string RenderJson() const { return Snapshot().RenderJson(); }

  /// Number of registered metrics (distinct (name, labels) pairs).
  size_t size() const;

  /// Zeroes every registered metric's value, keeping registrations and
  /// handle addresses valid. For tests and benches that reuse the
  /// process-wide registry.
  void ResetValues();

 private:
  struct Entry;
  Entry* FindOrCreate(const std::string& name, const Labels& labels,
                      MetricType type, std::vector<double>* edges);

  mutable Mutex mutex_;
  /// Keyed by name + serialized sorted labels; Entry addresses are stable
  /// (unique_ptr) so handles survive rehashing.
  std::vector<std::unique_ptr<Entry>> entries_ KBT_GUARDED_BY(mutex_);
};

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// One completed span, as captured in a thread's ring buffer.
struct TraceEvent {
  std::string name;
  /// Process-unique span id (1, 2, ...) and the id of the enclosing span
  /// (0 = root). Parents are linked implicitly from the per-thread span
  /// stack, or explicitly via the TraceSpan(name, parent_id) constructor
  /// for cross-thread edges (e.g. a service request's queue hop).
  uint64_t id = 0;
  uint64_t parent_id = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Small dense index of the recording thread (assigned at its first
  /// span), the "tid" of the Chrome-trace export.
  uint32_t thread_index = 0;
};

/// Collects completed spans into fixed-capacity per-thread ring buffers
/// (oldest spans overwritten on wrap) and exports them as Chrome-trace /
/// Perfetto JSON. Buffers outlive their threads, so a Snapshot after a
/// worker exits still sees its spans.
class TraceRecorder {
 public:
  static TraceRecorder& Default();

  /// Per-thread ring capacity for buffers created AFTER this call
  /// (existing rings keep their size). Default 8192 spans.
  void SetRingCapacity(size_t spans);

  /// Every retained span across all threads, in start-time order.
  std::vector<TraceEvent> Snapshot() const;
  /// Chrome trace-event JSON ({"traceEvents": [...]}) — load in
  /// chrome://tracing or https://ui.perfetto.dev.
  std::string RenderChromeTrace() const;
  /// Drops all retained spans (thread registrations survive).
  void Clear();
  /// Total spans recorded (monotonic, includes overwritten ones).
  uint64_t spans_recorded() const;

 private:
  friend class TraceSpan;
  struct Ring;
  TraceRecorder() = default;
  /// The calling thread's ring, registering it on first use.
  Ring* ThreadRing();

  mutable Mutex mutex_;
  std::vector<std::shared_ptr<Ring>> rings_ KBT_GUARDED_BY(mutex_);
  size_t ring_capacity_ KBT_GUARDED_BY(mutex_) = 8192;
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> spans_recorded_{0};
};

/// Scoped RAII span recorded into the calling thread's ring on
/// destruction. Construction when tracing is off is one relaxed load + a
/// branch (no clock read, no allocation). Spans nest: a span started
/// while another is open on the same thread records it as parent.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  /// Explicit parent link (use TraceSpan::CurrentId() captured on another
  /// thread to stitch cross-thread request flows).
  TraceSpan(std::string_view name, uint64_t parent_id);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's id (0 when tracing was off at construction).
  uint64_t id() const { return id_; }
  /// The innermost open span id on the calling thread (0 = none).
  static uint64_t CurrentId();

 private:
  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace kbt::obs

// ---------------------------------------------------------------------------
// Instrumentation macros — the hooks library code uses. All of them are
// one relaxed load + branch when the corresponding switch is off; see the
// overhead contract at the top of this header.
// ---------------------------------------------------------------------------

/// Increments `counter` (an obs::Counter*) by n (default 1).
#define KBT_OBS_INC(counter) \
  do {                                                        \
    if (::kbt::obs::MetricsEnabled()) (counter)->Increment(); \
  } while (0)
#define KBT_OBS_ADD(counter, n) \
  do {                                                          \
    if (::kbt::obs::MetricsEnabled()) (counter)->Increment(n);  \
  } while (0)
/// Sets / adjusts `gauge` (an obs::Gauge*).
#define KBT_OBS_GAUGE_SET(gauge, value) \
  do {                                                         \
    if (::kbt::obs::MetricsEnabled()) (gauge)->Set(value);     \
  } while (0)
#define KBT_OBS_GAUGE_ADD(gauge, delta) \
  do {                                                         \
    if (::kbt::obs::MetricsEnabled()) (gauge)->Add(delta);     \
  } while (0)
/// Records `value` into `histogram` (an obs::Histogram*).
#define KBT_OBS_RECORD(histogram, value) \
  do {                                                           \
    if (::kbt::obs::MetricsEnabled()) (histogram)->Record(value); \
  } while (0)

#define KBT_OBS_CONCAT_INNER_(a, b) a##b
#define KBT_OBS_CONCAT_(a, b) KBT_OBS_CONCAT_INNER_(a, b)
/// Opens a scoped trace span for the rest of the enclosing block.
#define KBT_TRACE_SPAN(name) \
  ::kbt::obs::TraceSpan KBT_OBS_CONCAT_(kbt_trace_span_, __LINE__)(name)
/// As KBT_TRACE_SPAN with an explicit parent span id (cross-thread links).
#define KBT_TRACE_SPAN_LINKED(name, parent_id)                    \
  ::kbt::obs::TraceSpan KBT_OBS_CONCAT_(kbt_trace_span_,          \
                                        __LINE__)(name, parent_id)

#endif  // KBT_OBS_H_
