#ifndef KBT_KB_SCHEMA_H_
#define KBT_KB_SCHEMA_H_

#include <cmath>
#include <string>
#include <vector>

#include "kb/ids.h"

namespace kbt::kb {

/// Coarse entity types, enough to express the paper's type-checking gold
/// standard (Section 5.3.1): person/place/organization entities, plus
/// literal kinds for numeric/date/string objects.
enum class EntityType : uint8_t {
  kPerson = 0,
  kPlace = 1,
  kOrganization = 2,
  kCreativeWork = 3,
  kNumber = 4,
  kDate = 5,
  kString = 6,
};

std::string_view EntityTypeName(EntityType type);

/// Schema of one predicate: the types it connects and the size of its value
/// domain. `num_false_values` is the paper's n, i.e. |dom(d)| = n + 1.
struct PredicateSchema {
  PredicateId id = kInvalidId;
  std::string name;
  EntityType subject_type = EntityType::kPerson;
  EntityType object_type = EntityType::kPlace;
  /// Single-truth predicates (nationality, date-of-birth). The library
  /// adopts the paper's single-truth assumption throughout; the flag is
  /// recorded so corpora can mark set-valued predicates for documentation.
  bool functional = true;
  /// n: number of false values in dom(d) (Eq. 1 / Eq. 5 denominator).
  int num_false_values = 10;
  /// Valid numeric range for kNumber objects; NaN bounds disable the check.
  double numeric_min = std::nan("");
  double numeric_max = std::nan("");
};

}  // namespace kbt::kb

#endif  // KBT_KB_SCHEMA_H_
