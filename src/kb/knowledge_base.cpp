#include "kb/knowledge_base.h"

#include <cassert>

namespace kbt::kb {

std::string_view EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kPerson:
      return "person";
    case EntityType::kPlace:
      return "place";
    case EntityType::kOrganization:
      return "organization";
    case EntityType::kCreativeWork:
      return "creative_work";
    case EntityType::kNumber:
      return "number";
    case EntityType::kDate:
      return "date";
    case EntityType::kString:
      return "string";
  }
  return "unknown";
}

EntityId KnowledgeBase::AddEntity(std::string name, EntityType type,
                                  double numeric_value) {
  const EntityId id = static_cast<EntityId>(entities_.size());
  entities_.push_back(Entity{std::move(name), type, numeric_value});
  return id;
}

PredicateId KnowledgeBase::AddPredicate(PredicateSchema schema) {
  const PredicateId id = static_cast<PredicateId>(predicates_.size());
  schema.id = id;
  predicates_.push_back(std::move(schema));
  return id;
}

Status KnowledgeBase::AddFact(EntityId subject, PredicateId predicate,
                              ValueId object) {
  if (subject >= entities_.size()) {
    return Status::InvalidArgument("unknown subject entity");
  }
  if (predicate >= predicates_.size()) {
    return Status::InvalidArgument("unknown predicate");
  }
  if (object >= entities_.size()) {
    return Status::InvalidArgument("unknown object entity");
  }
  facts_[MakeDataItem(subject, predicate)] = object;
  return Status::OK();
}

std::optional<ValueId> KnowledgeBase::ValueOf(DataItemId d) const {
  const auto it = facts_.find(d);
  if (it == facts_.end()) return std::nullopt;
  return it->second;
}

bool KnowledgeBase::ContainsFact(DataItemId d, ValueId v) const {
  const auto it = facts_.find(d);
  return it != facts_.end() && it->second == v;
}

LcwaLabel KnowledgeBase::Label(DataItemId d, ValueId v) const {
  const auto it = facts_.find(d);
  if (it == facts_.end()) return LcwaLabel::kUnknown;
  return it->second == v ? LcwaLabel::kTrue : LcwaLabel::kFalse;
}

const std::string& KnowledgeBase::entity_name(EntityId id) const {
  assert(id < entities_.size());
  return entities_[id].name;
}

EntityType KnowledgeBase::entity_type(EntityId id) const {
  assert(id < entities_.size());
  return entities_[id].type;
}

double KnowledgeBase::entity_numeric(EntityId id) const {
  assert(id < entities_.size());
  return entities_[id].numeric_value;
}

const PredicateSchema& KnowledgeBase::predicate(PredicateId id) const {
  assert(id < predicates_.size());
  return predicates_[id];
}

KnowledgeBase KnowledgeBase::SampleSubset(double coverage, Rng& rng) const {
  KnowledgeBase out;
  out.entities_ = entities_;
  out.predicates_ = predicates_;
  out.facts_.reserve(
      static_cast<size_t>(static_cast<double>(facts_.size()) * coverage));
  for (const auto& [item, value] : facts_) {
    if (rng.Bernoulli(coverage)) out.facts_.emplace(item, value);
  }
  return out;
}

}  // namespace kbt::kb
