#include "kb/type_checker.h"

#include <cmath>

namespace kbt::kb {

std::string_view TypeViolationName(TypeViolation violation) {
  switch (violation) {
    case TypeViolation::kNone:
      return "none";
    case TypeViolation::kSubjectEqualsObject:
      return "subject_equals_object";
    case TypeViolation::kSubjectTypeMismatch:
      return "subject_type_mismatch";
    case TypeViolation::kObjectTypeMismatch:
      return "object_type_mismatch";
    case TypeViolation::kValueOutOfRange:
      return "value_out_of_range";
  }
  return "unknown";
}

TypeViolation TypeChecker::Check(DataItemId item, ValueId value) const {
  const EntityId subject = DataItemSubject(item);
  const PredicateId pred_id = DataItemPredicate(item);
  const PredicateSchema& schema = kb_.predicate(pred_id);

  // Rule 1: s = o.
  if (subject == value) return TypeViolation::kSubjectEqualsObject;

  // Rule 2: type compatibility.
  if (kb_.entity_type(subject) != schema.subject_type) {
    return TypeViolation::kSubjectTypeMismatch;
  }
  if (kb_.entity_type(value) != schema.object_type) {
    return TypeViolation::kObjectTypeMismatch;
  }

  // Rule 3: numeric range.
  if (schema.object_type == EntityType::kNumber) {
    const double x = kb_.entity_numeric(value);
    if (!std::isnan(schema.numeric_min) && x < schema.numeric_min) {
      return TypeViolation::kValueOutOfRange;
    }
    if (!std::isnan(schema.numeric_max) && x > schema.numeric_max) {
      return TypeViolation::kValueOutOfRange;
    }
  }
  return TypeViolation::kNone;
}

}  // namespace kbt::kb
