#ifndef KBT_KB_KNOWLEDGE_BASE_H_
#define KBT_KB_KNOWLEDGE_BASE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "kb/ids.h"
#include "kb/schema.h"

namespace kbt::kb {

/// Label assigned to a triple by the Local-Closed-World Assumption
/// (Section 5.3.1): true when present in the KB; false when the KB knows a
/// different value for the same data item; unknown when the KB has no row
/// for the data item.
enum class LcwaLabel : uint8_t {
  kTrue = 0,
  kFalse = 1,
  kUnknown = 2,
};

/// In-memory single-truth knowledge base, the stand-in for Freebase.
///
/// Two roles:
///  * the *world* KB produced by the corpus generator holds the complete
///    ground truth (used for exact synthetic-data metrics, Figures 3-4);
///  * a *partial* KB sampled from the world (SampleSubset) models Freebase's
///    limited coverage and supplies LCWA gold labels and the smart
///    initialization of source quality (Table 5's "+" variants).
class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  /// Registers an entity (or literal value-entity). `numeric_value` is used
  /// by the type checker's range rule for kNumber entities.
  EntityId AddEntity(std::string name, EntityType type,
                     double numeric_value = std::nan(""));

  /// Registers a predicate; the schema's `id` field is overwritten with the
  /// assigned id, which is also returned.
  PredicateId AddPredicate(PredicateSchema schema);

  /// Inserts/overwrites the (single) true value of (subject, predicate).
  Status AddFact(EntityId subject, PredicateId predicate, ValueId object);

  /// The KB's value for data item `d`, if any.
  std::optional<ValueId> ValueOf(DataItemId d) const;

  /// True iff the KB contains exactly (subject(d), predicate(d), v).
  bool ContainsFact(DataItemId d, ValueId v) const;

  /// LCWA label for (d, v) against this KB.
  LcwaLabel Label(DataItemId d, ValueId v) const;

  size_t num_entities() const { return entities_.size(); }
  size_t num_predicates() const { return predicates_.size(); }
  size_t num_facts() const { return facts_.size(); }

  const std::string& entity_name(EntityId id) const;
  EntityType entity_type(EntityId id) const;
  double entity_numeric(EntityId id) const;
  const PredicateSchema& predicate(PredicateId id) const;

  /// All (data item, value) facts, in insertion-independent (hash) order.
  const std::unordered_map<DataItemId, ValueId>& facts() const {
    return facts_;
  }

  /// Builds a partial copy sharing this KB's entity/predicate tables but
  /// keeping each fact independently with probability `coverage`. Models
  /// Freebase knowing only a fraction of the world.
  KnowledgeBase SampleSubset(double coverage, Rng& rng) const;

 private:
  struct Entity {
    std::string name;
    EntityType type;
    double numeric_value;
  };

  std::vector<Entity> entities_;
  std::vector<PredicateSchema> predicates_;
  std::unordered_map<DataItemId, ValueId> facts_;
};

}  // namespace kbt::kb

#endif  // KBT_KB_KNOWLEDGE_BASE_H_
