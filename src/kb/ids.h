#ifndef KBT_KB_IDS_H_
#define KBT_KB_IDS_H_

#include <cstdint>

namespace kbt::kb {

/// Dense integer identifiers. Entities, literal values, predicates, websites,
/// pages, extractors and patterns are interned once (common/string_pool) and
/// referred to by id in every hot path.
using EntityId = uint32_t;
/// Objects share the entity id space: an object is either a real entity or a
/// literal registered as a value-entity (number, date, string).
using ValueId = uint32_t;
using PredicateId = uint32_t;
using WebsiteId = uint32_t;
using PageId = uint32_t;
using ExtractorId = uint32_t;
using PatternId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xffffffffu;

/// A data item d = (subject, predicate), packed into 64 bits.
using DataItemId = uint64_t;

inline DataItemId MakeDataItem(EntityId subject, PredicateId predicate) {
  return (static_cast<uint64_t>(subject) << 32) | predicate;
}

inline EntityId DataItemSubject(DataItemId d) {
  return static_cast<EntityId>(d >> 32);
}

inline PredicateId DataItemPredicate(DataItemId d) {
  return static_cast<PredicateId>(d & 0xffffffffu);
}

}  // namespace kbt::kb

#endif  // KBT_KB_IDS_H_
