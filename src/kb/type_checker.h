#ifndef KBT_KB_TYPE_CHECKER_H_
#define KBT_KB_TYPE_CHECKER_H_

#include <string>

#include "kb/ids.h"
#include "kb/knowledge_base.h"

namespace kbt::kb {

/// Why a triple failed the type check (Section 5.3.1's second labelling
/// method). Triples failing any rule are treated both as false facts and as
/// extraction mistakes when assembling the gold standard.
enum class TypeViolation : uint8_t {
  kNone = 0,
  /// Rule 1: subject equals object.
  kSubjectEqualsObject = 1,
  /// Rule 2a: subject's type is incompatible with the predicate schema.
  kSubjectTypeMismatch = 2,
  /// Rule 2b: object's type is incompatible with the predicate schema.
  kObjectTypeMismatch = 3,
  /// Rule 3: numeric object outside the predicate's expected range
  /// (e.g. an athlete weighing over 1000 pounds).
  kValueOutOfRange = 4,
};

std::string_view TypeViolationName(TypeViolation violation);

/// Stateless rule evaluator over a KB's entity/predicate tables.
class TypeChecker {
 public:
  /// The checker borrows `kb`; the KB must outlive it.
  explicit TypeChecker(const KnowledgeBase& kb) : kb_(kb) {}

  /// Applies the three rules in order and returns the first violation.
  TypeViolation Check(DataItemId item, ValueId value) const;

  /// Convenience: true iff Check(...) == kNone.
  bool IsWellTyped(DataItemId item, ValueId value) const {
    return Check(item, value) == TypeViolation::kNone;
  }

 private:
  const KnowledgeBase& kb_;
};

}  // namespace kbt::kb

#endif  // KBT_KB_TYPE_CHECKER_H_
