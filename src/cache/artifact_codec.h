#ifndef KBT_CACHE_ARTIFACT_CODEC_H_
#define KBT_CACHE_ARTIFACT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "extract/observation_matrix.h"
#include "kbt/options.h"

namespace kbt::cache {

/// Binary (de)serialization of the pipeline's compiled artifacts — the
/// granularity GroupAssignment and the CompiledMatrix — into one versioned,
/// checksummed blob. The byte-level layout is specified normatively in
/// docs/artifact-format.md; `ArtifactFields()` exports the codec's field
/// list so a test can assert the spec and the code never drift.
///
/// Layout summary (all integers little-endian, independent of the host):
///   fixed header   magic "KBTCACHE", format version, endianness marker,
///                  dataset fingerprint, options fingerprint, compiled
///                  observation count
///   section table  count + (id, CRC-32, absolute offset, length) per
///                  section
///   payloads       section 1 = assignment, section 2 = matrix; scalars and
///                  length-prefixed arrays in the order of ArtifactFields()
///
/// Decoding rejects (InvalidArgument) any blob whose magic, version,
/// endianness marker, section table, per-section CRC or structural
/// invariants (array lengths, CSR offset monotonicity) do not check out —
/// callers fall back to recompilation, never crash.

/// File magic, first 8 bytes of every artifact blob.
inline constexpr char kMagic[8] = {'K', 'B', 'T', 'C', 'A', 'C', 'H', 'E'};

/// Format version. Bump on ANY layout change (docs/artifact-format.md has
/// the checklist); readers reject every version except their own, so a
/// bump silently invalidates all existing cache entries (they decode as
/// "wrong version" and the pipeline recompiles).
inline constexpr uint32_t kFormatVersion = 1;

/// Little-endian marker written as a u32; a reader seeing 0x04030201 is
/// looking at a byte-swapped file (the codec always writes little-endian,
/// so this only fires on a corrupt or foreign blob).
inline constexpr uint32_t kEndianMarker = 0x01020304u;

/// Section ids of the section table.
inline constexpr uint32_t kSectionAssignment = 1;
inline constexpr uint32_t kSectionMatrix = 2;

/// A decoded artifact blob: the cache key pair, the observation count the
/// matrix covers, and the two compiled artifacts themselves.
struct ArtifactBundle {
  uint64_t dataset_fingerprint = 0;
  uint64_t options_fingerprint = 0;
  /// Number of dataset observations compiled into `matrix` (always the full
  /// dataset at save time; checked against the live dataset on load).
  uint64_t compiled_observations = 0;
  extract::GroupAssignment assignment;
  extract::CompiledMatrix matrix;
};

/// Serializes the artifacts into one self-contained blob. Deterministic:
/// equal inputs yield byte-identical output (the round-trip tests rely on
/// encode(decode(encode(x))) == encode(x)).
std::string EncodeArtifacts(uint64_t dataset_fingerprint,
                            uint64_t options_fingerprint,
                            uint64_t compiled_observations,
                            const extract::GroupAssignment& assignment,
                            const extract::CompiledMatrix& matrix);

/// Parses a blob produced by EncodeArtifacts. Returns InvalidArgument (with
/// a reason naming the failed check) on truncation, bad magic, wrong format
/// version, wrong endianness, CRC mismatch or violated structural
/// invariants. Never reads out of bounds on hostile input.
StatusOr<ArtifactBundle> DecodeArtifacts(std::string_view bytes);

/// One serialized field, in serialization order. docs/artifact-format.md
/// carries the same table; tests/cache/format_doc_test.cpp asserts equality.
struct FieldSpec {
  std::string_view section;  // "header", "assignment" or "matrix"
  std::string_view name;
  std::string_view type;  // e.g. "u32", "u64", "u32[]", "extractor_scope[]"
};

/// The codec's complete field list (header + both sections), in the exact
/// byte order of the format. Single source of truth shared by the encoder,
/// the decoder and the docs cross-check test.
const std::vector<FieldSpec>& ArtifactFields();

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, init/xorout 0xFFFFFFFF) over
/// `size` bytes. Exposed so tests can forge and verify section checksums.
uint32_t Crc32(const void* data, size_t size);

/// Stable 64-bit fingerprint of the Options fields that determine the
/// compiled artifacts: the granularity, and — under kSplitMerge — the
/// (m, M, merge/split switches, seed) of both hierarchies. Inference knobs
/// (model, EM iterations, priors...) run *on* the compiled matrix and do
/// not key it. Pairs with io::DatasetFingerprint as the artifact cache key.
uint64_t CompileOptionsFingerprint(const api::Options& options);

}  // namespace kbt::cache

#endif  // KBT_CACHE_ARTIFACT_CODEC_H_
