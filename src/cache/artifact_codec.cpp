#include "cache/artifact_codec.h"

#include <array>
#include <bit>
#include <cstring>
#include <limits>
#include <type_traits>
#include <utility>

#include "common/hash.h"

namespace kbt::cache {

namespace {

/// On little-endian hosts the in-memory representation of the scalar
/// arrays (and of the padding-free composite structs) *is* the wire
/// format, so whole arrays copy with one memcpy. Big-endian hosts take the
/// byte-by-byte loops — same bytes, portable either way.
inline constexpr bool kHostIsLittleEndian =
    std::endian::native == std::endian::little;

static_assert(sizeof(extract::SourceGroupInfo) == 4,
              "wire format assumes a packed {u32 website}");
static_assert(sizeof(extract::ExtractorScope) == 16,
              "wire format assumes a packed {u32, u32, f64}");

// ---------------------------------------------------------------------------
// Little-endian primitives. Written byte-by-byte so encoded blobs are
// identical on every host; the hot arrays are small-constant loops that the
// compiler vectorizes on little-endian targets anyway.
// ---------------------------------------------------------------------------

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F32(float v) {
    uint32_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U32(bits);
  }
  void F64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void Bytes(const void* data, size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }

  /// Overwrites 4 already-written bytes at `pos` (CRC backpatching).
  void PatchU32(size_t pos, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_[pos + i] = static_cast<char>(v >> (8 * i));
    }
  }

  void Reserve(size_t bytes) { out_.reserve(bytes); }
  const char* data() const { return out_.data(); }
  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked reader: every primitive checks the remaining length and
/// latches the first failure, so hostile blobs can never read out of range
/// (callers test ok() once at the end of a section).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t U8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  float F32() {
    const uint32_t bits = U32();
    float v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double F64() {
    const uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Array length prefix, additionally bounded by the bytes that remain
  /// (each element occupies >= `min_element_bytes`), so a forged length can
  /// neither overflow size arithmetic nor drive a huge allocation.
  size_t ArrayCount(size_t min_element_bytes) {
    const uint64_t count = U64();
    if (!ok_) return 0;
    if (count > (bytes_.size() - pos_) / min_element_bytes) {
      Fail("array length exceeds the section payload");
      return 0;
    }
    return static_cast<size_t>(count);
  }

  /// Bulk copy of `size` raw bytes into `dest` (the little-endian fast
  /// path; callers guarantee the destination layout equals the wire one).
  void Bytes(void* dest, size_t size) {
    if (!Require(size)) return;
    std::memcpy(dest, bytes_.data() + pos_, size);
    pos_ += size;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  void Fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why;
    }
  }

 private:
  bool Require(size_t n) {
    if (!ok_) return false;
    if (bytes_.size() - pos_ < n) {
      Fail("truncated payload");
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Field visitors. MatrixFields::Visit / VisitAssignment enumerate every
// serialized field exactly once, in byte order; the encoder, the decoder and
// the docs field list are all instantiations of the same enumeration, which
// is what keeps them impossible to desynchronize.
// ---------------------------------------------------------------------------

static_assert(sizeof(int) == 4, "wire format stores item_num_false as i32");

struct Encoder {
  Writer& w;

  void Scalar(const char*, const uint32_t& v) { w.U32(v); }
  void Scalar(const char*, const uint64_t& v) { w.U64(v); }

  /// Element wire sizes equal the in-memory sizes (static_asserted above),
  /// so little-endian hosts append whole arrays with one copy; the
  /// elementwise loop is the portable fallback (and the spec).
  template <typename T>
  void Vec(const char*, const std::vector<T>& v) {
    w.U64(v.size());
    if constexpr (kHostIsLittleEndian) {
      if (!v.empty()) w.Bytes(v.data(), v.size() * sizeof(T));
    } else {
      for (const T& x : v) Element(x);
    }
  }

  void Element(uint8_t x) { w.U8(x); }
  void Element(uint32_t x) { w.U32(x); }
  void Element(uint64_t x) { w.U64(x); }
  void Element(int x) { w.I32(x); }
  void Element(float x) { w.F32(x); }
  void Element(const extract::SourceGroupInfo& info) { w.U32(info.website); }
  void Element(const extract::ExtractorScope& scope) {
    w.U32(scope.predicate);
    w.U32(scope.website);
    w.F64(scope.absence_weight);
  }
};

struct Decoder {
  Reader& r;

  void Scalar(const char*, uint32_t& v) { v = r.U32(); }
  void Scalar(const char*, uint64_t& v) { v = r.U64(); }

  template <typename T>
  void Vec(const char*, std::vector<T>& v) {
    v.resize(r.ArrayCount(sizeof(T)));
    if constexpr (kHostIsLittleEndian) {
      if (!v.empty()) r.Bytes(v.data(), v.size() * sizeof(T));
    } else {
      for (T& x : v) Element(x);
    }
  }

  void Element(uint8_t& x) { x = r.U8(); }
  void Element(uint32_t& x) { x = r.U32(); }
  void Element(uint64_t& x) { x = r.U64(); }
  void Element(int& x) { x = r.I32(); }
  void Element(float& x) { x = r.F32(); }
  void Element(extract::SourceGroupInfo& info) { info.website = r.U32(); }
  void Element(extract::ExtractorScope& scope) {
    scope.predicate = r.U32();
    scope.website = r.U32();
    scope.absence_weight = r.F64();
  }
};

/// Records (section, name, type) per field for ArtifactFields().
struct Lister {
  std::vector<FieldSpec>* out;
  std::string_view section;

  void Scalar(const char* name, const uint32_t&) { Add(name, "u32"); }
  void Scalar(const char* name, const uint64_t&) { Add(name, "u64"); }
  void Vec(const char* name, const std::vector<uint8_t>&) {
    Add(name, "u8[]");
  }
  void Vec(const char* name, const std::vector<uint32_t>&) {
    Add(name, "u32[]");
  }
  void Vec(const char* name, const std::vector<uint64_t>&) {
    Add(name, "u64[]");
  }
  void Vec(const char* name, const std::vector<int>&) { Add(name, "i32[]"); }
  void Vec(const char* name, const std::vector<float>&) {
    Add(name, "f32[]");
  }
  void Vec(const char* name, const std::vector<extract::SourceGroupInfo>&) {
    Add(name, "source_info[]");
  }
  void Vec(const char* name, const std::vector<extract::ExtractorScope>&) {
    Add(name, "extractor_scope[]");
  }

  void Add(const char* name, const char* type) {
    out->push_back(FieldSpec{section, name, type});
  }
};

/// Computes a section's exact payload size from the field enumeration
/// without encoding it (length prefixes + element counts x wire widths),
/// so EncodeArtifacts can write one pre-sized buffer.
struct Sizer {
  size_t bytes = 0;
  void Scalar(const char*, const uint32_t&) { bytes += 4; }
  void Scalar(const char*, const uint64_t&) { bytes += 8; }
  template <typename T>
  void Vec(const char*, const std::vector<T>& v) {
    bytes += 8 + v.size() * sizeof(T);  // wire width == sizeof(T), asserted
  }
};

/// The assignment section, field by field (public struct, no friend needed).
template <typename Assignment, typename Visitor>
void VisitAssignment(Assignment& a, Visitor& v) {
  v.Scalar("num_source_groups", a.num_source_groups);
  v.Scalar("num_extractor_groups", a.num_extractor_groups);
  v.Vec("observation_source", a.observation_source);
  v.Vec("observation_extractor", a.observation_extractor);
  v.Vec("source_infos", a.source_infos);
  v.Vec("extractor_scopes", a.extractor_scopes);
}

}  // namespace

/// The matrix section, field by field. This is the friend declared in
/// extract/observation_matrix.h: the single point of access to the private
/// arrays, shared by the encoder, decoder and field lister.
struct MatrixFields {
  template <typename Matrix, typename Visitor>
  static void Visit(Matrix& m, Visitor& v) {
    v.Scalar("num_sources", m.num_sources_);
    v.Scalar("num_extractor_groups", m.num_extractor_groups_);
    v.Vec("slot_source", m.slot_source_);
    v.Vec("slot_item", m.slot_item_);
    v.Vec("slot_value", m.slot_value_);
    v.Vec("slot_website", m.slot_website_);
    v.Vec("slot_predicate", m.slot_predicate_);
    v.Vec("slot_provided", m.slot_provided_);
    v.Vec("slot_ext_offsets", m.slot_ext_offsets_);
    v.Vec("ext_group", m.ext_group_);
    v.Vec("ext_conf", m.ext_conf_);
    v.Vec("ext_slot", m.ext_slot_);
    v.Vec("item_ids", m.item_ids_);
    v.Vec("item_num_false", m.item_num_false_);
    v.Vec("item_offsets", m.item_offsets_);
    v.Vec("source_offsets", m.source_offsets_);
    v.Vec("source_slot_index", m.source_slot_index_);
    v.Vec("source_infos", m.source_infos_);
    v.Vec("extractor_offsets", m.extractor_offsets_);
    v.Vec("extractor_edge_index", m.extractor_edge_index_);
    v.Vec("extractor_scopes", m.extractor_scopes_);
  }
};

namespace {

// ---------------------------------------------------------------------------
// Structural validation of a decoded bundle. CRCs catch corruption; these
// invariants catch *well-formed nonsense* (a forged blob, or an encoder bug)
// before the inference layers index with the values.
// ---------------------------------------------------------------------------

Status InvalidBundle(const std::string& what) {
  return Status::InvalidArgument("artifact bundle invalid: " + what);
}

/// Captures typed views of the matrix arrays through the same field
/// enumeration the codec uses. The matrix accessors index these blindly, so
/// a length or range violation would be an out-of-bounds read during
/// inference — ValidateBundle checks them all up front.
struct MatrixProbe {
  std::vector<std::pair<std::string_view, const std::vector<uint32_t>*>>
      u32_fields;
  std::vector<std::pair<std::string_view, size_t>> other_lengths;

  void Scalar(const char*, const uint32_t&) {}
  void Vec(const char* name, const std::vector<uint32_t>& v) {
    u32_fields.emplace_back(name, &v);
  }
  template <typename T>
  void Vec(const char* name, const std::vector<T>& v) {
    other_lengths.emplace_back(name, v.size());
  }

  const std::vector<uint32_t>& U32(std::string_view name) const {
    for (const auto& [n, v] : u32_fields) {
      if (n == name) return *v;
    }
    static const std::vector<uint32_t> empty;
    return empty;
  }
  size_t Length(std::string_view name) const {
    for (const auto& [n, size] : other_lengths) {
      if (n == name) return size;
    }
    return 0;
  }
};

Status CheckOffsets(const std::vector<uint32_t>& offsets, size_t num_rows,
                    size_t num_entries, const std::string& name) {
  if (offsets.size() != num_rows + 1) {
    return InvalidBundle(name + " has " + std::to_string(offsets.size()) +
                         " entries, want " + std::to_string(num_rows + 1));
  }
  if (offsets.front() != 0 || offsets.back() != num_entries) {
    return InvalidBundle(name + " does not span [0, " +
                         std::to_string(num_entries) + ")");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return InvalidBundle(name + " is not monotonic at row " +
                           std::to_string(i));
    }
  }
  return Status::OK();
}

Status CheckIndexRange(const std::vector<uint32_t>& index, size_t bound,
                       const std::string& name) {
  for (const uint32_t v : index) {
    if (v >= bound) {
      return InvalidBundle(name + " holds index " + std::to_string(v) +
                           " >= bound " + std::to_string(bound));
    }
  }
  return Status::OK();
}

Status ValidateBundle(const ArtifactBundle& bundle) {
  const extract::GroupAssignment& a = bundle.assignment;
  if (a.observation_source.size() != a.observation_extractor.size()) {
    return InvalidBundle("assignment observation arrays disagree in length");
  }
  if (a.observation_source.size() != bundle.compiled_observations) {
    return InvalidBundle("assignment covers " +
                         std::to_string(a.observation_source.size()) +
                         " observations, header says " +
                         std::to_string(bundle.compiled_observations));
  }
  if (a.source_infos.size() != a.num_source_groups ||
      a.extractor_scopes.size() != a.num_extractor_groups) {
    return InvalidBundle("assignment group tables disagree with group counts");
  }
  KBT_RETURN_IF_ERROR(CheckIndexRange(a.observation_source,
                                      a.num_source_groups,
                                      "assignment.observation_source"));
  KBT_RETURN_IF_ERROR(CheckIndexRange(a.observation_extractor,
                                      a.num_extractor_groups,
                                      "assignment.observation_extractor"));

  const extract::CompiledMatrix& m = bundle.matrix;
  const size_t slots = m.num_slots();
  const size_t edges = m.num_extractions();
  const size_t items = m.num_items();
  if (m.num_sources() != a.num_source_groups ||
      m.num_extractor_groups() != a.num_extractor_groups) {
    return InvalidBundle("matrix group counts disagree with the assignment");
  }

  MatrixProbe probe;
  MatrixFields::Visit(m, probe);

  if (probe.U32("slot_item").size() != slots ||
      probe.U32("slot_value").size() != slots ||
      probe.U32("slot_website").size() != slots ||
      probe.U32("slot_predicate").size() != slots ||
      probe.Length("slot_provided") != slots) {
    return InvalidBundle("matrix slot arrays disagree in length");
  }
  if (probe.Length("ext_conf") != edges ||
      probe.U32("ext_slot").size() != edges) {
    return InvalidBundle("matrix extraction arrays disagree in length");
  }
  if (probe.Length("item_ids") != items ||
      probe.Length("item_num_false") != items) {
    return InvalidBundle("matrix item arrays disagree in length");
  }
  if (probe.Length("source_infos") != m.num_sources() ||
      probe.Length("extractor_scopes") != m.num_extractor_groups()) {
    return InvalidBundle("matrix group tables disagree with group counts");
  }
  KBT_RETURN_IF_ERROR(CheckOffsets(probe.U32("slot_ext_offsets"), slots,
                                   edges, "matrix.slot_ext_offsets"));
  KBT_RETURN_IF_ERROR(CheckOffsets(probe.U32("item_offsets"), items, slots,
                                   "matrix.item_offsets"));
  KBT_RETURN_IF_ERROR(CheckOffsets(probe.U32("source_offsets"),
                                   m.num_sources(), slots,
                                   "matrix.source_offsets"));
  KBT_RETURN_IF_ERROR(CheckOffsets(probe.U32("extractor_offsets"),
                                   m.num_extractor_groups(), edges,
                                   "matrix.extractor_offsets"));
  KBT_RETURN_IF_ERROR(CheckIndexRange(probe.U32("slot_source"),
                                      m.num_sources(), "matrix.slot_source"));
  KBT_RETURN_IF_ERROR(CheckIndexRange(probe.U32("slot_item"), items,
                                      "matrix.slot_item"));
  KBT_RETURN_IF_ERROR(CheckIndexRange(probe.U32("ext_group"),
                                      m.num_extractor_groups(),
                                      "matrix.ext_group"));
  KBT_RETURN_IF_ERROR(CheckIndexRange(probe.U32("ext_slot"), slots,
                                      "matrix.ext_slot"));
  if (probe.U32("source_slot_index").size() != slots) {
    return InvalidBundle("matrix source_slot_index length != num_slots");
  }
  KBT_RETURN_IF_ERROR(CheckIndexRange(probe.U32("source_slot_index"), slots,
                                      "matrix.source_slot_index"));
  if (probe.U32("extractor_edge_index").size() != edges) {
    return InvalidBundle("matrix extractor_edge_index length != extractions");
  }
  KBT_RETURN_IF_ERROR(CheckIndexRange(probe.U32("extractor_edge_index"),
                                      edges, "matrix.extractor_edge_index"));
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

std::string EncodeArtifacts(uint64_t dataset_fingerprint,
                            uint64_t options_fingerprint,
                            uint64_t compiled_observations,
                            const extract::GroupAssignment& assignment,
                            const extract::CompiledMatrix& matrix) {
  // Payload sizes are computable up front (Sizer), so the whole blob
  // encodes into ONE buffer — section offsets are known before the
  // payloads are written and only the CRCs are backpatched. This keeps
  // peak memory at ~1x the blob for the web-scale matrices the cache
  // persists on every save and append.
  Sizer assignment_size;
  VisitAssignment(assignment, assignment_size);
  Sizer matrix_size;
  MatrixFields::Visit(matrix, matrix_size);

  constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;
  constexpr size_t kTableEntryBytes = 4 + 4 + 8 + 8;
  constexpr uint32_t kNumSections = 2;
  const size_t payload_base =
      kHeaderBytes + 4 + kNumSections * kTableEntryBytes;

  Writer w;
  w.Reserve(payload_base + assignment_size.bytes + matrix_size.bytes);
  for (char c : kMagic) w.U8(static_cast<uint8_t>(c));
  w.U32(kFormatVersion);
  w.U32(kEndianMarker);
  w.U64(dataset_fingerprint);
  w.U64(options_fingerprint);
  w.U64(compiled_observations);

  w.U32(kNumSections);
  w.U32(kSectionAssignment);
  const size_t assignment_crc_pos = w.size();
  w.U32(0);  // CRC backpatched below
  w.U64(payload_base);
  w.U64(assignment_size.bytes);
  w.U32(kSectionMatrix);
  const size_t matrix_crc_pos = w.size();
  w.U32(0);  // CRC backpatched below
  w.U64(payload_base + assignment_size.bytes);
  w.U64(matrix_size.bytes);

  {
    Encoder enc{w};
    VisitAssignment(assignment, enc);
    MatrixFields::Visit(matrix, enc);
  }
  w.PatchU32(assignment_crc_pos,
             Crc32(w.data() + payload_base, assignment_size.bytes));
  w.PatchU32(matrix_crc_pos,
             Crc32(w.data() + payload_base + assignment_size.bytes,
                   matrix_size.bytes));
  return w.Take();
}

StatusOr<ArtifactBundle> DecodeArtifacts(std::string_view bytes) {
  Reader header(bytes);
  for (char expected : kMagic) {
    if (header.U8() != static_cast<uint8_t>(expected)) {
      return Status::InvalidArgument("artifact blob: bad magic");
    }
  }
  const uint32_t version = header.U32();
  if (header.ok() && version != kFormatVersion) {
    return Status::InvalidArgument(
        "artifact blob: format version " + std::to_string(version) +
        ", this build reads only version " + std::to_string(kFormatVersion));
  }
  const uint32_t endian = header.U32();
  if (header.ok() && endian != kEndianMarker) {
    return Status::InvalidArgument("artifact blob: bad endianness marker");
  }

  ArtifactBundle bundle;
  bundle.dataset_fingerprint = header.U64();
  bundle.options_fingerprint = header.U64();
  bundle.compiled_observations = header.U64();

  const uint32_t num_sections = header.U32();
  if (!header.ok()) {
    return Status::InvalidArgument("artifact blob: truncated header");
  }
  if (num_sections != 2) {
    return Status::InvalidArgument("artifact blob: expected 2 sections, got " +
                                   std::to_string(num_sections));
  }

  struct SectionEntry {
    uint32_t id = 0;
    uint32_t crc = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  std::array<SectionEntry, 2> table;
  for (SectionEntry& entry : table) {
    entry.id = header.U32();
    entry.crc = header.U32();
    entry.offset = header.U64();
    entry.length = header.U64();
  }
  if (!header.ok()) {
    return Status::InvalidArgument("artifact blob: truncated section table");
  }

  std::string_view sections[2];
  for (size_t i = 0; i < table.size(); ++i) {
    const SectionEntry& entry = table[i];
    const uint32_t want_id = i == 0 ? kSectionAssignment : kSectionMatrix;
    if (entry.id != want_id) {
      return Status::InvalidArgument("artifact blob: section " +
                                     std::to_string(i) + " has id " +
                                     std::to_string(entry.id) + ", want " +
                                     std::to_string(want_id));
    }
    if (entry.offset > bytes.size() ||
        entry.length > bytes.size() - entry.offset) {
      return Status::InvalidArgument(
          "artifact blob: section " + std::to_string(entry.id) +
          " extends past the end of the blob");
    }
    const std::string_view payload =
        bytes.substr(static_cast<size_t>(entry.offset),
                     static_cast<size_t>(entry.length));
    const uint32_t crc = Crc32(payload.data(), payload.size());
    if (crc != entry.crc) {
      return Status::InvalidArgument(
          "artifact blob: CRC mismatch in section " +
          std::to_string(entry.id) + " (stored " + std::to_string(entry.crc) +
          ", computed " + std::to_string(crc) + ")");
    }
    sections[i] = payload;
  }

  {
    Reader r(sections[0]);
    Decoder dec{r};
    VisitAssignment(bundle.assignment, dec);
    if (!r.ok()) {
      return Status::InvalidArgument("artifact blob: assignment section: " +
                                     r.error());
    }
    if (r.remaining() != 0) {
      return Status::InvalidArgument(
          "artifact blob: trailing bytes in the assignment section");
    }
  }
  {
    Reader r(sections[1]);
    Decoder dec{r};
    MatrixFields::Visit(bundle.matrix, dec);
    if (!r.ok()) {
      return Status::InvalidArgument("artifact blob: matrix section: " +
                                     r.error());
    }
    if (r.remaining() != 0) {
      return Status::InvalidArgument(
          "artifact blob: trailing bytes in the matrix section");
    }
  }

  KBT_RETURN_IF_ERROR(ValidateBundle(bundle));
  return bundle;
}

const std::vector<FieldSpec>& ArtifactFields() {
  static const std::vector<FieldSpec>* fields = [] {
    auto* out = new std::vector<FieldSpec>;
    out->push_back({"header", "magic", "u8[8]"});
    out->push_back({"header", "format_version", "u32"});
    out->push_back({"header", "endian_marker", "u32"});
    out->push_back({"header", "dataset_fingerprint", "u64"});
    out->push_back({"header", "options_fingerprint", "u64"});
    out->push_back({"header", "compiled_observations", "u64"});
    out->push_back({"header", "section_count", "u32"});
    out->push_back({"header", "section_table", "section_entry[]"});
    Lister lister{out, "assignment"};
    extract::GroupAssignment assignment;
    VisitAssignment(assignment, lister);
    lister.section = "matrix";
    extract::CompiledMatrix matrix;
    MatrixFields::Visit(matrix, lister);
    return out;
  }();
  return *fields;
}

uint32_t Crc32(const void* data, size_t size) {
  // Slicing-by-8 CRC-32/IEEE (tables built on first use; no zlib
  // dependency): checksumming runs over every artifact byte on both the
  // save and the warm-start load path, so the ~byte-at-a-time classic loop
  // would dominate large decodes.
  using Tables = std::array<std::array<uint32_t, 256>, 8>;
  static const Tables* tables = [] {
    auto* t = new Tables;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      (*t)[0][i] = c;
    }
    for (size_t slice = 1; slice < 8; ++slice) {
      for (uint32_t i = 0; i < 256; ++i) {
        const uint32_t prev = (*t)[slice - 1][i];
        (*t)[slice][i] = ((*t)[0][prev & 0xFFu]) ^ (prev >> 8);
      }
    }
    return t;
  }();
  const Tables& t = *tables;
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  while (size >= 8) {
    // Two 32-bit little-endian loads per step; assembled from bytes so the
    // result is identical on any host.
    const uint32_t lo = (static_cast<uint32_t>(bytes[0]) |
                         static_cast<uint32_t>(bytes[1]) << 8 |
                         static_cast<uint32_t>(bytes[2]) << 16 |
                         static_cast<uint32_t>(bytes[3]) << 24) ^
                        crc;
    const uint32_t hi = static_cast<uint32_t>(bytes[4]) |
                        static_cast<uint32_t>(bytes[5]) << 8 |
                        static_cast<uint32_t>(bytes[6]) << 16 |
                        static_cast<uint32_t>(bytes[7]) << 24;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *bytes++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t CompileOptionsFingerprint(const api::Options& options) {
  // common/hash.h: the same platform-stable mix io::DatasetFingerprint
  // uses; a golden value is pinned in tests/cache/artifact_codec_test.cpp
  // because a changed fingerprint orphans every persisted entry.
  uint64_t fp = 0x6b62742d6f70742dull;  // "kbt-opt-": fingerprint salt.
  fp = HashChain(fp, static_cast<uint64_t>(options.granularity));
  if (options.granularity == api::Granularity::kSplitMerge) {
    // Only SPLITANDMERGE's own knobs shape the assignment; the stateless
    // granularities ignore every option beyond the enum.
    for (const granularity::SplitMergeOptions* side :
         {&options.sm_source, &options.sm_extractor}) {
      fp = HashChain(fp, side->min_size);
      fp = HashChain(fp, side->max_size);
      fp = HashChain(fp, side->enable_merge ? 1 : 0);
      fp = HashChain(fp, side->enable_split ? 1 : 0);
      fp = HashChain(fp, side->seed);
    }
  }
  return fp;
}

}  // namespace kbt::cache
