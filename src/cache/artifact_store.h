#ifndef KBT_CACHE_ARTIFACT_STORE_H_
#define KBT_CACHE_ARTIFACT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/artifact_codec.h"
#include "common/status.h"

namespace kbt::cache {

/// Behavioural knobs of one ArtifactStore handle.
struct StoreOptions {
  /// Byte-size cap on the store's entries (0 = unlimited). When set, every
  /// successful Put ends with an LRU sweep: entries are removed oldest
  /// mtime first until the total fits, and Get refreshes the mtime of the
  /// entry it serves so recently-used entries survive. The cap is
  /// per-handle advice, not a directory invariant — a handle opened
  /// without one never evicts.
  uint64_t max_bytes = 0;
};

/// Directory-backed persistent store of compiled artifacts, keyed by the
/// pair (dataset fingerprint, compile-options fingerprint). One entry is one
/// file named `<dataset_fp>-<options_fp>.kbtart` (both hex) holding an
/// EncodeArtifacts blob; the store is content-addressed, so entries are
/// never updated in place — appending to a dataset changes its fingerprint
/// and therefore writes a *new* entry (old entries stay valid for the cube
/// they were compiled from until Remove()d).
///
/// Writes are atomic at the filesystem-API level: the blob goes to a
/// unique `.tmp.<pid>.<n>` sibling first and is renamed over the final
/// name, so readers never observe a partially *written* entry. (No fsync
/// is issued, so a power loss right after the rename can still persist a
/// truncated file; like every other corruption that is detected and
/// rejected on read, at the cost of a recompile.) Reads verify magic,
/// format version, per-section CRCs, structural invariants AND that the
/// entry's stored key matches the requested one; any failure surfaces as a
/// non-OK Status so callers can fall back to recompilation.
///
/// Thread safety: the store itself is immutable after Open (it holds only
/// the directory path), so concurrent Get/Put from different pipelines are
/// safe at the filesystem level; two writers racing on the SAME key both
/// write equivalent bytes and the last rename wins.
class ArtifactStore {
 public:
  /// Opens (creating if needed) `directory` as an artifact store, and
  /// sweeps temp files orphaned by crashed writers (only temps older than
  /// an hour, so a concurrent writer's in-flight temp is never touched).
  static StatusOr<ArtifactStore> Open(const std::string& directory);
  /// Same, with behavioural knobs (e.g. a byte-size cap — see
  /// StoreOptions::max_bytes).
  static StatusOr<ArtifactStore> Open(const std::string& directory,
                                      const StoreOptions& options);

  const std::string& directory() const { return directory_; }

  /// File name of the entry for a key pair: "<dataset>-<options>.kbtart",
  /// both fingerprints as 16-digit lowercase hex.
  static std::string EntryFileName(uint64_t dataset_fingerprint,
                                   uint64_t options_fingerprint);
  /// Absolute path of the entry for a key pair within this store.
  std::string EntryPath(uint64_t dataset_fingerprint,
                        uint64_t options_fingerprint) const;

  /// Serializes and persists one entry under its key, atomically
  /// (write-temp + rename). Overwrites an existing entry for the same key.
  Status Put(uint64_t dataset_fingerprint, uint64_t options_fingerprint,
             uint64_t compiled_observations,
             const extract::GroupAssignment& assignment,
             const extract::CompiledMatrix& matrix) const;

  /// Loads and decodes the entry for a key pair. NotFound when no entry
  /// exists; InvalidArgument when the entry is corrupt (truncated, bad CRC,
  /// wrong format version) or stale (its stored key differs from the file
  /// name's — e.g. a hand-renamed file). The entry file is left in place
  /// either way; callers decide whether to Remove() and recompile.
  StatusOr<ArtifactBundle> Get(uint64_t dataset_fingerprint,
                               uint64_t options_fingerprint) const;

  /// Deletes the entry for a key pair. NotFound when no entry exists.
  Status Remove(uint64_t dataset_fingerprint,
                uint64_t options_fingerprint) const;

  /// File names (not paths) of every `.kbtart` entry currently in the
  /// store, sorted. For inspection and cache-eviction tooling.
  StatusOr<std::vector<std::string>> ListEntries() const;

  /// Total bytes of `.kbtart` entries currently in the store.
  StatusOr<uint64_t> TotalBytes() const;

  /// Sweeps the store down to the handle's byte cap, removing entries
  /// least-recently-used first (by mtime; Get refreshes the mtime of
  /// served entries). The most recently used entry is never removed, even
  /// when it alone exceeds the cap — a freshly written entry must survive
  /// its own sweep. No-op without a cap. Runs automatically after every
  /// successful Put; public for tooling and for capping a directory
  /// inherited from an uncapped writer.
  Status EvictToLimit() const;

  const StoreOptions& options() const { return options_; }

 private:
  ArtifactStore(std::string directory, StoreOptions options)
      : directory_(std::move(directory)), options_(options) {}

  /// The sweep behind EvictToLimit. `keep_path`, when non-empty, is never
  /// removed regardless of its mtime — Put passes its just-written entry,
  /// which on filesystems with coarse timestamp granularity could
  /// otherwise tie with (and sort below) an older refreshed entry.
  Status EvictToLimitKeeping(const std::string& keep_path) const;

  std::string directory_;
  StoreOptions options_;
};

}  // namespace kbt::cache

#endif  // KBT_CACHE_ARTIFACT_STORE_H_
