#include "cache/artifact_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <system_error>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "kbt/obs.h"

namespace kbt::cache {

namespace fs = std::filesystem;

namespace {

constexpr char kEntrySuffix[] = ".kbtart";

/// Store traffic counters, registered once process-wide: stores are opened
/// per session but all point at shared directories, so an aggregate view
/// is both the useful one and the cardinality-safe one.
struct StoreMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* puts;
  obs::Counter* evictions;
};

const StoreMetrics& Metrics() {
  static const StoreMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    StoreMetrics m;
    m.hits = registry.GetCounter("kbt_cache_artifact_hit_total");
    m.misses = registry.GetCounter("kbt_cache_artifact_miss_total");
    m.puts = registry.GetCounter("kbt_cache_artifact_put_total");
    m.evictions = registry.GetCounter("kbt_cache_artifact_eviction_total");
    return m;
  }();
  return metrics;
}

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

StatusOr<ArtifactStore> ArtifactStore::Open(const std::string& directory) {
  return Open(directory, StoreOptions());
}

StatusOr<ArtifactStore> ArtifactStore::Open(const std::string& directory,
                                            const StoreOptions& options) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create artifact-store directory '" +
                                   directory + "': " + ec.message());
  }
  if (!fs::is_directory(directory, ec) || ec) {
    return Status::InvalidArgument("artifact-store path '" + directory +
                                   "' is not a directory");
  }
  // Sweep temp files orphaned by crashed writers (Put renames its temp on
  // success and removes it on failure, so only a crash strands one). The
  // age threshold keeps the sweep from racing a concurrent writer whose
  // temp is still in flight; sweep errors are ignored — stale temps are
  // invisible to Get/ListEntries either way, this only bounds disk usage.
  // Once per directory per process: a TrustService opening one shared
  // store per session must not rescan O(entries) on every CreateSession.
  static Mutex swept_mutex;
  static std::set<std::string>* swept = new std::set<std::string>;
  std::error_code canon_ec;
  const fs::path canonical = fs::canonical(directory, canon_ec);
  const std::string sweep_key =
      canon_ec ? directory : canonical.string();
  bool sweep_now = false;
  {
    MutexLock lock(swept_mutex);
    sweep_now = swept->insert(sweep_key).second;
  }
  if (sweep_now) {
    const auto now = fs::file_time_type::clock::now();
    for (fs::directory_iterator it(directory, ec), end; !ec && it != end;
         it.increment(ec)) {
      const fs::path& path = it->path();
      if (path.filename().string().find(".tmp.") == std::string::npos) {
        continue;
      }
      std::error_code ignored;
      const auto mtime = fs::last_write_time(path, ignored);
      if (!ignored && now - mtime > std::chrono::hours(1)) {
        fs::remove(path, ignored);
      }
    }
  }
  return ArtifactStore(directory, options);
}

std::string ArtifactStore::EntryFileName(uint64_t dataset_fingerprint,
                                         uint64_t options_fingerprint) {
  return Hex16(dataset_fingerprint) + "-" + Hex16(options_fingerprint) +
         kEntrySuffix;
}

std::string ArtifactStore::EntryPath(uint64_t dataset_fingerprint,
                                     uint64_t options_fingerprint) const {
  return (fs::path(directory_) /
          EntryFileName(dataset_fingerprint, options_fingerprint))
      .string();
}

Status ArtifactStore::Put(uint64_t dataset_fingerprint,
                          uint64_t options_fingerprint,
                          uint64_t compiled_observations,
                          const extract::GroupAssignment& assignment,
                          const extract::CompiledMatrix& matrix) const {
  const std::string blob =
      EncodeArtifacts(dataset_fingerprint, options_fingerprint,
                      compiled_observations, assignment, matrix);
  const std::string final_path =
      EntryPath(dataset_fingerprint, options_fingerprint);
  // Unique temp name (pid + per-process counter): writers racing on one
  // key — across processes OR across threads of one process (e.g. two
  // TrustService sessions over identical content) — each write their own
  // temp, and the atomic renames serialize, so readers only ever observe
  // complete entries.
  static std::atomic<uint64_t> temp_serial{0};
  const std::string temp_path =
      final_path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open '" + temp_path +
                                     "' for writing");
    }
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ignored;
      fs::remove(temp_path, ignored);
      return Status::InvalidArgument("short write to '" + temp_path + "'");
    }
  }
  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(temp_path, ignored);
    return Status::InvalidArgument("cannot rename '" + temp_path + "' to '" +
                                   final_path + "': " + ec.message());
  }
  KBT_OBS_INC(Metrics().puts);
  // Keep the store under its cap. Best effort: a failed sweep must not
  // fail the write that just succeeded (the entry is durable either way).
  if (options_.max_bytes > 0) {
    const Status evicted = EvictToLimitKeeping(final_path);
    if (!evicted.ok()) {
      KBT_LOG(Warning) << "kbt artifact store: size-cap sweep failed: "
                       << evicted.ToString();
    }
  }
  return Status::OK();
}

StatusOr<ArtifactBundle> ArtifactStore::Get(
    uint64_t dataset_fingerprint, uint64_t options_fingerprint) const {
  const std::string path =
      EntryPath(dataset_fingerprint, options_fingerprint);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    KBT_OBS_INC(Metrics().misses);
    return Status::NotFound("no artifact entry '" + path + "'");
  }
  // One sized read (tellg at end gives the size): decode throughput is the
  // warm-start path, so no char-by-char stream iteration here.
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::InvalidArgument("cannot size artifact entry '" + path +
                                   "'");
  }
  std::string blob(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(blob.data(), size);
  if (!in || in.gcount() != size) {
    return Status::InvalidArgument("error reading artifact entry '" + path +
                                   "'");
  }
  StatusOr<ArtifactBundle> bundle = DecodeArtifacts(blob);
  if (!bundle.ok()) {
    return Status::InvalidArgument("artifact entry '" + path +
                                   "': " + bundle.status().message());
  }
  // The key is stored redundantly inside the blob; a mismatch means the
  // file was renamed or its header forged — reject it as stale rather than
  // serve artifacts compiled from different content.
  if (bundle->dataset_fingerprint != dataset_fingerprint ||
      bundle->options_fingerprint != options_fingerprint) {
    return Status::InvalidArgument(
        "artifact entry '" + path +
        "' carries fingerprints that do not match its key (stale or "
        "tampered entry)");
  }
  // A served entry is recently used: refresh its mtime so the LRU sweep
  // spares it. Only capped handles touch (an uncapped reader stays purely
  // read-only on the directory); failures are ignored — recency is a
  // hint, not correctness.
  if (options_.max_bytes > 0) {
    std::error_code ignored;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ignored);
  }
  KBT_OBS_INC(Metrics().hits);
  return bundle;
}

Status ArtifactStore::Remove(uint64_t dataset_fingerprint,
                             uint64_t options_fingerprint) const {
  const std::string path =
      EntryPath(dataset_fingerprint, options_fingerprint);
  std::error_code ec;
  const bool removed = fs::remove(path, ec);
  if (ec) {
    return Status::InvalidArgument("cannot remove '" + path +
                                   "': " + ec.message());
  }
  if (!removed) {
    return Status::NotFound("no artifact entry '" + path + "'");
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> ArtifactStore::ListEntries() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (fs::directory_iterator it(directory_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& path = it->path();
    if (path.extension() == kEntrySuffix) {
      names.push_back(path.filename().string());
    }
  }
  if (ec) {
    return Status::InvalidArgument("cannot list artifact store '" +
                                   directory_ + "': " + ec.message());
  }
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<uint64_t> ArtifactStore::TotalBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(directory_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().extension() != kEntrySuffix) continue;
    std::error_code size_ec;
    const uintmax_t size = fs::file_size(it->path(), size_ec);
    if (!size_ec) total += static_cast<uint64_t>(size);
  }
  if (ec) {
    return Status::InvalidArgument("cannot list artifact store '" +
                                   directory_ + "': " + ec.message());
  }
  return total;
}

Status ArtifactStore::EvictToLimit() const {
  return EvictToLimitKeeping(std::string());
}

Status ArtifactStore::EvictToLimitKeeping(
    const std::string& keep_path) const {
  if (options_.max_bytes == 0) return Status::OK();
  struct EntryStat {
    fs::path path;
    uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<EntryStat> entries;
  uint64_t total = 0;
  std::error_code ec;
  for (fs::directory_iterator it(directory_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().extension() != kEntrySuffix) continue;
    // A concurrently-removed entry simply drops out of the candidate set.
    std::error_code stat_ec;
    EntryStat entry;
    entry.path = it->path();
    entry.size = static_cast<uint64_t>(fs::file_size(entry.path, stat_ec));
    if (stat_ec) continue;
    entry.mtime = fs::last_write_time(entry.path, stat_ec);
    if (stat_ec) continue;
    total += entry.size;
    entries.push_back(std::move(entry));
  }
  if (ec) {
    return Status::InvalidArgument("cannot list artifact store '" +
                                   directory_ + "': " + ec.message());
  }
  if (total <= options_.max_bytes) return Status::OK();
  // Oldest mtime first = least recently used (Put writes fresh mtimes and
  // Get refreshes served entries on capped handles).
  std::sort(entries.begin(), entries.end(),
            [](const EntryStat& a, const EntryStat& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  // Never remove the most recently used entry — the freshly written (or
  // just-served) artifact must survive its own sweep even when it alone
  // exceeds the cap — and never the explicitly kept one: coarse-mtime
  // filesystems can tie a just-written entry with an older refreshed one,
  // where sort position alone would not protect it.
  for (size_t i = 0; i + 1 < entries.size() && total > options_.max_bytes;
       ++i) {
    if (!keep_path.empty() && entries[i].path == keep_path) continue;
    std::error_code remove_ec;
    if (fs::remove(entries[i].path, remove_ec) && !remove_ec) {
      total -= entries[i].size;
      KBT_OBS_INC(Metrics().evictions);
    }
  }
  return Status::OK();
}

}  // namespace kbt::cache
