#include "kbt/service.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "dataflow/parallel.h"

namespace kbt::api {

namespace {

/// Ordinal source for the default per-instance `service` metric label.
std::atomic<int> g_service_ordinal{0};

/// An append batch open for coalescing: the delta accumulated so far and
/// one promise per SubmitAppend call that joined it. Owned jointly by the
/// session (while the window is open) and by the queued task that will
/// apply it.
struct PendingAppend {
  std::vector<extract::RawObservation> observations;
  std::vector<std::promise<Status>> promises;
};

/// RAII -1 on a session's queue-depth gauge when its task finishes,
/// whatever the exit path. (Toggling SetMetricsEnabled while requests are
/// in flight can skew depth gauges by the in-flight count; see
/// docs/OBSERVABILITY.md.)
class QueueDepthGuard {
 public:
  explicit QueueDepthGuard(obs::Gauge* gauge) : gauge_(gauge) {}
  ~QueueDepthGuard() { KBT_OBS_GAUGE_ADD(gauge_, -1.0); }
  QueueDepthGuard(const QueueDepthGuard&) = delete;
  QueueDepthGuard& operator=(const QueueDepthGuard&) = delete;

 private:
  obs::Gauge* gauge_;
};

template <typename T>
std::future<T> ReadyFuture(T value) {
  std::promise<T> promise;
  promise.set_value(std::move(value));
  return promise.get_future();
}

/// The default tick-time clock (seconds since the Unix epoch) when
/// StreamOptions::clock is unset.
double SystemClockSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Background cadence for an attached stream: a dedicated thread firing
/// `tick` every `interval`, sleeping interruptibly (CondVar::WaitFor) so
/// Stop() returns promptly instead of waiting out the interval. A spurious
/// wakeup fires a tick early — harmless (an empty feed makes it a cheap
/// no-op), so the loop deliberately does not re-arm the deadline.
class StreamTicker {
 public:
  StreamTicker(std::function<void()> tick, std::chrono::nanoseconds interval)
      : tick_(std::move(tick)),
        interval_(interval),
        thread_([this] { Loop(); }) {}

  ~StreamTicker() { Stop(); }

  StreamTicker(const StreamTicker&) = delete;
  StreamTicker& operator=(const StreamTicker&) = delete;

  /// Idempotent; joins the ticker thread. Never call while holding a lock
  /// the tick callback takes.
  void Stop() {
    {
      MutexLock lock(mutex_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.NotifyAll();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    while (true) {
      {
        MutexLock lock(mutex_);
        if (stopped_) return;
        cv_.WaitFor(mutex_, interval_);
        if (stopped_) return;
      }
      tick_();
    }
  }

  std::function<void()> tick_;
  std::chrono::nanoseconds interval_;
  Mutex mutex_;
  bool stopped_ KBT_GUARDED_BY(mutex_) = false;
  CondVar cv_;
  std::thread thread_;
};

}  // namespace

struct TrustService::Session {
  Session(Pipeline p, ThreadPool* pool)
      : pipeline(std::move(p)), queue(pool) {}
  Session(ShardedPipeline p, ThreadPool* pool)
      : sharded(std::move(p)), queue(pool) {}

  /// The session's backend — exactly one engaged. Requests route on
  /// `sharded.has_value()`; the session surface is identical either way.
  std::optional<Pipeline> pipeline;
  std::optional<ShardedPipeline> sharded;

  /// Last completed sharded run, retained for SubmitRunFrom warm starts:
  /// per-shard inference state does not flatten into the merged report, so
  /// the caller-supplied `previous` cannot carry it. Strand-confined —
  /// touched only from this session's queued tasks, so no lock.
  std::shared_ptr<const ShardedTrustReport> last_sharded;

  /// Per-session strand on the shared pool: the FIFO guarantee.
  SerialQueue queue;

  std::shared_ptr<query::SnapshotRegistry> registry() const {
    return sharded ? sharded->snapshot_registry()
                   : pipeline->snapshot_registry();
  }

  Status Append(const std::vector<extract::RawObservation>& observations) {
    return sharded ? sharded->AppendObservations(observations)
                   : pipeline->AppendObservations(observations);
  }

  /// Guards the coalescing window. Ordering between this and the service
  /// mutex: never held together.
  Mutex mutex;
  /// The queued-but-not-started append batch new appends may merge into;
  /// null when the window is closed (nothing queued, or a run was queued
  /// after the batch).
  std::shared_ptr<PendingAppend> open_append KBT_GUARDED_BY(mutex);

  /// Depth of this session's strand (queued + executing requests), as a
  /// dashboard gauge. Set by CreateSession; +1 per enqueued task, -1 when
  /// the task finishes (coalesced appends ride an already-counted task).
  obs::Gauge* queue_depth = nullptr;

  /// The attached streaming engine (AttachStream), null when detached.
  /// Shared so queued ticks pin it past a detach — they drain harmlessly.
  std::shared_ptr<stream::StreamEngine> stream_engine KBT_GUARDED_BY(mutex);
  /// Background cadence when StreamOptions::tick_interval > 0. Declared
  /// LAST so it is destroyed FIRST: the ticker thread joins before any
  /// member it reaches through this session goes away.
  std::unique_ptr<StreamTicker> ticker KBT_GUARDED_BY(mutex);
};

/// The service's registered metric handles: resolved once at
/// construction (a mutex-guarded registry lookup each), recorded into
/// lock-free forever after. One source of truth — TrustService::stats()
/// is a view over the five counters.
struct ServiceMetrics {
  /// Queue-wait + execute latency pair for one Submit kind.
  struct PerKind {
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* execute = nullptr;
  };

  void Init(obs::MetricsRegistry* registry, const std::string& label) {
    const obs::Labels service{{"service", label}};
    runs_submitted =
        registry->GetCounter("kbt_service_runs_submitted_total", service);
    appends_submitted =
        registry->GetCounter("kbt_service_appends_submitted_total", service);
    appends_coalesced =
        registry->GetCounter("kbt_service_appends_coalesced_total", service);
    append_batches_executed =
        registry->GetCounter("kbt_service_append_batches_total", service);
    snapshots_published =
        registry->GetCounter("kbt_service_snapshots_published_total",
                             service);
    const auto kind = [&](const char* name) {
      PerKind per_kind;
      obs::Labels labels = service;
      labels.emplace_back("kind", name);
      per_kind.queue_wait =
          registry->GetHistogram("kbt_service_queue_wait_seconds", labels);
      per_kind.execute =
          registry->GetHistogram("kbt_service_execute_seconds", labels);
      return per_kind;
    };
    run = kind("run");
    run_from = kind("run_from");
    append = kind("append");
    tick = kind("tick");
  }

  obs::Counter* runs_submitted = nullptr;
  obs::Counter* appends_submitted = nullptr;
  obs::Counter* appends_coalesced = nullptr;
  obs::Counter* append_batches_executed = nullptr;
  obs::Counter* snapshots_published = nullptr;
  PerKind run, run_from, append, tick;
};

struct TrustService::State {
  ServiceOptions options;
  dataflow::Executor* executor = nullptr;

  /// Guards `sessions` only; the metric handles are lock-free so the
  /// submit fast path of one session never contends with another's.
  mutable Mutex mutex;
  /// shared_ptr ownership: a request task (or a caller-held future chain)
  /// pins its Session, so CloseSession racing a submit frees nothing that
  /// is still in use.
  std::map<std::string, std::shared_ptr<Session>> sessions
      KBT_GUARDED_BY(mutex);

  /// Registry + label the instance registers under, and the resolved
  /// handles (see ServiceOptions::metrics / metrics_label).
  obs::MetricsRegistry* registry = nullptr;
  std::string metrics_label;
  ServiceMetrics metrics;

  /// Runs on the session strand right after a completed run: publishes the
  /// report as the session's served snapshot (when configured). The strand
  /// serializes this against every other pipeline touch; readers observe
  /// the swap lock-free.
  void MaybePublish(Session& session, const StatusOr<TrustReport>& report);
  /// Sharded counterpart: publishes every shard's snapshot plus the
  /// flattened merged snapshot on the session's serving registry.
  void MaybePublishSharded(Session& session,
                           const StatusOr<ShardedTrustReport>& reports);

  std::shared_ptr<Session> Find(const std::string& name) const {
    MutexLock lock(mutex);
    const auto it = sessions.find(name);
    return it == sessions.end() ? nullptr : it->second;
  }
};

void TrustService::State::MaybePublish(Session& session,
                                       const StatusOr<TrustReport>& report) {
  if (!options.publish_snapshots || !report.ok()) return;
  session.pipeline->PublishSnapshot(*report);
  metrics.snapshots_published->Increment();
}

void TrustService::State::MaybePublishSharded(
    Session& session, const StatusOr<ShardedTrustReport>& reports) {
  if (!options.publish_snapshots || !reports.ok()) return;
  session.sharded->PublishSnapshot(*reports);
  metrics.snapshots_published->Increment();
}

TrustService::TrustService(ServiceOptions options)
    : state_(std::make_shared<State>()) {
  state_->options = options;
  state_->executor =
      options.executor != nullptr ? options.executor
                                  : &dataflow::DefaultExecutor();
  state_->registry = options.metrics != nullptr
                         ? options.metrics
                         : &obs::MetricsRegistry::Default();
  state_->metrics_label =
      !options.metrics_label.empty()
          ? options.metrics_label
          : "svc" + std::to_string(g_service_ordinal.fetch_add(
                        1, std::memory_order_relaxed));
  state_->metrics.Init(state_->registry, state_->metrics_label);
}

TrustService::~TrustService() { Drain(); }

Status TrustService::CreateSession(const std::string& name,
                                   Pipeline&& pipeline) {
  {
    // Reserve the name first (null placeholder), so the collision check
    // happens before the pipeline is touched in any way — a naming
    // collision leaves the caller's (possibly expensively warmed)
    // pipeline fully intact — and so the filesystem work below (cache
    // directory creation + stale-temp sweep) runs WITHOUT the service
    // lock that gates every session's submit path. A placeholder behaves
    // as "not found" for submits/close until the session is published.
    MutexLock lock(state_->mutex);
    const auto it = state_->sessions.find(name);
    if (it != state_->sessions.end()) {
      // Distinguish a published session from another creator's in-flight
      // reservation (which may yet be rolled back): a caller seeing the
      // latter can retry, matching HasSession's "not found until
      // published" view.
      return Status::InvalidArgument(
          it->second != nullptr
              ? "session '" + name + "' already exists"
              : "session '" + name + "' is being created concurrently");
    }
    state_->sessions.emplace(name, nullptr);
  }
  if (!state_->options.cache_directory.empty()) {
    const Status enabled =
        pipeline.EnableDiskCache(state_->options.cache_directory,
                                 state_->options.cache_max_bytes);
    if (!enabled.ok()) {
      MutexLock lock(state_->mutex);
      state_->sessions.erase(name);
      return enabled;
    }
  }
  // Request tasks and the stages inside them share one pool: the adopted
  // pipeline's parallel loops must run on the service executor (whose
  // joins are reentrant), whatever the builder had attached.
  pipeline.AttachExecutor(state_->executor);
  auto session = std::make_shared<Session>(std::move(pipeline),
                                           &state_->executor->pool());
  session->queue_depth = state_->registry->GetGauge(
      "kbt_service_queue_depth",
      {{"service", state_->metrics_label}, {"session", name}});
  MutexLock lock(state_->mutex);
  state_->sessions[name] = std::move(session);
  return Status::OK();
}

Status TrustService::CreateSession(const std::string& name,
                                   PipelineBuilder builder) {
  StatusOr<Pipeline> pipeline = builder.Build();
  if (!pipeline.ok()) return pipeline.status();
  return CreateSession(name, std::move(*pipeline));
}

Status TrustService::CreateShardedSession(const std::string& name,
                                          ShardedPipeline&& pipeline) {
  // Same reserve -> configure -> publish dance as CreateSession (see the
  // comments there); only the backend type differs.
  {
    MutexLock lock(state_->mutex);
    const auto it = state_->sessions.find(name);
    if (it != state_->sessions.end()) {
      return Status::InvalidArgument(
          it->second != nullptr
              ? "session '" + name + "' already exists"
              : "session '" + name + "' is being created concurrently");
    }
    state_->sessions.emplace(name, nullptr);
  }
  if (!state_->options.cache_directory.empty()) {
    // Shard pipelines namespace themselves under cache_directory/shard-<i>;
    // entries are content-addressed, so sessions sharing the root is safe.
    const Status enabled =
        pipeline.EnableDiskCache(state_->options.cache_directory,
                                 state_->options.cache_max_bytes);
    if (!enabled.ok()) {
      MutexLock lock(state_->mutex);
      state_->sessions.erase(name);
      return enabled;
    }
  }
  pipeline.AttachExecutor(state_->executor);
  auto session = std::make_shared<Session>(std::move(pipeline),
                                           &state_->executor->pool());
  session->queue_depth = state_->registry->GetGauge(
      "kbt_service_queue_depth",
      {{"service", state_->metrics_label}, {"session", name}});
  MutexLock lock(state_->mutex);
  state_->sessions[name] = std::move(session);
  return Status::OK();
}

Status TrustService::CloseSession(const std::string& name) {
  std::shared_ptr<Session> session;
  {
    MutexLock lock(state_->mutex);
    const auto it = state_->sessions.find(name);
    // A null mapping is a CreateSession still in flight (name reserved,
    // session not yet published): not closable, and not erasable without
    // yanking the reservation from under the creator.
    if (it == state_->sessions.end() || it->second == nullptr) {
      return Status::NotFound("no session '" + name + "'");
    }
    session = std::move(it->second);
    state_->sessions.erase(it);
  }
  // Stop any attached stream first: a live ticker would keep enqueueing
  // ticks past the drain below. Implicit DetachStream, per the contract.
  std::unique_ptr<StreamTicker> ticker;
  {
    MutexLock session_lock(session->mutex);
    ticker = std::move(session->ticker);
  }
  if (ticker != nullptr) ticker->Stop();
  {
    MutexLock session_lock(session->mutex);
    session->stream_engine.reset();
  }
  // Drain outside the service lock. Requests already queued (and any a
  // racing submitter slips in through a Find() it performed before the
  // erase) still hold the Session alive via their shared_ptr captures;
  // the object is freed when the last of them finishes.
  session->queue.Wait();
  return Status::OK();
}

bool TrustService::HasSession(const std::string& name) const {
  return state_->Find(name) != nullptr;
}

std::vector<std::string> TrustService::SessionNames() const {
  MutexLock lock(state_->mutex);
  std::vector<std::string> names;
  names.reserve(state_->sessions.size());
  for (const auto& [name, session] : state_->sessions) {
    // Skip reservations of CreateSessions still in flight.
    if (session != nullptr) names.push_back(name);
  }
  return names;
}

std::future<StatusOr<TrustReport>> TrustService::SubmitRun(
    const std::string& session_name) {
  std::shared_ptr<Session> session = state_->Find(session_name);
  if (session == nullptr) {
    return ReadyFuture<StatusOr<TrustReport>>(
        Status::NotFound("no session '" + session_name + "'"));
  }
  state_->metrics.runs_submitted->Increment();
  // Request-lifecycle instrumentation: stamp the submit so the task can
  // split queue wait (submit -> start) from execute (start -> finish).
  const uint64_t submit_ns =
      obs::MetricsEnabled() ? obs::MonotonicNanos() : 0;
  KBT_OBS_GAUGE_ADD(session->queue_depth, 1.0);
  // The window close and the enqueue happen atomically under the session
  // mutex (lock order: session -> queue -> pool, never inverted): a run
  // closes the coalescing window, and appends submitted after this call
  // returns land behind the run on the strand.
  MutexLock lock(session->mutex);
  session->open_append.reset();
  return session->queue.SubmitWithResult(
      [state = state_, session, submit_ns]() -> StatusOr<TrustReport> {
        if (submit_ns != 0) {
          state->metrics.run.queue_wait->Record(
              static_cast<double>(obs::MonotonicNanos() - submit_ns) * 1e-9);
        }
        QueueDepthGuard depth_guard(session->queue_depth);
        obs::ScopedTimer execute_timer(state->metrics.run.execute);
        KBT_TRACE_SPAN("service.run");
        if (session->sharded) {
          // The scatter's TaskGroup join donates this strand's thread, so
          // running K shards from here cannot deadlock the shared pool.
          StatusOr<ShardedTrustReport> reports = session->sharded->Run();
          state->MaybePublishSharded(*session, reports);
          if (!reports.ok()) return reports.status();
          session->last_sharded = std::make_shared<const ShardedTrustReport>(
              std::move(*reports));
          return session->last_sharded->merged;
        }
        StatusOr<TrustReport> report = session->pipeline->Run();
        state->MaybePublish(*session, report);
        return report;
      });
}

std::future<StatusOr<TrustReport>> TrustService::SubmitRunFrom(
    const std::string& session_name, TrustReport previous) {
  std::shared_ptr<Session> session = state_->Find(session_name);
  if (session == nullptr) {
    return ReadyFuture<StatusOr<TrustReport>>(
        Status::NotFound("no session '" + session_name + "'"));
  }
  state_->metrics.runs_submitted->Increment();
  const uint64_t submit_ns =
      obs::MetricsEnabled() ? obs::MonotonicNanos() : 0;
  KBT_OBS_GAUGE_ADD(session->queue_depth, 1.0);
  MutexLock lock(session->mutex);
  session->open_append.reset();
  return session->queue.SubmitWithResult(
      [state = state_, session, submit_ns,
       previous = std::move(previous)]() -> StatusOr<TrustReport> {
        if (submit_ns != 0) {
          state->metrics.run_from.queue_wait->Record(
              static_cast<double>(obs::MonotonicNanos() - submit_ns) * 1e-9);
        }
        QueueDepthGuard depth_guard(session->queue_depth);
        obs::ScopedTimer execute_timer(state->metrics.run_from.execute);
        KBT_TRACE_SPAN("service.run_from");
        if (session->sharded) {
          // Warm starts need per-shard inference state, which the flattened
          // `previous` cannot carry: use the session-retained last sharded
          // report instead (see CreateShardedSession's contract).
          if (session->last_sharded == nullptr) {
            return Status::FailedPrecondition(
                "sharded session has no completed run to warm-start from");
          }
          StatusOr<ShardedTrustReport> reports =
              session->sharded->RunFrom(*session->last_sharded);
          state->MaybePublishSharded(*session, reports);
          if (!reports.ok()) return reports.status();
          session->last_sharded = std::make_shared<const ShardedTrustReport>(
              std::move(*reports));
          return session->last_sharded->merged;
        }
        StatusOr<TrustReport> report = session->pipeline->RunFrom(previous);
        state->MaybePublish(*session, report);
        return report;
      });
}

std::future<Status> TrustService::SubmitAppend(
    const std::string& session_name,
    std::vector<extract::RawObservation> observations) {
  std::shared_ptr<Session> session = state_->Find(session_name);
  if (session == nullptr) {
    return ReadyFuture<Status>(
        Status::NotFound("no session '" + session_name + "'"));
  }
  state_->metrics.appends_submitted->Increment();
  const uint64_t submit_ns =
      obs::MetricsEnabled() ? obs::MonotonicNanos() : 0;

  std::shared_ptr<PendingAppend> batch;
  std::future<Status> future;
  {
    // Window inspection, batch creation AND the strand enqueue happen
    // under one session-mutex hold: publishing an open window whose task
    // is not yet queued would let a racing run jump ahead of an append
    // that already merged into it and returned to its caller.
    MutexLock lock(session->mutex);
    if (state_->options.coalesce_appends && session->open_append != nullptr) {
      // Merge into the batch already queued on the strand; the single
      // AppendObservations call will resolve this future too.
      PendingAppend& open = *session->open_append;
      open.observations.insert(
          open.observations.end(),
          std::make_move_iterator(observations.begin()),
          std::make_move_iterator(observations.end()));
      open.promises.emplace_back();
      future = open.promises.back().get_future();
    } else {
      batch = std::make_shared<PendingAppend>();
      batch->observations = std::move(observations);
      batch->promises.emplace_back();
      future = batch->promises.back().get_future();
      if (state_->options.coalesce_appends) session->open_append = batch;
      KBT_OBS_GAUGE_ADD(session->queue_depth, 1.0);
      session->queue.Submit([state = state_, session, batch, submit_ns] {
        if (submit_ns != 0) {
          state->metrics.append.queue_wait->Record(
              static_cast<double>(obs::MonotonicNanos() - submit_ns) * 1e-9);
        }
        QueueDepthGuard depth_guard(session->queue_depth);
        obs::ScopedTimer execute_timer(state->metrics.append.execute);
        KBT_TRACE_SPAN("service.append");
        std::vector<extract::RawObservation> merged;
        std::vector<std::promise<Status>> promises;
        {
          // Close the window before touching the pipeline: appends
          // submitted from here on start a new batch (and a new task).
          MutexLock lock(session->mutex);
          merged = std::move(batch->observations);
          promises = std::move(batch->promises);
          if (session->open_append == batch) session->open_append.reset();
        }
        const Status status = session->Append(merged);
        state->metrics.append_batches_executed->Increment();
        for (std::promise<Status>& promise : promises) {
          promise.set_value(status);
        }
      });
    }
  }
  if (batch == nullptr) {
    state_->metrics.appends_coalesced->Increment();
  }
  return future;
}

Status TrustService::AttachStream(const std::string& session_name,
                                  std::shared_ptr<stream::ObservationFeed> feed,
                                  stream::StreamOptions options) {
  std::shared_ptr<Session> session = state_->Find(session_name);
  if (session == nullptr) {
    return Status::NotFound("no session '" + session_name + "'");
  }
  if (feed == nullptr) {
    return Status::InvalidArgument("AttachStream requires a feed");
  }
  if (!options.clock) options.clock = SystemClockSeconds;
  const double interval = options.tick_interval;

  // Build the engine ON THE STRAND: StreamEngine::Create reads the live
  // dataset (to seed its decay timeline) and sets registry retention, so it
  // must serialize with in-flight appends and runs like every other
  // pipeline touch. The double-attach check needs no extra care: every
  // attach goes through a strand task, so two racing AttachStreams
  // serialize here and the loser sees the winner's engine.
  std::future<Status> attached;
  {
    MutexLock lock(session->mutex);
    attached = session->queue.SubmitWithResult(
        [session, feed = std::move(feed),
         options = std::move(options)]() mutable -> Status {
          {
            MutexLock lock(session->mutex);
            if (session->stream_engine != nullptr) {
              return Status::FailedPrecondition(
                  "session already has a stream attached — DetachStream "
                  "first");
            }
          }
          StatusOr<std::unique_ptr<stream::StreamEngine>> engine =
              session->sharded
                  ? stream::StreamEngine::Create(
                        &*session->sharded, std::move(feed), std::move(options))
                  : stream::StreamEngine::Create(&*session->pipeline,
                                                 std::move(feed),
                                                 std::move(options));
          if (!engine.ok()) return engine.status();
          MutexLock lock(session->mutex);
          session->stream_engine = std::move(*engine);
          return Status::OK();
        });
  }
  const Status status = attached.get();
  if (!status.ok()) return status;

  if (interval > 0.0) {
    // The ticker holds WEAK session and state pointers (it is owned by the
    // session, which the state owns — a strong capture of either would be
    // a cycle and the session would never die, leaving the ticker thread
    // firing into the executor past process teardown). Each firing
    // re-resolves the engine, stamps the tick with the stream's clock, and
    // enqueues it on the strand; the queued task's shared_ptrs keep state,
    // session and engine alive through the tick. The result is
    // deliberately dropped: periodic ticks are fire-and-forget, counters
    // and alert callbacks carry the observability.
    std::weak_ptr<Session> weak = session;
    auto tick = [weak, weak_state = std::weak_ptr<State>(state_)] {
      std::shared_ptr<Session> session = weak.lock();
      std::shared_ptr<State> state = weak_state.lock();
      if (session == nullptr || state == nullptr) return;
      std::shared_ptr<stream::StreamEngine> engine;
      {
        MutexLock lock(session->mutex);
        engine = session->stream_engine;
      }
      if (engine == nullptr) return;
      const double now = engine->options().clock();
      // Periodic ticks report into the same kind=tick lifecycle metrics
      // as SubmitTick — one request class either way.
      const uint64_t submit_ns =
          obs::MetricsEnabled() ? obs::MonotonicNanos() : 0;
      KBT_OBS_GAUGE_ADD(session->queue_depth, 1.0);
      session->queue.Submit([state, session, engine, now, submit_ns] {
        if (submit_ns != 0) {
          state->metrics.tick.queue_wait->Record(
              static_cast<double>(obs::MonotonicNanos() - submit_ns) * 1e-9);
        }
        QueueDepthGuard depth_guard(session->queue_depth);
        obs::ScopedTimer execute_timer(state->metrics.tick.execute);
        KBT_TRACE_SPAN("service.tick");
        (void)engine->Tick(now);
      });
    };
    const auto interval_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(interval));
    MutexLock lock(session->mutex);
    if (session->stream_engine != nullptr && session->ticker == nullptr) {
      session->ticker =
          std::make_unique<StreamTicker>(std::move(tick), interval_ns);
    }
  }
  return Status::OK();
}

Status TrustService::DetachStream(const std::string& session_name) {
  std::shared_ptr<Session> session = state_->Find(session_name);
  if (session == nullptr) {
    return Status::NotFound("no session '" + session_name + "'");
  }
  std::unique_ptr<StreamTicker> ticker;
  {
    MutexLock lock(session->mutex);
    ticker = std::move(session->ticker);
  }
  // Join the ticker BEFORE dropping the engine: a firing in flight still
  // resolves the engine and enqueues one last tick, which drains
  // harmlessly (the queued task pins the engine).
  if (ticker != nullptr) ticker->Stop();
  MutexLock lock(session->mutex);
  if (session->stream_engine == nullptr) {
    return Status::FailedPrecondition("no stream attached to session '" +
                                      session_name + "'");
  }
  session->stream_engine.reset();
  return Status::OK();
}

std::future<StatusOr<stream::TickResult>> TrustService::SubmitTick(
    const std::string& session_name, double now) {
  std::shared_ptr<Session> session = state_->Find(session_name);
  if (session == nullptr) {
    return ReadyFuture<StatusOr<stream::TickResult>>(
        Status::NotFound("no session '" + session_name + "'"));
  }
  MutexLock lock(session->mutex);
  std::shared_ptr<stream::StreamEngine> engine = session->stream_engine;
  if (engine == nullptr) {
    return ReadyFuture<StatusOr<stream::TickResult>>(
        Status::FailedPrecondition("no stream attached to session '" +
                                   session_name + "'"));
  }
  // A tick appends + runs: close the coalescing window like SubmitRun, so
  // appends submitted after this call land behind the tick on the strand.
  session->open_append.reset();
  const uint64_t submit_ns =
      obs::MetricsEnabled() ? obs::MonotonicNanos() : 0;
  KBT_OBS_GAUGE_ADD(session->queue_depth, 1.0);
  return session->queue.SubmitWithResult(
      [state = state_, session, engine = std::move(engine), now,
       submit_ns]() -> StatusOr<stream::TickResult> {
        if (submit_ns != 0) {
          state->metrics.tick.queue_wait->Record(
              static_cast<double>(obs::MonotonicNanos() - submit_ns) * 1e-9);
        }
        QueueDepthGuard depth_guard(session->queue_depth);
        obs::ScopedTimer execute_timer(state->metrics.tick.execute);
        KBT_TRACE_SPAN("service.tick");
        return engine->Tick(now);
      });
}

StatusOr<stream::StreamStats> TrustService::StreamingStats(
    const std::string& session_name) const {
  std::shared_ptr<Session> session = state_->Find(session_name);
  if (session == nullptr) {
    return Status::NotFound("no session '" + session_name + "'");
  }
  MutexLock lock(session->mutex);
  if (session->stream_engine == nullptr) {
    return Status::FailedPrecondition("no stream attached to session '" +
                                      session_name + "'");
  }
  return session->stream_engine->stats();
}

StatusOr<query::SnapshotReader> TrustService::Query(
    const std::string& session_name) const {
  std::shared_ptr<Session> session = state_->Find(session_name);
  if (session == nullptr) {
    return Status::NotFound("no session '" + session_name + "'");
  }
  // The reader holds the registry (not the session): queries keep working
  // off the last published snapshot even after the session closes, and
  // never touch the pipeline itself. Sharded sessions serve their merged
  // logical registry — indistinguishable to the reader.
  return query::SnapshotReader(session->registry());
}

void TrustService::Drain() {
  // Snapshot under the lock, wait outside it: a draining request may be
  // long, and request tasks never touch the session map.
  std::vector<std::shared_ptr<Session>> sessions;
  {
    MutexLock lock(state_->mutex);
    sessions.reserve(state_->sessions.size());
    for (const auto& [name, session] : state_->sessions) {
      // Skip reservations (null): nothing is queued on an unpublished
      // session, and requests submitted after this snapshot are out of
      // Drain's contract anyway.
      if (session != nullptr) sessions.push_back(session);
    }
  }
  for (const std::shared_ptr<Session>& session : sessions) {
    session->queue.Wait();
  }
}

TrustService::Stats TrustService::stats() const {
  // Thin view over the obs registry counters (the source of truth); see
  // the Stats declaration. The counters increment unconditionally — the
  // Stats contract predates the obs switch, so stats() keeps counting
  // even with SetMetricsEnabled(false).
  Stats stats;
  stats.runs_submitted = state_->metrics.runs_submitted->Value();
  stats.appends_submitted = state_->metrics.appends_submitted->Value();
  stats.appends_coalesced = state_->metrics.appends_coalesced->Value();
  stats.append_batches_executed =
      state_->metrics.append_batches_executed->Value();
  stats.snapshots_published = state_->metrics.snapshots_published->Value();
  return stats;
}

}  // namespace kbt::api
