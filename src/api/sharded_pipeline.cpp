#include <algorithm>
#include <string>
#include <utility>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "dataflow/parallel.h"
#include "extract/dataset_partition.h"
#include "kb/ids.h"
#include "kbt/obs.h"
#include "kbt/shard.h"

namespace kbt::api {

namespace {

Status AnnotateShard(const Status& status, uint32_t shard_index) {
  return Status(status.code(), "shard " + std::to_string(shard_index) + ": " +
                                   status.message());
}

/// Flattens per-shard reports into one logical serving report. K = 1 is a
/// verbatim passthrough — the bit-for-bit parity guarantee. For K > 1:
/// website rows come from each website's owner shard, source rows
/// concatenate in shard order (ShardedTrustReport::source_offset),
/// predictions merge under the cross-shard triple rule, counts/timings
/// sum. Inference vectors stay empty (shard-local coordinates; warm starts
/// use the per-shard reports).
TrustReport MergeReports(const std::vector<TrustReport>& shards,
                         uint64_t salt) {
  if (shards.size() == 1) return shards[0];
  const uint32_t k = static_cast<uint32_t>(shards.size());
  TrustReport merged;
  merged.model = shards[0].model;
  merged.granularity = shards[0].granularity;

  merged.inference.iterations = 0;
  merged.inference.converged = true;
  size_t num_website_rows = 0;
  for (const TrustReport& report : shards) {
    merged.counts.num_observations += report.counts.num_observations;
    merged.counts.num_slots += report.counts.num_slots;
    merged.counts.num_extractions += report.counts.num_extractions;
    merged.counts.num_sources += report.counts.num_sources;
    merged.counts.num_extractor_groups += report.counts.num_extractor_groups;
    merged.counts.num_websites =
        std::max(merged.counts.num_websites, report.counts.num_websites);
    merged.inference.iterations =
        std::max(merged.inference.iterations, report.inference.iterations);
    merged.inference.converged =
        merged.inference.converged && report.inference.converged;
    num_website_rows = std::max(num_website_rows, report.website_kbt.size());
  }

  // Websites: every shard carries a globally-aligned table, but only the
  // owner shard's row has that website's evidence; non-owner rows are the
  // zero-filled alignment padding. Shards can be ragged after appends
  // (only the owner's table grows), hence the bounds check.
  merged.website_kbt.resize(num_website_rows);
  for (size_t w = 0; w < num_website_rows; ++w) {
    const uint32_t owner = extract::ShardOfWebsite(
        static_cast<kb::WebsiteId>(w), k, salt);
    if (w < shards[owner].website_kbt.size()) {
      merged.website_kbt[w] = shards[owner].website_kbt[w];
    }
  }

  // Sources: group ids are shard-local, so the global id space is the
  // shard-order concatenation (offsets via source_offset()).
  for (const TrustReport& report : shards) {
    merged.source_kbt.insert(merged.source_kbt.end(),
                             report.source_kbt.begin(),
                             report.source_kbt.end());
  }

  // Predictions: a triple claimed on differently-sharded websites appears
  // in several shard reports; keep the winner under the cross-shard rule
  // (probability desc, covered over uncovered, lowest shard) and emit in
  // (item, value) order so items stay contiguous for Snapshot::Build.
  std::vector<std::pair<eval::TriplePrediction, uint32_t>> candidates;
  for (uint32_t s = 0; s < k; ++s) {
    for (const eval::TriplePrediction& prediction : shards[s].predictions) {
      candidates.emplace_back(prediction, s);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first.item != b.first.item) {
                return a.first.item < b.first.item;
              }
              if (a.first.value != b.first.value) {
                return a.first.value < b.first.value;
              }
              if (a.first.probability != b.first.probability) {
                return a.first.probability > b.first.probability;
              }
              if (a.first.covered != b.first.covered) return a.first.covered;
              return a.second < b.second;
            });
  merged.predictions.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i > 0 && candidates[i].first.item == candidates[i - 1].first.item &&
        candidates[i].first.value == candidates[i - 1].first.value) {
      continue;
    }
    merged.predictions.push_back(candidates[i].first);
    if (merged.predictions.size() == 1 ||
        merged.predictions[merged.predictions.size() - 2].item !=
            candidates[i].first.item) {
      merged.counts.num_items++;
    }
  }

  // Stage timings: summed per stage name (every shard runs the same stage
  // sequence), so the merged report's timing profile reads like one run's.
  for (const TrustReport& report : shards) {
    for (const auto& [name, seconds] : report.stage_seconds) {
      auto it = std::find_if(
          merged.stage_seconds.begin(), merged.stage_seconds.end(),
          [&name](const auto& entry) { return entry.first == name; });
      if (it == merged.stage_seconds.end()) {
        merged.stage_seconds.emplace_back(name, seconds);
      } else {
        it->second += seconds;
      }
    }
  }
  return merged;
}

}  // namespace

struct ShardedPipeline::Impl {
  Options options;
  uint32_t num_shards = 1;
  uint64_t salt = 0;
  /// Never null (Create normalizes to DefaultExecutor()).
  dataflow::Executor* executor = nullptr;
  std::vector<Pipeline> shards;
  /// Serves the flattened merged snapshots; per-shard snapshots live on
  /// each shard pipeline's own registry.
  std::shared_ptr<query::SnapshotRegistry> registry =
      std::make_shared<query::SnapshotRegistry>();

  /// Scatters `run(shard_index)` across the executor via TaskGroup (the
  /// donating join: safe from a task already on the pool, e.g. a
  /// TrustService strand) and gathers per-shard reports, first error wins.
  /// Per-shard wall times feed the imbalance metrics: the
  /// kbt_shard_run_seconds histogram and the straggler gauge (slowest
  /// shard / mean shard — 1.0 is a perfectly balanced scatter).
  template <typename RunShard>
  StatusOr<ShardedTrustReport> ScatterGather(RunShard run) {
    KBT_TRACE_SPAN("shard.scatter_gather");
    std::vector<StatusOr<TrustReport>> results(
        num_shards, StatusOr<TrustReport>(Status::Internal("not run")));
    std::vector<double> shard_seconds(num_shards, 0.0);
    const bool timed = obs::MetricsEnabled();
    const uint64_t parent_span = obs::TraceSpan::CurrentId();
    {
      TaskGroup group(&executor->pool());
      for (uint32_t s = 0; s < num_shards; ++s) {
        group.Submit([&results, &shard_seconds, &run, s, timed,
                      parent_span] {
          // Shard tasks hop threads: link their spans to the scatter
          // explicitly (the implicit per-thread parent is the wrong one).
          KBT_TRACE_SPAN_LINKED("shard.run", parent_span);
          const uint64_t start_ns = timed ? obs::MonotonicNanos() : 0;
          results[s] = run(s);
          if (timed) {
            shard_seconds[s] =
                static_cast<double>(obs::MonotonicNanos() - start_ns) * 1e-9;
          }
        });
      }
      group.Wait();
    }
    if (timed) {
      static obs::Histogram* const run_seconds =
          obs::MetricsRegistry::Default().GetHistogram(
              "kbt_shard_run_seconds");
      static obs::Gauge* const straggler_ratio =
          obs::MetricsRegistry::Default().GetGauge(
              "kbt_shard_straggler_ratio");
      static obs::Counter* const scatters =
          obs::MetricsRegistry::Default().GetCounter(
              "kbt_shard_scatters_total");
      double sum = 0.0;
      double slowest = 0.0;
      for (const double seconds : shard_seconds) {
        run_seconds->Record(seconds);
        sum += seconds;
        slowest = std::max(slowest, seconds);
      }
      const double mean = sum / static_cast<double>(num_shards);
      if (mean > 0.0) straggler_ratio->Set(slowest / mean);
      scatters->Increment();
    }
    ShardedTrustReport gathered;
    gathered.shards.reserve(num_shards);
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (!results[s].ok()) return AnnotateShard(results[s].status(), s);
      gathered.shards.push_back(std::move(*results[s]));
    }
    gathered.merged = MergeReports(gathered.shards, salt);
    return gathered;
  }
};

StatusOr<ShardedPipeline> ShardedPipeline::Create(extract::RawDataset dataset,
                                                  Options options,
                                                  ShardOptions shard_options) {
  if (shard_options.num_shards == 0) {
    return Status::InvalidArgument(
        "ShardedPipeline: num_shards must be >= 1");
  }
  extract::PartitionOptions partition_options;
  partition_options.num_shards = shard_options.num_shards;
  partition_options.salt = shard_options.salt;
  StatusOr<extract::DatasetPartition> partition =
      extract::PartitionDataset(dataset, partition_options);
  if (!partition.ok()) return partition.status();

  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->num_shards = shard_options.num_shards;
  impl->salt = shard_options.salt;
  impl->executor = shard_options.executor != nullptr
                       ? shard_options.executor
                       : &dataflow::DefaultExecutor();
  impl->shards.reserve(impl->num_shards);
  for (uint32_t s = 0; s < impl->num_shards; ++s) {
    StatusOr<Pipeline> shard =
        PipelineBuilder()
            .FromDataset(std::move(partition->shards[s]))
            .WithOptions(options)
            .WithExecutor(impl->executor)
            .Build();
    if (!shard.ok()) return AnnotateShard(shard.status(), s);
    impl->shards.push_back(std::move(*shard));
  }
  return ShardedPipeline(std::move(impl));
}

ShardedPipeline::ShardedPipeline(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ShardedPipeline::ShardedPipeline(ShardedPipeline&&) noexcept = default;
ShardedPipeline& ShardedPipeline::operator=(ShardedPipeline&&) noexcept =
    default;
ShardedPipeline::~ShardedPipeline() = default;

StatusOr<ShardedTrustReport> ShardedPipeline::Run() {
  Impl& impl = *impl_;
  return impl.ScatterGather(
      [&impl](uint32_t s) { return impl.shards[s].Run(); });
}

StatusOr<ShardedTrustReport> ShardedPipeline::RunFrom(
    const ShardedTrustReport& previous) {
  Impl& impl = *impl_;
  if (previous.shards.size() != impl.num_shards) {
    return Status::FailedPrecondition(
        "RunFrom: previous report has " +
        std::to_string(previous.shards.size()) + " shard(s), pipeline has " +
        std::to_string(impl.num_shards));
  }
  return impl.ScatterGather([&impl, &previous](uint32_t s) {
    return impl.shards[s].RunFrom(previous.shards[s]);
  });
}

Status ShardedPipeline::AppendObservations(
    const std::vector<extract::RawObservation>& observations) {
  Impl& impl = *impl_;
  if (observations.empty()) return Status::OK();
  // Pre-validate the WHOLE delta before any shard mutates, so a bad batch
  // is rejected all-or-nothing (per-shard appends alone would apply the
  // valid shards' slices first). The checks mirror
  // Pipeline::AppendObservations; any shard's nfalse table works for the
  // domain-size check — original entries are replicated and grown entries
  // are always the positive default.
  const extract::RawDataset& reference = impl.shards[0].dataset();
  for (size_t i = 0; i < observations.size(); ++i) {
    const extract::RawObservation& obs = observations[i];
    if (obs.extractor == kb::kInvalidId || obs.pattern == kb::kInvalidId ||
        obs.website == kb::kInvalidId || obs.page == kb::kInvalidId ||
        obs.value == kb::kInvalidId) {
      return Status::InvalidArgument("appended observation " +
                                     std::to_string(i) +
                                     " carries an invalid id");
    }
    const kb::PredicateId predicate = kb::DataItemPredicate(obs.item);
    if (predicate < reference.num_false_by_predicate.size() &&
        reference.num_false_by_predicate[predicate] < 1) {
      return Status::InvalidArgument(
          "appended observation " + std::to_string(i) +
          " references predicate " + std::to_string(predicate) +
          " with non-positive domain size n = " +
          std::to_string(reference.num_false_by_predicate[predicate]));
    }
  }
  extract::PartitionOptions partition_options;
  partition_options.num_shards = impl.num_shards;
  partition_options.salt = impl.salt;
  const std::vector<std::vector<extract::RawObservation>> buckets =
      extract::PartitionObservations(observations, partition_options);
  // Scatter the per-shard patches (each is an independent CSR merge).
  std::vector<Status> statuses(impl.num_shards);
  {
    TaskGroup group(&impl.executor->pool());
    for (uint32_t s = 0; s < impl.num_shards; ++s) {
      if (buckets[s].empty()) continue;  // Untouched shard: no-op.
      group.Submit([&impl, &buckets, &statuses, s] {
        statuses[s] = impl.shards[s].AppendObservations(buckets[s]);
      });
    }
    group.Wait();
  }
  for (uint32_t s = 0; s < impl.num_shards; ++s) {
    if (!statuses[s].ok()) return AnnotateShard(statuses[s], s);
  }
  return Status::OK();
}

Status ShardedPipeline::EnableDiskCache(const std::string& directory,
                                        uint64_t max_bytes) {
  Impl& impl = *impl_;
  for (uint32_t s = 0; s < impl.num_shards; ++s) {
    const Status enabled = impl.shards[s].EnableDiskCache(
        directory + "/shard-" + std::to_string(s), max_bytes);
    if (!enabled.ok()) return AnnotateShard(enabled, s);
  }
  return Status::OK();
}

std::shared_ptr<const query::Snapshot> ShardedPipeline::PublishSnapshot(
    const ShardedTrustReport& reports) {
  return PublishSnapshot(reports, 0.0);
}

std::shared_ptr<const query::Snapshot> ShardedPipeline::PublishSnapshot(
    const ShardedTrustReport& reports, double publish_time) {
  Impl& impl = *impl_;
  const size_t n =
      std::min<size_t>(reports.shards.size(), impl.shards.size());
  for (size_t s = 0; s < n; ++s) {
    impl.shards[s].PublishSnapshot(reports.shards[s], publish_time);
  }
  query::SnapshotInfo stamp;
  stamp.dataset_fingerprint = dataset_fingerprint();
  return impl.registry->Publish(
      query::Snapshot::Build(reports.merged, stamp), publish_time);
}

std::shared_ptr<query::SnapshotRegistry> ShardedPipeline::snapshot_registry()
    const {
  return impl_->registry;
}

query::MergedSnapshot ShardedPipeline::MergedView() const {
  const Impl& impl = *impl_;
  std::vector<std::shared_ptr<const query::Snapshot>> snapshots;
  snapshots.reserve(impl.shards.size());
  for (const Pipeline& shard : impl.shards) {
    snapshots.push_back(shard.snapshot_registry()->Current());
  }
  return query::MergedSnapshot(std::move(snapshots), impl.salt);
}

void ShardedPipeline::AttachExecutor(dataflow::Executor* executor) {
  Impl& impl = *impl_;
  impl.executor =
      executor != nullptr ? executor : &dataflow::DefaultExecutor();
  for (Pipeline& shard : impl.shards) {
    shard.AttachExecutor(impl.executor);
  }
}

uint64_t ShardedPipeline::dataset_fingerprint() const {
  const Impl& impl = *impl_;
  if (impl.num_shards == 1) return impl.shards[0].dataset_fingerprint();
  uint64_t combined = Mix64(impl.num_shards ^ Mix64(impl.salt));
  for (const Pipeline& shard : impl.shards) {
    combined = HashChain(combined, shard.dataset_fingerprint());
  }
  return combined;
}

uint32_t ShardedPipeline::num_shards() const { return impl_->num_shards; }
uint64_t ShardedPipeline::salt() const { return impl_->salt; }
const Options& ShardedPipeline::options() const { return impl_->options; }

const Pipeline& ShardedPipeline::shard(uint32_t shard_index) const {
  return impl_->shards.at(shard_index);
}

}  // namespace kbt::api
