#include "kbt/options.h"

namespace kbt::api {

std::string_view ModelName(Model model) {
  switch (model) {
    case Model::kSingleLayer:
      return "SingleLayer";
    case Model::kMultiLayer:
      return "MultiLayer";
  }
  return "unknown";
}

std::string_view GranularityName(Granularity granularity) {
  switch (granularity) {
    case Granularity::kFinest:
      return "finest";
    case Granularity::kPageSource:
      return "page-source";
    case Granularity::kWebsiteSource:
      return "website-source";
    case Granularity::kProvenance:
      return "provenance";
    case Granularity::kSplitMerge:
      return "split-merge";
  }
  return "unknown";
}

core::SmartInitOptions Options::PaperSmartInit() {
  core::SmartInitOptions options;
  // Source-side only (the paper's description); LCWA labels are too skewed
  // toward false to estimate extractor precision from.
  options.initialize_extractors = false;
  // A single gold-labeled triple anchors a source, which is what lets thin
  // sources participate in the "+" variants of Table 5.
  options.min_labeled = 1;
  options.smoothing = 1.0;
  return options;
}

Options Options::Paper() {
  Options options;
  options.multilayer.num_false_override = 10;    // Paper: n = 10 multi-layer.
  options.single_layer.num_false_override = 100;  // n = 100 single-layer.
  options.sm_source.min_size = 5;
  options.sm_source.max_size = 10000;
  options.sm_extractor.min_size = 5;
  options.sm_extractor.max_size = 10000;
  options.smart_init_options = PaperSmartInit();
  return options;
}

}  // namespace kbt::api
