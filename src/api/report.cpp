#include "kbt/report.h"

namespace kbt::api {

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kGranularity:
      return "Granularity";
    case Stage::kCompile:
      return "Compile";
    case Stage::kInitialize:
      return "Initialize";
    case Stage::kInference:
      return "Inference";
    case Stage::kScore:
      return "Score";
    case Stage::kEvaluate:
      return "Evaluate";
  }
  return "unknown";
}

double TrustReport::CoveredFraction() const {
  const auto& covered = inference.slot_covered;
  if (covered.empty()) return 0.0;
  size_t count = 0;
  for (const uint8_t c : covered) count += c;
  return static_cast<double>(count) / static_cast<double>(covered.size());
}

core::InitialQuality TrustReport::ToInitialQuality() const {
  core::InitialQuality initial;
  initial.source_accuracy = inference.source_accuracy;
  initial.extractor_precision = inference.extractor_precision;
  initial.extractor_recall = inference.extractor_recall;
  initial.extractor_q = inference.extractor_q;
  initial.source_trusted = inference.source_supported;
  return initial;
}

}  // namespace kbt::api
