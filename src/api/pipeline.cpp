#include "kbt/pipeline.h"

#include <algorithm>
#include <string>
#include <utility>

#include "cache/artifact_store.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/math.h"
#include "core/initialization.h"
#include "core/kbt_score.h"
#include "core/multilayer_model.h"
#include "dataflow/parallel.h"
#include "dataflow/stage_timer.h"
#include "eval/gold_standard.h"
#include "exp/kv_sim.h"
#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "fusion/single_layer.h"
#include "granularity/assignments.h"
#include "io/dataset_io.h"
#include "kbt/obs.h"
#include "kbt/query.h"

namespace kbt::api {

struct Pipeline::Impl {
  Options options;

  extract::RawDataset owned_dataset;
  /// Points at owned_dataset, kv->data, or an external dataset.
  const extract::RawDataset* dataset = nullptr;
  /// True only when AppendObservations may mutate the cube.
  bool dataset_owned = false;

  std::unique_ptr<exp::KvSimData> kv;
  std::unique_ptr<eval::GoldStandard> owned_gold;
  const eval::GoldStandard* gold = nullptr;

  dataflow::Executor* executor = nullptr;
  dataflow::StageTimers* timers = nullptr;
  ProgressCallback progress;

  /// Cache: kept in sync with the dataset. A re-run (warm start, repeated
  /// Run) skips granularity + compilation entirely; AppendObservations
  /// extends the assignment and patches the matrix in place for stateless
  /// granularities instead of dropping them.
  std::optional<extract::GroupAssignment> assignment;
  std::optional<extract::CompiledMatrix> matrix;
  /// Incremental assignment builder behind `assignment` (absent for
  /// SPLITANDMERGE, whose grouping shifts when data is appended).
  std::optional<granularity::AssignmentExtender> extender;
  /// Observations covered by `matrix` (a prefix of the dataset).
  size_t compiled_observations = 0;

  /// Per-observation evidence weights (SetObservationWeights); empty means
  /// unweighted — runs take exactly the historical code path. Cleared by
  /// AppendObservations because the observation count they parallel changed.
  std::vector<float> observation_weights;

  /// Lazily computed io::DatasetFingerprint of `dataset`; reset whenever
  /// the dataset mutates (appends). The lock makes concurrent *const*
  /// reads safe against each other (no torn cache); it does NOT license
  /// reading while AppendObservations mutates the dataset — see the
  /// accessor's contract in kbt/pipeline.h.
  mutable Mutex fingerprint_mutex;
  mutable std::optional<uint64_t> fingerprint KBT_GUARDED_BY(fingerprint_mutex);

  /// Persistent artifact store (EnableDiskCache) and the compile-options
  /// half of its key; absent until enabled.
  std::optional<cache::ArtifactStore> store;
  uint64_t options_fingerprint = 0;

  /// Read-side publication point (PublishSnapshot). Shared so query
  /// readers keep it — and the snapshots it serves — alive past this
  /// pipeline's destruction.
  std::shared_ptr<query::SnapshotRegistry> snapshot_registry =
      std::make_shared<query::SnapshotRegistry>();

  void InvalidateCache() {
    assignment.reset();
    matrix.reset();
    extender.reset();
    compiled_observations = 0;
    // Also drop the memoized content hash: InvalidateCache's contract
    // covers datasets mutated behind the pipeline's back (borrowed
    // datasets), where a stale fingerprint would key the disk cache to
    // pre-mutation artifacts.
    MutexLock lock(fingerprint_mutex);
    fingerprint.reset();
  }
};

namespace {

/// Times one pipeline stage into the report, the shared StageTimers (under
/// "Pipeline.<stage>") and the progress callback, and opens a trace span
/// ("pipeline.<stage>") so stage boundaries land in exported traces. The
/// clock is obs::MonotonicNanos (the report's stage_seconds stay populated
/// regardless of the metrics switch — timing a run is the report's job).
class StageScope {
 public:
  StageScope(Pipeline::Impl& impl, TrustReport& report, Stage stage)
      : impl_(impl),
        report_(report),
        stage_(stage),
        start_ns_(obs::MonotonicNanos()),
        span_(std::string("pipeline.") + std::string(StageName(stage))) {}
  ~StageScope() {
    const double seconds =
        static_cast<double>(obs::MonotonicNanos() - start_ns_) * 1e-9;
    const std::string name(StageName(stage_));
    report_.stage_seconds.emplace_back(name, seconds);
    if (impl_.timers != nullptr) impl_.timers->Add("Pipeline." + name, seconds);
    if (impl_.progress) impl_.progress(stage_, seconds);
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Pipeline::Impl& impl_;
  TrustReport& report_;
  Stage stage_;
  uint64_t start_ns_;
  obs::TraceSpan span_;
};

core::TripleLabelFn MakeLabelFn(const eval::GoldStandard& gold) {
  return [&gold](kb::DataItemId item, kb::ValueId value) {
    return gold.Label(item, value);
  };
}

/// The incremental grouping rule behind an api::Granularity, when one
/// exists (SPLITANDMERGE re-buckets on every change and has none).
std::optional<granularity::StatelessGranularity> StatelessKind(
    Granularity granularity) {
  switch (granularity) {
    case Granularity::kFinest:
      return granularity::StatelessGranularity::kFinest;
    case Granularity::kPageSource:
      return granularity::StatelessGranularity::kPageSource;
    case Granularity::kWebsiteSource:
      return granularity::StatelessGranularity::kWebsiteSource;
    case Granularity::kProvenance:
      return granularity::StatelessGranularity::kProvenance;
    case Granularity::kSplitMerge:
      return std::nullopt;
  }
  return std::nullopt;
}

uint64_t CurrentFingerprint(const Pipeline::Impl& impl) {
  MutexLock lock(impl.fingerprint_mutex);
  if (!impl.fingerprint) {
    impl.fingerprint = io::DatasetFingerprint(*impl.dataset);
  }
  return *impl.fingerprint;
}

/// Loads the store entry keyed by the current (dataset, options) pair into
/// the in-memory cache. On any non-OK return the in-memory cache is left
/// untouched. The store verifies integrity (CRC), identity (stored
/// fingerprints vs key) and structural invariants; here only the coverage
/// check remains. The AssignmentExtender behind incremental appends is NOT
/// reconstructed eagerly — a pure warm start never needs it, so
/// AppendObservations rebuilds it lazily (one replay pass) on the first
/// append after a load.
Status LoadArtifacts(Pipeline::Impl& impl) {
  const uint64_t dataset_fp = CurrentFingerprint(impl);
  StatusOr<cache::ArtifactBundle> loaded =
      impl.store->Get(dataset_fp, impl.options_fingerprint);
  if (!loaded.ok()) return loaded.status();
  cache::ArtifactBundle& bundle = *loaded;
  if (bundle.compiled_observations != impl.dataset->size()) {
    return Status::FailedPrecondition(
        "artifact entry covers " +
        std::to_string(bundle.compiled_observations) +
        " observations, the dataset has " +
        std::to_string(impl.dataset->size()));
  }
  impl.extender.reset();
  impl.assignment = std::move(bundle.assignment);
  impl.matrix = std::move(bundle.matrix);
  impl.compiled_observations =
      static_cast<size_t>(bundle.compiled_observations);
  return Status::OK();
}

/// Persists the in-memory compiled artifacts under the current key.
Status SaveArtifacts(Pipeline::Impl& impl) {
  if (!impl.assignment || !impl.matrix) {
    return Status::FailedPrecondition(
        "nothing compiled yet: run the pipeline (or load) before saving");
  }
  if (impl.compiled_observations != impl.dataset->size()) {
    // The matrix lags the dataset (e.g. an append fell back to
    // invalidation midway); persisting it would store a stale entry under
    // the grown dataset's key.
    return Status::FailedPrecondition(
        "compiled matrix covers a prefix of the dataset; run before saving");
  }
  return impl.store->Put(CurrentFingerprint(impl), impl.options_fingerprint,
                         impl.compiled_observations, *impl.assignment,
                         *impl.matrix);
}

Status EnsureCompiled(Pipeline::Impl& impl, TrustReport& report) {
  bool compiled_now = false;
  {
    StageScope scope(impl, report, Stage::kGranularity);
    // Disk-cache fast path: with a store attached and nothing compiled,
    // try the persisted artifacts first. Misses are silent; corrupt or
    // stale entries are logged and fall back to a clean rebuild.
    if (impl.store && (!impl.assignment || !impl.matrix)) {
      const Status loaded = LoadArtifacts(impl);
      if (!loaded.ok() && loaded.code() != StatusCode::kNotFound) {
        KBT_LOG(Warning) << "kbt disk cache: rejecting persisted artifacts, "
                            "recompiling instead: "
                         << loaded.ToString();
      }
    }
    if (!impl.assignment) {
      impl.extender.reset();
      if (const std::optional<granularity::StatelessGranularity> kind =
              StatelessKind(impl.options.granularity)) {
        // Built through the incremental extender so that later appends can
        // extend the cached assignment with stable group ids.
        impl.extender.emplace(*kind);
        extract::GroupAssignment assignment;
        KBT_RETURN_IF_ERROR(impl.extender->Extend(*impl.dataset, &assignment));
        impl.assignment = std::move(assignment);
      } else if (impl.options.granularity == Granularity::kSplitMerge) {
        StatusOr<extract::GroupAssignment> sm =
            granularity::SplitMergeAssignment(
                *impl.dataset, impl.options.sm_source,
                impl.options.sm_extractor, impl.timers);
        if (!sm.ok()) return sm.status();
        impl.assignment = std::move(*sm);
      } else {
        // E.g. an unchecked integer cast into the enum.
        return Status::InvalidArgument(
            "unknown granularity value " +
            std::to_string(static_cast<int>(impl.options.granularity)));
      }
    }
  }
  {
    StageScope scope(impl, report, Stage::kCompile);
    if (!impl.matrix) {
      StatusOr<extract::CompiledMatrix> matrix =
          extract::CompiledMatrix::Build(*impl.dataset, *impl.assignment);
      if (!matrix.ok()) return matrix.status();
      impl.matrix = std::move(*matrix);
      impl.compiled_observations = impl.dataset->size();
      compiled_now = true;
    }
  }
  if (compiled_now && impl.store) {
    // Best effort: a failed save costs the next session a recompile, not
    // this run its result.
    const Status saved = SaveArtifacts(impl);
    if (!saved.ok()) {
      KBT_LOG(Warning) << "kbt disk cache: could not persist compiled "
                          "artifacts: "
                       << saved.ToString();
    }
  }
  return Status::OK();
}

/// Grows a warm-start InitialQuality to `num_sources` / `num_groups` by
/// giving groups introduced after the previous run the same prior values a
/// cold start would use (config defaults). Non-empty vectors only: empty
/// ones already select the defaults wholesale.
void ExtendInitialQuality(core::InitialQuality& initial,
                          uint32_t num_sources, uint32_t num_groups,
                          const core::MultiLayerConfig& config) {
  if (!initial.source_accuracy.empty()) {
    initial.source_accuracy.resize(num_sources,
                                   config.default_source_accuracy);
  }
  if (!initial.source_trusted.empty()) {
    initial.source_trusted.resize(num_sources, 0);
  }
  if (!initial.extractor_recall.empty()) {
    initial.extractor_recall.resize(num_groups, config.default_recall);
  }
  if (!initial.extractor_q.empty()) {
    initial.extractor_q.resize(num_groups, config.default_q);
  }
  if (!initial.extractor_precision.empty()) {
    // The model's size validation requires a non-empty vector to match the
    // group count even though extractor_q (always set on this path) wins
    // and the precision values themselves are re-derived from it.
    initial.extractor_precision.resize(
        num_groups,
        PrecisionFromQ(config.default_q, config.default_recall, config.gamma));
  }
}

StatusOr<TrustReport> RunImpl(Pipeline::Impl& impl,
                              const core::InitialQuality* explicit_initial,
                              const TrustReport* warm_from) {
  TrustReport report;
  report.model = impl.options.model;
  report.granularity = impl.options.granularity;
  KBT_RETURN_IF_ERROR(EnsureCompiled(impl, report));
  const extract::CompiledMatrix& matrix = *impl.matrix;

  report.counts.num_observations = impl.dataset->size();
  report.counts.num_slots = matrix.num_slots();
  report.counts.num_items = matrix.num_items();
  report.counts.num_extractions = matrix.num_extractions();
  report.counts.num_sources = matrix.num_sources();
  report.counts.num_extractor_groups = matrix.num_extractor_groups();
  report.counts.num_websites = impl.dataset->num_websites;

  core::InitialQuality initial;
  {
    StageScope scope(impl, report, Stage::kInitialize);
    if (warm_from != nullptr) {
      // Appends only ever grow the group tables (ids are stable), so a
      // previous report whose shape is a prefix of the current one warm
      // starts cleanly: groups introduced since get prior-initialized
      // entries. A *larger* previous shape means the report came from a
      // different granularity (or dataset) and is rejected.
      if (warm_from->counts.num_sources > matrix.num_sources() ||
          warm_from->counts.num_extractor_groups >
              matrix.num_extractor_groups()) {
        return Status::FailedPrecondition(
            "warm start requires a report of the same or a prefix shape: "
            "previous run had " +
            std::to_string(warm_from->counts.num_sources) + " sources / " +
            std::to_string(warm_from->counts.num_extractor_groups) +
            " extractor groups, this pipeline has " +
            std::to_string(matrix.num_sources()) + " / " +
            std::to_string(matrix.num_extractor_groups()));
      }
      const bool grown =
          warm_from->counts.num_sources != matrix.num_sources() ||
          warm_from->counts.num_extractor_groups !=
              matrix.num_extractor_groups();
      if (grown && (warm_from->granularity != impl.options.granularity ||
                    !StatelessKind(impl.options.granularity))) {
        // A smaller shape is only meaningful as an append-grown prefix,
        // and group ids are append-stable only within one *stateless*
        // granularity: a report from another granularity — or from
        // SPLITANDMERGE, which re-buckets (and so renumbers) groups
        // whenever the cube grows — would smear unrelated groups' quality
        // onto ids that happen to collide.
        return Status::FailedPrecondition(
            std::string("a grown-shape warm start requires the same "
                        "stateless granularity on both runs: previous run "
                        "used ") +
            std::string(GranularityName(warm_from->granularity)) +
            ", this pipeline uses " +
            std::string(GranularityName(impl.options.granularity)));
      }
      initial = warm_from->ToInitialQuality();
      ExtendInitialQuality(initial, matrix.num_sources(),
                           matrix.num_extractor_groups(),
                           impl.options.multilayer);
    } else if (explicit_initial != nullptr) {
      initial = *explicit_initial;
    } else if (impl.options.smart_init && impl.gold != nullptr) {
      initial = core::InitialQualityFromLabels(matrix, MakeLabelFn(*impl.gold),
                                               impl.options.multilayer,
                                               impl.options.smart_init_options);
    }
  }

  // ---- Optional per-edge evidence weights (SetObservationWeights) ----
  // Observation weights are reduced onto compiled extraction edges by max
  // (mirroring the compiler's max-confidence dedup; commutative, so the
  // reduction is deterministic regardless of observation order). The
  // mapping is recomputed per run because appends shift edge ids.
  std::vector<float> edge_weights;
  const std::vector<float>* edge_weights_ptr = nullptr;
  if (!impl.observation_weights.empty()) {
    if (impl.observation_weights.size() != impl.dataset->size()) {
      return Status::FailedPrecondition(
          "observation weights hold " +
          std::to_string(impl.observation_weights.size()) +
          " entries but the dataset has " +
          std::to_string(impl.dataset->size()) +
          " observations (stale SetObservationWeights call?)");
    }
    StatusOr<std::vector<uint32_t>> obs_edges =
        matrix.MapObservationEdges(*impl.dataset, *impl.assignment);
    if (!obs_edges.ok()) return obs_edges.status();
    edge_weights.assign(matrix.num_extractions(), 0.0f);
    for (size_t o = 0; o < obs_edges->size(); ++o) {
      const uint32_t e = (*obs_edges)[o];
      edge_weights[e] = std::max(edge_weights[e], impl.observation_weights[o]);
    }
    edge_weights_ptr = &edge_weights;
  }

  {
    StageScope scope(impl, report, Stage::kInference);
    if (impl.options.model == Model::kSingleLayer) {
      StatusOr<fusion::SingleLayerResult> result =
          fusion::SingleLayerModel::Run(matrix, impl.options.single_layer,
                                        initial.source_accuracy, impl.executor,
                                        impl.timers, initial.source_trusted,
                                        edge_weights_ptr);
      if (!result.ok()) return result.status();
      core::MultiLayerResult& out = report.inference;
      out.source_accuracy = std::move(result->source_accuracy);
      out.source_supported = std::move(result->source_supported);
      out.slot_value_prob = std::move(result->slot_value_prob);
      out.slot_covered = std::move(result->slot_covered);
      out.item_unobserved_value_prob =
          std::move(result->item_unobserved_value_prob);
      // The baseline takes every extraction at face value (its defining
      // weakness): correctness is certainty, so website KBT degenerates to
      // the mean claim probability, the paper's single-layer KBT proxy.
      out.slot_correct_prob.assign(matrix.num_slots(), 1.0);
      out.iterations = result->iterations;
      out.converged = result->converged;
    } else {
      StatusOr<core::MultiLayerResult> result = core::MultiLayerModel::Run(
          matrix, impl.options.multilayer, initial, impl.executor,
          impl.timers, edge_weights_ptr);
      if (!result.ok()) return result.status();
      report.inference = std::move(*result);
    }
  }

  {
    StageScope scope(impl, report, Stage::kScore);
    if (impl.options.score_websites) {
      report.website_kbt = core::ComputeWebsiteKbt(
          matrix, report.inference, impl.dataset->num_websites);
    }
    if (impl.options.score_sources) {
      report.source_kbt = core::ComputeSourceKbt(matrix, report.inference);
    }
  }

  {
    StageScope scope(impl, report, Stage::kEvaluate);
    report.predictions = eval::TriplePredictions(
        matrix, report.inference.slot_value_prob,
        report.inference.slot_covered);
    if (impl.gold != nullptr) {
      report.metrics = eval::EvaluateTriples(report.predictions, *impl.gold);
    }
  }
  return report;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

Pipeline::Pipeline(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Pipeline::Pipeline(Pipeline&& other) noexcept = default;
Pipeline& Pipeline::operator=(Pipeline&& other) noexcept = default;
Pipeline::~Pipeline() = default;

StatusOr<TrustReport> Pipeline::Run() {
  return RunImpl(*impl_, nullptr, nullptr);
}

StatusOr<TrustReport> Pipeline::Run(const core::InitialQuality& initial) {
  return RunImpl(*impl_, &initial, nullptr);
}

StatusOr<TrustReport> Pipeline::RunFrom(const TrustReport& previous) {
  return RunImpl(*impl_, nullptr, &previous);
}

Status Pipeline::AppendObservations(
    const std::vector<extract::RawObservation>& observations) {
  Impl& impl = *impl_;
  if (!impl.dataset_owned) {
    return Status::FailedPrecondition(
        "AppendObservations requires a pipeline-owned mutable dataset "
        "(FromDataset(RawDataset), FromTsv or FromSynthetic)");
  }
  // An empty delta changes nothing: keep every cache warm.
  if (observations.empty()) return Status::OK();
  extract::RawDataset& data = impl.owned_dataset;
  // Validate everything before mutating, so a rejected batch leaves the
  // dataset untouched and the grown cube always satisfies
  // io::ValidateRawDataset (new predicates get the default domain below).
  for (size_t i = 0; i < observations.size(); ++i) {
    const extract::RawObservation& obs = observations[i];
    if (obs.extractor == kb::kInvalidId || obs.pattern == kb::kInvalidId ||
        obs.website == kb::kInvalidId || obs.page == kb::kInvalidId ||
        obs.value == kb::kInvalidId) {
      return Status::InvalidArgument(
          "appended observation " + std::to_string(i) +
          " carries an invalid id");
    }
    const kb::PredicateId predicate = kb::DataItemPredicate(obs.item);
    if (predicate < data.num_false_by_predicate.size() &&
        data.num_false_by_predicate[predicate] < 1) {
      return Status::InvalidArgument(
          "appended observation " + std::to_string(i) +
          " references predicate " + std::to_string(predicate) +
          " with non-positive domain size n = " +
          std::to_string(data.num_false_by_predicate[predicate]));
    }
  }
  for (const extract::RawObservation& obs : observations) {
    data.num_extractors = std::max(data.num_extractors, obs.extractor + 1);
    data.num_patterns = std::max(data.num_patterns, obs.pattern + 1);
    data.num_websites = std::max(data.num_websites, obs.website + 1);
    data.num_pages = std::max(data.num_pages, obs.page + 1);
    const kb::PredicateId predicate = kb::DataItemPredicate(obs.item);
    if (data.num_false_by_predicate.size() <= predicate) {
      // Cover new predicates with the library's default domain size.
      data.num_false_by_predicate.resize(predicate + 1, 10);
    }
    data.observations.push_back(obs);
  }
  if (!data.observation_timestamps.empty()) {
    // Keep the parallel-vector invariant for timestamped datasets. The
    // appended batch carries no times through this signature; callers that
    // track them (the streaming engine keeps its own timeline) overlay the
    // real values via SetObservationWeights-derived decay instead.
    data.observation_timestamps.resize(data.observations.size(), 0.0);
  }
  // The weights parallel the old observation count; a run against the grown
  // cube with truncated weights would silently mis-weight the tail.
  impl.observation_weights.clear();
  {
    MutexLock lock(impl.fingerprint_mutex);
    impl.fingerprint.reset();  // Content changed; recompute lazily.
  }

  // ---- Incremental recompilation: extend the cached assignment with the
  // delta (group ids are stable for stateless granularities) and patch the
  // compiled matrix's CSR structures instead of dropping them. SPLITANDMERGE
  // re-buckets on growth, so it falls back to invalidation, as does any
  // delta the matrix reports as structure-invalidating.
  if (!impl.assignment) return Status::OK();  // Nothing compiled yet.
  if (!impl.extender) {
    const std::optional<granularity::StatelessGranularity> kind =
        StatelessKind(impl.options.granularity);
    if (!kind) {
      // SPLITANDMERGE re-buckets on growth: no incremental path exists.
      impl.InvalidateCache();
      return Status::OK();
    }
    // The assignment came from a disk-cache load, which skips the
    // extender's internal state (a pure warm start never appends, so the
    // replay cost is deferred to here). Group ids are first-visit-stable:
    // replaying the *grown* cube yields exactly the loaded assignment
    // extended with the delta, and leaves the extender consistent for the
    // appends that follow.
    granularity::AssignmentExtender extender(*kind);
    extract::GroupAssignment replayed;
    const Status replay = extender.Extend(data, &replayed);
    if (!replay.ok()) {
      impl.InvalidateCache();
      return replay;
    }
    // Cross-check: the loaded assignment must be a prefix of the replay
    // (it was allegedly derived from the base observations of this very
    // dataset). A divergence means the entry was compiled from different
    // content (fingerprint collision / forged entry) and its matrix is
    // untrustworthy — drop everything and let the next run rebuild cold.
    const extract::GroupAssignment& prior = *impl.assignment;
    const bool prefix_ok =
        prior.observation_source.size() <= replayed.observation_source.size() &&
        prior.num_source_groups <= replayed.num_source_groups &&
        prior.num_extractor_groups <= replayed.num_extractor_groups &&
        std::equal(prior.observation_source.begin(),
                   prior.observation_source.end(),
                   replayed.observation_source.begin()) &&
        std::equal(prior.observation_extractor.begin(),
                   prior.observation_extractor.end(),
                   replayed.observation_extractor.begin()) &&
        std::equal(prior.source_infos.begin(), prior.source_infos.end(),
                   replayed.source_infos.begin()) &&
        std::equal(prior.extractor_scopes.begin(),
                   prior.extractor_scopes.end(),
                   replayed.extractor_scopes.begin());
    if (!prefix_ok) {
      KBT_LOG(Warning) << "kbt disk cache: loaded assignment diverges from "
                          "one replayed from the dataset; discarding the "
                          "cached artifacts and recompiling";
      impl.InvalidateCache();
      return Status::OK();
    }
    impl.extender = std::move(extender);
    impl.assignment = std::move(replayed);
  } else {
    const Status extended = impl.extender->Extend(data, &*impl.assignment);
    if (!extended.ok()) {
      impl.InvalidateCache();
      return extended;
    }
  }
  if (impl.matrix) {
    const extract::ObservationDelta delta{impl.compiled_observations};
    StatusOr<extract::AppendOutcome> outcome =
        impl.matrix->Append(data, delta, *impl.assignment);
    if (!outcome.ok()) {
      impl.InvalidateCache();
      return outcome.status();
    }
    if (*outcome == extract::AppendOutcome::kPatched) {
      impl.compiled_observations = data.size();
      if (impl.store) {
        // Keep the disk cache coherent with the incremental path: the
        // grown cube gets its own entry (new fingerprint), so a process
        // restarted against the same content starts warm. Best effort,
        // like the auto-save after a compile.
        const Status saved = SaveArtifacts(impl);
        if (!saved.ok()) {
          KBT_LOG(Warning) << "kbt disk cache: could not re-persist patched "
                              "artifacts: "
                           << saved.ToString();
        }
      }
    } else {
      impl.InvalidateCache();
    }
  }
  return Status::OK();
}

Status Pipeline::SetObservationWeights(std::vector<float> weights) {
  Impl& impl = *impl_;
  if (weights.size() != impl.dataset->size()) {
    return Status::InvalidArgument(
        "observation weights hold " + std::to_string(weights.size()) +
        " entries but the dataset has " + std::to_string(impl.dataset->size()) +
        " observations");
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!(weights[i] >= 0.0f && weights[i] <= 1.0f)) {  // Rejects NaN too.
      return Status::InvalidArgument(
          "observation weight " + std::to_string(i) + " = " +
          std::to_string(weights[i]) + " is outside [0, 1]");
    }
  }
  impl.observation_weights = std::move(weights);
  return Status::OK();
}

void Pipeline::ClearObservationWeights() {
  impl_->observation_weights.clear();
}

const extract::RawDataset& Pipeline::dataset() const {
  return *impl_->dataset;
}

const Options& Pipeline::options() const { return impl_->options; }

uint64_t Pipeline::dataset_fingerprint() const {
  return CurrentFingerprint(*impl_);
}

Status Pipeline::EnableDiskCache(const std::string& directory,
                                 uint64_t max_bytes) {
  cache::StoreOptions store_options;
  store_options.max_bytes = max_bytes;
  StatusOr<cache::ArtifactStore> store =
      cache::ArtifactStore::Open(directory, store_options);
  if (!store.ok()) return store.status();
  impl_->store = std::move(*store);
  impl_->options_fingerprint =
      cache::CompileOptionsFingerprint(impl_->options);
  return Status::OK();
}

Status Pipeline::SaveCompiledArtifacts() {
  if (!impl_->store) {
    return Status::FailedPrecondition(
        "no disk cache attached: call EnableDiskCache first");
  }
  return SaveArtifacts(*impl_);
}

Status Pipeline::LoadCompiledArtifacts() {
  if (!impl_->store) {
    return Status::FailedPrecondition(
        "no disk cache attached: call EnableDiskCache first");
  }
  return LoadArtifacts(*impl_);
}

std::optional<PipelineCounts> Pipeline::shape() const {
  const Impl& impl = *impl_;
  if (!impl.matrix) return std::nullopt;
  PipelineCounts counts;
  counts.num_observations = impl.compiled_observations;
  counts.num_slots = impl.matrix->num_slots();
  counts.num_items = impl.matrix->num_items();
  counts.num_extractions = impl.matrix->num_extractions();
  counts.num_sources = impl.matrix->num_sources();
  counts.num_extractor_groups = impl.matrix->num_extractor_groups();
  counts.num_websites = impl.dataset->num_websites;
  return counts;
}

std::shared_ptr<const query::Snapshot> Pipeline::PublishSnapshot(
    const TrustReport& report) {
  return PublishSnapshot(report, 0.0);
}

std::shared_ptr<const query::Snapshot> Pipeline::PublishSnapshot(
    const TrustReport& report, double publish_time) {
  query::SnapshotInfo stamp;
  stamp.dataset_fingerprint = CurrentFingerprint(*impl_);
  return impl_->snapshot_registry->Publish(
      query::Snapshot::Build(report, stamp), publish_time);
}

std::shared_ptr<query::SnapshotRegistry> Pipeline::snapshot_registry() const {
  return impl_->snapshot_registry;
}

void Pipeline::InvalidateCache() { impl_->InvalidateCache(); }

void Pipeline::AttachExecutor(dataflow::Executor* executor) {
  impl_->executor = executor;
}

const extract::CompiledMatrix* Pipeline::compiled_matrix() const {
  return impl_->matrix ? &*impl_->matrix : nullptr;
}

const corpus::WebCorpus* Pipeline::corpus() const {
  return impl_->kv ? &impl_->kv->corpus : nullptr;
}

const eval::GoldStandard* Pipeline::gold_standard() const {
  return impl_->gold;
}

// ---------------------------------------------------------------------------
// PipelineBuilder
// ---------------------------------------------------------------------------

enum class PipelineBuilder::SourceKind {
  kNone,
  kOwnedDataset,
  kBorrowedDataset,
  kTsv,
  kKvSim,
  kSynthetic,
};

struct PipelineBuilder::State {
  SourceKind kind = SourceKind::kNone;
  int sources_set = 0;

  extract::RawDataset owned_dataset;
  const extract::RawDataset* borrowed = nullptr;
  std::string tsv_path;
  exp::KvSimConfig kv_config;
  exp::SyntheticConfig synthetic_config;

  Options options;
  const eval::GoldStandard* gold = nullptr;
  dataflow::Executor* executor = nullptr;
  dataflow::StageTimers* timers = nullptr;
  ProgressCallback progress;
};

PipelineBuilder::PipelineBuilder() : state_(std::make_unique<State>()) {}
PipelineBuilder::PipelineBuilder(PipelineBuilder&&) noexcept = default;
PipelineBuilder& PipelineBuilder::operator=(PipelineBuilder&&) noexcept =
    default;
PipelineBuilder::~PipelineBuilder() = default;

PipelineBuilder& PipelineBuilder::FromDataset(extract::RawDataset dataset) {
  state_->kind = SourceKind::kOwnedDataset;
  state_->owned_dataset = std::move(dataset);
  ++state_->sources_set;
  return *this;
}

PipelineBuilder& PipelineBuilder::FromDataset(
    const extract::RawDataset* dataset) {
  state_->kind = SourceKind::kBorrowedDataset;
  state_->borrowed = dataset;
  ++state_->sources_set;
  return *this;
}

PipelineBuilder& PipelineBuilder::FromTsv(std::string path) {
  state_->kind = SourceKind::kTsv;
  state_->tsv_path = std::move(path);
  ++state_->sources_set;
  return *this;
}

PipelineBuilder& PipelineBuilder::FromKvSim(const exp::KvSimConfig& config) {
  state_->kind = SourceKind::kKvSim;
  state_->kv_config = config;
  ++state_->sources_set;
  return *this;
}

PipelineBuilder& PipelineBuilder::FromSynthetic(
    const exp::SyntheticConfig& config) {
  state_->kind = SourceKind::kSynthetic;
  state_->synthetic_config = config;
  ++state_->sources_set;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithOptions(Options options) {
  state_->options = std::move(options);
  return *this;
}

PipelineBuilder& PipelineBuilder::WithModel(Model model) {
  state_->options.model = model;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithGranularity(Granularity granularity) {
  state_->options.granularity = granularity;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithGoldStandard(
    const eval::GoldStandard* gold) {
  state_->gold = gold;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithExecutor(dataflow::Executor* executor) {
  state_->executor = executor;
  return *this;
}

PipelineBuilder& PipelineBuilder::WithStageTimers(
    dataflow::StageTimers* timers) {
  state_->timers = timers;
  return *this;
}

PipelineBuilder& PipelineBuilder::OnProgress(ProgressCallback callback) {
  state_->progress = std::move(callback);
  return *this;
}

StatusOr<Pipeline> PipelineBuilder::Build() {
  State& s = *state_;
  if (s.sources_set != 1) {
    return Status::InvalidArgument(
        "PipelineBuilder requires exactly one dataset source (FromDataset / "
        "FromTsv / FromKvSim / FromSynthetic); got " +
        std::to_string(s.sources_set));
  }
  auto impl = std::make_unique<Pipeline::Impl>();
  impl->options = s.options;
  impl->gold = s.gold;
  impl->executor = s.executor;
  impl->timers = s.timers;
  impl->progress = std::move(s.progress);

  switch (s.kind) {
    case SourceKind::kOwnedDataset:
      impl->owned_dataset = std::move(s.owned_dataset);
      impl->dataset = &impl->owned_dataset;
      impl->dataset_owned = true;
      break;
    case SourceKind::kBorrowedDataset:
      if (s.borrowed == nullptr) {
        return Status::InvalidArgument("FromDataset received a null dataset");
      }
      impl->dataset = s.borrowed;
      break;
    case SourceKind::kTsv: {
      StatusOr<extract::RawDataset> data = io::ReadRawDataset(s.tsv_path);
      if (!data.ok()) return data.status();
      impl->owned_dataset = std::move(*data);
      impl->dataset = &impl->owned_dataset;
      impl->dataset_owned = true;
      break;
    }
    case SourceKind::kKvSim: {
      StatusOr<exp::KvSimData> kv = exp::BuildKvSim(s.kv_config);
      if (!kv.ok()) return kv.status();
      // Heap-pin the world first: the gold standard holds references into it.
      impl->kv = std::make_unique<exp::KvSimData>(std::move(*kv));
      impl->dataset = &impl->kv->data;
      if (impl->gold == nullptr) {
        impl->owned_gold = std::make_unique<eval::GoldStandard>(
            impl->kv->partial_kb, impl->kv->corpus.world());
        impl->gold = impl->owned_gold.get();
      }
      break;
    }
    case SourceKind::kSynthetic: {
      exp::SyntheticData synthetic =
          exp::GenerateSynthetic(s.synthetic_config);
      impl->owned_dataset = std::move(synthetic.data);
      impl->dataset = &impl->owned_dataset;
      impl->dataset_owned = true;
      break;
    }
    case SourceKind::kNone:
      return Status::Internal("unreachable: no dataset source");
  }
  KBT_RETURN_IF_ERROR(io::ValidateRawDataset(*impl->dataset));
  return Pipeline(std::move(impl));
}

}  // namespace kbt::api
