#include "kbt/obs.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace kbt::obs {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Bucket edges
// ---------------------------------------------------------------------------

std::vector<double> LogBucketEdges(double lo, double hi, int per_decade) {
  std::vector<double> edges;
  if (!(lo > 0.0) || !(hi > lo) || per_decade <= 0) return edges;
  // Regenerate each edge from the exponent instead of multiplying up, so
  // the edges are bit-identical regardless of how many precede them.
  const double log_lo = std::log10(lo);
  for (int k = 0;; ++k) {
    const double edge =
        std::pow(10.0, log_lo + static_cast<double>(k) / per_decade);
    edges.push_back(edge);
    if (edge >= hi * (1.0 - 1e-12)) break;
  }
  return edges;
}

std::vector<double> LatencyBucketEdges() {
  // 1 ns .. 1000 s, four buckets per decade: quantile estimates are exact
  // to within 10^(1/4) ~ 1.78x anywhere in the 12-decade span.
  return LogBucketEdges(1e-9, 1e3, 4);
}

size_t BucketIndexFor(const std::vector<double>& edges, double value) {
  // Bucket i covers [edges[i], edges[i+1]); the final bucket catches
  // >= edges.back(); values below edges.front() clamp into bucket 0.
  auto it = std::upper_bound(edges.begin(), edges.end(), value);
  if (it == edges.begin()) return 0;
  return static_cast<size_t>(std::distance(edges.begin(), it)) - 1;
}

namespace {

/// Formats a double compactly and deterministically: integers (within the
/// exactly-representable range) print without a fraction, everything else
/// as shortest %.9g. Shared by the Prometheus and JSON renderers so golden
/// files stay stable.
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string BucketLabelFor(const std::vector<double>& edges, size_t i) {
  if (i + 1 >= edges.size()) {
    return ">=" + FormatNumber(edges.back());
  }
  return "[" + FormatNumber(edges[i]) + "," + FormatNumber(edges[i + 1]) +
         ")";
}

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

double HistogramSnapshot::Fraction(size_t i) const {
  if (total_weight <= 0.0 || i >= counts.size()) return 0.0;
  return counts[i] / total_weight;
}

double HistogramSnapshot::Quantile(double q) const {
  if (samples == 0 || total_weight <= 0.0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max_value;
  const double target = q * total_weight;
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] <= 0.0) continue;
    if (cumulative + counts[i] >= target) {
      const double lower = edges[i];
      // The open-ended final bucket has no upper edge: use the observed
      // maximum as its extent (exact when all its mass is one value).
      const double upper =
          (i + 1 < edges.size()) ? edges[i + 1] : std::max(max_value, lower);
      const double within =
          counts[i] > 0.0 ? (target - cumulative) / counts[i] : 0.0;
      const double estimate = lower + (upper - lower) * within;
      // Never estimate outside the observed range.
      return std::clamp(estimate, min_value, max_value);
    }
    cumulative += counts[i];
  }
  return max_value;
}

bool HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (edges != other.edges || counts.size() != other.counts.size()) {
    return false;
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  total_weight += other.total_weight;
  weighted_sum += other.weighted_sum;
  if (other.samples > 0) {
    min_value = samples > 0 ? std::min(min_value, other.min_value)
                            : other.min_value;
    max_value = samples > 0 ? std::max(max_value, other.max_value)
                            : other.max_value;
  }
  samples += other.samples;
  return true;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

void AtomicAddDouble(std::atomic<double>& slot, double delta) {
  double current = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value < current && !slot.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& slot, double value) {
  double current = slot.load(std::memory_order_relaxed);
  while (value > current && !slot.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)),
      counts_(edges_.size()),
      min_value_(std::numeric_limits<double>::infinity()),
      max_value_(-std::numeric_limits<double>::infinity()) {
  for (auto& c : counts_) c.store(0.0, std::memory_order_relaxed);
}

Histogram::Histogram(const Histogram& other) : Histogram(other.edges_) {
  *this = other;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  // Racy-snapshot copy: each word read relaxed. Copies are an
  // analysis-time convenience; registered metrics are never copied.
  edges_ = other.edges_;
  std::vector<std::atomic<double>> counts(edges_.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i].store(other.counts_[i].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  counts_ = std::move(counts);
  total_weight_.store(other.total_weight_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  weighted_sum_.store(other.weighted_sum_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  samples_.store(other.samples_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  min_value_.store(other.min_value_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  max_value_.store(other.max_value_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return *this;
}

void Histogram::Add(double value, double weight) {
  const size_t bucket = BucketIndexFor(edges_, value);
  AtomicAddDouble(counts_[bucket], weight);
  AtomicAddDouble(total_weight_, weight);
  AtomicAddDouble(weighted_sum_, value * weight);
  samples_.fetch_add(1, std::memory_order_relaxed);
  AtomicMinDouble(min_value_, value);
  AtomicMaxDouble(max_value_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.edges = edges_;
  snap.counts.resize(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.total_weight = total_weight_.load(std::memory_order_relaxed);
  snap.weighted_sum = weighted_sum_.load(std::memory_order_relaxed);
  snap.samples = samples_.load(std::memory_order_relaxed);
  if (snap.samples > 0) {
    snap.min_value = min_value_.load(std::memory_order_relaxed);
    snap.max_value = max_value_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Clear() {
  for (auto& c : counts_) c.store(0.0, std::memory_order_relaxed);
  total_weight_.store(0.0, std::memory_order_relaxed);
  weighted_sum_.store(0.0, std::memory_order_relaxed);
  samples_.store(0, std::memory_order_relaxed);
  min_value_.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
  max_value_.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
}

double Histogram::bucket_count(size_t i) const {
  return i < counts_.size() ? counts_[i].load(std::memory_order_relaxed)
                            : 0.0;
}

double Histogram::bucket_upper(size_t i) const {
  return i + 1 < edges_.size() ? edges_[i + 1]
                               : std::numeric_limits<double>::infinity();
}

double Histogram::total_weight() const {
  return total_weight_.load(std::memory_order_relaxed);
}

double Histogram::Fraction(size_t i) const {
  const double total = total_weight();
  if (total <= 0.0) return 0.0;
  return bucket_count(i) / total;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string LabelKey(const Labels& sorted) {
  std::string key;
  for (const auto& [k, v] : sorted) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

struct MetricsRegistry::Entry {
  std::string name;
  Labels labels;  // sorted
  std::string label_key;
  MetricType type;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, const Labels& labels, MetricType type,
    std::vector<double>* edges) {
  Labels sorted = SortedLabels(labels);
  const std::string label_key = LabelKey(sorted);
  MutexLock lock(mutex_);
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->label_key == label_key) {
      if (entry->type != type) {
        // Programming error; never crash the host over a metric.
        std::fprintf(stderr,
                     "kbt::obs: metric '%s' requested as %s but registered "
                     "as %s; returning a detached dummy\n",
                     name.c_str(), TypeName(type), TypeName(entry->type));
        return nullptr;
      }
      return entry.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(sorted);
  entry->label_key = label_key;
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<Histogram>(
          (edges != nullptr && !edges->empty()) ? std::move(*edges)
                                                : LatencyBucketEdges());
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  Entry* entry = FindOrCreate(name, labels, MetricType::kCounter, nullptr);
  if (entry != nullptr) return entry->counter.get();
  static Counter* dummy = new Counter();  // detached type-mismatch sink
  return dummy;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  Entry* entry = FindOrCreate(name, labels, MetricType::kGauge, nullptr);
  if (entry != nullptr) return entry->gauge.get();
  static Gauge* dummy = new Gauge();
  return dummy;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         std::vector<double> edges) {
  Entry* entry = FindOrCreate(name, labels, MetricType::kHistogram, &edges);
  if (entry != nullptr) return entry->histogram.get();
  static Histogram* dummy = new Histogram(LatencyBucketEdges());
  return dummy;
}

size_t MetricsRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::ResetValues() {
  MutexLock lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->type) {
      case MetricType::kCounter:
        entry->counter->Reset();
        break;
      case MetricType::kGauge:
        entry->gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry->histogram->Clear();
        break;
    }
  }
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  {
    MutexLock lock(mutex_);
    snap.metrics.reserve(entries_.size());
    for (const auto& entry : entries_) {
      MetricSnapshot m;
      m.name = entry->name;
      m.labels = entry->labels;
      m.type = entry->type;
      switch (entry->type) {
        case MetricType::kCounter:
          m.counter_value = entry->counter->Value();
          break;
        case MetricType::kGauge:
          m.gauge_value = entry->gauge->Value();
          break;
        case MetricType::kHistogram:
          m.histogram = entry->histogram->Snapshot();
          break;
      }
      snap.metrics.push_back(std::move(m));
    }
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

// ---------------------------------------------------------------------------
// RegistrySnapshot
// ---------------------------------------------------------------------------

const MetricSnapshot* RegistrySnapshot::Find(const std::string& name,
                                             const Labels& labels) const {
  const Labels sorted = SortedLabels(labels);
  for (const auto& m : metrics) {
    if (m.name == name && m.labels == sorted) return &m;
  }
  return nullptr;
}

bool RegistrySnapshot::MergeFrom(const RegistrySnapshot& other) {
  bool ok = true;
  for (const auto& theirs : other.metrics) {
    MetricSnapshot* mine = nullptr;
    for (auto& m : metrics) {
      if (m.name == theirs.name && m.labels == theirs.labels) {
        mine = &m;
        break;
      }
    }
    if (mine == nullptr) {
      metrics.push_back(theirs);
      continue;
    }
    if (mine->type != theirs.type) {
      ok = false;
      continue;
    }
    switch (mine->type) {
      case MetricType::kCounter:
        mine->counter_value += theirs.counter_value;
        break;
      case MetricType::kGauge:
        mine->gauge_value += theirs.gauge_value;
        break;
      case MetricType::kHistogram:
        ok = mine->histogram.MergeFrom(theirs.histogram) && ok;
        break;
    }
  }
  std::sort(metrics.begin(), metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return ok;
}

namespace {

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders {k="v",...} including the braces; empty labels render nothing.
/// `extra` appends one preformatted pair (the histogram le= bound).
std::string PromLabelBlock(const Labels& labels,
                           const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

}  // namespace

std::string RegistrySnapshot::RenderPrometheus() const {
  std::string out;
  std::string last_family;
  for (const auto& m : metrics) {
    if (m.name != last_family) {
      out += "# TYPE " + m.name + " " + TypeName(m.type) + "\n";
      last_family = m.name;
    }
    switch (m.type) {
      case MetricType::kCounter:
        out += m.name + PromLabelBlock(m.labels) + " " +
               FormatNumber(static_cast<double>(m.counter_value)) + "\n";
        break;
      case MetricType::kGauge:
        out += m.name + PromLabelBlock(m.labels) + " " +
               FormatNumber(m.gauge_value) + "\n";
        break;
      case MetricType::kHistogram: {
        // Prometheus histograms are cumulative with an upper-bound label:
        // bucket i's le is edges[i+1]; the catch-all is le="+Inf".
        double cumulative = 0.0;
        for (size_t i = 0; i < m.histogram.counts.size(); ++i) {
          cumulative += m.histogram.counts[i];
          const std::string le =
              (i + 1 < m.histogram.edges.size())
                  ? FormatNumber(m.histogram.edges[i + 1])
                  : "+Inf";
          out += m.name + "_bucket" +
                 PromLabelBlock(m.labels, "le=\"" + le + "\"") + " " +
                 FormatNumber(cumulative) + "\n";
        }
        out += m.name + "_sum" + PromLabelBlock(m.labels) + " " +
               FormatNumber(m.histogram.weighted_sum) + "\n";
        out += m.name + "_count" + PromLabelBlock(m.labels) + " " +
               FormatNumber(m.histogram.total_weight) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string RegistrySnapshot::RenderJson() const {
  std::ostringstream out;
  out << "{\n  \"metrics\": [";
  bool first_metric = true;
  for (const auto& m : metrics) {
    out << (first_metric ? "\n" : ",\n");
    first_metric = false;
    out << "    {\"name\": \"" << EscapeJson(m.name) << "\", \"type\": \""
        << TypeName(m.type) << "\", \"labels\": {";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out << ", ";
      first_label = false;
      out << "\"" << EscapeJson(k) << "\": \"" << EscapeJson(v) << "\"";
    }
    out << "}";
    switch (m.type) {
      case MetricType::kCounter:
        out << ", \"value\": "
            << FormatNumber(static_cast<double>(m.counter_value));
        break;
      case MetricType::kGauge:
        out << ", \"value\": " << FormatNumber(m.gauge_value);
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        out << ", \"count\": " << FormatNumber(h.total_weight)
            << ", \"samples\": "
            << FormatNumber(static_cast<double>(h.samples))
            << ", \"sum\": " << FormatNumber(h.weighted_sum);
        if (h.samples > 0) {
          out << ", \"min\": " << FormatNumber(h.min_value)
              << ", \"max\": " << FormatNumber(h.max_value)
              << ", \"p50\": " << FormatNumber(h.Quantile(0.50))
              << ", \"p90\": " << FormatNumber(h.Quantile(0.90))
              << ", \"p99\": " << FormatNumber(h.Quantile(0.99));
        }
        out << ", \"buckets\": [";
        bool first_bucket = true;
        for (size_t i = 0; i < h.counts.size(); ++i) {
          if (h.counts[i] <= 0.0) continue;  // sparse: skip empty buckets
          if (!first_bucket) out << ", ";
          first_bucket = false;
          const std::string le = (i + 1 < h.edges.size())
                                     ? FormatNumber(h.edges[i + 1])
                                     : "\"+Inf\"";
          out << "{\"le\": " << le
              << ", \"count\": " << FormatNumber(h.counts[i]) << "}";
        }
        out << "]";
        break;
      }
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace kbt::obs
