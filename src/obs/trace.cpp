#include <algorithm>
#include <cstdio>

#include "kbt/obs.h"

namespace kbt::obs {

/// One thread's fixed-capacity span ring. Owned jointly by the recorder
/// (for Snapshot after the thread exits) and a thread_local handle (for
/// pushes); a per-ring mutex keeps pushes and snapshots race-free without
/// touching other threads' rings.
struct TraceRecorder::Ring {
  explicit Ring(size_t capacity, uint32_t thread_index)
      : capacity(capacity), thread_index(thread_index) {
    slots.resize(capacity);
  }

  Mutex mutex;
  std::vector<TraceEvent> slots KBT_GUARDED_BY(mutex);
  /// Total pushes ever; slot (pushed - 1) % capacity is the newest span.
  uint64_t pushed KBT_GUARDED_BY(mutex) = 0;
  const size_t capacity;
  const uint32_t thread_index;

  void Push(TraceEvent event) {
    MutexLock lock(mutex);
    slots[pushed % capacity] = std::move(event);
    ++pushed;
  }
};

namespace {

/// The innermost open span on this thread; spans link to it implicitly.
thread_local uint64_t t_current_span_id = 0;

}  // namespace

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::SetRingCapacity(size_t spans) {
  MutexLock lock(mutex_);
  ring_capacity_ = std::max<size_t>(1, spans);
}

TraceRecorder::Ring* TraceRecorder::ThreadRing() {
  thread_local std::shared_ptr<Ring> t_ring;
  if (t_ring == nullptr) {
    MutexLock lock(mutex_);
    t_ring = std::make_shared<Ring>(ring_capacity_,
                                    static_cast<uint32_t>(rings_.size()));
    rings_.push_back(t_ring);
  }
  return t_ring.get();
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(mutex_);
    rings = rings_;
  }
  std::vector<TraceEvent> events;
  for (const auto& ring : rings) {
    MutexLock lock(ring->mutex);
    const uint64_t retained =
        std::min<uint64_t>(ring->pushed, ring->capacity);
    const uint64_t oldest = ring->pushed - retained;
    for (uint64_t seq = oldest; seq < ring->pushed; ++seq) {
      events.push_back(ring->slots[seq % ring->capacity]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });
  return events;
}

void TraceRecorder::Clear() {
  MutexLock lock(mutex_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mutex);
    ring->pushed = 0;
  }
}

uint64_t TraceRecorder::spans_recorded() const {
  return spans_recorded_.load(std::memory_order_relaxed);
}

std::string TraceRecorder::RenderChromeTrace() const {
  // Chrome trace-event JSON: complete ("ph":"X") events with microsecond
  // ts/dur. Loads in chrome://tracing and https://ui.perfetto.dev.
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[160];
  for (const auto& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"";
    for (char c : e.name) {  // span names are identifiers; escape anyway
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    std::snprintf(buf, sizeof(buf),
                  "\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                  "\"pid\": 1, \"tid\": %u, \"args\": {\"id\": %llu, "
                  "\"parent\": %llu}}",
                  static_cast<double>(e.start_ns) / 1000.0,
                  static_cast<double>(e.duration_ns) / 1000.0,
                  e.thread_index,
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent_id));
    out += buf;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

TraceSpan::TraceSpan(std::string_view name)
    : TraceSpan(name, t_current_span_id) {}

TraceSpan::TraceSpan(std::string_view name, uint64_t parent_id) {
  if (!TracingEnabled()) return;  // one relaxed load + branch when off
  TraceRecorder& recorder = TraceRecorder::Default();
  name_.assign(name.data(), name.size());
  id_ = recorder.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = parent_id;
  start_ns_ = MonotonicNanos();
  active_ = true;
  t_current_span_id = id_;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceRecorder& recorder = TraceRecorder::Default();
  TraceEvent event;
  event.name = std::move(name_);
  event.id = id_;
  event.parent_id = parent_id_;
  event.start_ns = start_ns_;
  event.duration_ns = MonotonicNanos() - start_ns_;
  TraceRecorder::Ring* ring = recorder.ThreadRing();
  event.thread_index = ring->thread_index;
  ring->Push(std::move(event));
  recorder.spans_recorded_.fetch_add(1, std::memory_order_relaxed);
  // Restore the enclosing span as this thread's innermost. (If spans are
  // destroyed out of declaration order the link degrades gracefully to
  // the recorded parent.)
  t_current_span_id = parent_id_;
}

uint64_t TraceSpan::CurrentId() { return t_current_span_id; }

}  // namespace kbt::obs
