#ifndef KBT_GRANULARITY_ASSIGNMENTS_H_
#define KBT_GRANULARITY_ASSIGNMENTS_H_

#include <cstddef>
#include <memory>

#include "common/status.h"
#include "dataflow/stage_timer.h"
#include "extract/observation_matrix.h"
#include "extract/raw_dataset.h"
#include "granularity/split_merge.h"

namespace kbt::granularity {

/// Builders producing the GroupAssignment consumed by
/// extract::CompiledMatrix. They decide what a "web source" w and an
/// "extractor" e mean for one inference run (Section 4).

/// The paper's finest granularity (the MULTILAYER default of Section 5.1.2):
/// source = <website, predicate, webpage>,
/// extractor = <extractor, pattern, predicate, website>.
extract::GroupAssignment FinestAssignment(const extract::RawDataset& data);

/// Plain granularity for small studies and the motivating example:
/// source = webpage, extractor = extraction system. This matches the setup
/// of Tables 2-4 where E1..E5 are whole extractors and W1..W8 whole pages.
extract::GroupAssignment PageSourcePlainExtractor(
    const extract::RawDataset& data);

/// Coarse source granularity: source = website, extractor = extraction
/// system (used for website-level KBT reports).
extract::GroupAssignment WebsiteSourceAssignment(
    const extract::RawDataset& data);

/// The single-layer baseline's provenance grouping (Section 5.1.2): each
/// "source" is the 4-tuple <extractor, website, predicate, pattern>; the
/// extraction layer is unused (one dummy extractor group).
extract::GroupAssignment ProvenanceAssignment(const extract::RawDataset& data);

/// Algorithm 2 applied to both hierarchies starting from the finest
/// granularity. `source_options`/`extractor_options` carry (m, M) per side;
/// set enable_merge=false for the Table 7 "Split" column. When `timers` is
/// non-null, preparation costs are recorded under "Prep.Source" and
/// "Prep.Extractor".
StatusOr<extract::GroupAssignment> SplitMergeAssignment(
    const extract::RawDataset& data, const SplitMergeOptions& source_options,
    const SplitMergeOptions& extractor_options,
    dataflow::StageTimers* timers = nullptr);

/// The grouping rules that depend only on each observation's own fields —
/// everything except SPLITANDMERGE, whose buckets depend on group sizes and
/// therefore shift when data is appended.
enum class StatelessGranularity {
  kFinest = 0,
  kPageSource = 1,
  kWebsiteSource = 2,
  kProvenance = 3,
};

/// Incremental, group-id-stable assignment builder behind the stateless
/// granularities. Group ids are assigned in first-visit order over the
/// observation stream, so extending an assignment with a delta yields
/// *exactly* the assignment a from-scratch build over the grown dataset
/// would produce: existing observations keep their group ids, existing
/// groups keep their metadata, and new groups take the next dense ids.
/// (The batch builders above are implemented on this class, which is what
/// makes the equivalence hold by construction.)
///
/// One extender serves one logical assignment: pass the same GroupAssignment
/// to every Extend call, interleaved only with appends to the dataset.
class AssignmentExtender {
 public:
  explicit AssignmentExtender(StatelessGranularity kind);
  ~AssignmentExtender();
  AssignmentExtender(AssignmentExtender&&) noexcept;
  AssignmentExtender& operator=(AssignmentExtender&&) noexcept;

  /// Appends group assignments for observations [consumed(), data.size())
  /// to `out`, growing the group tables as new groups appear. Entries
  /// already in `out` are never modified.
  Status Extend(const extract::RawDataset& data,
                extract::GroupAssignment* out);

  /// Number of observations consumed so far.
  size_t consumed() const { return consumed_; }
  StatelessGranularity kind() const { return kind_; }

 private:
  struct State;
  StatelessGranularity kind_;
  size_t consumed_ = 0;
  std::unique_ptr<State> state_;
};

}  // namespace kbt::granularity

#endif  // KBT_GRANULARITY_ASSIGNMENTS_H_
