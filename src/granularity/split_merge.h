#ifndef KBT_GRANULARITY_SPLIT_MERGE_H_
#define KBT_GRANULARITY_SPLIT_MERGE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace kbt::granularity {

/// One finest-granularity node of a source/extractor hierarchy, described by
/// the chain of keys from root to leaf (e.g. for sources:
/// path = {website, predicate, webpage}; for extractors:
/// path = {extractor, pattern, predicate, website}), holding the atoms
/// (triple slots / extraction events) that belong to it. Leaves with equal
/// paths must be pre-merged by the caller.
struct LeafNode {
  std::vector<uint64_t> path;
  std::vector<uint64_t> atoms;
};

/// Metadata of one output group of SPLITANDMERGE.
struct GroupMeta {
  /// Hierarchy level of the node this group came from: path_prefix.size()-1.
  /// A leaf-level group has level = depth-1; a fully merged group has 0.
  int level = 0;
  /// Keys from the root down to the node (length level+1).
  std::vector<uint64_t> path_prefix;
  /// Which split bucket this group is (0 when the node was not split).
  uint32_t bucket = 0;
  /// Total buckets the node was split into (1 when not split).
  uint32_t num_buckets = 1;
  /// Number of atoms in this group.
  uint32_t size = 0;
};

/// Output of SPLITANDMERGE: a partition of all atoms into groups.
struct SplitMergeResult {
  uint32_t num_groups = 0;
  /// atom id -> final group id.
  std::unordered_map<uint64_t, uint32_t> atom_group;
  std::vector<GroupMeta> groups;
};

/// Options for one side (sources or extractors) of Algorithm 2.
struct SplitMergeOptions {
  /// m: nodes smaller than this merge into their parent.
  size_t min_size = 5;
  /// M: nodes larger than this split into ceil(size/M) balanced buckets.
  size_t max_size = 10000;
  /// Disables merging (the Table 7 "Split" column applies splits only).
  bool enable_merge = true;
  /// Disables splitting.
  bool enable_split = true;
  uint64_t seed = 99;
};

/// The paper's Algorithm 2 (SPLITANDMERGE), processed level by level from
/// the finest granularity to the root:
///  * a node larger than M is split into ceil(size/M) equal buckets by
///    uniformly distributing its atoms (Example 4.2 ends with two buckets of
///    500);
///  * a node smaller than m is merged into its parent (children sharing a
///    parent combine); at the root it is kept as-is;
///  * nodes in [m, M] become groups unchanged.
/// All leaves must share the same path depth.
StatusOr<SplitMergeResult> SplitAndMerge(const std::vector<LeafNode>& leaves,
                                         const SplitMergeOptions& options);

}  // namespace kbt::granularity

#endif  // KBT_GRANULARITY_SPLIT_MERGE_H_
