#include "granularity/assignments.h"

#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>

namespace kbt::granularity {

namespace {

using extract::ExtractorScope;
using extract::GroupAssignment;
using extract::kAnyScope;
using extract::RawDataset;
using extract::RawObservation;
using extract::SourceGroupInfo;

/// Dense-id interning over arbitrary ordered tuples.
template <typename Key>
class KeyInterner {
 public:
  uint32_t Intern(const Key& key) {
    const auto [it, inserted] =
        index_.emplace(key, static_cast<uint32_t>(index_.size()));
    (void)inserted;
    return it->second;
  }
  size_t size() const { return index_.size(); }
  const std::map<Key, uint32_t>& index() const { return index_; }

 private:
  std::map<Key, uint32_t> index_;
};

}  // namespace

GroupAssignment FinestAssignment(const RawDataset& data) {
  GroupAssignment out;
  out.observation_source.resize(data.size());
  out.observation_extractor.resize(data.size());

  using SourceKey = std::tuple<uint32_t, uint32_t, uint32_t>;  // site,pred,page
  using ExtractorKey =
      std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>;  // e,pat,pred,site
  KeyInterner<SourceKey> sources;
  KeyInterner<ExtractorKey> extractors;

  for (size_t i = 0; i < data.size(); ++i) {
    const RawObservation& o = data.observations[i];
    const uint32_t pred = kb::DataItemPredicate(o.item);
    const uint32_t src =
        sources.Intern(SourceKey{o.website, pred, o.page});
    const uint32_t ext = extractors.Intern(
        ExtractorKey{o.extractor, o.pattern, pred, o.website});
    out.observation_source[i] = src;
    out.observation_extractor[i] = ext;
  }

  out.num_source_groups = static_cast<uint32_t>(sources.size());
  out.source_infos.resize(out.num_source_groups);
  for (const auto& [key, id] : sources.index()) {
    out.source_infos[id].website = std::get<0>(key);
  }
  out.num_extractor_groups = static_cast<uint32_t>(extractors.size());
  out.extractor_scopes.resize(out.num_extractor_groups);
  for (const auto& [key, id] : extractors.index()) {
    out.extractor_scopes[id].predicate = std::get<2>(key);
    out.extractor_scopes[id].website = std::get<3>(key);
  }
  return out;
}

GroupAssignment PageSourcePlainExtractor(const RawDataset& data) {
  GroupAssignment out;
  out.observation_source.resize(data.size());
  out.observation_extractor.resize(data.size());

  KeyInterner<uint32_t> sources;
  KeyInterner<uint32_t> extractors;
  std::vector<uint32_t> source_site;
  for (size_t i = 0; i < data.size(); ++i) {
    const RawObservation& o = data.observations[i];
    const uint32_t src = sources.Intern(o.page);
    if (src >= source_site.size()) source_site.push_back(o.website);
    out.observation_source[i] = src;
    out.observation_extractor[i] = extractors.Intern(o.extractor);
  }
  out.num_source_groups = static_cast<uint32_t>(sources.size());
  out.source_infos.resize(out.num_source_groups);
  for (const auto& [page, id] : sources.index()) {
    (void)page;
    out.source_infos[id].website = source_site[id];
  }
  out.num_extractor_groups = static_cast<uint32_t>(extractors.size());
  out.extractor_scopes.assign(out.num_extractor_groups, ExtractorScope{});
  return out;
}

GroupAssignment WebsiteSourceAssignment(const RawDataset& data) {
  GroupAssignment out;
  out.observation_source.resize(data.size());
  out.observation_extractor.resize(data.size());

  KeyInterner<uint32_t> sources;
  KeyInterner<uint32_t> extractors;
  for (size_t i = 0; i < data.size(); ++i) {
    const RawObservation& o = data.observations[i];
    out.observation_source[i] = sources.Intern(o.website);
    out.observation_extractor[i] = extractors.Intern(o.extractor);
  }
  out.num_source_groups = static_cast<uint32_t>(sources.size());
  out.source_infos.resize(out.num_source_groups);
  for (const auto& [site, id] : sources.index()) {
    out.source_infos[id].website = site;
  }
  out.num_extractor_groups = static_cast<uint32_t>(extractors.size());
  out.extractor_scopes.assign(out.num_extractor_groups, ExtractorScope{});
  return out;
}

GroupAssignment ProvenanceAssignment(const RawDataset& data) {
  GroupAssignment out;
  out.observation_source.resize(data.size());
  out.observation_extractor.assign(data.size(), 0);

  using ProvKey = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>;
  KeyInterner<ProvKey> provenances;
  for (size_t i = 0; i < data.size(); ++i) {
    const RawObservation& o = data.observations[i];
    const uint32_t pred = kb::DataItemPredicate(o.item);
    out.observation_source[i] = provenances.Intern(
        ProvKey{o.extractor, o.website, pred, o.pattern});
  }
  out.num_source_groups = static_cast<uint32_t>(provenances.size());
  out.source_infos.resize(out.num_source_groups);
  for (const auto& [key, id] : provenances.index()) {
    out.source_infos[id].website = std::get<1>(key);
  }
  out.num_extractor_groups = 1;
  out.extractor_scopes.assign(1, ExtractorScope{});
  return out;
}

StatusOr<GroupAssignment> SplitMergeAssignment(
    const RawDataset& data, const SplitMergeOptions& source_options,
    const SplitMergeOptions& extractor_options,
    dataflow::StageTimers* timers) {
  GroupAssignment out;
  out.observation_source.resize(data.size());
  out.observation_extractor.resize(data.size());

  // ---------- Source side ----------
  {
    std::unique_ptr<dataflow::StageTimers::Scope> scope;
    if (timers != nullptr) {
      scope = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                             "Prep.Source");
    }
    // Atoms are distinct (leaf, item, value) slots; observations reference
    // their atom so they can follow it to its final group.
    using LeafKey = std::tuple<uint32_t, uint32_t, uint32_t>;  // site,pred,page
    using AtomKey = std::tuple<uint32_t, uint64_t, uint32_t>;  // leaf,item,val
    KeyInterner<LeafKey> leaf_ids;
    std::map<AtomKey, uint64_t> atom_ids;
    std::vector<uint64_t> observation_atom(data.size());
    std::vector<std::vector<uint64_t>> leaf_atoms;
    std::vector<LeafKey> leaf_keys;

    for (size_t i = 0; i < data.size(); ++i) {
      const RawObservation& o = data.observations[i];
      const uint32_t pred = kb::DataItemPredicate(o.item);
      const LeafKey lkey{o.website, pred, o.page};
      const uint32_t leaf = leaf_ids.Intern(lkey);
      if (leaf >= leaf_atoms.size()) {
        leaf_atoms.emplace_back();
        leaf_keys.push_back(lkey);
      }
      const AtomKey akey{leaf, o.item, o.value};
      const auto [it, inserted] =
          atom_ids.emplace(akey, static_cast<uint64_t>(atom_ids.size()));
      if (inserted) leaf_atoms[leaf].push_back(it->second);
      observation_atom[i] = it->second;
    }

    std::vector<LeafNode> leaves(leaf_atoms.size());
    for (size_t l = 0; l < leaf_atoms.size(); ++l) {
      leaves[l].path = {std::get<0>(leaf_keys[l]), std::get<1>(leaf_keys[l]),
                        std::get<2>(leaf_keys[l])};
      leaves[l].atoms = std::move(leaf_atoms[l]);
    }
    StatusOr<SplitMergeResult> result = SplitAndMerge(leaves, source_options);
    if (!result.ok()) return result.status();

    out.num_source_groups = result->num_groups;
    out.source_infos.resize(result->num_groups);
    for (uint32_t g = 0; g < result->num_groups; ++g) {
      out.source_infos[g].website =
          static_cast<uint32_t>(result->groups[g].path_prefix[0]);
    }
    for (size_t i = 0; i < data.size(); ++i) {
      out.observation_source[i] = result->atom_group.at(observation_atom[i]);
    }
  }

  // ---------- Extractor side ----------
  {
    std::unique_ptr<dataflow::StageTimers::Scope> scope;
    if (timers != nullptr) {
      scope = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                             "Prep.Extractor");
    }
    using LeafKey = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>;
    std::map<LeafKey, std::vector<uint64_t>> leaf_atoms;
    for (size_t i = 0; i < data.size(); ++i) {
      const RawObservation& o = data.observations[i];
      const uint32_t pred = kb::DataItemPredicate(o.item);
      leaf_atoms[LeafKey{o.extractor, o.pattern, pred, o.website}].push_back(
          static_cast<uint64_t>(i));
    }
    std::vector<LeafNode> leaves;
    leaves.reserve(leaf_atoms.size());
    for (auto& [key, atoms] : leaf_atoms) {
      LeafNode leaf;
      leaf.path = {std::get<0>(key), std::get<1>(key), std::get<2>(key),
                   std::get<3>(key)};
      leaf.atoms = std::move(atoms);
      leaves.push_back(std::move(leaf));
    }
    StatusOr<SplitMergeResult> result =
        SplitAndMerge(leaves, extractor_options);
    if (!result.ok()) return result.status();

    out.num_extractor_groups = result->num_groups;
    out.extractor_scopes.resize(result->num_groups);
    for (uint32_t g = 0; g < result->num_groups; ++g) {
      const GroupMeta& meta = result->groups[g];
      ExtractorScope& scope_out = out.extractor_scopes[g];
      // path = {extractor, pattern, predicate, website}: level 3 scopes to
      // (predicate, website); level 2 to (predicate, any); below that the
      // group covers everything.
      if (meta.level >= 2) {
        scope_out.predicate = static_cast<uint32_t>(meta.path_prefix[2]);
      }
      if (meta.level >= 3) {
        scope_out.website = static_cast<uint32_t>(meta.path_prefix[3]);
      }
      scope_out.absence_weight = 1.0 / static_cast<double>(meta.num_buckets);
    }
    for (size_t i = 0; i < data.size(); ++i) {
      out.observation_extractor[i] =
          result->atom_group.at(static_cast<uint64_t>(i));
    }
  }

  return out;
}

}  // namespace kbt::granularity
