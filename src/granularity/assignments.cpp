#include "granularity/assignments.h"

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>

namespace kbt::granularity {

namespace {

using extract::ExtractorScope;
using extract::GroupAssignment;
using extract::kAnyScope;
using extract::RawDataset;
using extract::RawObservation;
using extract::SourceGroupInfo;

/// Dense-id interning over arbitrary ordered tuples.
template <typename Key>
class KeyInterner {
 public:
  uint32_t Intern(const Key& key) {
    const auto [it, inserted] =
        index_.emplace(key, static_cast<uint32_t>(index_.size()));
    (void)inserted;
    return it->second;
  }
  size_t size() const { return index_.size(); }
  const std::map<Key, uint32_t>& index() const { return index_; }

 private:
  std::map<Key, uint32_t> index_;
};

}  // namespace

// ---------------------------------------------------------------------------
// AssignmentExtender — the single implementation behind the stateless
// builders. Ids are handed out in first-visit order over the observation
// stream and group metadata is appended at first visit, so processing a
// dataset in one pass or in arbitrary prefix/delta splits produces the
// identical GroupAssignment.
// ---------------------------------------------------------------------------

struct AssignmentExtender::State {
  // site,pred,page / e,pattern,pred,site (finest granularity).
  KeyInterner<std::tuple<uint32_t, uint32_t, uint32_t>> finest_sources;
  KeyInterner<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>>
      finest_extractors;
  // Single-field keys (page/website sources, plain extractors).
  KeyInterner<uint32_t> simple_sources;
  KeyInterner<uint32_t> simple_extractors;
  // e,site,pred,pattern (the provenance grouping).
  KeyInterner<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>> provenances;
};

AssignmentExtender::AssignmentExtender(StatelessGranularity kind)
    : kind_(kind), state_(std::make_unique<State>()) {}
AssignmentExtender::~AssignmentExtender() = default;
AssignmentExtender::AssignmentExtender(AssignmentExtender&&) noexcept = default;
AssignmentExtender& AssignmentExtender::operator=(
    AssignmentExtender&&) noexcept = default;

Status AssignmentExtender::Extend(const RawDataset& data,
                                  GroupAssignment* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("Extend requires a non-null assignment");
  }
  const size_t n = data.size();
  if (n < consumed_) {
    return Status::InvalidArgument(
        "dataset shrank beneath the extender's progress (consumed " +
        std::to_string(consumed_) + ", dataset has " + std::to_string(n) +
        ")");
  }
  if (out->observation_source.size() != consumed_ ||
      out->observation_extractor.size() != consumed_) {
    return Status::InvalidArgument(
        "assignment does not match this extender's progress: expected " +
        std::to_string(consumed_) + " assigned observations, found " +
        std::to_string(out->observation_source.size()));
  }

  out->observation_source.reserve(n);
  out->observation_extractor.reserve(n);
  if (kind_ == StatelessGranularity::kProvenance &&
      out->extractor_scopes.empty()) {
    // The provenance grouping has no extraction layer: one dummy group.
    out->extractor_scopes.push_back(ExtractorScope{});
  }

  for (size_t i = consumed_; i < n; ++i) {
    const RawObservation& o = data.observations[i];
    const uint32_t pred = kb::DataItemPredicate(o.item);
    uint32_t src = 0;
    uint32_t ext = 0;
    switch (kind_) {
      case StatelessGranularity::kFinest: {
        src = state_->finest_sources.Intern({o.website, pred, o.page});
        if (src == out->source_infos.size()) {
          out->source_infos.push_back(SourceGroupInfo{o.website});
        }
        ext = state_->finest_extractors.Intern(
            {o.extractor, o.pattern, pred, o.website});
        if (ext == out->extractor_scopes.size()) {
          ExtractorScope scope;
          scope.predicate = pred;
          scope.website = o.website;
          out->extractor_scopes.push_back(scope);
        }
        break;
      }
      case StatelessGranularity::kPageSource:
      case StatelessGranularity::kWebsiteSource: {
        const uint32_t key = kind_ == StatelessGranularity::kPageSource
                                 ? o.page
                                 : o.website;
        src = state_->simple_sources.Intern(key);
        if (src == out->source_infos.size()) {
          out->source_infos.push_back(SourceGroupInfo{o.website});
        }
        ext = state_->simple_extractors.Intern(o.extractor);
        if (ext == out->extractor_scopes.size()) {
          out->extractor_scopes.push_back(ExtractorScope{});
        }
        break;
      }
      case StatelessGranularity::kProvenance: {
        src = state_->provenances.Intern(
            {o.extractor, o.website, pred, o.pattern});
        if (src == out->source_infos.size()) {
          out->source_infos.push_back(SourceGroupInfo{o.website});
        }
        ext = 0;
        break;
      }
    }
    out->observation_source.push_back(src);
    out->observation_extractor.push_back(ext);
  }

  consumed_ = n;
  out->num_source_groups = static_cast<uint32_t>(out->source_infos.size());
  out->num_extractor_groups =
      static_cast<uint32_t>(out->extractor_scopes.size());
  return Status::OK();
}

namespace {

GroupAssignment BuildStateless(StatelessGranularity kind,
                               const RawDataset& data) {
  GroupAssignment out;
  AssignmentExtender extender(kind);
  // Cannot fail on a fresh assignment.
  (void)extender.Extend(data, &out);
  return out;
}

}  // namespace

GroupAssignment FinestAssignment(const RawDataset& data) {
  return BuildStateless(StatelessGranularity::kFinest, data);
}

GroupAssignment PageSourcePlainExtractor(const RawDataset& data) {
  return BuildStateless(StatelessGranularity::kPageSource, data);
}

GroupAssignment WebsiteSourceAssignment(const RawDataset& data) {
  return BuildStateless(StatelessGranularity::kWebsiteSource, data);
}

GroupAssignment ProvenanceAssignment(const RawDataset& data) {
  return BuildStateless(StatelessGranularity::kProvenance, data);
}

StatusOr<GroupAssignment> SplitMergeAssignment(
    const RawDataset& data, const SplitMergeOptions& source_options,
    const SplitMergeOptions& extractor_options,
    dataflow::StageTimers* timers) {
  GroupAssignment out;
  out.observation_source.resize(data.size());
  out.observation_extractor.resize(data.size());

  // ---------- Source side ----------
  {
    std::unique_ptr<dataflow::StageTimers::Scope> scope;
    if (timers != nullptr) {
      scope = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                             "Prep.Source");
    }
    // Atoms are distinct (leaf, item, value) slots; observations reference
    // their atom so they can follow it to its final group.
    using LeafKey = std::tuple<uint32_t, uint32_t, uint32_t>;  // site,pred,page
    using AtomKey = std::tuple<uint32_t, uint64_t, uint32_t>;  // leaf,item,val
    KeyInterner<LeafKey> leaf_ids;
    std::map<AtomKey, uint64_t> atom_ids;
    std::vector<uint64_t> observation_atom(data.size());
    std::vector<std::vector<uint64_t>> leaf_atoms;
    std::vector<LeafKey> leaf_keys;

    for (size_t i = 0; i < data.size(); ++i) {
      const RawObservation& o = data.observations[i];
      const uint32_t pred = kb::DataItemPredicate(o.item);
      const LeafKey lkey{o.website, pred, o.page};
      const uint32_t leaf = leaf_ids.Intern(lkey);
      if (leaf >= leaf_atoms.size()) {
        leaf_atoms.emplace_back();
        leaf_keys.push_back(lkey);
      }
      const AtomKey akey{leaf, o.item, o.value};
      const auto [it, inserted] =
          atom_ids.emplace(akey, static_cast<uint64_t>(atom_ids.size()));
      if (inserted) leaf_atoms[leaf].push_back(it->second);
      observation_atom[i] = it->second;
    }

    std::vector<LeafNode> leaves(leaf_atoms.size());
    for (size_t l = 0; l < leaf_atoms.size(); ++l) {
      leaves[l].path = {std::get<0>(leaf_keys[l]), std::get<1>(leaf_keys[l]),
                        std::get<2>(leaf_keys[l])};
      leaves[l].atoms = std::move(leaf_atoms[l]);
    }
    StatusOr<SplitMergeResult> result = SplitAndMerge(leaves, source_options);
    if (!result.ok()) return result.status();

    out.num_source_groups = result->num_groups;
    out.source_infos.resize(result->num_groups);
    for (uint32_t g = 0; g < result->num_groups; ++g) {
      out.source_infos[g].website =
          static_cast<uint32_t>(result->groups[g].path_prefix[0]);
    }
    for (size_t i = 0; i < data.size(); ++i) {
      out.observation_source[i] = result->atom_group.at(observation_atom[i]);
    }
  }

  // ---------- Extractor side ----------
  {
    std::unique_ptr<dataflow::StageTimers::Scope> scope;
    if (timers != nullptr) {
      scope = std::make_unique<dataflow::StageTimers::Scope>(*timers,
                                                             "Prep.Extractor");
    }
    using LeafKey = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>;
    std::map<LeafKey, std::vector<uint64_t>> leaf_atoms;
    for (size_t i = 0; i < data.size(); ++i) {
      const RawObservation& o = data.observations[i];
      const uint32_t pred = kb::DataItemPredicate(o.item);
      leaf_atoms[LeafKey{o.extractor, o.pattern, pred, o.website}].push_back(
          static_cast<uint64_t>(i));
    }
    std::vector<LeafNode> leaves;
    leaves.reserve(leaf_atoms.size());
    for (auto& [key, atoms] : leaf_atoms) {
      LeafNode leaf;
      leaf.path = {std::get<0>(key), std::get<1>(key), std::get<2>(key),
                   std::get<3>(key)};
      leaf.atoms = std::move(atoms);
      leaves.push_back(std::move(leaf));
    }
    StatusOr<SplitMergeResult> result =
        SplitAndMerge(leaves, extractor_options);
    if (!result.ok()) return result.status();

    out.num_extractor_groups = result->num_groups;
    out.extractor_scopes.resize(result->num_groups);
    for (uint32_t g = 0; g < result->num_groups; ++g) {
      const GroupMeta& meta = result->groups[g];
      ExtractorScope& scope_out = out.extractor_scopes[g];
      // path = {extractor, pattern, predicate, website}: level 3 scopes to
      // (predicate, website); level 2 to (predicate, any); below that the
      // group covers everything.
      if (meta.level >= 2) {
        scope_out.predicate = static_cast<uint32_t>(meta.path_prefix[2]);
      }
      if (meta.level >= 3) {
        scope_out.website = static_cast<uint32_t>(meta.path_prefix[3]);
      }
      scope_out.absence_weight = 1.0 / static_cast<double>(meta.num_buckets);
    }
    for (size_t i = 0; i < data.size(); ++i) {
      out.observation_extractor[i] =
          result->atom_group.at(static_cast<uint64_t>(i));
    }
  }

  return out;
}

}  // namespace kbt::granularity
