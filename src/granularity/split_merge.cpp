#include "granularity/split_merge.h"

#include <algorithm>
#include <map>

namespace kbt::granularity {

namespace {

/// Node accumulated during staged processing: a key-path prefix plus the
/// atoms gathered from its (possibly merged) descendants.
struct PendingNode {
  std::vector<uint64_t> path_prefix;
  std::vector<uint64_t> atoms;
};

void EmitGroup(SplitMergeResult& result, const PendingNode& node,
               uint32_t bucket, uint32_t num_buckets,
               const std::vector<uint64_t>& atoms) {
  const uint32_t group_id = result.num_groups++;
  GroupMeta meta;
  meta.level = static_cast<int>(node.path_prefix.size()) - 1;
  meta.path_prefix = node.path_prefix;
  meta.bucket = bucket;
  meta.num_buckets = num_buckets;
  meta.size = static_cast<uint32_t>(atoms.size());
  result.groups.push_back(std::move(meta));
  for (uint64_t atom : atoms) result.atom_group[atom] = group_id;
}

/// Splits `node` into ceil(size/M) balanced buckets (uniform random
/// distribution of atoms, exact balance via shuffled round-robin).
void SplitNode(SplitMergeResult& result, PendingNode& node, size_t max_size,
               Rng& rng) {
  const size_t size = node.atoms.size();
  const size_t num_buckets = (size + max_size - 1) / max_size;
  rng.Shuffle(node.atoms);
  std::vector<std::vector<uint64_t>> buckets(num_buckets);
  for (auto& b : buckets) b.reserve(size / num_buckets + 1);
  for (size_t i = 0; i < size; ++i) {
    buckets[i % num_buckets].push_back(node.atoms[i]);
  }
  for (size_t b = 0; b < num_buckets; ++b) {
    EmitGroup(result, node, static_cast<uint32_t>(b),
              static_cast<uint32_t>(num_buckets), buckets[b]);
  }
}

}  // namespace

StatusOr<SplitMergeResult> SplitAndMerge(const std::vector<LeafNode>& leaves,
                                         const SplitMergeOptions& options) {
  if (options.min_size > options.max_size) {
    return Status::InvalidArgument("min_size > max_size");
  }
  if (options.max_size == 0) {
    return Status::InvalidArgument("max_size must be positive");
  }
  if (leaves.empty()) return SplitMergeResult{};
  const size_t depth = leaves.front().path.size();
  if (depth == 0) return Status::InvalidArgument("empty leaf path");
  for (const LeafNode& leaf : leaves) {
    if (leaf.path.size() != depth) {
      return Status::InvalidArgument("leaves must share path depth");
    }
  }

  Rng rng(options.seed);
  SplitMergeResult result;

  // Stage `level` holds the nodes currently under examination at that level,
  // keyed by their path prefix (ordered map for determinism).
  std::map<std::vector<uint64_t>, PendingNode> current;
  for (const LeafNode& leaf : leaves) {
    PendingNode& node = current[leaf.path];
    if (node.path_prefix.empty()) node.path_prefix = leaf.path;
    node.atoms.insert(node.atoms.end(), leaf.atoms.begin(), leaf.atoms.end());
  }

  for (int level = static_cast<int>(depth) - 1; level >= 0; --level) {
    std::map<std::vector<uint64_t>, PendingNode> parents;
    for (auto& [key, node] : current) {
      const size_t size = node.atoms.size();
      if (options.enable_split && size > options.max_size) {
        SplitNode(result, node, options.max_size, rng);
      } else if (options.enable_merge && size < options.min_size &&
                 level > 0) {
        // Merge into the parent node at level-1.
        std::vector<uint64_t> parent_key(key.begin(), key.end() - 1);
        PendingNode& parent = parents[parent_key];
        if (parent.path_prefix.empty()) parent.path_prefix = parent_key;
        parent.atoms.insert(parent.atoms.end(), node.atoms.begin(),
                            node.atoms.end());
      } else {
        // Desired size, or a too-small root node (kept as-is per Ln 8-9 of
        // Algorithm 2).
        EmitGroup(result, node, 0, 1, node.atoms);
      }
    }
    current = std::move(parents);
  }

  return result;
}

}  // namespace kbt::granularity
