#include "exp/kv_sim.h"

#include "corpus/corpus_generator.h"
#include "extract/extractor_profile.h"

namespace kbt::exp {

KvSimConfig KvSimConfig::Default() {
  KvSimConfig cfg;
  cfg.seed = 2014;
  cfg.corpus.seed = 2014;
  cfg.corpus.num_websites = 500;
  cfg.corpus.num_subjects = 2500;
  cfg.corpus.num_predicates = 12;
  cfg.corpus.values_per_domain = 26;
  cfg.corpus.item_density = 0.35;
  cfg.corpus.max_pages_per_site = 192;
  cfg.corpus.pages_zipf_exponent = 1.25;
  cfg.corpus.max_triples_per_page = 40;
  cfg.corpus.triples_zipf_exponent = 1.2;
  // Shared misconceptions are common and concentrated, which makes
  // unsupervised truth discovery genuinely hard (popular false values
  // accumulate real support) and gives the gold-anchored "+" variants room
  // to help, as in the paper.
  cfg.corpus.popular_error_fraction = 0.75;
  cfg.corpus.num_popular_errors = 1;
  cfg.num_extractors = 16;
  cfg.kb_coverage = 0.3;
  return cfg;
}

KvSimConfig KvSimConfig::Small() {
  KvSimConfig cfg = Default();
  cfg.seed = 99;
  cfg.corpus.seed = 99;
  cfg.corpus.num_websites = 120;
  cfg.corpus.num_subjects = 400;
  cfg.corpus.num_predicates = 6;
  cfg.corpus.max_pages_per_site = 16;
  cfg.num_extractors = 8;
  return cfg;
}

KvSimConfig KvSimConfig::Skewed() {
  KvSimConfig cfg = Default();
  cfg.seed = 77;
  cfg.corpus.seed = 77;
  cfg.corpus.num_websites = 150;
  cfg.corpus.num_subjects = 4000;
  cfg.corpus.max_pages_per_site = 2048;
  cfg.corpus.pages_zipf_exponent = 1.05;  // Long tail with whale sites.
  cfg.corpus.max_triples_per_page = 48;
  cfg.num_extractors = 12;
  return cfg;
}

StatusOr<KvSimData> BuildKvSim(const KvSimConfig& config) {
  corpus::CorpusGenerator generator(config.corpus);
  StatusOr<corpus::WebCorpus> web = generator.Generate();
  if (!web.ok()) return web.status();

  Rng rng(config.seed);
  Rng extractor_rng = rng.Fork(1);
  Rng kb_rng = rng.Fork(2);

  extract::ExtractionConfig extraction;
  extraction.seed = rng.Fork(3).NextU64();
  extraction.extractors = extract::MakeDefaultExtractors(
      config.num_extractors, config.corpus.num_predicates, extractor_rng);

  extract::ExtractionSimulator simulator(std::move(extraction));
  StatusOr<extract::RawDataset> data = simulator.Run(*web);
  if (!data.ok()) return data.status();

  KvSimData out;
  out.partial_kb = web->world().SampleSubset(config.kb_coverage, kb_rng);
  out.corpus = std::move(*web);
  out.data = std::move(*data);
  return out;
}

}  // namespace kbt::exp
