#ifndef KBT_EXP_MOTIVATING_EXAMPLE_H_
#define KBT_EXP_MOTIVATING_EXAMPLE_H_

#include <array>
#include <string>
#include <vector>

#include "extract/raw_dataset.h"
#include "core/multilayer_result.h"

namespace kbt::exp {

/// The paper's running example (Tables 2-4, Examples 2.1/3.1/3.2/3.3):
/// 8 webpages W1..W8 and 5 extractors E1..E5 on the single data item
/// (Barack Obama, nationality).
///
/// The extraction matrix is reconstructed so that every number printed in
/// the paper reproduces exactly:
///   W1: E1..E4 -> USA,            E5 -> Kenya   (page states USA)
///   W2: E1,E2,E3 -> USA,          E4 -> N.Amer. (page states USA)
///   W3: E1,E3 -> USA,             E4 -> N.Amer. (page states USA)
///   W4: E1,E3 -> USA,             E5 -> Kenya   (page states USA)
///   W5: E1..E5 -> Kenya                         (page states Kenya)
///   W6: E1,E3 -> Kenya,           E4 -> USA     (page states Kenya)
///   W7: E3,E5 -> Kenya                          (page states nothing)
///   W8: E4 -> Kenya                             (page states nothing)
/// With Table 3's extractor quality this yields vote counts 11.7 for
/// (W1, USA), -9.4 for (W6, USA) (Example 3.1) and -2.65 for (W7, Kenya)
/// (Example 3.3), and Table 4's correctness probabilities.
struct MotivatingExample {
  /// Entity/value ids used by the fixture.
  static constexpr kb::EntityId kObama = 0;
  static constexpr kb::ValueId kUsa = 1;
  static constexpr kb::ValueId kKenya = 2;
  static constexpr kb::ValueId kNAmerica = 3;
  static constexpr kb::PredicateId kNationality = 0;

  /// The single data item (Obama, nationality).
  static kb::DataItemId Item();

  /// The observation cube of Table 2 (confidences all 1).
  static extract::RawDataset Dataset();

  /// Table 3's given extractor quality (Q, R, P), indexed E1..E5, as
  /// initial quality for a run with frozen parameters. Vectors are aligned
  /// with granularity::PageSourcePlainExtractor's extractor group order
  /// (E1..E5 in id order).
  static core::InitialQuality Table3Quality();

  /// Per-extractor (Q, R, P) triples from Table 3.
  struct ExtractorQuality {
    double q;
    double r;
    double p;
  };
  static std::array<ExtractorQuality, 5> Table3Rows();

  /// The "Value" column of Table 2: what each page truly provides
  /// (kInvalidId for W7/W8 which provide nothing).
  static std::array<kb::ValueId, 8> ProvidedValues();

  /// Expected Table 4 posterior p(C_wdv=1|X) for the (page, value) pairs
  /// the paper prints: {page index 0-7, value, probability}.
  struct Table4Entry {
    int page;
    kb::ValueId value;
    double probability;
  };
  static std::vector<Table4Entry> Table4();
};

}  // namespace kbt::exp

#endif  // KBT_EXP_MOTIVATING_EXAMPLE_H_
