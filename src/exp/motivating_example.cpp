#include "exp/motivating_example.h"

namespace kbt::exp {

namespace {

using extract::RawObservation;

/// One extraction of the fixture: extractor (0-based), page (0-based),
/// value, and whether the page really states that value.
struct Cell {
  int extractor;
  int page;
  kb::ValueId value;
};

/// The full Table 2 extraction matrix (see header for the layout).
constexpr Cell kCells[] = {
    // W1: E1-E4 extract USA, E5 extracts Kenya.
    {0, 0, MotivatingExample::kUsa},
    {1, 0, MotivatingExample::kUsa},
    {2, 0, MotivatingExample::kUsa},
    {3, 0, MotivatingExample::kUsa},
    {4, 0, MotivatingExample::kKenya},
    // W2: E1,E2,E3 USA; E4 N.Amer.
    {0, 1, MotivatingExample::kUsa},
    {1, 1, MotivatingExample::kUsa},
    {2, 1, MotivatingExample::kUsa},
    {3, 1, MotivatingExample::kNAmerica},
    // W3: E1,E3 USA; E4 N.Amer.
    {0, 2, MotivatingExample::kUsa},
    {2, 2, MotivatingExample::kUsa},
    {3, 2, MotivatingExample::kNAmerica},
    // W4: E1,E3 USA; E5 Kenya.
    {0, 3, MotivatingExample::kUsa},
    {2, 3, MotivatingExample::kUsa},
    {4, 3, MotivatingExample::kKenya},
    // W5: everyone extracts Kenya.
    {0, 4, MotivatingExample::kKenya},
    {1, 4, MotivatingExample::kKenya},
    {2, 4, MotivatingExample::kKenya},
    {3, 4, MotivatingExample::kKenya},
    {4, 4, MotivatingExample::kKenya},
    // W6: E1,E3 Kenya; E4 USA.
    {0, 5, MotivatingExample::kKenya},
    {2, 5, MotivatingExample::kKenya},
    {3, 5, MotivatingExample::kUsa},
    // W7: E3,E5 Kenya (page provides nothing).
    {2, 6, MotivatingExample::kKenya},
    {4, 6, MotivatingExample::kKenya},
    // W8: E4 Kenya (page provides nothing).
    {3, 7, MotivatingExample::kKenya},
};

}  // namespace

kb::DataItemId MotivatingExample::Item() {
  return kb::MakeDataItem(kObama, kNationality);
}

std::array<kb::ValueId, 8> MotivatingExample::ProvidedValues() {
  return {kUsa,   kUsa,   kUsa,         kUsa,
          kKenya, kKenya, kb::kInvalidId, kb::kInvalidId};
}

extract::RawDataset MotivatingExample::Dataset() {
  extract::RawDataset data;
  const std::array<kb::ValueId, 8> provided = ProvidedValues();
  for (const Cell& cell : kCells) {
    RawObservation obs;
    obs.extractor = static_cast<kb::ExtractorId>(cell.extractor);
    obs.pattern = static_cast<kb::PatternId>(cell.extractor);  // One each.
    obs.website = static_cast<kb::WebsiteId>(cell.page);  // Site == page.
    obs.page = static_cast<kb::PageId>(cell.page);
    obs.item = Item();
    obs.value = cell.value;
    obs.confidence = 1.0f;
    obs.provided =
        provided[static_cast<size_t>(cell.page)] == cell.value;
    data.observations.push_back(obs);
  }
  data.true_values.emplace(Item(), kUsa);
  // Example 3.2 uses n = 10 for this data item.
  data.num_false_by_predicate = {10};
  data.num_websites = 8;
  data.num_pages = 8;
  data.num_extractors = 5;
  data.num_patterns = 5;
  return data;
}

std::array<MotivatingExample::ExtractorQuality, 5>
MotivatingExample::Table3Rows() {
  // Table 3: Q(E_i), R(E_i), P(E_i) with gamma = 0.25.
  return {{{0.01, 0.99, 0.99},
           {0.01, 0.50, 0.99},
           {0.06, 0.99, 0.85},
           {0.22, 0.33, 0.33},
           {0.17, 0.17, 0.25}}};
}

core::InitialQuality MotivatingExample::Table3Quality() {
  core::InitialQuality init;
  for (const ExtractorQuality& row : Table3Rows()) {
    init.extractor_recall.push_back(row.r);
    init.extractor_precision.push_back(row.p);
    // The paper's vote counts use Table 3's printed Q values directly.
    init.extractor_q.push_back(row.q);
  }
  // Example 3.2: all sources share A_w = 0.6.
  init.source_accuracy.assign(8, 0.6);
  return init;
}

std::vector<MotivatingExample::Table4Entry> MotivatingExample::Table4() {
  return {
      {0, kUsa, 1.0},      {0, kKenya, 0.0},
      {1, kUsa, 1.0},      {1, kNAmerica, 0.0},
      {2, kUsa, 1.0},      {2, kNAmerica, 0.0},
      {3, kUsa, 1.0},      {3, kKenya, 0.0},
      {4, kKenya, 1.0},
      {5, kKenya, 1.0},    {5, kUsa, 0.0},
      {6, kKenya, 0.07},
      {7, kKenya, 0.0},
  };
}

}  // namespace kbt::exp
