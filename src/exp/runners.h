#ifndef KBT_EXP_RUNNERS_H_
#define KBT_EXP_RUNNERS_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "dataflow/parallel.h"
#include "dataflow/stage_timer.h"
#include "eval/gold_standard.h"
#include "exp/kv_sim.h"
#include "fusion/single_layer.h"
#include "granularity/assignments.h"
#include "core/multilayer_config.h"
#include "core/multilayer_result.h"

namespace kbt::exp {

/// The three methods compared throughout Section 5.
enum class Method {
  kSingleLayer = 0,   // Section 2.2 baseline on provenance 4-tuples.
  kMultiLayer = 1,    // Section 3 at the finest granularity.
  kMultiLayerSM = 2,  // Section 4: SPLITANDMERGE + multi-layer.
};

std::string_view MethodName(Method method);

/// Options shared by the method runners. Defaults match Section 5.1.2:
/// n=100 for the single layer, n=10 for the multi-layer models, gamma=0.25,
/// 5 iterations, m=5 / M=10K for SPLITANDMERGE.
struct RunnerOptions {
  RunnerOptions();

  /// Initialize source/extractor quality from the gold standard (the "+"
  /// variants of Table 5).
  bool smart_init = false;

  core::MultiLayerConfig multilayer;
  fusion::SingleLayerConfig single_layer;
  granularity::SplitMergeOptions sm_source;
  granularity::SplitMergeOptions sm_extractor;
};

/// Everything a bench needs from one method run.
struct MethodRun {
  std::vector<eval::TriplePrediction> predictions;
  eval::TripleMetrics metrics;
  int iterations = 0;
  bool converged = false;
  size_t num_sources = 0;
  size_t num_extractor_groups = 0;
  size_t num_slots = 0;
};

/// Runs `method` over a KV-sim world and evaluates against `gold`.
/// `executor`/`timers` may be null.
StatusOr<MethodRun> RunMethodOnKv(Method method, const KvSimData& kv,
                                  const eval::GoldStandard& gold,
                                  const RunnerOptions& options,
                                  dataflow::Executor* executor = nullptr,
                                  dataflow::StageTimers* timers = nullptr);

}  // namespace kbt::exp

#endif  // KBT_EXP_RUNNERS_H_
