// Implemented on top of the kbt::api facade (and compiled into the api
// library): the method runner is a thin translation from the Section 5
// method taxonomy to (Model, Granularity) pipeline options.
#include "exp/runners.h"

#include <utility>

#include "kbt/pipeline.h"

namespace kbt::exp {

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kSingleLayer:
      return "SingleLayer";
    case Method::kMultiLayer:
      return "MultiLayer";
    case Method::kMultiLayerSM:
      return "MultiLayerSM";
  }
  return "unknown";
}

RunnerOptions::RunnerOptions() {
  multilayer.num_false_override = 10;    // Paper: n = 10 for multi-layer.
  single_layer.num_false_override = 100;  // Paper: n = 100 for single-layer.
  sm_source.min_size = 5;
  sm_source.max_size = 10000;
  sm_extractor.min_size = 5;
  sm_extractor.max_size = 10000;
}

StatusOr<MethodRun> RunMethodOnKv(Method method, const KvSimData& kv,
                                  const eval::GoldStandard& gold,
                                  const RunnerOptions& options,
                                  dataflow::Executor* executor,
                                  dataflow::StageTimers* timers) {
  api::Options api_options;
  switch (method) {
    case Method::kSingleLayer:
      api_options.model = api::Model::kSingleLayer;
      api_options.granularity = api::Granularity::kProvenance;
      break;
    case Method::kMultiLayer:
      api_options.model = api::Model::kMultiLayer;
      api_options.granularity = api::Granularity::kFinest;
      break;
    case Method::kMultiLayerSM:
      api_options.model = api::Model::kMultiLayer;
      api_options.granularity = api::Granularity::kSplitMerge;
      break;
  }
  api_options.multilayer = options.multilayer;
  api_options.single_layer = options.single_layer;
  api_options.sm_source = options.sm_source;
  api_options.sm_extractor = options.sm_extractor;
  api_options.smart_init = options.smart_init;
  api_options.smart_init_options = api::Options::PaperSmartInit();
  // The runner reports triple metrics only; skip the KBT aggregation stage.
  api_options.score_websites = false;
  api_options.score_sources = false;

  StatusOr<api::Pipeline> pipeline = api::PipelineBuilder()
                                         .FromDataset(&kv.data)
                                         .WithGoldStandard(&gold)
                                         .WithOptions(api_options)
                                         .WithExecutor(executor)
                                         .WithStageTimers(timers)
                                         .Build();
  if (!pipeline.ok()) return pipeline.status();
  StatusOr<api::TrustReport> report = pipeline->Run();
  if (!report.ok()) return report.status();

  MethodRun run;
  run.predictions = std::move(report->predictions);
  run.metrics = report->metrics.value_or(eval::TripleMetrics{});
  run.iterations = report->iterations();
  run.converged = report->converged();
  run.num_sources = report->counts.num_sources;
  run.num_extractor_groups = report->counts.num_extractor_groups;
  run.num_slots = report->counts.num_slots;
  return run;
}

}  // namespace kbt::exp
