#include "exp/runners.h"

#include "extract/observation_matrix.h"
#include "core/initialization.h"
#include "core/multilayer_model.h"

namespace kbt::exp {

std::string_view MethodName(Method method) {
  switch (method) {
    case Method::kSingleLayer:
      return "SingleLayer";
    case Method::kMultiLayer:
      return "MultiLayer";
    case Method::kMultiLayerSM:
      return "MultiLayerSM";
  }
  return "unknown";
}

RunnerOptions::RunnerOptions() {
  multilayer.num_false_override = 10;    // Paper: n = 10 for multi-layer.
  single_layer.num_false_override = 100;  // Paper: n = 100 for single-layer.
  sm_source.min_size = 5;
  sm_source.max_size = 10000;
  sm_extractor.min_size = 5;
  sm_extractor.max_size = 10000;
}

namespace {

core::TripleLabelFn MakeLabelFn(const eval::GoldStandard& gold) {
  return [&gold](kb::DataItemId item, kb::ValueId value) {
    return gold.Label(item, value);
  };
}

core::SmartInitOptions KvSmartInit() {
  core::SmartInitOptions options;
  // Source-side only (the paper's description); LCWA labels are too skewed
  // toward false to estimate extractor precision from.
  options.initialize_extractors = false;
  // A single gold-labeled triple anchors a source: this is what lets thin
  // sources participate in the "+" variants (they would otherwise fall
  // under the support threshold and be ignored).
  options.min_labeled = 1;
  options.smoothing = 1.0;
  return options;
}

}  // namespace

StatusOr<MethodRun> RunMethodOnKv(Method method, const KvSimData& kv,
                                  const eval::GoldStandard& gold,
                                  const RunnerOptions& options,
                                  dataflow::Executor* executor,
                                  dataflow::StageTimers* timers) {
  // ---- Choose granularity ----
  extract::GroupAssignment assignment;
  switch (method) {
    case Method::kSingleLayer:
      assignment = granularity::ProvenanceAssignment(kv.data);
      break;
    case Method::kMultiLayer:
      assignment = granularity::FinestAssignment(kv.data);
      break;
    case Method::kMultiLayerSM: {
      StatusOr<extract::GroupAssignment> sm = granularity::SplitMergeAssignment(
          kv.data, options.sm_source, options.sm_extractor, timers);
      if (!sm.ok()) return sm.status();
      assignment = std::move(*sm);
      break;
    }
  }

  StatusOr<extract::CompiledMatrix> matrix =
      extract::CompiledMatrix::Build(kv.data, assignment);
  if (!matrix.ok()) return matrix.status();

  MethodRun run;
  run.num_sources = matrix->num_sources();
  run.num_extractor_groups = matrix->num_extractor_groups();
  run.num_slots = matrix->num_slots();

  if (method == Method::kSingleLayer) {
    std::vector<double> initial;
    std::vector<uint8_t> trusted;
    if (options.smart_init) {
      core::InitialQuality init = core::InitialQualityFromLabels(
          *matrix, MakeLabelFn(gold), options.multilayer, KvSmartInit());
      initial = std::move(init.source_accuracy);
      trusted = std::move(init.source_trusted);
    }
    StatusOr<fusion::SingleLayerResult> result = fusion::SingleLayerModel::Run(
        *matrix, options.single_layer, initial, executor, timers, trusted);
    if (!result.ok()) return result.status();
    run.predictions = eval::TriplePredictions(*matrix, result->slot_value_prob,
                                              result->slot_covered);
    run.iterations = result->iterations;
    run.converged = result->converged;
  } else {
    core::InitialQuality initial;
    if (options.smart_init) {
      initial = core::InitialQualityFromLabels(*matrix, MakeLabelFn(gold),
                                               options.multilayer,
                                               KvSmartInit());
    }
    StatusOr<core::MultiLayerResult> result = core::MultiLayerModel::Run(
        *matrix, options.multilayer, initial, executor, timers);
    if (!result.ok()) return result.status();
    run.predictions = eval::TriplePredictions(*matrix, result->slot_value_prob,
                                              result->slot_covered);
    run.iterations = result->iterations;
    run.converged = result->converged;
  }

  run.metrics = eval::EvaluateTriples(run.predictions, gold);
  return run;
}

}  // namespace kbt::exp
