#ifndef KBT_EXP_SYNTHETIC_H_
#define KBT_EXP_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "extract/raw_dataset.h"

namespace kbt::exp {

/// The synthetic setup of Section 5.2.1: `num_sources` sources each provide
/// a value for every shared data item with accuracy A; each extractor
/// processes a source with probability delta, extracts each provided triple
/// with probability R, and corrupts each of subject/predicate/object with
/// probability 1-P (so its triple precision is ~P^3).
struct SyntheticConfig {
  int num_sources = 10;
  int num_extractors = 5;
  /// Data items form a subjects x predicates grid; the paper's "100 triples
  /// per source" is 20 x 5.
  int num_subjects = 20;
  int num_predicates = 5;
  double source_accuracy = 0.7;     // A
  double page_coverage = 0.5;       // delta
  double recall = 0.5;              // R
  double component_accuracy = 0.8;  // P
  int num_false_values = 10;        // n
  uint64_t seed = 1;
};

/// Generated data plus the exact ground truth the synthetic metrics (SqV,
/// SqC, SqA) compare against.
struct SyntheticData {
  extract::RawDataset data;
  /// True accuracy A*_w of each source (== config value; kept per source for
  /// generality).
  std::vector<double> true_source_accuracy;
};

SyntheticData GenerateSynthetic(const SyntheticConfig& config);

}  // namespace kbt::exp

#endif  // KBT_EXP_SYNTHETIC_H_
