#include "exp/synthetic_eval.h"

#include <vector>

#include "common/math.h"
#include "eval/gold_standard.h"
#include "granularity/assignments.h"
#include "core/multilayer_model.h"

namespace kbt::exp {

namespace {

/// SqV over distinct extracted (d, v) triples.
double TripleLoss(const extract::CompiledMatrix& matrix,
                  const std::vector<double>& slot_value_prob,
                  const SyntheticData& synthetic) {
  const std::vector<uint8_t> covered(matrix.num_slots(), 1);
  const auto predictions =
      eval::TriplePredictions(matrix, slot_value_prob, covered);
  if (predictions.empty()) return 0.0;
  double loss = 0.0;
  for (const auto& p : predictions) {
    const auto it = synthetic.data.true_values.find(p.item);
    const double truth =
        (it != synthetic.data.true_values.end() && it->second == p.value)
            ? 1.0
            : 0.0;
    loss += SquaredError(p.probability, truth);
  }
  return loss / static_cast<double>(predictions.size());
}

double SourceLossFromAccuracies(const std::vector<double>& by_site,
                                const SyntheticData& synthetic) {
  const size_t n = synthetic.true_source_accuracy.size();
  if (n == 0) return 0.0;
  double loss = 0.0;
  for (size_t w = 0; w < n; ++w) {
    loss += SquaredError(by_site[w], synthetic.true_source_accuracy[w]);
  }
  return loss / static_cast<double>(n);
}

}  // namespace

SyntheticLosses EvaluateMultiLayer(const extract::CompiledMatrix& matrix,
                                   const core::MultiLayerResult& result,
                                   const SyntheticData& synthetic) {
  SyntheticLosses losses;
  losses.sqv = TripleLoss(matrix, result.slot_value_prob, synthetic);

  // SqC over slots against the provided-truth flags.
  if (matrix.num_slots() > 0) {
    double loss = 0.0;
    for (size_t s = 0; s < matrix.num_slots(); ++s) {
      loss += SquaredError(result.slot_correct_prob[s],
                           matrix.slot_provided_truth(s) ? 1.0 : 0.0);
    }
    losses.sqc = loss / static_cast<double>(matrix.num_slots());
  }

  // SqA: map source groups to original sources via the website field (the
  // synthetic generator makes website == source index).
  std::vector<double> by_site(synthetic.true_source_accuracy.size(), 0.0);
  std::vector<double> counts(by_site.size(), 0.0);
  for (uint32_t w = 0; w < matrix.num_sources(); ++w) {
    const uint32_t site = matrix.source_info(w).website;
    if (site >= by_site.size()) continue;
    by_site[site] += result.source_accuracy[w];
    counts[site] += 1.0;
  }
  for (size_t i = 0; i < by_site.size(); ++i) {
    by_site[i] = counts[i] > 0 ? by_site[i] / counts[i] : 0.8;
  }
  losses.sqa = SourceLossFromAccuracies(by_site, synthetic);
  return losses;
}

SyntheticLosses EvaluateSingleLayer(const extract::CompiledMatrix& matrix,
                                    const fusion::SingleLayerResult& result,
                                    const SyntheticData& synthetic) {
  SyntheticLosses losses;
  losses.sqv = TripleLoss(matrix, result.slot_value_prob, synthetic);
  // SqC intentionally NaN: the single layer has no extraction layer.
  const auto by_site = fusion::AccuracyByWebsite(
      matrix, result.slot_value_prob,
      static_cast<uint32_t>(synthetic.true_source_accuracy.size()), 0.8);
  losses.sqa = SourceLossFromAccuracies(by_site, synthetic);
  return losses;
}

StatusOr<SyntheticComparison> RunSyntheticComparison(
    const SyntheticConfig& config) {
  const SyntheticData synthetic = GenerateSynthetic(config);
  SyntheticComparison out;

  // ---- Multi-layer on page-level sources ----
  {
    const auto assignment =
        granularity::PageSourcePlainExtractor(synthetic.data);
    StatusOr<extract::CompiledMatrix> matrix =
        extract::CompiledMatrix::Build(synthetic.data, assignment);
    if (!matrix.ok()) return matrix.status();
    core::MultiLayerConfig ml;
    ml.max_iterations = 5;
    ml.min_source_support = 1;
    ml.min_extractor_support = 1;
    ml.num_false_override = config.num_false_values;
    StatusOr<core::MultiLayerResult> result =
        core::MultiLayerModel::Run(*matrix, ml);
    if (!result.ok()) return result.status();
    out.multi_layer = EvaluateMultiLayer(*matrix, *result, synthetic);
  }

  // ---- Single-layer on provenance sources ----
  {
    const auto assignment = granularity::ProvenanceAssignment(synthetic.data);
    StatusOr<extract::CompiledMatrix> matrix =
        extract::CompiledMatrix::Build(synthetic.data, assignment);
    if (!matrix.ok()) return matrix.status();
    fusion::SingleLayerConfig sl;
    sl.max_iterations = 5;
    sl.min_source_support = 1;
    sl.num_false_override = config.num_false_values;
    StatusOr<fusion::SingleLayerResult> result =
        fusion::SingleLayerModel::Run(*matrix, sl);
    if (!result.ok()) return result.status();
    out.single_layer = EvaluateSingleLayer(*matrix, *result, synthetic);
  }

  return out;
}

}  // namespace kbt::exp
