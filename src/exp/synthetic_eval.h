#ifndef KBT_EXP_SYNTHETIC_EVAL_H_
#define KBT_EXP_SYNTHETIC_EVAL_H_

#include <cmath>

#include "exp/synthetic.h"
#include "extract/observation_matrix.h"
#include "fusion/single_layer.h"
#include "core/multilayer_result.h"

namespace kbt::exp {

/// The three square losses of Section 5.1.1 measured against the synthetic
/// ground truth (only synthetic data knows all three):
///  SqV — p(V_d=v|X) vs I(V*_d = v), over distinct extracted triples;
///  SqC — p(C_wdv=1|X) vs C*_wdv, over slots (NaN for the single layer,
///        which cannot estimate C — hence the single line in Figure 3);
///  SqA — estimated A_w vs true source accuracy, over sources.
struct SyntheticLosses {
  double sqv = 0.0;
  double sqc = std::nan("");
  double sqa = 0.0;
};

/// Losses of a multi-layer run (matrix compiled with page-level sources).
SyntheticLosses EvaluateMultiLayer(const extract::CompiledMatrix& matrix,
                                   const core::MultiLayerResult& result,
                                   const SyntheticData& synthetic);

/// Losses of a single-layer run (matrix compiled with provenance sources).
/// Source accuracy is evaluated per original source by averaging the
/// predicted truth of all triples extracted from it (the paper's
/// "considers all extracted triples" convention for SINGLELAYER).
SyntheticLosses EvaluateSingleLayer(const extract::CompiledMatrix& matrix,
                                    const fusion::SingleLayerResult& result,
                                    const SyntheticData& synthetic);

/// One synthetic draw run through both models (the Figure 3/4 harness).
struct SyntheticComparison {
  SyntheticLosses single_layer;
  SyntheticLosses multi_layer;
};

StatusOr<SyntheticComparison> RunSyntheticComparison(
    const SyntheticConfig& config);

}  // namespace kbt::exp

#endif  // KBT_EXP_SYNTHETIC_EVAL_H_
