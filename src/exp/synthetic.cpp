#include "exp/synthetic.h"

#include <unordered_map>
#include <unordered_set>

#include "common/random.h"

namespace kbt::exp {

namespace {

using kb::DataItemId;
using kb::ValueId;

/// Packs (page, item, value) for provided-set membership.
struct PageTripleKey {
  kb::PageId page;
  DataItemId item;
  ValueId value;
  bool operator==(const PageTripleKey& o) const {
    return page == o.page && item == o.item && value == o.value;
  }
};

struct PageTripleKeyHash {
  size_t operator()(const PageTripleKey& k) const {
    uint64_t h = k.item;
    h ^= (static_cast<uint64_t>(k.page) + 0x9e3779b9u) * 0xff51afd7ed558ccdULL;
    h ^= (static_cast<uint64_t>(k.value) + 0x85ebca6bu) * 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

}  // namespace

SyntheticData GenerateSynthetic(const SyntheticConfig& config) {
  Rng rng(config.seed);
  SyntheticData out;
  extract::RawDataset& data = out.data;

  const int num_items = config.num_subjects * config.num_predicates;
  const int domain = config.num_false_values + 1;

  // World truth: every (subject, predicate) grid cell has a true value drawn
  // from its predicate's domain {0..n}. Values are encoded per predicate so
  // that predicate-corrupted extractions stay within the new predicate's
  // domain: value id = predicate * domain + index.
  const auto value_id = [&](int predicate, int index) {
    return static_cast<ValueId>(predicate * domain + index);
  };
  std::vector<DataItemId> items;
  items.reserve(static_cast<size_t>(num_items));
  for (int s = 0; s < config.num_subjects; ++s) {
    for (int p = 0; p < config.num_predicates; ++p) {
      const DataItemId item =
          kb::MakeDataItem(static_cast<kb::EntityId>(s),
                           static_cast<kb::PredicateId>(p));
      items.push_back(item);
      data.true_values[item] =
          value_id(p, static_cast<int>(rng.UniformInt(0, domain - 1)));
    }
  }
  data.num_false_by_predicate.assign(
      static_cast<size_t>(config.num_predicates), config.num_false_values);

  // Source statements: each source states one value per item, correct with
  // probability A (Eq. 1's generative story).
  out.true_source_accuracy.assign(static_cast<size_t>(config.num_sources),
                                  config.source_accuracy);
  std::vector<std::vector<ValueId>> stated(
      static_cast<size_t>(config.num_sources));
  std::unordered_set<PageTripleKey, PageTripleKeyHash> provided_set;
  for (int w = 0; w < config.num_sources; ++w) {
    auto& row = stated[static_cast<size_t>(w)];
    row.resize(static_cast<size_t>(num_items));
    for (int i = 0; i < num_items; ++i) {
      const DataItemId item = items[static_cast<size_t>(i)];
      const int pred = static_cast<int>(kb::DataItemPredicate(item));
      const ValueId truth = data.true_values[item];
      ValueId v = truth;
      if (!rng.Bernoulli(config.source_accuracy)) {
        do {
          v = value_id(pred, static_cast<int>(rng.UniformInt(0, domain - 1)));
        } while (v == truth);
      }
      row[static_cast<size_t>(i)] = v;
      provided_set.insert(
          PageTripleKey{static_cast<kb::PageId>(w), item, v});
    }
  }

  // Extraction: per (extractor, source) with prob delta; per triple with
  // prob R; each component corrupted with prob 1-P.
  for (int e = 0; e < config.num_extractors; ++e) {
    for (int w = 0; w < config.num_sources; ++w) {
      if (!rng.Bernoulli(config.page_coverage)) continue;
      std::unordered_map<uint64_t, size_t> local;  // Dedup per (e,w).
      for (int i = 0; i < num_items; ++i) {
        if (!rng.Bernoulli(config.recall)) continue;
        DataItemId item = items[static_cast<size_t>(i)];
        ValueId value = stated[static_cast<size_t>(w)][static_cast<size_t>(i)];

        // Subject corruption: another subject, same predicate.
        if (!rng.Bernoulli(config.component_accuracy) &&
            config.num_subjects > 1) {
          kb::EntityId subj;
          do {
            subj = static_cast<kb::EntityId>(
                rng.UniformInt(0, config.num_subjects - 1));
          } while (subj == kb::DataItemSubject(item));
          item = kb::MakeDataItem(subj, kb::DataItemPredicate(item));
        }
        // Predicate corruption: move to another predicate; the value is
        // remapped into that predicate's domain slot.
        if (!rng.Bernoulli(config.component_accuracy) &&
            config.num_predicates > 1) {
          kb::PredicateId pred;
          do {
            pred = static_cast<kb::PredicateId>(
                rng.UniformInt(0, config.num_predicates - 1));
          } while (pred == kb::DataItemPredicate(item));
          const int index = static_cast<int>(value) % domain;
          item = kb::MakeDataItem(kb::DataItemSubject(item), pred);
          value = value_id(static_cast<int>(pred), index);
        }
        // Object corruption: another value of the item's predicate.
        if (!rng.Bernoulli(config.component_accuracy) && domain > 1) {
          const int pred = static_cast<int>(kb::DataItemPredicate(item));
          ValueId v;
          do {
            v = value_id(pred, static_cast<int>(rng.UniformInt(0, domain - 1)));
          } while (v == value);
          value = v;
        }

        const bool is_provided = provided_set.count(PageTripleKey{
                                     static_cast<kb::PageId>(w), item,
                                     value}) > 0;
        const uint64_t key = item * 0x9e3779b97f4a7c15ULL ^ value;
        if (local.contains(key)) continue;
        local.emplace(key, data.observations.size());

        extract::RawObservation obs;
        obs.extractor = static_cast<kb::ExtractorId>(e);
        obs.pattern = static_cast<kb::PatternId>(e);
        obs.website = static_cast<kb::WebsiteId>(w);
        obs.page = static_cast<kb::PageId>(w);
        obs.item = item;
        obs.value = value;
        obs.confidence = 1.0f;
        obs.provided = is_provided;
        data.observations.push_back(obs);
      }
    }
  }

  data.num_websites = static_cast<uint32_t>(config.num_sources);
  data.num_pages = static_cast<uint32_t>(config.num_sources);
  data.num_extractors = static_cast<uint32_t>(config.num_extractors);
  data.num_patterns = static_cast<uint32_t>(config.num_extractors);
  return out;
}

}  // namespace kbt::exp
