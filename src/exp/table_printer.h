#ifndef KBT_EXP_TABLE_PRINTER_H_
#define KBT_EXP_TABLE_PRINTER_H_

#include <iostream>
#include <string>
#include <vector>

namespace kbt::exp {

/// Fixed-width ASCII table, used by every bench binary to print the rows
/// the paper's tables/figures report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(std::ostream& os = std::cout) const;

  /// Fixed-precision double formatting ("0.054").
  static std::string Fmt(double value, int precision = 3);
  /// Integer with thousands grouping ("2,816,344").
  static std::string FmtCount(size_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Table 5: ... ==").
void PrintBanner(const std::string& title, std::ostream& os = std::cout);

}  // namespace kbt::exp

#endif  // KBT_EXP_TABLE_PRINTER_H_
