#ifndef KBT_EXP_KV_SIM_H_
#define KBT_EXP_KV_SIM_H_

#include "common/status.h"
#include "corpus/corpus_config.h"
#include "corpus/web_corpus.h"
#include "extract/extraction_simulator.h"
#include "extract/raw_dataset.h"
#include "kb/knowledge_base.h"

namespace kbt::exp {

/// Configuration of the KV-scale simulation (the stand-in for the paper's
/// 2.8B-triple Knowledge Vault snapshot). The generated cube keeps KV's
/// structural pathologies — Zipf page/pattern sizes, a fleet of extractors
/// of wildly different quality, type-error extractions — at a size that
/// runs in seconds.
struct KvSimConfig {
  uint64_t seed = 2014;
  corpus::CorpusConfig corpus;
  int num_extractors = 16;
  /// Fraction of world facts the partial "Freebase" KB knows; the paper
  /// could decide truthfulness of 26% of its triples via LCWA.
  double kb_coverage = 0.3;

  /// Benchmark-scale defaults (hundreds of sites, ~10^5 observations).
  static KvSimConfig Default();
  /// Small variant for unit/integration tests.
  static KvSimConfig Small();
  /// Heavily skewed variant for the Table 7 efficiency study: a few whale
  /// sites with thousands of pages create giant extractor groups.
  static KvSimConfig Skewed();
};

/// A fully materialized KV-sim world. NOTE: construct eval::GoldStandard
/// from `partial_kb` and `corpus.world()` only after this object has
/// reached its final address (GoldStandard holds references).
struct KvSimData {
  corpus::WebCorpus corpus;
  extract::RawDataset data;
  kb::KnowledgeBase partial_kb;
};

/// Generates corpus + extraction cube + partial KB.
StatusOr<KvSimData> BuildKvSim(const KvSimConfig& config);

}  // namespace kbt::exp

#endif  // KBT_EXP_KV_SIM_H_
