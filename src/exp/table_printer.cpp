#include "exp/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace kbt::exp {

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  const auto print_rule = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::FmtCount(size_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void PrintBanner(const std::string& title, std::ostream& os) {
  os << "\n== " << title << " ==\n";
}

}  // namespace kbt::exp
