#ifndef KBT_DATAFLOW_STAGE_TIMER_H_
#define KBT_DATAFLOW_STAGE_TIMER_H_

#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "kbt/obs.h"

namespace kbt::dataflow {

/// Accumulates wall-clock time per named pipeline stage. The Table 7
/// reproduction reads stage totals for "Prep.Source", "Prep.Extractor",
/// "I.ExtCorr", "II.TriplePr", "III.SrcAccu", "IV.ExtQuality".
class StageTimers {
 public:
  StageTimers() = default;
  StageTimers(const StageTimers&) = delete;
  StageTimers& operator=(const StageTimers&) = delete;

  /// Adds `seconds` to `stage`'s total and bumps its invocation count.
  void Add(const std::string& stage, double seconds);

  /// Total seconds accumulated for `stage` (0 when unknown).
  double TotalSeconds(const std::string& stage) const;

  /// Invocations recorded for `stage`.
  int Count(const std::string& stage) const;

  /// Mean seconds per invocation (0 when never recorded).
  double MeanSeconds(const std::string& stage) const;

  /// All (stage, total seconds) pairs in lexicographic stage order.
  std::vector<std::pair<std::string, double>> Entries() const;

  void Clear();

  /// RAII scope: records elapsed time into `timers` under `stage` when
  /// destroyed.
  class Scope {
   public:
    Scope(StageTimers& timers, std::string stage)
        : timers_(timers), stage_(std::move(stage)) {}
    ~Scope() { timers_.Add(stage_, watch_.ElapsedSeconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageTimers& timers_;
    std::string stage_;
    Stopwatch watch_;
  };

 private:
  struct Entry {
    double total_seconds = 0.0;
    int count = 0;
    /// Cached kbt_em_stage_seconds{stage=...} handle on the process-wide
    /// obs registry (resolved on first Add, null until then).
    obs::Histogram* histogram = nullptr;
  };

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ KBT_GUARDED_BY(mutex_);
};

}  // namespace kbt::dataflow

#endif  // KBT_DATAFLOW_STAGE_TIMER_H_
