#ifndef KBT_DATAFLOW_PARALLEL_H_
#define KBT_DATAFLOW_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "common/thread_pool.h"

namespace kbt::dataflow {

/// Shared-memory stand-in for the paper's FlumeJava/MapReduce substrate.
///
/// Two scheduling modes matter for reproducing Table 7:
///  * `ParallelFor` chunks an index range evenly across workers - the
///    best case with no data skew.
///  * `ParallelForGroups` submits ONE task per group (per source / per
///    extractor), mirroring a MapReduce reducer per key. A group holding a
///    hundred times more triples than its peers becomes a straggler and
///    dominates the stage's wall clock - exactly the pathology
///    SPLITANDMERGE (Section 4) removes.
class Executor {
 public:
  /// `num_threads` <= 0 selects hardware concurrency.
  explicit Executor(int num_threads = 0);

  int num_threads() const { return pool_->num_threads(); }

  /// Runs `fn(i)` for every i in [0, n), chunked evenly. Blocks until done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs `fn(begin, end)` over contiguous chunks covering [0, n).
  /// `num_chunks` <= 0 picks 4 chunks per worker. Blocks until done.
  void ParallelForRanges(size_t n,
                         const std::function<void(size_t, size_t)>& fn,
                         int num_chunks = 0);

  /// Runs `fn(g)` for each group g in [0, num_groups), one task per group.
  /// Blocks until done. Group sizes are invisible to the scheduler, so a
  /// skewed group serializes the stage (the Table 7 "Normal" column).
  void ParallelForGroups(size_t num_groups,
                         const std::function<void(size_t)>& fn);

 private:
  std::unique_ptr<ThreadPool> pool_;
};

/// Process-wide default executor (hardware concurrency), used when callers
/// do not supply their own.
Executor& DefaultExecutor();

}  // namespace kbt::dataflow

#endif  // KBT_DATAFLOW_PARALLEL_H_
