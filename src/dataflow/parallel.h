#ifndef KBT_DATAFLOW_PARALLEL_H_
#define KBT_DATAFLOW_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/thread_pool.h"

namespace kbt::dataflow {

/// Shared-memory stand-in for the paper's FlumeJava/MapReduce substrate.
///
/// Two scheduling modes matter for reproducing Table 7:
///  * `ParallelFor` chunks an index range evenly across workers - the
///    best case with no data skew.
///  * `ParallelForGroups` schedules at GROUP grain (per source / per
///    extractor), mirroring a MapReduce reducer per key: workers claim one
///    group at a time, group sizes are invisible to the scheduler, and a
///    group is never split across workers. A group holding a hundred times
///    more triples than its peers becomes a straggler and dominates the
///    stage's wall clock - exactly the pathology SPLITANDMERGE (Section 4)
///    removes.
///
/// The parallel loops join through a scoped TaskGroup (never the pool-wide
/// barrier), and a joining caller donates its thread to the loop's own
/// remaining chunks, so the loops are *reentrant*: a task already running
/// on this executor can open another ParallelFor without deadlocking a
/// saturated pool. That is what lets one executor be shared between
/// api::TrustService's request loop and the parallel stages running inside
/// each request.
///
/// Beyond the loops, the executor exposes the underlying task interface:
/// `Submit` schedules one task and returns its result (and any exception)
/// through a std::future, and `pool()` hands out the ThreadPool for
/// building SerialQueues / TaskGroups on the same workers.
class Executor {
 public:
  /// `num_threads` <= 0 selects hardware concurrency.
  explicit Executor(int num_threads = 0);

  int num_threads() const { return pool_->num_threads(); }

  /// Runs `fn(i)` for every i in [0, n), chunked evenly. Blocks until done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs `fn(begin, end)` over contiguous chunks covering [0, n).
  /// `num_chunks` <= 0 picks 4 chunks per worker. Blocks until done. The
  /// calling thread executes the first chunk itself.
  void ParallelForRanges(size_t n,
                         const std::function<void(size_t, size_t)>& fn,
                         int num_chunks = 0);

  /// Runs `fn(g)` for each group g in [0, num_groups). One drain loop per
  /// worker claims groups one at a time off a shared counter; a group is
  /// never split across workers. Blocks until done. Group sizes are
  /// invisible to the scheduler, so a skewed group serializes the stage
  /// (the Table 7 "Normal" column).
  void ParallelForGroups(size_t num_groups,
                         const std::function<void(size_t)>& fn);

  /// Schedules `fn` on the pool and returns a future for its result.
  /// Exceptions thrown by `fn` are rethrown from `future.get()`.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> Submit(F fn) {
    return pool_->SubmitWithResult(std::move(fn));
  }

  /// The worker pool behind this executor, for layering per-key
  /// SerialQueues or explicit TaskGroups onto the same threads.
  ThreadPool& pool() { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> pool_;
};

/// Process-wide default executor (hardware concurrency), used when callers
/// do not supply their own.
Executor& DefaultExecutor();

/// Fixed block size of BlockedSum. Part of its determinism contract: the
/// partial-sum boundaries never move, whatever the executor looks like.
inline constexpr size_t kBlockedSumBlock = 4096;

/// Deterministic chunked reduction: sum of `block_sum(begin, end)` over
/// fixed `block_size`-wide blocks covering [0, n). The per-block partials
/// are computed in parallel on `ex` (serially when null) but ALWAYS stored
/// per block and combined sequentially in block order, so the result is
/// bit-for-bit identical for every thread count and every ParallelFor
/// chunking — the summation tree depends only on n and block_size. The
/// callback must itself be deterministic over its range.
double BlockedSum(Executor* ex, size_t n,
                  const std::function<double(size_t, size_t)>& block_sum,
                  size_t block_size = kBlockedSumBlock);

}  // namespace kbt::dataflow

#endif  // KBT_DATAFLOW_PARALLEL_H_
