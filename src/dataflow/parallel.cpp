#include "dataflow/parallel.h"

#include <algorithm>
#include <atomic>
#include <vector>

namespace kbt::dataflow {

Executor::Executor(int num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads)) {}

void Executor::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForRanges(
      n,
      [&fn](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) fn(i);
      },
      /*num_chunks=*/0);
}

void Executor::ParallelForRanges(
    size_t n, const std::function<void(size_t, size_t)>& fn, int num_chunks) {
  if (n == 0) return;
  size_t chunks = num_chunks > 0
                      ? static_cast<size_t>(num_chunks)
                      : static_cast<size_t>(pool_->num_threads()) * 4;
  chunks = std::min(chunks, n);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  const size_t chunk_size = (n + chunks - 1) / chunks;
  TaskGroup group(pool_.get());
  for (size_t begin = chunk_size; begin < n; begin += chunk_size) {
    const size_t end = std::min(begin + chunk_size, n);
    group.Submit([&fn, begin, end] { fn(begin, end); });
  }
  // The caller works the first chunk instead of idling, then joins (and
  // keeps helping with queued chunks while the group drains).
  fn(0, std::min(chunk_size, n));
  group.Wait();
}

void Executor::ParallelForGroups(size_t num_groups,
                                 const std::function<void(size_t)>& fn) {
  if (num_groups == 0) return;
  const size_t workers = std::min(
      num_groups, static_cast<size_t>(pool_->num_threads()));
  if (workers <= 1 || num_groups == 1) {
    for (size_t g = 0; g < num_groups; ++g) fn(g);
    return;
  }
  // One drain loop per worker, claiming groups one at a time off a shared
  // counter. This keeps the reducer-per-key scheduling grain — group sizes
  // stay invisible to the scheduler and a whale group still pins a worker
  // for its whole duration (the Table 7 "Normal" straggler) — without
  // allocating a queue task per group, which dominated wall clock on
  // group-heavy stages (one tiny tally per source at finest granularity).
  std::atomic<size_t> next{0};
  const auto drain = [&fn, &next, num_groups] {
    for (size_t g = next.fetch_add(1, std::memory_order_relaxed);
         g < num_groups;
         g = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(g);
    }
  };
  TaskGroup group(pool_.get());
  for (size_t w = 1; w < workers; ++w) {
    group.Submit(drain);
  }
  drain();
  group.Wait();
}

Executor& DefaultExecutor() {
  static Executor executor(0);
  return executor;
}

double BlockedSum(Executor* ex, size_t n,
                  const std::function<double(size_t, size_t)>& block_sum,
                  size_t block_size) {
  if (n == 0) return 0.0;
  block_size = std::max<size_t>(1, block_size);
  const size_t num_blocks = (n + block_size - 1) / block_size;
  std::vector<double> partial(num_blocks, 0.0);
  const auto run_block = [&](size_t blk) {
    const size_t begin = blk * block_size;
    partial[blk] = block_sum(begin, std::min(n, begin + block_size));
  };
  if (ex != nullptr) {
    ex->ParallelFor(num_blocks, run_block);
  } else {
    for (size_t blk = 0; blk < num_blocks; ++blk) run_block(blk);
  }
  double total = 0.0;
  for (size_t blk = 0; blk < num_blocks; ++blk) total += partial[blk];
  return total;
}

}  // namespace kbt::dataflow
