#include "dataflow/parallel.h"

#include <algorithm>

namespace kbt::dataflow {

Executor::Executor(int num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads)) {}

void Executor::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForRanges(
      n,
      [&fn](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) fn(i);
      },
      /*num_chunks=*/0);
}

void Executor::ParallelForRanges(
    size_t n, const std::function<void(size_t, size_t)>& fn, int num_chunks) {
  if (n == 0) return;
  size_t chunks = num_chunks > 0
                      ? static_cast<size_t>(num_chunks)
                      : static_cast<size_t>(pool_->num_threads()) * 4;
  chunks = std::min(chunks, n);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  const size_t chunk_size = (n + chunks - 1) / chunks;
  TaskGroup group(pool_.get());
  for (size_t begin = chunk_size; begin < n; begin += chunk_size) {
    const size_t end = std::min(begin + chunk_size, n);
    group.Submit([&fn, begin, end] { fn(begin, end); });
  }
  // The caller works the first chunk instead of idling, then joins (and
  // keeps helping with queued chunks while the group drains).
  fn(0, std::min(chunk_size, n));
  group.Wait();
}

void Executor::ParallelForGroups(size_t num_groups,
                                 const std::function<void(size_t)>& fn) {
  if (num_groups == 0) return;
  if (num_groups == 1) {
    fn(0);
    return;
  }
  TaskGroup group(pool_.get());
  for (size_t g = 1; g < num_groups; ++g) {
    group.Submit([&fn, g] { fn(g); });
  }
  fn(0);
  group.Wait();
}

Executor& DefaultExecutor() {
  static Executor executor(0);
  return executor;
}

}  // namespace kbt::dataflow
