#include "dataflow/stage_timer.h"

#include "kbt/obs.h"

namespace kbt::dataflow {

void StageTimers::Add(const std::string& stage, double seconds) {
  // Forward every recorded stage into the process-wide dashboard so EM
  // per-iteration timings land beside the serving metrics. The handle is
  // resolved inside the instance map (one registry lookup per new stage
  // name), then recorded lock-free; cardinality is bounded by the fixed
  // stage vocabulary (Pipeline.* and the paper's I..IV stages).
  MutexLock lock(mutex_);
  Entry& e = entries_[stage];
  e.total_seconds += seconds;
  e.count += 1;
  if (obs::MetricsEnabled()) {
    if (e.histogram == nullptr) {
      e.histogram = obs::MetricsRegistry::Default().GetHistogram(
          "kbt_em_stage_seconds", {{"stage", stage}});
    }
    e.histogram->Record(seconds);
  }
}

double StageTimers::TotalSeconds(const std::string& stage) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(stage);
  return it == entries_.end() ? 0.0 : it->second.total_seconds;
}

int StageTimers::Count(const std::string& stage) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(stage);
  return it == entries_.end() ? 0 : it->second.count;
}

double StageTimers::MeanSeconds(const std::string& stage) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(stage);
  if (it == entries_.end() || it->second.count == 0) return 0.0;
  return it->second.total_seconds / it->second.count;
}

std::vector<std::pair<std::string, double>> StageTimers::Entries() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.total_seconds);
  }
  return out;
}

void StageTimers::Clear() {
  MutexLock lock(mutex_);
  entries_.clear();
}

}  // namespace kbt::dataflow
