#include "dataflow/stage_timer.h"

namespace kbt::dataflow {

void StageTimers::Add(const std::string& stage, double seconds) {
  MutexLock lock(mutex_);
  Entry& e = entries_[stage];
  e.total_seconds += seconds;
  e.count += 1;
}

double StageTimers::TotalSeconds(const std::string& stage) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(stage);
  return it == entries_.end() ? 0.0 : it->second.total_seconds;
}

int StageTimers::Count(const std::string& stage) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(stage);
  return it == entries_.end() ? 0 : it->second.count;
}

double StageTimers::MeanSeconds(const std::string& stage) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(stage);
  if (it == entries_.end() || it->second.count == 0) return 0.0;
  return it->second.total_seconds / it->second.count;
}

std::vector<std::pair<std::string, double>> StageTimers::Entries() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.total_seconds);
  }
  return out;
}

void StageTimers::Clear() {
  MutexLock lock(mutex_);
  entries_.clear();
}

}  // namespace kbt::dataflow
