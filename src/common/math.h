#ifndef KBT_COMMON_MATH_H_
#define KBT_COMMON_MATH_H_

#include <cmath>
#include <cstddef>
#include <span>

namespace kbt {

/// Numeric helpers shared by the inference code. All probability-space
/// operations clamp away from exact 0/1 so that log-odds stay finite; the
/// paper's vote counts (Eqs. 12-15, 19-21) are log-odds and the clamping
/// bound below caps a single vote at about +-27.6, far beyond any value that
/// matters after the sigmoid.
inline constexpr double kProbEpsilon = 1e-12;

/// Clamps `p` into [kProbEpsilon, 1 - kProbEpsilon].
double ClampProbability(double p);

/// Clamps `x` into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Numerically-stable logistic sigmoid, sigma(x) = 1 / (1 + exp(-x)).
double Sigmoid(double x);

/// Inverse sigmoid; input is clamped away from {0,1}.
double Logit(double p);

/// log(p) with p clamped away from zero.
double SafeLog(double p);

/// Numerically-stable log(sum_i exp(x_i)); returns -inf for an empty span.
double LogSumExp(std::span<const double> xs);

/// Squared difference, the unit of the paper's SqV/SqC/SqA losses.
inline double SquaredError(double a, double b) { return (a - b) * (a - b); }

/// True when |a - b| <= tol.
inline bool ApproxEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// The paper's Eq. (7): derives an extractor's false-positive rate Q_e from
/// its precision P_e, recall R_e and the triple-density prior
/// gamma = p(C_wdv = 1):
///   Q_e = gamma/(1-gamma) * (1-P_e)/P_e * R_e.
/// The result is clamped into (0, 1).
double QFromPrecisionRecall(double precision, double recall, double gamma);

/// Inverse of Eq. (7): precision implied by (Q_e, R_e, gamma). Used by tests
/// and by the extractor-quality report.
double PrecisionFromQ(double q, double recall, double gamma);

/// Presence vote Pre_e = log R_e - log Q_e (Eq. 12).
double PresenceVote(double recall, double q);

/// Absence vote Abs_e = log(1-R_e) - log(1-Q_e) (Eq. 13).
double AbsenceVote(double recall, double q);

/// Source vote VCV(w) = log(n * A_w / (1 - A_w)) (Eq. 19).
double SourceVote(double accuracy, int num_false_values);

}  // namespace kbt

#endif  // KBT_COMMON_MATH_H_
