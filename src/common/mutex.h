#ifndef KBT_COMMON_MUTEX_H_
#define KBT_COMMON_MUTEX_H_

/// Internal spelling of the annotated locking layer. The definitions live
/// in the public header kbt/sync.h (public kbt/ headers hold annotated
/// mutexes too — e.g. query.h's SnapshotRegistry — and may include only
/// kbt/* + std, so the types must be reachable from there). Internal code
/// includes this path; both files are the allowlisted home of the raw std
/// synchronization primitives (scripts/lint_invariants.py flags
/// std::mutex & friends anywhere else).

#include "kbt/sync.h"  // IWYU pragma: export

#endif  // KBT_COMMON_MUTEX_H_
