#include "common/math.h"

#include <algorithm>
#include <limits>

namespace kbt {

double ClampProbability(double p) {
  return std::clamp(p, kProbEpsilon, 1.0 - kProbEpsilon);
}

double Clamp(double x, double lo, double hi) { return std::clamp(x, lo, hi); }

double Sigmoid(double x) {
  // Split on the sign so that exp() never overflows.
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Logit(double p) {
  p = ClampProbability(p);
  return std::log(p / (1.0 - p));
}

double SafeLog(double p) { return std::log(std::max(p, kProbEpsilon)); }

double LogSumExp(std::span<const double> xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double max_x = xs[0];
  for (double x : xs) max_x = std::max(max_x, x);
  if (!std::isfinite(max_x)) return max_x;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - max_x);
  return max_x + std::log(sum);
}

double QFromPrecisionRecall(double precision, double recall, double gamma) {
  precision = ClampProbability(precision);
  recall = ClampProbability(recall);
  gamma = ClampProbability(gamma);
  const double odds_gamma = gamma / (1.0 - gamma);
  const double q = odds_gamma * (1.0 - precision) / precision * recall;
  return ClampProbability(q);
}

double PrecisionFromQ(double q, double recall, double gamma) {
  q = ClampProbability(q);
  recall = ClampProbability(recall);
  gamma = ClampProbability(gamma);
  // Invert Q = g/(1-g) * (1-P)/P * R  =>  P = 1 / (1 + Q*(1-g)/(g*R)).
  const double ratio = q * (1.0 - gamma) / (gamma * recall);
  return ClampProbability(1.0 / (1.0 + ratio));
}

double PresenceVote(double recall, double q) {
  return SafeLog(recall) - SafeLog(q);
}

double AbsenceVote(double recall, double q) {
  return SafeLog(1.0 - ClampProbability(recall)) -
         SafeLog(1.0 - ClampProbability(q));
}

double SourceVote(double accuracy, int num_false_values) {
  const double a = ClampProbability(accuracy);
  const double n = std::max(1, num_false_values);
  return std::log(n * a / (1.0 - a));
}

}  // namespace kbt
