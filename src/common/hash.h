#ifndef KBT_COMMON_HASH_H_
#define KBT_COMMON_HASH_H_

#include <cstdint>

namespace kbt {

/// Platform-stable 64-bit hashing primitives. Fixed implementations (not
/// std::hash) because their exact outputs are load-bearing: they produce
/// io::DatasetFingerprint and cache::CompileOptionsFingerprint, which key
/// PERSISTED artifacts — any output change silently orphans every on-disk
/// cache entry. Both fingerprints pin golden values in tests
/// (tests/io/dataset_io_test.cpp, tests/cache/artifact_codec_test.cpp), so
/// a change here fails loudly; treat it like a cache-format bump.

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combine for sequences.
inline uint64_t HashChain(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ Mix64(value));
}

}  // namespace kbt

#endif  // KBT_COMMON_HASH_H_
