#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace kbt {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  assert(!edges_.empty());
  for (size_t i = 1; i < edges_.size(); ++i) {
    assert(edges_[i] > edges_[i - 1]);
  }
  // One bucket per [edge_i, edge_{i+1}) pair plus the >= last-edge bucket.
  counts_.assign(edges_.size(), 0.0);
}

Histogram Histogram::TripleCountBuckets() {
  std::vector<double> edges;
  for (int i = 1; i <= 10; ++i) edges.push_back(i);          // 1..10
  edges.push_back(11);                                        // 11-100
  edges.push_back(101);                                       // 100-1K
  edges.push_back(1001);                                      // 1K-10K
  edges.push_back(10001);                                     // 10K-100K
  edges.push_back(100001);                                    // 100K-1M
  edges.push_back(1000001);                                   // >1M
  return Histogram(std::move(edges));
}

Histogram Histogram::UniformProbabilityBuckets(int n) {
  assert(n >= 1);
  std::vector<double> edges;
  edges.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    edges.push_back(static_cast<double>(i) / n);
  }
  return Histogram(std::move(edges));
}

Histogram Histogram::WDevBuckets() {
  std::vector<double> edges;
  for (int i = 0; i < 5; ++i) edges.push_back(i * 0.01);       // [0,0.05) by 0.01
  for (int i = 1; i <= 18; ++i) edges.push_back(0.05 * i);     // [0.05,0.95) by 0.05
  for (int i = 0; i < 5; ++i) edges.push_back(0.95 + i * 0.01);  // [0.95,1) by 0.01
  edges.push_back(1.0);                                        // [1,1]
  return Histogram(std::move(edges));
}

size_t Histogram::BucketIndex(double value) const {
  // upper_bound returns the first edge strictly greater than value; the
  // bucket index is one before it. Values below the first edge clamp to 0.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  if (it == edges_.begin()) return 0;
  return static_cast<size_t>(it - edges_.begin()) - 1;
}

void Histogram::Add(double value, double weight) {
  counts_[BucketIndex(value)] += weight;
  total_ += weight;
}

double Histogram::bucket_upper(size_t i) const {
  assert(i < counts_.size());
  if (i + 1 < edges_.size()) return edges_[i + 1];
  return std::numeric_limits<double>::infinity();
}

double Histogram::Fraction(size_t i) const {
  assert(i < counts_.size());
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

std::string Histogram::BucketLabel(size_t i) const {
  assert(i < counts_.size());
  char buf[64];
  const double lo = edges_[i];
  if (i + 1 < edges_.size()) {
    std::snprintf(buf, sizeof(buf), "[%g,%g)", lo, edges_[i + 1]);
  } else {
    std::snprintf(buf, sizeof(buf), ">=%g", lo);
  }
  return buf;
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  total_ = 0.0;
}

}  // namespace kbt
