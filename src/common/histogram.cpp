#include "common/histogram.h"

#include <cassert>
#include <utility>
#include <vector>

namespace kbt {

Histogram::Histogram(std::vector<double> edges) : impl_(std::move(edges)) {
  assert(!impl_.edges().empty());
  for (size_t i = 1; i < impl_.edges().size(); ++i) {
    assert(impl_.edges()[i] > impl_.edges()[i - 1]);
  }
}

Histogram Histogram::TripleCountBuckets() {
  std::vector<double> edges;
  for (int i = 1; i <= 10; ++i) edges.push_back(i);          // 1..10
  edges.push_back(11);                                        // 11-100
  edges.push_back(101);                                       // 100-1K
  edges.push_back(1001);                                      // 1K-10K
  edges.push_back(10001);                                     // 10K-100K
  edges.push_back(100001);                                    // 100K-1M
  edges.push_back(1000001);                                   // >1M
  return Histogram(std::move(edges));
}

Histogram Histogram::UniformProbabilityBuckets(int n) {
  assert(n >= 1);
  std::vector<double> edges;
  edges.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    edges.push_back(static_cast<double>(i) / n);
  }
  return Histogram(std::move(edges));
}

Histogram Histogram::WDevBuckets() {
  std::vector<double> edges;
  for (int i = 0; i < 5; ++i) edges.push_back(i * 0.01);       // [0,0.05) by 0.01
  for (int i = 1; i <= 18; ++i) edges.push_back(0.05 * i);     // [0.05,0.95) by 0.05
  for (int i = 0; i < 5; ++i) edges.push_back(0.95 + i * 0.01);  // [0.95,1) by 0.01
  edges.push_back(1.0);                                        // [1,1]
  return Histogram(std::move(edges));
}

}  // namespace kbt
