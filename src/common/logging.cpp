#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/mutex.h"

namespace kbt {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
/// Serializes flushes so interleaved statements stay line-atomic. Guards
/// the stderr stream, not a member — hence no KBT_GUARDED_BY site.
Mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "[F %s:%d] KBT_CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal

}  // namespace kbt
