#ifndef KBT_COMMON_STRING_POOL_H_
#define KBT_COMMON_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace kbt {

/// Interning pool mapping strings <-> dense uint32 ids. All entity,
/// predicate, value, website and pattern names in the library are interned
/// once and referenced by id afterwards, so the hot inference loops never
/// touch strings.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;
  StringPool(StringPool&&) = default;
  StringPool& operator=(StringPool&&) = default;

  /// Returns the id of `s`, inserting it on first sight. Ids are assigned
  /// densely starting at 0 in insertion order.
  uint32_t Intern(std::string_view s);

  /// Returns the id of `s` if present.
  std::optional<uint32_t> Find(std::string_view s) const;

  /// Returns the string for a valid id. The view stays stable for the pool's
  /// lifetime (storage is a deque of owned strings).
  std::string_view Get(uint32_t id) const;

  size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }

 private:
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace kbt

#endif  // KBT_COMMON_STRING_POOL_H_
