#ifndef KBT_COMMON_THREAD_POOL_H_
#define KBT_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"

namespace kbt {

namespace internal {
/// Shared plumbing behind the SubmitWithResult methods: wraps `fn` in a
/// packaged_task (capturing its value or exception into the future) and
/// hands the wrapper to `target.Submit`.
template <typename Target, typename F, typename R = std::invoke_result_t<F>>
std::future<R> SubmitPackaged(Target& target, F fn) {
  auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
  std::future<R> future = task->get_future();
  target.Submit([task] { (*task)(); });
  return future;
}
}  // namespace internal

/// Fixed-size worker pool with a FIFO task queue — the substrate every
/// concurrent layer of the library runs on. Three idioms are built on it:
///
///  * fire-and-forget `Submit` + global `Wait` (the original dataflow
///    barrier);
///  * result-returning `SubmitWithResult`, which wraps the task in a
///    `std::packaged_task` so values *and exceptions* come back through a
///    `std::future` (the serving layer's request primitive);
///  * cooperative scheduling: `TaskGroup` (scoped fork-join whose waiters
///    run the group's own queued tasks inline, safe to nest inside pool
///    tasks) and `SerialQueue` (per-key FIFO strand) below, plus
///    `TryRunOneTask` for callers that want to drain arbitrary queued
///    work on their own thread.
///
/// Tasks submitted through plain `Submit` must not throw: an escaping
/// exception would unwind through the worker loop and terminate. Use
/// `SubmitWithResult` when failure is a result.
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` are captured and rethrown from `future.get()`.
  template <typename F>
  auto SubmitWithResult(F fn) {
    return internal::SubmitPackaged(*this, std::move(fn));
  }

  /// Blocks until the queue is empty and no task is running. This drains
  /// every task submitted before the call *and* every task those tasks
  /// submit transitively: a submitter running on a worker is still counted
  /// as active while it enqueues children, so the drain condition cannot
  /// pass before the children finish too. Tasks submitted by *other*
  /// threads concurrently with Wait() may or may not be covered.
  ///
  /// Must be called from outside the pool's workers: a pool task calling
  /// Wait() would wait for itself to finish. Fork-join inside a task goes
  /// through TaskGroup, whose Wait() is worker-safe.
  void Wait();

  /// If a task is queued, runs it on the *calling* thread and returns true;
  /// returns false when the queue is empty (tasks may still be running on
  /// workers). For external callers that want to drain queued work on
  /// their own thread; note TaskGroup::Wait does NOT use this — it donates
  /// only to its own group's tasks via its claim loop.
  bool TryRunOneTask();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ KBT_GUARDED_BY(mutex_);
  int active_ KBT_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ KBT_GUARDED_BY(mutex_) = false;
};

/// Scoped fork-join over a shared ThreadPool: submit a batch of tasks, then
/// Wait() for exactly that batch (not the whole pool). While waiting, the
/// caller *helps*: it claims and runs this group's not-yet-started tasks on
/// its own thread, so a TaskGroup is safe to use from inside another pool
/// task — the nested join can never deadlock on a saturated pool, because
/// every blocked waiter either executes its own queued work or waits on
/// group tasks already running on other threads. Donation is restricted to
/// the group's OWN tasks (never arbitrary pool work), which keeps the
/// helper's stack depth bounded by the fork-join nesting depth and keeps a
/// short join from inlining some unrelated long-running task. This is what
/// makes one Executor shareable between a serving loop and the parallel
/// stages running inside its requests.
///
/// Tasks must not throw (they run through ThreadPool::Submit). The
/// destructor waits for stragglers.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task` on the pool as part of this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted to this group has finished, running
  /// this group's queued tasks on this thread while it waits.
  void Wait();

 private:
  /// One submitted task: runnable exactly once, by whichever of the pool
  /// worker or a helping waiter claims it first.
  struct Entry;
  /// Bookkeeping shared with the pool-side wrappers, so a wrapper that
  /// fires after the group object is gone (its entry was claimed by a
  /// helper) still touches live state.
  struct State;

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

/// Per-key FIFO serialization on a shared ThreadPool (a "strand"): tasks
/// submitted to one SerialQueue run one at a time, in submission order, on
/// pool workers — while tasks on *different* SerialQueues over the same
/// pool run concurrently. The queue reschedules itself after every task, so
/// one busy key cannot starve its siblings. This is the per-session
/// execution order guarantee behind api::TrustService.
///
/// The queue must outlive its tasks; the destructor drains. Wait() parks
/// without donating its thread (unlike TaskGroup::Wait), so it must be
/// called from outside the pool: a pool task calling it can deadlock a
/// saturated pool, and a task on this same queue would wait on itself.
/// Plain Submit tasks must not throw; SubmitWithResult captures
/// exceptions into the returned future.
class SerialQueue {
 public:
  explicit SerialQueue(ThreadPool* pool);
  ~SerialQueue();

  SerialQueue(const SerialQueue&) = delete;
  SerialQueue& operator=(const SerialQueue&) = delete;

  /// Enqueues `task` after everything already submitted to this queue.
  void Submit(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result (exceptions are
  /// captured and rethrown from `future.get()`).
  template <typename F>
  auto SubmitWithResult(F fn) {
    return internal::SubmitPackaged(*this, std::move(fn));
  }

  /// Blocks until every task submitted to this queue so far (and any they
  /// submit back onto it) has finished.
  void Wait();

  /// Tasks submitted but not yet finished (including the running one).
  size_t pending() const;

 private:
  /// Runs the front task on a pool worker, then reschedules itself while
  /// work remains.
  void DrainOne();

  ThreadPool* pool_;
  mutable Mutex mutex_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ KBT_GUARDED_BY(mutex_);
  bool running_ KBT_GUARDED_BY(mutex_) = false;
};

}  // namespace kbt

#endif  // KBT_COMMON_THREAD_POOL_H_
