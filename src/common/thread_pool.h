#ifndef KBT_COMMON_THREAD_POOL_H_
#define KBT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kbt {

/// Fixed-size worker pool with a FIFO task queue. `Wait()` blocks until every
/// task submitted so far has finished, which is the synchronization primitive
/// the dataflow layer's parallel stages are built on.
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  int active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace kbt

#endif  // KBT_COMMON_THREAD_POOL_H_
